package emu

import (
	"testing"

	"repro/internal/asm"
)

func TestStateHashDetectsDivergence(t *testing.T) {
	src := `
		.data
buf:	.space 64
		.text
main:	li   $t0, 7
		la   $t1, buf
		sw   $t0, 4($t1)
		out  $t0
		halt
`
	p, err := asm.Assemble("hash.s", src)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Machine {
		m := New(p)
		for !m.Halted() {
			if _, err := m.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	a, b := run(), run()
	if a.StateHash() != b.StateHash() {
		t.Error("identical runs hash differently")
	}
	b.SetReg(8, 99)
	if a.StateHash() == b.StateHash() {
		t.Error("register divergence not reflected in hash")
	}
	c := run()
	c.StoreByte(0x20000, 1)
	if a.StateHash() == c.StateHash() {
		t.Error("memory divergence not reflected in hash")
	}
	d := run()
	d.Output = append(d.Output, 0)
	if a.StateHash() == d.StateHash() {
		t.Error("output divergence not reflected in hash")
	}
}

func TestStateHashIgnoresRestoredZeroPages(t *testing.T) {
	// A speculative write to a fresh page allocates it; rolling the
	// journal back zeroes it again. The hash must not see the allocation.
	src := `
		.text
main:	out  $zero
		halt
`
	p, err := asm.Assemble("hash.s", src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	for !m.Halted() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	before := m.StateHash()
	cp := m.Checkpoint()
	m.StoreByte(0x40000, 42) // journaled write to an untouched page
	if err := m.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if m.StateHash() != before {
		t.Error("rolled-back write to a fresh page changed the hash")
	}
}
