// Package keylint statically enforces the memo-key contract: every
// exported field of a struct marked //ce:keyed must either be referenced
// inside the struct's Key() method (transitively through other methods of
// the same type) or carry a //ce:timing-neutral annotation. A Config
// field that is neither would silently let two behaviorally different
// machines share a fingerprint, and the run cache would then serve the
// wrong Stats — the exact failure mode pipeline.Config.Key's hand-written
// mutation tests can only spot-check.
//
// Coverage is per-path: referencing c.DCache covers the whole DCache
// struct, while referencing only s.FIFO.Depth covers FIFO.Depth and
// leaves the sibling fields of FIFO to be individually referenced or
// annotated (so a label field buried one level down, like
// FIFOBankConfig.Name, still needs an explicit exemption).
//
// A struct whose key is built by something other than its own Key()
// method — a plan snapshot whose cache-key suffix comes from a method of
// the engine, say — is annotated //ce:keyed via=<name>, naming the
// package-level function or method that builds the key. In via mode the
// contract tightens to ALL fields, unexported included: such structs are
// package-local by construction, so their unexported fields feed timing
// exactly as much as exported ones and a dropped field collides cache
// keys just the same.
package keylint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// Analyzer is the keylint pass.
var Analyzer = &analysis.Analyzer{
	Name: "keylint",
	Doc:  "verifies Key() of //ce:keyed structs covers every exported field",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	k := &checker{pass: pass, fieldDocs: make(map[types.Object]*ast.Field)}
	k.indexFields()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				d, ok := directive.Get(ts.Doc, directive.Keyed)
				if !ok && len(gd.Specs) == 1 {
					d, ok = directive.Get(gd.Doc, directive.Keyed)
				}
				if !ok {
					continue
				}
				if via := d.Param("via"); via != "" {
					k.checkKeyedVia(ts, via)
				} else {
					k.checkKeyed(ts)
				}
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	// fieldDocs maps a field object to its declaration, so annotations on
	// fields of any struct in this package can be found.
	fieldDocs map[types.Object]*ast.Field
}

// indexFields records every struct field declaration in the package.
func (k *checker) indexFields() {
	for _, f := range k.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if obj := k.pass.TypesInfo.Defs[name]; obj != nil {
						k.fieldDocs[obj] = field
					}
				}
				if len(field.Names) == 0 {
					// Embedded field: key by the type's object if resolvable.
					if id := embeddedIdent(field.Type); id != nil {
						if obj := k.pass.TypesInfo.Defs[id]; obj != nil {
							k.fieldDocs[obj] = field
						}
					}
				}
			}
			return true
		})
	}
}

func embeddedIdent(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.StarExpr:
		return embeddedIdent(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// neutral reports whether the field declaration carries
// //ce:timing-neutral (doc comment or trailing line comment).
func (k *checker) neutral(field *ast.Field) bool {
	return field != nil &&
		(directive.InGroup(field.Doc, directive.TimingNeutral) ||
			directive.InGroup(field.Comment, directive.TimingNeutral))
}

// checkKeyed verifies one //ce:keyed struct.
func (k *checker) checkKeyed(ts *ast.TypeSpec) {
	obj := k.pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		k.pass.Reportf(ts.Pos(), "//ce:keyed on non-named type %s", ts.Name.Name)
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		k.pass.Reportf(ts.Pos(), "//ce:keyed type %s is not a struct", ts.Name.Name)
		return
	}
	keyFn := k.methodDecl(named, "Key")
	if keyFn == nil {
		k.pass.Report(analysis.Diagnostic{
			Pos:      ts.Pos(),
			Category: "no-key",
			Message:  fmt.Sprintf("//ce:keyed type %s has no Key() method in this package", ts.Name.Name),
		})
		return
	}
	cov := newCoverage()
	k.collect(named, keyFn, nil, cov, make(map[*ast.FuncDecl]bool))
	k.checkStruct(ts.Name.Name, named, st, nil, cov, nil)
}

// coverage is the set of receiver-rooted selector paths referenced inside
// Key (and the same-type methods it calls). A path is joined with '.'.
// whole marks paths referenced in full (the entire value observed).
type coverage struct {
	whole map[string]bool // "DCache" — whole value referenced
	paths map[string]bool // every recorded path, including prefixes
}

func newCoverage() *coverage {
	return &coverage{whole: make(map[string]bool), paths: make(map[string]bool)}
}

func (c *coverage) add(path []string, whole bool) {
	joined := strings.Join(path, ".")
	c.paths[joined] = true
	if whole {
		c.whole[joined] = true
	}
	for i := 1; i < len(path); i++ {
		c.paths[strings.Join(path[:i], ".")] = true
	}
}

// hasPrefix reports whether any recorded path extends the given prefix.
func (c *coverage) hasPrefix(path []string) bool {
	return c.paths[strings.Join(path, ".")]
}

// methodDecl finds the FuncDecl of the named method on the given type in
// this package (value or pointer receiver).
func (k *checker) methodDecl(named *types.Named, name string) *ast.FuncDecl {
	for _, f := range k.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if k.recvNamed(fd) == named.Obj() {
				return fd
			}
		}
	}
	return nil
}

// recvNamed resolves a method declaration's receiver to its type object.
func (k *checker) recvNamed(fd *ast.FuncDecl) types.Object {
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			obj := k.pass.TypesInfo.Uses[tt]
			return obj
		default:
			return nil
		}
	}
}

// collect walks one method body recording receiver-rooted field paths.
// It recurses into calls of other methods of the same type.
func (k *checker) collect(named *types.Named, fd *ast.FuncDecl, _ []string, cov *coverage, visited map[*ast.FuncDecl]bool) {
	if visited[fd] {
		return
	}
	visited[fd] = true
	if len(fd.Recv.List[0].Names) == 0 {
		return // receiver unnamed: body cannot reference fields
	}
	recvObj := k.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil {
		return
	}
	info := k.pass.TypesInfo

	// pathOf resolves an expression to a receiver-rooted field path.
	var pathOf func(e ast.Expr) ([]string, bool)
	pathOf = func(e ast.Expr) ([]string, bool) {
		switch e := e.(type) {
		case *ast.Ident:
			if info.Uses[e] == recvObj {
				return []string{}, true
			}
		case *ast.SelectorExpr:
			if base, ok := pathOf(e.X); ok {
				// Field or method selection on the receiver chain.
				return append(base, e.Sel.Name), true
			}
		case *ast.ParenExpr:
			return pathOf(e.X)
		case *ast.StarExpr:
			return pathOf(e.X)
		}
		return nil, false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// c.helper() — recurse into same-type methods; their bodies
			// contribute coverage too (predictorKey reads c.Predictor).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if base, ok := pathOf(sel.X); ok && len(base) == 0 {
					if callee := k.methodDecl(named, sel.Sel.Name); callee != nil {
						k.collect(named, callee, nil, cov, visited)
						return true // arguments still scanned below via children
					}
				}
			}
		case *ast.SelectorExpr:
			if path, ok := pathOf(n); ok && len(path) > 0 {
				// Selection could be a method value (c.Key in tests) — only
				// record field selections.
				if sel, isField := info.Selections[n]; !isField || sel.Kind() == types.FieldVal {
					cov.add(path, true)
				}
				return false // the inner chain is already recorded
			}
		case *ast.Ident:
			if info.Uses[n] == recvObj {
				// Bare receiver use (passed whole somewhere): everything is
				// observable.
				cov.add([]string{}, true)
				cov.whole[""] = true
			}
		}
		return true
	})
}

// checkStruct verifies each exported field at path prefix is covered.
// anchor is the nearest enclosing field declaration in the analyzed
// package, used to position findings about foreign-package subfields
// (the fix — referencing or restructuring — belongs at that field).
func (k *checker) checkStruct(typeName string, named *types.Named, st *types.Struct, prefix []string, cov *coverage, anchor *ast.Field) {
	if cov.whole[""] {
		return // receiver escaped whole; every field observable
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		path := append(append([]string{}, prefix...), f.Name())
		joined := strings.Join(path, ".")
		field := k.fieldDocs[f]
		switch {
		case cov.whole[joined]:
			// Referenced in full.
		case k.neutral(field):
			// Annotated //ce:timing-neutral.
		case cov.hasPrefix(path):
			// Partially referenced: recurse into struct fields so
			// unreferenced siblings are still caught.
			if sub, ok := structUnder(f.Type()); ok {
				next := anchor
				if field != nil {
					next = field
				}
				k.checkStruct(typeName, named, sub, path, cov, next)
			}
		default:
			k.reportField(typeName, f, field, anchor, joined)
		}
	}
}

// structUnder unwraps pointers and names to a struct type.
func structUnder(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

func (k *checker) reportField(typeName string, f *types.Var, field, anchor *ast.Field, path string) {
	pos := f.Pos()
	if field == nil && anchor != nil {
		// Foreign-package subfield: anchor the finding at the in-package
		// field that carries the foreign type.
		pos = anchor.Pos()
	}
	d := analysis.Diagnostic{
		Pos:      pos,
		Category: "unkeyed-field",
		Message: fmt.Sprintf(
			"%s.%s is exported but neither referenced in %s.Key() nor marked //ce:timing-neutral — a run-cache key collision waiting to happen",
			typeName, path, typeName),
	}
	// Cheap suggested fix: annotate the field (the alternative — wiring it
	// into Key — needs a human to decide the encoding).
	if field != nil && f.Pkg() == k.pass.Pkg {
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message: "mark the field timing-neutral",
			TextEdits: []analysis.TextEdit{{
				Pos:     field.End(),
				End:     field.End(),
				NewText: []byte(" //ce:timing-neutral"),
			}},
		}}
	}
	k.pass.Report(d)
}

// --- via mode: //ce:keyed via=<name> ---

// checkKeyedVia verifies one //ce:keyed via=<name> struct: every field,
// unexported included, must be referenced inside the named function or
// method (transitively through same-package functions it calls) or
// carry //ce:timing-neutral.
func (k *checker) checkKeyedVia(ts *ast.TypeSpec, via string) {
	obj := k.pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		k.pass.Reportf(ts.Pos(), "//ce:keyed on non-named type %s", ts.Name.Name)
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		k.pass.Reportf(ts.Pos(), "//ce:keyed type %s is not a struct", ts.Name.Name)
		return
	}
	roots := k.funcsNamed(via)
	if len(roots) == 0 {
		k.pass.Report(analysis.Diagnostic{
			Pos:      ts.Pos(),
			Category: "no-key",
			Message: fmt.Sprintf(
				"//ce:keyed via=%s on %s names no function or method %s in this package",
				via, ts.Name.Name, via),
		})
		return
	}
	v := &viaScan{
		checker: k,
		named:   named,
		decls:   k.declIndex(),
		whole:   make(map[types.Object]bool),
		partial: make(map[types.Object]bool),
		prefix:  make(map[ast.Expr]bool),
		visited: make(map[*ast.FuncDecl]bool),
	}
	for _, fd := range roots {
		v.walk(fd)
	}
	if v.escaped {
		return // the struct value escaped whole; every field observable
	}
	k.checkViaStruct(ts.Name.Name, via, st, nil, v)
}

// declIndex maps every function object declared in the package to its
// declaration, for static-callee recursion.
func (k *checker) declIndex() map[types.Object]*ast.FuncDecl {
	idx := make(map[types.Object]*ast.FuncDecl)
	for _, f := range k.pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := k.pass.TypesInfo.Defs[fd.Name]; obj != nil {
					idx[obj] = fd
				}
			}
		}
	}
	return idx
}

// funcsNamed returns every function or method declaration with the given
// name in the package. via names are expected to be unambiguous; if the
// package overloads one name across receivers, all bodies contribute
// coverage (erring toward silence, like the rest of the analyzer).
func (k *checker) funcsNamed(name string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range k.pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// viaScan accumulates field references across the via function and the
// same-package functions it (transitively) calls. Unlike the Key-method
// walk it is not receiver-rooted: the plan value typically enters the
// via function as a local (p := e.segmentPlan()), so any FieldVal
// selection anywhere in the closure counts. whole/partial mirror the
// path-mode coverage: selecting p.Mem observes the whole Mem value,
// while p.Mem.Lines observes Lines in full and Mem only partially
// (Mem's siblings of Lines still need their own reference).
type viaScan struct {
	*checker
	named   *types.Named
	decls   map[types.Object]*ast.FuncDecl
	whole   map[types.Object]bool
	partial map[types.Object]bool
	// prefix marks selector nodes that are the X of an enclosing field
	// selection; ast.Inspect visits parents first, so by the time the
	// inner selector is visited its role is known.
	prefix  map[ast.Expr]bool
	visited map[*ast.FuncDecl]bool
	escaped bool // the struct value was passed whole to an unresolved call
}

func (v *viaScan) walk(fd *ast.FuncDecl) {
	if v.visited[fd] {
		return
	}
	v.visited[fd] = true
	info := v.pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if v.prefix[n] {
					v.partial[sel.Obj()] = true
				} else {
					v.whole[sel.Obj()] = true
				}
				if x, ok := n.X.(*ast.SelectorExpr); ok {
					v.prefix[x] = true
				}
			}
		case *ast.ParenExpr:
			// (p.Mem).Lines: the paren, not the selector, is the recorded
			// prefix node — push the mark through.
			if v.prefix[n] {
				if x, ok := n.X.(*ast.SelectorExpr); ok {
					v.prefix[x] = true
				}
			}
		case *ast.CallExpr:
			if callee := v.localDecl(n.Fun); callee != nil {
				v.walk(callee)
			} else {
				// An unresolved callee observing the whole struct value (a
				// fmt.Sprint(p), say) makes every field observable.
				for _, arg := range n.Args {
					if v.isNamedValue(info.TypeOf(arg)) {
						v.escaped = true
					}
				}
			}
		}
		return true
	})
}

// localDecl resolves a call target to a function or method declaration
// in this package, if it statically is one.
func (v *viaScan) localDecl(fun ast.Expr) *ast.FuncDecl {
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, ok := v.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != v.pass.Pkg {
		return nil
	}
	return v.decls[fn]
}

// isNamedValue reports whether t is the via struct type (through
// pointers).
func (v *viaScan) isNamedValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == v.named.Obj()
}

// checkViaStruct verifies every field (exported or not) at the path
// prefix is covered, recursing into partially-referenced nested structs.
func (k *checker) checkViaStruct(typeName, via string, st *types.Struct, prefix []string, v *viaScan) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		path := append(append([]string{}, prefix...), f.Name())
		field := k.fieldDocs[f]
		switch {
		case v.whole[f]:
			// Referenced in full.
		case k.neutral(field):
			// Annotated //ce:timing-neutral.
		case v.partial[f]:
			// Some subfield was referenced: recurse so the uncovered
			// siblings are named precisely.
			if sub, ok := structUnder(f.Type()); ok {
				k.checkViaStruct(typeName, via, sub, path, v)
			}
		default:
			k.pass.Report(analysis.Diagnostic{
				Pos:      f.Pos(),
				Category: "unkeyed-field",
				Message: fmt.Sprintf(
					"%s.%s is not referenced in %s (//ce:keyed via=%s) and not marked //ce:timing-neutral — a run-cache key collision waiting to happen",
					typeName, strings.Join(path, "."), via, via),
			})
		}
	}
}
