// Package obj defines the simulator's binary object format, so assembled
// programs can be stored and reloaded without the assembler (the ceasm
// tool writes and both ceasm and the examples can read them).
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "CE97"
//	4       4     format version (1)
//	8       4     instruction count N
//	12      4     data segment length D
//	16      4     symbol count S
//	20      8·N   instructions: word0 = op | rd<<8 | rs<<16 | rt<<24,
//	              word1 = imm (two's complement)
//	...     D     data bytes
//	...           symbols: { nameLen uint16, name bytes, value uint32 } × S
//
// The format is deliberately wide (8 bytes per instruction with a full
// 32-bit immediate): this repository studies microarchitecture, not code
// density, and a lossless round trip matters more than compactness.
package obj

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Magic identifies the format.
const Magic = "CE97"

// Version is the current format version.
const Version = 1

const headerLen = 20

// Encode serializes a program.
func Encode(p *isa.Program) []byte {
	out := make([]byte, 0, headerLen+8*len(p.Text)+len(p.Data))
	out = append(out, Magic...)
	out = le32(out, Version)
	out = le32(out, uint32(len(p.Text)))
	out = le32(out, uint32(len(p.Data)))
	out = le32(out, uint32(len(p.Symbols)))
	for _, in := range p.Text {
		word0 := uint32(in.Op) | uint32(in.Rd)<<8 | uint32(in.Rs)<<16 | uint32(in.Rt)<<24
		out = le32(out, word0)
		out = le32(out, uint32(in.Imm))
	}
	out = append(out, p.Data...)
	// Deterministic symbol order.
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = le16(out, uint16(len(n)))
		out = append(out, n...)
		out = le32(out, p.Symbols[n])
	}
	return out
}

// Decode parses a serialized program, validating structure and contents.
func Decode(name string, b []byte) (*isa.Program, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("obj: %s: truncated header (%d bytes)", name, len(b))
	}
	if string(b[:4]) != Magic {
		return nil, fmt.Errorf("obj: %s: bad magic %q", name, b[:4])
	}
	version := binary.LittleEndian.Uint32(b[4:])
	if version != Version {
		return nil, fmt.Errorf("obj: %s: unsupported version %d", name, version)
	}
	nText := binary.LittleEndian.Uint32(b[8:])
	nData := binary.LittleEndian.Uint32(b[12:])
	nSyms := binary.LittleEndian.Uint32(b[16:])
	const maxReasonable = 1 << 26
	if nText > maxReasonable || nData > maxReasonable || nSyms > maxReasonable {
		return nil, fmt.Errorf("obj: %s: implausible section sizes (%d/%d/%d)", name, nText, nData, nSyms)
	}
	need := uint64(headerLen) + 8*uint64(nText) + uint64(nData)
	if uint64(len(b)) < need {
		return nil, fmt.Errorf("obj: %s: truncated body: have %d bytes, need ≥%d", name, len(b), need)
	}
	// Each symbol takes at least 6 bytes, so the declared count is bounded
	// by the remaining bytes (guards against forged headers that would
	// otherwise pre-size a huge map).
	if uint64(nSyms) > (uint64(len(b))-need)/6 {
		return nil, fmt.Errorf("obj: %s: symbol count %d exceeds remaining bytes", name, nSyms)
	}
	p := &isa.Program{Name: name, Symbols: make(map[string]uint32, nSyms)}
	off := headerLen
	for i := uint32(0); i < nText; i++ {
		word0 := binary.LittleEndian.Uint32(b[off:])
		imm := int32(binary.LittleEndian.Uint32(b[off+4:]))
		off += 8
		in := isa.Inst{
			Op:  isa.Op(word0 & 0xFF),
			Rd:  isa.Reg(word0 >> 8 & 0xFF),
			Rs:  isa.Reg(word0 >> 16 & 0xFF),
			Rt:  isa.Reg(word0 >> 24 & 0xFF),
			Imm: imm,
		}
		if err := validate(in); err != nil {
			return nil, fmt.Errorf("obj: %s: instruction %d: %w", name, i, err)
		}
		p.Text = append(p.Text, in)
	}
	p.Data = append(p.Data, b[off:off+int(nData)]...)
	off += int(nData)
	for i := uint32(0); i < nSyms; i++ {
		if off+2 > len(b) {
			return nil, fmt.Errorf("obj: %s: truncated symbol table at symbol %d", name, i)
		}
		nameLen := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if off+nameLen+4 > len(b) {
			return nil, fmt.Errorf("obj: %s: truncated symbol %d", name, i)
		}
		sym := string(b[off : off+nameLen])
		off += nameLen
		p.Symbols[sym] = binary.LittleEndian.Uint32(b[off:])
		off += 4
	}
	if off != len(b) {
		return nil, fmt.Errorf("obj: %s: %d trailing bytes", name, len(b)-off)
	}
	return p, nil
}

// IsObject reports whether the bytes look like an encoded program.
func IsObject(b []byte) bool {
	return len(b) >= 4 && string(b[:4]) == Magic
}

func validate(in isa.Inst) error {
	if _, ok := isa.OpByName(in.Op.String()); !ok {
		return fmt.Errorf("invalid opcode %d", in.Op)
	}
	for _, r := range []isa.Reg{in.Rd, in.Rs, in.Rt} {
		if int(r) >= isa.NumRegs {
			return fmt.Errorf("invalid register %d", r)
		}
	}
	return nil
}

func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}
