// Package detlint statically enforces the simulator's bit-determinism
// contract. The differential fuzzing harness and the run cache are both
// unsound if two runs of the same configuration can diverge, so packages
// marked //ce:deterministic must not let any nondeterminism source — map
// iteration order, the host clock, math/rand, goroutine scheduling,
// pointer formatting — influence their observable behavior.
//
// Rules, in packages carrying the //ce:deterministic marker:
//
//   - map iteration whose order escapes: a `for range` over a map is
//     flagged when its body writes outer state order-dependently, appends
//     to an outer slice (unless the slice is immediately sorted — the
//     collect-keys-then-sort idiom), exits the loop early, sends on a
//     channel, or leaks the iteration order through a call. Pure
//     membership counting, distinct-key writes (`out[k] = v`) and
//     commutative integer accumulation (`n += v`) pass.
//   - time.Now / time.Since / time.Until (host clock reads).
//   - any math/rand import.
//   - goroutine launches (the cycle loop is single-threaded by contract).
//   - %p format verbs (pointer values differ run to run).
//
// A finding on a line covered by `//ce:nondet-ok <reason>` is suppressed;
// the reason is mandatory.
package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// Analyzer is the detlint pass.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc:  "flags nondeterminism sources in //ce:deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !directive.PackageMarked(pass.Files, directive.Deterministic) {
		return nil, nil
	}
	for _, f := range pass.Files {
		c := &checker{pass: pass, hatch: directive.NewIndex(pass.Fset, f, directive.NondetOK)}
		for _, d := range c.hatch.Malformed() {
			pass.Report(analysis.Diagnostic{
				Pos:      d.Pos,
				Category: "bad-hatch",
				Message:  "//ce:nondet-ok needs a reason (//ce:nondet-ok <why this is deterministic>)",
			})
		}
		c.file(f)
	}
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	hatch *directive.Index
}

// report emits a diagnostic unless an escape hatch covers pos.
func (c *checker) report(pos token.Pos, category, format string, args ...any) {
	if _, ok := c.hatch.Covering(pos); ok {
		return
	}
	c.pass.Report(analysis.Diagnostic{
		Pos:      pos,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (c *checker) file(f *ast.File) {
	for _, imp := range f.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		if path == "math/rand" || path == "math/rand/v2" {
			c.report(imp.Pos(), "rand",
				"import of %s in a //ce:deterministic package (seeded prog-level randomness belongs outside the simulator core)", path)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.report(n.Pos(), "goroutine",
				"goroutine launch in a //ce:deterministic package (scheduling order is nondeterministic)")
		case *ast.CallExpr:
			c.call(n)
		case *ast.RangeStmt:
			c.rangeStmt(n, followingStmts(f, n))
		}
		return true
	})
}

// call flags host-clock reads and %p formatting.
func (c *checker) call(call *ast.CallExpr) {
	if pkg, name := c.calleePkgFunc(call); pkg == "time" && (name == "Now" || name == "Since" || name == "Until") {
		c.report(call.Pos(), "clock",
			"time.%s reads the host clock in a //ce:deterministic package", name)
	} else if pkg == "fmt" {
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				continue
			}
			if s, err := strconv.Unquote(lit.Value); err == nil && strings.Contains(s, "%p") {
				c.report(lit.Pos(), "pointer-format",
					"%%p formats a pointer value, which differs run to run")
			}
		}
	}
}

// calleePkgFunc resolves a call to (package path, function name) for
// direct package-level calls like time.Now(); otherwise ("", "").
func (c *checker) calleePkgFunc(call *ast.CallExpr) (pkg, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// rangeStmt analyzes one `for range` over a map for order escapes.
// following holds the statements after the loop in its enclosing block
// (for the collect-then-sort exemption).
func (c *checker) rangeStmt(rs *ast.RangeStmt, following []ast.Stmt) {
	t := c.pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	w := newEscapeWalker(c.pass.TypesInfo, rs)
	w.walkBody()
	if w.esc == "" {
		return
	}
	if w.onlyAppends && w.sortable != nil && c.sortedAfter(w.sortable, following) {
		return
	}
	c.report(rs.For, "map-order",
		"map iteration order escapes (%s); iterate a sorted key slice or add //ce:nondet-ok <reason>", w.esc)
}

// escapeWalker classifies the effects of one map-range body. It records
// the first order escape; when the only escapes are appends to a single
// outer slice variable, that variable is the collect-then-sort candidate.
type escapeWalker struct {
	info     *types.Info
	rs       *ast.RangeStmt
	loopVars map[types.Object]bool // the range key/value variables
	inner    map[types.Object]bool // objects declared inside the body

	esc         string     // first escape description ("" = none)
	sortable    *ast.Ident // sole append target, when exempt-eligible
	onlyAppends bool
}

func newEscapeWalker(info *types.Info, rs *ast.RangeStmt) *escapeWalker {
	w := &escapeWalker{
		info:        info,
		rs:          rs,
		loopVars:    make(map[types.Object]bool),
		inner:       make(map[types.Object]bool),
		onlyAppends: true,
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			w.loopVars[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			w.loopVars[obj] = true // `for k = range m` assigning an outer k
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				w.inner[obj] = true
			}
		}
		return true
	})
	return w
}

// escape records a non-append order escape.
func (w *escapeWalker) escape(why string) {
	if w.esc == "" {
		w.esc = why
	}
	w.onlyAppends = false
}

func (w *escapeWalker) walkBody() {
	// `for k = range m` with an outer k leaves the last-iterated key
	// behind, which is itself order-dependent.
	if w.rs.Tok == token.ASSIGN {
		for _, e := range []ast.Expr{w.rs.Key, w.rs.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				w.escape(fmt.Sprintf("loop variable %q outlives the loop with the last-iterated element", id.Name))
			}
		}
	}
	w.walk(w.rs.Body, walkCtx{})
}

// walkCtx tracks the syntactic context of the node being visited.
type walkCtx struct {
	loopDepth   int // nested for/range loops below the map range
	switchDepth int // nested switch/select (unlabeled break targets these)
	funcDepth   int // nested function literals (return exits these)
}

// walk visits n, dispatching statements to effect classification. It
// recurses manually so each node sees its enclosing context.
func (w *escapeWalker) walk(n ast.Node, ctx walkCtx) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.BlockStmt:
		for _, s := range n.List {
			w.walk(s, ctx)
		}
	case *ast.IfStmt:
		w.walk(n.Init, ctx)
		w.walkExpr(n.Cond, ctx)
		w.walk(n.Body, ctx)
		w.walk(n.Else, ctx)
	case *ast.ForStmt:
		inner := ctx
		inner.loopDepth++
		w.walk(n.Init, inner)
		w.walkExpr(n.Cond, inner)
		w.walk(n.Post, inner)
		w.walk(n.Body, inner)
	case *ast.RangeStmt:
		inner := ctx
		inner.loopDepth++
		w.walkExpr(n.X, ctx)
		// An inner map range is itself suspect, but the enclosing Inspect
		// visits it separately; here it only contributes its body effects.
		if n.Tok == token.ASSIGN {
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e != nil {
					w.checkWrite(e, token.ASSIGN, nil, inner)
				}
			}
		}
		w.walk(n.Body, inner)
	case *ast.SwitchStmt:
		inner := ctx
		inner.switchDepth++
		w.walk(n.Init, ctx)
		w.walkExpr(n.Tag, ctx)
		for _, clause := range n.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.walkExpr(e, ctx)
				}
				for _, s := range cc.Body {
					w.walk(s, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		inner := ctx
		inner.switchDepth++
		w.walk(n.Init, ctx)
		w.walk(n.Assign, ctx)
		for _, clause := range n.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					w.walk(s, inner)
				}
			}
		}
	case *ast.SelectStmt:
		inner := ctx
		inner.switchDepth++
		for _, clause := range n.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.walk(cc.Comm, inner)
				for _, s := range cc.Body {
					w.walk(s, inner)
				}
			}
		}
	case *ast.BranchStmt:
		switch n.Tok {
		case token.BREAK:
			if ctx.funcDepth > 0 {
				return
			}
			if n.Label != nil {
				w.escape("labeled break exits the loop early")
			} else if ctx.loopDepth == 0 && ctx.switchDepth == 0 {
				w.escape("break exits the loop early")
			}
		case token.GOTO:
			if ctx.funcDepth == 0 {
				w.escape("goto may exit the loop early")
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.walkExpr(r, ctx)
		}
		if ctx.funcDepth == 0 {
			w.escape("return exits the loop early")
		}
	case *ast.SendStmt:
		w.escape("channel send publishes values in iteration order")
	case *ast.DeferStmt, *ast.GoStmt:
		// Reported separately (GoStmt) or out of scope; still scan args.
		if d, ok := n.(*ast.DeferStmt); ok {
			w.walkExpr(d.Call, ctx)
		}
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0]
			}
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(w.info, call, "append") {
				w.checkAppend(lhs, call, ctx)
				for _, arg := range call.Args[1:] {
					w.walkExpr(arg, ctx)
				}
				continue
			}
			w.checkWrite(lhs, n.Tok, rhs, ctx)
			if rhs != nil {
				w.walkExpr(rhs, ctx)
			}
		}
	case *ast.IncDecStmt:
		w.checkWrite(n.X, n.Tok, nil, ctx)
	case *ast.ExprStmt:
		w.walkExpr(n.X, ctx)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, ctx)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walk(n.Stmt, ctx)
	}
}

// walkExpr scans an expression for calls and function literals.
func (w *escapeWalker) walkExpr(e ast.Expr, ctx walkCtx) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.FuncLit:
		inner := ctx
		inner.funcDepth++
		w.walk(e.Body, inner)
	case *ast.CallExpr:
		w.checkCall(e, ctx)
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				inner := ctx
				inner.funcDepth++
				w.walk(n.Body, inner)
				return false
			case *ast.CallExpr:
				w.checkCall(n, ctx)
				return false
			}
			return true
		})
	}
}

// checkCall classifies a call inside the loop body.
func (w *escapeWalker) checkCall(call *ast.CallExpr, ctx walkCtx) {
	switch {
	case isBuiltin(w.info, call, "append"):
		// An append whose result is discarded or nested has no visible
		// destination here; the enclosing AssignStmt case handles the
		// common shape. Scan arguments for nested calls.
	case isBuiltin(w.info, call, "delete"):
		// delete(m2, k) removes a distinct key per iteration, and deleting
		// a loop-independent key is idempotent; both are order-safe.
		return
	case isBuiltin(w.info, call, "len"), isBuiltin(w.info, call, "cap"),
		isBuiltin(w.info, call, "min"), isBuiltin(w.info, call, "max"),
		isBuiltin(w.info, call, "copy"):
	default:
		// A call receiving the loop variables can do anything with them —
		// hash, print, accumulate — in iteration order.
		for _, arg := range call.Args {
			if w.usesLoopVar(arg) {
				w.escape(fmt.Sprintf("iteration order escapes into call %s", types.ExprString(call.Fun)))
				return
			}
		}
		// A method call on a loop variable leaks order the same way.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && w.usesLoopVar(sel.X) {
			w.escape(fmt.Sprintf("iteration order escapes into call %s", types.ExprString(call.Fun)))
			return
		}
	}
	for _, arg := range call.Args {
		w.walkExpr(arg, ctx)
	}
}

// checkAppend handles `lhs = append(src, ...)`.
func (w *escapeWalker) checkAppend(lhs ast.Expr, call *ast.CallExpr, ctx walkCtx) {
	root := w.rootObj(lhs)
	if root == nil || w.inner[root] || w.loopVars[root] {
		return // per-iteration slice
	}
	id, isIdent := lhs.(*ast.Ident)
	if !isIdent {
		w.escape(fmt.Sprintf("append to %q records iteration order", types.ExprString(lhs)))
		return
	}
	if w.esc == "" {
		w.esc = fmt.Sprintf("append to %q records iteration order", id.Name)
	}
	// Sortability: all appends must target this same object.
	obj := w.objOf(id)
	if w.sortable == nil && w.onlyAppends {
		w.sortable = id
	} else if w.sortable != nil && w.objOf(w.sortable) != obj {
		w.sortable = nil
		w.onlyAppends = false
	}
}

// checkWrite classifies one assignment to lhs with operator tok.
func (w *escapeWalker) checkWrite(lhs ast.Expr, tok token.Token, rhs ast.Expr, ctx walkCtx) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	root := w.rootObj(lhs)
	if root == nil || w.inner[root] || w.loopVars[root] {
		return // per-iteration or loop-variable state
	}
	// Distinct-key stores: out[k] = ... touches a different element each
	// iteration, so ordering between iterations cannot matter.
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && w.usesLoopVar(ix.Index) {
		return
	}
	switch tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if w.isInteger(lhs) {
			return // commutative, associative integer accumulation
		}
		w.escape(fmt.Sprintf("order-dependent %s to %q", tok, types.ExprString(lhs)))
	case token.INC, token.DEC:
		if w.isInteger(lhs) {
			return
		}
		w.escape(fmt.Sprintf("order-dependent %s of %q", tok, types.ExprString(lhs)))
	case token.ASSIGN, token.DEFINE:
		// Overwriting an outer variable with an iteration-independent
		// value ("found = true") lands on the same state whatever the
		// order.
		if rhs != nil && !w.usesLoopVar(rhs) && !hasCall(rhs) {
			return
		}
		w.escape(fmt.Sprintf("last-writer-wins assignment to %q", types.ExprString(lhs)))
	default:
		w.escape(fmt.Sprintf("order-dependent %s to %q", tok, types.ExprString(lhs)))
	}
}

func (w *escapeWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.info.Uses[id]; obj != nil {
		return obj
	}
	return w.info.Defs[id]
}

// rootObj resolves the outermost base identifier of an lvalue chain
// (x, x.f, x[i], *x, ...).
func (w *escapeWalker) rootObj(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return w.objOf(e)
	case *ast.SelectorExpr:
		return w.rootObj(e.X)
	case *ast.IndexExpr:
		return w.rootObj(e.X)
	case *ast.StarExpr:
		return w.rootObj(e.X)
	case *ast.ParenExpr:
		return w.rootObj(e.X)
	}
	return nil
}

func (w *escapeWalker) usesLoopVar(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.loopVars[w.info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

func (w *escapeWalker) isInteger(e ast.Expr) bool {
	t := w.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// followingStmts returns the statements after stmt in its innermost
// enclosing block (empty when not found).
func followingStmts(f *ast.File, stmt ast.Stmt) []ast.Stmt {
	var following []ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		if following != nil {
			return false
		}
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, s := range list {
			if s == stmt {
				following = list[i+1:]
				return false
			}
		}
		return true
	})
	return following
}

// sortedAfter reports whether the appended-to slice is passed to a sort
// before any other use in the statements following the loop.
func (c *checker) sortedAfter(target *ast.Ident, following []ast.Stmt) bool {
	info := c.pass.TypesInfo
	obj := info.Uses[target]
	if obj == nil {
		obj = info.Defs[target]
	}
	if obj == nil {
		return false
	}
	uses := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	for _, s := range following {
		if !uses(s) {
			continue
		}
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		pkg, name := c.calleePkgFunc(call)
		isSort := (pkg == "sort" && (strings.HasPrefix(name, "Sort") || name == "Ints" ||
			name == "Strings" || name == "Float64s" || name == "Slice" ||
			name == "SliceStable" || name == "Stable")) ||
			(pkg == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return false
		}
		// The collected slice must be what is being sorted.
		if id, ok := call.Args[0].(*ast.Ident); ok && info.Uses[id] == obj {
			return true
		}
		return false
	}
	return false
}
