package verify

import (
	"testing"
	"time"

	"repro/internal/prog"
)

func TestPanelIsDiverse(t *testing.T) {
	panel := Panel()
	if len(panel) < 6 {
		t.Fatalf("panel has %d configurations, want at least 6", len(panel))
	}
	seen := map[string]bool{}
	for _, c := range panel {
		if seen[c.Name] {
			t.Errorf("duplicate panel configuration %q", c.Name)
		}
		seen[c.Name] = true
		if !c.CheckInvariants {
			t.Errorf("panel configuration %q runs without the invariant checker", c.Name)
		}
	}
	var wrongPath, clustered, fifo, icache bool
	for _, c := range panel {
		wrongPath = wrongPath || c.WrongPathExecution
		clustered = clustered || c.Clusters > 1
		fifo = fifo || (c.Scheduler != nil && c.Scheduler.FIFO.FIFOsPerCluster > 0)
		icache = icache || c.ICache != nil
	}
	if !wrongPath || !clustered || !fifo || !icache {
		t.Errorf("panel misses a mechanism: wrongPath=%v clustered=%v fifo=%v icache=%v",
			wrongPath, clustered, fifo, icache)
	}
}

// TestDifferentialSeededCorpus is the deterministic heart of the
// harness: 50 generated programs, spanning loop depths, footprints and
// instruction mixes, each run through the full panel.
func TestDifferentialSeededCorpus(t *testing.T) {
	start := time.Now() //ce:nondet-ok wall-clock budget for -short trimming, not simulated time
	corpus := make([]prog.RandomConfig, 0, 50)
	for seed := int64(0); seed < 35; seed++ {
		corpus = append(corpus, prog.RandomConfig{Seed: seed})
	}
	for seed := int64(0); seed < 5; seed++ {
		// Deep loops over a tiny footprint: store/load collisions.
		corpus = append(corpus, prog.RandomConfig{Seed: 100 + seed, LoopDepth: 4, MemWords: 8, Size: 60})
		// Branch-heavy: mispredictions and squashes dominate.
		corpus = append(corpus, prog.RandomConfig{Seed: 200 + seed, Branch: 6, ALU: 4, Load: 2, Store: 2})
		// Memory-heavy straight-line code over a large footprint.
		corpus = append(corpus, prog.RandomConfig{Seed: 300 + seed, LoopDepth: 1, Load: 6, Store: 4, ALU: 4, Branch: 1, MemWords: 512, Size: 200})
	}
	if len(corpus) != 50 {
		t.Fatalf("corpus has %d entries, want 50", len(corpus))
	}
	for _, rc := range corpus {
		rc := rc
		if err := CheckSeed(rc); err != nil {
			t.Errorf("%+v:\n%v", rc, err)
		}
	}
	if d := time.Since(start); d > 60*time.Second { //ce:nondet-ok wall-clock budget check, not simulated time
		t.Errorf("corpus took %v, budget 60s", d)
	}
}

// TestCheckSegmented pins the segment-parallel seam on a workload long
// enough to cross warm-start boundaries: exact stitching equals the
// monolithic run on every replay-capable panel configuration, and
// sampled stitching stays inside its error bars.
func TestCheckSegmented(t *testing.T) {
	if err := CheckSegmented("micro.branchy", 4); err != nil {
		t.Error(err)
	}
}

// TestCheckSegmentedStreamed re-proves the segmented seam through the
// disk-backed trace path: streamed capture ≡ in-memory capture,
// streamed monolithic replay ≡ in-memory replay per configuration, and
// exact stitching over chunk-streaming segment readers ≡ both.
func TestCheckSegmentedStreamed(t *testing.T) {
	if err := CheckSegmentedStreamed("micro.branchy", 4, t.TempDir()); err != nil {
		t.Error(err)
	}
}
