package delaymodel

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/vlsi"
)

// This file models the two structures Section 2.1 sets aside with
// citations — the register file (Farkas, Jouppi & Chow) and caches (Wada
// et al.; Wilton & Jouppi) — with the same first-order methodology used
// for the rename logic: a RAM access path (decode, wordline, bitline,
// sense) whose wire lengths grow with the port count and capacity.
// Section 6 argues these structures, unlike window and bypass logic, can
// be pipelined; PipelineStages quantifies that.

// RegFileDelay is the register file access critical path.
type RegFileDelay struct {
	Decoder  float64
	Wordline float64
	Bitline  float64
	SenseAmp float64
}

// Total returns the access time in picoseconds.
func (d RegFileDelay) Total() float64 {
	return d.Decoder + d.Wordline + d.Bitline + d.SenseAmp
}

// Register file geometry constants (λ per port for the cell pitch in each
// dimension; a cell grows in both width and height with every port).
const (
	rfCellPitchPerPort = 5.0
	rfBitsPerWord      = 64
)

// RegFile models the access time of a multiported register file with the
// given number of registers and ports (an issue width of W needs about 3W
// ports: two reads and one write per instruction). Wordline length grows
// with bits×portPitch, bitline length with registers×portPitch, so delay
// grows roughly quadratically with port count — the reason Section 5.4
// counts fewer ports per cluster copy as a clustering benefit.
func RegFile(t vlsi.Technology, registers, ports int) (RegFileDelay, error) {
	c, err := calibFor(t)
	if err != nil {
		return RegFileDelay{}, err
	}
	if registers < 1 || ports < 1 {
		return RegFileDelay{}, fmt.Errorf("delaymodel: invalid register file %d regs × %d ports", registers, ports)
	}
	p := float64(ports)
	// Logic components borrow the rename map table's calibrated decode
	// and sense constants (it is the same circuit style); the rename
	// table's issue-width terms are replaced by explicit wire terms.
	dec := c.rename.decoder.c0 * (1 + 0.05*math.Log2(float64(registers)/32))
	wl := c.rename.wordline.c0 * 0.8
	bl := c.rename.bitline.c0 * 0.8
	sa := c.rename.senseAmp.c0

	wordline := circuit.Wire{Tech: t, LenLamda: rfBitsPerWord * rfCellPitchPerPort * p}
	bitline := circuit.Wire{Tech: t, LenLamda: float64(registers) * rfCellPitchPerPort * p}
	return RegFileDelay{
		Decoder:  dec,
		Wordline: wl + wordline.DistributedDelay() + 0.35*p,
		Bitline:  bl + bitline.DistributedDelay() + 0.9*p,
		SenseAmp: sa,
	}, nil
}

// CacheDelay is the cache access critical path.
type CacheDelay struct {
	Decoder    float64
	WordBit    float64 // wordline + bitline through the data array
	SenseAmp   float64
	TagCompare float64
	MuxDrive   float64 // way select and output drive
}

// Total returns the access time in picoseconds.
func (d CacheDelay) Total() float64 {
	return d.Decoder + d.WordBit + d.SenseAmp + d.TagCompare + d.MuxDrive
}

// CacheAccess models a set-associative SRAM cache's access time in the
// style of Wada et al. / Wilton & Jouppi: the data array is split into
// subarrays whose wordline/bitline wires grow with the square root of
// capacity; associativity adds tag comparison and way-select muxing.
func CacheAccess(t vlsi.Technology, sizeBytes, ways int) (CacheDelay, error) {
	c, err := calibFor(t)
	if err != nil {
		return CacheDelay{}, err
	}
	if sizeBytes < 1024 || ways < 1 {
		return CacheDelay{}, fmt.Errorf("delaymodel: invalid cache %dB × %d ways", sizeBytes, ways)
	}
	bits := float64(sizeBytes) * 8
	// Square subarray: side = sqrt(bits) cells of 4λ pitch, banked into 4.
	side := math.Sqrt(bits) / 2 * 4 // λ
	wire := circuit.Wire{Tech: t, LenLamda: side}
	dec := c.rename.decoder.c0 * (1 + 0.08*math.Log2(bits/(32*1024*8)+1))
	wordbit := (c.rename.wordline.c0+c.rename.bitline.c0)*0.9 + 2*wire.DistributedDelay()
	sa := c.rename.senseAmp.c0
	tag := (30 + 12*math.Log2(float64(ways)+1)) * t.LogicScale
	mux := (20 + 8*float64(ways)) * t.LogicScale
	return CacheDelay{
		Decoder:    dec,
		WordBit:    wordbit,
		SenseAmp:   sa,
		TagCompare: tag,
		MuxDrive:   mux,
	}, nil
}

// PipelineStages returns how many pipeline stages a structure of the given
// delay needs at a target cycle time — Section 6's observation that
// register files and caches can be pipelined while window and bypass logic
// cannot (without losing back-to-back execution of dependents).
func PipelineStages(delayPs, cycleTimePs float64) (int, error) {
	if delayPs < 0 || cycleTimePs <= 0 {
		return 0, fmt.Errorf("delaymodel: invalid delays %g/%g", delayPs, cycleTimePs)
	}
	return int(math.Ceil(delayPs / cycleTimePs)), nil
}

// ClusteredRegFileComparison contrasts the central register file of an
// N-wide machine with the per-cluster copies of Section 5.4: each copy
// keeps all registers but serves only one cluster's ports (plus one write
// port per remote cluster for propagated results).
type ClusteredRegFileComparison struct {
	CentralPorts int
	CentralDelay RegFileDelay
	ClusterPorts int
	ClusterDelay RegFileDelay
}

// CompareClusteredRegFile computes the Section 5.4 claim "using multiple
// copies of the register file reduces the number of ports on the register
// file and will make the access time of the register file faster" for an
// issueWidth-wide machine split into `clusters` clusters.
func CompareClusteredRegFile(t vlsi.Technology, registers, issueWidth, clusters int) (ClusteredRegFileComparison, error) {
	if clusters < 1 || issueWidth < clusters {
		return ClusteredRegFileComparison{}, fmt.Errorf("delaymodel: invalid clustering %d-way × %d clusters", issueWidth, clusters)
	}
	centralPorts := 3 * issueWidth
	central, err := RegFile(t, registers, centralPorts)
	if err != nil {
		return ClusteredRegFileComparison{}, err
	}
	perCluster := issueWidth / clusters
	// 3 ports per local instruction plus one write port per remote
	// cluster to sink propagated results.
	clusterPorts := 3*perCluster + (clusters - 1)
	cluster, err := RegFile(t, registers, clusterPorts)
	if err != nil {
		return ClusteredRegFileComparison{}, err
	}
	return ClusteredRegFileComparison{
		CentralPorts: centralPorts,
		CentralDelay: central,
		ClusterPorts: clusterPorts,
		ClusterDelay: cluster,
	}, nil
}
