package prog

// Seeded random program generator for the differential harness in
// internal/verify. Generated programs exercise the ALU/load/store/branch
// mix, loop nesting and memory footprint the timing models are sensitive
// to, while terminating by construction: backward branches occur only as
// counted loops over reserved counter registers ($s0–$s3), every other
// branch is forward, and divisors are forced odd so no architectural
// path divides by zero.

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// RandomConfig tunes the random program generator. The zero value of any
// field selects its default.
type RandomConfig struct {
	// Seed selects the program; equal configs generate identical programs.
	Seed int64
	// Size is the approximate number of static body instructions
	// (default 120).
	Size int
	// LoopDepth bounds counted-loop nesting, 0–4 (default 2).
	LoopDepth int
	// MemWords is the scratch-array footprint in 32-bit words (default 64).
	MemWords int
	// ALU, Load, Store and Branch weight the instruction mix
	// (defaults 8/3/2/3). A zero weight disables that kind entirely, so
	// the zero value of RandomConfig uses the defaults, and a config with
	// any weight set uses exactly the weights given.
	ALU, Load, Store, Branch int
}

func (c RandomConfig) withDefaults() RandomConfig {
	if c.Size <= 0 {
		c.Size = 120
	}
	if c.LoopDepth <= 0 {
		c.LoopDepth = 2
	}
	if c.LoopDepth > 4 {
		c.LoopDepth = 4
	}
	if c.MemWords <= 0 {
		c.MemWords = 64
	}
	if c.ALU == 0 && c.Load == 0 && c.Store == 0 && c.Branch == 0 {
		c.ALU, c.Load, c.Store, c.Branch = 8, 3, 2, 3
	}
	return c
}

// pool is the set of registers random instructions read and write.
// $s0–$s3 are reserved as loop counters, $gp holds the scratch-array
// base, $k0 is the divisor scratch, and $zero stays hardwired.
var pool = []string{
	"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
	"$s4", "$s5", "$s6", "$s7", "$a0", "$a1", "$a2", "$a3",
	"$v0", "$v1", "$t8", "$t9",
}

type rgen struct {
	cfg    RandomConfig
	rng    *rand.Rand
	b      strings.Builder
	labels int
}

// Random generates the program selected by c and assembles it.
func Random(c RandomConfig) (*isa.Program, error) {
	c = c.withDefaults()
	name := fmt.Sprintf("random.%d", c.Seed)
	p, err := asm.Assemble(name+".s", RandomSource(c))
	if err != nil {
		return nil, fmt.Errorf("prog: generated program %s does not assemble: %w", name, err)
	}
	p.Name = name
	return p, nil
}

// RandomSource generates the assembly source of the program selected by
// c. It is exposed so a diverging program found by the fuzzer can be
// printed and minimized by hand.
func RandomSource(c RandomConfig) string {
	c = c.withDefaults()
	g := &rgen{cfg: c, rng: rand.New(rand.NewSource(c.Seed))}
	fmt.Fprintf(&g.b, "# generated: seed=%d size=%d loopdepth=%d memwords=%d mix=%d/%d/%d/%d\n",
		c.Seed, c.Size, c.LoopDepth, c.MemWords, c.ALU, c.Load, c.Store, c.Branch)
	g.b.WriteString("\t\t.data\n")
	g.b.WriteString("scratch:")
	for i := 0; i < c.MemWords; i++ {
		if i%8 == 0 {
			g.b.WriteString("\n\t\t.word ")
		} else {
			g.b.WriteString(", ")
		}
		fmt.Fprintf(&g.b, "%d", int32(g.rng.Uint32()))
	}
	g.b.WriteString("\n\t\t.text\n")
	g.b.WriteString("main:\tla   $gp, scratch\n")
	for _, r := range pool {
		g.inst("li   %s, %d", r, int32(g.rng.Uint32()))
	}
	g.block(0, c.Size)
	// Capture the final architectural state in the output stream: every
	// pool register, plus a sample of the scratch array.
	for _, r := range pool {
		g.inst("out  %s", r)
	}
	for i := 0; i < c.MemWords && i < 8; i++ {
		g.inst("lw   $k0, %d($gp)", 4*i)
		g.inst("out  $k0")
	}
	g.inst("halt")
	return g.b.String()
}

func (g *rgen) inst(format string, args ...any) {
	g.b.WriteString("\t\t")
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *rgen) label() string {
	g.labels++
	return fmt.Sprintf("L%d", g.labels)
}

func (g *rgen) reg() string { return pool[g.rng.Intn(len(pool))] }

// block emits about budget instructions at the given loop depth and
// returns the number emitted.
func (g *rgen) block(depth, budget int) int {
	emitted := 0
	for emitted < budget {
		remaining := budget - emitted
		// Nested counted loop: bounded trip count on a reserved counter.
		if depth < g.cfg.LoopDepth && remaining >= 8 && g.rng.Intn(8) == 0 {
			counter := fmt.Sprintf("$s%d", depth)
			trip := 2 + g.rng.Intn(5)
			top := g.label()
			g.inst("li   %s, %d", counter, trip)
			g.b.WriteString(top + ":\n")
			body := g.block(depth+1, 3+g.rng.Intn(remaining-5))
			g.inst("addi %s, %s, -1", counter, counter)
			g.inst("bgtz %s, %s", counter, top)
			emitted += body + 3
			continue
		}
		if g.rng.Intn(24) == 0 {
			g.inst("out  %s", g.reg())
			emitted++
			continue
		}
		emitted += g.operation(remaining)
	}
	return emitted
}

// operation emits one instruction of the weighted mix (or a forward
// branch plus its skippable block) and returns the instruction count.
func (g *rgen) operation(remaining int) int {
	c := g.cfg
	w := g.rng.Intn(c.ALU + c.Load + c.Store + c.Branch)
	switch {
	case w < c.ALU:
		return g.alu()
	case w < c.ALU+c.Load:
		return g.load()
	case w < c.ALU+c.Load+c.Store:
		return g.store()
	default:
		return g.branch(remaining)
	}
}

var regOps = []string{"add", "sub", "and", "or", "xor", "nor", "sllv", "srlv", "srav", "slt", "sltu", "mul"}
var immOps = []string{"addi", "andi", "ori", "xori", "slti", "sltiu"}
var shiftOps = []string{"slli", "srli", "srai"}

func (g *rgen) alu() int {
	switch r := g.rng.Intn(10); {
	case r < 5:
		g.inst("%-4s %s, %s, %s", regOps[g.rng.Intn(len(regOps))], g.reg(), g.reg(), g.reg())
		return 1
	case r < 6:
		// Division: force the divisor odd so it is never zero (int32
		// overflow on MinInt32/-1 wraps, which Go and the emulator agree
		// on).
		op := "div"
		if g.rng.Intn(2) == 0 {
			op = "rem"
		}
		g.inst("ori  $k0, %s, 1", g.reg())
		g.inst("%-4s %s, %s, $k0", op, g.reg(), g.reg())
		return 2
	case r < 7:
		g.inst("%-4s %s, %s, %d", shiftOps[g.rng.Intn(len(shiftOps))], g.reg(), g.reg(), g.rng.Intn(32))
		return 1
	case r < 8:
		g.inst("lui  %s, %d", g.reg(), g.rng.Intn(1<<16))
		return 1
	default:
		g.inst("%-4s %s, %s, %d", immOps[g.rng.Intn(len(immOps))], g.reg(), g.reg(), g.rng.Intn(1<<16)-(1<<15))
		return 1
	}
}

func (g *rgen) load() int {
	if g.rng.Intn(4) == 0 {
		op := "lb"
		if g.rng.Intn(2) == 0 {
			op = "lbu"
		}
		g.inst("%-4s %s, %d($gp)", op, g.reg(), g.rng.Intn(4*g.cfg.MemWords))
	} else {
		g.inst("lw   %s, %d($gp)", g.reg(), 4*g.rng.Intn(g.cfg.MemWords))
	}
	return 1
}

func (g *rgen) store() int {
	if g.rng.Intn(4) == 0 {
		g.inst("sb   %s, %d($gp)", g.reg(), g.rng.Intn(4*g.cfg.MemWords))
	} else {
		g.inst("sw   %s, %d($gp)", g.reg(), 4*g.rng.Intn(g.cfg.MemWords))
	}
	return 1
}

// branch emits a data-dependent forward branch skipping a small block —
// the only non-loop control flow, so it cannot affect termination.
func (g *rgen) branch(remaining int) int {
	skip := g.label()
	if g.rng.Intn(2) == 0 {
		ops := []string{"beq", "bne", "blt", "bge"}
		g.inst("%-4s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.reg(), g.reg(), skip)
	} else {
		ops := []string{"bltz", "bgez", "blez", "bgtz"}
		g.inst("%-4s %s, %s", ops[g.rng.Intn(len(ops))], g.reg(), skip)
	}
	n := 1 + g.rng.Intn(4)
	if max := remaining - 1; n > max {
		n = max
	}
	emitted := 1
	for i := 0; i < n; i++ {
		switch r := g.rng.Intn(4); {
		case r == 0 && g.cfg.Load > 0:
			emitted += g.load()
		case r == 1 && g.cfg.Store > 0:
			emitted += g.store()
		case g.cfg.ALU > 0:
			emitted += g.alu()
		default:
			g.inst("nop")
			emitted++
		}
	}
	g.b.WriteString(skip + ":\n")
	return emitted
}
