package badmod

import (
	"sync"

	"badmod/dep"
)

// HotGrow reaches an allocating callee in another package: only the
// AllocFact exported by dep's pass makes this visible.
//
//ce:hot
func HotGrow() []int {
	return dep.Grow(8)
}

// Epoch transitively reads the wall clock inside a //ce:deterministic
// package.
func Epoch() int64 {
	return dep.Stamp()
}

// Box holds its mutex across cross-package file I/O.
type Box struct {
	mu sync.Mutex
	n  int
}

// Checkpoint is the seeded lock-across-blocking-call violation.
func (b *Box) Checkpoint(path string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
	return dep.Save(path, nil)
}

// ReadState lets dep.Load's raw environment error escape unclassified.
func ReadState(path string) ([]byte, error) {
	return dep.Load(path)
}
