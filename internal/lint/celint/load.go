package celint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// loadedPackage is one package ready for analysis.
type loadedPackage struct {
	importPath string
	fset       *token.FileSet
	files      []*ast.File
	types      *types.Package
	info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
}

// loadPackages resolves patterns through `go list -deps -test -export`
// and type-checks every module root package from source, using the gc
// export data go list produced for all dependencies. Test variants
// (pkg [pkg.test]) replace their plain package so _test.go files are
// analyzed too.
func loadPackages(patterns []string) ([]*loadedPackage, error) {
	args := append([]string{
		"list", "-deps", "-test", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,ForTest,ImportMap",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var listed []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		listed = append(listed, p)
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// Pick roots: non-dep, non-stdlib packages, preferring the in-package
	// test variant over the plain package, and skipping the synthesized
	// .test mains (their sole GoFile is generated).
	hasTestVariant := make(map[string]bool)
	for _, p := range listed {
		if p.ForTest != "" && !p.DepOnly && strings.HasPrefix(p.ImportPath, p.ForTest+" ") {
			hasTestVariant[p.ForTest] = true
		}
	}
	var pkgs []*loadedPackage
	for _, p := range listed {
		if p.DepOnly || p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if hasTestVariant[p.ImportPath] {
			continue // superseded by pkg [pkg.test]
		}
		if len(p.CgoFiles) > 0 {
			fmt.Fprintf(os.Stderr, "celint: skipping %s: cgo package\n", p.ImportPath)
			continue
		}
		lp, err := typecheck(p, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one package from source, resolving
// imports through gc export data files.
func typecheck(p *listPackage, exports map[string]string) (*loadedPackage, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(importPath string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[importPath]; ok {
			importPath = mapped
		}
		file, ok := exports[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	// "pkg [pkg.test]" type-checks under its real import path.
	path := p.ImportPath
	if p.ForTest != "" {
		path = p.ForTest
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", p.ImportPath, err)
	}
	return &loadedPackage{
		importPath: p.ImportPath,
		fset:       fset,
		files:      files,
		types:      tpkg,
		info:       info,
	}, nil
}
