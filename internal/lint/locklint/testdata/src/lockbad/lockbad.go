// Package lockbad seeds every locklint finding kind next to the clean
// idioms the analyzer must not flag.
package lockbad

import (
	"os"
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	n  int
	ch chan int
}

func (b *box) badIO(path string) {
	b.mu.Lock()
	_ = os.WriteFile(path, nil, 0o644) // want "mutex b.mu held across call to os.WriteFile"
	b.mu.Unlock()
}

func (b *box) badSleep() {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // want "mutex b.mu held across call to time.Sleep"
}

func (b *box) badSend() {
	b.mu.Lock()
	b.ch <- 1 // want "mutex b.mu held across channel send"
	b.mu.Unlock()
}

func (b *box) badRecv() int {
	b.mu.Lock()
	v := <-b.ch // want "mutex b.mu held across channel receive"
	b.mu.Unlock()
	return v
}

func (b *box) badSelect() {
	b.mu.Lock()
	select { // want "mutex b.mu held across select with no default"
	case v := <-b.ch:
		b.n = v
	}
	b.mu.Unlock()
}

func (b *box) badWait(wg *sync.WaitGroup) {
	b.mu.Lock()
	wg.Wait() // want "mutex b.mu held across call to \\(\\*sync.WaitGroup\\).Wait"
	b.mu.Unlock()
}

// Early return with the lock held deadlocks the next caller.
func (b *box) badReturn(v int) error {
	b.mu.Lock()
	if v < 0 {
		return os.ErrInvalid // want "return leaves mutex b.mu locked"
	}
	b.n = v
	b.mu.Unlock()
	return nil
}

func (b *box) badPanic(v int) {
	b.mu.Lock()
	if v < 0 {
		panic("negative") // want "panic leaves mutex b.mu locked"
	}
	b.n = v
	b.mu.Unlock()
}

func (b *box) badEnd() {
	b.mu.Lock()
	b.n++
} // want "function exit leaves mutex b.mu locked"

// flush blocks one hop down; the finding at the caller carries the chain.
func flush(path string) error {
	return os.WriteFile(path, nil, 0o644)
}

func (b *box) badHelper(path string) {
	b.mu.Lock()
	_ = flush(path) // want "mutex b.mu held across call to flush \\(blocks: flush: call to os.WriteFile\\)"
	b.mu.Unlock()
}

// A hatch with a reason silences the finding.
func (b *box) hatched(path string) {
	b.mu.Lock()
	_ = os.WriteFile(path, nil, 0o644) //ce:lock-ok startup path, no other goroutine is live yet
	b.mu.Unlock()
}

// --- clean idioms below: no findings ---

func (b *box) clean(v int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n += v
	return b.n
}

// A select with a default polls; its clauses do not block.
func (b *box) poll() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		b.n = v
		return true
	default:
		return false
	}
}

// Branches that release before returning are fine.
func (b *box) branchy(v int) error {
	b.mu.Lock()
	if v < 0 {
		b.mu.Unlock()
		return os.ErrInvalid
	}
	b.n = v
	b.mu.Unlock()
	return nil
}

// Blocking after the unlock is fine.
func (b *box) after(path string) {
	b.mu.Lock()
	p := b.n
	b.mu.Unlock()
	_ = os.WriteFile(path, []byte{byte(p)}, 0o644)
}

// The goroutine's blocking is its own, not the spawner's.
func (b *box) spawn(path string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		_ = os.WriteFile(path, nil, 0o644)
	}()
}

// An unlock inside a deferred closure still counts as deferred.
func (b *box) deferredClosure(v int) error {
	b.mu.Lock()
	defer func() {
		b.mu.Unlock()
	}()
	if v < 0 {
		return os.ErrInvalid
	}
	b.n = v
	return nil
}

// --- lock-value copies ---

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) get() int { // want "value receiver of method get copies a lock \\(counter contains sync.Mutex\\); use a pointer receiver"
	return c.n
}

func addAll(c counter, v int) int { // want "parameter c passes a lock by value \\(counter contains sync.Mutex\\); pass a pointer"
	return c.n + v
}

func snapshot(p *counter) int {
	c := *p // want "dereference copies a lock \\(counter contains sync.Mutex\\)"
	return c.n
}

// Pointers are fine.
func bump(p *counter) {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}
