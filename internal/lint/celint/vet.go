package celint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// vetConfig mirrors the fields of cmd/go's per-package vet config file
// (the JSON handed to -vettool binaries; see x/tools unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion implements -V=full. cmd/go hashes this line into the
// build cache key, so it must be stable for a given binary: embed the
// content hash of the executable itself.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	fmt.Fprintf(stdout, "%s version devel buildID=%x\n", exe, h.Sum(nil)[:16])
	return 0
}

// vetMode analyzes the single compilation unit described by cfgPath,
// following the unitchecker protocol: diagnostics to stderr, exit 1 when
// any are found, and always produce the (empty — celint exports no
// facts) VetxOutput file so cmd/go's action cache has its output.
func vetMode(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(stderr, "celint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintln(stderr, "celint:", err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: celint has no facts to export.
		writeVetx()
		return 0
	}
	pkg, err := typecheckVetUnit(cfg)
	if err != nil {
		writeVetx()
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	findings, err := runAnalyzers(pkg)
	if err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	writeVetx()
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// typecheckVetUnit parses and type-checks the unit from cfg, resolving
// imports via the export files cmd/go listed in PackageFile.
func typecheckVetUnit(cfg *vetConfig) (*loadedPackage, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}
	return &loadedPackage{
		importPath: cfg.ImportPath,
		fset:       fset,
		files:      files,
		types:      tpkg,
		info:       info,
	}, nil
}
