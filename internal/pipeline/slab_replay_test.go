package pipeline

// Tests for the slab execution source: a simulator reading shared
// decoded slabs must be statistically indistinguishable from lockstep
// execution and from streaming replay — gang replay changes where the
// records come from, never what they are — and the slab path must keep
// the construction-bounded allocation budget (its steady state is an
// index and a bounds check, with one refill per quarter-million
// records).

import (
	"testing"

	"repro/internal/prog"
	"repro/internal/trace"
)

func captureFor(t *testing.T, name string) *trace.Trace {
	t.Helper()
	w, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Capture(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSlabReplayMatchesLockstep(t *testing.T) {
	for _, name := range []string{"compress", "micro.branchy"} {
		tr := captureFor(t, name)
		// Two cache regimes: ample (pure sharing) and a 1-byte budget
		// (every window release evicts, maximal churn mid-simulation).
		for _, budget := range []int64{tr.DecodedBytes(), 1} {
			cache := trace.NewSlabCache(budget)
			for _, c := range replayConfigs() {
				exec := runProgram(t, c, tr.Program())
				cur, err := trace.NewSlabCursor(cache, tr)
				if err != nil {
					t.Fatal(err)
				}
				sim, err := NewSlabReplay(c, cur)
				if err != nil {
					t.Fatal(err)
				}
				slab, err := sim.Run(0)
				if err != nil {
					t.Fatalf("%s/%s: %v", c.Name, name, err)
				}
				exec.HostAllocs, slab.HostAllocs = 0, 0
				exec.HostWallSeconds, slab.HostWallSeconds = 0, 0
				if slab.Cycles != exec.Cycles || slab.Committed != exec.Committed ||
					slab.EmuSteps != exec.EmuSteps || slab.Mispredicts != exec.Mispredicts ||
					slab.Cache != exec.Cache || slab.ICache != exec.ICache ||
					slab.ForwardedLoads != exec.ForwardedLoads {
					t.Errorf("%s/%s (budget %d): slab %+v != lockstep %+v", c.Name, name, budget, slab, exec)
				}
				if sim.StateHash() != tr.StateHash() {
					t.Errorf("%s/%s: slab simulator state hash diverges", c.Name, name)
				}
				if sim.Machine() != nil {
					t.Errorf("%s/%s: slab simulator exposes a machine", c.Name, name)
				}
			}
		}
	}
}

// TestNewSlabReplayRejectsWrongPath mirrors the streaming-replay
// refusal: a slab stream has exactly the architectural path.
func TestNewSlabReplayRejectsWrongPath(t *testing.T) {
	tr := captureFor(t, "micro.chain")
	c := cfg("wrong-path", 1, 0, window64)
	c.WrongPathExecution = true
	cache := trace.NewSlabCache(tr.DecodedBytes())
	cur, err := trace.NewSlabCursor(cache, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if _, err := NewSlabReplay(c, cur); err == nil {
		t.Fatal("NewSlabReplay accepted a wrong-path configuration")
	}
}

// TestSlabReplayRunAllocationFree holds the slab path to the same
// construction-bounded budget as streaming replay. The cache is warm
// (one throwaway run decodes every chunk), so the measured runs exercise
// the gang steady state: acquire-hit, index, release.
func TestSlabReplayRunAllocationFree(t *testing.T) {
	tr := captureFor(t, "compress")
	c := cfg("slab-alloc-guard", 1, 0, window64)
	c.PerfectBPred = false
	cache := trace.NewSlabCache(tr.DecodedBytes())
	var cycles int64
	run := func() {
		cur, err := trace.NewSlabCursor(cache, tr)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSlabReplay(c, cur)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		cycles = st.Cycles
	}
	run() // warm the cache so AllocsPerRun measures the sharing regime
	const maxPerRun = 2000
	allocs := testing.AllocsPerRun(5, run)
	if allocs > maxPerRun {
		t.Errorf("slab replay run allocates %.0f objects (limit %d): %.3f allocs/cycle over %d cycles",
			allocs, maxPerRun, allocs/float64(cycles), cycles)
	}
}

// TestSegmentSlabsMatchStreaming pins the two-axis gang: segment runs
// driven from a shared slab cache produce the same per-segment deltas —
// and hence the same stitched totals — as segment runs with private
// streaming readers.
func TestSegmentSlabsMatchStreaming(t *testing.T) {
	tr := captureFor(t, "compress")
	segs := tr.Segments(3)
	if len(segs) < 2 {
		t.Skipf("compress yields %d segment(s); need ≥ 2", len(segs))
	}
	c := cfg("seg-slabs", 1, 0, window64)
	c.PerfectBPred = false
	cache := trace.NewSlabCache(tr.DecodedBytes())
	for _, seg := range segs {
		stream, _, err := RunSegmentOpts(c, tr, seg, SegmentOpts{Warmup: -1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		slab, _, err := RunSegmentOpts(c, tr, seg, SegmentOpts{Warmup: -1, Slabs: cache}, 0)
		if err != nil {
			t.Fatal(err)
		}
		stream.HostAllocs, slab.HostAllocs = 0, 0
		stream.HostWallSeconds, slab.HostWallSeconds = 0, 0
		if slab.Cycles != stream.Cycles || slab.Committed != stream.Committed ||
			slab.EmuSteps != stream.EmuSteps || slab.Mispredicts != stream.Mispredicts ||
			slab.Cache != stream.Cache || slab.ForwardedLoads != stream.ForwardedLoads {
			t.Errorf("segment %d: slab delta %+v != streaming delta %+v", seg.Index, slab, stream)
		}
	}
	if st := cache.Stats(); st.Decodes == 0 {
		t.Fatal("segment slab runs decoded nothing; the Slabs path was not taken")
	}
}
