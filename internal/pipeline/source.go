package pipeline

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
)

// ExecSource supplies the dynamic instruction stream that drives fetch.
// The simulator is trace-driven either way; what varies is where the
// trace comes from:
//
//   - lockstep execution (New): a functional emu.Machine resolves each
//     instruction as fetch consumes it — required for wrong-path
//     execution, which steps the machine down mispredicted paths and
//     rolls it back;
//   - replay (NewReplay): a pre-captured trace.Reader streams the same
//     records without re-executing, so a sweep runs each program once
//     and times it under every configuration.
//
// The contract is exact equivalence: for the same program, Step must
// yield the identical emu.Record sequence, errors included, and
// Output/StateHash the identical final architectural results. The
// differential harness in internal/verify pins this.
type ExecSource interface {
	// Step produces the next dynamic instruction record, or emu.ErrHalted
	// after the final one.
	Step() (emu.Record, error)
	// PC is the index of the next instruction Step would produce
	// (instruction-cache probes fetch by PC before consuming).
	PC() uint32
	// Halted reports whether the stream is exhausted.
	Halted() bool
	// Program returns the program being streamed.
	Program() *isa.Program
	// Output returns the program's Out values (complete once Halted).
	Output() []int32
	// StateHash returns the final architectural digest (valid once Halted).
	StateHash() [32]byte
}

// machineSource adapts the lockstep functional emulator to ExecSource.
type machineSource struct{ m *emu.Machine }

func (ms machineSource) Step() (emu.Record, error) { return ms.m.Step() }
func (ms machineSource) PC() uint32                { return ms.m.PC() }
func (ms machineSource) Halted() bool              { return ms.m.Halted() }
func (ms machineSource) Program() *isa.Program     { return ms.m.Program() }
func (ms machineSource) Output() []int32           { return ms.m.Output }
func (ms machineSource) StateHash() [32]byte       { return ms.m.StateHash() }

// NewReplay builds a simulator driven by a replay source instead of
// lockstep execution. Wrong-path execution is refused: it must execute
// down mispredicted paths, which only a concrete machine can do — a
// trace has exactly the architectural path.
func NewReplay(cfg Config, src ExecSource) (*Simulator, error) {
	if cfg.WrongPathExecution {
		return nil, fmt.Errorf("pipeline: %s: wrong-path execution cannot run from a replay source (it executes mispredicted paths; use New)", cfg.Name)
	}
	return newSimulator(cfg, src, nil)
}

// SlabStream feeds a simulator pre-decoded record windows — in practice
// trace.SlabCursor walking a shared SlabCache, so a gang of simulators
// reads one decoded copy of the workload instead of each re-decoding the
// packed stream. Windows are immutable and remain valid until the next
// NextWindow (or Release) call; NextWindow reports with its second
// result whether the returned window is the stream's last.
type SlabStream interface {
	NextWindow() ([]emu.Record, bool, error)
	Program() *isa.Program
	Output() []int32
	StateHash() [32]byte
	Release()
}

// slabSource adapts a SlabStream to ExecSource. Its Step is an index
// and a bounds check on the current window — no per-record interface
// dispatch, no decode — with the window-refill (once per quarter-million
// records) kept out of line.
//
// Invariant: pos < len(recs) unless the stream has halted or errored;
// fill runs eagerly when a window drains, so Halted flips true on the
// very Step that returns the final record, exactly like trace.Reader
// decoding the Halt, and a refill failure surfaces on the Step for
// precisely the record the streaming Reader would have errored on.
type slabSource struct {
	stream SlabStream
	recs   []emu.Record
	pos    int
	last   bool   // recs is the stream's final window
	lastPC uint32 // PC after the stream drains (the halt record's NextPC)
	halted bool
	err    error
}

// fill advances to the next window (or to the halted/errored terminal
// state). Cold path: called once per window, never per record.
func (s *slabSource) fill() {
	if n := len(s.recs); n > 0 {
		s.lastPC = s.recs[n-1].NextPC
	}
	s.recs, s.pos = nil, 0
	for {
		if s.last {
			s.halted = true
			s.stream.Release()
			return
		}
		recs, last, err := s.stream.NextWindow()
		if err != nil {
			s.err = err
			s.stream.Release()
			return
		}
		s.last = last
		if len(recs) > 0 {
			s.recs = recs
			return
		}
	}
}

//ce:hot
func (s *slabSource) Step() (emu.Record, error) {
	if s.pos < len(s.recs) {
		rec := s.recs[s.pos]
		s.pos++
		if s.pos == len(s.recs) {
			s.fill()
		}
		return rec, nil
	}
	if s.halted {
		return emu.Record{}, emu.ErrHalted
	}
	return emu.Record{}, s.err
}

//ce:hot
func (s *slabSource) PC() uint32 {
	if s.pos < len(s.recs) {
		return s.recs[s.pos].PC
	}
	return s.lastPC
}

func (s *slabSource) Halted() bool          { return s.halted }
func (s *slabSource) Program() *isa.Program { return s.stream.Program() }
func (s *slabSource) Output() []int32       { return s.stream.Output() }
func (s *slabSource) StateHash() [32]byte   { return s.stream.StateHash() }

// NewSlabReplay builds a simulator driven by a shared-slab stream. Same
// contract as NewReplay — byte-identical records, refuses wrong-path
// execution — but every gang member reads the one decoded copy. The
// first window is primed here so a corrupt first chunk fails
// construction (mirroring trace.NewReader surfacing load errors early).
func NewSlabReplay(cfg Config, stream SlabStream) (*Simulator, error) {
	if cfg.WrongPathExecution {
		return nil, fmt.Errorf("pipeline: %s: wrong-path execution cannot run from a replay source (it executes mispredicted paths; use New)", cfg.Name)
	}
	src := &slabSource{stream: stream, recs: nil}
	src.fill()
	if src.err != nil {
		return nil, src.err
	}
	return newSimulator(cfg, src, nil)
}
