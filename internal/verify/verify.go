// Package verify cross-checks the timing simulator against the
// functional emulator: whatever the machine organization — central
// window or FIFO bank, clustered or not, speculating down wrong paths or
// stalling — the committed instruction stream and the final
// architectural state must be exactly those of pure emulation. Timing
// models change *when* things happen, never *what* happens.
//
// The package pairs the seeded random program generator (prog.Random)
// with a panel of structurally diverse machine configurations, runs
// every program both ways, and reports the first divergence. Every
// panel run also has the cycle-level invariant checker armed
// (pipeline.Config.CheckInvariants), so a run that commits the right
// results the wrong way still fails. Panel selection is seeded, so the
// whole cross-check is reproducible run to run.
//
//ce:deterministic
package verify

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/trace"
)

// maxCycles bounds one panel simulation; generated programs retire a few
// thousand instructions, so this is a runaway guard only.
const maxCycles = 50_000_000

// maxInsts bounds the reference emulation of one generated program.
const maxInsts = 10_000_000

func table3(name string, clusters, interDelay int, sched core.SchedulerSpec) pipeline.Config {
	return pipeline.Config{
		Name:              name,
		FetchWidth:        8,
		DecodeWidth:       8,
		IssueWidth:        8,
		RetireWidth:       16,
		MaxInFlight:       128,
		PhysRegs:          120,
		Clusters:          clusters,
		FUsPerCluster:     8 / clusters,
		LSPorts:           4,
		InterClusterDelay: interDelay,
		FrontEndDepth:     2,
		FetchQueueSize:    32,
		Scheduler:         &sched,
		CheckInvariants:   true,
		RecordTimeline:    true,
	}
}

// Panel returns the machine configurations every program is checked
// against: one per mechanism the timing simulator implements, so a
// bookkeeping bug in any of them diverges from the reference. All run
// with the invariant checker and timeline recording armed.
func Panel() []pipeline.Config {
	window := table3("window", 1, 0, core.WindowSpec(64))

	fifos := table3("fifos", 1, 0, core.FIFOBankSpec(core.FIFOBankConfig{
		Name: "fifos-8x8", Clusters: 1, FIFOsPerCluster: 8, Depth: 8,
	}))

	clustered := table3("clustered", 2, 1, core.FIFOBankSpec(core.FIFOBankConfig{
		Name: "fifos-2x4x8", Clusters: 2, FIFOsPerCluster: 4, Depth: 8,
	}))

	execSteered := table3("exec-steered", 2, 1, core.ExecSteeredSpec(64, 2))

	pws := table3("pipelined-wakeup", 1, 0, core.WindowSpec(64))
	pws.PipelinedWakeupSelect = true
	pws.LocalBypassExtra = 1

	wrongPath := table3("wrong-path", 1, 0, core.WindowSpec(64))
	wrongPath.WrongPathExecution = true

	kitchenSink := table3("wrong-path-fifos-icache", 1, 0, core.FIFOBankSpec(core.FIFOBankConfig{
		Name: "fifos-8x8", Clusters: 1, FIFOsPerCluster: 8, Depth: 8,
	}))
	kitchenSink.WrongPathExecution = true
	kitchenSink.StoreForwarding = true
	kitchenSink.FetchBreakOnTaken = true
	ic := cache.Config{SizeBytes: 1 << 10, Ways: 1, LineBytes: 32, HitCycles: 1, MissCycles: 10}
	kitchenSink.ICache = &ic

	return []pipeline.Config{window, fifos, clustered, execSteered, pws, wrongPath, kitchenSink}
}

// reference is the ground truth for one program: the committed-PC stream
// and final architectural state of pure emulation.
type reference struct {
	pcs    []uint32
	output []int32
	hash   [32]byte
	n      uint64
}

func emulate(p *isa.Program) (*reference, error) {
	m := emu.New(p)
	ref := &reference{}
	for !m.Halted() {
		if m.Executed >= maxInsts {
			return nil, fmt.Errorf("verify: %s: reference emulation exceeded %d instructions", p.Name, maxInsts)
		}
		rec, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("verify: %s: reference emulation: %w", p.Name, err)
		}
		ref.pcs = append(ref.pcs, rec.PC)
	}
	ref.output = m.Output
	ref.hash = m.StateHash()
	ref.n = m.Executed
	return ref, nil
}

// Check runs the program through every configuration and returns the
// first divergence from the emulation reference (nil if all agree).
func Check(p *isa.Program, cfgs []pipeline.Config) error {
	ref, err := emulate(p)
	if err != nil {
		return err
	}
	tr, err := trace.Capture(p, maxInsts)
	if err != nil {
		return fmt.Errorf("verify: %s: %w", p.Name, err)
	}
	for i := range cfgs {
		if err := checkOne(p, cfgs[i], ref, tr); err != nil {
			return err
		}
	}
	return nil
}

func checkOne(p *isa.Program, cfg pipeline.Config, ref *reference, tr *trace.Trace) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("verify: %s on %s: %s", p.Name, cfg.Name, fmt.Sprintf(format, args...))
	}
	sim, err := pipeline.New(cfg, p)
	if err != nil {
		return fail("%v", err)
	}
	st, err := sim.Run(maxCycles)
	if err != nil {
		return fail("%v", err)
	}
	if st.Committed != ref.n {
		return fail("committed %d instructions, reference executed %d", st.Committed, ref.n)
	}
	out := sim.Output()
	if len(out) != len(ref.output) {
		return fail("output %v, reference %v", out, ref.output)
	}
	for i, v := range ref.output {
		if out[i] != v {
			return fail("output[%d] = %d, reference %d", i, out[i], v)
		}
	}
	if sim.StateHash() != ref.hash {
		return fail("final architectural state diverges from reference (registers or memory)")
	}
	tl := sim.Timeline()
	if len(tl) != len(ref.pcs) {
		return fail("committed stream has %d instructions, reference %d", len(tl), len(ref.pcs))
	}
	for i, e := range tl {
		if e.PC != ref.pcs[i] {
			return fail("committed[%d] at pc %d, reference pc %d", i, e.PC, ref.pcs[i])
		}
		if e.Seq != uint64(i) {
			return fail("committed[%d] has seq %d", i, e.Seq)
		}
	}
	return checkFastPath(p, cfg, st, ref, tr)
}

// checkFastPath reruns the program with the verification instruments
// stripped — which enables the production fast path: event-driven wakeup
// plus idle-cycle skipping (unless cfg.NoCycleSkip keeps skipping off) —
// and asserts the timing, not just the architecture, is identical to the
// instrumented run. This is the guarantee that lets the fast path exist:
// skipping and event wakeup can never change a cycle count.
func checkFastPath(p *isa.Program, cfg pipeline.Config, inst pipeline.Stats, ref *reference, tr *trace.Trace) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("verify: %s on %s (fast path): %s", p.Name, cfg.Name, fmt.Sprintf(format, args...))
	}
	bare := cfg
	bare.CheckInvariants = false
	bare.RecordTimeline = false
	sim, err := pipeline.New(bare, p)
	if err != nil {
		return fail("%v", err)
	}
	st, err := sim.Run(maxCycles)
	if err != nil {
		return fail("%v", err)
	}
	if st.Cycles != inst.Cycles {
		return fail("cycle count %d, instrumented run %d", st.Cycles, inst.Cycles)
	}
	if st.Committed != inst.Committed {
		return fail("committed %d, instrumented run %d", st.Committed, inst.Committed)
	}
	if st.Mispredicts != inst.Mispredicts || st.CondBranches != inst.CondBranches {
		return fail("branches %d/%d mispredicted, instrumented run %d/%d",
			st.Mispredicts, st.CondBranches, inst.Mispredicts, inst.CondBranches)
	}
	if st.SquashedUops != inst.SquashedUops || st.ForwardedLoads != inst.ForwardedLoads ||
		st.InterClusterUops != inst.InterClusterUops {
		return fail("squashed/forwarded/intercluster %d/%d/%d, instrumented run %d/%d/%d",
			st.SquashedUops, st.ForwardedLoads, st.InterClusterUops,
			inst.SquashedUops, inst.ForwardedLoads, inst.InterClusterUops)
	}
	if st.SchedulerStalls != inst.SchedulerStalls || st.PhysRegStalls != inst.PhysRegStalls ||
		st.ROBStalls != inst.ROBStalls {
		return fail("stalls sched/physreg/rob %d/%d/%d, instrumented run %d/%d/%d",
			st.SchedulerStalls, st.PhysRegStalls, st.ROBStalls,
			inst.SchedulerStalls, inst.PhysRegStalls, inst.ROBStalls)
	}
	if st.Cache != inst.Cache || st.ICache != inst.ICache {
		return fail("cache stats %+v/%+v, instrumented run %+v/%+v",
			st.Cache, st.ICache, inst.Cache, inst.ICache)
	}
	if got, want := st.IssuedPerCycle.Total(), inst.IssuedPerCycle.Total(); got != want {
		return fail("issue histogram records %d cycles, instrumented run %d", got, want)
	}
	if got, want := st.IssuedPerCycle.Mean(), inst.IssuedPerCycle.Mean(); got != want {
		return fail("issue histogram mean %v, instrumented run %v", got, want)
	}
	if sim.StateHash() != ref.hash {
		return fail("final architectural state diverges")
	}
	return checkReplay(p, bare, st, ref, tr)
}

// checkReplay reruns the bare configuration driven by trace replay
// instead of lockstep execution and asserts *every* statistic — cycle
// count, per-category counters, cache stats, issue histogram — is
// identical, plus the final architectural results. This is the guarantee
// that lets the sweep engine substitute replay for execution: the two
// source modes are indistinguishable to the timing model. Wrong-path
// configurations instead assert the refusal is loud (replay has only the
// architectural path to offer).
func checkReplay(p *isa.Program, bare pipeline.Config, exec pipeline.Stats, ref *reference, tr *trace.Trace) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("verify: %s on %s (replay): %s", p.Name, bare.Name, fmt.Sprintf(format, args...))
	}
	if bare.WrongPathExecution {
		if _, err := pipeline.NewReplay(bare, trace.NewReader(tr)); err == nil {
			return fail("NewReplay accepted a wrong-path configuration")
		}
		cache := trace.NewSlabCache(tr.DecodedBytes())
		cur, err := trace.NewSlabCursor(cache, tr)
		if err != nil {
			return fail("%v", err)
		}
		defer cur.Release()
		if _, err := pipeline.NewSlabReplay(bare, cur); err == nil {
			return fail("NewSlabReplay accepted a wrong-path configuration")
		}
		return nil
	}
	sim, err := pipeline.NewReplay(bare, trace.NewReader(tr))
	if err != nil {
		return fail("%v", err)
	}
	st, err := sim.Run(maxCycles)
	if err != nil {
		return fail("%v", err)
	}
	if err := compareDriven(fail, st, exec); err != nil {
		return err
	}
	if err := checkFinalState(fail, sim, ref); err != nil {
		return err
	}
	return checkGangReplay(p, bare, exec, ref, tr)
}

// checkGangReplay reruns the bare configuration driven by shared decoded
// slabs (the gang-replay source) and holds it to the same everything-
// identical standard as streaming replay: the sweep engine may choose
// either source per run, so neither may be distinguishable from
// execution.
func checkGangReplay(p *isa.Program, bare pipeline.Config, exec pipeline.Stats, ref *reference, tr *trace.Trace) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("verify: %s on %s (gang replay): %s", p.Name, bare.Name, fmt.Sprintf(format, args...))
	}
	cache := trace.NewSlabCache(tr.DecodedBytes())
	cur, err := trace.NewSlabCursor(cache, tr)
	if err != nil {
		return fail("%v", err)
	}
	defer cur.Release()
	sim, err := pipeline.NewSlabReplay(bare, cur)
	if err != nil {
		return fail("%v", err)
	}
	st, err := sim.Run(maxCycles)
	if err != nil {
		return fail("%v", err)
	}
	if err := compareDriven(fail, st, exec); err != nil {
		return err
	}
	return checkFinalState(fail, sim, ref)
}

// compareDriven asserts every simulated statistic of a source-driven run
// matches the execution-driven run — the battery shared by the streaming
// and gang replay checks. Host-performance telemetry legitimately
// differs between runs; all simulated metrics must not.
func compareDriven(fail func(string, ...any) error, st, exec pipeline.Stats) error {
	st.HostAllocs, st.HostWallSeconds = exec.HostAllocs, exec.HostWallSeconds
	if st.Cycles != exec.Cycles || st.Committed != exec.Committed || st.EmuSteps != exec.EmuSteps {
		return fail("cycles/committed/steps %d/%d/%d, execution-driven %d/%d/%d",
			st.Cycles, st.Committed, st.EmuSteps, exec.Cycles, exec.Committed, exec.EmuSteps)
	}
	if st.Mispredicts != exec.Mispredicts || st.CondBranches != exec.CondBranches {
		return fail("branches %d/%d mispredicted, execution-driven %d/%d",
			st.Mispredicts, st.CondBranches, exec.Mispredicts, exec.CondBranches)
	}
	if st.SquashedUops != exec.SquashedUops || st.ForwardedLoads != exec.ForwardedLoads ||
		st.InterClusterUops != exec.InterClusterUops {
		return fail("squashed/forwarded/intercluster %d/%d/%d, execution-driven %d/%d/%d",
			st.SquashedUops, st.ForwardedLoads, st.InterClusterUops,
			exec.SquashedUops, exec.ForwardedLoads, exec.InterClusterUops)
	}
	if st.SchedulerStalls != exec.SchedulerStalls || st.PhysRegStalls != exec.PhysRegStalls ||
		st.ROBStalls != exec.ROBStalls {
		return fail("stalls sched/physreg/rob %d/%d/%d, execution-driven %d/%d/%d",
			st.SchedulerStalls, st.PhysRegStalls, st.ROBStalls,
			exec.SchedulerStalls, exec.PhysRegStalls, exec.ROBStalls)
	}
	if st.Cache != exec.Cache || st.ICache != exec.ICache {
		return fail("cache stats %+v/%+v, execution-driven %+v/%+v",
			st.Cache, st.ICache, exec.Cache, exec.ICache)
	}
	if got, want := st.IssuedPerCycle.Total(), exec.IssuedPerCycle.Total(); got != want {
		return fail("issue histogram records %d cycles, execution-driven %d", got, want)
	}
	if got, want := st.IssuedPerCycle.Mean(), exec.IssuedPerCycle.Mean(); got != want {
		return fail("issue histogram mean %v, execution-driven %v", got, want)
	}
	return nil
}

// checkFinalState asserts a replay-driven simulator's final
// architectural results match the emulation reference.
func checkFinalState(fail func(string, ...any) error, sim *pipeline.Simulator, ref *reference) error {
	if sim.StateHash() != ref.hash {
		return fail("final architectural state diverges")
	}
	out := sim.Output()
	if len(out) != len(ref.output) {
		return fail("output %v, reference %v", out, ref.output)
	}
	for i, v := range ref.output {
		if out[i] != v {
			return fail("output[%d] = %d, reference %d", i, out[i], v)
		}
	}
	return nil
}

// CheckSeed generates the program selected by rc and differentially
// checks it against the full panel.
func CheckSeed(rc prog.RandomConfig) error {
	p, err := prog.Random(rc)
	if err != nil {
		return err
	}
	return Check(p, Panel())
}
