package ce

import (
	"fmt"
	"strings"
	"testing"
)

func TestWorkloadsRegistry(t *testing.T) {
	ws := Workloads()
	want := []string{"compress", "gcc", "go", "li", "m88ksim", "perl", "vortex"}
	if len(ws) != len(want) {
		t.Fatalf("workloads = %v, want %v", ws, want)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("workloads = %v, want %v", ws, want)
		}
	}
	for _, w := range ws {
		desc, err := WorkloadDescription(w)
		if err != nil || desc == "" {
			t.Errorf("WorkloadDescription(%q) = %q, %v", w, desc, err)
		}
	}
	if _, err := WorkloadDescription("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestConfigsValidate(t *testing.T) {
	for _, cfg := range []Config{
		BaselineConfig(), DependenceConfig(), ClusteredDependenceConfig(),
		WindowsDispatchConfig(), ExecSteeredConfig(), RandomSteerConfig(),
		FourWayConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		// Stock configurations are spec-built, so they are fingerprintable
		// and eligible for run memoization.
		if _, ok := cfg.Key(); !ok {
			t.Errorf("%s: no structural fingerprint", cfg.Name)
		}
		// Scheduler cluster count must match the config.
		if got := cfg.Scheduler.Build().Clusters(); got != cfg.Clusters {
			t.Errorf("%s: scheduler clusters %d != config %d", cfg.Name, got, cfg.Clusters)
		}
	}
}

func TestRunBaselineSanity(t *testing.T) {
	st, err := Run(BaselineConfig(), "compress")
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed < 100_000 {
		t.Errorf("committed %d, want ≥100k", st.Committed)
	}
	if ipc := st.IPC(); ipc < 1.2 || ipc > 6 {
		t.Errorf("baseline compress IPC = %.2f, want a plausible 1.2–6", ipc)
	}
	if st.Workload != "compress" {
		t.Errorf("stats workload = %q", st.Workload)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(BaselineConfig(), "nonesuch"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestWithPredictor(t *testing.T) {
	for _, name := range []string{"gshare", "bimodal", "taken", "perfect"} {
		cfg, err := WithPredictor(BaselineConfig(), name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasSuffix(cfg.Name, "+"+name) {
			t.Errorf("config name %q missing predictor suffix", cfg.Name)
		}
	}
	if _, err := WithPredictor(BaselineConfig(), "oracle9000"); err == nil {
		t.Error("unknown predictor accepted")
	}
}

// TestFigure13Band asserts the paper's headline Figure 13 result: the
// dependence-based machine extracts nearly the same parallelism as the
// 64-entry window (the paper reports ≤5% degradation for five of seven
// benchmarks and 8% worst case).
func TestFigure13Band(t *testing.T) {
	cmp, err := Figure13()
	if err != nil {
		t.Fatal(err)
	}
	for wi, w := range cmp.Workloads {
		base := cmp.Results[0][wi].IPC()
		dep := cmp.Results[1][wi].IPC()
		deg := 1 - dep/base
		if deg > 0.10 {
			t.Errorf("%s: dependence-based degradation %.1f%%, want ≤10%%", w, deg*100)
		}
		if deg < -0.02 {
			t.Errorf("%s: dependence-based beat the window by %.1f%% — suspicious", w, -deg*100)
		}
		if base < 1.2 || base > 6 {
			t.Errorf("%s: baseline IPC %.2f outside plausible band", w, base)
		}
	}
}

// TestFigure15Band asserts the clustered result: the 2×4-way machine pays
// for its 2-cycle inter-cluster bypasses but stays within a modest IPC
// deficit (the paper reports up to ≈12%; our kernels run a little hotter,
// see EXPERIMENTS.md).
func TestFigure15Band(t *testing.T) {
	cmp, err := Figure15()
	if err != nil {
		t.Fatal(err)
	}
	for wi, w := range cmp.Workloads {
		base := cmp.Results[0][wi].IPC()
		dep := cmp.Results[1][wi].IPC()
		deg := 1 - dep/base
		if deg < 0 {
			t.Errorf("%s: clustered machine beat the uniform-bypass window (%.1f%%)", w, -deg*100)
		}
		if deg > 0.20 {
			t.Errorf("%s: clustered degradation %.1f%%, want ≤20%%", w, deg*100)
		}
		if f := cmp.Results[1][wi].InterClusterFrequency(); f <= 0 || f > 0.30 {
			t.Errorf("%s: inter-cluster bypass frequency %.1f%% outside (0, 30%%]", w, f*100)
		}
	}
}

// TestFigure17Ordering asserts the design-space ordering of Figure 17:
// random steering is clearly worst, execution-driven steering is nearly
// ideal, and dispatch-driven steering sits in between; inter-cluster
// bypass frequency anti-correlates with IPC.
func TestFigure17Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("five-config sweep in -short mode")
	}
	cmp, err := Figure17()
	if err != nil {
		t.Fatal(err)
	}
	const (
		ideal = iota
		fifoDispatch
		winDispatch
		execSteer
		random
	)
	mean := func(ci int, f func(Stats) float64) float64 {
		var s float64
		for wi := range cmp.Workloads {
			s += f(cmp.Results[ci][wi])
		}
		return s / float64(len(cmp.Workloads))
	}
	ipc := func(ci int) float64 { return mean(ci, Stats.IPC) }
	byp := func(ci int) float64 { return mean(ci, Stats.InterClusterFrequency) }

	if !(ipc(ideal) >= ipc(execSteer) && ipc(execSteer) >= ipc(fifoDispatch) && ipc(fifoDispatch) > ipc(random)) {
		t.Errorf("IPC ordering violated: ideal %.2f, exec %.2f, fifo %.2f, random %.2f",
			ipc(ideal), ipc(execSteer), ipc(fifoDispatch), ipc(random))
	}
	if ipc(winDispatch) <= ipc(random) {
		t.Errorf("windows-dispatch (%.2f) not better than random (%.2f)", ipc(winDispatch), ipc(random))
	}
	// Paper: random steering degrades 17–26%; ours lands in that band or a
	// little above.
	degRandom := 1 - ipc(random)/ipc(ideal)
	if degRandom < 0.12 || degRandom > 0.35 {
		t.Errorf("random-steering mean degradation %.1f%%, want ≈17–26%%", degRandom*100)
	}
	// Paper: execution-driven steering within ≈6% of ideal.
	degExec := 1 - ipc(execSteer)/ipc(ideal)
	if degExec > 0.08 {
		t.Errorf("execution-driven steering degradation %.1f%%, want ≤8%%", degExec*100)
	}
	// Inter-cluster bypass frequency: random far above every other
	// organization, ideal exactly zero.
	if byp(ideal) != 0 {
		t.Errorf("ideal machine reported %.2f inter-cluster frequency", byp(ideal))
	}
	for _, ci := range []int{fifoDispatch, winDispatch, execSteer} {
		if byp(random) <= byp(ci) {
			t.Errorf("random bypass frequency %.2f not above config %d's %.2f", byp(random), ci, byp(ci))
		}
	}
}

// TestSpeedupEstimate asserts the paper's bottom line: combining the
// clustered machine's IPC with its clock advantage yields a net win on
// every benchmark (the paper reports 10–22%, average 16%).
func TestSpeedupEstimate(t *testing.T) {
	sws, sum, err := SpeedupEstimate()
	if err != nil {
		t.Fatal(err)
	}
	if len(sws) != len(Workloads()) {
		t.Fatalf("%d speedups for %d workloads", len(sws), len(Workloads()))
	}
	for _, s := range sws {
		if s.NetSpeedup <= 1.0 {
			t.Errorf("%s: net speedup %.3f, want >1 (clock advantage should win)", s.Workload, s.NetSpeedup)
		}
		if s.ClockRatio < 1.20 || s.ClockRatio > 1.30 {
			t.Errorf("%s: clock ratio %.3f, want ≈1.25", s.Workload, s.ClockRatio)
		}
	}
	if sum.Arith < 1.05 || sum.Arith > 1.25 {
		t.Errorf("mean net speedup %.3f, want in [1.05, 1.25] (paper: 1.16)", sum.Arith)
	}
	// The geometric mean of positive ratios is bounded by the arithmetic
	// mean (AM–GM) and must stay a net win.
	if sum.Geo <= 1.0 || sum.Geo > sum.Arith {
		t.Errorf("geomean net speedup %.3f, want in (1, %.3f]", sum.Geo, sum.Arith)
	}
	tbl := SpeedupTable(sws, sum)
	if len(tbl.Rows) != len(sws)+2 {
		t.Errorf("speedup table has %d rows, want %d", len(tbl.Rows), len(sws)+2)
	}
}

func TestDelayTables(t *testing.T) {
	f3, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Rows) != 9 {
		t.Errorf("Figure3 rows = %d, want 9", len(f3.Rows))
	}
	f5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Rows) != 8 {
		t.Errorf("Figure5 rows = %d, want 8", len(f5.Rows))
	}
	f6, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) != 3 {
		t.Errorf("Figure6 rows = %d, want 3", len(f6.Rows))
	}
	f8, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Rows) != 12 {
		t.Errorf("Figure8 rows = %d, want 12", len(f8.Rows))
	}
	t1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 2 {
		t.Errorf("Table1 rows = %d, want 2", len(t1.Rows))
	}
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 6 {
		t.Errorf("Table2 rows = %d, want 6", len(t2.Rows))
	}
	// The Table 2 render must contain the paper's anchor values (the ones
	// the calibration hits exactly; the rest are asserted numerically to
	// ±0.5% in the delaymodel tests).
	s := t2.String()
	for _, anchor := range []string{"1577.9", "2903.7", "578.0", "427.9", "1248.4"} {
		if !strings.Contains(s, anchor) {
			t.Errorf("Table2 output missing anchor %s:\n%s", anchor, s)
		}
	}
	t4, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 2 {
		t.Errorf("Table4 rows = %d, want 2", len(t4.Rows))
	}
}

func TestClockRatioAcrossTechnologies(t *testing.T) {
	for _, tech := range Technologies() {
		r, err := ClockRatio(tech)
		if err != nil {
			t.Fatal(err)
		}
		if r <= 1.0 || r > 1.5 {
			t.Errorf("%s: clock ratio %.3f outside (1, 1.5]", tech.Name, r)
		}
	}
}

func TestRunMatrixShapeAndErrors(t *testing.T) {
	res, err := RunMatrix([]Config{BaselineConfig()}, []string{"go"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0]) != 1 || res[0][0].Committed == 0 {
		t.Errorf("matrix shape/content wrong: %+v", res)
	}
	if _, err := RunMatrix([]Config{BaselineConfig()}, []string{"bogus"}); err == nil {
		t.Error("RunMatrix with unknown workload succeeded")
	}
}

func TestExtendedWorkloads(t *testing.T) {
	ext := WorkloadsExtended()
	if len(ext) <= len(Workloads()) {
		t.Fatalf("extended = %v", ext)
	}
	st, err := Run(BaselineConfig(), "ijpeg")
	if err != nil {
		t.Fatal(err)
	}
	// ijpeg is the ILP-rich member: it should run at high IPC.
	if st.IPC() < 2.5 {
		t.Errorf("ijpeg IPC = %.2f, want ≥2.5 (ILP-rich kernel)", st.IPC())
	}
}

func TestAtomicityAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("four-config sweep in -short mode")
	}
	tbl, err := AtomicityAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// Column 1 holds mean IPC; baseline first, then strictly-worse rows.
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
			t.Fatalf("bad IPC cell %q", s)
		}
		return v
	}
	base := parse(tbl.Rows[0][1])
	pipelined := parse(tbl.Rows[1][1])
	partial := parse(tbl.Rows[2][1])
	none := parse(tbl.Rows[3][1])
	if !(pipelined < base && partial < base && none < partial) {
		t.Errorf("atomicity ordering violated: base %.2f, pipelined %.2f, partial %.2f, none %.2f",
			base, pipelined, partial, none)
	}
	// Section 4.5's point: breaking the atomic wakeup+select loop is
	// expensive — a double-digit IPC loss.
	if pipelined > base*0.92 {
		t.Errorf("pipelined wakeup+select only cost %.1f%%, expected ≥8%%", (1-pipelined/base)*100)
	}
}

func TestSelectionPolicyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("two-config sweep in -short mode")
	}
	tbl, err := SelectionPolicyAblation()
	if err != nil {
		t.Fatal(err)
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
			t.Fatalf("bad IPC cell %q", s)
		}
		return v
	}
	age := parse(tbl.Rows[0][1])
	random := parse(tbl.Rows[1][1])
	// Butler & Patt: performance largely independent of selection policy.
	if diff := (age - random) / age; diff > 0.05 || diff < -0.05 {
		t.Errorf("selection policy changed mean IPC by %.1f%%, expected ≤5%% (Butler & Patt)", diff*100)
	}
}

func TestFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("11-config sweep in -short mode")
	}
	pts, err := Frontier()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 11 {
		t.Fatalf("frontier has %d points", len(pts))
	}
	byName := map[string]FrontierPoint{}
	for _, p := range pts {
		byName[p.Name] = p
		if p.BIPS <= 0 || p.MeanIPC <= 0 || p.ClockPs <= 0 {
			t.Errorf("%s: degenerate point %+v", p.Name, p)
		}
	}
	// The paper's thesis: every 8-way window machine is bypass-bound and
	// frontier-dominated by the clustered dependence-based machine.
	clustered := byName["2x4way-fifos-dispatch (conservative clk)"]
	for _, name := range []string{"window-8way-16entries", "window-8way-32entries", "window-8way-64entries"} {
		if byName[name].BIPS >= clustered.BIPS {
			t.Errorf("%s (%.2f BIPS) not dominated by clustered dependence-based (%.2f BIPS)",
				name, byName[name].BIPS, clustered.BIPS)
		}
	}
	// With the paper's optimistic (rename-limited) clock the clustered
	// machine tops the whole frontier.
	if pts[0].Name != "2x4way-fifos-dispatch (optimistic clk)" {
		t.Errorf("frontier rank 1 = %s, want the optimistic clustered dependence-based point", pts[0].Name)
	}
	// Sorted best-first.
	for i := 1; i < len(pts); i++ {
		if pts[i].BIPS > pts[i-1].BIPS {
			t.Error("frontier not sorted by BIPS")
		}
	}
}
