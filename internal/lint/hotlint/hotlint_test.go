package hotlint_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/hotlint"
)

func TestHotlint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotlint.Analyzer, "hot", "allochelper", "hotcall")
}
