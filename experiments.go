package ce

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/vlsi"
)

// IPCComparison holds one simulated figure: IPC per workload for a set of
// machine organizations, in configuration order.
type IPCComparison struct {
	Workloads []string
	Configs   []Config
	// Results is indexed [config][workload].
	Results [][]Stats
}

// IPCTable renders the comparison as workloads × configurations.
func (c *IPCComparison) IPCTable(title string) *report.Table {
	tbl := &report.Table{Title: title, Headers: []string{"benchmark"}}
	for _, cfg := range c.Configs {
		tbl.Headers = append(tbl.Headers, cfg.Name)
	}
	for wi, w := range c.Workloads {
		row := []interface{}{w}
		for ci := range c.Configs {
			row = append(row, c.Results[ci][wi].IPC())
		}
		tbl.AddRowf(row...)
	}
	return tbl
}

// BypassTable renders inter-cluster bypass frequency (%) per workload and
// configuration (Figure 17, bottom).
func (c *IPCComparison) BypassTable(title string) *report.Table {
	tbl := &report.Table{Title: title, Headers: []string{"benchmark"}}
	for _, cfg := range c.Configs {
		tbl.Headers = append(tbl.Headers, cfg.Name)
	}
	for wi, w := range c.Workloads {
		row := []interface{}{w}
		for ci := range c.Configs {
			row = append(row, fmt.Sprintf("%.1f%%", c.Results[ci][wi].InterClusterFrequency()*100))
		}
		tbl.AddRowf(row...)
	}
	return tbl
}

// Degradation returns, for configuration ci, the per-workload relative IPC
// loss versus configuration 0 (the reference), as fractions.
func (c *IPCComparison) Degradation(ci int) []float64 {
	out := make([]float64, len(c.Workloads))
	for wi := range c.Workloads {
		ref := c.Results[0][wi].IPC()
		if ref > 0 {
			out[wi] = 1 - c.Results[ci][wi].IPC()/ref
		}
	}
	return out
}

func runComparison(cfgs []Config) (*IPCComparison, error) {
	return DefaultEngine.runComparison(cfgs)
}

func (e *Engine) runComparison(cfgs []Config) (*IPCComparison, error) {
	ws := Workloads()
	res, err := e.RunMatrix(cfgs, ws)
	if err != nil {
		return nil, err
	}
	return &IPCComparison{Workloads: ws, Configs: cfgs, Results: res}, nil
}

// Figure13 regenerates Figure 13: IPC of the baseline window machine
// versus the (unclustered) dependence-based machine.
func Figure13() (*IPCComparison, error) { return DefaultEngine.Figure13() }

// Figure13 regenerates Figure 13 through this engine's cache and store.
func (e *Engine) Figure13() (*IPCComparison, error) {
	return e.runComparison([]Config{BaselineConfig(), DependenceConfig()})
}

// Figure15 regenerates Figure 15: IPC of the baseline window machine
// versus the 2×4-way clustered dependence-based machine (2-cycle
// inter-cluster bypass).
func Figure15() (*IPCComparison, error) { return DefaultEngine.Figure15() }

// Figure15 regenerates Figure 15 through this engine's cache and store.
func (e *Engine) Figure15() (*IPCComparison, error) {
	return e.runComparison([]Config{BaselineConfig(), ClusteredDependenceConfig()})
}

// Figure17 regenerates Figure 17: the clustered design space — ideal
// single-cluster window, clustered FIFOs with dispatch steering, clustered
// windows with dispatch steering, central window with execution-driven
// steering, and clustered windows with random steering. The same runs
// provide both the IPC panel and the inter-cluster bypass panel.
func Figure17() (*IPCComparison, error) { return DefaultEngine.Figure17() }

// Figure17 regenerates Figure 17 through this engine's cache and store.
func (e *Engine) Figure17() (*IPCComparison, error) {
	ideal := BaselineConfig()
	ideal.Name = "1cluster-1window"
	return e.runComparison([]Config{
		ideal,
		ClusteredDependenceConfig(),
		WindowsDispatchConfig(),
		ExecSteeredConfig(),
		RandomSteerConfig(),
	})
}

// Speedup is the Section 5.5 combined estimate for one workload: the
// clustered dependence-based machine's IPC deficit against the window
// machine, multiplied by its clock-speed advantage.
type Speedup struct {
	Workload   string
	IPCWindow  float64
	IPCDep     float64
	ClockRatio float64
	NetSpeedup float64 // (IPCDep/IPCWindow) · ClockRatio
}

// SpeedupSummary aggregates the per-benchmark net speedups under both
// mean conventions. The paper's "16% on average" (Section 5.5) is the
// arithmetic mean over the seven benchmarks — Arith reproduces that
// convention — while Geo is the geometric mean conventionally preferred
// for speedup ratios (it is slightly lower, as always).
type SpeedupSummary struct {
	Arith float64
	Geo   float64
}

// SpeedupEstimate combines the Figure 15 simulation with the 0.18 µm
// delay-model clock ratio, reproducing the paper's bottom line: the
// dependence-based microarchitecture is faster overall (the paper reports
// 10–22% per benchmark, 16% on average). The Figure 15 matrix is served
// from the shared run cache, so calling this after Figure15 costs no
// additional simulations.
func SpeedupEstimate() ([]Speedup, SpeedupSummary, error) {
	cmp, err := Figure15()
	if err != nil {
		return nil, SpeedupSummary{}, err
	}
	ratio, err := ClockRatio(vlsi.Tech018)
	if err != nil {
		return nil, SpeedupSummary{}, err
	}
	var out []Speedup
	var nets []float64
	for wi, w := range cmp.Workloads {
		sw := Speedup{
			Workload:   w,
			IPCWindow:  cmp.Results[0][wi].IPC(),
			IPCDep:     cmp.Results[1][wi].IPC(),
			ClockRatio: ratio,
		}
		sw.NetSpeedup = sw.IPCDep / sw.IPCWindow * ratio
		out = append(out, sw)
		nets = append(nets, sw.NetSpeedup)
	}
	sum := SpeedupSummary{Arith: stats.Mean(nets)}
	// Net speedups are ratios of positive quantities; GeoMean can only
	// fail on an empty workload set, which Figure15 never yields.
	sum.Geo, err = stats.GeoMean(nets)
	if err != nil {
		return nil, SpeedupSummary{}, err
	}
	return out, sum, nil
}

// SpeedupTable renders the SpeedupEstimate result. The "average" row is
// the paper's convention (arithmetic); the geometric mean follows it.
func SpeedupTable(sws []Speedup, sum SpeedupSummary) *report.Table {
	tbl := &report.Table{
		Title:   "Section 5.5: estimated overall speedup of the 2x4-way dependence-based machine",
		Headers: []string{"benchmark", "IPC (window)", "IPC (dep-based)", "clock ratio", "net speedup"},
	}
	for _, s := range sws {
		tbl.AddRowf(s.Workload, s.IPCWindow, s.IPCDep, s.ClockRatio, s.NetSpeedup)
	}
	tbl.AddRowf("average", "", "", "", sum.Arith)
	tbl.AddRowf("geomean", "", "", "", sum.Geo)
	return tbl
}

// WindowTradeoff sweeps the baseline window size and reports both the
// simulated IPC (averaged over all workloads) and the modelled window
// (wakeup+select) delay at 0.18 µm — the paper's central IPC-versus-clock
// trade-off in one table (an extension; not a figure in the paper).
func WindowTradeoff(sizes []int) (*report.Table, error) {
	ws := Workloads()
	tbl := &report.Table{
		Title:   "Window size trade-off: IPC versus window-logic delay (8-way, 0.18um)",
		Headers: []string{"window size", "mean IPC", "wakeup+select (ps)", "IPC per ns of window logic"},
	}
	for _, size := range sizes {
		cfg := BaselineConfig()
		cfg.Name = fmt.Sprintf("win%d", size)
		spec := core.WindowSpec(size)
		cfg.Scheduler = &spec
		res, err := RunMatrix([]Config{cfg}, ws)
		if err != nil {
			return nil, err
		}
		var ipcs []float64
		for wi := range ws {
			ipcs = append(ipcs, res[0][wi].IPC())
		}
		mean := stats.Mean(ipcs)
		o, err := AnalyzeDelays(vlsi.Tech018, 8, size)
		if err != nil {
			return nil, err
		}
		delay := o.WakeupSelect()
		tbl.AddRowf(size, mean, fmt.Sprintf("%.0f", delay), mean/(delay/1000))
	}
	return tbl, nil
}
