package pipeline

import (
	"sort"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
)

// specCfg returns a fingerprintable Table 3 baseline configuration.
func specCfg(name string, spec core.SchedulerSpec) Config {
	c := cfg(name, 1, 0, nil)
	c.NewScheduler = nil
	c.Scheduler = &spec
	return c
}

func TestKeyIgnoresLabels(t *testing.T) {
	a := specCfg("alpha", core.WindowSpec(64))
	b := specCfg("beta", core.WindowSpec(64))
	ka, ok := a.Key()
	if !ok {
		t.Fatal("spec-built config not fingerprintable")
	}
	kb, _ := b.Key()
	if ka != kb {
		t.Errorf("renamed twins have different keys:\n%s\n%s", ka, kb)
	}
	// The FIFO bank's display name is a label too.
	f1 := specCfg("x", core.FIFOBankSpec(core.FIFOBankConfig{
		Name: "one", Clusters: 1, FIFOsPerCluster: 8, Depth: 8,
	}))
	f2 := specCfg("y", core.FIFOBankSpec(core.FIFOBankConfig{
		Name: "two", Clusters: 1, FIFOsPerCluster: 8, Depth: 8,
	}))
	k1, _ := f1.Key()
	k2, _ := f2.Key()
	if k1 != k2 {
		t.Errorf("renamed FIFO banks have different keys:\n%s\n%s", k1, k2)
	}
}

// TestKeySeparatesBehavior spot-checks that representative behavioral
// mutations each change the fingerprint. The table is illustrative, not
// exhaustive — the authoritative coverage check is keylint (cmd/celint),
// which statically verifies every exported Config field is referenced in
// Key() or explicitly marked //ce:timing-neutral, so a new field cannot
// silently alias two different machines in the run cache.
func TestKeySeparatesBehavior(t *testing.T) {
	base := specCfg("base", core.WindowSpec(64))
	baseKey, _ := base.Key()
	mutations := map[string]func(*Config){
		"window size": func(c *Config) { s := core.WindowSpec(32); c.Scheduler = &s },
		"scheduler kind": func(c *Config) {
			s := core.FIFOBankSpec(core.FIFOBankConfig{Clusters: 1, FIFOsPerCluster: 8, Depth: 8})
			c.Scheduler = &s
		},
		"random select":  func(c *Config) { s := core.RandomSelectSpec(64); c.Scheduler = &s },
		"issue width":    func(c *Config) { c.IssueWidth = 4 },
		"predictor":      func(c *Config) { c.Predictor = "bimodal"; c.PerfectBPred = false },
		"perfect bpred":  func(c *Config) { c.PerfectBPred = false },
		"bypass extra":   func(c *Config) { c.LocalBypassExtra = 1 },
		"pipelined w+s":  func(c *Config) { c.PipelinedWakeupSelect = true },
		"store fwd":      func(c *Config) { c.StoreForwarding = true },
		"wrong path":     func(c *Config) { c.WrongPathExecution = true },
		"fetch break":    func(c *Config) { c.FetchBreakOnTaken = true },
		"dcache":         func(c *Config) { c.DCache = cache.Config{SizeBytes: 8 << 10, Ways: 1, LineBytes: 32, HitCycles: 1, MissCycles: 6} },
		"icache":         func(c *Config) { c.ICache = &cache.Config{SizeBytes: 16 << 10, Ways: 2, LineBytes: 32, HitCycles: 1, MissCycles: 6} },
		"frontend depth": func(c *Config) { c.FrontEndDepth = 4 },
	}
	names := make([]string, 0, len(mutations))
	for name := range mutations {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := specCfg("mut", core.WindowSpec(64))
		mutations[name](&c)
		k, ok := c.Key()
		if !ok {
			t.Errorf("%s: mutated config not fingerprintable", name)
			continue
		}
		if k == baseKey {
			t.Errorf("%s: behavior change did not change the key", name)
		}
	}
}

func TestKeyNormalizesDefaultDCache(t *testing.T) {
	a := specCfg("a", core.WindowSpec(64)) // zero DCache → baseline at New
	b := specCfg("b", core.WindowSpec(64))
	b.DCache = cache.Baseline()
	ka, _ := a.Key()
	kb, _ := b.Key()
	if ka != kb {
		t.Errorf("implicit and explicit baseline D-cache differ:\n%s\n%s", ka, kb)
	}
}

func TestKeyRefusesOpaqueConfigs(t *testing.T) {
	c := cfg("closure", 1, 0, window64)
	if _, ok := c.Key(); ok {
		t.Error("closure-built config reported a fingerprint")
	}
	d := specCfg("pred-closure", core.WindowSpec(64))
	d.PerfectBPred = false
	d.NewPredictor = func() bpred.Predictor { return bpred.NewGshare(12, 12) }
	if _, ok := d.Key(); ok {
		t.Error("closure-predictor config reported a fingerprint")
	}
	d.NewPredictor = nil
	d.Predictor = "gshare"
	if _, ok := d.Key(); !ok {
		t.Error("named-predictor config not fingerprintable")
	}
}

// TestSpecConfigRuns checks that a spec-built configuration simulates
// identically to its closure-built twin.
func TestSpecConfigRuns(t *testing.T) {
	p := mustProgram(t, chainSrc(64))
	run := func(c Config) Stats {
		sim, err := New(c, p)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a := run(cfg("closure", 1, 0, window64))
	b := run(specCfg("spec", core.WindowSpec(64)))
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.Mispredicts != b.Mispredicts {
		t.Errorf("spec-built run diverged: %+v vs %+v", a, b)
	}
}

func TestUnknownPredictorRejected(t *testing.T) {
	c := specCfg("badpred", core.WindowSpec(64))
	c.PerfectBPred = false
	c.Predictor = "oracle9000"
	if _, err := New(c, mustProgram(t, chainSrc(8))); err == nil {
		t.Error("unknown predictor name accepted")
	}
}
