// Package server implements cesweepd's HTTP/JSON API over a ce.Engine —
// the layer that turns the deterministic, memoized sweep engine into a
// long-lived sweep-as-a-service daemon.
//
// Endpoints:
//
//	POST /run        simulate (or recall) one design point: a stock
//	                 configuration name or a scheduler spec, plus a
//	                 workload; returns the run's ce.RunMetrics
//	GET  /figure/{n} the canonical JSON dump of figure 13, 15 or 17
//	GET  /frontier   the canonical JSON frontier ranking
//	GET  /metrics    cache, trace-pool and request counters
//	GET  /healthz    liveness probe
//
// Figure and frontier responses are byte-identical to cesweep -json's
// dumps: both call the same ce.FigureJSON/ce.FrontierJSON over the same
// deterministic results. Concurrent identical requests are coalesced —
// POST /run by the engine's content-addressed single-flight cache,
// figure/frontier sweeps by a server-level single-flight group — and
// with Engine.SetSharedStore enabled, coalescing extends across daemons
// sharing one store via the internal/lease lock-file protocol.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/canonjson"
	"repro/internal/core"
)

// Options configures a Server.
type Options struct {
	// Log receives one JSON line per completed request (nil disables
	// request logging).
	Log io.Writer
}

// Server serves the sweep API over one engine.
type Server struct {
	eng   *ce.Engine
	start time.Time

	logMu sync.Mutex
	logW  io.Writer

	flights flightGroup

	// workloads is the fixed benchmark registry, indexed for request
	// validation.
	workloads map[string]bool

	requests    atomic.Uint64
	errors      atomic.Uint64
	runRequests atomic.Uint64
	inFlight    atomic.Int64
	busyNanos   atomic.Int64
}

// New returns a Server over eng.
func New(eng *ce.Engine, opts Options) *Server {
	s := &Server{eng: eng, start: time.Now(), logW: opts.Log, workloads: make(map[string]bool)}
	for _, w := range ce.WorkloadsExtended() {
		s.workloads[w] = true
	}
	// Huge workloads never enter a sweep matrix, but a single /run on
	// one is exactly what phase-sampled segmented simulation is for.
	for _, w := range ce.WorkloadsHuge() {
		s.workloads[w] = true
	}
	return s
}

// Handler returns the daemon's root handler: the API routes wrapped in
// the request-accounting and structured-logging middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /figure/{n}", s.handleFigure)
	mux.HandleFunc("GET /frontier", s.handleFrontier)
	mux.HandleFunc("POST /run", s.handleRun)
	return s.instrument(mux)
}

// statusWriter captures the status code and byte count a handler wrote,
// for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// instrument wraps next in request accounting and structured logging.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.requests.Add(1)
		s.inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		dur := time.Since(start)
		s.inFlight.Add(-1)
		s.busyNanos.Add(int64(dur))
		if sw.status >= 400 {
			s.errors.Add(1)
		}
		if s.logW != nil {
			line, err := json.Marshal(struct {
				Time     string  `json:"time"`
				Method   string  `json:"method"`
				Path     string  `json:"path"`
				Status   int     `json:"status"`
				Millis   float64 `json:"ms"`
				Bytes    int     `json:"bytes"`
				Remote   string  `json:"remote"`
				InFlight int64   `json:"in_flight"`
			}{
				Time:     start.UTC().Format(time.RFC3339Nano),
				Method:   r.Method,
				Path:     r.URL.Path,
				Status:   sw.status,
				Millis:   float64(dur.Microseconds()) / 1000,
				Bytes:    sw.bytes,
				Remote:   r.RemoteAddr,
				InFlight: s.inFlight.Load(),
			})
			if err == nil {
				s.logMu.Lock()
				// Serializing whole lines onto logW is this mutex's entire
				// job; the write is the critical section.
				fmt.Fprintf(s.logW, "%s\n", line) //ce:lock-ok logMu exists to serialize this write
				s.logMu.Unlock()
			}
		}
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// Metrics is the GET /metrics payload.
type Metrics struct {
	Cache  ce.CacheStats `json:"cache"`
	Trace  ce.TraceStats `json:"trace"`
	Server struct {
		Requests      uint64  `json:"requests"`
		RunRequests   uint64  `json:"run_requests"`
		Errors        uint64  `json:"errors"`
		InFlight      int64   `json:"in_flight"`
		Coalesced     uint64  `json:"coalesced"`
		BusySeconds   float64 `json:"busy_seconds"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	} `json:"server"`
}

// MetricsSnapshot returns the current counters (the GET /metrics
// payload, exposed for the daemon's shutdown summary).
func (s *Server) MetricsSnapshot() Metrics {
	var m Metrics
	m.Cache = s.eng.CacheStats()
	m.Trace = s.eng.TraceStats()
	m.Server.Requests = s.requests.Load()
	m.Server.RunRequests = s.runRequests.Load()
	m.Server.Errors = s.errors.Load()
	m.Server.InFlight = s.inFlight.Load()
	m.Server.Coalesced = s.flights.coalesced.Load()
	m.Server.BusySeconds = float64(s.busyNanos.Load()) / 1e9
	m.Server.UptimeSeconds = time.Since(s.start).Seconds()
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeCanonJSON(w, s.MetricsSnapshot())
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil || (n != 13 && n != 15 && n != 17) {
		http.Error(w, fmt.Sprintf("unknown figure %q (want 13, 15 or 17)", r.PathValue("n")), http.StatusNotFound)
		return
	}
	s.serveFlight(w, fmt.Sprintf("figure/%d", n), func() ([]byte, error) {
		return s.eng.FigureJSON(n)
	})
}

func (s *Server) handleFrontier(w http.ResponseWriter, _ *http.Request) {
	s.serveFlight(w, "frontier", s.eng.FrontierJSON)
}

// serveFlight computes (or joins) the keyed response and writes it.
// Identical concurrent requests share one sweep; the engine's run cache
// already deduplicates the underlying simulations, so the flight group
// only saves the (cheap) recall-and-render work — but it also bounds
// how many goroutines can pile onto one cold sweep.
func (s *Server) serveFlight(w http.ResponseWriter, key string, fn func() ([]byte, error)) {
	data, err := s.flights.do(key, fn)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// RunRequest is the POST /run body. Exactly one of Config (a stock
// configuration name, see ce.ConfigNames) or Scheduler (a custom
// scheduler mounted on the Table 3 8-way machine) must be set.
type RunRequest struct {
	Config    string         `json:"config,omitempty"`
	Scheduler *SchedulerSpec `json:"scheduler,omitempty"`
	Workload  string         `json:"workload"`
	// Predictor optionally overrides the branch predictor: gshare,
	// bimodal, taken or perfect.
	Predictor string `json:"predictor,omitempty"`
}

// SchedulerSpec is the wire form of a custom scheduler description.
type SchedulerSpec struct {
	// Kind selects the organization: "window" (central issue window),
	// "exec-steer" (central window, execution-driven cluster steering),
	// "random-select" (central window, random selection), or "fifos"
	// (the dependence-based FIFO bank).
	Kind string `json:"kind"`
	// Size is the window entry count (central-window kinds).
	Size int `json:"size,omitempty"`
	// Clusters splits the machine's 8 FUs into equal clusters.
	Clusters int `json:"clusters,omitempty"`
	// FIFOsPerCluster, Depth and AnySlot describe the bank geometry
	// ("fifos" only).
	FIFOsPerCluster int  `json:"fifos_per_cluster,omitempty"`
	Depth           int  `json:"depth,omitempty"`
	AnySlot         bool `json:"any_slot,omitempty"`
}

// buildConfig resolves a RunRequest into a simulator configuration.
func (s *Server) buildConfig(req *RunRequest) (ce.Config, error) {
	if (req.Config == "") == (req.Scheduler == nil) {
		return ce.Config{}, fmt.Errorf("exactly one of config or scheduler must be set")
	}
	var cfg ce.Config
	if req.Config != "" {
		var ok bool
		cfg, ok = ce.NamedConfig(req.Config)
		if !ok {
			return ce.Config{}, fmt.Errorf("unknown config %q (want one of %v)", req.Config, ce.ConfigNames())
		}
	} else {
		spec, clusters, err := req.Scheduler.resolve()
		if err != nil {
			return ce.Config{}, err
		}
		cfg, err = ce.CustomConfig("custom-"+spec.Key(), clusters, spec)
		if err != nil {
			return ce.Config{}, err
		}
	}
	if req.Predictor != "" {
		var err error
		cfg, err = ce.WithPredictor(cfg, req.Predictor)
		if err != nil {
			return ce.Config{}, err
		}
	}
	return cfg, nil
}

// resolve lowers the wire spec to the engine's serializable form and the
// cluster count it implies.
func (r *SchedulerSpec) resolve() (core.SchedulerSpec, int, error) {
	switch r.Kind {
	case "window":
		if r.Size <= 0 {
			return core.SchedulerSpec{}, 0, fmt.Errorf("window scheduler needs size > 0")
		}
		return core.WindowSpec(r.Size), 1, nil
	case "exec-steer":
		if r.Size <= 0 || r.Clusters < 1 {
			return core.SchedulerSpec{}, 0, fmt.Errorf("exec-steer scheduler needs size > 0 and clusters >= 1")
		}
		return core.ExecSteeredSpec(r.Size, r.Clusters), r.Clusters, nil
	case "random-select":
		if r.Size <= 0 {
			return core.SchedulerSpec{}, 0, fmt.Errorf("random-select scheduler needs size > 0")
		}
		return core.RandomSelectSpec(r.Size), 1, nil
	case "fifos":
		clusters := r.Clusters
		if clusters == 0 {
			clusters = 1
		}
		if r.FIFOsPerCluster <= 0 || r.Depth <= 0 {
			return core.SchedulerSpec{}, 0, fmt.Errorf("fifos scheduler needs fifos_per_cluster > 0 and depth > 0")
		}
		fc := core.FIFOBankConfig{
			Clusters:        clusters,
			FIFOsPerCluster: r.FIFOsPerCluster,
			Depth:           r.Depth,
			AnySlot:         r.AnySlot,
		}
		fc.Name = fmt.Sprintf("fifos-%dx%dx%d", clusters, r.FIFOsPerCluster, r.Depth)
		return core.FIFOBankSpec(fc), clusters, nil
	default:
		return core.SchedulerSpec{}, 0, fmt.Errorf("unknown scheduler kind %q (want window, exec-steer, random-select or fifos)", r.Kind)
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.runRequests.Add(1)
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "malformed run request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !s.workloads[req.Workload] {
		http.Error(w, fmt.Sprintf("unknown workload %q", req.Workload), http.StatusBadRequest)
		return
	}
	cfg, err := s.buildConfig(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	_, m, err := s.eng.RunOne(cfg, req.Workload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeCanonJSON(w, m)
}

func (s *Server) writeCanonJSON(w http.ResponseWriter, v any) {
	data, err := canonjson.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// flightGroup coalesces concurrent calls with the same key into one
// execution of fn — the server-level single-flight over whole figure
// sweeps. Results are not retained after the last waiter leaves; the
// engine's run cache is the durable tier.
type flightGroup struct {
	mu        sync.Mutex
	m         map[string]*flightCall
	coalesced atomic.Uint64
}

type flightCall struct {
	done chan struct{}
	data []byte
	err  error
}

func (g *flightGroup) do(key string, fn func() ([]byte, error)) ([]byte, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		g.coalesced.Add(1)
		<-c.done
		return c.data, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()
	defer func() {
		// Publish to waiters even if fn panics, then forget the key so
		// the next request retries rather than reusing a failed flight.
		if c.err == nil && c.data == nil {
			c.err = fmt.Errorf("server: flight %q panicked", key)
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.data, c.err = fn()
	return c.data, c.err
}
