// Package badmod seeds one violation of each celint contract — the
// intra-package classics here, the cross-package ones in cross.go (see
// the dep package) — and the celint tests assert both driver modes exit
// nonzero naming every analyzer.
//
//ce:deterministic
//ce:classify-errors
package badmod

import "fmt"

// Spec is fingerprinted, but Extra is not folded into Key.
//
//ce:keyed
type Spec struct {
	Size  int
	Extra int
}

// Key covers Size only.
func (s Spec) Key() string { return fmt.Sprint(s.Size) }

// Heads leaks map iteration order into its caller.
func Heads(m map[string]int, visit func(string)) {
	for k := range m {
		visit(k)
	}
}

// Step allocates on the hot path.
//
//ce:hot
func Step() []int {
	return make([]int, 8)
}
