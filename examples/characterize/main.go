// Characterize runs the mechanism-isolating microbenchmarks across the
// main machine organizations and then zooms into one of them with a
// pipeline timeline, showing *why* the numbers come out the way they do.
//
// Run with: go run ./examples/characterize
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("Microbenchmark characterization")
	fmt.Println()
	tbl, err := ce.MicrobenchCharacterization()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl.String())

	fmt.Println("Reading the table:")
	fmt.Println("  - micro.chain pins every machine near 1 issue per cycle: a serial")
	fmt.Println("    dependence chain gains nothing from width or window size.")
	fmt.Println("  - micro.parallel saturates the 8-wide machines at IPC ≈ 8; random")
	fmt.Println("    cluster steering still loses because chains bounce between clusters.")
	fmt.Println("  - micro.chase is bounded by the load-to-load chain through the cache.")
	fmt.Println("  - micro.branchy is bounded by misprediction recovery.")
	fmt.Println("  - micro.stream is bounded by cache misses (64KB > 32KB D-cache).")
	fmt.Println()

	// Zoom in: the first steps of the pointer chase on the dependence-based
	// machine — each load's issue waits for the previous load's completion.
	fmt.Println("Timeline of micro.chain on the dependence-based machine (steady state):")
	_, tl, err := ce.RunWithTimeline(ce.DependenceConfig(), "micro.chain")
	if err != nil {
		log.Fatal(err)
	}
	if len(tl) > 40 {
		tl = tl[20:32] // a steady-state window
	}
	fmt.Printf("%4s  %-24s %6s %6s %6s  %s\n", "seq", "instruction", "fetch", "issue", "done", "note")
	var prevIssue int64
	for i, e := range tl {
		note := ""
		if i > 0 && e.Issue == prevIssue+1 {
			note = "back-to-back with predecessor"
		}
		fmt.Printf("%4d  %-24s %6d %6d %6d  %s\n", e.Seq, e.Inst, e.Fetch, e.Issue, e.Complete, note)
		prevIssue = e.Issue
	}
	fmt.Println()
	fmt.Println("The multiply-add chain issues one instruction per cycle — exactly the")
	fmt.Println("back-to-back dependent execution that the paper's atomic wakeup+select")
	fmt.Println("loop exists to preserve (Section 4.5, Figure 10).")
}
