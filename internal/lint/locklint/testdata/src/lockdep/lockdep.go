// Package lockdep is an I/O helper library; locklint exports a
// BlockFact for its exported functions so that lock-holding callers in
// other packages see through the calls.
package lockdep

import "os"

// Save writes bytes to disk — it blocks.
func Save(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// Persist blocks one hop down, through Save.
func Persist(path string) error {
	return Save(path, nil)
}

// Clamp is pure.
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
