// Package emu implements a functional emulator for the ISA in package isa.
//
// The emulator serves two purposes. First, it validates the benchmark
// programs in package prog (their outputs are checked against independent
// Go reference implementations). Second, it generates the dynamic
// instruction stream — one Record per executed instruction, with resolved
// branch outcomes and memory addresses — that drives the trace-driven
// timing simulator in package pipeline, exactly as the paper's
// SimpleScalar-based methodology did.
//
//ce:deterministic
package emu

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// Record describes one dynamically executed instruction.
type Record struct {
	// PC is the instruction index in the program text.
	PC uint32
	// Inst is the executed instruction.
	Inst isa.Inst
	// NextPC is the instruction index executed next (the branch/jump
	// target when taken, PC+1 otherwise).
	NextPC uint32
	// Taken reports whether a control instruction redirected fetch.
	Taken bool
	// Addr is the effective byte address for loads and stores.
	Addr uint32
}

// pageBits sizes the sparse memory pages (64 KiB).
const pageBits = 16

// Machine is the architectural state of one running program.
type Machine struct {
	prog  *isa.Program
	pc    uint32
	regs  [isa.NumRegs]int32
	pages map[uint32]*[1 << pageBits]byte
	// Output collects values emitted by Out instructions.
	Output []int32
	// Executed counts retired instructions.
	Executed uint64
	halted   bool

	// journal records overwritten memory bytes while checkpoints are
	// live (see checkpoint.go).
	journal      []memWrite
	journalDepth int
}

// ErrHalted is returned by Step once the program has executed Halt.
var ErrHalted = errors.New("emu: machine halted")

// New loads a program into a fresh machine: data segment at isa.DataBase,
// stack pointer at isa.StackTop, PC at the "main" symbol if present (index
// 0 otherwise).
func New(p *isa.Program) *Machine {
	m := &Machine{prog: p, pages: make(map[uint32]*[1 << pageBits]byte)}
	for i, b := range p.Data {
		m.StoreByte(isa.DataBase+uint32(i), b)
	}
	m.regs[isa.SP] = int32(isa.StackTop)
	if start, ok := p.Symbols["main"]; ok {
		m.pc = start
	}
	return m
}

// Reg returns the value of an architectural register.
func (m *Machine) Reg(r isa.Reg) int32 { return m.regs[r] }

// SetReg sets an architectural register (writes to register 0 are ignored).
func (m *Machine) SetReg(r isa.Reg, v int32) {
	if r != isa.Zero {
		m.regs[r] = v
	}
}

// PC returns the current instruction index.
func (m *Machine) PC() uint32 { return m.pc }

// Program returns the loaded program.
func (m *Machine) Program() *isa.Program { return m.prog }

// Halted reports whether the program has executed Halt.
func (m *Machine) Halted() bool { return m.halted }

func (m *Machine) page(addr uint32) *[1 << pageBits]byte {
	p, ok := m.pages[addr>>pageBits]
	if !ok {
		p = new([1 << pageBits]byte) //ce:alloc-ok lazy page fault, once per touched page
		m.pages[addr>>pageBits] = p
	}
	return p
}

// LoadByte reads one byte of memory (unmapped memory reads as zero).
func (m *Machine) LoadByte(addr uint32) byte {
	if p, ok := m.pages[addr>>pageBits]; ok {
		return p[addr&(1<<pageBits-1)]
	}
	return 0
}

// StoreByte writes one byte of memory.
func (m *Machine) StoreByte(addr uint32, b byte) {
	p := m.page(addr)
	if m.journalDepth > 0 {
		m.journal = append(m.journal, memWrite{addr, p[addr&(1<<pageBits-1)]})
	}
	p[addr&(1<<pageBits-1)] = b
}

// LoadWord reads a little-endian 32-bit word.
func (m *Machine) LoadWord(addr uint32) int32 {
	return int32(uint32(m.LoadByte(addr)) |
		uint32(m.LoadByte(addr+1))<<8 |
		uint32(m.LoadByte(addr+2))<<16 |
		uint32(m.LoadByte(addr+3))<<24)
}

// StoreWord writes a little-endian 32-bit word.
func (m *Machine) StoreWord(addr uint32, v int32) {
	u := uint32(v)
	m.StoreByte(addr, byte(u))
	m.StoreByte(addr+1, byte(u>>8))
	m.StoreByte(addr+2, byte(u>>16))
	m.StoreByte(addr+3, byte(u>>24))
}

// Step executes one instruction and returns its dynamic record. It returns
// ErrHalted once the program has stopped, and a descriptive error on a PC
// out of range or division by zero.
func (m *Machine) Step() (Record, error) {
	if m.halted {
		return Record{}, ErrHalted
	}
	if m.pc >= uint32(len(m.prog.Text)) {
		return Record{}, fmt.Errorf("emu: pc %d outside text segment (%d instructions)", m.pc, len(m.prog.Text)) //ce:alloc-ok fatal path, run is over
	}
	in := m.prog.Text[m.pc]
	rec := Record{PC: m.pc, Inst: in, NextPC: m.pc + 1}
	rs, rt := m.regs[in.Rs], m.regs[in.Rt]

	switch in.Op {
	case isa.Add:
		m.SetReg(in.Rd, rs+rt)
	case isa.Sub:
		m.SetReg(in.Rd, rs-rt)
	case isa.And:
		m.SetReg(in.Rd, rs&rt)
	case isa.Or:
		m.SetReg(in.Rd, rs|rt)
	case isa.Xor:
		m.SetReg(in.Rd, rs^rt)
	case isa.Nor:
		m.SetReg(in.Rd, ^(rs | rt))
	case isa.Sllv:
		m.SetReg(in.Rd, rs<<(uint32(rt)&31))
	case isa.Srlv:
		m.SetReg(in.Rd, int32(uint32(rs)>>(uint32(rt)&31)))
	case isa.Srav:
		m.SetReg(in.Rd, rs>>(uint32(rt)&31))
	case isa.Slt:
		m.SetReg(in.Rd, boolToInt(rs < rt))
	case isa.Sltu:
		m.SetReg(in.Rd, boolToInt(uint32(rs) < uint32(rt)))
	case isa.Mul:
		m.SetReg(in.Rd, rs*rt)
	case isa.Div:
		if rt == 0 {
			if m.journalDepth == 0 {
				return Record{}, fmt.Errorf("emu: division by zero at pc %d", m.pc) //ce:alloc-ok fatal path, run is over
			}
			m.SetReg(in.Rd, 0) // speculative path: squashed before commit
		} else {
			m.SetReg(in.Rd, rs/rt)
		}
	case isa.Rem:
		if rt == 0 {
			if m.journalDepth == 0 {
				return Record{}, fmt.Errorf("emu: remainder by zero at pc %d", m.pc) //ce:alloc-ok fatal path, run is over
			}
			m.SetReg(in.Rd, 0)
		} else {
			m.SetReg(in.Rd, rs%rt)
		}
	case isa.Addi:
		m.SetReg(in.Rd, rs+in.Imm)
	case isa.Andi:
		m.SetReg(in.Rd, rs&in.Imm)
	case isa.Ori:
		m.SetReg(in.Rd, rs|in.Imm)
	case isa.Xori:
		m.SetReg(in.Rd, rs^in.Imm)
	case isa.Slli:
		m.SetReg(in.Rd, rs<<(uint32(in.Imm)&31))
	case isa.Srli:
		m.SetReg(in.Rd, int32(uint32(rs)>>(uint32(in.Imm)&31)))
	case isa.Srai:
		m.SetReg(in.Rd, rs>>(uint32(in.Imm)&31))
	case isa.Slti:
		m.SetReg(in.Rd, boolToInt(rs < in.Imm))
	case isa.Sltiu:
		m.SetReg(in.Rd, boolToInt(uint32(rs) < uint32(in.Imm)))
	case isa.Lui:
		m.SetReg(in.Rd, in.Imm<<16)
	case isa.Lw:
		rec.Addr = uint32(rs + in.Imm)
		m.SetReg(in.Rd, m.LoadWord(rec.Addr))
	case isa.Lb:
		rec.Addr = uint32(rs + in.Imm)
		m.SetReg(in.Rd, int32(int8(m.LoadByte(rec.Addr))))
	case isa.Lbu:
		rec.Addr = uint32(rs + in.Imm)
		m.SetReg(in.Rd, int32(m.LoadByte(rec.Addr)))
	case isa.Sw:
		rec.Addr = uint32(rs + in.Imm)
		m.StoreWord(rec.Addr, rt)
	case isa.Sb:
		rec.Addr = uint32(rs + in.Imm)
		m.StoreByte(rec.Addr, byte(uint32(rt)))
	case isa.Beq:
		m.branch(&rec, rs == rt, in.Imm)
	case isa.Bne:
		m.branch(&rec, rs != rt, in.Imm)
	case isa.Blt:
		m.branch(&rec, rs < rt, in.Imm)
	case isa.Bge:
		m.branch(&rec, rs >= rt, in.Imm)
	case isa.Bltz:
		m.branch(&rec, rs < 0, in.Imm)
	case isa.Bgez:
		m.branch(&rec, rs >= 0, in.Imm)
	case isa.Blez:
		m.branch(&rec, rs <= 0, in.Imm)
	case isa.Bgtz:
		m.branch(&rec, rs > 0, in.Imm)
	case isa.J:
		rec.Taken = true
		rec.NextPC = uint32(in.Imm)
	case isa.Jal:
		m.SetReg(isa.RA, int32(m.pc+1))
		rec.Taken = true
		rec.NextPC = uint32(in.Imm)
	case isa.Jr:
		rec.Taken = true
		rec.NextPC = uint32(rs)
	case isa.Jalr:
		m.SetReg(isa.RA, int32(m.pc+1))
		rec.Taken = true
		rec.NextPC = uint32(rs)
	case isa.Out:
		m.Output = append(m.Output, rs)
	case isa.Halt:
		m.halted = true
		rec.NextPC = m.pc
	default:
		return Record{}, fmt.Errorf("emu: invalid opcode %d at pc %d", in.Op, m.pc) //ce:alloc-ok fatal path, run is over
	}

	m.pc = rec.NextPC
	m.Executed++
	return rec, nil
}

func (m *Machine) branch(rec *Record, cond bool, target int32) {
	if cond {
		rec.Taken = true
		rec.NextPC = uint32(target)
	}
}

func boolToInt(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// Run executes the program to completion or until maxInsts instructions
// have retired, returning the collected Out values. It is the convenience
// entry point for functional verification.
func Run(p *isa.Program, maxInsts uint64) ([]int32, error) {
	m := New(p)
	for !m.Halted() {
		if m.Executed >= maxInsts {
			return m.Output, fmt.Errorf("emu: %s exceeded %d instructions", p.Name, maxInsts)
		}
		if _, err := m.Step(); err != nil {
			return m.Output, err
		}
	}
	return m.Output, nil
}
