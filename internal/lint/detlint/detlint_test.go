package detlint_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), detlint.Analyzer, "det", "unmarked", "clocklib", "detcall")
}
