package errlint_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errlint"
)

func TestErrlint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errlint.Analyzer, "errbad", "errdep", "erruse")
}
