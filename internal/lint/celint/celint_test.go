package celint_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/celint"
)

// chdir switches to dir for the duration of the test.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(old) })
}

// seededWants are the substrings every driver mode must report for the
// badmod fixture: the three intra-package classics plus the four
// cross-package violations that only analyzer facts can surface (hot →
// allocating callee, deterministic → transitive clock read, lock held
// across another package's file I/O, unclassified disk error).
var seededWants = []string{
	"detlint", "map iteration order escapes",
	"keylint", "Spec.Extra",
	"hotlint", "make allocates",
	"call to dep.Grow allocates (Grow: make allocates)",
	"call to dep.Stamp is transitively nondeterministic (Stamp: time.Now reads the host clock)",
	"locklint", "mutex b.mu held across call to dep.Save (blocks: Save: call to os.WriteFile)",
	"errlint", "call to dep.Load may return an unclassified environment error (Load: os.ReadFile)",
}

// TestStandaloneFindsSeededViolations runs the multichecker in-process
// over a module seeded with one violation per analyzer and checks the
// exit code and that every analyzer reports by name.
func TestStandaloneFindsSeededViolations(t *testing.T) {
	chdir(t, filepath.Join("testdata", "badmod"))
	var stdout, stderr bytes.Buffer
	code := celint.Main([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range seededWants {
		if !strings.Contains(out, want) {
			t.Errorf("diagnostics missing %q:\n%s", want, out)
		}
	}
}

// TestStandaloneFactOnlyDeps narrows the pattern to the root package:
// dep is then loaded as a fact-only dependency — its facts must still
// flow (the cross-package findings appear) while its own package
// produces no output lines.
func TestStandaloneFactOnlyDeps(t *testing.T) {
	chdir(t, filepath.Join("testdata", "badmod"))
	var stdout, stderr bytes.Buffer
	code := celint.Main([]string{"."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"call to dep.Grow allocates (Grow: make allocates)",
		"mutex b.mu held across call to dep.Save (blocks: Save: call to os.WriteFile)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnostics missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, string(filepath.Separator)+"dep"+string(filepath.Separator)) {
			t.Errorf("fact-only dependency produced output: %s", line)
		}
	}
}

// TestStandaloneCleanModuleExitsZero checks the happy path on the
// repository's own lint fixtures-free package.
func TestStandaloneCleanModuleExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := celint.Main([]string{"repro/internal/canonjson"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
}

// TestVettoolProtocol builds the celint binary and drives it through
// `go vet -vettool`, exercising the unitchecker protocol end to end.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "celint")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/celint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building celint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = filepath.Join("testdata", "badmod")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited zero on seeded violations\n%s", out)
	}
	for _, want := range seededWants {
		if !strings.Contains(string(out), want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}
}
