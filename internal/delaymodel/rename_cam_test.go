package delaymodel

import (
	"math"
	"testing"

	"repro/internal/vlsi"
)

func TestRenameCAMComparableAtFourWay(t *testing.T) {
	// Section 4.1.1: "for the design space we are interested in, the
	// performance was found to be comparable" — the calibration pins the
	// 4-way/80-register point to the RAM scheme.
	for _, tech := range vlsi.Technologies() {
		cam, err := RenameCAM(tech, 4, 80)
		if err != nil {
			t.Fatal(err)
		}
		ram, err := Rename(tech, 4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cam.Total()-ram.Total())/ram.Total() > 0.01 {
			t.Errorf("%s: CAM(4,80)=%.1f vs RAM(4)=%.1f, want comparable", tech.Name, cam.Total(), ram.Total())
		}
	}
}

func TestRenameCAMLessScalable(t *testing.T) {
	// "the CAM scheme is less scalable than the RAM scheme because the
	// number of CAM entries ... tends to increase with issue width."
	for _, tech := range vlsi.Technologies() {
		cam, err := RenameCAM(tech, 8, 128)
		if err != nil {
			t.Fatal(err)
		}
		ram, err := Rename(tech, 8)
		if err != nil {
			t.Fatal(err)
		}
		if cam.Total() <= ram.Total() {
			t.Errorf("%s: CAM(8,128)=%.1f not slower than RAM(8)=%.1f", tech.Name, cam.Total(), ram.Total())
		}
	}
}

func TestRenameCAMGrowsWithEntries(t *testing.T) {
	a, err := RenameCAM(vlsi.Tech018, 8, 80)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RenameCAM(vlsi.Tech018, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() <= a.Total() {
		t.Errorf("CAM delay did not grow with physical registers: %.1f vs %.1f", a.Total(), b.Total())
	}
	if b.TagDrive <= a.TagDrive {
		t.Error("CAM tag drive did not grow with entries")
	}
	if b.Readout != a.Readout {
		t.Error("CAM readout should be entry-independent")
	}
}

func TestDependenceCheckHidden(t *testing.T) {
	// Section 4.1.1: "for these issue widths, the delay of the dependence
	// check logic is less than the delay of the map table, and hence the
	// check can be hidden behind the map table access."
	for _, tech := range vlsi.Technologies() {
		for _, iw := range []int{2, 4, 8} {
			dc, err := DependenceCheck(tech, iw)
			if err != nil {
				t.Fatal(err)
			}
			ram, err := Rename(tech, iw)
			if err != nil {
				t.Fatal(err)
			}
			if dc >= ram.Total() {
				t.Errorf("%s %d-way: dependence check %.1f not hidden behind rename %.1f",
					tech.Name, iw, dc, ram.Total())
			}
		}
	}
}

func TestDependenceCheckGrowsSuperlinearly(t *testing.T) {
	d2, _ := DependenceCheck(vlsi.Tech018, 2)
	d4, _ := DependenceCheck(vlsi.Tech018, 4)
	d8, _ := DependenceCheck(vlsi.Tech018, 8)
	if !(d2 < d4 && d4 < d8) {
		t.Fatalf("dependence check not monotone: %g %g %g", d2, d4, d8)
	}
	if (d8 - d4) <= (d4 - d2) {
		t.Errorf("dependence check not superlinear: increments %.1f then %.1f", d4-d2, d8-d4)
	}
}

func TestCamErrors(t *testing.T) {
	bad := vlsi.Technology{Name: "1.0um"}
	if _, err := RenameCAM(bad, 4, 80); err == nil {
		t.Error("RenameCAM with unknown technology succeeded")
	}
	if _, err := RenameCAM(vlsi.Tech018, 0, 80); err == nil {
		t.Error("RenameCAM with zero issue width succeeded")
	}
	if _, err := RenameCAM(vlsi.Tech018, 4, 0); err == nil {
		t.Error("RenameCAM with zero registers succeeded")
	}
	if _, err := DependenceCheck(bad, 4); err == nil {
		t.Error("DependenceCheck with unknown technology succeeded")
	}
	if _, err := DependenceCheck(vlsi.Tech018, 0); err == nil {
		t.Error("DependenceCheck with zero issue width succeeded")
	}
}
