// Package rename implements the register rename stage's bookkeeping: the
// logical→physical map table (the RAM scheme of Section 4.1) and the
// physical register free list. The paper's baseline machine (Table 3) has
// 120 physical integer registers.
//
//ce:deterministic
package rename

import (
	"fmt"

	"repro/internal/isa"
)

// None marks "no physical register".
const None int16 = -1

// Table is the rename map plus free list.
type Table struct {
	mapping [isa.NumRegs]int16
	free    []int16
	nPhys   int
}

// New creates a rename table with nPhys physical registers; the first
// isa.NumRegs of them hold the initial architectural state.
func New(nPhys int) (*Table, error) {
	if nPhys <= isa.NumRegs {
		return nil, fmt.Errorf("rename: %d physical registers cannot back %d architectural", nPhys, isa.NumRegs)
	}
	t := &Table{nPhys: nPhys}
	for i := range t.mapping {
		t.mapping[i] = int16(i)
	}
	for p := nPhys - 1; p >= isa.NumRegs; p-- {
		t.free = append(t.free, int16(p))
	}
	return t, nil
}

// NumPhys returns the total number of physical registers.
func (t *Table) NumPhys() int { return t.nPhys }

// Available returns the number of free physical registers.
func (t *Table) Available() int { return len(t.free) }

// Lookup returns the physical register currently mapped to r.
func (t *Table) Lookup(r isa.Reg) int16 { return t.mapping[r] }

// InFlight returns the number of physical registers allocated beyond the
// isa.NumRegs backing the architectural state — one per in-flight
// instruction with a destination. A nonzero value after the pipeline
// drains is a free-list leak (an allocation whose Release or Undo was
// lost); the invariant checker in package pipeline asserts it is zero.
func (t *Table) InFlight() int { return t.nPhys - isa.NumRegs - len(t.free) }

// Rename maps the instruction's sources through the current table and, if
// the instruction writes a register, allocates a new physical destination.
// The physical sources are appended to buf (pass a zero-length slice with
// retained capacity to rename without allocating). It returns the
// physical sources, the new physical destination (None if the instruction
// writes nothing), and the previous mapping of the destination (to be
// freed when this instruction commits). ok is false — with no state
// changed — if no physical register is free.
func (t *Table) Rename(buf []int16, srcs []isa.Reg, dest isa.Reg, hasDest bool) (physSrcs []int16, physDest, oldDest int16, ok bool) {
	physSrcs = buf
	for _, r := range srcs {
		physSrcs = append(physSrcs, t.mapping[r])
	}
	if !hasDest {
		return physSrcs, None, None, true
	}
	if len(t.free) == 0 {
		return nil, None, None, false
	}
	physDest = t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	oldDest = t.mapping[dest]
	t.mapping[dest] = physDest
	return physSrcs, physDest, oldDest, true
}

// Release returns a physical register to the free list. Callers pass the
// oldDest of a committing instruction.
func (t *Table) Release(p int16) {
	if p == None {
		return
	}
	t.free = append(t.free, p)
}

// Undo reverses the most recent Rename of dest (used when the instruction
// fails to dispatch in the same cycle and must be retried): the previous
// mapping is restored and the allocated register returns to the free list.
func (t *Table) Undo(dest isa.Reg, physDest, oldDest int16) {
	if physDest == None {
		return
	}
	t.mapping[dest] = oldDest
	t.free = append(t.free, physDest)
}
