// Package dir seeds every malformed-directive shape dirlint must flag.
package dir

// A typo'd verb would silently suppress nothing.
/* want `unknown //ce: directive "nondetok"` */ //ce:nondetok seeded randomness
func typoVerb() {}

// A hatch without its mandatory reason.
/* want "//ce:alloc-ok requires a reason" */ //ce:alloc-ok
func bareHatch() {
	_ = make([]int, 4)
}

// Two directives on one line: the second is dead text inside the first
// one's reason.
func stacked() {
	_ = 1 /* want "embedded in the reason" */ //ce:alloc-ok pooled //ce:nondet-ok seeded
}

// Well-formed directives produce nothing.

//ce:hot
func clean() {
	_ = 1 //ce:alloc-ok amortized against pre-grown capacity
}

//ce:det-boundary wraps host telemetry
func seam() {}
