package ce

// The engine's trace pool: execute each workload once, time it under
// every configuration. The functional behaviour of a workload is
// configuration-independent, so the Engine captures one execution trace
// per workload (single-flight, like the run cache) and drives every
// replay-capable simulation from a shared read-only trace.Reader instead
// of a private lockstep emulator. Wrong-path configurations, which must
// execute down mispredicted paths, keep the lockstep machine; the
// differential harness in internal/verify pins that both paths produce
// identical statistics.

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/isa"
	"repro/internal/lease"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/trace"
)

// TraceStats counts the engine's trace-pool activity. It separates the
// one-time capture cost (CaptureSeconds, CaptureAllocs, one functional
// execution per workload) from the per-simulation replay cost that
// Stats.HostWallSeconds/HostAllocs report, and exposes the
// executed-versus-replayed instruction balance a sweep achieves.
type TraceStats struct {
	// Captures is the number of workloads functionally executed to build
	// a trace this process; DiskHits counts traces loaded from the trace
	// directory instead.
	Captures int `json:"captures"`
	DiskHits int `json:"disk_hits"`
	// ReplayRuns and LockstepRuns split fresh simulations by drive mode.
	ReplayRuns   int `json:"replay_runs"`
	LockstepRuns int `json:"lockstep_runs"`
	// CaptureSeconds and CaptureAllocs are the wall time and heap
	// allocations spent capturing traces — the one-time cost excluded
	// from every run's WallSeconds and Stats.HostAllocs.
	CaptureSeconds float64 `json:"capture_seconds"`
	CaptureAllocs  uint64  `json:"capture_allocs"`
	// StepsExecuted counts dynamic instructions resolved by functional
	// execution (captures plus lockstep simulations); StepsReplayed
	// counts those streamed from pre-captured traces.
	StepsExecuted uint64 `json:"steps_executed"`
	StepsReplayed uint64 `json:"steps_replayed"`
	// LeaseWaits counts captures avoided by waiting out another
	// process's capture lease on the shared trace directory
	// (Engine.SetSharedStore); each is also counted in DiskHits.
	LeaseWaits int `json:"lease_waits,omitempty"`
	// SegmentRuns counts replay runs conducted segment-parallel
	// (segmented.go); SegmentsSimulated totals the segments they timed.
	SegmentRuns       int `json:"segment_runs,omitempty"`
	SegmentsSimulated int `json:"segments_simulated,omitempty"`
	// CaptureFailures counts replay-capable simulations that fell back to
	// lockstep because their workload's trace could not be captured or a
	// replay simulator could not be built. The fallback is benign — the
	// statistics are identical — but it silently forfeits the sweep's
	// replay speedup, so each workload's first failure is logged with its
	// cause and every occurrence is counted here.
	CaptureFailures int `json:"capture_failures,omitempty"`
	// CorruptDropped counts pooled traces dropped mid-replay after a
	// chunk failed its checksum; each was invalidated on disk and
	// recaptured once before the run retried.
	CorruptDropped int `json:"corrupt_dropped,omitempty"`
	// TraceDiskBytes and TraceResidentBytes split the pooled traces'
	// packed bytes by where they live — the streaming capture and
	// disk-backed readers keep multi-gigabyte traces on disk with only
	// O(readers) chunk buffers resident. Snapshot at query time.
	TraceDiskBytes     int64 `json:"trace_disk_bytes"`
	TraceResidentBytes int64 `json:"trace_resident_bytes"`
	// Gang replay (slab sharing) counters. GangRuns counts replay runs
	// driven from shared decoded slabs; SlabDecodes/SlabHits split slab
	// acquisitions by whether the chunk had to be decoded or was already
	// resident — their ratio is the decode sharing a sweep achieved.
	// SlabEvictions and SlabPeakBytes describe the cache's budget
	// behaviour. RecordsDecoded totals dynamic records decoded from
	// packed streams across both drive modes (per-run private decoding
	// under streaming replay, once per chunk under gang replay); the
	// per-config baseline decodes ~#configs × trace length, so gang
	// replay's ≥5× reduction shows up directly here.
	GangRuns       int    `json:"gang_runs,omitempty"`
	SlabDecodes    int    `json:"slab_decodes,omitempty"`
	SlabHits       int    `json:"slab_hits,omitempty"`
	SlabEvictions  int    `json:"slab_evictions,omitempty"`
	SlabPeakBytes  int64  `json:"slab_peak_bytes,omitempty"`
	RecordsDecoded uint64 `json:"records_decoded,omitempty"`
}

// traceEntry is one workload's slot in the pool: the first goroutine to
// need the trace captures it while later ones wait on done (the same
// single-flight shape as internal/runcache).
type traceEntry struct {
	done chan struct{}
	tr   *trace.Trace
	err  error
}

// SetTraceDir persists captured traces under dir (created if absent) in
// the canonical on-disk format, so later processes reload them instead
// of re-executing workloads. Corrupt or truncated files are dropped and
// recaptured.
//
// Calling SetTraceDir after traces are already pooled used to leave the
// earlier captures in-memory only — never written anywhere — while the
// pool kept serving them, so the directory silently missed exactly the
// workloads that had run first. On a directory change the pool is now
// reconciled: completed captures are flushed to the new directory, and
// failed or still-in-flight slots are dropped so their next consumer
// retries against the new directory.
func (e *Engine) SetTraceDir(dir string) error {
	if err := trace.EnsureDir(dir); err != nil {
		return err
	}
	e.traceMu.Lock()
	if dir == e.traceDir {
		e.traceMu.Unlock()
		return nil
	}
	e.traceDir = dir
	var flush []*trace.Trace
	for w, ent := range e.traces {
		select {
		case <-ent.done:
			if ent.err != nil || ent.tr == nil {
				delete(e.traces, w)
				continue
			}
			flush = append(flush, ent.tr)
		default:
			// In-flight capture racing the dir change: its waiters keep the
			// entry pointer they already hold, but the pool forgets it so
			// later callers capture (and persist) under the new directory.
			delete(e.traces, w)
		}
	}
	e.traceMu.Unlock()
	for _, tr := range flush {
		if err := tr.WriteFile(dir); err != nil {
			return err
		}
	}
	return nil
}

// SetTraceReplay toggles trace-replay drive for this engine's
// simulations (default on). With replay off every simulation executes
// its workload in lockstep, as pipeline.New does; the results are
// identical either way.
func (e *Engine) SetTraceReplay(on bool) {
	e.traceMu.Lock()
	e.noReplay = !on
	e.traceMu.Unlock()
}

// TraceReplay reports whether trace-replay drive is enabled.
func (e *Engine) TraceReplay() bool {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	return !e.noReplay
}

// TraceStats returns a snapshot of the engine's trace-pool counters,
// including the pooled traces' current disk/resident byte split and the
// slab cache's sharing counters.
func (e *Engine) TraceStats() TraceStats {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	ts := e.tstats
	for _, ent := range e.traces {
		select {
		case <-ent.done:
			if ent.err == nil && ent.tr != nil {
				d, r := ent.tr.Footprint()
				ts.TraceDiskBytes += d
				ts.TraceResidentBytes += r
			}
		default:
		}
	}
	if e.slabs != nil {
		ss := e.slabs.Stats()
		ts.SlabDecodes = ss.Decodes
		ts.SlabHits = ss.Hits
		ts.SlabEvictions = ss.Evictions
		ts.SlabPeakBytes = ss.PeakBytes
		ts.RecordsDecoded += ss.DecodedRecords
	}
	return ts
}

// defaultSlabBudget bounds the decoded-slab cache when SetSlabBudget was
// never called: 256 MiB holds ~11M decoded records — tens of chunks —
// which comfortably fits every paper workload's full decoded stream
// while staying far under typical sweep-host memory.
const defaultSlabBudget int64 = 256 << 20

// SetGangReplay toggles gang replay (default on): concurrent replay
// simulations of one workload share each trace chunk decoded once into
// an immutable slab, instead of each re-decoding the packed stream. The
// results are byte-identical either way — only host cost changes — so
// gang and per-config runs share run-cache keys.
func (e *Engine) SetGangReplay(on bool) {
	e.traceMu.Lock()
	e.noGang = !on
	e.traceMu.Unlock()
}

// GangReplay reports whether gang replay is enabled.
func (e *Engine) GangReplay() bool {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	return !e.noGang
}

// SetSlabBudget bounds the decoded-slab cache to at most budget bytes of
// resident decoded records (<= 0 restores the default). Call before
// running: the budget is fixed when the first gang run creates the
// cache. Traces whose full decoded stream exceeds the budget are not
// ganged at all — they stream through private Readers, since a cache
// that must evict a workload's slabs faster than its gang shares them
// is strictly worse than streaming.
func (e *Engine) SetSlabBudget(budget int64) {
	e.traceMu.Lock()
	e.slabBudget = budget
	e.traceMu.Unlock()
}

// slabCacheFor returns the engine's shared slab cache if gang replay
// should drive simulations of tr, or nil to use streaming replay.
func (e *Engine) slabCacheFor(tr *trace.Trace) *trace.SlabCache {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	if e.noGang || e.noReplay {
		return nil
	}
	budget := e.slabBudget
	if budget <= 0 {
		budget = defaultSlabBudget
	}
	if tr.DecodedBytes() > budget {
		return nil
	}
	if e.slabs == nil {
		e.slabs = trace.NewSlabCache(budget)
	}
	return e.slabs
}

// warnOnce writes one diagnostic line to stderr per key for the
// engine's lifetime, so a sweep that falls back ten thousand times
// complains exactly once per workload and cause.
func (e *Engine) warnOnce(key, format string, args ...any) {
	e.traceMu.Lock()
	if e.traceWarned[key] {
		e.traceMu.Unlock()
		return
	}
	if e.traceWarned == nil {
		e.traceWarned = make(map[string]bool)
	}
	e.traceWarned[key] = true
	e.traceMu.Unlock()
	fmt.Fprintf(os.Stderr, "ce: "+format+"\n", args...)
}

// traceFor returns workload's shared trace, capturing it exactly once
// per process however many configurations and goroutines ask.
func (e *Engine) traceFor(workload string) (*trace.Trace, error) {
	tr, _, err := e.traceForOwned(workload)
	return tr, err
}

// traceForOwned is traceFor plus ownership: owned is true for the one
// caller that performed the capture (or disk load), false for callers
// that merely waited on it. Attribution needs the distinction — in a
// gang every member blocks on the same capture, but the cost must be
// charged to exactly one run (the others report it as wait time), or a
// sweep's summed CaptureSeconds would count one capture once per gang
// member.
func (e *Engine) traceForOwned(workload string) (tr *trace.Trace, owned bool, err error) {
	e.traceMu.Lock()
	if ent, ok := e.traces[workload]; ok {
		e.traceMu.Unlock()
		<-ent.done
		return ent.tr, false, ent.err
	}
	ent := &traceEntry{done: make(chan struct{})}
	if e.traces == nil {
		e.traces = make(map[string]*traceEntry)
	}
	e.traces[workload] = ent
	dir, shared := e.traceDir, e.traceShared
	e.traceMu.Unlock()
	ent.tr, ent.err = e.captureTrace(workload, dir, shared)
	close(ent.done)
	return ent.tr, true, ent.err
}

// captureTrace loads workload's trace from the trace directory or
// captures it by functional execution, charging the cost to the pool's
// counters rather than to whichever simulation happened to arrive first.
// With a shared store, capture runs under the trace file's cross-process
// lease so N processes over one directory execute the workload once.
func (e *Engine) captureTrace(workload, dir string, shared bool) (*trace.Trace, error) {
	w, err := prog.ByName(workload)
	if err != nil {
		return nil, err
	}
	p, err := w.Program()
	if err != nil {
		return nil, err
	}
	if dir != "" {
		if tr, err := trace.ReadFile(dir, p); err == nil {
			e.traceMu.Lock()
			e.tstats.DiskHits++
			e.traceMu.Unlock()
			return tr, nil
		} else if errors.Is(err, trace.ErrStaleFormat) {
			// A pre-v3 file from an older build: announce the migration
			// (the error text names both versions) before recapturing.
			e.warnOnce("stale:"+workload, "trace %s: %v", workload, err)
		}
		// Missing, stale or corrupt — ReadFile already removed a bad
		// file, so the recapture below rewrites the slot.
		if shared {
			held, tr := e.awaitCaptureLease(dir, p)
			if tr != nil {
				return tr, nil
			}
			if held != nil {
				defer held.Release()
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startAllocs := ms.Mallocs
	start := time.Now()
	var tr *trace.Trace
	if dir != "" {
		// Stream the packed records to the trace directory as they are
		// produced: peak capture memory stays O(chunk) however long the
		// workload runs, and the file lands at its canonical path
		// atomically at the end — no separate WriteFile pass.
		tr, err = trace.CaptureToDir(p, maxCycles, dir)
	} else {
		tr, err = trace.Capture(p, maxCycles)
	}
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms)
	e.traceMu.Lock()
	e.tstats.Captures++
	e.tstats.CaptureSeconds += wall
	e.tstats.CaptureAllocs += ms.Mallocs - startAllocs
	e.tstats.StepsExecuted += tr.Steps()
	e.traceMu.Unlock()
	return tr, nil
}

// awaitCaptureLease is the cross-process arm of trace capture: it either
// acquires the trace file's lease (returning held != nil; the caller
// captures and must release after writing) or waits out another
// process's capture and returns the trace it wrote. If the directory
// cannot host lock files it returns (nil, nil): the caller captures
// leaseless — possibly duplicating a peer's work, never losing its own.
func (e *Engine) awaitCaptureLease(dir string, p *isa.Program) (*lease.Lease, *trace.Trace) {
	lockPath := trace.DiskPath(dir, p) + ".lock"
	waited := false
	record := func(tr *trace.Trace) *trace.Trace {
		e.traceMu.Lock()
		e.tstats.DiskHits++
		if waited {
			e.tstats.LeaseWaits++
		}
		e.traceMu.Unlock()
		return tr
	}
	for {
		if l, ok := lease.TryAcquire(lockPath, 0); ok {
			// The previous holder may have finished between our last probe
			// and this acquisition; re-check before executing the workload.
			if tr, err := trace.ReadFile(dir, p); err == nil {
				l.Release()
				return nil, record(tr)
			}
			return l, nil
		}
		if _, err := os.Stat(lockPath); err != nil {
			return nil, nil
		}
		waited = true
		time.Sleep(20 * time.Millisecond)
		if tr, err := trace.ReadFile(dir, p); err == nil {
			return nil, record(tr)
		}
	}
}

// simAttribution carries cost attribution out of the run cache's compute
// closure: how much of the observed wall time was the workload's
// one-time trace capture (shared, reported separately) rather than this
// simulation's own cost, and which drive mode ran.
type simAttribution struct {
	captureSeconds float64
	// captureWait is time spent blocked on a capture some *other* run
	// owns (and reports in its captureSeconds). Excluded from the run's
	// wall time like captureSeconds, but kept apart so summing
	// CaptureSeconds across a sweep's runs counts each capture once.
	captureWait float64
	replayed    bool
	// ganged reports that the run read shared decoded slabs instead of
	// streaming its own private Reader.
	ganged bool
	// segments is non-nil when the run was conducted segment-parallel.
	segments *SegmentMetrics
}

// runSim performs one fresh simulation for the engine, replay-driven
// when possible. Configurations that cannot replay (wrong-path
// execution) and capture failures fall back to lockstep execution;
// either way the statistics are identical, only the host cost differs.
// The fallback is counted (TraceStats.CaptureFailures) and its first
// cause per workload logged, so a sweep silently losing its replay
// speedup is visible in -v output and the metrics dumps.
func (e *Engine) runSim(cfg Config, workload string, attr *simAttribution) (Stats, error) {
	e.traceMu.Lock()
	replay := !e.noReplay && !cfg.WrongPathExecution
	e.traceMu.Unlock()
	if replay {
		st, ok, err := e.runReplay(cfg, workload, attr)
		if ok || err != nil {
			return st, err
		}
		// Capture failed: fall through to lockstep, which reproduces (and
		// properly attributes) whatever went wrong with the workload.
	}
	st, err := Run(cfg, workload)
	if err != nil {
		return st, err
	}
	e.traceMu.Lock()
	e.tstats.LockstepRuns++
	e.tstats.StepsExecuted += st.EmuSteps
	e.traceMu.Unlock()
	return st, nil
}

// runReplay attempts one replay-driven simulation. ok=false (with a nil
// error) means the trace could not be obtained and the caller should
// fall back to lockstep. A trace whose chunk fails its checksum
// mid-replay — a torn write or storage fault in the trace directory —
// is dropped from the pool, invalidated on disk, and recaptured once
// before the run retries; a second corruption surfaces as an error.
func (e *Engine) runReplay(cfg Config, workload string, attr *simAttribution) (Stats, bool, error) {
	for attempt := 0; ; attempt++ {
		waitStart := time.Now()
		tr, owned, err := e.traceForOwned(workload)
		if owned {
			attr.captureSeconds += time.Since(waitStart).Seconds()
		} else {
			attr.captureWait += time.Since(waitStart).Seconds()
		}
		if err != nil {
			e.noteCaptureFailure(workload, err)
			return Stats{}, false, nil
		}
		retry := func(err error) bool {
			if attempt > 0 || !errors.Is(err, trace.ErrCorruptChunk) {
				return false
			}
			e.dropCorrupt(workload, tr)
			return true
		}
		if plan := e.segmentPlan(); plan.k > 1 {
			// Segment-parallel drive. Errors other than chunk corruption
			// surface rather than fall back: a failing segment run means a
			// real defect (the seam is differentially verified), not a
			// workload property.
			st, err := e.runSegmented(cfg, tr, plan, attr)
			if err != nil {
				if retry(err) {
					continue
				}
				return st, false, err
			}
			attr.replayed = true
			return st, true, nil
		}
		// Monolithic replay: gang-driven from shared decoded slabs when
		// the cache admits the trace, a private streaming Reader otherwise.
		var (
			sim *pipeline.Simulator
			cur *trace.SlabCursor
		)
		if sc := e.slabCacheFor(tr); sc != nil {
			c, cerr := trace.NewSlabCursor(sc, tr)
			if cerr == nil {
				sim, cerr = pipeline.NewSlabReplay(cfg, c)
				if cerr == nil {
					cur = c
				} else {
					c.Release()
				}
			}
			if cerr != nil {
				if retry(cerr) {
					continue
				}
				// Non-corrupt construction failure (e.g. the config cannot
				// replay): the streaming path below reproduces and properly
				// attributes it.
				sim = nil
			}
		}
		ganged := sim != nil
		if sim == nil {
			sim, err = pipeline.NewReplay(cfg, trace.NewReader(tr))
			if err != nil {
				e.noteCaptureFailure(workload, err)
				return Stats{}, false, nil
			}
		}
		st, err := sim.Run(maxCycles)
		if cur != nil {
			// The cursor self-releases at the trace's end; this covers runs
			// that stop early (errors, cycle limits) still pinning a slab.
			cur.Release()
		}
		if err != nil {
			if retry(err) {
				continue
			}
			return st, false, err
		}
		attr.replayed = true
		attr.ganged = ganged
		e.traceMu.Lock()
		e.tstats.ReplayRuns++
		e.tstats.StepsReplayed += st.EmuSteps
		if ganged {
			e.tstats.GangRuns++
		} else {
			// A private streaming Reader decoded every record this run
			// consumed; ganged runs' decodes are counted once per chunk by
			// the slab cache and merged in TraceStats().
			e.tstats.RecordsDecoded += st.EmuSteps
		}
		e.traceMu.Unlock()
		return st, true, nil
	}
}

// noteCaptureFailure counts a lockstep fallback and logs the workload's
// first failure with its cause.
func (e *Engine) noteCaptureFailure(workload string, err error) {
	e.traceMu.Lock()
	e.tstats.CaptureFailures++
	e.traceMu.Unlock()
	e.warnOnce("capture:"+workload, "trace %s: capture failed (%v); falling back to lockstep execution", workload, err)
}

// dropCorrupt evicts workload's pooled trace after a chunk checksum
// failure, deleting its backing file so the next traceFor call
// recaptures rather than reloading the same bad bytes.
func (e *Engine) dropCorrupt(workload string, tr *trace.Trace) {
	e.traceMu.Lock()
	if ent, ok := e.traces[workload]; ok {
		select {
		case <-ent.done:
			if ent.tr == tr {
				delete(e.traces, workload)
			}
		default:
			// An in-flight recapture already owns the slot; leave it.
		}
	}
	e.tstats.CorruptDropped++
	sc := e.slabs
	e.traceMu.Unlock()
	if sc != nil {
		// Slabs decoded from the bad trace are dead weight; free their
		// budget now rather than waiting for LRU pressure.
		sc.DropTrace(tr)
	}
	e.warnOnce("corrupt:"+workload, "trace %s: chunk checksum failed mid-replay; dropping the trace and recapturing", workload)
	tr.Invalidate()
}
