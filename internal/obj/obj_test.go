package obj

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

func TestRoundTripWorkloads(t *testing.T) {
	for _, w := range prog.AllExtended() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program()
			if err != nil {
				t.Fatal(err)
			}
			b := Encode(p)
			got, err := Decode(w.Name, b)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Text) != len(p.Text) {
				t.Fatalf("text length %d, want %d", len(got.Text), len(p.Text))
			}
			for i := range p.Text {
				if got.Text[i] != p.Text[i] {
					t.Fatalf("inst %d = %+v, want %+v", i, got.Text[i], p.Text[i])
				}
			}
			if !bytes.Equal(got.Data, p.Data) {
				t.Fatal("data segment mismatch")
			}
			if len(got.Symbols) != len(p.Symbols) {
				t.Fatalf("symbols %d, want %d", len(got.Symbols), len(p.Symbols))
			}
			for n, v := range p.Symbols {
				if got.Symbols[n] != v {
					t.Fatalf("symbol %q = %d, want %d", n, got.Symbols[n], v)
				}
			}
			// The decoded program must execute identically.
			out, err := emu.Run(got, 20_000_000)
			if err != nil {
				t.Fatal(err)
			}
			want := w.Reference()
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("decoded program output[%d] = %d, want %d", i, out[i], want[i])
				}
			}
		})
	}
}

func TestEncodeDeterministic(t *testing.T) {
	w, err := prog.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(p), Encode(p)) {
		t.Error("Encode is not deterministic")
	}
}

func TestIsObject(t *testing.T) {
	if !IsObject([]byte("CE97....")) {
		t.Error("magic not recognized")
	}
	if IsObject([]byte(".text\n")) || IsObject([]byte("CE")) {
		t.Error("non-object recognized")
	}
}

func TestDecodeErrors(t *testing.T) {
	p := &isa.Program{
		Name:    "t",
		Text:    []isa.Inst{{Op: isa.Addi, Rd: isa.T0, Rs: isa.Zero, Imm: 1}, {Op: isa.Halt}},
		Data:    []byte{1, 2, 3},
		Symbols: map[string]uint32{"main": 0},
	}
	good := Encode(p)

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 9; return b }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-8] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xFF) }},
		{"huge text count", func(b []byte) []byte { b[8], b[9], b[10], b[11] = 0xFF, 0xFF, 0xFF, 0x7F; return b }},
		{"bad opcode", func(b []byte) []byte { b[20] = 0xEE; return b }},
		{"bad register", func(b []byte) []byte { b[21] = 200; return b }},
	}
	for _, c := range cases {
		b := append([]byte(nil), good...)
		if _, err := Decode("t", c.mutate(b)); err == nil {
			t.Errorf("%s: Decode succeeded, want error", c.name)
		}
	}
	// The pristine copy still decodes.
	if _, err := Decode("t", good); err != nil {
		t.Fatalf("pristine object failed: %v", err)
	}
}

func TestPropertyRandomProgramsRoundTrip(t *testing.T) {
	f := func(ops []uint8, data []byte) bool {
		p := &isa.Program{Name: "rand", Symbols: map[string]uint32{}}
		for _, o := range ops {
			p.Text = append(p.Text, isa.Inst{
				Op:  isa.Op(int(o)%int(isa.Halt) + 1),
				Rd:  isa.Reg(o % isa.NumRegs),
				Rs:  isa.Reg((o >> 2) % isa.NumRegs),
				Rt:  isa.Reg((o >> 4) % isa.NumRegs),
				Imm: int32(o) * 7919,
			})
		}
		if len(data) > 0 {
			p.Data = data
		}
		got, err := Decode("rand", Encode(p))
		if err != nil {
			return false
		}
		if len(got.Text) != len(p.Text) || !bytes.Equal(got.Data, p.Data) {
			return false
		}
		for i := range p.Text {
			if got.Text[i] != p.Text[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
