package prog

// Microbenchmarks (extensions): five tiny kernels that each isolate one
// microarchitectural mechanism. They are not part of the paper's figure
// set; the characterization example and the scheduler tests use them to
// show each mechanism in isolation.

const (
	microChainIters = 9000
	microChainLinks = 8

	microParIters   = 3000
	microParStreams = 8

	microChaseNodes = 4096
	microChaseSteps = 100000

	microBranchIters = 30000

	microStreamWords  = 16384 // 64 KB
	microStreamPasses = 3
)

func microChainRef() []int32 {
	v := int32(1)
	for i := 0; i < microChainIters; i++ {
		for k := 0; k < microChainLinks; k++ {
			v = v*3 + 1
		}
	}
	return []int32{v}
}

const microChainSrc = `
# micro.chain: one serial dependence chain (8 multiply-add links per iteration) — IPC pinned near 1 on any
# machine with single-cycle ALUs.
		.text
main:	li   $s0, 9000
		li   $t0, 1
loop:
` + chainBody + `
		addi $s0, $s0, -1
		bgtz $s0, loop
		out  $t0
		halt
`

// chainBody is 8 dependent multiply-add link pairs.
const chainBody = `		li   $t9, 3
		mul  $t0, $t0, $t9
		addi $t0, $t0, 1
		mul  $t0, $t0, $t9
		addi $t0, $t0, 1
		mul  $t0, $t0, $t9
		addi $t0, $t0, 1
		mul  $t0, $t0, $t9
		addi $t0, $t0, 1
		mul  $t0, $t0, $t9
		addi $t0, $t0, 1
		mul  $t0, $t0, $t9
		addi $t0, $t0, 1
		mul  $t0, $t0, $t9
		addi $t0, $t0, 1
		mul  $t0, $t0, $t9
		addi $t0, $t0, 1
`

func microParallelRef() []int32 {
	var v [microParStreams]int32
	for i := range v {
		v[i] = int32(i + 1)
	}
	for i := 0; i < microParIters; i++ {
		for k := 0; k < 4; k++ {
			for s := range v {
				v[s] = v[s]*5 + int32(s)
			}
		}
	}
	var csum int32
	for _, x := range v {
		csum = csum*31 + x
	}
	return []int32{csum}
}

const microParallelSrc = `
# micro.parallel: eight independent dependence chains — enough ILP to
# saturate an 8-wide machine.
		.text
main:	li   $s0, 3000
		li   $t0, 1
		li   $t1, 2
		li   $t2, 3
		li   $t3, 4
		li   $t4, 5
		li   $t5, 6
		li   $t6, 7
		li   $t7, 8
		li   $t9, 5
loop:
` + parBody + parBody + parBody + parBody + `
		addi $s0, $s0, -1
		bgtz $s0, loop
		li   $s1, 0
		li   $s2, 31
		mul  $s1, $s1, $s2
		add  $s1, $s1, $t0
		mul  $s1, $s1, $s2
		add  $s1, $s1, $t1
		mul  $s1, $s1, $s2
		add  $s1, $s1, $t2
		mul  $s1, $s1, $s2
		add  $s1, $s1, $t3
		mul  $s1, $s1, $s2
		add  $s1, $s1, $t4
		mul  $s1, $s1, $s2
		add  $s1, $s1, $t5
		mul  $s1, $s1, $s2
		add  $s1, $s1, $t6
		mul  $s1, $s1, $s2
		add  $s1, $s1, $t7
		out  $s1
		halt
`

const parBody = `		mul  $t0, $t0, $t9
		addi $t0, $t0, 0
		mul  $t1, $t1, $t9
		addi $t1, $t1, 1
		mul  $t2, $t2, $t9
		addi $t2, $t2, 2
		mul  $t3, $t3, $t9
		addi $t3, $t3, 3
		mul  $t4, $t4, $t9
		addi $t4, $t4, 4
		mul  $t5, $t5, $t9
		addi $t5, $t5, 5
		mul  $t6, $t6, $t9
		addi $t6, $t6, 6
		mul  $t7, $t7, $t9
		addi $t7, $t7, 7
`

func microChaseRef() []int32 {
	next := make([]int32, microChaseNodes)
	s := int32(8675309)
	// Sattolo's algorithm: a single cycle through all nodes.
	perm := make([]int32, microChaseNodes)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := microChaseNodes - 1; i > 0; i-- {
		s = lcg(s)
		j := int(uint32(s)>>16) % i
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < microChaseNodes; i++ {
		next[perm[i]] = perm[(i+1)%microChaseNodes]
	}
	p := perm[0]
	var csum int32
	for step := 0; step < microChaseSteps; step++ {
		p = next[p]
		csum += p
	}
	return []int32{p, csum}
}

const microChaseSrc = `
# micro.chase: pointer chasing through a permutation ring — every load
# depends on the previous load.
		.data
nextp:	.space 16384           # 4096 words
perm:	.space 16384
		.text
main:
		# perm = identity
		la   $s0, perm
		li   $t1, 0
idloop:	sll  $t2, $t1, 2
		add  $t2, $s0, $t2
		sw   $t1, 0($t2)
		addi $t1, $t1, 1
		li   $t2, 4096
		blt  $t1, $t2, idloop

		# Sattolo shuffle: for i = 4095 downto 1: j = rand % i; swap
		li   $t0, 8675309      # seed
		li   $t8, 1103515245
		li   $t1, 4095         # i
shuf:	mul  $t0, $t0, $t8
		addi $t0, $t0, 12345
		srl  $t2, $t0, 16      # rand 16-bit
		rem  $t2, $t2, $t1     # j = rand % i
		sll  $t3, $t1, 2
		add  $t3, $s0, $t3     # &perm[i]
		sll  $t4, $t2, 2
		add  $t4, $s0, $t4     # &perm[j]
		lw   $t5, 0($t3)
		lw   $t6, 0($t4)
		sw   $t6, 0($t3)
		sw   $t5, 0($t4)
		addi $t1, $t1, -1
		bgtz $t1, shuf

		# next[perm[i]] = perm[(i+1) % N]
		la   $s1, nextp
		li   $t1, 0
link:	sll  $t2, $t1, 2
		add  $t2, $s0, $t2
		lw   $t3, 0($t2)       # perm[i]
		addi $t4, $t1, 1
		andi $t4, $t4, 4095
		sll  $t4, $t4, 2
		add  $t4, $s0, $t4
		lw   $t5, 0($t4)       # perm[i+1]
		sll  $t3, $t3, 2
		add  $t3, $s1, $t3
		sw   $t5, 0($t3)
		addi $t1, $t1, 1
		li   $t2, 4096
		blt  $t1, $t2, link

		# Chase.
		lw   $t1, 0($s0)       # p = perm[0]
		li   $s3, 0            # csum
		li   $s2, 100000       # steps
chase:	sll  $t2, $t1, 2
		add  $t2, $s1, $t2
		lw   $t1, 0($t2)       # p = next[p]
		add  $s3, $s3, $t1
		addi $s2, $s2, -1
		bgtz $s2, chase
		out  $t1
		out  $s3
		halt
`

func microBranchRef() []int32 {
	s := int32(13579)
	var a, b, c int32
	for i := 0; i < microBranchIters; i++ {
		s = lcg(s)
		bit := (s >> 16) & 3
		switch bit {
		case 0:
			a++
		case 1:
			b += a
		case 2:
			c ^= b
		default:
			a -= 1
		}
	}
	return []int32{a, b, c}
}

const microBranchSrc = `
# micro.branchy: a four-way data-dependent branch ladder driven by LCG
# bits — stresses the branch predictor and misprediction recovery.
		.text
main:	li   $t0, 13579
		li   $t8, 1103515245
		li   $s0, 30000
		li   $s1, 0            # a
		li   $s2, 0            # b
		li   $s3, 0            # c
loop:	mul  $t0, $t0, $t8
		addi $t0, $t0, 12345
		srl  $t1, $t0, 16
		andi $t1, $t1, 3
		beq  $t1, $zero, c0
		li   $t2, 1
		beq  $t1, $t2, c1
		li   $t2, 2
		beq  $t1, $t2, c2
		addi $s1, $s1, -1
		j    next
c0:		addi $s1, $s1, 1
		j    next
c1:		add  $s2, $s2, $s1
		j    next
c2:		xor  $s3, $s3, $s2
next:	addi $s0, $s0, -1
		bgtz $s0, loop
		out  $s1
		out  $s2
		out  $s3
		halt
`

func microStreamRef() []int32 {
	arr := make([]int32, microStreamWords)
	s := int32(24680)
	for i := range arr {
		s = lcg(s)
		arr[i] = s >> 16
	}
	var csum int32
	for p := 0; p < microStreamPasses; p++ {
		for i := 0; i < microStreamWords; i++ {
			csum += arr[i]
			arr[i] = csum
		}
	}
	return []int32{csum}
}

const microStreamSrc = `
# micro.stream: sequential read-modify-write sweeps over a 64 KB array —
# twice the D-cache, so every pass streams through memory.
		.data
arr:	.space 65536
		.text
main:	la   $s0, arr
		li   $t0, 24680
		li   $t8, 1103515245
		li   $t1, 0
fill:	mul  $t0, $t0, $t8
		addi $t0, $t0, 12345
		sra  $t2, $t0, 16
		sll  $t3, $t1, 2
		add  $t3, $s0, $t3
		sw   $t2, 0($t3)
		addi $t1, $t1, 1
		li   $t3, 16384
		blt  $t1, $t3, fill

		li   $s1, 0            # csum
		li   $s2, 0            # pass
pass:	li   $t1, 0
sweep:	sll  $t3, $t1, 2
		add  $t3, $s0, $t3
		lw   $t4, 0($t3)
		add  $s1, $s1, $t4
		sw   $s1, 0($t3)
		addi $t1, $t1, 1
		li   $t4, 16384
		blt  $t1, $t4, sweep
		addi $s2, $s2, 1
		li   $t4, 3
		blt  $s2, $t4, pass
		out  $s1
		halt
`

func init() {
	register(&Workload{
		Name:        "micro.chain",
		Description: "microbenchmark: one serial multiply-add dependence chain (IPC ≈ 2/3 per link pair)",
		Source:      microChainSrc,
		Reference:   microChainRef,
		Extension:   true,
	})
	register(&Workload{
		Name:        "micro.parallel",
		Description: "microbenchmark: eight independent dependence chains (saturates an 8-wide machine)",
		Source:      microParallelSrc,
		Reference:   microParallelRef,
		Extension:   true,
	})
	register(&Workload{
		Name:        "micro.chase",
		Description: "microbenchmark: pointer chasing through a 4096-node permutation ring (load-to-load chain)",
		Source:      microChaseSrc,
		Reference:   microChaseRef,
		Extension:   true,
	})
	register(&Workload{
		Name:        "micro.branchy",
		Description: "microbenchmark: LCG-driven four-way branch ladder (predictor stress)",
		Source:      microBranchSrc,
		Reference:   microBranchRef,
		Extension:   true,
	})
	register(&Workload{
		Name:        "micro.stream",
		Description: "microbenchmark: streaming read-modify-write over 64KB (cache-miss bound)",
		Source:      microStreamSrc,
		Reference:   microStreamRef,
		Extension:   true,
	})
}
