// Package celint is the driver for the simulator's custom static
// analyzers (detlint, keylint, hotlint). It runs in two modes:
//
//   - standalone: `celint ./...` loads packages through `go list -export`
//     and analyzes each module package, test files included;
//   - vet tool: `go vet -vettool=$(which celint) ./...` speaks the cmd/go
//     unitchecker protocol (-V=full, -flags, and per-package .cfg files),
//     so findings integrate with the build cache and go test's vet phase.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package celint

import (
	"fmt"
	"go/token"
	"io"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/detlint"
	"repro/internal/lint/hotlint"
	"repro/internal/lint/keylint"
)

// Analyzers returns the celint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{detlint.Analyzer, keylint.Analyzer, hotlint.Analyzer}
}

// Main implements the celint command. args excludes the program name.
func Main(args []string, stdout, stderr io.Writer) int {
	if err := analysis.Validate(Analyzers()); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// cmd/go protocol probes.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			return printVersion(stdout, stderr)
		case "-flags", "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if len(args) == 1 && len(args[0]) > 4 && args[0][len(args[0])-4:] == ".cfg" {
		return vetMode(args[0], stderr)
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return standalone(patterns, stdout, stderr)
}

// diagText formats one diagnostic the way go vet does.
func diagText(fset *token.FileSet, a *analysis.Analyzer, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), a.Name, d.Message)
}

// runAnalyzers applies the suite to one loaded package and returns the
// formatted findings, sorted by position.
func runAnalyzers(pkg *loadedPackage) ([]string, error) {
	var out []string
	for _, a := range Analyzers() {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.fset,
			Files:     pkg.files,
			Pkg:       pkg.types,
			TypesInfo: pkg.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.importPath, a.Name, err)
		}
		for _, d := range diags {
			out = append(out, diagText(pkg.fset, a, d))
		}
	}
	sort.Strings(out)
	return out, nil
}

func standalone(patterns []string, stdout, stderr io.Writer) int {
	pkgs, err := loadPackages(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		findings, err := runAnalyzers(pkg)
		if err != nil {
			fmt.Fprintln(stderr, "celint:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
			exit = 1
		}
	}
	return exit
}
