package prog

// m88ksim mirrors SPEC95 124.m88ksim: an instruction-set simulator. The
// kernel interprets a 64-word guest program on a toy 8-register machine —
// a fetch/decode/dispatch loop through a jump table with indirect jumps
// and serialized loads, the classic interpreter profile.

const (
	m88kSteps    = 15000
	m88kProgSize = 64
)

func m88kRef() []int32 {
	// Guest program: 64 random words.
	prog := make([]int32, m88kProgSize)
	s := int32(2718)
	for i := range prog {
		s = lcg(s)
		prog[i] = s
	}
	var regs [8]int32
	for i := range regs {
		regs[i] = int32(i)*3 + 1
	}
	pc := int32(0)
	for step := 0; step < m88kSteps; step++ {
		w := prog[pc]
		op := w & 15
		rd := (w >> 4) & 7
		rs := (w >> 7) & 7
		rt := (w >> 10) & 7
		imm := (w >> 13) & 0xFF
		next := (pc + 1) & (m88kProgSize - 1)
		switch op {
		case 0:
			regs[rd] = regs[rs] + regs[rt]
		case 1:
			regs[rd] = regs[rs] - regs[rt]
		case 2:
			regs[rd] = regs[rs] & regs[rt]
		case 3:
			regs[rd] = regs[rs] | regs[rt]
		case 4:
			regs[rd] = regs[rs] ^ regs[rt]
		case 5:
			regs[rd] = regs[rs] + imm
		case 6:
			regs[rd] = regs[rs] << 1
		case 7:
			regs[rd] = int32(uint32(regs[rs]) >> 1)
		case 8:
			if regs[rd] == regs[rs] {
				next = imm & (m88kProgSize - 1)
			}
		case 9:
			if regs[rd] != regs[rs] {
				next = imm & (m88kProgSize - 1)
			}
		case 10:
			next = imm & (m88kProgSize - 1)
		case 11:
			regs[rd] = regs[rs] * regs[rt]
		case 12:
			if regs[rs] < regs[rt] {
				regs[rd] = 1
			} else {
				regs[rd] = 0
			}
		case 13:
			regs[rd] = -regs[rs]
		case 14:
			// nop
		case 15:
			regs[rd] = regs[rs] + 1
		}
		pc = next
	}
	var csum int32
	for i := range regs {
		csum = csum*31 + regs[i]
	}
	return []int32{pc, csum}
}

const m88kSrc = `
# m88ksim: interpreter for a toy 8-register guest machine
# (mirrors SPEC95 124.m88ksim's fetch/decode/dispatch loop).
		.text
main:
		# Generate the 64-word guest program.
		la   $s0, gprog
		li   $t0, 2718         # seed
		li   $t8, 1103515245
		li   $t1, 0
ggen:	mul  $t0, $t0, $t8
		addi $t0, $t0, 12345
		sll  $t2, $t1, 2
		add  $t2, $s0, $t2
		sw   $t0, 0($t2)
		addi $t1, $t1, 1
		li   $t2, 64
		blt  $t1, $t2, ggen

		# Guest registers: regs[i] = i*3 + 1.
		la   $s1, gregs
		li   $t1, 0
rinit:	li   $t2, 3
		mul  $t2, $t1, $t2
		addi $t2, $t2, 1
		sll  $t3, $t1, 2
		add  $t3, $s1, $t3
		sw   $t2, 0($t3)
		addi $t1, $t1, 1
		li   $t3, 8
		blt  $t1, $t3, rinit

		la   $s4, jtab
		li   $s2, 0            # guest pc
		li   $s3, 15000        # steps remaining
step:	sll  $t0, $s2, 2
		add  $t0, $s0, $t0
		lw   $t0, 0($t0)       # w = gprog[pc]
		addi $s2, $s2, 1       # default next pc
		andi $s2, $s2, 63
		andi $t1, $t0, 15      # op
		srl  $t2, $t0, 4
		andi $t2, $t2, 7
		sll  $t2, $t2, 2
		add  $t2, $s1, $t2     # &regs[rd]
		srl  $t3, $t0, 7
		andi $t3, $t3, 7
		sll  $t3, $t3, 2
		add  $t3, $s1, $t3     # &regs[rs]
		srl  $t4, $t0, 10
		andi $t4, $t4, 7
		sll  $t4, $t4, 2
		add  $t4, $s1, $t4     # &regs[rt]
		srl  $t5, $t0, 13
		andi $t5, $t5, 0xFF    # imm
		sll  $t6, $t1, 2
		add  $t6, $s4, $t6
		lw   $t6, 0($t6)
		jr   $t6               # dispatch

hadd:	lw   $t7, 0($t3)
		lw   $t9, 0($t4)
		add  $t7, $t7, $t9
		sw   $t7, 0($t2)
		j    stepend
hsub:	lw   $t7, 0($t3)
		lw   $t9, 0($t4)
		sub  $t7, $t7, $t9
		sw   $t7, 0($t2)
		j    stepend
hand:	lw   $t7, 0($t3)
		lw   $t9, 0($t4)
		and  $t7, $t7, $t9
		sw   $t7, 0($t2)
		j    stepend
hor:	lw   $t7, 0($t3)
		lw   $t9, 0($t4)
		or   $t7, $t7, $t9
		sw   $t7, 0($t2)
		j    stepend
hxor:	lw   $t7, 0($t3)
		lw   $t9, 0($t4)
		xor  $t7, $t7, $t9
		sw   $t7, 0($t2)
		j    stepend
haddi:	lw   $t7, 0($t3)
		add  $t7, $t7, $t5
		sw   $t7, 0($t2)
		j    stepend
hsll:	lw   $t7, 0($t3)
		sll  $t7, $t7, 1
		sw   $t7, 0($t2)
		j    stepend
hsrl:	lw   $t7, 0($t3)
		srl  $t7, $t7, 1
		sw   $t7, 0($t2)
		j    stepend
hbeq:	lw   $t7, 0($t2)
		lw   $t9, 0($t3)
		bne  $t7, $t9, stepend
		andi $s2, $t5, 63
		j    stepend
hbne:	lw   $t7, 0($t2)
		lw   $t9, 0($t3)
		beq  $t7, $t9, stepend
		andi $s2, $t5, 63
		j    stepend
hjmp:	andi $s2, $t5, 63
		j    stepend
hmul:	lw   $t7, 0($t3)
		lw   $t9, 0($t4)
		mul  $t7, $t7, $t9
		sw   $t7, 0($t2)
		j    stepend
hslt:	lw   $t7, 0($t3)
		lw   $t9, 0($t4)
		slt  $t7, $t7, $t9
		sw   $t7, 0($t2)
		j    stepend
hneg:	lw   $t7, 0($t3)
		neg  $t7, $t7
		sw   $t7, 0($t2)
		j    stepend
hnop:	j    stepend
hinc:	lw   $t7, 0($t3)
		addi $t7, $t7, 1
		sw   $t7, 0($t2)
stepend:
		addi $s3, $s3, -1
		bgtz $s3, step

		# Checksum the guest registers.
		li   $s5, 0
		li   $t9, 31
		li   $t1, 0
csum:	sll  $t2, $t1, 2
		add  $t2, $s1, $t2
		lw   $t3, 0($t2)
		mul  $s5, $s5, $t9
		add  $s5, $s5, $t3
		addi $t1, $t1, 1
		li   $t2, 8
		blt  $t1, $t2, csum
		out  $s2
		out  $s5
		halt

		# Data last: jtab refers to handler labels defined above.
		.data
gprog:	.space 256             # 64 guest instructions
gregs:	.space 32              # 8 guest registers
jtab:	.word hadd, hsub, hand, hor, hxor, haddi, hsll, hsrl
		.word hbeq, hbne, hjmp, hmul, hslt, hneg, hnop, hinc
`

func init() {
	register(&Workload{
		Name:        "m88ksim",
		Description: "jump-table interpreter executing 15000 steps of a toy 8-register guest machine (mirrors SPEC95 124.m88ksim)",
		Source:      m88kSrc,
		Reference:   m88kRef,
	})
}
