// Cesweep regenerates the paper's simulation results: Figure 13 (IPC of
// the dependence-based machine versus the baseline window machine),
// Figure 15 (the clustered 2×4-way machine), Figure 17 (the clustered
// design space, IPC and inter-cluster bypass frequency), the Section 5.5
// speedup estimate, and the window-size trade-off extension.
//
// Usage:
//
//	cesweep -fig 13        # one figure
//	cesweep -speedup       # Section 5.5 estimate
//	cesweep -tradeoff      # window-size trade-off (extension)
//	cesweep -all           # everything
//	cesweep -all -csv      # CSV output
//	cesweep -fig 13 -json  # canonical JSON (byte-identical to cesweepd)
//
// Sweeps share one content-addressed run cache, so a (config, workload)
// pair revisited by several figures is simulated once per process.
// Observability flags:
//
//	-v                  per-run progress, cache and trace-pool statistics
//	                    on stderr
//	-metrics-json FILE  dump per-run metrics and cache counters as JSON
//	-metrics-det FILE   dump only the deterministic metrics (stable order,
//	                    host timings scrubbed) — byte-identical across
//	                    runs, machines and drive modes
//	-cache-dir DIR      persist run results on disk across invocations
//
// Each workload is executed once per process and every simulation is
// driven from the shared captured trace (replay); results are identical
// to lockstep execution, which remains available:
//
//	-trace-dir DIR      persist captured traces on disk across invocations
//	-no-trace-replay    drive every simulation by lockstep execution
//
// Concurrent replay runs of one workload gang together, sharing each
// trace chunk decoded once into an immutable slab (byte-identical
// results, less decode work):
//
//	-no-gang            give every replay run a private streaming reader
//	-slab-budget-mb N   bound the decoded-slab cache (default 256 MiB);
//	                    traces too big to fit stream instead
//
// Segment-parallel simulation shards each trace into K segments timed
// independently across CPUs and stitches the results:
//
//	-segments K         cut each trace into K segments (0 = monolithic)
//	-warmup N           per-segment warmup prefix in instructions;
//	                    -1 (default) replays the full prefix, making the
//	                    stitched result bit-identical to the monolithic
//	                    run; 'adaptive' starts each segment cold and
//	                    discards its leading windows until IPC converges
//	-sample N           simulate every Nth segment and extrapolate the
//	                    rest (approximate, reported with error bars);
//	                    'phase' clusters segments by their basic-block
//	                    vectors and times one representative per cluster
//	-phases K           maximum behavior clusters for -sample=phase
//
// Host-performance flags for working on the simulator itself:
//
//	-bench-json FILE    benchmark the simulator on every verification-panel
//	                    configuration and write BENCH_pipeline.json; if a
//	                    sweep ran too, write its wall time, sims/sec and
//	                    executed-versus-replayed balance to BENCH_sweep.json
//	-stream-bench W     benchmark streamed capture + sampled simulation on
//	                    huge workload W (e.g. compress.huge): capture the
//	                    trace straight to -trace-dir, time it exactly once
//	                    monolithically, then estimate with fixed, adaptive
//	                    and phase sampling at an equal segment budget;
//	                    wall time, peak RSS and IPC error per mode go to
//	                    BENCH_sweep.json
//	-stream-segments K  segment count for -stream-bench (default 64)
//	-bench-compare F    compare this run's BENCH_sweep.json entries against
//	                    the baseline at F and print per-entry deltas
//	-bench-tolerance P  percent a gated ratio (segment/gang speedup, decode
//	                    reduction) may fall below the baseline before the
//	                    comparison exits nonzero; negative = warn only
//	-cpuprofile FILE    write a CPU profile of the sweep
//	-memprofile FILE    write a heap profile taken after the sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"time"

	"repro"
	"repro/internal/canonjson"
	"repro/internal/report"
)

var (
	figure     = flag.Int("fig", 0, "figure to regenerate: 13, 15 or 17")
	speedup    = flag.Bool("speedup", false, "print the Section 5.5 speedup estimate")
	tradeoff   = flag.Bool("tradeoff", false, "print the window-size trade-off (extension)")
	ablations  = flag.Bool("ablations", false, "run the steering/geometry/latency/predictor/atomicity ablations (extensions)")
	micro      = flag.Bool("micro", false, "run the microbenchmark characterization (extension)")
	frontier   = flag.Bool("frontier", false, "rank design points by IPC x estimated clock (extension)")
	profiles   = flag.Bool("profiles", false, "print dynamic workload profiles (extension)")
	all        = flag.Bool("all", false, "regenerate every simulation result")
	csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut    = flag.Bool("json", false, "emit figures and the frontier as canonical JSON (the cesweepd wire format)")
	verbose    = flag.Bool("v", false, "print per-run progress and cache statistics to stderr")
	metrics    = flag.String("metrics-json", "", "write per-run metrics and cache statistics to this file as JSON")
	metricsDet = flag.String("metrics-det", "", "write deterministic per-run metrics (stable order, host timings scrubbed) to this file as JSON")
	cacheDir   = flag.String("cache-dir", "", "persist simulation results as JSON under this directory")
	traceDir   = flag.String("trace-dir", "", "persist captured execution traces under this directory")
	noReplay   = flag.Bool("no-trace-replay", false, "drive every simulation by lockstep execution instead of shared trace replay")
	segments   = flag.Int("segments", 0, "cut each trace into this many segments timed in parallel (0 = monolithic)")
	segWarmup  = flag.String("warmup", "-1", "per-segment warmup: instruction count (-1 = full prefix, exact stitching) or 'adaptive' (per-segment IPC-convergence detection)")
	segSample  = flag.String("sample", "1", "segment sampling: simulate every Nth segment and extrapolate (N), or 'phase' (time one representative per behavior cluster, weighted by cluster mass)")
	segPhases  = flag.Int("phases", 8, "maximum behavior clusters for -sample=phase")
	noGang     = flag.Bool("no-gang", false, "disable gang replay: give every replay run a private streaming reader instead of shared decoded slabs")
	slabMB     = flag.Int64("slab-budget-mb", 0, "bound the decoded-slab cache to this many MiB (0 = default 256); traces too big to fit stream instead")
	benchJSON  = flag.String("bench-json", "", "benchmark the simulator per panel config and write results to this file")
	benchWork  = flag.String("bench-workload", "compress", "workload for -bench-json")
	benchCmp   = flag.String("bench-compare", "", "compare this invocation's BENCH_sweep.json against the baseline at this path and print per-entry deltas")
	benchTol   = flag.Float64("bench-tolerance", 25, "percent a gated benchmark ratio may fall below the -bench-compare baseline before exiting nonzero; negative = warn only")
	streamWork = flag.String("stream-bench", "", "benchmark streamed capture + sampled simulation on this (huge) workload and record it in BENCH_sweep.json")
	streamSegs = flag.Int("stream-segments", 64, "segment count for -stream-bench (sampled modes simulate at most -phases of them)")
	cpuprof    = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprof    = flag.String("memprofile", "", "write a heap profile taken after the sweep to this file")
)

func main() {
	flag.Parse()
	stop, err := startProfiling(*cpuprof, *memprof)
	if err == nil {
		err = run()
		if perr := stop(); err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cesweep:", err)
		os.Exit(1)
	}
}

// startProfiling arms the -cpuprofile/-memprofile flags; the returned
// function flushes the profiles after the sweep (heap profile after a
// final GC, so it shows live retention rather than garbage).
func startProfiling(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// setupObservability wires the -v, -cache-dir and -metrics-json flags to
// the default sweep engine; the returned function finishes the report
// after the sweep.
func setupObservability() (func() error, error) {
	eng := ce.DefaultEngine
	if *cacheDir != "" {
		if err := eng.SetCacheDir(*cacheDir); err != nil {
			return nil, err
		}
	}
	if *traceDir != "" {
		if err := eng.SetTraceDir(*traceDir); err != nil {
			return nil, err
		}
	}
	eng.SetTraceReplay(!*noReplay)
	eng.SetGangReplay(!*noGang)
	if *slabMB > 0 {
		eng.SetSlabBudget(*slabMB << 20)
	}
	eng.SetSegments(*segments)
	if *segWarmup == "adaptive" {
		eng.SetSegmentAdaptive(true)
	} else {
		w, err := strconv.ParseInt(*segWarmup, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-warmup: %q is neither an instruction count nor 'adaptive'", *segWarmup)
		}
		eng.SetSegmentWarmup(w)
	}
	if *segSample == "phase" {
		eng.SetSegmentPhases(*segPhases)
	} else {
		n, err := strconv.Atoi(*segSample)
		if err != nil {
			return nil, fmt.Errorf("-sample: %q is neither a stride nor 'phase'", *segSample)
		}
		eng.SetSegmentSample(n)
	}
	for _, path := range []string{*metrics, *metricsDet} {
		if path == "" {
			continue
		}
		// Fail on an unwritable path now, not after minutes of simulation.
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		f.Close()
	}
	if *verbose {
		eng.SetObserver(func(m ce.RunMetrics) {
			if m.Cached {
				fmt.Fprintf(os.Stderr, "cesweep: %-28s %-12s cached (ipc %.2f)\n",
					m.Config, m.Workload, m.IPC)
				return
			}
			fmt.Fprintf(os.Stderr, "cesweep: %-28s %-12s %9d cycles  ipc %.2f  %6.0f ms  %5.1f Mcyc/s\n",
				m.Config, m.Workload, m.Cycles, m.IPC, m.WallSeconds*1000, m.MCyclesPerSec)
		})
	}
	finish := func() error {
		cs := eng.CacheStats()
		if *verbose {
			fmt.Fprintf(os.Stderr,
				"cesweep: cache: %d lookups — %d hits, %d coalesced, %d disk hits, %d misses (%d uncacheable); %d simulator runs saved\n",
				cs.Lookups(), cs.Hits, cs.Coalesced, cs.DiskHits, cs.Misses, cs.Uncacheable, cs.Saved())
			ts := eng.TraceStats()
			fmt.Fprintf(os.Stderr,
				"cesweep: traces: %d captured, %d loaded from disk; %d replay runs, %d lockstep runs; %d steps executed, %d replayed\n",
				ts.Captures, ts.DiskHits, ts.ReplayRuns, ts.LockstepRuns, ts.StepsExecuted, ts.StepsReplayed)
			fmt.Fprintf(os.Stderr,
				"cesweep: trace bytes: %d on disk, %d resident; %d capture failures, %d corrupt traces dropped\n",
				ts.TraceDiskBytes, ts.TraceResidentBytes, ts.CaptureFailures, ts.CorruptDropped)
			if ts.GangRuns > 0 || ts.SlabDecodes > 0 {
				fmt.Fprintf(os.Stderr,
					"cesweep: gang: %d ganged runs; %d slab decodes, %d hits, %d evictions, peak %d bytes; %d records decoded\n",
					ts.GangRuns, ts.SlabDecodes, ts.SlabHits, ts.SlabEvictions, ts.SlabPeakBytes, ts.RecordsDecoded)
			}
		}
		if *metrics != "" {
			dump := struct {
				Runs  []ce.RunMetrics `json:"runs"`
				Cache ce.CacheStats   `json:"cache"`
				Trace ce.TraceStats   `json:"trace"`
			}{Runs: eng.Metrics(), Cache: cs, Trace: eng.TraceStats()}
			data, err := canonjson.Marshal(dump)
			if err != nil {
				return err
			}
			if err := os.WriteFile(*metrics, data, 0o644); err != nil {
				return err
			}
		}
		if *metricsDet != "" {
			if err := writeDetMetrics(*metricsDet, eng); err != nil {
				return err
			}
		}
		return nil
	}
	return finish, nil
}

// writeDetMetrics dumps only the deterministic slice of the run metrics:
// simulated results in a stable order, with host timings, allocation
// counts and drive-mode fields scrubbed, and the racy memory-hit versus
// coalesced split merged. Two invocations over the same selections —
// different machines, different parallelism, lockstep or replay drive —
// produce byte-identical files, which is what CI diffs to pin that
// replay changes how fast results are computed, never the results.
func writeDetMetrics(path string, eng *ce.Engine) error {
	type detRun struct {
		Config    string  `json:"config"`
		Workload  string  `json:"workload"`
		Cycles    int64   `json:"cycles"`
		Committed uint64  `json:"committed"`
		EmuSteps  uint64  `json:"emu_steps"`
		IPC       float64 `json:"ipc"`
	}
	runs := eng.Metrics()
	det := make([]detRun, len(runs))
	for i, m := range runs {
		det[i] = detRun{
			Config:    m.Config,
			Workload:  m.Workload,
			Cycles:    m.Cycles,
			Committed: m.Committed,
			EmuSteps:  m.EmuSteps,
			IPC:       m.IPC,
		}
	}
	sort.Slice(det, func(i, j int) bool {
		if det[i].Config != det[j].Config {
			return det[i].Config < det[j].Config
		}
		return det[i].Workload < det[j].Workload
	})
	cs := eng.CacheStats()
	dump := struct {
		Runs  []detRun `json:"runs"`
		Cache struct {
			Lookups     uint64 `json:"lookups"`
			Hits        uint64 `json:"hits"`
			DiskHits    uint64 `json:"disk_hits"`
			Misses      uint64 `json:"misses"`
			Uncacheable uint64 `json:"uncacheable"`
		} `json:"cache"`
	}{Runs: det}
	dump.Cache.Lookups = cs.Lookups()
	// Whether a duplicate pair found its twin finished (hit) or still in
	// flight (coalesced) depends on goroutine scheduling; the sum does not.
	dump.Cache.Hits = cs.Hits + cs.Coalesced
	dump.Cache.DiskHits = cs.DiskHits
	dump.Cache.Misses = cs.Misses
	dump.Cache.Uncacheable = cs.Uncacheable
	data, err := canonjson.Marshal(dump)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func emit(t *report.Table) {
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}

func run() (err error) {
	finish, err := setupObservability()
	if err != nil {
		return err
	}
	// Flush observability output even when a sweep fails partway: the
	// metrics file and -v cache statistics then cover every run that did
	// complete, which is exactly what a failure post-mortem needs.
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	ran := false
	sweepStart := time.Now()
	// -json emits the canonical wire dump cesweepd serves for the same
	// selection, sharing ce.FigureJSON/ce.FrontierJSON with the daemon so
	// the two outputs are byte-identical (CI compares them).
	emitFigureJSON := func(n int) error {
		data, err := ce.FigureJSON(n)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}
	if *figure == 13 || *all {
		ran = true
		if *jsonOut {
			if err := emitFigureJSON(13); err != nil {
				return err
			}
		} else {
			cmp, err := ce.Figure13()
			if err != nil {
				return err
			}
			emit(cmp.IPCTable("Figure 13: IPC of the dependence-based microarchitecture"))
		}
	}
	if *figure == 15 || *all {
		ran = true
		if *jsonOut {
			if err := emitFigureJSON(15); err != nil {
				return err
			}
		} else {
			cmp, err := ce.Figure15()
			if err != nil {
				return err
			}
			emit(cmp.IPCTable("Figure 15: IPC of the clustered dependence-based microarchitecture"))
		}
	}
	if *figure == 17 || *all {
		ran = true
		if *jsonOut {
			if err := emitFigureJSON(17); err != nil {
				return err
			}
		} else {
			cmp, err := ce.Figure17()
			if err != nil {
				return err
			}
			emit(cmp.IPCTable("Figure 17 (top): IPC of clustered microarchitectures"))
			emit(cmp.BypassTable("Figure 17 (bottom): inter-cluster bypass frequency"))
		}
	}
	if *speedup || *all {
		ran = true
		sws, sum, err := ce.SpeedupEstimate()
		if err != nil {
			return err
		}
		emit(ce.SpeedupTable(sws, sum))
	}
	if *tradeoff || *all {
		ran = true
		tbl, err := ce.WindowTradeoff([]int{16, 32, 64, 128})
		if err != nil {
			return err
		}
		emit(tbl)
	}
	if *ablations || *all {
		ran = true
		for _, fn := range []func() (*report.Table, error){
			ce.SteeringAblation, ce.FIFOGeometry, ce.LatencySweep, ce.PredictorAblation,
			ce.AtomicityAblation, ce.FetchRealismAblation, ce.SelectionPolicyAblation,
			ce.StoreForwardingAblation, ce.SteeringDepthAblation, ce.WrongPathAblation,
		} {
			tbl, err := fn()
			if err != nil {
				return err
			}
			emit(tbl)
		}
	}
	if *frontier || *all {
		ran = true
		if *jsonOut {
			data, err := ce.FrontierJSON()
			if err != nil {
				return err
			}
			if _, err := os.Stdout.Write(data); err != nil {
				return err
			}
		} else {
			pts, err := ce.Frontier()
			if err != nil {
				return err
			}
			emit(ce.FrontierTable(pts))
		}
	}
	if *profiles || *all {
		ran = true
		tbl, err := ce.WorkloadProfiles()
		if err != nil {
			return err
		}
		emit(tbl)
	}
	if *micro || *all {
		ran = true
		tbl, err := ce.MicrobenchCharacterization()
		if err != nil {
			return err
		}
		emit(tbl)
	}
	sweepRan, sweepWall := ran, time.Since(sweepStart).Seconds()
	if *benchJSON != "" {
		ran = true
		res, err := ce.WriteBenchJSON(*benchJSON, *benchWork)
		if err != nil {
			return err
		}
		fmt.Printf("Simulator performance on %s (written to %s):\n", *benchWork, *benchJSON)
		for _, r := range res {
			fmt.Printf("  %-28s %9d cycles  %6.0f ms  %6.2f Mcycles/s  %.3f allocs/cycle\n",
				r.Config, r.Cycles, r.WallSeconds*1000, r.MCyclesPerSec, r.AllocsPerCycle)
		}
	}
	if (sweepRan && (*benchJSON != "" || *benchCmp != "")) || *streamWork != "" {
		// Record whole-sweep performance next to the per-configuration
		// benchmark: the sweep's own throughput (when one ran), the
		// segment-parallel sampled benchmark on a workload long enough
		// (millions of instructions) for segmentation to pay, the gang
		// replay benchmark (shared slabs versus private readers), and the
		// streaming benchmark on a huge workload when requested.
		ran = true
		sb := ce.SweepBench(ce.DefaultEngine, sweepWall)
		if sweepRan {
			seg, err := ce.SegmentBench("compress.big", 16, 4, 1<<15)
			if err != nil {
				return err
			}
			sb.Segment = seg
			gang, err := ce.GangBench("compress.big")
			if err != nil {
				return err
			}
			sb.Gang = gang
		}
		if *streamWork != "" {
			st, err := ce.StreamBench(*streamWork, *traceDir, *streamSegs, *segPhases)
			if err != nil {
				return err
			}
			sb.Stream = st
		}
		dir := "."
		if *benchJSON != "" {
			dir = filepath.Dir(*benchJSON)
		}
		path := filepath.Join(dir, "BENCH_sweep.json")
		// Load the comparison baseline before writing: the baseline and the
		// output are commonly the same committed file.
		var baseline ce.SweepBenchResult
		if *benchCmp != "" {
			baseline, err = ce.ReadSweepBenchJSON(*benchCmp)
			if err != nil {
				return err
			}
		}
		if err := ce.WriteSweepBenchJSON(path, sb); err != nil {
			return err
		}
		if sweepRan {
			fmt.Printf("Sweep performance (written to %s): %d sims in %.1f s (%.1f sims/s); %d steps executed, %d replayed\n",
				path, sb.Sims, sb.WallSeconds, sb.SimsPerSec,
				sb.Trace.StepsExecuted, sb.Trace.StepsReplayed)
		}
		if seg := sb.Segment; seg != nil {
			simulated := (seg.Segments + seg.Sample - 1) / seg.Sample
			fmt.Printf("Segment benchmark on %s (%d steps): monolithic %.2f s, sampled %d/%d segments %.2f s — %.1fx; IPC %.3f vs %.3f (%+.1f%%)\n",
				seg.Workload, seg.Steps, seg.MonoWallSeconds, simulated, seg.Segments,
				seg.SampledWallSeconds, seg.Speedup, seg.SampledIPC, seg.MonoIPC, seg.IPCErrorPct)
		}
		if g := sb.Gang; g != nil {
			fmt.Printf("Gang benchmark on %s (%d configs, %d steps): per-config %.2f s, ganged %.2f s — %.2fx; records decoded %d → %d (%.1fx fewer, peak %.1f MB of slabs)\n",
				g.Workload, g.Configs, g.Steps, g.PerConfigWallSeconds, g.GangWallSeconds, g.Speedup,
				g.PerConfigRecordsDecoded, g.GangRecordsDecoded, g.DecodeReduction, float64(g.SlabPeakBytes)/1e6)
		}
		if st := sb.Stream; st != nil {
			fmt.Printf("Stream benchmark on %s (written to %s): %d steps, %.1f MB trace on disk (%.1f MB resident), capture %.1f s (peak RSS %.0f MB)\n",
				st.Workload, path, st.Steps, float64(st.TraceDiskBytes)/1e6, float64(st.TraceResidentBytes)/1e6,
				st.CaptureSeconds, float64(st.CapturePeakRSS)/1e6)
			fmt.Printf("  %-9s %10s %9s %9s %9s %9s\n", "mode", "insts", "wall s", "rss MB", "ipc", "err %")
			fmt.Printf("  %-9s %10d %9.1f %9.0f %9.3f %9s\n",
				"exact", st.Steps, st.ExactWallSeconds, float64(st.ExactPeakRSS)/1e6, st.ExactIPC, "—")
			for _, m := range st.Modes {
				fmt.Printf("  %-9s %10d %9.1f %9.0f %9.3f %+8.2f%%\n",
					m.Mode, m.SimulatedSteps, m.WallSeconds, float64(m.PeakRSSBytes)/1e6, m.IPC, m.IPCErrorPct)
			}
		}
		if *benchCmp != "" {
			tol, gate := *benchTol, *benchTol >= 0
			if !gate {
				tol = -tol
			}
			deltas := ce.CompareSweepBench(baseline, sb, tol)
			fmt.Printf("Benchmark comparison against %s (gated * entries may fall up to %.0f%%):\n", *benchCmp, tol)
			regressed := false
			for _, d := range deltas {
				mark, status := " ", ""
				if d.Gated {
					mark = "*"
				}
				if d.Regressed {
					status, regressed = "  REGRESSED", true
				}
				fmt.Printf("  %s %-28s %10.3f -> %10.3f  (%+.1f%%)%s\n",
					mark, d.Name, d.Old, d.New, d.Pct(), status)
			}
			if regressed {
				if gate {
					return fmt.Errorf("benchmark regression: a gated ratio fell more than %.0f%% below %s", tol, *benchCmp)
				}
				fmt.Println("  (warn only: -bench-tolerance is negative)")
			}
		}
	}
	// An unrecognized figure number used to fall through to the
	// misleading "nothing selected" error below; reject it by name. The
	// check sits after the sweeps so that other selections on the same
	// command line still run (and their metrics still flush).
	switch *figure {
	case 0, 13, 15, 17:
	default:
		return fmt.Errorf("unknown figure %d (want 13, 15 or 17)", *figure)
	}
	if !ran {
		flag.Usage()
		return fmt.Errorf("nothing selected: pass -fig N, -speedup, -tradeoff, -ablations, -micro, -bench-json, -stream-bench or -all")
	}
	return nil
}
