package bpred

import (
	"testing"
	"testing/quick"
)

func train(p Predictor, pc uint32, pattern []bool, reps int) {
	for r := 0; r < reps; r++ {
		for _, taken := range pattern {
			p.Update(pc, taken)
		}
	}
}

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(12, 12)
	train(g, 100, []bool{true}, 50)
	if !g.Predict(100) {
		t.Error("gshare did not learn an always-taken branch")
	}
	train(g, 100, []bool{false}, 100)
	if g.Predict(100) {
		t.Error("gshare did not unlearn after sustained not-taken")
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	// With global history, a strict alternation becomes fully predictable.
	g := NewGshare(12, 12)
	taken := true
	for i := 0; i < 2000; i++ {
		g.Update(7, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if g.Predict(7) == taken {
			correct++
		}
		g.Update(7, taken)
		taken = !taken
	}
	if correct < 95 {
		t.Errorf("gshare predicted %d/100 of an alternating pattern, want ≥95", correct)
	}
}

func TestBimodalCannotLearnAlternation(t *testing.T) {
	// Bimodal has no history: an alternating branch hovers around the
	// counter threshold and mispredicts roughly half the time.
	b := NewBimodal(12)
	taken := true
	correct := 0
	for i := 0; i < 1000; i++ {
		if b.Predict(7) == taken {
			correct++
		}
		b.Update(7, taken)
		taken = !taken
	}
	if correct > 700 {
		t.Errorf("bimodal predicted %d/1000 of an alternating pattern; it should not learn it", correct)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	train(b, 42, []bool{false}, 10)
	if b.Predict(42) {
		t.Error("bimodal did not learn a never-taken branch")
	}
}

func TestStatic(t *testing.T) {
	if !(Static{Taken: true}).Predict(1) {
		t.Error("always-taken predicted not-taken")
	}
	if (Static{}).Predict(1) {
		t.Error("always-not-taken predicted taken")
	}
	if (Static{Taken: true}).Name() != "always-taken" || (Static{}).Name() != "always-not-taken" {
		t.Error("static predictor names wrong")
	}
}

func TestNames(t *testing.T) {
	if got := NewGshare(12, 12).Name(); got != "gshare-4096x2bit-h12" {
		t.Errorf("gshare name = %q", got)
	}
	if got := NewBimodal(10).Name(); got != "bimodal-1024x2bit" {
		t.Errorf("bimodal name = %q", got)
	}
}

func TestCountersSaturate(t *testing.T) {
	// Sustained training must not wrap the 2-bit counters.
	g := NewGshare(4, 4)
	for i := 0; i < 1000; i++ {
		g.Update(0, true)
	}
	for _, c := range g.counters {
		if c > 3 {
			t.Fatalf("counter exceeded 3: %d", c)
		}
	}
	b := NewBimodal(4)
	for i := 0; i < 1000; i++ {
		b.Update(0, false)
	}
	for _, c := range b.counters {
		if c > 3 {
			t.Fatalf("bimodal counter out of range: %d", c)
		}
	}
}

func TestPropertyPredictTotal(t *testing.T) {
	// Predict never panics and Update keeps counters in range for
	// arbitrary pc streams.
	g := NewGshare(8, 6)
	f := func(pc uint32, taken bool) bool {
		g.Update(pc, taken)
		_ = g.Predict(pc)
		return g.counters[g.index(pc)] <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
