package trace

// Gang replay's decode-once layer: a chunk of the packed stream is
// decoded exactly once into an immutable slab of emu.Records, and every
// configuration simulating the workload reads the same slab through a
// cheap cursor. The sweep engine decodes each trace ~once per sweep
// instead of once per (config, segment) pair — chunk reads, lazy sha256
// verification and per-record decoding all collapse into one pass.
//
// Memory discipline: decoded records are ~24 bytes against the format's
// ~1 packed byte, so slabs are cached under an explicit byte budget with
// LRU eviction of unpinned entries. A cursor pins (refcounts) the slab
// it is currently reading; pinned slabs are never reclaimed, so an
// in-flight gang can never observe a recycled slab — the eviction test
// runs the whole arrangement under the race detector. Traces whose full
// decoded footprint exceeds the budget are better served by the
// streaming Reader (the engine makes that call); the cache still serves
// them correctly, it just thrashes.

import (
	"fmt"
	"sync"
	"unsafe"

	"repro/internal/emu"
	"repro/internal/isa"
)

// slabRecordBytes is the in-memory cost of one decoded record, used to
// charge slabs against the cache budget.
const slabRecordBytes = int64(unsafe.Sizeof(emu.Record{}))

// DecodedBytes is the trace's full decoded footprint: what keeping every
// slab of this trace resident would cost. The engine compares it to the
// slab budget when deciding between gang (slab) and streaming replay.
func (t *Trace) DecodedBytes() int64 {
	return int64(t.n) * slabRecordBytes
}

// chunkStartBoundary returns the boundary at chunk ci's first record.
// Chunk starts always coincide with stored boundaries (chunkRecords is a
// multiple of boundaryInterval), so this is a table lookup, not a scan.
func (t *Trace) chunkStartBoundary(ci int) (Boundary, error) {
	if ci == 0 {
		return t.startBoundary(), nil
	}
	step := uint64(ci) * t.chunkRecs
	// bounds[k] holds the boundary after (k+1)·boundaryInterval records.
	k := int(step/boundaryInterval) - 1
	if k < 0 || k >= len(t.bounds) || t.bounds[k].Step != step {
		return Boundary{}, fmt.Errorf("trace: chunk %d start (step %d) has no stored boundary: %w", ci, step, ErrCorruptChunk)
	}
	return t.bounds[k], nil
}

// chunkLen returns the number of records in chunk ci.
func (t *Trace) chunkLen(ci int) int {
	end := uint64(ci+1) * t.chunkRecs
	if end > t.n {
		end = t.n
	}
	return int(end - uint64(ci)*t.chunkRecs)
}

// DecodeChunk materializes chunk ci into dst (grown as needed),
// returning the decoded records. The chunk's bytes are loaded — and,
// for file-backed traces, checksum-verified — exactly once, and the
// decode goes through the same Step logic every streaming Reader uses,
// so the records are identical to what per-record replay would produce.
func (t *Trace) DecodeChunk(ci int, dst []emu.Record) ([]emu.Record, error) {
	if ci < 0 || ci >= len(t.chunks) {
		return nil, fmt.Errorf("trace: decode of chunk %d (trace has %d): %w", ci, len(t.chunks), ErrCorruptChunk)
	}
	b, err := t.chunkStartBoundary(ci)
	if err != nil {
		return nil, err
	}
	r, err := NewReaderAt(t, b)
	if err != nil {
		return nil, err
	}
	defer r.Release()
	n := t.chunkLen(ci)
	if cap(dst) < n {
		dst = make([]emu.Record, n)
	}
	dst = dst[:n]
	got, err := r.StepBatch(dst)
	if err != nil {
		return nil, err
	}
	if got != n {
		return nil, errCorrupt
	}
	return dst, nil
}

// SlabStats snapshots the cache's counters.
type SlabStats struct {
	// Decodes counts chunks decoded into slabs; Hits counts acquisitions
	// served from an already-decoded slab. Their ratio is the sharing
	// factor gang replay achieves.
	Decodes int
	Hits    int
	// DecodedRecords totals the dynamic records materialized by Decodes.
	DecodedRecords uint64
	// Evictions counts unpinned slabs reclaimed to stay inside the budget.
	Evictions int
	// Bytes is the current resident slab footprint; PeakBytes its maximum
	// over the cache's lifetime (after each eviction pass settles).
	Bytes     int64
	PeakBytes int64
}

// slabKey identifies one chunk of one pooled trace.
type slabKey struct {
	t  *Trace
	ci int
}

// Slab is one decoded chunk held by the cache. The record slice is
// immutable after decode; holders pin it via SlabCache.Acquire and must
// Release it when done.
type Slab struct {
	recs  []emu.Record
	bytes int64
	key   slabKey
	refs  int
	err   error
	done  chan struct{} // closed when decode finishes (recs/err valid)

	// LRU links, meaningful only while refs == 0 and the decode is done.
	prev, next *Slab
}

// Records returns the slab's decoded records. Read-only: the slice is
// shared by every gang member.
func (s *Slab) Records() []emu.Record { return s.recs }

// SlabCache shares decoded chunk slabs across concurrent simulations
// under a byte budget. Decodes are single-flight per chunk; eviction is
// LRU over unpinned slabs only, so budget pressure can never reclaim a
// slab a cursor is still reading.
type SlabCache struct {
	mu     sync.Mutex
	budget int64
	slabs  map[slabKey]*Slab
	// lruHead/lruTail order unpinned decoded slabs, least recent first.
	lruHead, lruTail *Slab
	stats            SlabStats
}

// NewSlabCache returns a cache bounded (evictions permitting — pinned
// slabs are never reclaimed) by budget bytes of decoded records.
func NewSlabCache(budget int64) *SlabCache {
	return &SlabCache{budget: budget, slabs: make(map[slabKey]*Slab)}
}

// Budget returns the cache's byte budget.
func (c *SlabCache) Budget() int64 { return c.budget }

// Stats returns a snapshot of the cache's counters.
func (c *SlabCache) Stats() SlabStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// lruRemove unlinks s from the eviction list (no-op if not linked).
func (c *SlabCache) lruRemove(s *Slab) {
	if c.lruHead != s && s.prev == nil && s.next == nil {
		return
	}
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		c.lruHead = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		c.lruTail = s.prev
	}
	s.prev, s.next = nil, nil
}

// lruPush appends s as the most recently released slab.
func (c *SlabCache) lruPush(s *Slab) {
	s.prev, s.next = c.lruTail, nil
	if c.lruTail != nil {
		c.lruTail.next = s
	} else {
		c.lruHead = s
	}
	c.lruTail = s
}

// evictLocked reclaims least-recently-used unpinned slabs until the
// resident footprint fits the budget (or nothing evictable remains).
func (c *SlabCache) evictLocked() {
	for c.stats.Bytes > c.budget && c.lruHead != nil {
		victim := c.lruHead
		c.lruRemove(victim)
		delete(c.slabs, victim.key)
		c.stats.Bytes -= victim.bytes
		c.stats.Evictions++
		victim.recs = nil
	}
	if c.stats.Bytes > c.stats.PeakBytes {
		c.stats.PeakBytes = c.stats.Bytes
	}
}

// Acquire returns chunk ci of t decoded, pinned against eviction until
// the matching Release. The first caller decodes (checksum verified
// once); concurrent callers for the same chunk wait on that decode
// instead of duplicating it.
func (c *SlabCache) Acquire(t *Trace, ci int) (*Slab, error) {
	key := slabKey{t, ci}
	c.mu.Lock()
	if s, ok := c.slabs[key]; ok {
		s.refs++
		c.lruRemove(s)
		c.stats.Hits++
		c.mu.Unlock()
		<-s.done
		if s.err != nil {
			// Decode failed after we joined; drop our pin (the decoder
			// already removed the entry from the map).
			c.Release(s)
			return nil, s.err
		}
		return s, nil
	}
	s := &Slab{key: key, refs: 1, done: make(chan struct{})}
	c.slabs[key] = s
	c.mu.Unlock()

	recs, err := t.DecodeChunk(ci, nil)

	c.mu.Lock()
	if err != nil {
		s.err = err
		delete(c.slabs, key)
		close(s.done)
		c.mu.Unlock()
		return nil, err
	}
	s.recs = recs
	s.bytes = int64(len(recs)) * slabRecordBytes
	c.stats.Decodes++
	c.stats.DecodedRecords += uint64(len(recs))
	c.stats.Bytes += s.bytes
	c.evictLocked()
	close(s.done)
	c.mu.Unlock()
	return s, nil
}

// Release drops one pin on s. When the last pin drops the slab becomes
// evictable (most-recently-used position); it stays resident until
// budget pressure actually reclaims it, so the next gang member's
// Acquire is a hit.
func (c *SlabCache) Release(s *Slab) {
	if s == nil {
		return
	}
	c.mu.Lock()
	s.refs--
	if s.refs == 0 && s.err == nil && c.slabs[s.key] == s {
		c.lruPush(s)
		c.evictLocked()
	}
	c.mu.Unlock()
}

// DropTrace removes t's unpinned slabs from the cache — hygiene when the
// engine drops a corrupt trace, so dead entries stop occupying budget.
// Pinned slabs survive until their holders release them.
func (c *SlabCache) DropTrace(t *Trace) {
	c.mu.Lock()
	for ci := 0; ci < len(t.chunks); ci++ {
		key := slabKey{t, ci}
		s, ok := c.slabs[key]
		if !ok || s.refs > 0 {
			continue
		}
		select {
		case <-s.done:
		default:
			continue // decode in flight; its owner holds a pin anyway
		}
		c.lruRemove(s)
		delete(c.slabs, key)
		c.stats.Bytes -= s.bytes
		s.recs = nil
	}
	c.mu.Unlock()
}

// SlabCursor streams a trace's decoded records window by window from a
// SlabCache, pinning exactly one slab at a time. It implements
// pipeline.SlabStream: the pipeline's slab source reads each window by
// index, and calls NextWindow once per quarter-million records.
type SlabCursor struct {
	c    *SlabCache
	t    *Trace
	cur  *Slab
	ci   int // next chunk to acquire
	skip int // record offset into the first window (boundary starts)
	end  bool
}

// NewSlabCursor returns a cursor over t's full record stream.
func NewSlabCursor(c *SlabCache, t *Trace) (*SlabCursor, error) {
	return NewSlabCursorAt(c, t, t.startBoundary())
}

// NewSlabCursorAt returns a cursor positioned at boundary b, exactly as
// if it had already streamed b.Step records — the slab analogue of
// NewReaderAt for segment warm starts.
func NewSlabCursorAt(c *SlabCache, t *Trace, b Boundary) (*SlabCursor, error) {
	if b.Step > t.n {
		return nil, fmt.Errorf("trace: boundary step %d outside the trace (%d steps)", b.Step, t.n)
	}
	sc := &SlabCursor{c: c, t: t}
	if b.Step == t.n {
		sc.end = true
		return sc, nil
	}
	if t.chunkRecs > 0 {
		sc.ci = int(b.Step / t.chunkRecs)
	}
	if sc.ci >= len(t.chunks) {
		return nil, fmt.Errorf("trace: boundary step %d has no chunk (%d chunks of %d records)", b.Step, len(t.chunks), t.chunkRecs)
	}
	sc.skip = int(b.Step - uint64(sc.ci)*t.chunkRecs)
	return sc, nil
}

// NextWindow releases the current window and returns the next one,
// reporting with last whether it is the trace's final window. After the
// final window (or at a cursor opened at the trace's end) it returns
// (nil, true, nil).
func (sc *SlabCursor) NextWindow() ([]emu.Record, bool, error) {
	if sc.cur != nil {
		sc.c.Release(sc.cur)
		sc.cur = nil
	}
	if sc.end || sc.ci >= len(sc.t.chunks) {
		sc.end = true
		return nil, true, nil
	}
	s, err := sc.c.Acquire(sc.t, sc.ci)
	if err != nil {
		sc.end = true
		return nil, false, err
	}
	recs := s.Records()
	if sc.skip > 0 {
		if sc.skip > len(recs) {
			sc.c.Release(s)
			sc.end = true
			return nil, false, errCorrupt
		}
		recs = recs[sc.skip:]
		sc.skip = 0
	}
	sc.cur = s
	sc.ci++
	return recs, sc.ci >= len(sc.t.chunks), nil
}

// Release unpins the cursor's current slab. Idempotent; call when the
// consumer stops before the trace's end (a consumer that streams to the
// end may still call it — the final window's pin is dropped either way).
func (sc *SlabCursor) Release() {
	if sc.cur != nil {
		sc.c.Release(sc.cur)
		sc.cur = nil
	}
	sc.end = true
}

// Program returns the traced program.
func (sc *SlabCursor) Program() *isa.Program { return sc.t.Program() }

// Output returns the captured execution's Out values.
func (sc *SlabCursor) Output() []int32 { return sc.t.Output() }

// StateHash returns the captured execution's final architectural digest.
func (sc *SlabCursor) StateHash() [32]byte { return sc.t.StateHash() }
