// Package ring provides a growable ring buffer used as a double-ended
// queue. The timing pipeline keeps its program-order queues (fetch queue,
// reorder buffer, unissued-store queue) in ring buffers so that head pops
// are O(1) and — unlike reslicing a Go slice — do not leave dead elements
// reachable through the backing array.
//
//ce:deterministic
package ring

// Buffer is a growable ring buffer. The zero value is an empty buffer
// ready for use. Capacity grows by doubling and is always a power of two,
// so index wrapping is a mask. Popped and cleared slots are zeroed so the
// buffer never retains references to removed elements.
type Buffer[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports the number of buffered elements.
//
//ce:hot
func (b *Buffer[T]) Len() int { return b.n }

// PushBack appends v at the tail. Steady-state pushes reuse capacity;
// growth is a doubling event amortized to zero.
//
//ce:hot
func (b *Buffer[T]) PushBack(v T) {
	if b.n == len(b.buf) {
		b.grow()
	}
	b.buf[(b.head+b.n)&(len(b.buf)-1)] = v
	b.n++
}

// PopFront removes and returns the head element; it panics on an empty
// buffer.
//
//ce:hot
func (b *Buffer[T]) PopFront() T {
	if b.n == 0 {
		panic("ring: PopFront on empty buffer")
	}
	var zero T
	v := b.buf[b.head]
	b.buf[b.head] = zero
	b.head = (b.head + 1) & (len(b.buf) - 1)
	b.n--
	return v
}

// PopBack removes and returns the tail element; it panics on an empty
// buffer.
//
//ce:hot
func (b *Buffer[T]) PopBack() T {
	if b.n == 0 {
		panic("ring: PopBack on empty buffer")
	}
	var zero T
	i := (b.head + b.n - 1) & (len(b.buf) - 1)
	v := b.buf[i]
	b.buf[i] = zero
	b.n--
	return v
}

// Front returns the head element without removing it; it panics on an
// empty buffer.
//
//ce:hot
func (b *Buffer[T]) Front() T {
	if b.n == 0 {
		panic("ring: Front on empty buffer")
	}
	return b.buf[b.head]
}

// Back returns the tail element without removing it; it panics on an
// empty buffer.
//
//ce:hot
func (b *Buffer[T]) Back() T {
	if b.n == 0 {
		panic("ring: Back on empty buffer")
	}
	return b.buf[(b.head+b.n-1)&(len(b.buf)-1)]
}

// At returns the element i positions from the head (At(0) == Front()); it
// panics when i is out of range.
//
//ce:hot
func (b *Buffer[T]) At(i int) T {
	if i < 0 || i >= b.n {
		panic("ring: At index out of range")
	}
	return b.buf[(b.head+i)&(len(b.buf)-1)]
}

// Clear removes every element, zeroing the occupied slots. Capacity is
// retained.
func (b *Buffer[T]) Clear() {
	var zero T
	for i := 0; i < b.n; i++ {
		b.buf[(b.head+i)&(len(b.buf)-1)] = zero
	}
	b.head, b.n = 0, 0
}

// grow doubles capacity, unwrapping the contents to the front of the new
// backing array.
func (b *Buffer[T]) grow() {
	newCap := 16
	if len(b.buf) > 0 {
		newCap = len(b.buf) * 2
	}
	nb := make([]T, newCap)
	if b.n > 0 {
		k := copy(nb, b.buf[b.head:])
		copy(nb[k:], b.buf[:b.n-k])
	}
	b.buf, b.head = nb, 0
}
