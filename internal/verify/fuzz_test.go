package verify

import (
	"testing"

	"repro/internal/prog"
)

// FuzzDifferential feeds fuzzer-chosen generator parameters through the
// differential harness. The interesting search space is the generator
// configuration, not raw bytes: every input is a well-formed terminating
// program, so all fuzzing time goes into exercising timing-model
// bookkeeping rather than assembler error paths.
//
// Reproduce a failure by turning the corpus entry's arguments into a
// prog.RandomConfig and calling verify.CheckSeed (see EXPERIMENTS.md).
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), uint16(120), uint8(2), uint16(64), uint8(8), uint8(3), uint8(2), uint8(3), false)
	f.Add(int64(42), uint16(60), uint8(4), uint16(8), uint8(4), uint8(2), uint8(2), uint8(6), false)
	f.Add(int64(7), uint16(200), uint8(1), uint16(512), uint8(4), uint8(6), uint8(4), uint8(1), true)
	f.Add(int64(9), uint16(40), uint8(0), uint16(16), uint8(1), uint8(0), uint8(0), uint8(1), true)
	f.Fuzz(func(t *testing.T, seed int64, size uint16, loopDepth uint8, memWords uint16, alu, load, store, branch uint8, noSkip bool) {
		rc := clamp(seed, size, loopDepth, memWords, alu, load, store, branch)
		// noSkip pins the fast-path comparison run to event-driven wakeup
		// without idle-cycle skipping, separating wakeup bugs from
		// skipping bugs in any divergence the fuzzer finds.
		cfgs := Panel()
		if noSkip {
			for i := range cfgs {
				cfgs[i].NoCycleSkip = true
			}
		}
		p, err := prog.Random(rc)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(p, cfgs); err != nil {
			t.Fatalf("%+v noSkip=%v\nprogram:\n%s\n%v", rc, noSkip, prog.RandomSource(rc), err)
		}
	})
}

// clamp keeps fuzzer-chosen parameters inside the generator's supported
// envelope without rejecting any input.
func clamp(seed int64, size uint16, loopDepth uint8, memWords uint16, alu, load, store, branch uint8) prog.RandomConfig {
	return prog.RandomConfig{
		Seed:      seed,
		Size:      int(size%400) + 10,
		LoopDepth: int(loopDepth % 5),
		MemWords:  int(memWords%1024) + 1,
		ALU:       int(alu % 16),
		Load:      int(load % 16),
		Store:     int(store % 16),
		Branch:    int(branch % 16),
	}
}
