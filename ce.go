// Package ce is the public API of this reproduction of "Complexity-
// Effective Superscalar Processors" (Palacharla, Jouppi & Smith, ISCA
// 1997).
//
// It exposes two layers:
//
//   - the delay models of Section 4 (rename, wakeup, select, bypass and
//     the reservation table), re-exported from internal/delaymodel via the
//     Figure/Table runners in delays.go;
//   - the timing simulator of Section 5, with ready-made machine
//     configurations for every organization the paper evaluates and
//     runners that regenerate Figures 13, 15 and 17 (experiments.go).
//
// The quickstart is:
//
//	stats, err := ce.Run(ce.BaselineConfig(), "compress")
//	fmt.Println(stats.IPC())
package ce

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/prog"
)

// Config is the machine configuration consumed by Run.
type Config = pipeline.Config

// Stats is the result of one simulation run.
type Stats = pipeline.Stats

// maxCycles bounds any single simulation as a runaway guard; the longest
// workload needs well under this.
const maxCycles = 200_000_000

// table3 returns the shared Table 3 parameters; callers fill in the
// scheduler and clustering. Schedulers are given as serializable specs
// so every stock configuration has a structural fingerprint (Config.Key)
// and is eligible for run memoization.
func table3(name string, clusters, interDelay int, sched core.SchedulerSpec) Config {
	return Config{
		Name:              name,
		FetchWidth:        8,
		DecodeWidth:       8,
		IssueWidth:        8,
		RetireWidth:       16,
		MaxInFlight:       128,
		PhysRegs:          120,
		Clusters:          clusters,
		FUsPerCluster:     8 / clusters,
		LSPorts:           4,
		InterClusterDelay: interDelay,
		FrontEndDepth:     2,
		FetchQueueSize:    32,
		Scheduler:         &sched,
	}
}

// BaselineConfig is the conventional 8-way machine of Table 3: a single
// 64-entry flexible issue window with uniform single-cycle bypass. It is
// also Figure 17's "1-cluster, 1 window" ideal organization.
func BaselineConfig() Config {
	return table3("baseline-8way-64win", 1, 0, core.WindowSpec(64))
}

// DependenceConfig is the (unclustered) dependence-based microarchitecture
// of Section 5.2: eight 8-entry FIFOs, issue from FIFO heads only, uniform
// single-cycle bypass. Compared against BaselineConfig in Figure 13.
func DependenceConfig() Config {
	return table3("dependence-8fifo-x8", 1, 0, core.FIFOBankSpec(core.FIFOBankConfig{
		Name: "fifos-8x8", Clusters: 1, FIFOsPerCluster: 8, Depth: 8,
	}))
}

// ClusteredDependenceConfig is the 2×4-way clustered dependence-based
// machine of Section 5.4/5.5 (Figure 14): two clusters of four FIFOs and
// four functional units each, per-cluster FIFO free lists, local bypass in
// one cycle and inter-cluster bypass in two.
func ClusteredDependenceConfig() Config {
	return table3("2x4way-fifos-dispatch", 2, 1, core.FIFOBankSpec(core.FIFOBankConfig{
		Name: "fifos-2x4x8", Clusters: 2, FIFOsPerCluster: 4, Depth: 8,
	}))
}

// WindowsDispatchConfig is Figure 16(b) with dependence-aware dispatch
// steering (Section 5.6.2): two clusters, each with a 32-entry flexible
// window that the steering heuristic treats as eight conceptual 4-slot
// FIFOs; instructions issue from any slot.
func WindowsDispatchConfig() Config {
	return table3("2x4way-windows-dispatch", 2, 1, core.FIFOBankSpec(core.FIFOBankConfig{
		Name: "windows-2x8x4", Clusters: 2, FIFOsPerCluster: 8, Depth: 4,
		AnySlot: true,
	}))
}

// ExecSteeredConfig is Figure 16(a) (Section 5.6.1): a single 64-entry
// central window feeding two clusters, with cluster assignment made at
// execution time (greedy earliest-operands placement, ties to cluster 0).
func ExecSteeredConfig() Config {
	return table3("2x4way-central-exec", 2, 1, core.ExecSteeredSpec(64, 2))
}

// RandomSteerConfig is the Section 5.6.3 basis point: two 32-entry
// windows with random cluster steering (fall back to the other cluster
// when the chosen window is full).
func RandomSteerConfig() Config {
	return table3("2x4way-windows-random", 2, 1, core.FIFOBankSpec(core.FIFOBankConfig{
		Name: "windows-random", Clusters: 2, FIFOsPerCluster: 1, Depth: 32,
		AnySlot: true, Policy: core.SteerRandom,
	}))
}

// FourWayConfig is a conventional 4-way, 32-entry window machine — the
// machine whose window logic bounds the dependence-based clock in Section
// 5.5, provided for ablations.
func FourWayConfig() Config {
	c := table3("baseline-4way-32win", 1, 0, core.WindowSpec(32))
	c.FetchWidth = 4
	c.DecodeWidth = 4
	c.IssueWidth = 4
	c.FUsPerCluster = 4
	c.RetireWidth = 8
	return c
}

// CustomConfig mounts an arbitrary scheduler spec on the shared Table 3
// 8-way machine: single-cycle uniform bypass when clusters == 1, one
// extra inter-cluster bypass cycle otherwise (the paper's Section 5.4
// assumption). The functional units split evenly across clusters, so
// clusters must divide the issue width of 8. This is the entry point
// cesweepd's POST /run uses for requests that describe a scheduler
// instead of naming a stock configuration.
func CustomConfig(name string, clusters int, sched core.SchedulerSpec) (Config, error) {
	if clusters < 1 || 8%clusters != 0 {
		return Config{}, fmt.Errorf("ce: %d clusters cannot split 8 functional units evenly (want 1, 2, 4 or 8)", clusters)
	}
	interDelay := 0
	if clusters > 1 {
		interDelay = 1
	}
	return table3(name, clusters, interDelay, sched), nil
}

// SchedulerSpec re-exports the serializable scheduler description
// consumed by CustomConfig.
type SchedulerSpec = core.SchedulerSpec

// WithPredictor returns a copy of cfg using the named branch predictor
// (ablation support). The predictor is recorded as a serializable name,
// not a factory closure, so the result keeps its run-cache eligibility.
func WithPredictor(cfg Config, name string) (Config, error) {
	switch name {
	case "gshare", "bimodal", "taken":
		cfg.Predictor = name
	case "perfect":
		cfg.PerfectBPred = true
	default:
		return cfg, fmt.Errorf("ce: unknown predictor %q (want gshare, bimodal, taken or perfect)", name)
	}
	cfg.Name += "+" + name
	return cfg, nil
}

// Workloads returns the benchmark names in report order (the seven
// SPEC95-like kernels the paper evaluates).
func Workloads() []string { return prog.Names() }

// WorkloadsExtended returns every benchmark, including extensions beyond
// the paper's set (currently ijpeg).
func WorkloadsExtended() []string { return prog.ExtendedNames() }

// WorkloadsHuge returns the benchmark-scale workloads (hundreds of
// millions of instructions; excluded from every sweep matrix and from
// WorkloadsExtended, reachable only by name).
func WorkloadsHuge() []string { return prog.HugeNames() }

// WorkloadDescription returns the one-line description of a workload.
func WorkloadDescription(name string) (string, error) {
	w, err := prog.ByName(name)
	if err != nil {
		return "", err
	}
	return w.Description, nil
}

// Run simulates one workload on one configuration.
func Run(cfg Config, workload string) (Stats, error) {
	st, _, err := run(cfg, workload)
	return st, err
}

// TimelineEntry re-exports the per-instruction pipeline timeline record.
type TimelineEntry = pipeline.TimelineEntry

// RunWithTimeline simulates one workload with timeline recording enabled
// and returns the per-instruction pipeline timeline alongside the stats.
// Intended for short runs; the timeline holds one entry per committed
// instruction.
func RunWithTimeline(cfg Config, workload string) (Stats, []TimelineEntry, error) {
	cfg.RecordTimeline = true
	return run(cfg, workload)
}

func run(cfg Config, workload string) (Stats, []TimelineEntry, error) {
	w, err := prog.ByName(workload)
	if err != nil {
		return Stats{}, nil, err
	}
	p, err := w.Program()
	if err != nil {
		return Stats{}, nil, err
	}
	sim, err := pipeline.New(cfg, p)
	if err != nil {
		return Stats{}, nil, err
	}
	st, err := sim.Run(maxCycles)
	if err != nil {
		return st, nil, err
	}
	return st, sim.Timeline(), nil
}

// RunMatrix runs every (config, workload) pair, in parallel across CPUs,
// returning results indexed [config][workload] in the given orders. Runs
// go through DefaultEngine's content-addressed cache, so pairs already
// simulated anywhere in this process are recalled instead of re-run.
func RunMatrix(cfgs []Config, workloads []string) ([][]Stats, error) {
	return DefaultEngine.RunMatrix(cfgs, workloads)
}
