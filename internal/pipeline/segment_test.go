package pipeline

import (
	"testing"

	"repro/internal/prog"
	"repro/internal/trace"
)

func captureWorkload(t *testing.T, name string) *trace.Trace {
	t.Helper()
	w, err := prog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Capture(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// eqDeterministic compares every deterministic Stats field (host
// telemetry legitimately differs between runs).
func eqDeterministic(t *testing.T, label string, got, want Stats) {
	t.Helper()
	g, w := got, want
	g.HostAllocs, w.HostAllocs = 0, 0
	g.HostWallSeconds, w.HostWallSeconds = 0, 0
	gh, wh := g.IssuedPerCycle, w.IssuedPerCycle
	g.IssuedPerCycle, w.IssuedPerCycle = nil, nil
	if g != w {
		t.Errorf("%s: stats diverge:\n  got  %+v\n  want %+v", label, g, w)
	}
	if gh.Total() != wh.Total() {
		t.Errorf("%s: issue histogram records %d cycles, want %d", label, gh.Total(), wh.Total())
	}
	for v := 0; v <= 8; v++ {
		if gh.Count(v) != wh.Count(v) {
			t.Errorf("%s: issue histogram bucket %d = %d, want %d", label, v, gh.Count(v), wh.Count(v))
		}
	}
}

// TestRunUntilCommittedMatchesRun pins that the commit-horizon loop with
// the final target is the same run as Run: the warm-start seam may not
// perturb the simulation it snapshots.
func TestRunUntilCommittedMatchesRun(t *testing.T) {
	tr := captureWorkload(t, "micro.branchy")
	c := cfg("seg", 1, 0, window64)
	c.PerfectBPred = false

	simA, err := NewReplay(c, trace.NewReader(tr))
	if err != nil {
		t.Fatal(err)
	}
	want, err := simA.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := NewReplay(c, trace.NewReader(tr))
	if err != nil {
		t.Fatal(err)
	}
	// Stop at an interior horizon first: the extra snapshot must not
	// change where the run ends up.
	if _, err := simB.RunUntilCommitted(tr.Steps()/2, 50_000_000); err != nil {
		t.Fatal(err)
	}
	got, err := simB.RunUntilCommitted(tr.Steps(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	eqDeterministic(t, "run-until-committed", got, want)
}

// TestSegmentStitchingExact is the package-level exactness differential:
// full-warmup segment runs stitched together must reproduce the
// monolithic run bit for bit — every counter, every histogram bucket.
func TestSegmentStitchingExact(t *testing.T) {
	tr := captureWorkload(t, "micro.branchy")
	for _, mk := range []struct {
		name string
		c    Config
	}{
		{"window", cfg("window", 1, 0, window64)},
		{"fifos", cfg("fifos", 1, 0, fifos8x8)},
	} {
		c := mk.c
		c.PerfectBPred = false
		sim, err := NewReplay(c, trace.NewReader(tr))
		if err != nil {
			t.Fatal(err)
		}
		mono, err := sim.Run(50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		segs := tr.Segments(4)
		if len(segs) < 2 {
			t.Fatalf("micro.branchy yielded %d segments, want ≥ 2", len(segs))
		}
		parts := make([]Stats, len(segs))
		for i, seg := range segs {
			parts[i], err = RunSegment(c, tr, seg, -1, 50_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if parts[i].Committed == 0 {
				t.Fatalf("%s segment %d committed nothing", mk.name, i)
			}
		}
		stitched, err := StitchStats(parts)
		if err != nil {
			t.Fatal(err)
		}
		eqDeterministic(t, mk.name+" stitched", stitched, mono)
	}
}

// TestSegmentFiniteWarmupApproximates pins the sampled-mode contract:
// finite warmup commits exactly the window instructions per segment and
// lands near — not necessarily on — the monolithic cycle count.
func TestSegmentFiniteWarmupApproximates(t *testing.T) {
	tr := captureWorkload(t, "micro.branchy")
	c := cfg("warm", 1, 0, window64)
	c.PerfectBPred = false
	sim, err := NewReplay(c, trace.NewReader(tr))
	if err != nil {
		t.Fatal(err)
	}
	mono, err := sim.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	segs := tr.Segments(4)
	var parts []Stats
	for _, seg := range segs {
		st, err := RunSegment(c, tr, seg, 1<<14, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, st)
	}
	stitched, err := StitchStats(parts)
	if err != nil {
		t.Fatal(err)
	}
	// Commit-width overshoot at the warmup horizon can shift a handful of
	// instructions between warmup and window; the totals stay within one
	// retire width per seam.
	slack := uint64(len(segs) * c.RetireWidth)
	if stitched.Committed < tr.Steps()-slack || stitched.Committed > tr.Steps()+slack {
		t.Errorf("stitched committed %d, monolithic %d (slack %d)", stitched.Committed, tr.Steps(), slack)
	}
	lo := float64(mono.Cycles) * 0.9
	hi := float64(mono.Cycles) * 1.1
	if f := float64(stitched.Cycles); f < lo || f > hi {
		t.Errorf("stitched cycles %d not within 10%% of monolithic %d", stitched.Cycles, mono.Cycles)
	}
}
