// Package trace captures the dynamic execution of a program once and
// replays it arbitrarily many times. The functional emulator's Record
// stream — resolved branch outcomes, jump targets and memory addresses —
// is a pure function of (program, input); only *timing* differs between
// machine configurations. A sweep that times one workload on dozens of
// configurations therefore only needs to execute it once: capture the
// stream into a packed trace, then drive every timing simulation from a
// zero-allocation sequential Reader instead of lockstep emulation.
//
// The encoding exploits that almost everything in a Record is static.
// The instruction is the program text at the PC; the PC chain is implied
// by the previous record's NextPC; conditional-branch and direct-jump
// targets are immediates. Per dynamic instruction the trace stores only
// what the emulator actually resolved at run time:
//
//	conditional branch      1 byte  (taken flag)
//	indirect jump (jr/jalr) 4 bytes (target)
//	load/store              4 bytes (effective address)
//	everything else         0 bytes
//
// which averages about one byte per instruction on the paper's
// workloads. A trace is tied to its program by a content hash over the
// text and data segments, so a stale trace can never replay against a
// recompiled program.
//
// The packed stream is chunked (chunk.go): capture seals and checksums
// one chunk at a time, streaming sealed chunks straight to disk when a
// trace directory is configured (CaptureToDir) or when an in-memory
// capture outgrows its window (memSpillBytes), so peak capture memory
// is O(chunk), not O(trace). Readers load one chunk at a time for the
// same bound on the replay side.
//
//ce:deterministic
//ce:classify-errors
package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"repro/internal/emu"
	"repro/internal/isa"
)

// memSpillBytes is the bounded window an in-memory capture may hold
// before it spills sealed chunks to an anonymous temp file. It is a
// variable so tests can force the spill path on small workloads.
var memSpillBytes int64 = 64 << 20

// Trace is one captured execution: the chunked packed dynamic stream
// plus the final architectural results needed to verify a replayed run
// without re-executing (output values and state digest).
type Trace struct {
	prog    *isa.Program
	entryPC uint32
	n       uint64 // dynamic records in the packed stream

	packedLen uint64 // total packed bytes across chunks
	chunkRecs uint64 // records per full chunk (chunkRecords at capture)
	chunks    []chunkMeta
	maxChunk  int // largest chunk's packed size (reader buffer bound)
	store     chunkStore

	// bounds are periodic warm-start points (every boundaryInterval
	// records) captured during the one functional execution; see
	// segment.go.
	bounds []Boundary

	// bbv holds the per-interval basic-block vectors collected during
	// capture; see bbv.go.
	bbv BBV

	output    []int32
	stateHash [32]byte

	// path is the canonical on-disk location for file-backed traces
	// persisted under a trace directory ("" for in-memory and anonymous
	// spill-backed traces).
	path string
}

// Program returns the program this trace was captured from.
func (t *Trace) Program() *isa.Program { return t.prog }

// Steps returns the number of dynamic instructions in the trace.
func (t *Trace) Steps() uint64 { return t.n }

// PackedBytes returns the size of the packed stream in bytes
// (observability: bytes per instruction is the format's figure of merit).
func (t *Trace) PackedBytes() int { return int(t.packedLen) }

// Chunks returns the number of chunks the packed stream is cut into.
func (t *Trace) Chunks() int { return len(t.chunks) }

// Footprint reports where the trace's bytes live: on disk (file-backed
// traces; readers stream one chunk at a time) versus resident in this
// process's memory.
func (t *Trace) Footprint() (disk, resident int64) { return t.store.footprint() }

// Path returns the trace's canonical on-disk path, or "" for traces not
// persisted under a trace directory.
func (t *Trace) Path() string { return t.path }

// Close releases the trace's backing store (the open file handle of a
// file-backed trace). Readers must not be used after Close.
func (t *Trace) Close() error { return t.store.close() }

// Invalidate closes the trace and removes its canonical file, if any —
// the engine's response to a chunk failing its checksum at replay time:
// the file can no longer be trusted, so the slot is cleared for
// recapture.
func (t *Trace) Invalidate() error {
	cerr := t.Close()
	if t.path != "" {
		if err := os.Remove(t.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return classify(err)
		}
	}
	return cerr
}

// Output returns the Out values emitted by the captured execution.
func (t *Trace) Output() []int32 { return t.output }

// StateHash returns the final architectural state digest of the captured
// execution (emu.Machine.StateHash at halt).
func (t *Trace) StateHash() [32]byte { return t.stateHash }

// ProgHash digests the parts of a program that determine its execution:
// name, text segment and initial data image. A trace records this hash
// and refuses to attach to a program with a different one.
func ProgHash(p *isa.Program) [32]byte {
	h := sha256.New()
	var w [8]byte
	binary.LittleEndian.PutUint32(w[:4], uint32(len(p.Name)))
	h.Write(w[:4])
	h.Write([]byte(p.Name))
	binary.LittleEndian.PutUint32(w[:4], uint32(len(p.Text)))
	h.Write(w[:4])
	for _, in := range p.Text {
		w[0] = byte(in.Op)
		w[1] = byte(in.Rd)
		w[2] = byte(in.Rs)
		w[3] = byte(in.Rt)
		binary.LittleEndian.PutUint32(w[4:8], uint32(in.Imm))
		h.Write(w[:8])
	}
	binary.LittleEndian.PutUint32(w[:4], uint32(len(p.Data)))
	h.Write(w[:4])
	h.Write(p.Data)
	return [32]byte(h.Sum(nil))
}

// entryPC mirrors emu.New: execution starts at "main" if present, else 0.
func entryPC(p *isa.Program) uint32 {
	if start, ok := p.Symbols["main"]; ok {
		return start
	}
	return 0
}

// Recorder incrementally captures the execution of a machine it does not
// own. It refuses — loudly, not by silent corruption — to record while
// the machine is speculating (a live emu.Checkpoint means subsequent
// steps may be rolled back, which would leave rolled-back records in the
// trace), and refuses permanently if the machine was stepped or restored
// behind its back (the recorded stream no longer matches the machine).
// Capture may resume after a checkpoint is restored or committed back to
// the exact instruction count the recorder last saw.
//
// Packed bytes accumulate in one chunk buffer; every chunkRecords
// records the chunk is sealed (checksummed) and either retained (memory
// mode) or appended to the spill file (streaming mode), so the
// recorder's working set is one chunk regardless of trace length.
type Recorder struct {
	m    *emu.Machine
	prog *isa.Program

	chunk       []byte // current (unsealed) chunk's packed bytes
	chunkStart  uint64 // records sealed into previous chunks
	sealedBytes uint64 // packed bytes sealed into previous chunks
	chunks      []chunkMeta

	// Memory mode: sealed chunks retained until Finish (or until the
	// window overflows and startSpill converts to streaming mode).
	mem      [][]byte
	memBytes int64

	// Streaming mode: sealed chunks appended to spill; spillDest is the
	// canonical path the finished file is renamed to ("" = anonymous
	// temp backing, already unlinked).
	spill     *os.File
	spillName string // current file name ("" once anonymous/unlinked)
	spillDest string

	n      uint64
	bounds []Boundary
	bbv    bbvBuilder

	expect uint64 // machine.Executed after the last recorded step
	nextPC uint32
	err    error
}

// ErrSpeculating is returned by Recorder.Step while the machine has a
// live checkpoint: speculative execution must not enter the trace.
var ErrSpeculating = errors.New("trace: cannot capture while the machine is speculating (live checkpoint)")

// NewRecorder starts capturing m, which must be freshly created from p
// (nothing executed yet) and not speculating.
func NewRecorder(m *emu.Machine, p *isa.Program) (*Recorder, error) {
	if m.Executed != 0 {
		return nil, fmt.Errorf("trace: machine has already executed %d instructions; capture must start fresh", m.Executed)
	}
	if m.Speculating() {
		return nil, ErrSpeculating
	}
	return &Recorder{m: m, prog: p, nextPC: entryPC(p)}, nil
}

// SpillTo switches the recorder to streaming mode before any chunk is
// sealed: sealed chunks append to a temp file in dir, and Finish renames
// it to the trace's canonical path. Capture memory stays O(chunk)
// however long the execution runs.
func (r *Recorder) SpillTo(dir string) error {
	if r.spill != nil {
		return fmt.Errorf("trace: recorder is already spilling to %s", r.spillName)
	}
	if err := r.startSpill(dir); err != nil {
		return err
	}
	r.spillDest = DiskPath(dir, r.prog)
	return nil
}

// startSpill opens the spill file (in dir, or anonymous when dir is "")
// writes the stream header, flushes any already-sealed memory chunks,
// and converts the recorder to streaming mode.
func (r *Recorder) startSpill(dir string) error {
	pattern := "trace-*.tmp"
	if dir == "" {
		pattern = "cetrace-spill-*.tmp"
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return classify(err)
	}
	r.spill = f
	r.spillName = f.Name()
	if dir == "" {
		// Anonymous window spill: unlink immediately so the backing file
		// cannot outlive the process, whatever happens later.
		_ = os.Remove(r.spillName)
		r.spillName = ""
	}
	ph := ProgHash(r.prog)
	if _, err := f.Write(diskMagic[:]); err != nil {
		return r.spillFail(classify(err))
	}
	if _, err := f.Write(ph[:]); err != nil {
		return r.spillFail(classify(err))
	}
	for _, c := range r.mem {
		if _, err := f.Write(c); err != nil {
			return r.spillFail(classify(err))
		}
	}
	r.mem, r.memBytes = nil, 0
	return nil
}

// spillFail abandons the spill file and poisons the recorder.
func (r *Recorder) spillFail(err error) error {
	if r.spill != nil {
		_ = r.spill.Close()
		if r.spillName != "" {
			_ = os.Remove(r.spillName)
		}
		r.spill = nil
	}
	if r.err == nil {
		r.err = err
	}
	return err
}

// Step executes one instruction on the underlying machine and appends it
// to the trace. See the Recorder type comment for the refusal contract.
func (r *Recorder) Step() (emu.Record, error) {
	if r.err != nil {
		return emu.Record{}, r.err
	}
	if r.m.Speculating() {
		return emu.Record{}, ErrSpeculating
	}
	if r.m.Executed != r.expect {
		r.err = fmt.Errorf("trace: machine executed %d instructions but the recorder captured %d; the machine was stepped or rolled back outside the recorder", r.m.Executed, r.expect)
		return emu.Record{}, r.err
	}
	rec, err := r.m.Step()
	if err != nil {
		if !errors.Is(err, emu.ErrHalted) {
			r.err = err
		}
		return rec, err
	}
	if rec.PC != r.nextPC {
		r.err = fmt.Errorf("trace: non-sequential record: executed pc %d, expected %d", rec.PC, r.nextPC)
		return rec, r.err
	}
	r.append(rec)
	r.expect = r.m.Executed
	r.nextPC = rec.NextPC
	return rec, nil
}

// append packs one record. The per-class layout here must mirror
// Reader.Step exactly; the differential tests in this package and in
// internal/verify pin the round trip against the emulator.
func (r *Recorder) append(rec emu.Record) {
	r.bbv.note(rec)
	switch isa.ClassOf(rec.Inst.Op) {
	case isa.ClassLoad, isa.ClassStore:
		r.chunk = binary.LittleEndian.AppendUint32(r.chunk, rec.Addr)
	case isa.ClassBranch:
		var b byte
		if rec.Taken {
			b = 1
		}
		r.chunk = append(r.chunk, b)
	case isa.ClassJump:
		if rec.Inst.Op == isa.Jr || rec.Inst.Op == isa.Jalr {
			r.chunk = binary.LittleEndian.AppendUint32(r.chunk, rec.NextPC)
		}
	}
	r.n++
	if r.n%boundaryInterval == 0 {
		// A boundary is the replay cursor after r.n records: rec.NextPC is
		// the next instruction a Reader positioned here would decode.
		r.bounds = append(r.bounds, Boundary{Step: r.n, Pos: r.sealedBytes + uint64(len(r.chunk)), PC: rec.NextPC})
		r.bbv.seal()
	}
	if r.n-r.chunkStart == chunkRecords {
		r.sealChunk()
	}
}

// sealChunk checksums the current chunk and moves it out of the working
// set: retained in memory mode (spilling once the window overflows),
// appended to the spill file in streaming mode.
func (r *Recorder) sealChunk() {
	m := chunkMeta{
		startPos:  r.sealedBytes,
		packedLen: uint32(len(r.chunk)),
		sum:       sha256.Sum256(r.chunk),
	}
	r.chunks = append(r.chunks, m)
	r.sealedBytes += uint64(len(r.chunk))
	r.chunkStart = r.n
	if r.spill != nil {
		if _, err := r.spill.Write(r.chunk); err != nil {
			_ = r.spillFail(classify(err))
			return
		}
		r.chunk = r.chunk[:0]
		return
	}
	r.mem = append(r.mem, r.chunk)
	r.memBytes += int64(len(r.chunk))
	r.chunk = nil
	if r.memBytes > memSpillBytes {
		if err := r.startSpill(""); err != nil {
			r.err = err
		}
	}
}

// Finish seals the capture into an immutable Trace. The machine must
// have halted: a partial trace would replay as a program that ends
// mid-flight, which no consumer wants.
func (r *Recorder) Finish() (*Trace, error) {
	if r.err != nil {
		_ = r.spillFail(r.err)
		return nil, r.err
	}
	if !r.m.Halted() {
		err := fmt.Errorf("trace: capture finished before the program halted (%d instructions executed)", r.m.Executed)
		_ = r.spillFail(err)
		return nil, err
	}
	if r.n > r.chunkStart {
		r.sealChunk()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.n%boundaryInterval != 0 {
		r.bbv.seal()
	}
	out := make([]int32, len(r.m.Output))
	copy(out, r.m.Output)
	t := &Trace{
		prog:      r.prog,
		entryPC:   entryPC(r.prog),
		n:         r.n,
		packedLen: r.sealedBytes,
		chunkRecs: chunkRecords,
		chunks:    r.chunks,
		bounds:    r.bounds,
		bbv:       r.bbv.finish(),
		output:    out,
		stateHash: r.m.StateHash(),
	}
	for _, c := range t.chunks {
		if int(c.packedLen) > t.maxChunk {
			t.maxChunk = int(c.packedLen)
		}
	}
	if r.spill == nil {
		t.store = &memStore{chunks: r.mem}
		return t, nil
	}
	return r.finishSpill(t)
}

// finishSpill completes the on-disk form — footer and trailer after the
// chunk data — renames the file to its canonical path when one was
// requested, and hands the still-open handle to the trace's store.
func (r *Recorder) finishSpill(t *Trace) (*Trace, error) {
	footer := appendFooter(nil, t)
	if _, err := r.spill.Write(footer); err != nil {
		return nil, r.spillFail(classify(err))
	}
	var trailer [40]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(len(footer)))
	sum := sha256.Sum256(footer)
	copy(trailer[8:], sum[:])
	if _, err := r.spill.Write(trailer[:]); err != nil {
		return nil, r.spillFail(classify(err))
	}
	path := r.spillName
	if r.spillDest != "" {
		if err := os.Rename(r.spillName, r.spillDest); err != nil {
			return nil, r.spillFail(classify(err))
		}
		path = r.spillDest
		t.path = path
	}
	size := int64(fileHeaderLen) + int64(t.packedLen) + int64(len(footer)) + int64(len(trailer))
	t.store = &fileStore{f: r.spill, path: spillDisplayPath(path, r.prog), size: size}
	return t, nil
}

// spillDisplayPath names an anonymous spill for error messages.
func spillDisplayPath(path string, p *isa.Program) string {
	if path != "" {
		return path
	}
	return "(spill:" + p.Name + ")"
}

// Capture executes p to completion on a fresh machine and returns its
// trace. maxInsts is a runaway guard (0 means no limit). The trace is
// memory-backed while it fits the spill window (memSpillBytes) and
// silently converts to an anonymous temp file beyond it, so capture
// memory stays bounded on workloads of any length.
func Capture(p *isa.Program, maxInsts uint64) (*Trace, error) {
	return capture(p, maxInsts, nil)
}

// CaptureToDir executes p to completion, streaming the packed stream
// directly into dir: sealed chunks append to a temp file that Finish
// renames to the canonical DiskPath, and the returned trace reads its
// chunks back from that file. Peak capture memory is O(chunk), and the
// trace is already persisted — no separate WriteFile pass over the
// whole stream.
func CaptureToDir(p *isa.Program, maxInsts uint64, dir string) (*Trace, error) {
	return capture(p, maxInsts, func(r *Recorder) error { return r.SpillTo(dir) })
}

func capture(p *isa.Program, maxInsts uint64, setup func(*Recorder) error) (*Trace, error) {
	m := emu.New(p)
	r, err := NewRecorder(m, p)
	if err != nil {
		return nil, err
	}
	if setup != nil {
		if err := setup(r); err != nil {
			return nil, fmt.Errorf("trace: capturing %s: %w", p.Name, err)
		}
	}
	for !m.Halted() {
		if maxInsts > 0 && m.Executed >= maxInsts {
			err := fmt.Errorf("trace: %s exceeded %d instructions during capture", p.Name, maxInsts)
			_ = r.spillFail(err)
			return nil, err
		}
		if _, err := r.Step(); err != nil {
			_ = r.spillFail(err)
			return nil, fmt.Errorf("trace: capturing %s: %w", p.Name, err)
		}
	}
	return r.Finish()
}
