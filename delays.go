package ce

import (
	"fmt"

	"repro/internal/delaymodel"
	"repro/internal/report"
	"repro/internal/vlsi"
)

// Technology re-exports the process technology type.
type Technology = vlsi.Technology

// Technologies returns the three studied processes (0.8, 0.35, 0.18 µm).
func Technologies() []Technology { return vlsi.Technologies() }

// TechnologyByName resolves "0.8um", "0.35um" or "0.18um".
func TechnologyByName(name string) (Technology, error) { return vlsi.ByName(name) }

// AnalyzeDelays computes the Section 4 delay breakdown for one design
// point (re-export of the delay model).
func AnalyzeDelays(t Technology, issueWidth, windowSize int) (delaymodel.Overall, error) {
	return delaymodel.Analyze(t, issueWidth, windowSize)
}

// Figure3 regenerates Figure 3: rename delay and its components versus
// issue width, for each technology.
func Figure3() (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Figure 3: rename delay (ps) versus issue width",
		Headers: []string{"tech", "issue width", "decoder", "wordline", "bitline", "senseamp", "total"},
	}
	for _, tech := range vlsi.Technologies() {
		for _, iw := range []int{2, 4, 8} {
			d, err := delaymodel.Rename(tech, iw)
			if err != nil {
				return nil, err
			}
			tbl.AddRowf(tech.Name, iw, d.Decoder, d.Wordline, d.Bitline, d.SenseAmp, d.Total())
		}
	}
	return tbl, nil
}

// Figure5 regenerates Figure 5: wakeup delay versus window size for 2-,
// 4- and 8-way issue in 0.18 µm technology.
func Figure5() (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Figure 5: wakeup delay (ps) versus window size, 0.18um",
		Headers: []string{"window size", "2-way", "4-way", "8-way"},
	}
	for ws := 8; ws <= 64; ws += 8 {
		row := []interface{}{ws}
		for _, iw := range []int{2, 4, 8} {
			d, err := delaymodel.Wakeup(vlsi.Tech018, iw, ws)
			if err != nil {
				return nil, err
			}
			row = append(row, d.Total())
		}
		tbl.AddRowf(row...)
	}
	return tbl, nil
}

// Figure6 regenerates Figure 6: wakeup delay components versus feature
// size for an 8-way, 64-entry window.
func Figure6() (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Figure 6: wakeup delay (ps) versus feature size (8-way, 64 entries)",
		Headers: []string{"tech", "tag drive", "tag match", "match OR", "total", "broadcast fraction"},
	}
	for _, tech := range vlsi.Technologies() {
		d, err := delaymodel.Wakeup(tech, 8, 64)
		if err != nil {
			return nil, err
		}
		frac := (d.TagDrive + d.TagMatch) / d.Total()
		tbl.AddRowf(tech.Name, d.TagDrive, d.TagMatch, d.MatchOR, d.Total(),
			fmt.Sprintf("%.0f%%", frac*100))
	}
	return tbl, nil
}

// Figure8 regenerates Figure 8: selection delay and its components versus
// window size, for each technology.
func Figure8() (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Figure 8: selection delay (ps) versus window size",
		Headers: []string{"tech", "window size", "request prop.", "root", "grant prop.", "total"},
	}
	for _, tech := range vlsi.Technologies() {
		for _, ws := range []int{16, 32, 64, 128} {
			d, err := delaymodel.Select(tech, ws)
			if err != nil {
				return nil, err
			}
			tbl.AddRowf(tech.Name, ws, d.RequestPropagation, d.Root, d.GrantPropagation, d.Total())
		}
	}
	return tbl, nil
}

// Table1 regenerates Table 1: bypass wire lengths and delays for 4-way and
// 8-way machines (identical across technologies by the scaling model).
func Table1() (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Table 1: bypass delays",
		Headers: []string{"issue width", "wire length (lambda)", "delay (ps)"},
	}
	for _, iw := range []int{4, 8} {
		d, err := delaymodel.Bypass(vlsi.Tech018, iw)
		if err != nil {
			return nil, err
		}
		tbl.AddRowf(iw, fmt.Sprintf("%.0f", d.WireLengthLambda), fmt.Sprintf("%.1f", d.Delay))
	}
	return tbl, nil
}

// Table2 regenerates Table 2: overall rename, window and bypass delays for
// the (4-way, 32-entry) and (8-way, 64-entry) design points in all three
// technologies.
func Table2() (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Table 2: overall delay results",
		Headers: []string{"tech", "issue width", "window size", "rename (ps)", "wakeup+select (ps)", "bypass (ps)"},
	}
	for _, tech := range vlsi.Technologies() {
		for _, pt := range []struct{ iw, ws int }{{4, 32}, {8, 64}} {
			o, err := delaymodel.Analyze(tech, pt.iw, pt.ws)
			if err != nil {
				return nil, err
			}
			tbl.AddRowf(tech.Name, pt.iw, pt.ws,
				fmt.Sprintf("%.1f", o.Rename.Total()),
				fmt.Sprintf("%.1f", o.WakeupSelect()),
				fmt.Sprintf("%.1f", o.Bypass.Delay))
		}
	}
	return tbl, nil
}

// Table4 regenerates Table 4: the dependence-based microarchitecture's
// reservation-table delay in 0.18 µm technology.
func Table4() (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Table 4: reservation table delay, 0.18um",
		Headers: []string{"issue width", "physical registers", "table entries", "bits per entry", "delay (ps)"},
	}
	for _, pt := range []struct{ iw, regs int }{{4, 80}, {8, 128}} {
		d, err := delaymodel.ReservationTable(vlsi.Tech018, pt.iw, pt.regs)
		if err != nil {
			return nil, err
		}
		tbl.AddRowf(pt.iw, pt.regs, (pt.regs+7)/8, 8, fmt.Sprintf("%.1f", d))
	}
	return tbl, nil
}

// ClockRatio estimates the clock-speed advantage of the dependence-based
// microarchitecture over the 8-way window machine in the given technology
// (Section 5.5: ≈1.25 at 0.18 µm using the conservative bound).
func ClockRatio(t Technology) (float64, error) {
	est, err := delaymodel.ClockEstimate(t)
	if err != nil {
		return 0, err
	}
	win, err := delaymodel.Analyze(t, 8, 64)
	if err != nil {
		return 0, err
	}
	return win.WakeupSelect() / est.Conservative, nil
}

// MemoryDelays reports the Section 2.1 companion structures — register
// file and data cache access times — including the Section 5.4 clustered
// register file comparison and Section 6's pipelining observation
// (extension; the paper cites Farkas et al. and Wada/Wilton-Jouppi for
// these).
func MemoryDelays() (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Register file and cache access times",
		Headers: []string{"tech", "structure", "delay (ps)", "stages at window clock"},
	}
	for _, tech := range vlsi.Technologies() {
		win, err := delaymodel.Analyze(tech, 8, 64)
		if err != nil {
			return nil, err
		}
		clock := win.WakeupSelect()

		cmp, err := delaymodel.CompareClusteredRegFile(tech, 120, 8, 2)
		if err != nil {
			return nil, err
		}
		addRow := func(name string, d float64) error {
			stages, err := delaymodel.PipelineStages(d, clock)
			if err != nil {
				return err
			}
			tbl.AddRowf(tech.Name, name, fmt.Sprintf("%.1f", d), stages)
			return nil
		}
		if err := addRow(fmt.Sprintf("regfile 120x%dp (central 8-way)", cmp.CentralPorts), cmp.CentralDelay.Total()); err != nil {
			return nil, err
		}
		if err := addRow(fmt.Sprintf("regfile 120x%dp (per-cluster copy)", cmp.ClusterPorts), cmp.ClusterDelay.Total()); err != nil {
			return nil, err
		}
		dc, err := delaymodel.CacheAccess(tech, 32<<10, 2)
		if err != nil {
			return nil, err
		}
		if err := addRow("32KB 2-way D-cache", dc.Total()); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// RenameSchemes compares the RAM and CAM rename schemes of Section 4.1.1
// and reports the dependence-check logic delay the paper shows is hidden
// behind the map-table access.
func RenameSchemes() (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Rename scheme comparison (Section 4.1.1)",
		Headers: []string{"tech", "issue width", "RAM scheme (ps)", "CAM scheme (ps)", "dependence check (ps)", "check hidden"},
	}
	for _, tech := range vlsi.Technologies() {
		for _, pt := range []struct{ iw, regs int }{{2, 72}, {4, 80}, {8, 128}} {
			ram, err := delaymodel.Rename(tech, pt.iw)
			if err != nil {
				return nil, err
			}
			cam, err := delaymodel.RenameCAM(tech, pt.iw, pt.regs)
			if err != nil {
				return nil, err
			}
			dc, err := delaymodel.DependenceCheck(tech, pt.iw)
			if err != nil {
				return nil, err
			}
			hidden := "yes"
			if dc >= ram.Total() {
				hidden = "NO"
			}
			tbl.AddRowf(tech.Name, pt.iw,
				fmt.Sprintf("%.1f", ram.Total()),
				fmt.Sprintf("%.1f", cam.Total()),
				fmt.Sprintf("%.1f", dc), hidden)
		}
	}
	return tbl, nil
}

// AreaComparison reports first-order issue-logic die areas (λ²) for the
// window machine versus the dependence-based machine — the paper's intro
// names area as an alternative complexity metric; this extension
// quantifies it for the two organizations.
func AreaComparison() (*report.Table, error) {
	tbl := &report.Table{
		Title:   "Issue-logic area (million λ², technology-independent)",
		Headers: []string{"issue width", "CAM window + select", "FIFO storage + reservation table", "ratio"},
	}
	for _, iw := range []int{4, 8} {
		entries := 64
		regs := 120
		a, err := delaymodel.IssueAreaEstimate(vlsi.Tech018, iw, entries, regs)
		if err != nil {
			return nil, err
		}
		win := a.WindowTotal() / 1e6
		dep := a.DependenceTotal() / 1e6
		tbl.AddRowf(iw, fmt.Sprintf("%.2f", win), fmt.Sprintf("%.2f", dep),
			fmt.Sprintf("%.1fx", win/dep))
	}
	return tbl, nil
}
