package emu

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// StateHash returns a digest of the machine's architectural state:
// registers, output stream, and memory. Two machines that executed the
// same program to the same point hash equally; any divergence in a
// register, an emitted value, or a memory byte changes the digest.
//
// Only non-zero bytes contribute (keyed by address), so a page that was
// allocated and then restored to all zeroes — as happens when a
// speculative write journal is rolled back — hashes identically to a
// page that was never touched.
func (m *Machine) StateHash() [32]byte {
	h := sha256.New()
	var w [8]byte
	for _, r := range m.regs {
		binary.LittleEndian.PutUint32(w[:4], uint32(r))
		h.Write(w[:4])
	}
	binary.LittleEndian.PutUint64(w[:], uint64(len(m.Output)))
	h.Write(w[:])
	for _, v := range m.Output {
		binary.LittleEndian.PutUint32(w[:4], uint32(v))
		h.Write(w[:4])
	}
	pages := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		pages = append(pages, pn)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, pn := range pages {
		p := m.pages[pn]
		base := pn << pageBits
		for i, b := range p {
			if b != 0 {
				binary.LittleEndian.PutUint32(w[:4], base|uint32(i))
				w[4] = b
				h.Write(w[:5])
			}
		}
	}
	return [32]byte(h.Sum(nil))
}
