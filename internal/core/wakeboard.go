package core

import "math"

// NeverWake is returned by Scheduler.NextWake when the scheduler holds no
// buffered uops: no future cycle can see it offer an issue candidate.
const NeverWake int64 = math.MaxInt64

// WakeNow is returned by Scheduler.NextWake when an issue candidate is
// already awake: Select must run this cycle.
const WakeNow int64 = math.MinInt64

// wakeBoard is the event-driven wakeup structure shared by CentralWindow
// and FIFOBank. Instead of rescanning every buffered uop each cycle, the
// board tracks three disjoint sets:
//
//   - waiters[p]: uops with at least one source whose producer has not
//     issued yet, filed under each such source's physical register (the
//     paper's Section 4.2 point that wakeup work should be proportional
//     to result events, not window size);
//   - sleeping: uops whose producers have all issued but whose earliest
//     possible issue cycle (WakeCycle) is still in the future, in a
//     min-heap on (WakeCycle, Seq);
//   - ready: uops whose WakeCycle has arrived, in Seq (age) order — the
//     candidate list Select walks.
//
// WakeCycle is a lower bound on the first cycle the uop could issue in
// *some* cluster (the pipeline computes it from min-over-clusters operand
// readiness), so the ready list is a superset of the truly issuable uops;
// the pipeline's tryIssue callback remains the authority on per-cluster
// readiness, functional units and ports. That makes the issued set — and
// therefore all timing — identical to the full-scan implementation.
type wakeBoard struct {
	waiters  [][]*Uop // indexed by physical register
	sleeping []*Uop   // min-heap on (WakeCycle, Seq)
	ready    []*Uop   // Seq-ordered issue candidates
}

// add registers a dispatched uop: as a waiter on each pending source, or
// straight into the sleeping heap when every producer has already issued.
//
//ce:hot
func (b *wakeBoard) add(u *Uop) {
	if u.WakePending == 0 {
		b.push(u)
		return
	}
	for i, p := range u.PhysSrcs {
		if u.WakeMask&(1<<uint(i)) == 0 {
			continue
		}
		for int(p) >= len(b.waiters) {
			b.waiters = append(b.waiters, nil)
		}
		b.waiters[p] = append(b.waiters[p], u)
	}
}

// wakeup broadcasts that the producer of physical register p has issued
// and its result is consumable (in the nearest cluster) at readyCycle.
// Waiters on p lose one pending source; those with none left go to sleep
// until their WakeCycle.
//
//ce:hot
func (b *wakeBoard) wakeup(p int16, readyCycle int64) {
	if int(p) >= len(b.waiters) {
		return
	}
	ws := b.waiters[p]
	if len(ws) == 0 {
		return
	}
	b.waiters[p] = ws[:0]
	for _, u := range ws {
		if readyCycle > u.WakeCycle {
			u.WakeCycle = readyCycle
		}
		u.WakePending--
		if u.WakePending == 0 {
			b.push(u)
		}
	}
	for i := range ws {
		ws[i] = nil
	}
}

// push inserts u into the sleeping min-heap.
//
//ce:hot
func (b *wakeBoard) push(u *Uop) {
	b.sleeping = append(b.sleeping, u)
	i := len(b.sleeping) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !wakeLess(b.sleeping[i], b.sleeping[parent]) {
			break
		}
		b.sleeping[i], b.sleeping[parent] = b.sleeping[parent], b.sleeping[i]
		i = parent
	}
}

func wakeLess(a, b *Uop) bool {
	return a.WakeCycle < b.WakeCycle || (a.WakeCycle == b.WakeCycle && a.Seq < b.Seq)
}

// promote moves every sleeping uop whose WakeCycle has arrived into the
// Seq-ordered ready list.
//
//ce:hot
func (b *wakeBoard) promote(now int64) {
	for len(b.sleeping) > 0 && b.sleeping[0].WakeCycle <= now {
		u := b.popSleeping()
		// Insert by binary search; promotions arrive roughly in age order,
		// so the shifted suffix is short.
		lo, hi := 0, len(b.ready)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b.ready[mid].Seq < u.Seq {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b.ready = append(b.ready, nil)
		copy(b.ready[lo+1:], b.ready[lo:])
		b.ready[lo] = u
	}
}

// popSleeping removes the heap minimum.
//
//ce:hot
func (b *wakeBoard) popSleeping() *Uop {
	u := b.sleeping[0]
	last := len(b.sleeping) - 1
	b.sleeping[0] = b.sleeping[last]
	b.sleeping[last] = nil
	b.sleeping = b.sleeping[:last]
	b.siftDown(0)
	return u
}

//ce:hot
func (b *wakeBoard) siftDown(i int) {
	n := len(b.sleeping)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && wakeLess(b.sleeping[l], b.sleeping[min]) {
			min = l
		}
		if r < n && wakeLess(b.sleeping[r], b.sleeping[min]) {
			min = r
		}
		if min == i {
			return
		}
		b.sleeping[i], b.sleeping[min] = b.sleeping[min], b.sleeping[i]
		i = min
	}
}

// nextWake reports the earliest cycle Select may offer a candidate.
//
//ce:hot
func (b *wakeBoard) nextWake() int64 {
	if len(b.ready) > 0 {
		return WakeNow
	}
	if len(b.sleeping) > 0 {
		return b.sleeping[0].WakeCycle
	}
	return NeverWake
}

// squash drops every tracked uop with Seq > afterSeq and returns how many
// distinct uops were removed. Wrong-path consumers are strictly younger
// than the branch, and so are consumers of any squashed producer, so
// surviving entries never reference removed uops.
func (b *wakeBoard) squash(afterSeq uint64) int {
	removed := 0
	// Ready is Seq-ordered: wrong-path uops form a suffix.
	for i, u := range b.ready {
		if u.Seq > afterSeq {
			removed += len(b.ready) - i
			for j := i; j < len(b.ready); j++ {
				b.ready[j] = nil
			}
			b.ready = b.ready[:i]
			break
		}
	}
	// Sleeping: compact in place, then restore the heap property.
	kept := b.sleeping[:0]
	for _, u := range b.sleeping {
		if u.Seq <= afterSeq {
			kept = append(kept, u)
		} else {
			removed++
		}
	}
	for i := len(kept); i < len(b.sleeping); i++ {
		b.sleeping[i] = nil
	}
	b.sleeping = kept
	for i := len(b.sleeping)/2 - 1; i >= 0; i-- {
		b.siftDown(i)
	}
	// Waiters: a waiting uop holds exactly WakePending entries across all
	// lists, so it is counted once — when its last entry is dropped.
	for p, ws := range b.waiters {
		n := 0
		for _, u := range ws {
			if u.Seq <= afterSeq {
				ws[n] = u
				n++
				continue
			}
			u.WakePending--
			if u.WakePending == 0 {
				removed++
			}
		}
		for i := n; i < len(ws); i++ {
			ws[i] = nil
		}
		b.waiters[p] = ws[:n]
	}
	return removed
}

// empty reports whether the board tracks no uops.
func (b *wakeBoard) empty() bool {
	if len(b.ready) > 0 || len(b.sleeping) > 0 {
		return false
	}
	for _, ws := range b.waiters {
		if len(ws) > 0 {
			return false
		}
	}
	return true
}
