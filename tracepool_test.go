package ce

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/prog"
	"repro/internal/trace"
)

// TestEngineTracePoolEquivalence pins the engine-level replay contract:
// a matrix run with the trace pool (default) and one with lockstep
// drive produce identical simulation results, each workload is captured
// exactly once however many configurations consume it, wrong-path
// configurations fall back to lockstep, and the capture cost is
// attributed to the pool rather than to any run.
func TestEngineTracePoolEquivalence(t *testing.T) {
	wp := BaselineConfig()
	wp.WrongPathExecution = true
	wp.Name += "+wrong-path"
	cfgs := []Config{BaselineConfig(), DependenceConfig(), wp}
	workloads := []string{"compress", "micro.branchy"}

	replayEng := NewEngine()
	lockEng := NewEngine()
	lockEng.SetTraceReplay(false)

	got, err := replayEng.RunMatrix(cfgs, workloads)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lockEng.RunMatrix(cfgs, workloads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		for j := range workloads {
			a, b := got[i][j], want[i][j]
			if a.IssuedPerCycle.Total() != b.IssuedPerCycle.Total() ||
				a.IssuedPerCycle.Mean() != b.IssuedPerCycle.Mean() {
				t.Errorf("%s/%s: issue histograms diverge", cfgs[i].Name, workloads[j])
			}
			a.HostAllocs, b.HostAllocs = 0, 0
			a.HostWallSeconds, b.HostWallSeconds = 0, 0
			a.IssuedPerCycle, b.IssuedPerCycle = nil, nil
			if a != b {
				t.Errorf("%s/%s: replay-driven stats diverge from lockstep:\n  %+v\n  %+v",
					cfgs[i].Name, workloads[j], a, b)
			}
		}
	}

	ts := replayEng.TraceStats()
	if ts.Captures != len(workloads) || ts.DiskHits != 0 {
		t.Errorf("replay engine captured %d workloads (%d disk hits), want %d captures",
			ts.Captures, ts.DiskHits, len(workloads))
	}
	if ts.ReplayRuns != 4 || ts.LockstepRuns != 2 {
		t.Errorf("replay engine ran %d replay / %d lockstep sims, want 4 / 2 (wrong-path falls back)",
			ts.ReplayRuns, ts.LockstepRuns)
	}
	if ts.StepsReplayed == 0 || ts.StepsExecuted == 0 {
		t.Errorf("degenerate step balance: %+v", ts)
	}
	if ls := lockEng.TraceStats(); ls.Captures != 0 || ls.ReplayRuns != 0 || ls.LockstepRuns != 6 {
		t.Errorf("lockstep engine touched the trace pool: %+v", ls)
	}

	// Per-run metrics: fresh runs are marked by drive mode, and capture
	// time is reported separately from (not inside) the run's wall time.
	for _, m := range replayEng.Metrics() {
		if m.Cached {
			continue
		}
		wantReplay := m.Config != wp.Name
		if m.Replayed != wantReplay {
			t.Errorf("%s/%s: Replayed = %v, want %v", m.Config, m.Workload, m.Replayed, wantReplay)
		}
		if m.WallSeconds < 0 || m.CaptureSeconds < 0 {
			t.Errorf("%s/%s: negative attribution: wall %g capture %g",
				m.Config, m.Workload, m.WallSeconds, m.CaptureSeconds)
		}
	}
	for _, m := range lockEng.Metrics() {
		if !m.Cached && (m.Replayed || m.CaptureSeconds != 0) {
			t.Errorf("%s/%s: lockstep run carries replay attribution: %+v", m.Config, m.Workload, m)
		}
	}
}

// TestSetTraceDirFlushesPool is the regression test for SetTraceDir
// called after traces are already pooled: the earlier captures used to
// stay in-memory only (never persisted anywhere), so the directory
// silently missed exactly the workloads that ran first. A directory
// change now flushes every completed capture to the new directory.
func TestSetTraceDirFlushesPool(t *testing.T) {
	eng := NewEngine()
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	if ts := eng.TraceStats(); ts.Captures != 1 {
		t.Fatalf("expected 1 pooled capture, got %+v", ts)
	}

	dir := t.TempDir()
	if err := eng.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}

	// The pooled trace must now exist on disk under the new directory.
	w, err := prog.ByName("micro.branchy")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ReadFile(dir, p); err != nil {
		t.Fatalf("pooled trace was not flushed to the new dir: %v", err)
	}

	// A fresh engine pointed at the same directory loads the flushed
	// trace instead of re-executing the workload.
	eng2 := NewEngine()
	if err := eng2.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	if ts := eng2.TraceStats(); ts.DiskHits != 1 || ts.Captures != 0 {
		t.Errorf("fresh engine did not load the flushed trace: %+v", ts)
	}

	// Setting the same directory again is a no-op (no error, pool kept).
	if err := eng.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunMatrix([]Config{DependenceConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	if ts := eng.TraceStats(); ts.Captures != 1 {
		t.Errorf("pool was dropped on a no-op dir change: %+v", ts)
	}
}

// TestEngineStreamingCapture pins the bounded-memory capture contract:
// with a trace directory configured, capture streams straight to disk
// and the pooled trace reports its bytes on disk, not resident.
func TestEngineStreamingCapture(t *testing.T) {
	eng := NewEngine()
	dir := t.TempDir()
	if err := eng.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	ts := eng.TraceStats()
	if ts.Captures != 1 {
		t.Fatalf("expected 1 capture, got %+v", ts)
	}
	if ts.TraceDiskBytes == 0 || ts.TraceResidentBytes != 0 {
		t.Errorf("streamed capture footprint disk=%d resident=%d, want all bytes on disk",
			ts.TraceDiskBytes, ts.TraceResidentBytes)
	}
	w, err := prog.ByName("micro.branchy")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(trace.DiskPath(dir, p)); err != nil {
		t.Errorf("streamed capture missing from the trace dir: %v", err)
	}
}

// TestEngineCaptureFailureCounted pins the lockstep-fallback
// accounting: when the trace cannot be captured, the run still succeeds
// by lockstep execution, and the fallback is counted rather than
// silent.
func TestEngineCaptureFailureCounted(t *testing.T) {
	eng := NewEngine()
	dir := filepath.Join(t.TempDir(), "traces")
	if err := eng.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	// Replace the trace directory with a regular file: ReadFile and the
	// streaming capture both fail with ENOTDIR, forcing the fallback.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	lock := NewEngine()
	lock.SetTraceReplay(false)
	want, err := lock.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Cycles != want[0][0].Cycles {
		t.Errorf("fallback run diverges: %d cycles vs %d", got[0][0].Cycles, want[0][0].Cycles)
	}
	ts := eng.TraceStats()
	if ts.CaptureFailures != 1 || ts.LockstepRuns != 1 || ts.ReplayRuns != 0 {
		t.Errorf("fallback not accounted: %+v", ts)
	}
	for _, m := range eng.Metrics() {
		if m.Replayed {
			t.Errorf("%s/%s marked replayed despite capture failure", m.Config, m.Workload)
		}
	}
}

// TestEngineCorruptTraceRecaptured pins the mid-replay corruption path:
// a trace whose on-disk chunk is flipped after capture fails its lazy
// checksum at the next load, is dropped and invalidated, and the run
// transparently recaptures and retries — correct results, one
// CorruptDropped count, two Captures. The segmented variant routes the
// replay through parallel segment workers, so the corrupt chunk is
// observed (and the retry coordinated) across concurrent readers —
// which the race detector checks for tearing.
func TestEngineCorruptTraceRecaptured(t *testing.T) {
	t.Run("monolithic", func(t *testing.T) { testCorruptTraceRecaptured(t, 0) })
	t.Run("segmented", func(t *testing.T) { testCorruptTraceRecaptured(t, 4) })
}

func testCorruptTraceRecaptured(t *testing.T, segments int) {
	eng := NewEngine()
	eng.SetSegments(segments)
	dir := t.TempDir()
	if err := eng.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	w, err := prog.ByName("micro.branchy")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	path := trace.DiskPath(dir, p)
	// Flip one byte inside the first chunk's packed data (the header is
	// 40 bytes). The pooled trace reads through an open handle, so the
	// flip is visible to its next chunk load.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 40+64); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A different configuration misses the run cache and replays the now
	// rotten trace; the engine must drop it, recapture, and succeed.
	lock := NewEngine()
	lock.SetTraceReplay(false)
	want, err := lock.RunMatrix([]Config{DependenceConfig()}, []string{"micro.branchy"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunMatrix([]Config{DependenceConfig()}, []string{"micro.branchy"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Cycles != want[0][0].Cycles {
		t.Errorf("recaptured run diverges: %d cycles vs %d", got[0][0].Cycles, want[0][0].Cycles)
	}
	ts := eng.TraceStats()
	if ts.CorruptDropped != 1 {
		t.Errorf("CorruptDropped = %d, want 1 (%+v)", ts.CorruptDropped, ts)
	}
	if ts.Captures != 2 {
		t.Errorf("Captures = %d, want 2 (original + recapture)", ts.Captures)
	}
	if ts.CaptureFailures != 0 {
		t.Errorf("corruption miscounted as capture failure: %+v", ts)
	}
	// The recaptured file is intact: a fresh engine loads it from disk.
	eng2 := NewEngine()
	if err := eng2.SetTraceDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	if ts := eng2.TraceStats(); ts.DiskHits != 1 {
		t.Errorf("recaptured trace not reloadable: %+v", ts)
	}
}
