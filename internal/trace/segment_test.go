package trace

import (
	"testing"
)

// TestBoundariesCaptured pins the capture-side invariants of the
// warm-start table: one boundary every boundaryInterval records, with
// monotonically increasing stream positions inside the packed stream.
func TestBoundariesCaptured(t *testing.T) {
	p := mustProgram(t, "compress")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	want := int(tr.Steps() / boundaryInterval)
	if tr.Boundaries() != want {
		t.Fatalf("%d boundaries for %d steps, want %d", tr.Boundaries(), tr.Steps(), want)
	}
	var prev Boundary
	for i, b := range tr.bounds {
		if b.Step != uint64(i+1)*boundaryInterval {
			t.Fatalf("boundary %d at step %d, want %d", i, b.Step, uint64(i+1)*boundaryInterval)
		}
		if b.Pos <= prev.Pos || b.Pos > tr.packedLen {
			t.Fatalf("boundary %d pos %d not increasing within the stream (prev %d)", i, b.Pos, prev.Pos)
		}
		if b.PC >= uint32(len(p.Text)) {
			t.Fatalf("boundary %d pc %d outside text", i, b.PC)
		}
		prev = b
	}
}

// TestReaderAtBoundaryMatchesSequential is the seek correctness
// differential: a Reader opened at a stored boundary must produce the
// identical record suffix as a fresh Reader stepped to the same point.
func TestReaderAtBoundaryMatchesSequential(t *testing.T) {
	p := mustProgram(t, "micro.branchy")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Boundaries() == 0 {
		t.Fatalf("micro.branchy (%d steps) has no boundaries; shrink boundaryInterval or pick a longer workload", tr.Steps())
	}
	b := tr.bounds[tr.Boundaries()/2]
	seq := NewReader(tr)
	for i := uint64(0); i < b.Step; i++ {
		if _, err := seq.Step(); err != nil {
			t.Fatal(err)
		}
	}
	at, err := NewReaderAt(tr, b)
	if err != nil {
		t.Fatal(err)
	}
	if at.PC() != seq.PC() {
		t.Fatalf("seeked reader pc %d, sequential %d", at.PC(), seq.PC())
	}
	for {
		want, werr := seq.Step()
		got, gerr := at.Step()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error divergence: sequential %v, seeked %v", werr, gerr)
		}
		if werr != nil {
			break
		}
		if got != want {
			t.Fatalf("record divergence: sequential %+v, seeked %+v", want, got)
		}
	}
	if !at.Halted() {
		t.Fatal("seeked reader not halted at end of trace")
	}
}

// TestSegmentsPartition pins that Segments is an exact partition of the
// trace and degrades gracefully when the trace has fewer boundaries
// than requested cuts.
func TestSegmentsPartition(t *testing.T) {
	p := mustProgram(t, "compress")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 8, 1 << 20} {
		segs := tr.Segments(k)
		if len(segs) < 1 || len(segs) > k {
			t.Fatalf("Segments(%d) returned %d segments", k, len(segs))
		}
		if segs[0].Start.Step != 0 || segs[len(segs)-1].End.Step != tr.Steps() {
			t.Fatalf("Segments(%d) does not span the trace: [%d, %d)", k, segs[0].Start.Step, segs[len(segs)-1].End.Step)
		}
		for i, s := range segs {
			if s.Index != i {
				t.Fatalf("segment %d carries index %d", i, s.Index)
			}
			if s.Steps() == 0 {
				t.Fatalf("Segments(%d): empty segment %d", k, i)
			}
			if i > 0 && segs[i-1].End != s.Start {
				t.Fatalf("Segments(%d): gap between segment %d and %d", k, i-1, i)
			}
		}
	}
	// Absurd k degrades to at most one segment per boundary + 1.
	if got := len(tr.Segments(1 << 20)); got > tr.Boundaries()+1 {
		t.Fatalf("Segments(1<<20) = %d segments from %d boundaries", got, tr.Boundaries())
	}
}

// TestWarmStart pins warm-start boundary selection: full warmup is the
// trace start, zero warmup is the segment's own start, and a finite
// warmup backs up far enough to cover at least the requested records.
func TestWarmStart(t *testing.T) {
	p := mustProgram(t, "compress")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	segs := tr.Segments(4)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	seg := segs[2]
	if ws := tr.WarmStart(seg, -1); ws.Step != 0 {
		t.Errorf("full warmup starts at step %d, want 0", ws.Step)
	}
	if ws := tr.WarmStart(seg, 0); ws != seg.Start {
		t.Errorf("zero warmup starts at %+v, want the segment start %+v", ws, seg.Start)
	}
	w := int64(2 * boundaryInterval)
	ws := tr.WarmStart(seg, w)
	if ws.Step > seg.Start.Step-uint64(w) {
		t.Errorf("warmup %d covers only %d records", w, seg.Start.Step-ws.Step)
	}
	// A warmup longer than the prefix clamps to the start.
	if ws := tr.WarmStart(segs[0], 10); ws.Step != 0 {
		t.Errorf("over-long warmup starts at step %d, want 0", ws.Step)
	}
}

// TestDiskRoundTripBounds pins that the v2 format round-trips the
// boundary table byte-for-byte.
func TestDiskRoundTripBounds(t *testing.T) {
	p := mustProgram(t, "micro.branchy")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(tr.Marshal(), p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Boundaries() != tr.Boundaries() {
		t.Fatalf("round trip kept %d boundaries, want %d", got.Boundaries(), tr.Boundaries())
	}
	for i := range tr.bounds {
		if got.bounds[i] != tr.bounds[i] {
			t.Fatalf("boundary %d round-tripped as %+v, want %+v", i, got.bounds[i], tr.bounds[i])
		}
	}
}
