// Package hotcall seeds cross-package transitive hotlint findings: a
// //ce:hot function calling allocating helpers that live in another
// package.
package hotcall

import "allochelper"

//ce:hot
func step(buf []int) []int {
	buf = allochelper.Grow(8) // want "call to allochelper.Grow allocates \\(Grow: make allocates\\) in //ce:hot function step"
	buf = allochelper.Wrap(8) // want "call to allochelper.Wrap allocates \\(Wrap → Grow: make allocates\\) in //ce:hot function step"
	_ = allochelper.Hatched(8)
	buf = allochelper.Reset(buf)
	_ = allochelper.Add(1)
	buf = allochelper.Grow(8) //ce:alloc-ok cold resize path, measured loop never grows
	return buf
}

// refill allocates; it is not hot itself, so the finding lands at hot
// call sites with the intra-package chain.
func refill() []int {
	return make([]int, 16)
}

//ce:hot
func stepLocal() {
	_ = refill() // want "call to refill allocates \\(refill: make allocates\\) in //ce:hot function stepLocal"
}

// cold is unmarked: calling allocating helpers is fine outside //ce:hot.
func cold() []int {
	return allochelper.Wrap(4)
}
