package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
)

// buildScheduler constructs the configured scheduler. Validate has
// already rejected configurations with neither field set.
func (c *Config) buildScheduler() core.Scheduler {
	if c.NewScheduler != nil {
		return c.NewScheduler()
	}
	return c.Scheduler.Build()
}

// buildPredictor constructs the configured direction predictor (nil under
// PerfectBPred: every conditional branch is predicted correctly).
func (c *Config) buildPredictor() (bpred.Predictor, error) {
	if c.PerfectBPred {
		return nil, nil
	}
	if c.NewPredictor != nil {
		return c.NewPredictor(), nil
	}
	switch c.Predictor {
	case "", "gshare":
		return bpred.NewGshare(12, 12), nil
	case "bimodal":
		return bpred.NewBimodal(12), nil
	case "taken":
		return bpred.Static{Taken: true}, nil
	default:
		return nil, fmt.Errorf("pipeline: %s: unknown predictor %q (want gshare, bimodal or taken)", c.Name, c.Predictor)
	}
}

// predictorKey is the canonical predictor identity used in Key.
func (c *Config) predictorKey() string {
	if c.PerfectBPred {
		return "perfect"
	}
	if c.Predictor == "" {
		return "gshare"
	}
	return c.Predictor
}

func cacheKey(cc cache.Config) string {
	return fmt.Sprintf("%d/%d/%d/%d/%d", cc.SizeBytes, cc.Ways, cc.LineBytes, cc.HitCycles, cc.MissCycles)
}

// Key returns a canonical structural fingerprint of every timing-relevant
// field, and whether the configuration is fingerprintable at all. Two
// configurations with equal keys produce byte-identical Stats for any
// workload (the simulator is deterministic), so the key is a sound memo
// key for a run cache.
//
// Name is excluded — it labels reports without affecting timing, so
// renamed copies of one machine share a key. RecordTimeline and
// CheckInvariants are excluded for the same reason (they change what is
// recorded or asserted, not what happens).
// Configurations using the opaque NewScheduler/NewPredictor closures
// report ok=false and must be simulated directly.
func (c *Config) Key() (key string, ok bool) {
	if c.NewScheduler != nil || c.Scheduler == nil {
		return "", false
	}
	if c.NewPredictor != nil && !c.PerfectBPred {
		return "", false
	}
	dcache := c.DCache
	if dcache == (cache.Config{}) {
		dcache = cache.Baseline()
	}
	icache := "none"
	if c.ICache != nil {
		icache = cacheKey(*c.ICache)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fw%d|dw%d|iw%d|rw%d|rob%d|pr%d|cl%d|fu%d|ls%d|xd%d|fe%d|fq%d",
		c.FetchWidth, c.DecodeWidth, c.IssueWidth, c.RetireWidth,
		c.MaxInFlight, c.PhysRegs, c.Clusters, c.FUsPerCluster,
		c.LSPorts, c.InterClusterDelay, c.FrontEndDepth, c.FetchQueueSize)
	fmt.Fprintf(&b, "|bp=%s|pws=%v|lbe%d|ring=%v|stf=%v|fbt=%v|wpe=%v",
		c.predictorKey(), c.PipelinedWakeupSelect, c.LocalBypassExtra,
		c.RingTopology, c.StoreForwarding, c.FetchBreakOnTaken,
		c.WrongPathExecution)
	// NoCycleSkip is timing-neutral by construction (the differential
	// harness asserts it), but it stays in the key so a skip-path
	// regression could never be masked by a cache hit from the other path.
	fmt.Fprintf(&b, "|ncs=%v", c.NoCycleSkip)
	fmt.Fprintf(&b, "|sched=%s|dc=%s|ic=%s", c.Scheduler.Key(), cacheKey(dcache), icache)
	return b.String(), true
}
