package pipeline

// Tests for the allocation-free, event-driven fast path: the Uop pool,
// the ring-buffered pipeline queues, idle-cycle skipping, and the
// steady-state zero-allocation guarantee.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/prog"
)

// fastPathConfigs pairs schedulers that exercise both wake-board users.
func fastPathConfigs() []Config {
	window := cfg("window", 1, 0, window64)
	fifos := cfg("fifos", 1, 0, fifos8x8)
	return []Config{window, fifos}
}

// TestCycleSkipIsTimingNeutral runs generated programs — including
// branch-heavy ones whose squashes land mid-window — with idle-cycle
// skipping on and off and requires identical timing and statistics.
// (The differential harness in internal/verify asserts the same across
// its whole panel and corpus; this is the in-package regression test.)
func TestCycleSkipIsTimingNeutral(t *testing.T) {
	seeds := []prog.RandomConfig{
		{Seed: 1},
		{Seed: 2, Branch: 6, ALU: 4, Load: 2, Store: 2},
		{Seed: 3, LoopDepth: 4, MemWords: 8, Size: 60},
		{Seed: 4, LoopDepth: 1, Load: 6, Store: 4, ALU: 4, Branch: 1, MemWords: 512, Size: 200},
	}
	for _, rc := range seeds {
		p, err := prog.Random(rc)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range fastPathConfigs() {
			for _, wrongPath := range []bool{false, true} {
				skip := base
				skip.PerfectBPred = false
				skip.WrongPathExecution = wrongPath
				noSkip := skip
				noSkip.NoCycleSkip = true
				a := runProgram(t, skip, p)
				b := runProgram(t, noSkip, p)
				a.Config, b.Config = "", ""
				a.HostAllocs, b.HostAllocs = 0, 0
				a.HostWallSeconds, b.HostWallSeconds = 0, 0
				if a.Cycles != b.Cycles || a.Committed != b.Committed ||
					a.Mispredicts != b.Mispredicts || a.SquashedUops != b.SquashedUops ||
					a.SchedulerStalls != b.SchedulerStalls || a.ROBStalls != b.ROBStalls ||
					a.PhysRegStalls != b.PhysRegStalls || a.Cache != b.Cache {
					t.Errorf("%s seed %d wrongPath=%v: skip %+v != no-skip %+v",
						base.Name, rc.Seed, wrongPath, a, b)
				}
				if got, want := a.IssuedPerCycle.Total(), uint64(a.Cycles); got != want {
					t.Errorf("%s seed %d: skipped cycles missing from issue histogram: %d recorded, %d cycles",
						base.Name, rc.Seed, got, want)
				}
				if a.IssuedPerCycle.Mean() != b.IssuedPerCycle.Mean() {
					t.Errorf("%s seed %d: issue histogram diverges with skipping", base.Name, rc.Seed)
				}
			}
		}
	}
}

// TestCycleSkipSkipsSomething drives a latency-bound workload — every
// loop-ending branch mispredicted (static taken predictor, not-taken
// branch) and resolved by a slow dependence chain with no bypass network
// — and checks the timing is skip-invariant on a program that is mostly
// idle cycles (the case skipping exists for).
func TestCycleSkipSkipsSomething(t *testing.T) {
	src := `
		.text
		li   $s0, 50
loop:	li   $t1, 1
		addi $t1, $t1, 1
		addi $t1, $t1, 1
		addi $t1, $t1, 1
		addi $t1, $t1, 1
		addi $t1, $t1, 1
		addi $t1, $t1, 1
		addi $t1, $t1, 1
		addi $t1, $t1, 1
		addi $t1, $t1, 1
		addi $t1, $t1, 1
		addi $t1, $t1, 1
		beq  $t1, $zero, end
		addi $s0, $s0, -1
		bgtz $s0, loop
end:	out  $s0
		halt
	`
	p := mustProgram(t, src)
	c := cfg("skip", 1, 0, window64)
	c.PerfectBPred = false
	c.Predictor = "taken"
	c.LocalBypassExtra = 2 // operands only via the register file
	st := runProgram(t, c, p)
	c2 := c
	c2.NoCycleSkip = true
	st2 := runProgram(t, c2, p)
	if st.Cycles != st2.Cycles {
		t.Fatalf("cycle skip changed timing: %d vs %d cycles", st.Cycles, st2.Cycles)
	}
	if st.Mispredicts == 0 {
		t.Fatal("no mispredictions; the workload no longer exercises redirect stalls")
	}
	if st.Cycles < 2*int64(st.Committed) {
		t.Fatalf("workload not latency-bound enough to exercise skipping: %d cycles, %d committed",
			st.Cycles, st.Committed)
	}
}

// TestSteadyStateAllocationFree is the allocation guard: after warm-up,
// a full simulation of the baseline window configuration must perform
// (amortized) zero heap allocations per simulated cycle.
func TestSteadyStateAllocationFree(t *testing.T) {
	w, err := prog.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	c := cfg("alloc-guard", 1, 0, window64)
	c.PerfectBPred = false
	run := func() Stats {
		sim, err := New(c, p)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := run()
	if st.Cycles < 1000 {
		t.Fatalf("guard program too small: %d cycles", st.Cycles)
	}
	// Each run constructs a fresh Simulator (caches, rename table,
	// predictor...), so per-run allocations are bounded by a constant;
	// the per-cycle amortized count must be ~0. With the old per-fetch
	// &core.Uop and per-cycle scratch slices this was > 5 allocs/cycle.
	const maxPerRun = 2000
	allocs := testing.AllocsPerRun(5, func() { run() })
	if allocs > maxPerRun {
		t.Errorf("simulation run allocates %.0f objects (limit %d): steady state is not allocation-free (%.3f allocs/cycle over %d cycles)",
			allocs, maxPerRun, allocs/float64(st.Cycles), st.Cycles)
	}
	// HostAllocs should agree with the direct measurement's order of
	// magnitude (it includes ReadMemStats noise, so just sanity-bound it).
	if st.HostAllocs > 100*maxPerRun {
		t.Errorf("Stats.HostAllocs = %d, want construction-bounded count", st.HostAllocs)
	}
	if st.HostWallSeconds <= 0 {
		t.Errorf("Stats.HostWallSeconds = %v, want > 0", st.HostWallSeconds)
	}
}

// TestUopPoolRecycles pins the free-list behavior: Get returns reset
// uops, retains PhysSrcs capacity, and Put/Get round-trips.
func TestUopPoolRecycles(t *testing.T) {
	var pool core.UopPool
	u := pool.Get()
	u.Seq = 42
	u.PhysSrcs = append(u.PhysSrcs, 1, 2)
	u.WakePending = 2
	u.WakeCycle = 99
	u.Issued = true
	pool.Put(u)
	v := pool.Get()
	if v != u {
		t.Fatalf("pool did not recycle the uop")
	}
	if v.Seq != 0 || v.Issued || v.WakePending != 0 || v.WakeCycle != 0 || len(v.PhysSrcs) != 0 {
		t.Fatalf("recycled uop not reset: %+v", v)
	}
	if cap(v.PhysSrcs) < 2 {
		t.Fatalf("recycled uop lost PhysSrcs capacity")
	}
	w := pool.Get()
	if w == v {
		t.Fatalf("pool returned an in-use uop")
	}
}
