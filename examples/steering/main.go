// Steering replays the paper's Figure 12 example: the SPEC code segment is
// steered into four FIFOs, four instructions per cycle, with up to four
// ready instructions issuing per cycle, and the FIFO contents are printed
// after every cycle.
//
// Run with: go run ./examples/steering
package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// The Figure 12 code segment. Registers produced within the segment are
// modelled as physical registers; operands computed before the segment are
// already available and need no dependence edge.
var segment = []struct {
	text string
	dest int16
	srcs []int16
}{
	{"addu $18,$0,$2", 50, nil},
	{"addiu $2,$0,-1", 51, nil},
	{"beq $18,$2,L2", -1, []int16{50, 51}},
	{"lw $4,-32768($28)", 52, nil},
	{"sllv $2,$18,$20", 53, []int16{50}},
	{"xor $16,$2,$19", 54, []int16{53}},
	{"lw $3,-32676($28)", 55, nil},
	{"sll $2,$16,0x2", 56, []int16{54}},
	{"addu $2,$2,$23", 57, []int16{56}},
	{"lw $2,0($2)", 58, []int16{57}},
	{"sllv $4,$18,$4", 59, []int16{50, 52}},
	{"addu $17,$4,$19", 60, []int16{59}},
	{"addiu $3,$3,1", 61, []int16{55}},
	{"sw $3,-32676($28)", -1, []int16{61}},
	{"beq $2,$17,L3", -1, []int16{58, 60}},
}

func main() {
	bank := core.NewFIFOBank(core.FIFOBankConfig{
		Name: "fig12", Clusters: 1, FIFOsPerCluster: 4, Depth: 8,
	})
	uops := make([]*core.Uop, len(segment))
	for i, s := range segment {
		uops[i] = &core.Uop{Seq: uint64(i), PhysSrcs: s.srcs, PhysDest: s.dest, Cluster: -1, FIFO: -1}
	}

	fmt.Println("Figure 12: dependence-based steering of a SPEC code segment")
	fmt.Println("(4 FIFOs, steer 4 per cycle, issue up to 4 ready per cycle)")
	fmt.Println()
	for i, s := range segment {
		fmt.Printf("  %2d: %s\n", i, s.text)
	}
	fmt.Println()

	produced := map[int16]bool{}
	next := 0
	for cycle := 1; next < len(uops) || bank.Len() > 0; cycle++ {
		var steered []uint64
		for n := 0; n < 4 && next < len(uops); n++ {
			if !bank.Dispatch(uops[next]) {
				break // steering stall: retry next cycle
			}
			steered = append(steered, uops[next].Seq)
			next++
		}
		var issuedNow []uint64
		var done []int16
		n := 0
		bank.Select(int64(cycle), func(u *core.Uop) bool {
			if n >= 4 {
				return false
			}
			for _, p := range u.PhysSrcs {
				if p >= 0 && !produced[p] {
					return false
				}
			}
			n++
			issuedNow = append(issuedNow, u.Seq)
			if u.PhysDest >= 0 {
				done = append(done, u.PhysDest)
			}
			return true
		})
		for _, p := range done {
			produced[p] = true
		}

		fmt.Printf("cycle %d: steered %v, issued %v\n", cycle, fmtSeqs(steered), fmtSeqs(issuedNow))
		for f, q := range bank.FIFOContents() {
			fmt.Printf("  FIFO %d: %s\n", f, fmtQueue(q))
		}
	}
	fmt.Println("\nAll instructions issued; dependent chains travelled together and only")
	fmt.Println("FIFO heads ever needed wakeup/select — the paper's key simplification.")
}

func fmtSeqs(s []uint64) string {
	if len(s) == 0 {
		return "-"
	}
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func fmtQueue(q []uint64) string {
	if len(q) == 0 {
		return "(empty)"
	}
	return "head→ " + fmtSeqs(q)
}
