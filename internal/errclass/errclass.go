// Package errclass classifies failures crossing the persistence
// boundary into two kinds the rest of the system dispatches on:
//
//   - Transient: the environment misbehaved (a full disk, a vanished
//     directory, EMFILE). A retry may not reproduce it, so callers such
//     as runcache must deliver it without memoizing it.
//   - Corrupt: an on-disk artifact failed validation (torn write, bit
//     rot, checksum mismatch). The artifact can be deleted and rebuilt,
//     so the error is retryable too — but it names a repairable store
//     fault, not a resource blip, and is counted separately.
//
// Everything else — simulator validation errors, runaway-guard trips —
// is deterministic: the same inputs fail the same way every time, and
// memoizing the failure is both safe and desirable.
//
// The package is a leaf (stdlib only) so that runcache, lease, trace and
// the server can all share one vocabulary without import cycles.
package errclass

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// ErrTransient marks an error as environmental rather than
// deterministic; see Transient and IsTransient.
var ErrTransient = errors.New("transient failure")

// ErrCorrupt marks an error as a validation failure of a stored
// artifact; see Corrupt and IsCorrupt.
var ErrCorrupt = errors.New("corrupt artifact")

// Transient wraps err so IsTransient reports true: the caller is
// asserting the failure came from the environment (I/O, resources), not
// from the deterministic computation itself.
//
//ce:classifier
func Transient(err error) error {
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// Corrupt wraps err so IsCorrupt reports true: the caller is asserting
// a stored artifact failed validation and can be deleted and rebuilt.
//
//ce:classifier
func Corrupt(err error) error {
	return fmt.Errorf("%w: %w", ErrCorrupt, err)
}

// IsTransient reports whether err describes an environmental failure —
// one a retry may not reproduce — rather than a deterministic property
// of the computation. Raw operating-system errors count even without an
// explicit ErrTransient wrap, so an unclassified I/O failure that slips
// through still fails safe (toward retry, not memoization).
func IsTransient(err error) bool {
	if errors.Is(err, ErrTransient) {
		return true
	}
	var (
		pathErr *os.PathError
		linkErr *os.LinkError
		sysErr  *os.SyscallError
		errno   syscall.Errno
	)
	return errors.As(err, &pathErr) || errors.As(err, &linkErr) ||
		errors.As(err, &sysErr) || errors.As(err, &errno)
}

// IsCorrupt reports whether err describes a corrupt stored artifact.
func IsCorrupt(err error) bool {
	return errors.Is(err, ErrCorrupt)
}
