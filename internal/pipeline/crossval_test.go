package pipeline

import (
	"testing"

	"repro/internal/profile"
	"repro/internal/prog"
)

// TestIPCBoundedByDataflowLimit cross-validates the timing simulator
// against the dynamic profiler: with perfect branch prediction and a
// flexible window, committed IPC can never exceed the workload's
// dataflow-limit ILP (the IPC of an infinite machine with unit latencies),
// nor the issue width. Violating either bound would mean the simulator
// issues instructions before their operands exist.
func TestIPCBoundedByDataflowLimit(t *testing.T) {
	for _, name := range prog.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := prog.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := w.Program()
			if err != nil {
				t.Fatal(err)
			}
			prof, err := profile.Profile(p, 50_000_000)
			if err != nil {
				t.Fatal(err)
			}
			c := cfg("bound", 1, 0, window64) // perfect branch prediction
			sim, err := New(c, p)
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(200_000_000)
			if err != nil {
				t.Fatal(err)
			}
			ipc := st.IPC()
			if ipc > float64(c.IssueWidth) {
				t.Errorf("IPC %.2f exceeds issue width %d", ipc, c.IssueWidth)
			}
			// Loads can take >1 cycle in the simulator while the dataflow
			// bound assumes unit latency, so the bound holds with margin
			// to spare; allow 1% numerical slack.
			if ipc > prof.DataflowILP*1.01 {
				t.Errorf("IPC %.2f exceeds the dataflow-limit ILP %.2f", ipc, prof.DataflowILP)
			}
		})
	}
}
