// Package pipeline implements the out-of-order superscalar timing
// simulator used for the paper's Section 5 evaluation. It models the
// baseline pipeline of Figure 1 (fetch, decode/rename, dispatch,
// wakeup+select, execute with bypass, commit) with the Table 3 machine
// parameters, and accepts any core.Scheduler, so the same engine times the
// conventional window machine, the dependence-based FIFO machine, and the
// clustered organizations of Section 5.6.
//
// The simulator is trace-driven, like the paper's modified SimpleScalar:
// the functional emulator supplies resolved dynamic instructions, branch
// predictions are checked against actual outcomes, and a misprediction
// stalls fetch until the branch executes (no wrong-path execution).
//
// The package is bit-deterministic: identical configurations produce
// identical Stats on every run, which the run cache and the differential
// fuzzing harness both rely on. Enforced by detlint (cmd/celint).
//
//ce:deterministic
package pipeline

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/rename"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config describes one machine organization.
//
// Every exported field must either feed Key() or carry a
// //ce:timing-neutral annotation, so the run cache can never serve stats
// from a behaviorally different machine. Enforced by keylint.
//
//ce:keyed
type Config struct {
	// Name labels the configuration in reports.
	Name string //ce:timing-neutral
	// FetchWidth is instructions fetched per cycle ("any 8 instructions"
	// in Table 3 — fetch may span taken branches).
	FetchWidth int
	// DecodeWidth bounds instructions renamed/dispatched per cycle.
	DecodeWidth int
	// IssueWidth bounds instructions issued per cycle across all clusters.
	IssueWidth int
	// RetireWidth bounds instructions committed per cycle.
	RetireWidth int
	// MaxInFlight is the reorder-buffer capacity.
	MaxInFlight int
	// PhysRegs is the number of physical integer registers.
	PhysRegs int
	// Clusters and FUsPerCluster shape the execution core; total
	// functional units = Clusters × FUsPerCluster.
	Clusters      int
	FUsPerCluster int
	// LSPorts bounds loads+stores issued per cycle (shared by clusters).
	LSPorts int
	// InterClusterDelay is the extra bypass latency, in cycles, for a
	// value consumed in a different cluster than it was produced in
	// (0 for uniform single-cycle bypass).
	InterClusterDelay int
	// FrontEndDepth is the fetch-to-dispatch latency in cycles
	// (decode + rename stages).
	FrontEndDepth int
	// FetchQueueSize bounds instructions fetched but not yet dispatched.
	FetchQueueSize int
	// PerfectBPred disables the direction predictor (every conditional
	// branch predicted correctly); unconditional control is always
	// predicted perfectly, per Table 3.
	PerfectBPred bool

	// PipelinedWakeupSelect models splitting the atomic wakeup+select
	// loop across two pipeline stages (Figure 10): dependent instructions
	// can no longer issue in consecutive cycles — every result becomes
	// visible to consumers one cycle later. The paper argues this is why
	// window logic must fit in a single cycle; the ablation quantifies it.
	PipelinedWakeupSelect bool
	// LocalBypassExtra adds cycles before a result is consumable in its
	// own cluster (0 = the full single-cycle bypass network of Table 3;
	// 2 ≈ no bypassing, operands only via the register file — the
	// incomplete-bypassing regime of Ahuja et al. discussed in §4.5).
	LocalBypassExtra int
	// RingTopology routes inter-cluster bypasses around a unidirectional
	// ring (the PEWs-style interconnect of §5.6.2's discussion): the
	// extra latency is InterClusterDelay per hop instead of a flat
	// InterClusterDelay to every other cluster.
	RingTopology bool
	// StoreForwarding lets a load whose address matches an older
	// in-flight store receive the value at hit latency over the bypass
	// network instead of accessing the data cache.
	StoreForwarding bool
	// FetchBreakOnTaken ends a fetch cycle at the first taken control
	// instruction (Table 3's baseline fetches "any 8 instructions", i.e.
	// across taken branches; this models a conventional fetch unit).
	FetchBreakOnTaken bool
	// RecordTimeline captures a per-instruction pipeline timeline
	// (retrievable via Timeline) — intended for small programs. Pure
	// observation: cycle-for-cycle timing is unchanged, so it is excluded
	// from Key (cached Stats stay valid either way).
	RecordTimeline bool //ce:timing-neutral
	// CheckInvariants arms the cycle-level invariant checker (see
	// invariants.go): Run fails on the first violated pipeline invariant.
	// A verification instrument for tests and the differential harness —
	// it adds per-cycle ROB scans, so it stays off outside of them.
	// Observational only, like RecordTimeline: excluded from Key.
	CheckInvariants bool //ce:timing-neutral
	// NoCycleSkip disables idle-cycle skipping (the event-driven fast
	// path that jumps over cycles on which commit, issue, dispatch and
	// fetch are all provably blocked). Skipping is timing-neutral — the
	// differential harness asserts identical cycle counts with it on and
	// off — so this exists for that assertion and for debugging. Skipping
	// is also disabled automatically by CheckInvariants or RecordTimeline,
	// which observe individual idle cycles.
	NoCycleSkip bool
	// WrongPathExecution upgrades the misprediction model: instead of
	// stalling fetch until the branch resolves (the trace-driven
	// SimpleScalar approximation), fetch follows the predicted path,
	// executing wrong-path instructions speculatively — they occupy
	// physical registers and scheduler slots and pollute the data cache —
	// and squashes them when the branch resolves.
	WrongPathExecution bool

	// Scheduler describes the dispatch/issue structure declaratively.
	// Spec-built configurations can be fingerprinted (Key) and therefore
	// memoized across runs.
	Scheduler *core.SchedulerSpec
	// NewScheduler builds the dispatch/issue structure for a run. It is
	// the escape hatch for custom schedulers; when set it takes
	// precedence over Scheduler and makes the configuration opaque to
	// the run cache.
	NewScheduler func() core.Scheduler
	// Predictor selects the direction predictor by name: "gshare" (the
	// paper's 4K-counter, 12-bit-history default, also chosen by ""),
	// "bimodal" or "taken". Ignored under PerfectBPred.
	Predictor string
	// NewPredictor builds the direction predictor for a run; when set it
	// takes precedence over Predictor and makes the configuration opaque
	// to the run cache. Nil selects Predictor.
	NewPredictor func() bpred.Predictor
	// DCache is the data cache geometry; zero value selects the paper's
	// baseline cache.
	DCache cache.Config
	// ICache, when non-nil, models an instruction cache: a fetch cycle
	// touching a new line that misses stalls fetch for the miss penalty.
	// Nil is the paper's perfect instruction cache (Table 3).
	ICache *cache.Config
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	switch {
	case c.NewScheduler == nil && c.Scheduler == nil:
		return fmt.Errorf("pipeline: %s: no scheduler (Scheduler and NewScheduler both nil)", c.Name)
	case c.FetchWidth <= 0 || c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0:
		return fmt.Errorf("pipeline: %s: non-positive width", c.Name)
	case c.MaxInFlight <= 0 || c.PhysRegs <= isa.NumRegs:
		return fmt.Errorf("pipeline: %s: in-flight %d / physical registers %d too small", c.Name, c.MaxInFlight, c.PhysRegs)
	case c.Clusters <= 0 || c.FUsPerCluster <= 0 || c.LSPorts <= 0:
		return fmt.Errorf("pipeline: %s: malformed execution core", c.Name)
	case c.FrontEndDepth < 0 || c.FetchQueueSize <= 0:
		return fmt.Errorf("pipeline: %s: malformed front end", c.Name)
	}
	return nil
}

// Stats aggregates one run.
type Stats struct {
	Config    string
	Workload  string
	Cycles    int64
	Committed uint64

	// EmuSteps counts dynamic instructions drawn from the execution
	// source: functional-emulator steps in lockstep mode (including any
	// wrong-path steps), trace records in replay mode. Identical between
	// the two modes for the same configuration.
	EmuSteps uint64

	CondBranches uint64
	Mispredicts  uint64

	// InterClusterUops counts committed instructions that received at
	// least one operand over an inter-cluster bypass (Figure 17 bottom).
	InterClusterUops uint64

	// ForwardedLoads counts loads satisfied by store-to-load forwarding
	// (only with Config.StoreForwarding).
	ForwardedLoads uint64

	// SquashedUops counts wrong-path instructions flushed at branch
	// resolution (only with Config.WrongPathExecution).
	SquashedUops uint64

	// Structural stall accounting (dispatch attempts that failed).
	SchedulerStalls uint64
	PhysRegStalls   uint64
	ROBStalls       uint64

	Cache  cache.Stats
	ICache cache.Stats

	// IssuedPerCycle is the distribution of instructions issued per cycle
	// (bucket 0 counts idle-issue cycles).
	IssuedPerCycle *stats.Histogram

	// Host-performance accounting for the run itself: heap allocations
	// (runtime.MemStats.Mallocs delta) and wall-clock seconds spent
	// inside Run. Simulator metrics about the simulator, not the
	// simulated machine.
	HostAllocs      uint64
	HostWallSeconds float64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// InterClusterFrequency returns the fraction of committed instructions
// that exercised an inter-cluster bypass.
func (s Stats) InterClusterFrequency() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.InterClusterUops) / float64(s.Committed)
}

const neverReady = math.MaxInt64

// regWriteDelay is the number of cycles after completion for a result to
// be written into a cluster's register file; consumers issuing before then
// read the value from the bypass network (used only for the inter-cluster
// bypass statistic).
const regWriteDelay = 2

// Simulator times one program on one configuration.
type Simulator struct {
	cfg Config
	// src streams the dynamic instructions fetch consumes; machine is the
	// concrete emulator behind it in lockstep mode (nil under replay; see
	// ExecSource), reader the concrete trace cursor in replay mode. The
	// hot fetch loop calls whichever concrete source is set — hundreds of
	// millions of per-instruction calls make interface dispatch measurable
	// — and falls back to the interface for custom sources. Wrong-path
	// execution requires machine.
	src     ExecSource
	machine *emu.Machine
	reader  *trace.Reader
	slab    *slabSource
	sched   core.Scheduler
	pred    bpred.Predictor
	dcache  *cache.Cache
	rt      *rename.Table

	cycle int64
	seq   uint64

	fetchQ ring.Buffer[*core.Uop]
	rob    ring.Buffer[*core.Uop]

	// pool recycles Uops at commit and squash so the steady state
	// allocates nothing per fetched instruction.
	pool core.UopPool

	// regReady[c*nPhys+p]: first cycle at which an instruction issuing in
	// cluster c may consume physical register p (flattened to one
	// allocation: operandsReady probes it per source per candidate per
	// cycle, the hottest loads in the simulator).
	regReady []int64
	nPhys    int
	nClus    int
	// bypassTab[from*nClus+to] precomputes bypassExtra for every cluster
	// pair; the geometry is fixed at construction.
	bypassTab []int64
	// prodCluster/prodComplete: who produced p and when (for the
	// inter-cluster bypass statistic); -1 cluster = initial value.
	prodCluster  []int8
	prodComplete []int64

	// unissuedStores holds dispatched-but-unissued stores in program
	// order; head advances as stores issue (memory disambiguation:
	// loads wait for all prior store addresses).
	unissuedStores ring.Buffer[*core.Uop]

	// fast enables idle-cycle skipping (see skipAhead); set at New from
	// the configuration.
	fast bool

	// Per-issue()-call scratch state, held on the Simulator so the
	// tryIssue callback (tryIssueFn, bound once at New) captures nothing
	// and the issue loop allocates nothing.
	tryIssueFn   func(*core.Uop) bool
	fuUsed       []int
	lsUsed       int
	issuedCount  int
	storeHorizon uint64

	// squashScratch collects ROB-tail pops during squash so they can be
	// recycled after the scheduler and store queue drop their references.
	squashScratch []*core.Uop

	// redirect, when non-nil, is the mispredicted branch fetch is
	// stalled on; fetch resumes at its completion cycle.
	redirect *core.Uop

	// Wrong-path execution state: resolving is the mispredicted branch
	// being speculated past, checkpoint restores the machine when it
	// resolves, and wrongPathDone notes that speculative fetch hit a dead
	// end (off the text segment, or a speculative halt).
	resolving     *core.Uop
	checkpoint    emu.Checkpoint
	wrongPathDone bool

	// icache state (only with Config.ICache).
	icache            *cache.Cache
	icacheLastLine    uint32
	icacheHasLine     bool
	fetchBlockedUntil int64

	timeline []TimelineEntry

	// check is the cycle-level invariant checker (nil unless
	// Config.CheckInvariants).
	check *checker

	traceDone bool
	stats     Stats
}

// TimelineEntry is one committed instruction's trip through the pipeline
// (recorded only with Config.RecordTimeline).
type TimelineEntry struct {
	Seq     uint64
	PC      uint32
	Inst    isa.Inst
	Cluster int
	FIFO    int // FIFO the instruction was steered to, -1 for windows

	Fetch    int64
	Dispatch int64
	Issue    int64
	Complete int64
	Commit   int64
}

// sourcePC dispatches the icache probe's PC query to the concrete
// execution source. Fetch touches the source once per dynamic
// instruction — hundreds of millions of times in a sweep — so the two
// concrete sources are dispatched directly (here and inline in fetch for
// Step, whose Record return is too large to route through an extra call
// frame); the interface is the fallback for custom sources.
//
//ce:hot
func (s *Simulator) sourcePC() uint32 {
	if s.machine != nil {
		return s.machine.PC()
	}
	if s.slab != nil {
		return s.slab.PC()
	}
	if s.reader != nil {
		return s.reader.PC()
	}
	return s.src.PC()
}

// sourceHalted mirrors sourcePC for the end-of-stream check.
//
//ce:hot
func (s *Simulator) sourceHalted() bool {
	if s.machine != nil {
		return s.machine.Halted()
	}
	if s.slab != nil {
		return s.slab.halted
	}
	if s.reader != nil {
		return s.reader.Halted()
	}
	return s.src.Halted()
}

// New builds a simulator driven by lockstep functional execution of prog.
func New(cfg Config, prog *isa.Program) (*Simulator, error) {
	m := emu.New(prog)
	return newSimulator(cfg, machineSource{m}, m)
}

// newSimulator is the shared constructor behind New and NewReplay;
// machine is nil when src is not backed by a live emulator.
func newSimulator(cfg Config, src ExecSource, machine *emu.Machine) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WrongPathExecution && machine == nil {
		return nil, fmt.Errorf("pipeline: %s: wrong-path execution requires a lockstep machine", cfg.Name)
	}
	prog := src.Program()
	if cfg.DCache == (cache.Config{}) {
		cfg.DCache = cache.Baseline()
	}
	dc, err := cache.New(cfg.DCache)
	if err != nil {
		return nil, err
	}
	rt, err := rename.New(cfg.PhysRegs)
	if err != nil {
		return nil, err
	}
	sched := cfg.buildScheduler()
	if sched.Clusters() != cfg.Clusters {
		return nil, fmt.Errorf("pipeline: %s: scheduler feeds %d clusters, config has %d", cfg.Name, sched.Clusters(), cfg.Clusters)
	}
	pred, err := cfg.buildPredictor()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:          cfg,
		src:          src,
		machine:      machine,
		sched:        sched,
		pred:         pred,
		dcache:       dc,
		rt:           rt,
		prodCluster:  make([]int8, cfg.PhysRegs),
		prodComplete: make([]int64, cfg.PhysRegs),
	}
	if cfg.ICache != nil {
		ic, err := cache.New(*cfg.ICache)
		if err != nil {
			return nil, err
		}
		s.icache = ic
	}
	if r, ok := src.(*trace.Reader); ok {
		s.reader = r
	}
	if ss, ok := src.(*slabSource); ok {
		s.slab = ss
	}
	s.nPhys = cfg.PhysRegs
	s.nClus = cfg.Clusters
	s.regReady = make([]int64, cfg.Clusters*cfg.PhysRegs)
	s.bypassTab = make([]int64, cfg.Clusters*cfg.Clusters)
	for from := 0; from < cfg.Clusters; from++ {
		for to := 0; to < cfg.Clusters; to++ {
			s.bypassTab[from*cfg.Clusters+to] = s.bypassExtraSlow(from, to)
		}
	}
	for p := range s.prodCluster {
		s.prodCluster[p] = -1
		s.prodComplete[p] = math.MinInt64 / 2
	}
	s.stats.Config = cfg.Name
	s.stats.Workload = prog.Name
	s.stats.IssuedPerCycle = stats.NewHistogram(cfg.IssueWidth)
	s.fuUsed = make([]int, cfg.Clusters)
	s.tryIssueFn = s.tryIssue
	s.fast = !cfg.CheckInvariants && !cfg.RecordTimeline && !cfg.NoCycleSkip
	if cfg.CheckInvariants {
		s.check = &checker{s: s}
	}
	return s, nil
}

// Run simulates until the program's trace is fully committed or maxCycles
// elapse, returning the run statistics. A maxCycles of 0 means no limit.
func (s *Simulator) Run(maxCycles int64) (Stats, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startAllocs := ms.Mallocs
	startWall := time.Now() //ce:nondet-ok host-performance telemetry (HostWallSeconds), not simulated time
	err := s.run(maxCycles)
	s.stats.HostWallSeconds = time.Since(startWall).Seconds() //ce:nondet-ok host-performance telemetry, not simulated time
	runtime.ReadMemStats(&ms)
	s.stats.HostAllocs = ms.Mallocs - startAllocs
	if err != nil {
		return s.stats, err
	}
	s.stats.Cycles = s.cycle
	s.stats.Cache = s.dcache.Stats()
	if s.icache != nil {
		s.stats.ICache = s.icache.Stats()
	}
	if s.check != nil {
		s.check.onDone()
		if s.check.err != nil {
			return s.stats, s.check.err
		}
	}
	return s.stats, nil
}

func (s *Simulator) run(maxCycles int64) error {
	for !s.done() {
		if maxCycles > 0 && s.cycle >= maxCycles {
			return fmt.Errorf("pipeline: %s/%s: exceeded %d cycles (%d committed)",
				s.cfg.Name, s.stats.Workload, maxCycles, s.stats.Committed)
		}
		if err := s.step(); err != nil {
			return err
		}
	}
	return nil
}

// Timeline returns the committed instructions' pipeline timelines (empty
// unless Config.RecordTimeline was set).
func (s *Simulator) Timeline() []TimelineEntry { return s.timeline }

func (s *Simulator) done() bool {
	return s.traceDone && s.resolving == nil && s.fetchQ.Len() == 0 && s.rob.Len() == 0
}

// step advances one clock cycle. Stage order within the cycle — commit,
// issue, dispatch, fetch — gives dispatch→issue and fetch→dispatch the
// one-cycle latencies of the Figure 1 pipeline.
//
//ce:hot
func (s *Simulator) step() error {
	if s.fast {
		s.skipAhead()
	}
	if s.resolving != nil && s.resolving.Issued && s.cycle >= s.resolving.CompleteCycle {
		if err := s.squash(); err != nil {
			return err
		}
	}
	s.commit()
	s.issue()
	if err := s.dispatch(); err != nil {
		return err
	}
	if err := s.fetch(); err != nil {
		return err
	}
	if s.check != nil {
		s.check.onCycleEnd()
		if s.check.err != nil {
			return s.check.err
		}
	}
	s.cycle++
	return nil
}

// skipAhead advances s.cycle directly to the next cycle on which any
// pipeline stage can act, when every stage is provably blocked until a
// known event. The skipped cycles are pure spinning — commit finds no
// completed head, Select has no awake candidate, dispatch has nothing
// decoded, fetch is stalled — so jumping over them is timing-neutral; the
// differential harness asserts cycle counts are identical with skipping
// on and off. Conservatism is always safe: when in doubt, don't skip.
//
//ce:hot
func (s *Simulator) skipAhead() {
	next := int64(math.MaxInt64)
	consider := func(c int64) {
		if c < next {
			next = c
		}
	}

	// Squash / wrong-path resolution.
	if s.resolving != nil {
		if !s.resolving.Issued {
			// Resolution cycle unknown; the branch is still in the
			// scheduler and NextWake bounds its issue below.
		} else if s.resolving.CompleteCycle <= s.cycle {
			return // squash acts this cycle
		} else {
			consider(s.resolving.CompleteCycle)
		}
	}

	// Commit: blocked until the ROB head completes. A speculative head
	// never commits; the resolving branch event above bounds its flush.
	if s.rob.Len() > 0 {
		u := s.rob.Front()
		if u.Issued && !u.Speculative {
			if u.CompleteCycle <= s.cycle {
				return // commit acts this cycle
			}
			consider(u.CompleteCycle)
		}
		// An unissued head is covered by the scheduler's NextWake.
	}

	// Issue: the scheduler knows its next possible candidate. (Stats
	// note: IssuedPerCycle bucket 0 entries for skipped cycles are
	// replicated below, so the histogram is preserved.)
	switch nw := s.sched.NextWake(); {
	case nw <= s.cycle:
		return // a candidate may be awake this cycle
	case nw != core.NeverWake:
		consider(nw)
	}

	// Dispatch: acts — or at least attempts and counts a stall — once the
	// fetch-queue head leaves the front-end decode stages. Skipping must
	// not swallow stall-counter increments, so any dispatchable head
	// blocks the skip.
	if s.fetchQ.Len() > 0 {
		decoded := s.fetchQ.Front().FetchCycle + int64(s.cfg.FrontEndDepth)
		if decoded <= s.cycle {
			return
		}
		consider(decoded)
	}

	// Fetch: blocked on a redirect (resumes at the branch's completion),
	// an icache miss, a full fetch queue (commit events above cover the
	// drain), or the trace end.
	if s.redirect != nil {
		if s.redirect.Issued {
			if s.redirect.CompleteCycle <= s.cycle {
				return
			}
			consider(s.redirect.CompleteCycle)
		}
		// Unissued redirect: bounded by the scheduler's NextWake.
	} else if !s.traceDone && !s.wrongPathDone && s.fetchQ.Len() < s.cfg.FetchQueueSize {
		if s.fetchBlockedUntil <= s.cycle {
			return // fetch acts this cycle
		}
		consider(s.fetchBlockedUntil)
	}

	if next == int64(math.MaxInt64) || next <= s.cycle {
		return
	}
	// Cycles s.cycle .. next-1 would each execute as pure idle cycles:
	// account them in the histogram (bucket 0) and in the cycle count,
	// then let step run the first actionable cycle.
	s.stats.IssuedPerCycle.AddN(0, uint64(next-s.cycle))
	s.cycle = next
}

// commit retires completed instructions in program order.
//
//ce:hot
func (s *Simulator) commit() {
	n := 0
	for n < s.cfg.RetireWidth && s.rob.Len() > 0 {
		u := s.rob.Front()
		if !u.Issued || s.cycle < u.CompleteCycle {
			break
		}
		if u.Speculative {
			// Wrong-path instructions are squashed at resolution, which
			// always runs before commit in the same cycle.
			break
		}
		if u.Class == isa.ClassStore {
			// The write is performed at commit (write-back cache model);
			// its latency is off the critical path.
			s.dcache.Access(u.Rec.Addr, true)
			// A committing store is the oldest in flight, so if it is
			// still in the unissued-store queue it is the (issued) head
			// the next issue() would pop anyway; pop it now so the queue
			// never outlives a recycled uop.
			if s.unissuedStores.Len() > 0 && s.unissuedStores.Front() == u {
				s.unissuedStores.PopFront()
			}
		}
		s.rt.Release(u.OldDest)
		if u.UsedInterClusterBypass {
			s.stats.InterClusterUops++
		}
		if s.cfg.RecordTimeline {
			s.timeline = append(s.timeline, TimelineEntry{ //ce:alloc-ok timeline recording is off on measured runs
				Seq:      u.Seq,
				PC:       u.Rec.PC,
				Inst:     u.Rec.Inst,
				Cluster:  u.Cluster,
				FIFO:     u.FIFO,
				Fetch:    u.FetchCycle,
				Dispatch: u.DispatchCycle,
				Issue:    u.IssueCycle,
				Complete: u.CompleteCycle,
				Commit:   s.cycle,
			})
		}
		s.rob.PopFront()
		s.stats.Committed++
		n++
		if s.check != nil {
			s.check.onCommit(u)
		}
		// Recycle unless fetch still holds the uop as its redirect (the
		// mispredicted branch can retire before fetch resumes; fetch
		// recycles it when the redirect clears).
		if u != s.redirect {
			s.pool.Put(u)
		}
	}
}

// squash flushes everything younger than the resolving mispredicted
// branch: wrong-path uops leave the fetch queue, scheduler and ROB, their
// renames are unwound youngest-first, and the functional machine is
// restored to the branch's architectural state.
func (s *Simulator) squash() error {
	br := s.resolving
	// Fetch queue: everything is younger than the branch (which was
	// dispatched before speculation began or is in the ROB).
	for i := 0; i < s.fetchQ.Len(); i++ {
		if s.fetchQ.At(i).Seq <= br.Seq {
			return fmt.Errorf("pipeline: %s: non-speculative uop %d in fetch queue at squash", s.cfg.Name, s.fetchQ.At(i).Seq) //ce:alloc-ok fatal path, run is over
		}
	}
	s.stats.SquashedUops += uint64(s.fetchQ.Len())
	for s.fetchQ.Len() > 0 {
		s.pool.Put(s.fetchQ.PopBack())
	}
	// ROB tail, youngest first, so rename unwinding restores the map.
	// Recycling waits until the scheduler and store queue drop their
	// references below.
	for s.rob.Len() > 0 {
		u := s.rob.Back()
		if u.Seq <= br.Seq {
			break
		}
		if dest, ok := u.Rec.Inst.Dest(); ok {
			s.rt.Undo(dest, u.PhysDest, u.OldDest)
		}
		s.rob.PopBack()
		s.squashScratch = append(s.squashScratch, u)
		s.stats.SquashedUops++
	}
	s.sched.Squash(br.Seq)
	// Wrong-path stores are the youngest: pop them off the tail.
	for s.unissuedStores.Len() > 0 && s.unissuedStores.Back().Seq > br.Seq {
		s.unissuedStores.PopBack()
	}
	for i, u := range s.squashScratch {
		s.pool.Put(u)
		s.squashScratch[i] = nil
	}
	s.squashScratch = s.squashScratch[:0]
	// Roll the functional machine back to just after the branch and
	// resume on the architectural path.
	if err := s.machine.Restore(s.checkpoint); err != nil {
		return fmt.Errorf("pipeline: %s: %w", s.cfg.Name, err) //ce:alloc-ok fatal path, run is over
	}
	s.seq = br.Seq + 1
	s.resolving = nil
	s.wrongPathDone = false
	s.traceDone = false
	// Wrong-path fetch may have left an instruction-cache stall pending
	// (or a stale last-line note); the redirect cancels both — the
	// architectural path must not inherit a wrong-path fetch stall, and
	// its first fetch re-probes the cache. The miss that caused the stall
	// has already installed its line, so cache pollution is preserved.
	s.fetchBlockedUntil = 0
	s.icacheHasLine = false
	if s.check != nil {
		s.check.onSquash(br.Seq)
	}
	return nil
}

// bypassExtra returns the additional cycles before a value produced in
// cluster `from` is consumable in cluster `to`, beyond the producer's
// completion (precomputed per cluster pair at construction).
//
//ce:hot
func (s *Simulator) bypassExtra(from, to int) int64 {
	return s.bypassTab[from*s.nClus+to]
}

// bypassExtraSlow derives one bypassTab entry from the configuration.
func (s *Simulator) bypassExtraSlow(from, to int) int64 {
	extra := int64(0)
	if from == to {
		extra = int64(s.cfg.LocalBypassExtra)
	} else if s.cfg.RingTopology {
		hops := (to - from + s.cfg.Clusters) % s.cfg.Clusters
		extra = int64(s.cfg.InterClusterDelay) * int64(hops)
	} else {
		extra = int64(s.cfg.InterClusterDelay)
	}
	if s.cfg.PipelinedWakeupSelect {
		extra++
	}
	return extra
}

// issue performs wakeup+select: the scheduler offers candidates in
// priority order and the pipeline issues those whose operands and
// resources are available.
//
//ce:hot
func (s *Simulator) issue() {
	// Memory disambiguation horizon: a load may issue only if every older
	// store has issued (its address is then known).
	for s.unissuedStores.Len() > 0 && s.unissuedStores.Front().Issued {
		s.unissuedStores.PopFront()
	}
	s.storeHorizon = uint64(math.MaxUint64)
	if s.unissuedStores.Len() > 0 {
		s.storeHorizon = s.unissuedStores.Front().Seq
	}

	for c := range s.fuUsed {
		s.fuUsed[c] = 0
	}
	s.lsUsed = 0
	s.issuedCount = 0

	s.sched.Select(s.cycle, s.tryIssueFn)
	s.stats.IssuedPerCycle.Add(s.issuedCount)
}

// tryIssue is the Select callback: it applies the per-cycle issue gates
// (width, ports, store horizon, functional units, operand readiness) and
// performs the issue when they pass. Rejection has no side effects, so
// the scheduler may offer any superset of the issuable candidates.
//
//ce:hot
func (s *Simulator) tryIssue(u *core.Uop) bool {
	if s.issuedCount >= s.cfg.IssueWidth {
		return false
	}
	isMem := u.Class == isa.ClassLoad || u.Class == isa.ClassStore
	if isMem && s.lsUsed >= s.cfg.LSPorts {
		return false
	}
	if u.Class == isa.ClassLoad && u.Seq > s.storeHorizon {
		return false
	}
	c := u.Cluster
	if c < 0 {
		// Execution-driven steering: place the instruction in the
		// first cluster (static order) where its operands are ready
		// and a functional unit is free.
		c = s.pickCluster(u, s.fuUsed)
		if c < 0 {
			return false
		}
		u.Cluster = c
	} else {
		if s.fuUsed[c] >= s.cfg.FUsPerCluster {
			return false
		}
		if !s.operandsReady(u, c) {
			return false
		}
	}

	latency := 1
	if u.Class == isa.ClassLoad {
		if s.cfg.StoreForwarding && s.forwardingStore(u) {
			latency = s.cfg.DCache.HitCycles
			s.stats.ForwardedLoads++
		} else {
			latency, _ = s.dcache.Access(u.Rec.Addr, false)
		}
	}
	u.Issued = true
	u.IssueCycle = s.cycle
	u.CompleteCycle = s.cycle + int64(latency)
	if s.nClus > 1 {
		// A single cluster has no inter-cluster bypass paths to note, and
		// its producer bookkeeping would never be read.
		s.noteBypasses(u, c)
	}
	if u.PhysDest >= 0 {
		d := int(u.PhysDest)
		minReady := int64(math.MaxInt64)
		for k := 0; k < s.nClus; k++ {
			rc := u.CompleteCycle + s.bypassTab[c*s.nClus+k]
			s.regReady[k*s.nPhys+d] = rc
			if rc < minReady {
				minReady = rc
			}
		}
		if s.nClus > 1 {
			s.prodCluster[u.PhysDest] = int8(c)
			s.prodComplete[u.PhysDest] = u.CompleteCycle
		}
		// Wake consumers waiting on this result; the bound is the
		// nearest-cluster readiness (tryIssue still checks the issuing
		// cluster's own readiness).
		s.sched.Wakeup(u.PhysDest, minReady)
	}
	s.fuUsed[c]++
	s.issuedCount++
	if isMem {
		s.lsUsed++
	}
	if s.check != nil {
		s.check.onIssue(u, c, isMem)
	}
	return true
}

// operandsReady reports whether every source of u is consumable in
// cluster c this cycle.
//
//ce:hot
func (s *Simulator) operandsReady(u *core.Uop, c int) bool {
	base := c * s.nPhys
	for _, p := range u.PhysSrcs {
		if p >= 0 && s.regReady[base+int(p)] > s.cycle {
			return false
		}
	}
	return true
}

// pickCluster implements execution-driven steering (Section 5.6.1):
// clusters are tried in static order, so ties go to cluster 0.
//
//ce:hot
func (s *Simulator) pickCluster(u *core.Uop, fuUsed []int) int {
	for c := 0; c < s.cfg.Clusters; c++ {
		if fuUsed[c] < s.cfg.FUsPerCluster && s.operandsReady(u, c) {
			return c
		}
	}
	return -1
}

// noteBypasses records whether u consumed any operand over an
// inter-cluster bypass path: the producer ran in another cluster and the
// value had not yet been written into this cluster's register file.
//
//ce:hot
func (s *Simulator) noteBypasses(u *core.Uop, c int) {
	for _, p := range u.PhysSrcs {
		if p < 0 {
			continue
		}
		pc := s.prodCluster[p]
		if pc < 0 || int(pc) == c {
			continue
		}
		arrival := s.prodComplete[p] + s.bypassExtra(int(pc), c)
		if s.cycle < arrival+regWriteDelay {
			u.UsedInterClusterBypass = true
			return
		}
	}
}

// forwardingStore reports whether an older in-flight store writes the
// load's word. The load's issue is already gated on all older store
// addresses being known, so the in-order ROB scan is sound.
//
//ce:hot
func (s *Simulator) forwardingStore(load *core.Uop) bool {
	word := load.Rec.Addr >> 2
	for i := s.rob.Len() - 1; i >= 0; i-- {
		st := s.rob.At(i)
		if st.Seq >= load.Seq || st.Class != isa.ClassStore {
			continue
		}
		if st.Rec.Addr>>2 == word {
			return true
		}
	}
	return false
}

// dispatch renames and inserts fetched instructions into the scheduler.
//
//ce:hot
func (s *Simulator) dispatch() error {
	for n := 0; n < s.cfg.DecodeWidth && s.fetchQ.Len() > 0; n++ {
		u := s.fetchQ.Front()
		if u.FetchCycle+int64(s.cfg.FrontEndDepth) > s.cycle {
			break // still in decode/rename stages
		}
		if s.rob.Len() >= s.cfg.MaxInFlight {
			s.stats.ROBStalls++
			break
		}
		srcRegs, nSrcs := u.Rec.Inst.SourceRegs()
		dest, hasDest := u.Rec.Inst.Dest()
		physSrcs, physDest, oldDest, ok := s.rt.Rename(u.PhysSrcs[:0], srcRegs[:nSrcs], dest, hasDest)
		if !ok {
			s.stats.PhysRegStalls++
			break
		}
		u.PhysSrcs = physSrcs
		u.PhysDest = physDest
		u.OldDest = oldDest
		// Wakeup bookkeeping for the event-driven scheduler: a source is
		// pending while its producer has not issued (readiness is
		// neverReady everywhere); otherwise its min-over-clusters
		// readiness lower-bounds this uop's first issuable cycle.
		u.WakePending, u.WakeMask, u.WakeCycle = 0, 0, 0
		for i, p := range physSrcs {
			if p < 0 {
				continue
			}
			if s.regReady[p] == neverReady {
				u.WakePending++
				u.WakeMask |= 1 << uint(i)
			} else if m := s.minRegReady(p); m > u.WakeCycle {
				u.WakeCycle = m
			}
		}
		if physDest >= 0 {
			// The destination is not ready anywhere until it executes.
			for k := 0; k < s.nClus; k++ {
				s.regReady[k*s.nPhys+int(physDest)] = neverReady
			}
		}
		if !s.sched.Dispatch(u) {
			if physDest >= 0 {
				for k := 0; k < s.nClus; k++ {
					s.regReady[k*s.nPhys+int(physDest)] = 0
				}
			}
			s.rt.Undo(dest, physDest, oldDest)
			s.stats.SchedulerStalls++
			break
		}
		u.DispatchCycle = s.cycle
		s.rob.PushBack(u)
		if u.Class == isa.ClassStore {
			s.unissuedStores.PushBack(u)
		}
		s.fetchQ.PopFront()
	}
	return nil
}

// minRegReady returns the earliest cycle any cluster can consume p.
//
//ce:hot
func (s *Simulator) minRegReady(p int16) int64 {
	m := s.regReady[p]
	for k := 1; k < s.nClus; k++ {
		if v := s.regReady[k*s.nPhys+int(p)]; v < m {
			m = v
		}
	}
	return m
}

// fetch pulls instructions from the functional emulator. Fetch stalls on a
// mispredicted conditional branch until the branch executes (trace-driven
// misprediction model: the wrong path is not executed, its fetch slots are
// simply lost).
//
//ce:hot
func (s *Simulator) fetch() error {
	if s.redirect != nil {
		if !s.redirect.Issued || s.cycle < s.redirect.CompleteCycle {
			return nil
		}
		// If the branch already retired, commit left it for fetch to
		// recycle; if it is still in the ROB, commit will recycle it.
		if s.redirect.Issued && s.stats.Committed > s.redirect.Seq {
			s.pool.Put(s.redirect)
		}
		s.redirect = nil
	}
	if s.cycle < s.fetchBlockedUntil {
		return nil
	}
	for n := 0; n < s.cfg.FetchWidth; n++ {
		if s.traceDone || s.wrongPathDone || s.fetchQ.Len() >= s.cfg.FetchQueueSize {
			return nil
		}
		if s.icache != nil {
			// Probe the next instruction's line before consuming it, so a
			// miss stalls fetch without losing the instruction.
			pc := s.sourcePC()
			line := pc * 4 / uint32(s.cfg.ICache.LineBytes)
			if !s.icacheHasLine || line != s.icacheLastLine {
				lat, hit := s.icache.Access(pc*4, false)
				s.icacheLastLine = line
				s.icacheHasLine = true
				if !hit {
					s.fetchBlockedUntil = s.cycle + int64(lat-s.cfg.ICache.HitCycles)
					return nil
				}
			}
		}
		// See sourcePC: monomorphic source dispatch, inlined so the Record
		// is written once into rec rather than copied through a helper.
		var rec emu.Record
		var err error
		if s.machine != nil {
			rec, err = s.machine.Step()
		} else if s.slab != nil {
			rec, err = s.slab.Step()
		} else if s.reader != nil {
			rec, err = s.reader.Step()
		} else {
			rec, err = s.src.Step()
		}
		if err != nil {
			if s.resolving != nil {
				// The wrong path ran off the rails (out-of-range PC);
				// fetch idles until the branch resolves.
				s.wrongPathDone = true
				return nil
			}
			return fmt.Errorf("pipeline: %s/%s: functional emulation: %w", s.cfg.Name, s.stats.Workload, err) //ce:alloc-ok fatal path, run is over
		}
		s.stats.EmuSteps++
		u := s.pool.Get()
		u.Seq = s.seq
		u.Rec = rec
		u.Class = isa.ClassOf(rec.Inst.Op)
		u.FetchCycle = s.cycle
		u.Cluster = -1
		u.FIFO = -1
		u.Speculative = s.resolving != nil
		s.seq++
		s.fetchQ.PushBack(u)
		if s.sourceHalted() {
			if s.resolving != nil {
				s.wrongPathDone = true
			} else {
				s.traceDone = true
			}
		}
		if u.Class == isa.ClassBranch && !u.Speculative {
			// Wrong-path branches follow the speculative machine's
			// concrete execution; only architectural branches train and
			// consult the predictor.
			s.stats.CondBranches++
			if !s.cfg.PerfectBPred {
				predTaken := s.pred.Predict(rec.PC)
				s.pred.Update(rec.PC, rec.Taken)
				if predTaken != rec.Taken {
					s.stats.Mispredicts++
					u.Mispredicted = true
					if !s.cfg.WrongPathExecution {
						s.redirect = u
						return nil
					}
					// Speculate: checkpoint the architectural state
					// (PC already at the correct target) and force the
					// machine down the predicted path.
					s.resolving = u
					s.checkpoint = s.machine.Checkpoint()
					target := rec.PC + 1 // predicted not-taken
					if predTaken {
						target = uint32(rec.Inst.Imm)
					}
					s.machine.SetPC(target)
				}
			}
		}
		// Fetch-break follows the direction fetch actually went: the
		// predicted one for a mispredicted branch being speculated past.
		effectiveTaken := rec.Taken
		if u.Mispredicted && s.cfg.WrongPathExecution {
			effectiveTaken = !rec.Taken
		}
		if s.cfg.FetchBreakOnTaken && effectiveTaken {
			return nil
		}
	}
	return nil
}

// Machine exposes the underlying functional machine (for output checks in
// tests and examples). Nil for replay-driven simulators; Output and
// StateHash work in both modes.
func (s *Simulator) Machine() *emu.Machine { return s.machine }

// Output returns the program output produced by the execution source
// (complete once the run has finished).
func (s *Simulator) Output() []int32 { return s.src.Output() }

// StateHash returns the final architectural digest of the executed (or
// replayed) program.
func (s *Simulator) StateHash() [32]byte { return s.src.StateHash() }

// Scheduler exposes the scheduler (for diagnostics).
func (s *Simulator) Scheduler() core.Scheduler { return s.sched }
