// Package allochelper is an unmarked helper package; hotlint computes
// allocation facts for its exported functions so hot callers in other
// packages see through the calls.
package allochelper

// Grow allocates directly.
func Grow(n int) []int {
	return make([]int, n)
}

// Wrap allocates one hop down, through Grow.
func Wrap(n int) []int {
	return Grow(n)
}

// Hatched allocates, but the author asserted it acceptable: the hatch
// excludes the site from the exported fact, so callers are not
// re-flagged.
func Hatched(n int) []int {
	return make([]int, n) //ce:alloc-ok refill amortized across the run
}

// Reset is itself //ce:hot: trusted clean at call sites, checked here.
//
//ce:hot
func Reset(dst []int) []int {
	return dst[:0]
}

// Add is allocation-free.
func Add(x int) int { return x + 1 }
