// Package lockuse holds a mutex across calls into lockdep: the
// blocking verdict must propagate through the driver's fact store.
package lockuse

import (
	"sync"

	"lockdep"
)

type store struct {
	mu   sync.Mutex
	path string
	n    int
}

func (s *store) badSave(b []byte) {
	s.mu.Lock()
	_ = lockdep.Save(s.path, b) // want "mutex s.mu held across call to lockdep.Save \\(blocks: Save: call to os.WriteFile\\)"
	s.mu.Unlock()
}

func (s *store) badPersist() {
	s.mu.Lock()
	_ = lockdep.Persist(s.path) // want "mutex s.mu held across call to lockdep.Persist \\(blocks: Persist → Save: call to os.WriteFile\\)"
	s.mu.Unlock()
}

// Pure callees are fine under the lock.
func (s *store) okClamp(v int) {
	s.mu.Lock()
	s.n = lockdep.Clamp(v, 0, 100)
	s.mu.Unlock()
}

// A hatch with a reason silences the transitive finding.
func (s *store) hatchedSave(b []byte) {
	s.mu.Lock()
	_ = lockdep.Save(s.path, b) //ce:lock-ok quiesced snapshot, no concurrent readers by construction
	s.mu.Unlock()
}
