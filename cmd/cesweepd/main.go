// Cesweepd serves the sweep engine as a long-lived HTTP daemon: the
// figures, the frontier and single design-point runs, all backed by one
// content-addressed run cache and one trace pool.
//
// Usage:
//
//	cesweepd -addr :8080 -cache-dir /var/cache/ce/runs -trace-dir /var/cache/ce/traces
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/run \
//	    -d '{"config":"dependence","workload":"compress"}'
//	curl -s -X POST localhost:8080/run \
//	    -d '{"scheduler":{"kind":"fifos","clusters":2,"fifos_per_cluster":4,"depth":8},"workload":"li"}'
//	curl -s localhost:8080/figure/13
//	curl -s localhost:8080/frontier
//	curl -s localhost:8080/metrics
//
// Several daemons may share one -cache-dir/-trace-dir: the store is
// operated under the cross-process lease protocol (internal/lease), so a
// design point requested on N daemons simultaneously is simulated by
// exactly one of them and read from disk by the rest. -cache-max bounds
// the warm in-memory tier; evicted results reload from the directory.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, lets
// in-flight simulations finish (up to -shutdown-timeout), writes a final
// metrics summary to stderr, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro"
	"repro/internal/canonjson"
	"repro/internal/server"
)

var (
	addr            = flag.String("addr", "localhost:8344", "listen address (host:port; :0 picks a free port)")
	cacheDir        = flag.String("cache-dir", "", "persist run results under this directory (shared across daemons)")
	traceDir        = flag.String("trace-dir", "", "persist execution traces under this directory (shared across daemons)")
	cacheMax        = flag.Int("cache-max", 4096, "max run results held in memory, LRU over the disk tier (0 = unbounded)")
	noReplay        = flag.Bool("no-trace-replay", false, "drive every simulation by lockstep execution instead of trace replay")
	noGang          = flag.Bool("no-gang", false, "disable gang replay: give every replay run a private streaming reader instead of shared decoded slabs")
	slabMB          = flag.Int64("slab-budget-mb", 0, "bound the decoded-slab cache to this many MiB (0 = default 256)")
	pprofAddr       = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty = disabled. Never exposed on the serving port")
	segments        = flag.Int("segments", 0, "cut each trace into this many segments timed in parallel (0 = monolithic)")
	segWarmup       = flag.String("warmup", "-1", "per-segment warmup: instruction count (-1 = full prefix, exact stitching) or 'adaptive'")
	segSample       = flag.String("sample", "1", "segment sampling: every Nth segment (N) or 'phase' (one representative per behavior cluster)")
	segPhases       = flag.Int("phases", 8, "maximum behavior clusters for -sample=phase")
	shutdownTimeout = flag.Duration("shutdown-timeout", 2*time.Minute, "max time to drain in-flight requests on SIGINT/SIGTERM")
	quiet           = flag.Bool("quiet", false, "suppress per-request log lines")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cesweepd:", err)
		os.Exit(1)
	}
}

func run() error {
	eng := ce.NewEngine()
	if *cacheDir != "" {
		if err := eng.SetCacheDir(*cacheDir); err != nil {
			return err
		}
	}
	if *traceDir != "" {
		if err := eng.SetTraceDir(*traceDir); err != nil {
			return err
		}
	}
	// The lease protocol only matters when a directory is shared, but it
	// is harmless (and self-testing) on a private one; enable it whenever
	// any on-disk store is configured.
	if *cacheDir != "" || *traceDir != "" {
		eng.SetSharedStore(true)
	}
	eng.SetCacheLimit(*cacheMax)
	eng.SetTraceReplay(!*noReplay)
	eng.SetGangReplay(!*noGang)
	if *slabMB > 0 {
		eng.SetSlabBudget(*slabMB << 20)
	}
	eng.SetSegments(*segments)
	if *segWarmup == "adaptive" {
		eng.SetSegmentAdaptive(true)
	} else {
		w, err := strconv.ParseInt(*segWarmup, 10, 64)
		if err != nil {
			return fmt.Errorf("-warmup: %q is neither an instruction count nor 'adaptive'", *segWarmup)
		}
		eng.SetSegmentWarmup(w)
	}
	if *segSample == "phase" {
		eng.SetSegmentPhases(*segPhases)
	} else {
		n, err := strconv.Atoi(*segSample)
		if err != nil {
			return fmt.Errorf("-sample: %q is neither a stride nor 'phase'", *segSample)
		}
		eng.SetSegmentSample(n)
	}

	var opts server.Options
	if !*quiet {
		opts.Log = os.Stderr
	}
	srv := server.New(eng, opts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Announce the resolved address (meaningful with -addr :0) on its own
	// stderr line so scripts and tests can scrape it.
	fmt.Fprintf(os.Stderr, "cesweepd: listening on http://%s\n", ln.Addr())

	// Opt-in profiling endpoint, always on its own listener with its own
	// mux: the serving port never exposes /debug/pprof/, however the
	// daemon is deployed, and the profiler can be bound to localhost while
	// the API listens publicly.
	if *pprofAddr != "" {
		if *pprofAddr == *addr {
			return fmt.Errorf("-pprof-addr %q must differ from the serving -addr", *pprofAddr)
		}
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof-addr: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(os.Stderr, "cesweepd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() { _ = (&http.Server{Handler: mux}).Serve(pln) }()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "cesweepd: %s, draining (timeout %s)\n", sig, *shutdownTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	summary, err := canonjson.Marshal(srv.MetricsSnapshot())
	if err == nil {
		fmt.Fprintf(os.Stderr, "cesweepd: final metrics\n%s", summary)
	}
	return nil
}
