package ce

import (
	"path/filepath"
	"testing"
)

// TestGangBench pins the gang benchmark's accounting: the per-config
// leg decodes the trace once per configuration, the ganged leg exactly
// once, so the decode reduction equals the panel size and the ganged
// records-decoded count equals the trace length.
func TestGangBench(t *testing.T) {
	res, err := GangBench("micro.branchy")
	if err != nil {
		t.Fatal(err)
	}
	if res.Configs < 2 {
		t.Fatalf("panel has %d replay-capable configs; need >= 2 for a gang", res.Configs)
	}
	if res.Steps == 0 {
		t.Fatal("zero steps")
	}
	if res.GangRecordsDecoded != res.Steps {
		t.Errorf("ganged leg decoded %d records, want exactly the trace length %d",
			res.GangRecordsDecoded, res.Steps)
	}
	if want := res.Steps * uint64(res.Configs); res.PerConfigRecordsDecoded != want {
		t.Errorf("per-config leg decoded %d records, want %d (configs x steps)",
			res.PerConfigRecordsDecoded, want)
	}
	if want := float64(res.Configs); res.DecodeReduction != want {
		t.Errorf("decode reduction = %v, want %v", res.DecodeReduction, want)
	}
	if res.SlabDecodes == 0 || res.SlabHits == 0 {
		t.Errorf("ganged leg: %d slab decodes, %d hits; want both > 0",
			res.SlabDecodes, res.SlabHits)
	}
	if res.SlabPeakBytes <= 0 {
		t.Errorf("slab peak bytes = %d, want > 0", res.SlabPeakBytes)
	}
}

func TestSweepBenchJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	want := SweepBenchResult{
		WallSeconds: 1.5,
		Sims:        42,
		SimsPerSec:  28,
		Replay:      true,
		Gang: &GangBenchResult{
			Workload: "compress.big", Configs: 5, Steps: 100,
			Speedup: 1.25, DecodeReduction: 5,
		},
	}
	if err := WriteSweepBenchJSON(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSweepBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sims != want.Sims || got.Gang == nil || *got.Gang != *want.Gang {
		t.Errorf("round trip mismatch: got %+v, want %+v", got, want)
	}
}

// TestCompareSweepBench pins the regression gate: only dimensionless
// ratios gate, and only when they fall more than the tolerance below
// the baseline.
func TestCompareSweepBench(t *testing.T) {
	old := SweepBenchResult{
		WallSeconds: 10, SimsPerSec: 20,
		Segment: &SegmentBenchResult{Speedup: 4.0},
		Gang:    &GangBenchResult{Speedup: 1.3, DecodeReduction: 5.0},
	}
	cur := SweepBenchResult{
		// Wall time doubled: reported, never gated.
		WallSeconds: 20, SimsPerSec: 10,
		// Within a 25% tolerance.
		Segment: &SegmentBenchResult{Speedup: 3.2},
		// Decode reduction collapsed: the regression gang replay being
		// silently disabled would produce.
		Gang: &GangBenchResult{Speedup: 1.25, DecodeReduction: 1.0},
	}
	deltas := CompareSweepBench(old, cur, 25)
	byName := make(map[string]BenchDelta, len(deltas))
	for _, d := range deltas {
		byName[d.Name] = d
	}
	for name, want := range map[string]struct{ gated, regressed bool }{
		"wall_seconds":          {false, false},
		"sims_per_sec":          {false, false},
		"segment.speedup":       {true, false},
		"gang.speedup":          {true, false},
		"gang.decode_reduction": {true, true},
	} {
		d, ok := byName[name]
		if !ok {
			t.Errorf("missing delta %q", name)
			continue
		}
		if d.Gated != want.gated || d.Regressed != want.regressed {
			t.Errorf("%s: gated=%v regressed=%v, want gated=%v regressed=%v",
				name, d.Gated, d.Regressed, want.gated, want.regressed)
		}
	}
	// Entries absent on one side are skipped, not invented.
	none := CompareSweepBench(SweepBenchResult{}, cur, 25)
	for _, d := range none {
		if d.Name == "gang.speedup" || d.Name == "segment.speedup" {
			t.Errorf("delta %q emitted though baseline lacks the entry", d.Name)
		}
	}
}
