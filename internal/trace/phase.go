package trace

// Phase clustering (SimPoint-style): group a trace's segments by the
// similarity of their basic-block vectors, so a sampler can time one
// representative segment per phase and weight it by the phase's share
// of the execution, instead of sampling segments on a blind stride.
// The clustering must be deterministic — same trace, same phases, every
// process, every run — so the run cache stays content-addressed and CI
// byte-compares hold; seeding uses farthest-point selection with
// lowest-index tie-breaking, no randomness anywhere.

// Phase is one cluster of segments with similar execution fingerprints.
type Phase struct {
	// Rep is the representative segment's index (the member closest to
	// the cluster centroid).
	Rep int
	// Members are the segment indices assigned to this phase, ascending.
	Members []int
	// Weight is the phase's share of the total weight (e.g. the fraction
	// of all dynamic instructions its members cover). Weights over all
	// phases sum to 1.
	Weight float64
}

// PhasePartition clusters the vectors (one per segment, typically
// Trace.SegmentBBV output) into at most k phases by weighted k-means.
// weights[i] is segment i's mass — its dynamic instruction count — used
// both for centroid updates and phase weights. Fewer than k distinct
// behaviors yield fewer phases (empty clusters are dropped), never an
// error. The result is deterministic in its inputs.
func PhasePartition(vecs [][]float64, weights []float64, k int) []Phase {
	n := len(vecs)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	dim := len(vecs[0])
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		total = 1
	}

	// Farthest-point seeding: start from the heaviest segment, then
	// repeatedly add the vector farthest from its nearest center.
	// Deterministic, and a good spread for k-means to refine.
	centers := make([][]float64, 0, k)
	seed := 0
	for i := 1; i < n; i++ {
		if weights[i] > weights[seed] {
			seed = i
		}
	}
	centers = append(centers, append([]float64(nil), vecs[seed]...))
	nearest := make([]float64, n)
	for i := range nearest {
		nearest[i] = sqDist(vecs[i], centers[0])
	}
	for len(centers) < k {
		far, farD := -1, 0.0
		for i := range vecs {
			if nearest[i] > farD {
				far, farD = i, nearest[i]
			}
		}
		if far < 0 || farD == 0 {
			break // fewer distinct vectors than k
		}
		centers = append(centers, append([]float64(nil), vecs[far]...))
		for i := range nearest {
			if d := sqDist(vecs[i], centers[len(centers)-1]); d < nearest[i] {
				nearest[i] = d
			}
		}
	}
	k = len(centers)

	assign := make([]int, n)
	const maxIters = 50
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, sqDist(v, centers[0])
			for c := 1; c < k; c++ {
				if d := sqDist(v, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Weighted centroid update; empty clusters keep their center (and
		// are dropped at the end if still empty).
		for c := range centers {
			var mass float64
			sum := make([]float64, dim)
			for i, v := range vecs {
				if assign[i] != c {
					continue
				}
				w := weights[i]
				if w <= 0 {
					w = 1
				}
				mass += w
				for d := range v {
					sum[d] += w * v[d]
				}
			}
			if mass > 0 {
				for d := range sum {
					sum[d] /= mass
				}
				centers[c] = sum
			}
		}
	}

	phases := make([]Phase, 0, k)
	for c := 0; c < k; c++ {
		var ph Phase
		var mass float64
		rep, repD := -1, 0.0
		for i := range vecs {
			if assign[i] != c {
				continue
			}
			ph.Members = append(ph.Members, i)
			mass += weights[i]
			if d := sqDist(vecs[i], centers[c]); rep < 0 || d < repD {
				rep, repD = i, d
			}
		}
		if rep < 0 {
			continue // empty cluster
		}
		ph.Rep = rep
		ph.Weight = mass / total
		phases = append(phases, ph)
	}
	return phases
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SegmentPhases clusters segs (cut from this trace) into at most k
// phases by their basic-block vectors, weighting each segment by its
// dynamic instruction count. Returns nil if the trace carries no BBV
// profile (pre-v3 capture paths; callers fall back to stride sampling).
func (t *Trace) SegmentPhases(segs []Segment, k int) []Phase {
	if !t.HasBBV() || len(segs) == 0 {
		return nil
	}
	vecs := make([][]float64, len(segs))
	weights := make([]float64, len(segs))
	for i, s := range segs {
		vecs[i] = t.SegmentBBV(s)
		weights[i] = float64(s.Steps())
	}
	return PhasePartition(vecs, weights, k)
}
