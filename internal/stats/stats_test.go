package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean = %g, want 4", got)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean(nil) succeeded")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("GeoMean with negative input succeeded")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g, %g", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Errorf("MinMax(nil) = %g, %g", lo, hi)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd median = %g", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %g", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %g", got)
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Error("Median sorted its input in place")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int{0, 1, 1, 2, 8, 100, -5} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Count(1) != 2 {
		t.Errorf("count(1) = %d", h.Count(1))
	}
	if h.Count(8) != 2 { // 8 and the clamped 100
		t.Errorf("count(8) = %d", h.Count(8))
	}
	if h.Count(0) != 2 { // 0 and the clamped -5
		t.Errorf("count(0) = %d", h.Count(0))
	}
	if h.Count(-1) != 0 || h.Count(99) != 0 {
		t.Error("out-of-range Count not zero")
	}
	if got := h.Percentile(50); got != 1 {
		t.Errorf("P50 = %d, want 1", got)
	}
	if got := h.Percentile(100); got != 8 {
		t.Errorf("P100 = %d, want 8", got)
	}
	if NewHistogram(4).Mean() != 0 {
		t.Error("empty histogram mean not 0")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.Add(2)
	h.Add(4)
	if got := h.Mean(); got != 3 {
		t.Errorf("mean = %g", got)
	}
}

func TestPropertyMeanWithinRange(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		lo, hi := MinMax(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyGeoMeanLEArithMean(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g, err := GeoMean(xs)
		return err == nil && g <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPercentileBounds is the regression test for the p=0 bug: with an
// empty bucket 0, Percentile(0) used to return 0 (target computed to 0,
// so the very first bucket satisfied cum >= target). p=0 is defined as
// the minimum occupied bucket and p=100 as the maximum.
func TestPercentileBounds(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{3, 5, 5, 9} {
		h.Add(v)
	}
	if got := h.Percentile(0); got != 3 {
		t.Errorf("P0 = %d, want 3 (minimum occupied bucket)", got)
	}
	if got := h.Percentile(100); got != 9 {
		t.Errorf("P100 = %d, want 9 (maximum occupied bucket)", got)
	}
	// When bucket 0 is occupied, P0 is genuinely 0.
	h.Add(0)
	if got := h.Percentile(0); got != 0 {
		t.Errorf("P0 with occupied bucket 0 = %d, want 0", got)
	}
	// Empty histogram: every percentile reports bucket 0.
	e := NewHistogram(4)
	if e.Percentile(0) != 0 || e.Percentile(100) != 0 {
		t.Error("empty histogram percentile not 0")
	}
}

// TestHistogramJSONRoundTrip guards the encoding used by the on-disk
// run cache.
func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 2, 2, 4} {
		h.Add(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Total() != h.Total() || got.Count(2) != 2 || got.Percentile(100) != 4 {
		t.Errorf("round trip lost data: %+v", got)
	}
}
