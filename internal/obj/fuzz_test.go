package obj

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// FuzzDecode checks that arbitrary bytes never panic the decoder and that
// anything it accepts re-encodes to an equivalent object.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(Magic))
	f.Add([]byte{})
	p := &isa.Program{
		Text:    []isa.Inst{{Op: isa.Addi, Rd: isa.T0, Imm: -1}, {Op: isa.Halt}},
		Data:    []byte{1, 2, 3},
		Symbols: map[string]uint32{"main": 0},
	}
	f.Add(Encode(p))
	if w, err := prog.ByName("go"); err == nil {
		if wp, err := w.Program(); err == nil {
			f.Add(Encode(wp))
		}
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		decoded, err := Decode("fuzz", b)
		if err != nil {
			return
		}
		// Accepted objects must round-trip to identical instructions and
		// data (symbol order is canonicalized by Encode).
		re := Encode(decoded)
		again, err := Decode("fuzz2", re)
		if err != nil {
			t.Fatalf("re-encode of accepted object rejected: %v", err)
		}
		if len(again.Text) != len(decoded.Text) || !bytes.Equal(again.Data, decoded.Data) {
			t.Fatal("re-encode round trip diverged")
		}
		for i := range decoded.Text {
			if again.Text[i] != decoded.Text[i] {
				t.Fatalf("instruction %d diverged", i)
			}
		}
	})
}
