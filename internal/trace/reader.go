package trace

import (
	"errors"

	"repro/internal/emu"
	"repro/internal/isa"
)

// errCorrupt is preallocated so the hot Step path never constructs an
// error value. A corrupt trace is a programming or storage fault, not a
// per-record condition, so one shared sentinel is enough.
var errCorrupt = errors.New("trace: packed stream truncated (trace does not match its step count)")

// Reader replays a captured trace as a stream of emu.Records, mirroring
// exactly what emu.Machine.Step would have returned for the same
// program. It performs no architectural work — no register file, no
// memory image — which is the entire point: the timing simulator only
// consumes the Record stream, so replay provides it at a fraction of the
// cost of re-execution.
//
// A Reader is a cheap cursor over the shared immutable Trace; create one
// per simulation and share the Trace across any number of goroutines.
type Reader struct {
	t      *Trace
	text   []isa.Inst
	packed []byte
	pos    int
	pc     uint32
	step   uint64
	halted bool
}

// NewReader returns a fresh cursor positioned at the start of t.
func NewReader(t *Trace) *Reader {
	return &Reader{t: t, text: t.prog.Text, packed: t.packed, pc: t.entryPC}
}

// Program returns the traced program.
func (r *Reader) Program() *isa.Program { return r.t.Program() }

// PC returns the index of the next instruction to replay.
func (r *Reader) PC() uint32 { return r.pc }

// Halted reports whether the trace has been fully replayed.
func (r *Reader) Halted() bool { return r.halted }

// Output returns the Out values of the captured execution. Unlike
// emu.Machine's incrementally grown Output, the full slice is available
// immediately; consumers read it only after the simulated program
// retires its Halt, at which point the two views coincide.
func (r *Reader) Output() []int32 { return r.t.Output() }

// StateHash returns the final architectural digest of the captured
// execution (valid at any time; meaningful once replay has halted).
func (r *Reader) StateHash() [32]byte { return r.t.StateHash() }

// Step reconstructs the next dynamic record. The per-class decoding must
// mirror Recorder.append, and the Record fields must match what
// emu.Machine.Step produces for the same instruction — both are pinned
// by differential tests. Returns emu.ErrHalted after the final record,
// exactly like the machine it stands in for.
//
//ce:hot
func (r *Reader) Step() (emu.Record, error) {
	if r.halted {
		return emu.Record{}, emu.ErrHalted
	}
	if r.step >= r.t.n || r.pc >= uint32(len(r.text)) {
		// A sealed trace ends in Halt, so running out of records (or
		// walking outside the text) means the stream is corrupt.
		return emu.Record{}, errCorrupt
	}
	in := r.text[r.pc]
	rec := emu.Record{PC: r.pc, Inst: in, NextPC: r.pc + 1}
	switch isa.ClassOf(in.Op) {
	case isa.ClassLoad, isa.ClassStore:
		if r.pos+4 > len(r.packed) {
			return emu.Record{}, errCorrupt
		}
		p := r.packed[r.pos:]
		rec.Addr = uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
		r.pos += 4
	case isa.ClassBranch:
		if r.pos >= len(r.packed) {
			return emu.Record{}, errCorrupt
		}
		if r.packed[r.pos] != 0 {
			rec.Taken = true
			rec.NextPC = uint32(in.Imm)
		}
		r.pos++
	case isa.ClassJump:
		rec.Taken = true
		if in.Op == isa.Jr || in.Op == isa.Jalr {
			if r.pos+4 > len(r.packed) {
				return emu.Record{}, errCorrupt
			}
			p := r.packed[r.pos:]
			rec.NextPC = uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
			r.pos += 4
		} else {
			rec.NextPC = uint32(in.Imm)
		}
	case isa.ClassSystem:
		if in.Op == isa.Halt {
			rec.NextPC = r.pc
			r.halted = true
		}
	}
	r.pc = rec.NextPC
	r.step++
	return rec, nil
}
