// Package unmarked has no //ce:deterministic directive, so detlint must
// stay silent even on blatant nondeterminism.
package unmarked

import "time"

func stamp() time.Time {
	return time.Now()
}

func collect(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
