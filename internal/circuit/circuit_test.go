package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vlsi"
)

func TestDistributedDelayQuadratic(t *testing.T) {
	w1 := Wire{Tech: vlsi.Tech018, LenLamda: 1000}
	w2 := Wire{Tech: vlsi.Tech018, LenLamda: 2000}
	r := w2.DistributedDelay() / w1.DistributedDelay()
	if math.Abs(r-4) > 1e-9 {
		t.Errorf("doubling wire length scaled delay by %g, want 4 (quadratic)", r)
	}
}

func TestDistributedDelayTechnologyInvariant(t *testing.T) {
	for _, tech := range vlsi.Technologies() {
		w := Wire{Tech: tech, LenLamda: 49000}
		got := w.DistributedDelay()
		if math.Abs(got-1056.4) > 15 {
			t.Errorf("%s: 49000λ wire delay = %.1f ps, want ≈1056.4 (Table 1)", tech.Name, got)
		}
	}
}

func TestLoadedDelayComponents(t *testing.T) {
	w := Wire{Tech: vlsi.Tech018, LenLamda: 1000}
	// With zero driver resistance and zero load, only the intrinsic
	// distributed term remains (LoadedDelay uses the lumped π-ish
	// approximation ½RC, identical to DistributedDelay).
	got := w.LoadedDelay(0, 0)
	want := w.DistributedDelay()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("LoadedDelay(0,0) = %g, want %g", got, want)
	}
	// Adding driver resistance or load strictly increases delay.
	if w.LoadedDelay(100, 0) <= got {
		t.Error("driver resistance did not increase delay")
	}
	if w.LoadedDelay(0, 50) <= got {
		t.Error("load capacitance did not increase delay")
	}
}

func TestElmoreDelaySingleBranch(t *testing.T) {
	// Root --R1--> n1 --R2--> n2. Elmore to n2 = R1(C1+C2) + R2·C2.
	n2 := &RCNode{Resistance: 200, Capacitance: 10}
	n1 := &RCNode{Resistance: 100, Capacitance: 20, Children: []*RCNode{n2}}
	root := &RCNode{Children: []*RCNode{n1}}
	got, err := ElmoreDelay(root, n2)
	if err != nil {
		t.Fatal(err)
	}
	want := (100*(20+10) + 200*10) * 1e-3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Elmore delay = %g ps, want %g", got, want)
	}
}

func TestElmoreDelaySideBranchLoadsPath(t *testing.T) {
	// A side branch's capacitance is charged through the shared path
	// resistance and must add to the delay.
	target := &RCNode{Resistance: 100, Capacitance: 10}
	side := &RCNode{Resistance: 500, Capacitance: 40}
	stem := &RCNode{Resistance: 100, Capacitance: 0, Children: []*RCNode{target, side}}
	root := &RCNode{Children: []*RCNode{stem}}
	got, err := ElmoreDelay(root, target)
	if err != nil {
		t.Fatal(err)
	}
	// stem R charges target C, side C and stem C; target R charges target C.
	want := (100*(10+40+0) + 100*10) * 1e-3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Elmore delay = %g ps, want %g", got, want)
	}
}

func TestElmoreDelayUnreachable(t *testing.T) {
	root := &RCNode{}
	orphan := &RCNode{}
	if _, err := ElmoreDelay(root, orphan); err == nil {
		t.Error("ElmoreDelay to unreachable node succeeded, want error")
	}
}

func TestChainMinDelayInverterFO4(t *testing.T) {
	// A single inverter driving h=4: delay = τ(4·g + p) = τ(4+1) = 5τ.
	c := Chain{Tau: 10, Gates: []Gate{Inverter}, ElectricalEffort: 4}
	if got := c.MinDelay(); math.Abs(got-50) > 1e-9 {
		t.Errorf("FO4 inverter delay = %g, want 50", got)
	}
}

func TestChainMinDelayEmptyAndDefaults(t *testing.T) {
	if got := (Chain{Tau: 10}).MinDelay(); got != 0 {
		t.Errorf("empty chain delay = %g, want 0", got)
	}
	// Non-positive efforts default to 1.
	c := Chain{Tau: 1, Gates: []Gate{Inverter}, ElectricalEffort: -1, BranchingEffort: 0}
	if got := c.MinDelay(); math.Abs(got-2) > 1e-9 { // 1·1 effort + p=1
		t.Errorf("defaulted chain delay = %g, want 2", got)
	}
}

func TestOptimalStages(t *testing.T) {
	cases := []struct {
		effort float64
		want   int
	}{
		{0.5, 1}, {1, 1}, {4, 1}, {16, 2}, {64, 3}, {256, 4},
	}
	for _, c := range cases {
		if got := OptimalStages(c.effort); got != c.want {
			t.Errorf("OptimalStages(%g) = %d, want %d", c.effort, got, c.want)
		}
	}
}

func TestBufferChainDelayMonotonic(t *testing.T) {
	prev := 0.0
	for _, h := range []float64{1, 4, 16, 64, 256, 1024} {
		d := BufferChainDelay(10, h)
		if d <= prev {
			t.Errorf("BufferChainDelay(τ=10, h=%g) = %g, not increasing (prev %g)", h, d, prev)
		}
		prev = d
	}
}

func TestRepeatedWireDelayHelpsLongWires(t *testing.T) {
	w := Wire{Tech: vlsi.Tech018, LenLamda: 49000}
	plain := w.DistributedDelay()
	repeated := RepeatedWireDelay(w, 4, 50)
	if repeated >= plain {
		t.Errorf("4-segment repeated wire (%.1f ps) not faster than plain (%.1f ps)", repeated, plain)
	}
	if got := RepeatedWireDelay(w, 1, 50); got != plain {
		t.Errorf("1-segment repeated wire = %g, want plain %g", got, plain)
	}
}

func TestPropertyWireDelayMonotonicInLength(t *testing.T) {
	f := func(a, b uint16) bool {
		la, lb := float64(a)+1, float64(b)+1
		if la > lb {
			la, lb = lb, la
		}
		wa := Wire{Tech: vlsi.Tech018, LenLamda: la}
		wb := Wire{Tech: vlsi.Tech018, LenLamda: lb}
		return wa.DistributedDelay() <= wb.DistributedDelay()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyElmoreNonNegative(t *testing.T) {
	f := func(r1, c1, r2, c2 uint8) bool {
		n2 := &RCNode{Resistance: float64(r2), Capacitance: float64(c2)}
		n1 := &RCNode{Resistance: float64(r1), Capacitance: float64(c1), Children: []*RCNode{n2}}
		root := &RCNode{Children: []*RCNode{n1}}
		d, err := ElmoreDelay(root, n2)
		return err == nil && d >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
