package ce

// Segment-parallel simulation: shard one workload's trace into K
// segments at the boundaries captured during its single functional
// execution, time each segment independently (fanning out across CPUs),
// and stitch the per-segment Stats back into one whole-run result.
//
// Two regimes, chosen by the engine's segment plan:
//
//   - Exact (warmup < 0, sample 1): each segment replays its full
//     prefix as warmup, so the stitched result is bit-identical to the
//     monolithic run (the telescoping argument in internal/pipeline's
//     segment.go) and shares the monolithic run-cache key. Total work
//     is O(K·N), so this mode trades CPU for latency: wall clock drops
//     only when idle cores absorb the redundant prefixes.
//
//   - Sampled (finite warmup and/or sample > 1): each measured segment
//     warms caches and predictors over a bounded prefix, and only every
//     sample-th segment is simulated. Total work drops to roughly
//     (warmup + N/K) · K/sample records, which is where the real
//     speedup lives; the result is an estimate and carries a
//     per-segment-IPC confidence interval. Approximate results are
//     cached under a key suffixed with the plan so they can never
//     shadow (or be shadowed by) an exact run.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SegmentMetrics describes how a segmented run was conducted and, for
// sampled runs, how tight the estimate is.
type SegmentMetrics struct {
	// Segments is how many segments the trace was cut into; Simulated is
	// how many were actually timed (== Segments unless sampling).
	Segments  int `json:"segments"`
	Simulated int `json:"simulated"`
	// Warmup is the per-segment warmup prefix in committed instructions
	// (-1 = full prefix, the exact mode; 0 under adaptive warmup, which
	// replays no prefix at all).
	Warmup int64 `json:"warmup"`
	// Sample is the sampling stride: every Sample-th segment is timed.
	Sample int `json:"sample"`
	// Mode names how the timed segments were chosen: "exact" (all, full
	// warmup), "stride" (every Sample-th), or "phase" (one representative
	// per behavior cluster, weighted by cluster mass).
	Mode string `json:"mode"`
	// Phases is the number of behavior clusters found (phase mode only).
	Phases int `json:"phases,omitempty"`
	// Exact reports whether the stitched result is bit-identical to the
	// monolithic run (full warmup, no sampling).
	Exact bool `json:"exact"`
	// AdaptiveWarmup reports whether per-segment IPC-convergence warmup
	// replaced the fixed prefix; WarmupMeanSteps is then the mean
	// instructions each timed segment actually discarded, and
	// WarmupConverged counts segments whose windowed IPC settled before
	// the cap.
	AdaptiveWarmup  bool    `json:"adaptive_warmup,omitempty"`
	WarmupMeanSteps float64 `json:"warmup_mean_steps,omitempty"`
	WarmupConverged int     `json:"warmup_converged,omitempty"`
	// IPCMean and IPCHalfCI95 summarize the timed segments' IPC
	// population: the (phase-weighted, in phase mode) mean and the
	// half-width of its 95% confidence interval.
	IPCMean     float64 `json:"ipc_mean"`
	IPCHalfCI95 float64 `json:"ipc_half_ci95"`
	// EstimatedCycles extrapolates the whole-run cycle count from the
	// timed segments (equals the stitched cycles when every segment ran).
	EstimatedCycles int64 `json:"estimated_cycles"`
}

// SetSegments selects segment-parallel simulation for this engine's
// replay-driven runs: each workload's trace is cut into (up to) k
// segments timed independently. k <= 1 restores monolithic simulation.
func (e *Engine) SetSegments(k int) {
	e.traceMu.Lock()
	e.segments = k
	e.traceMu.Unlock()
}

// SetSegmentWarmup sets the per-segment warmup prefix, in committed
// instructions, whose cycles are discarded before a segment's
// measurement window opens. Negative means the full prefix (exact
// stitching, the default); 0 means cold-start at the boundary.
func (e *Engine) SetSegmentWarmup(warmup int64) {
	e.traceMu.Lock()
	e.segWarmup = warmup
	e.traceMu.Unlock()
}

// SetSegmentSample sets the sampling stride: every sample-th segment is
// simulated and the rest extrapolated. sample <= 1 simulates every
// segment.
func (e *Engine) SetSegmentSample(sample int) {
	e.traceMu.Lock()
	e.segSample = sample
	e.traceMu.Unlock()
}

// SetSegmentAdaptive replaces the fixed per-segment warmup prefix with
// IPC-convergence detection: each timed segment starts cold at its
// boundary and discards its own leading sub-windows until the windowed
// IPC settles (see pipeline.SegmentOpts). The result is approximate,
// like any finite warmup.
func (e *Engine) SetSegmentAdaptive(on bool) {
	e.traceMu.Lock()
	e.segAdaptive = on
	e.traceMu.Unlock()
}

// SetSegmentPhases selects phase-clustered sampling: the trace's
// segments are clustered into at most k phases by their basic-block
// vectors, one representative per phase is timed, and the results are
// stitched with cluster weights. k <= 0 disables (stride sampling
// applies). Traces without a BBV profile fall back to stride sampling.
func (e *Engine) SetSegmentPhases(k int) {
	e.traceMu.Lock()
	e.segPhases = k
	e.traceMu.Unlock()
}

// segPlan is a snapshot of the engine's segment configuration. Every
// field feeds segmented timing, so every field must reach the run-cache
// key segKeySuffix builds — keylint's via mode enforces it, because a
// plan field dropped from the key would let an approximate run
// masquerade as a different plan's (or the exact) result.
//
//ce:keyed via=segKeySuffix
type segPlan struct {
	k        int   // segments to cut (<=1: monolithic)
	warmup   int64 // fixed warmup prefix (-1: full, exact)
	sample   int   // stride sampling (>=1)
	adaptive bool  // IPC-convergence warmup instead of the fixed prefix
	phases   int   // phase-clustered sampling (>0: at most this many phases)
}

// exact reports whether the plan stitches bit-identical to the
// monolithic run: full warmup, every segment timed.
func (p segPlan) exact() bool {
	return p.warmup < 0 && !p.adaptive && p.sample == 1 && p.phases <= 0
}

// segmentPlan snapshots the engine's segment configuration.
func (e *Engine) segmentPlan() segPlan {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	p := segPlan{
		k:        e.segments,
		warmup:   e.segWarmup,
		sample:   e.segSample,
		adaptive: e.segAdaptive,
		phases:   e.segPhases,
	}
	if p.sample < 1 {
		p.sample = 1
	}
	return p
}

// segKeySuffix returns the run-cache key suffix for the engine's
// current segment plan under cfg. Exact segmentation ("" as well as no
// segmentation at all) shares the monolithic key — the results are
// bit-identical, so a cache hit either way is correct. Approximate
// plans get a distinct suffix so an estimate can never masquerade as an
// exact result. Wrong-path configurations cannot replay and therefore
// always run monolithic, whatever the plan says.
func (e *Engine) segKeySuffix(cfg Config) string {
	p := e.segmentPlan()
	e.traceMu.Lock()
	noReplay := e.noReplay
	e.traceMu.Unlock()
	if p.k <= 1 || noReplay || cfg.WrongPathExecution {
		return ""
	}
	if p.exact() {
		return "" // exact: same bits as the monolithic run
	}
	return fmt.Sprintf("\x00segments=%d warmup=%d sample=%d adaptive=%t phases=%d",
		p.k, p.warmup, p.sample, p.adaptive, p.phases)
}

// runSegments fans the given segment indices out across CPUs, running
// pipeline.RunSegmentOpts for each, and returns the per-segment Stats
// and warmup reports in index order. The fan-out lives here — not in
// internal/pipeline, which is //ce:deterministic and goroutine-free —
// so each worker runs a fully independent Simulator over the shared
// read-only trace, holding one chunk buffer each for disk-backed
// traces (K workers keep O(K) chunks resident, whatever the trace
// size).
func runSegments(cfg Config, tr *trace.Trace, segs []trace.Segment, pick []int, opts pipeline.SegmentOpts) ([]Stats, []pipeline.SegmentReport, error) {
	parts := make([]Stats, len(pick))
	reports := make([]pipeline.SegmentReport, len(pick))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		firstIdx int
	)
	idx := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pick) {
		workers = len(pick)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				st, rep, err := pipeline.RunSegmentOpts(cfg, tr, segs[pick[i]], opts, maxCycles)
				if err != nil {
					errMu.Lock()
					if firstErr == nil || i < firstIdx {
						firstErr, firstIdx = err, i
					}
					errMu.Unlock()
					continue
				}
				parts[i] = st
				reports[i] = rep
			}
		}()
	}
	for i := range pick {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return parts, reports, nil
}

// runSegmented performs one segment-parallel simulation of (cfg, tr)
// under the given plan and returns the stitched Stats plus the segment
// metrics recorded into the run's attribution.
//
// Phase mode times one representative segment per behavior cluster and
// weights it by the cluster's share of the execution, so the IPC mean
// is cluster-weighted (stats.WeightedMeanCI95) and the cycle estimate
// sums each phase's instructions at its representative's IPC. Stride
// mode times every sample-th segment and treats them as an unweighted
// IPC population.
func (e *Engine) runSegmented(cfg Config, tr *trace.Trace, plan segPlan, attr *simAttribution) (Stats, error) {
	segs := tr.Segments(plan.k)
	mode := "stride"
	if plan.exact() {
		mode = "exact"
	}
	var (
		pick    []int
		weights []float64 // phase mode: pick[i]'s share of the execution
	)
	if plan.phases > 0 {
		if phases := tr.SegmentPhases(segs, plan.phases); phases != nil {
			mode = "phase"
			pick = make([]int, len(phases))
			weights = make([]float64, len(phases))
			for i, ph := range phases {
				pick[i] = ph.Rep
				weights[i] = ph.Weight
			}
		}
		// No BBV profile (pre-v3 trace still resident): stride sampling.
	}
	if pick == nil {
		pick = make([]int, 0, (len(segs)+plan.sample-1)/plan.sample)
		for i := 0; i < len(segs); i += plan.sample {
			pick = append(pick, i)
		}
	}
	// Gang the segment fan-out when the slab cache admits the trace: the
	// K segment workers (across however many configs run concurrently)
	// share each chunk decoded once, each pinning a single slab at a
	// time. Streaming otherwise — each worker a private Reader.
	opts := pipeline.SegmentOpts{Warmup: plan.warmup, Adaptive: plan.adaptive, Slabs: e.slabCacheFor(tr)}
	parts, reports, err := runSegments(cfg, tr, segs, pick, opts)
	if err != nil {
		return Stats{}, err
	}
	st, err := pipeline.StitchStats(parts)
	if err != nil {
		return Stats{}, err
	}
	ipcs := make([]float64, len(parts))
	for i, p := range parts {
		ipcs[i] = p.IPC()
	}
	var mean, half float64
	if mode == "phase" {
		mean, half = stats.WeightedMeanCI95(ipcs, weights)
	} else {
		mean, half = stats.MeanCI95(ipcs)
	}
	warmup := plan.warmup
	if plan.adaptive {
		warmup = 0
	}
	sm := &SegmentMetrics{
		Segments:        len(segs),
		Simulated:       len(parts),
		Warmup:          warmup,
		Sample:          plan.sample,
		Mode:            mode,
		Exact:           plan.exact(),
		AdaptiveWarmup:  plan.adaptive,
		IPCMean:         mean,
		IPCHalfCI95:     half,
		EstimatedCycles: st.Cycles,
	}
	if mode == "phase" {
		sm.Phases = len(pick)
		// Each phase's instructions retire at its representative's IPC.
		var cyc float64
		for i, w := range weights {
			if ipcs[i] > 0 {
				cyc += w * float64(tr.Steps()) / ipcs[i]
			}
		}
		if cyc > 0 {
			sm.EstimatedCycles = int64(cyc)
		}
	} else if plan.sample > 1 && mean > 0 {
		// Extrapolate: the whole trace at the sampled segments' mean IPC.
		sm.EstimatedCycles = int64(float64(tr.Steps()) / mean)
	}
	if plan.adaptive {
		var steps uint64
		for _, r := range reports {
			steps += r.WarmupSteps
			if r.Converged {
				sm.WarmupConverged++
			}
		}
		if len(reports) > 0 {
			sm.WarmupMeanSteps = float64(steps) / float64(len(reports))
		}
	}
	attr.segments = sm
	attr.ganged = opts.Slabs != nil
	e.traceMu.Lock()
	e.tstats.ReplayRuns++
	e.tstats.SegmentRuns++
	e.tstats.SegmentsSimulated += len(parts)
	e.tstats.StepsReplayed += st.EmuSteps
	if opts.Slabs != nil {
		e.tstats.GangRuns++
	} else {
		// Private streaming readers decoded every measured record plus
		// each segment's warmup prefix (WarmupSteps counts committed
		// instructions — a close proxy for records decoded during warmup).
		decoded := st.EmuSteps
		for _, r := range reports {
			decoded += r.WarmupSteps
		}
		e.tstats.RecordsDecoded += decoded
	}
	e.traceMu.Unlock()
	return st, nil
}

// SegmentBenchResult quantifies what segment-parallel simulation buys
// on one (config, workload) pair: the monolithic baseline against the
// sampled segmented run, with the estimate's error and the wall-clock
// speedup.
type SegmentBenchResult struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Segments int    `json:"segments"`
	Sample   int    `json:"sample"`
	Warmup   int64  `json:"warmup"`
	Steps    uint64 `json:"steps"`

	MonoWallSeconds float64 `json:"mono_wall_seconds"`
	MonoCycles      int64   `json:"mono_cycles"`
	MonoIPC         float64 `json:"mono_ipc"`

	SampledWallSeconds float64 `json:"sampled_wall_seconds"`
	SampledIPC         float64 `json:"sampled_ipc"`
	IPCHalfCI95        float64 `json:"ipc_half_ci95"`
	// IPCErrorPct is the sampled IPC's signed error against the
	// monolithic truth, in percent.
	IPCErrorPct float64 `json:"ipc_error_pct"`
	// Speedup is MonoWallSeconds / SampledWallSeconds.
	Speedup float64 `json:"speedup"`
}

// SegmentBench measures segment-parallel sampled simulation against the
// monolithic baseline on one workload under the baseline configuration.
// The trace is captured (or loaded) up front so neither side is charged
// for it.
func SegmentBench(workload string, segments, sample int, warmup int64) (*SegmentBenchResult, error) {
	eng := NewEngine()
	tr, err := eng.traceFor(workload)
	if err != nil {
		return nil, err
	}
	cfg := BaselineConfig()

	start := time.Now()
	sim, err := pipeline.NewReplay(cfg, trace.NewReader(tr))
	if err != nil {
		return nil, err
	}
	mono, err := sim.Run(maxCycles)
	if err != nil {
		return nil, err
	}
	monoWall := time.Since(start).Seconds()

	segs := tr.Segments(segments)
	pick := make([]int, 0, len(segs))
	for i := 0; i < len(segs); i += max(sample, 1) {
		pick = append(pick, i)
	}
	start = time.Now()
	parts, _, err := runSegments(cfg, tr, segs, pick, pipeline.SegmentOpts{Warmup: warmup})
	if err != nil {
		return nil, err
	}
	sampledWall := time.Since(start).Seconds()
	ipcs := make([]float64, len(parts))
	for i, p := range parts {
		ipcs[i] = p.IPC()
	}
	mean, half := stats.MeanCI95(ipcs)

	res := &SegmentBenchResult{
		Workload: workload,
		Config:   cfg.Name,
		Segments: len(segs),
		Sample:   sample,
		Warmup:   warmup,
		Steps:    tr.Steps(),

		MonoWallSeconds: monoWall,
		MonoCycles:      mono.Cycles,
		MonoIPC:         mono.IPC(),

		SampledWallSeconds: sampledWall,
		SampledIPC:         mean,
		IPCHalfCI95:        half,
	}
	if res.MonoIPC > 0 {
		res.IPCErrorPct = (mean - res.MonoIPC) / res.MonoIPC * 100
	}
	if sampledWall > 0 {
		res.Speedup = monoWall / sampledWall
	}
	return res, nil
}
