package prog

// ijpeg mirrors SPEC95 132.ijpeg: blocked integer image transforms. The
// paper's evaluation used seven of the eight SPECint95 programs (ijpeg was
// omitted), so this workload is registered as an *extension*: it does not
// participate in the paper's figures, but is available to cesim and the
// ablation studies. The kernel runs a butterfly transform over 8×8 blocks
// followed by quantization — wide, regular ILP with few branches, the
// profile that made ijpeg the highest-IPC SPECint95 member.

const (
	ijpegBlocks = 120
	ijpegSize   = 8
)

func ijpegRef() []int32 {
	var block [ijpegSize * ijpegSize]int32
	s := int32(1357)
	var csum, nonzero int32
	for b := 0; b < ijpegBlocks; b++ {
		for i := range block {
			s = lcg(s)
			block[i] = ((s >> 16) & 0xFF) - 128
		}
		// Row butterflies.
		for r := 0; r < ijpegSize; r++ {
			base := r * ijpegSize
			for k := 0; k < 4; k++ {
				x, y := block[base+k], block[base+7-k]
				block[base+k] = x + y
				block[base+7-k] = (x - y) * int32(k+1)
			}
		}
		// Column butterflies.
		for c := 0; c < ijpegSize; c++ {
			for k := 0; k < 4; k++ {
				i1, i2 := k*ijpegSize+c, (7-k)*ijpegSize+c
				x, y := block[i1], block[i2]
				block[i1] = x + y
				block[i2] = (x - y) * int32(k+1)
			}
		}
		// Quantize and accumulate.
		for i := range block {
			q := block[i] >> uint(2+(i&3))
			csum = csum*31 + q
			if q > 0 {
				nonzero++
			}
		}
	}
	return []int32{nonzero, csum}
}

const ijpegSrc = `
# ijpeg: 8x8 block butterfly transform and quantization
# (mirrors SPEC95 132.ijpeg's blocked integer image processing).
		.data
block:	.space 256             # 64 words
		.text
main:
		la   $s0, block
		li   $t0, 1357         # seed
		li   $t8, 1103515245
		li   $s1, 0            # block counter
		li   $s4, 0            # csum
		li   $s5, 0            # nonzero
		li   $t9, 31
blockloop:
		# Fill the block from the LCG: pixel - 128.
		li   $t1, 0
fill:	mul  $t0, $t0, $t8
		addi $t0, $t0, 12345
		srl  $t2, $t0, 16
		andi $t2, $t2, 0xFF
		addi $t2, $t2, -128
		sll  $t3, $t1, 2
		add  $t3, $s0, $t3
		sw   $t2, 0($t3)
		addi $t1, $t1, 1
		li   $t3, 64
		blt  $t1, $t3, fill

		# Row butterflies.
		li   $t1, 0            # r
rowloop: sll  $t2, $t1, 3      # base = r*8
		li   $t3, 0            # k
rowk:	add  $t4, $t2, $t3     # base+k
		sll  $t4, $t4, 2
		add  $t4, $s0, $t4
		li   $t5, 7
		sub  $t5, $t5, $t3     # 7-k
		add  $t5, $t2, $t5
		sll  $t5, $t5, 2
		add  $t5, $s0, $t5
		lw   $t6, 0($t4)       # x
		lw   $t7, 0($t5)       # y
		add  $v0, $t6, $t7
		sw   $v0, 0($t4)
		sub  $v0, $t6, $t7
		addi $v1, $t3, 1
		mul  $v0, $v0, $v1
		sw   $v0, 0($t5)
		addi $t3, $t3, 1
		li   $v1, 4
		blt  $t3, $v1, rowk
		addi $t1, $t1, 1
		li   $v1, 8
		blt  $t1, $v1, rowloop

		# Column butterflies.
		li   $t1, 0            # c
colloop: li  $t3, 0            # k
colk:	sll  $t4, $t3, 3       # k*8
		add  $t4, $t4, $t1
		sll  $t4, $t4, 2
		add  $t4, $s0, $t4     # &block[k*8+c]
		li   $t5, 7
		sub  $t5, $t5, $t3
		sll  $t5, $t5, 3
		add  $t5, $t5, $t1
		sll  $t5, $t5, 2
		add  $t5, $s0, $t5     # &block[(7-k)*8+c]
		lw   $t6, 0($t4)
		lw   $t7, 0($t5)
		add  $v0, $t6, $t7
		sw   $v0, 0($t4)
		sub  $v0, $t6, $t7
		addi $v1, $t3, 1
		mul  $v0, $v0, $v1
		sw   $v0, 0($t5)
		addi $t3, $t3, 1
		li   $v1, 4
		blt  $t3, $v1, colk
		addi $t1, $t1, 1
		li   $v1, 8
		blt  $t1, $v1, colloop

		# Quantize and accumulate.
		li   $t1, 0
quant:	sll  $t3, $t1, 2
		add  $t3, $s0, $t3
		lw   $t4, 0($t3)
		andi $t5, $t1, 3
		addi $t5, $t5, 2
		srav $t4, $t4, $t5     # q = v >> (2 + (i&3))
		mul  $s4, $s4, $t9
		add  $s4, $s4, $t4
		blez $t4, notpos
		addi $s5, $s5, 1
notpos:	addi $t1, $t1, 1
		li   $t5, 64
		blt  $t1, $t5, quant

		addi $s1, $s1, 1
		li   $t5, 120
		blt  $s1, $t5, blockloop

		out  $s5
		out  $s4
		halt
`

func init() {
	register(&Workload{
		Name:        "ijpeg",
		Description: "8x8 block butterfly transform with quantization — extension, not in the paper's seven (mirrors SPEC95 132.ijpeg)",
		Source:      ijpegSrc,
		Reference:   ijpegRef,
		Extension:   true,
	})
}
