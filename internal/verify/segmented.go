package verify

// Differential verification of the segment-parallel seam
// (internal/pipeline's segment.go, orchestrated by the root package):
// stitched full-warmup segment runs must equal the monolithic replay
// run on every deterministic statistic, and sampled finite-warmup
// stitching must land inside its stated error bars. Generated panel
// programs are too short to cross a boundary, so this check runs on
// named workloads long enough to segment.

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/trace"
)

// sampledTolerance is the error bar CheckSegmented holds sampled
// stitching to: the monolithic IPC must lie within the per-segment 95%
// confidence interval widened by this relative slack (finite warmup
// biases every segment the same way, which a CI over segments cannot
// see).
const sampledTolerance = 0.10

// CheckSegmented differentially verifies segment-parallel simulation of
// one named workload against every replay-capable panel configuration,
// cutting the trace into (up to) k segments. Wrong-path configurations
// are skipped: they cannot replay, so the engine never segments them.
func CheckSegmented(workload string, k int) error {
	w, err := prog.ByName(workload)
	if err != nil {
		return err
	}
	p, err := w.Program()
	if err != nil {
		return err
	}
	tr, err := trace.Capture(p, maxInsts)
	if err != nil {
		return fmt.Errorf("verify: %s: %w", workload, err)
	}
	if tr.Boundaries() == 0 {
		return fmt.Errorf("verify: %s (%d steps) has no segment boundaries; pick a longer workload", workload, tr.Steps())
	}
	for _, cfg := range Panel() {
		if cfg.WrongPathExecution {
			continue
		}
		bare := cfg
		bare.CheckInvariants = false
		bare.RecordTimeline = false
		if err := checkSegmentedOne(bare, tr, k); err != nil {
			return err
		}
	}
	return nil
}

// CheckSegmentedStreamed is CheckSegmented through the disk-backed
// path: the workload is captured twice, once in memory and once
// streamed into dir, and the two traces must agree on every execution
// property; then every replay-capable panel configuration must produce
// identical monolithic statistics from both traces (the streamed
// reader is byte-equivalent to the in-memory one), and the segmented
// seam is re-verified over the streamed trace, whose segment workers
// seek and stream their chunks from the file.
func CheckSegmentedStreamed(workload string, k int, dir string) error {
	w, err := prog.ByName(workload)
	if err != nil {
		return err
	}
	p, err := w.Program()
	if err != nil {
		return err
	}
	mem, err := trace.Capture(p, maxInsts)
	if err != nil {
		return fmt.Errorf("verify: %s: %w", workload, err)
	}
	disk, err := trace.CaptureToDir(p, maxInsts, dir)
	if err != nil {
		return fmt.Errorf("verify: %s (streamed): %w", workload, err)
	}
	if mem.Steps() != disk.Steps() {
		return fmt.Errorf("verify: %s: streamed capture took %d steps, in-memory %d", workload, disk.Steps(), mem.Steps())
	}
	if mem.StateHash() != disk.StateHash() {
		return fmt.Errorf("verify: %s: streamed capture's final state diverges from the in-memory capture's", workload)
	}
	for _, cfg := range Panel() {
		if cfg.WrongPathExecution {
			continue
		}
		bare := cfg
		bare.CheckInvariants = false
		bare.RecordTimeline = false
		fromMem, err := replayMono(bare, mem)
		if err != nil {
			return fmt.Errorf("verify: %s on %s: %w", workload, bare.Name, err)
		}
		fromDisk, err := replayMono(bare, disk)
		if err != nil {
			return fmt.Errorf("verify: %s on %s (streamed): %w", workload, bare.Name, err)
		}
		if err := diffStats(fromDisk, fromMem); err != nil {
			return fmt.Errorf("verify: %s on %s: streamed reader diverges from in-memory: %w", workload, bare.Name, err)
		}
		if err := checkSegmentedOne(bare, disk, k); err != nil {
			return err
		}
	}
	return nil
}

func replayMono(cfg pipeline.Config, tr *trace.Trace) (pipeline.Stats, error) {
	sim, err := pipeline.NewReplay(cfg, trace.NewReader(tr))
	if err != nil {
		return pipeline.Stats{}, err
	}
	return sim.Run(maxCycles)
}

func checkSegmentedOne(cfg pipeline.Config, tr *trace.Trace, k int) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("verify: %s on %s (segmented): %s", tr.Program().Name, cfg.Name, fmt.Sprintf(format, args...))
	}
	sim, err := pipeline.NewReplay(cfg, trace.NewReader(tr))
	if err != nil {
		return fail("%v", err)
	}
	mono, err := sim.Run(maxCycles)
	if err != nil {
		return fail("%v", err)
	}
	segs := tr.Segments(k)
	if len(segs) < 2 {
		return fail("Segments(%d) produced %d segments from %d boundaries", k, len(segs), tr.Boundaries())
	}

	// Exact regime: full warmup, every segment. The stitched statistics
	// must equal the monolithic run's on every deterministic field.
	parts := make([]pipeline.Stats, len(segs))
	for i, seg := range segs {
		parts[i], err = pipeline.RunSegment(cfg, tr, seg, -1, maxCycles)
		if err != nil {
			return fail("segment %d: %v", i, err)
		}
	}
	stitched, err := pipeline.StitchStats(parts)
	if err != nil {
		return fail("%v", err)
	}
	if err := diffStats(stitched, mono); err != nil {
		return fail("full-warmup stitch: %v", err)
	}

	// Exact regime again, gang-driven: the segment runs read shared
	// decoded slabs instead of private streaming readers (for file-backed
	// traces this swaps per-run chunk reads and checksum verification for
	// one decode per chunk), and the stitch must still be bit-identical.
	slabs := trace.NewSlabCache(tr.DecodedBytes())
	for i, seg := range segs {
		parts[i], _, err = pipeline.RunSegmentOpts(cfg, tr, seg, pipeline.SegmentOpts{Warmup: -1, Slabs: slabs}, maxCycles)
		if err != nil {
			return fail("gang segment %d: %v", i, err)
		}
	}
	stitched, err = pipeline.StitchStats(parts)
	if err != nil {
		return fail("%v", err)
	}
	if err := diffStats(stitched, mono); err != nil {
		return fail("gang full-warmup stitch: %v", err)
	}

	// Sampled regime: finite warmup, every second segment. The estimate
	// must stay inside its stated error bars against the monolithic IPC.
	var ipcs []float64
	for i := 0; i < len(segs); i += 2 {
		st, err := pipeline.RunSegment(cfg, tr, segs[i], 1<<14, maxCycles)
		if err != nil {
			return fail("sampled segment %d: %v", i, err)
		}
		ipcs = append(ipcs, st.IPC())
	}
	mean, half := stats.MeanCI95(ipcs)
	slack := half + sampledTolerance*mean
	if d := mean - mono.IPC(); d > slack || d < -slack {
		return fail("sampled IPC %.4f ± %.4f misses monolithic %.4f (tolerance %.4f)",
			mean, half, mono.IPC(), slack)
	}
	return nil
}

// diffStats reports the first deterministic statistic on which got
// diverges from want (host telemetry is exempt — it measures the runs
// themselves, which legitimately differ).
func diffStats(got, want pipeline.Stats) error {
	cmp := func(g, w uint64, what string) error {
		if g != w {
			return fmt.Errorf("%s = %d, monolithic %d", what, g, w)
		}
		return nil
	}
	if got.Cycles != want.Cycles {
		return fmt.Errorf("cycles = %d, monolithic %d", got.Cycles, want.Cycles)
	}
	checks := []error{
		cmp(got.Committed, want.Committed, "committed"),
		cmp(got.EmuSteps, want.EmuSteps, "emu steps"),
		cmp(got.CondBranches, want.CondBranches, "cond branches"),
		cmp(got.Mispredicts, want.Mispredicts, "mispredicts"),
		cmp(got.InterClusterUops, want.InterClusterUops, "inter-cluster uops"),
		cmp(got.ForwardedLoads, want.ForwardedLoads, "forwarded loads"),
		cmp(got.SquashedUops, want.SquashedUops, "squashed uops"),
		cmp(got.SchedulerStalls, want.SchedulerStalls, "scheduler stalls"),
		cmp(got.PhysRegStalls, want.PhysRegStalls, "physreg stalls"),
		cmp(got.ROBStalls, want.ROBStalls, "rob stalls"),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	if got.Cache != want.Cache || got.ICache != want.ICache {
		return fmt.Errorf("cache stats %+v/%+v, monolithic %+v/%+v", got.Cache, got.ICache, want.Cache, want.ICache)
	}
	if g, w := got.IssuedPerCycle.Total(), want.IssuedPerCycle.Total(); g != w {
		return fmt.Errorf("issue histogram records %d cycles, monolithic %d", g, w)
	}
	for v := 0; v <= 16; v++ {
		if g, w := got.IssuedPerCycle.Count(v), want.IssuedPerCycle.Count(v); g != w {
			return fmt.Errorf("issue histogram bucket %d = %d, monolithic %d", v, g, w)
		}
	}
	return nil
}
