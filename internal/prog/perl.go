package prog

// perl mirrors SPEC95 134.perl: associative-array (hash) manipulation over
// generated "words". Rolling string hashes feed an open-addressed table;
// an insert phase is followed by hit and miss lookup phases — short serial
// hash chains, data-dependent probe loops, and hard-to-predict branches.

const (
	perlNWords  = 1500
	perlTabBits = 11 // 2048 slots
)

// perlHashStream generates the word stream from a seed and calls fn with
// each word's rolling hash (forced odd so 0 can mean "empty slot").
func perlHashStream(seed int32, n int, fn func(h int32)) {
	s := seed
	for i := 0; i < n; i++ {
		s = lcg(s)
		length := 3 + (s>>16)&7
		h := int32(0)
		for k := int32(0); k < length; k++ {
			s = lcg(s)
			c := 97 + (s>>16)&15
			h = h*31 + c
		}
		fn(h | 1)
	}
}

func perlRef() []int32 {
	const size = 1 << perlTabBits
	const mask = size - 1
	key := make([]int32, size)
	count := make([]int32, size)
	probe := func(h int32) int32 {
		idx := int32(uint32(h)>>4) & mask
		for key[idx] != 0 && key[idx] != h {
			idx = (idx + 1) & mask
		}
		return idx
	}
	var distinct int32
	perlHashStream(8191, perlNWords, func(h int32) {
		idx := probe(h)
		if key[idx] == 0 {
			key[idx] = h
			distinct++
		}
		count[idx]++
	})
	var found, foundSum int32
	perlHashStream(8191, perlNWords, func(h int32) {
		idx := probe(h)
		if key[idx] == h {
			found++
			foundSum += count[idx]
		}
	})
	var miss int32
	perlHashStream(5557, perlNWords, func(h int32) {
		idx := probe(h)
		if key[idx] == 0 {
			miss++
		}
	})
	return []int32{distinct, found, foundSum, miss}
}

const perlSrc = `
# perl: rolling-hash word hashing into an open-addressed associative array
# (mirrors SPEC95 134.perl's hash-dominated execution).
		.data
hkey:	.space 8192            # 2048 slots
hcnt:	.space 8192
		.text
main:
		la   $s0, hkey
		la   $s1, hcnt
		li   $t8, 1103515245

		# Phase 1: insert perlNWords words (seed 8191).
		li   $s2, 8191         # stream seed
		li   $s3, 1500         # words remaining
		li   $s5, 0            # distinct
ins:	jal  nexthash          # $v0 = word hash
		jal  probe             # $v1 = slot address
		lw   $t1, 0($v1)
		bne  $t1, $zero, seen
		sw   $v0, 0($v1)       # key[idx] = h
		addi $s5, $s5, 1
seen:	add  $t2, $v1, $zero
		sub  $t2, $t2, $s0
		add  $t2, $s1, $t2     # &count[idx]
		lw   $t1, 0($t2)
		addi $t1, $t1, 1
		sw   $t1, 0($t2)
		addi $s3, $s3, -1
		bgtz $s3, ins

		# Phase 2: re-generate the same stream; every word must hit.
		li   $s2, 8191
		li   $s3, 1500
		li   $s6, 0            # found
		li   $s7, 0            # foundSum
hit:	jal  nexthash
		jal  probe
		lw   $t1, 0($v1)
		bne  $t1, $v0, nothit
		addi $s6, $s6, 1
		add  $t2, $v1, $zero
		sub  $t2, $t2, $s0
		add  $t2, $s1, $t2
		lw   $t1, 0($t2)
		add  $s7, $s7, $t1
nothit:	addi $s3, $s3, -1
		bgtz $s3, hit

		# Phase 3: a different stream (seed 5557); mostly misses.
		li   $s2, 5557
		li   $s3, 1500
		li   $fp, 0            # miss
mis:	jal  nexthash
		jal  probe
		lw   $t1, 0($v1)
		bne  $t1, $zero, notmiss
		addi $fp, $fp, 1
notmiss: addi $s3, $s3, -1
		bgtz $s3, mis

		out  $s5
		out  $s6
		out  $s7
		out  $fp
		halt

# nexthash: draw the next word from the stream in $s2 and return its
# rolling hash (forced odd) in $v0. Clobbers $t0-$t3.
nexthash:
		mul  $s2, $s2, $t8
		addi $s2, $s2, 12345
		srl  $t0, $s2, 16
		andi $t0, $t0, 7
		addi $t0, $t0, 3       # length
		li   $v0, 0
		li   $t3, 31
nhchar:	mul  $s2, $s2, $t8
		addi $s2, $s2, 12345
		srl  $t1, $s2, 16
		andi $t1, $t1, 15
		addi $t1, $t1, 97      # char
		mul  $v0, $v0, $t3
		add  $v0, $v0, $t1
		addi $t0, $t0, -1
		bgtz $t0, nhchar
		ori  $v0, $v0, 1
		jr   $ra

# probe: open-address probe for hash $v0; returns the slot address (first
# matching or first empty) in $v1. Clobbers $t0-$t1.
probe:
		srl  $t0, $v0, 4
		andi $t0, $t0, 0x7FF   # idx
ploop:	sll  $t1, $t0, 2
		add  $v1, $s0, $t1
		lw   $t1, 0($v1)
		beq  $t1, $zero, pdone
		beq  $t1, $v0, pdone
		addi $t0, $t0, 1
		andi $t0, $t0, 0x7FF
		j    ploop
pdone:	jr   $ra
`

func init() {
	register(&Workload{
		Name:        "perl",
		Description: "rolling-hash word insertion and lookup in an open-addressed associative array (mirrors SPEC95 134.perl)",
		Source:      perlSrc,
		Reference:   perlRef,
	})
}
