package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestKnownAndReasonRequired(t *testing.T) {
	for _, name := range []string{
		Deterministic, Keyed, TimingNeutral, Hot, ClassifyErrors, Classifier,
		NondetOK, AllocOK, LockOK, ErrOK, DetBoundary,
	} {
		if !Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
	}
	if Known("nondetok") {
		t.Error("Known accepted a typo verb")
	}
	for _, name := range []string{NondetOK, AllocOK, LockOK, ErrOK, DetBoundary} {
		if !ReasonRequired(name) {
			t.Errorf("ReasonRequired(%q) = false, want true", name)
		}
	}
	for _, name := range []string{Deterministic, Keyed, Hot, Classifier} {
		if ReasonRequired(name) {
			t.Errorf("ReasonRequired(%q) = true, want false", name)
		}
	}
}

func TestParam(t *testing.T) {
	d := Directive{Name: Keyed, Reason: "via=segKeySuffix"}
	if got := d.Param("via"); got != "segKeySuffix" {
		t.Errorf("Param(via) = %q", got)
	}
	if got := d.Param("other"); got != "" {
		t.Errorf("Param(other) = %q, want empty", got)
	}
	if got := (Directive{Name: Keyed}).Param("via"); got != "" {
		t.Errorf("Param on bare directive = %q, want empty", got)
	}
}

func TestProblemsMissingReason(t *testing.T) {
	fset, f := parseSrc(t, `package p

func f() {
	_ = 1 //ce:nondet-ok
}
`)
	probs := Problems(fset, f)
	if len(probs) != 1 || !strings.Contains(probs[0].Message, "requires a reason") {
		t.Fatalf("Problems = %v, want one missing-reason error", probs)
	}
	// And the reasonless hatch must not cover anything.
	idx := NewIndex(fset, f, NondetOK)
	if len(idx.Malformed()) != 1 {
		t.Fatalf("Malformed = %v, want 1", idx.Malformed())
	}
	if got := len(idx.byLine); got != 0 {
		t.Fatalf("reasonless hatch covers %d lines, want 0", got)
	}
}

func TestProblemsUnknownVerb(t *testing.T) {
	fset, f := parseSrc(t, `package p

//ce:nondetok suppressed by typo
func f() {}
`)
	probs := Problems(fset, f)
	if len(probs) != 1 || !strings.Contains(probs[0].Message, `unknown //ce: directive "nondetok"`) {
		t.Fatalf("Problems = %v, want one unknown-verb error", probs)
	}
	// The message names the real verbs so the fix is obvious.
	if !strings.Contains(probs[0].Message, "nondet-ok") {
		t.Fatalf("unknown-verb message should list known verbs: %q", probs[0].Message)
	}
}

func TestProblemsDuplicateOnOneLine(t *testing.T) {
	// A second //ce: marker in the same line comment is swallowed into the
	// first comment's text by go/parser, so the syntactic duplicate is two
	// *ast.Comment entries sharing a line. Build that shape directly.
	fset := token.NewFileSet()
	file := fset.AddFile("d.go", -1, 100)
	for i := 1; i <= 3; i++ {
		file.AddLine(i * 20)
	}
	mk := func(offset int, text string) *ast.Comment {
		return &ast.Comment{Slash: file.Pos(offset), Text: text}
	}
	f := &ast.File{
		Name: &ast.Ident{Name: "p", NamePos: file.Pos(0)},
		Comments: []*ast.CommentGroup{{List: []*ast.Comment{
			mk(2, "//ce:alloc-ok pooled"),
			mk(10, "//ce:alloc-ok pooled again"), // same line (offsets 2,10 < 20)
		}}},
	}
	probs := Problems(fset, f)
	if len(probs) != 1 || !strings.Contains(probs[0].Message, "duplicate //ce:alloc-ok") {
		t.Fatalf("Problems = %v, want one duplicate error", probs)
	}
}

func TestProblemsEmbeddedSecondDirective(t *testing.T) {
	fset, f := parseSrc(t, `package p

func f() {
	_ = 1 //ce:alloc-ok pooled //ce:nondet-ok seeded
}
`)
	probs := Problems(fset, f)
	if len(probs) != 1 || !strings.Contains(probs[0].Message, "embedded in the reason") {
		t.Fatalf("Problems = %v, want one embedded-directive error", probs)
	}
}

func TestProblemsCleanFile(t *testing.T) {
	fset, f := parseSrc(t, `package p

// Package-level prose that merely mentions //ce:deterministic inside a
// sentence is fine as long as the comment doesn't start with the marker.

//ce:hot
func f() {
	_ = 1 //ce:alloc-ok reused buffer
}

//ce:det-boundary wraps a seeded source
func g() {}
`)
	if probs := Problems(fset, f); len(probs) != 0 {
		t.Fatalf("clean file produced problems: %v", probs)
	}
}

func TestIndexCoversOwnAndNextLine(t *testing.T) {
	fset, f := parseSrc(t, `package p

func f() {
	//ce:lock-ok short critical section
	mu := 1
	_ = mu //ce:lock-ok inline reason
	_ = 2
}
`)
	idx := NewIndex(fset, f, LockOK)
	find := func(line int) bool {
		_, ok := idx.byLine[line]
		return ok
	}
	if !find(4) || !find(5) {
		t.Error("standalone directive should cover its own and the next line")
	}
	if !find(6) {
		t.Error("trailing directive should cover its own line")
	}
	if find(7) {
		t.Error("directive leaked past its line")
	}
}

func TestFuncDirectiveAndGet(t *testing.T) {
	_, f := parseSrc(t, `package p

//ce:det-boundary wraps the host clock at the telemetry seam
func g() {}
`)
	fd := f.Decls[0].(*ast.FuncDecl)
	d, ok := FuncDirective(fd, DetBoundary)
	if !ok || d.Reason != "wraps the host clock at the telemetry seam" {
		t.Fatalf("FuncDirective = %+v, %v", d, ok)
	}
	if _, ok := FuncDirective(fd, Hot); ok {
		t.Fatal("FuncDirective found a directive that isn't there")
	}
}
