package ce

// Simulator host-performance benchmarks: how fast the timing simulator
// runs on this machine, per panel configuration. These are the numbers
// `cesweep -bench-json` snapshots into BENCH_pipeline.json; run them
// directly with `go test -bench=Simulator -benchtime=1x .` (the CI smoke
// invocation) or longer benchtimes for stable measurements.

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/prog"
)

// BenchmarkSimulatorPanel runs the compress workload through every
// verification-panel configuration with the instruments stripped (the
// production fast path) and reports simulated Mcycles per wall-clock
// second plus allocations per simulated cycle.
func BenchmarkSimulatorPanel(b *testing.B) {
	w, err := prog.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range PipelineBenchConfigs() {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			var cycles int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim, err := pipeline.New(cfg, p)
				if err != nil {
					b.Fatal(err)
				}
				st, err := sim.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			}
			b.StopTimer()
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
		})
	}
}

// TestPipelineBench exercises the BENCH_pipeline.json emitter end to end
// on a short workload and sanity-checks every reported field.
func TestPipelineBench(t *testing.T) {
	path := t.TempDir() + "/BENCH_pipeline.json"
	res, err := WriteBenchJSON(path, "micro.chain")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(PipelineBenchConfigs()) {
		t.Fatalf("got %d results, want one per panel config (%d)",
			len(res), len(PipelineBenchConfigs()))
	}
	for _, r := range res {
		if r.Cycles <= 0 || r.Committed == 0 {
			t.Errorf("%s: empty run: %+v", r.Config, r)
		}
		if r.WallSeconds <= 0 || r.MCyclesPerSec <= 0 {
			t.Errorf("%s: missing host timing: %+v", r.Config, r)
		}
		if r.Workload != "micro.chain" {
			t.Errorf("%s: workload = %q", r.Config, r.Workload)
		}
	}
}
