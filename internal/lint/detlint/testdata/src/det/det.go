// Package det exercises every detlint rule on a marked package.
//
//ce:deterministic
package det

import (
	"fmt"
	"sort"
	"time"
)

type uop struct{ seq int }

// collectUnsorted leaks iteration order into the returned slice.
func collectUnsorted(m map[int]*uop) []*uop {
	var out []*uop
	for _, u := range m { // want "map iteration order escapes"
		out = append(out, u)
	}
	return out
}

// collectSorted uses the collect-keys-then-sort idiom: exempt.
func collectSorted(m map[int]*uop) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// anyReady exits the loop early: which element it returns is
// order-dependent.
func anyReady(m map[int]*uop) *uop {
	for _, u := range m { // want "map iteration order escapes"
		return u
	}
	return nil
}

// count performs pure membership counting: order-independent.
func count(m map[int]*uop, issued map[*uop]bool) int {
	n := 0
	for _, u := range m {
		if issued[u] {
			n++
		}
	}
	return n
}

// invert stores under a distinct key per iteration: order-independent.
func invert(m map[int]*uop) map[*uop]int {
	out := make(map[*uop]int, len(m))
	for k, u := range m {
		out[u] = k
	}
	return out
}

// normalize converts each count into a distinct-key store: a type
// conversion is pure, not a call the iteration order escapes into.
func normalize(counts map[int]int, total int) map[int]float64 {
	out := make(map[int]float64, len(counts))
	for k, n := range counts {
		out[k] = float64(n) / float64(total)
	}
	return out
}

// pickAny keeps whichever element iterated last.
func pickAny(m map[int]*uop) *uop {
	var best *uop
	for _, u := range m { // want "map iteration order escapes"
		best = u
	}
	return best
}

// nonEmpty overwrites with an iteration-independent constant: fine.
func nonEmpty(m map[int]*uop) bool {
	found := false
	for range m {
		found = true
	}
	return found
}

// hashAll leaks the order into a callback.
func hashAll(m map[int]*uop, h func(int)) {
	for k := range m { // want "map iteration order escapes"
		h(k)
	}
}

// lastKey leaves the last-iterated key in an outer variable.
func lastKey(m map[int]*uop) int {
	var k int
	for k = range m { // want "map iteration order escapes"
	}
	return k
}

// classify: break inside a switch targets the switch, not the loop, and
// the accumulation is commutative integer arithmetic.
func classify(m map[int]*uop) int {
	n := 0
	for _, u := range m {
		switch {
		case u.seq > 0:
			n += u.seq
			break
		default:
		}
	}
	return n
}

// innerBreak: break targets the inner for, not the map range.
func innerBreak(m map[int]*uop) int {
	n := 0
	for _, u := range m {
		for i := 0; i < u.seq; i++ {
			if i > 2 {
				break
			}
			n++
		}
	}
	return n
}

// prune deletes from another map, which is order-safe.
func prune(m map[int]*uop, dead map[int]bool) {
	for k := range m {
		delete(dead, k)
	}
}

// stamp reads the host clock.
func stamp() time.Time {
	return time.Now() // want "time.Now reads the host clock"
}

// stampOK carries same-line escape hatches.
func stampOK() time.Duration {
	start := time.Now() //ce:nondet-ok wall-clock telemetry only
	return time.Since(start) //ce:nondet-ok wall-clock telemetry only
}

// stampNext is covered by a standalone hatch on the line above.
func stampNext() time.Time {
	//ce:nondet-ok boot banner timestamp, not simulated time
	return time.Now()
}

// stampBad: a reason-less hatch suppresses nothing (dirlint reports the
// malformed directive itself).
func stampBad() time.Time {
	//ce:nondet-ok
	return time.Now() // want "time.Now reads the host clock"
}

// launch starts a goroutine.
func launch(f func()) {
	go f() // want "goroutine launch"
}

// ptr formats a pointer.
func ptr(u *uop) string {
	return fmt.Sprintf("%p", u) // want "formats a pointer value"
}
