package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/emu"
)

// TestCaptureToDirMatchesMemory pins that the streaming capture path
// produces the same trace as the in-memory path: identical canonical
// bytes, identical replay, and the file is already at its canonical
// path with no separate WriteFile pass.
func TestCaptureToDirMatchesMemory(t *testing.T) {
	p := mustProgram(t, "compress")
	mem, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	streamed, err := CaptureToDir(p, maxInsts, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer streamed.Close()
	if streamed.Path() != DiskPath(dir, p) {
		t.Fatalf("streamed capture at %q, want canonical %q", streamed.Path(), DiskPath(dir, p))
	}
	onDisk, err := os.ReadFile(streamed.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, mem.Marshal()) {
		t.Fatal("streamed capture's file differs from the in-memory capture's canonical bytes")
	}
	disk, resident := streamed.Footprint()
	if disk == 0 || resident != 0 {
		t.Fatalf("streamed trace footprint disk=%d resident=%d, want all bytes on disk", disk, resident)
	}
	if d, r := mem.Footprint(); d != 0 || r == 0 {
		t.Fatalf("memory trace footprint disk=%d resident=%d, want all bytes resident", d, r)
	}
	ref := emu.New(p)
	rd := NewReader(streamed)
	for !ref.Halted() {
		want, err := ref.Step()
		if err != nil {
			t.Fatal(err)
		}
		got, err := rd.Step()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("streamed trace diverges: %+v vs %+v", got, want)
		}
	}
	if streamed.Boundaries() != mem.Boundaries() || !streamed.HasBBV() {
		t.Fatal("streamed capture lost boundaries or the BBV profile")
	}
}

// TestMemoryCaptureSpills pins the bounded in-memory window: a capture
// that outgrows memSpillBytes converts to an anonymous temp file and
// still replays exactly.
func TestMemoryCaptureSpills(t *testing.T) {
	defer func(old int64) { memSpillBytes = old }(memSpillBytes)
	memSpillBytes = 1 // force the spill on the first sealed chunk

	p := mustProgram(t, "compress")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	disk, resident := tr.Footprint()
	if disk == 0 || resident != 0 {
		t.Fatalf("spilled capture footprint disk=%d resident=%d, want all bytes in the spill file", disk, resident)
	}
	if tr.Path() != "" {
		t.Fatalf("anonymous spill has canonical path %q, want none", tr.Path())
	}
	ref := emu.New(p)
	rd := NewReader(tr)
	for !ref.Halted() {
		want, err := ref.Step()
		if err != nil {
			t.Fatal(err)
		}
		got, err := rd.Step()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("spilled trace diverges: %+v vs %+v", got, want)
		}
	}
	// The spilled trace can still be persisted (SetTraceDir flush path).
	dir := t.TempDir()
	if err := tr.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.Steps() != tr.Steps() || got.StateHash() != tr.StateHash() {
		t.Fatal("persisted spill trace does not round-trip")
	}
}

// writeV2File hand-writes a structurally valid version-2 trace file —
// old magic, old layout, correct whole-file checksum — so the rejection
// test proves v2 files fail on *version*, not incidentally on checksum.
func writeV2File(t *testing.T, path string, ph [32]byte) {
	t.Helper()
	var buf []byte
	buf = append(buf, 'C', 'E', 'T', 'R', 'A', 'C', 'E', 2)
	buf = append(buf, ph[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // entryPC
	buf = binary.LittleEndian.AppendUint64(buf, 1) // steps
	buf = binary.LittleEndian.AppendUint32(buf, 0) // nOutput
	var state [32]byte
	buf = append(buf, state[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, 0) // packedLen
	buf = binary.LittleEndian.AppendUint32(buf, 0) // nBounds
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStaleV2Rejected pins the v2→v3 migration path: a v2 file in the
// canonical slot is rejected with ErrStaleFormat, a message naming the
// versions, and removal of the file so the slot recaptures — mirroring
// how v1 files were retired by the v2 format.
func TestStaleV2Rejected(t *testing.T) {
	p := mustProgram(t, "micro.chain")
	dir := t.TempDir()
	path := DiskPath(dir, p)
	writeV2File(t, path, ProgHash(p))

	_, err := ReadFile(dir, p)
	if err == nil {
		t.Fatal("ReadFile accepted a v2 trace file")
	}
	if !errors.Is(err, ErrStaleFormat) {
		t.Fatalf("v2 file rejected with %v, want ErrStaleFormat", err)
	}
	if !strings.Contains(err.Error(), "format v2 < v3") || !strings.Contains(err.Error(), "recapturing") {
		t.Fatalf("v2 rejection message %q does not name the versions", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale v2 file was not removed")
	}
	// The slot is free: a fresh capture persists and loads as v3.
	tr, err := CaptureToDir(p, maxInsts, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	got, err := ReadFile(dir, p)
	if err != nil {
		t.Fatalf("recaptured slot does not load: %v", err)
	}
	got.Close()
}

// TestSegmentBBV pins the phase fingerprints: vectors are L1-normalized,
// sized bbvDim, and the whole-trace vector is the weighted mix of the
// segment vectors.
func TestSegmentBBV(t *testing.T) {
	p := mustProgram(t, "compress")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasBBV() {
		t.Fatal("capture produced no BBV profile")
	}
	wantIntervals := int((tr.Steps() + bbvInterval - 1) / bbvInterval)
	if got := tr.bbv.Intervals(); got != wantIntervals {
		t.Fatalf("%d BBV intervals for %d steps, want %d", got, tr.Steps(), wantIntervals)
	}
	segs := tr.Segments(8)
	for _, s := range segs {
		v := tr.SegmentBBV(s)
		if len(v) != bbvDim {
			t.Fatalf("segment %d vector has %d dims, want %d", s.Index, len(v), bbvDim)
		}
		var sum float64
		for _, x := range v {
			if x < 0 {
				t.Fatalf("segment %d vector has negative weight", s.Index)
			}
			sum += x
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("segment %d vector sums to %f, want 1", s.Index, sum)
		}
	}
}

// TestPhasePartition pins the clustering on synthetic vectors with two
// unmistakable behaviors: the partition must separate them, weight them
// by mass, and pick representatives from the right sides.
func TestPhasePartition(t *testing.T) {
	a := []float64{1, 0, 0, 0}
	b := []float64{0, 0, 0, 1}
	vecs := [][]float64{a, a, b, a, b, b, a}
	weights := []float64{1, 1, 2, 1, 2, 2, 1}
	phases := PhasePartition(vecs, weights, 2)
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	var wSum float64
	for _, ph := range phases {
		wSum += ph.Weight
		side := vecs[ph.Rep][0] > 0.5
		for _, m := range ph.Members {
			if (vecs[m][0] > 0.5) != side {
				t.Fatalf("phase mixes behaviors: members %v", ph.Members)
			}
		}
	}
	if wSum < 0.999 || wSum > 1.001 {
		t.Fatalf("phase weights sum to %f, want 1", wSum)
	}
	// Deterministic: the same inputs repartition identically.
	again := PhasePartition(vecs, weights, 2)
	for i := range phases {
		if phases[i].Rep != again[i].Rep || phases[i].Weight != again[i].Weight {
			t.Fatal("PhasePartition is not deterministic")
		}
	}
	// Degenerate inputs degrade, never error.
	if got := PhasePartition([][]float64{a, a, a}, []float64{1, 1, 1}, 2); len(got) != 1 {
		t.Fatalf("identical vectors clustered into %d phases, want 1", len(got))
	}
	if got := PhasePartition(nil, nil, 4); got != nil {
		t.Fatalf("empty input produced %d phases", len(got))
	}
}
