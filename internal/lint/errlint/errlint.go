// Package errlint statically enforces the error-classification contract
// on the persistence boundary (internal/runcache, internal/lease,
// internal/trace): an error that originates in the environment — file
// and network I/O, syscalls — must not escape a //ce:classify-errors
// package raw. It must be wrapped (%w) into a classified sentinel
// (errclass.ErrTransient / errclass.ErrCorrupt, or any package-level
// Err* sentinel that itself classifies), or passed through a classifier
// function, or hatched with //ce:err-ok <reason>.
//
// The contract exists because runcache.Do memoizes deterministic errors
// forever — correct for simulator validation failures, disastrous for a
// momentary ENOSPC or a torn cache file that a retry (or a recapture)
// would repair. Classification is what lets Do tell the cases apart, so
// an unclassified escape is a latent stuck-key bug.
//
// What counts as classified at a return site:
//
//   - nil, and anything not typed error.
//   - a call to a function marked //ce:classifier (errclass.Transient,
//     errclass.Corrupt, runcache.Transient, ...).
//   - fmt.Errorf whose format verbs include %w and whose arguments
//     include a package-level Err* sentinel or a classifier call.
//   - any value the analysis cannot trace to an environment source
//     (conservative silence: errors.New, computed errors, parameters).
//
// What counts as an environment source: calls into os, io, io/fs,
// io/ioutil, bufio, net and syscall (package functions and methods on
// their types), and — interprocedurally — calls to any function whose
// ErrFact says it may return an unclassified environment error. Facts
// propagate bottom-up over the package DAG via the driver's fact store,
// so a marked package calling an unmarked helper in another package
// still sees the raw os.ReadFile at the bottom, with the callee chain
// in the message. Variable flow is tracked per function ("dataflow
// lite"): err := os.ReadFile(...); return err is a finding, and a
// variable that is ever re-assigned a classified value is trusted
// everywhere (the analysis under-reports rather than second-guessing
// branch order).
package errlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// Analyzer is the errlint pass.
var Analyzer = &analysis.Analyzer{
	Name:      "errlint",
	Doc:       "flags unclassified environment errors escaping //ce:classify-errors packages",
	Run:       run,
	FactTypes: []analysis.Fact{new(ErrFact)},
}

// ErrFact is errlint's verdict on one function, exported for functions
// with exported names.
type ErrFact struct {
	// Classifier marks a //ce:classifier function: its result is
	// classified by assertion.
	Classifier bool
	// Env marks a function that may return an unclassified environment
	// error.
	Env bool
	// Why names the root environment source ("os.ReadFile").
	Why string
	// Trail is the call chain from this function down to the source,
	// starting with this function's own name.
	Trail []string
}

// AFact marks ErrFact as a fact type.
func (*ErrFact) AFact() {}

// chain renders the fact for a finding message: "Load → read: os.ReadFile".
func (f *ErrFact) chain() string {
	return strings.Join(f.Trail, " → ") + ": " + f.Why
}

// retKind classifies one error-typed return expression.
type retKind int

const (
	retClean retKind = iota
	retEnv           // raw environment error, desc names the source
	retCall          // verdict depends on the callee's fact
	retWrap          // fmt.Errorf over an env source without a sentinel
)

// retSite is one error-typed return expression.
type retSite struct {
	pos     token.Pos
	kind    retKind
	desc    string      // retEnv/retWrap: the environment source
	callee  *types.Func // retCall: the function whose fact decides
	hatched bool
}

// efn is the per-function analysis state.
type efn struct {
	obj        *types.Func
	classifier bool
	rets       []retSite
	fact       *ErrFact
}

type passState struct {
	pass  *analysis.Pass
	byObj map[*types.Func]*efn
	fns   []*efn
}

func run(pass *analysis.Pass) (any, error) {
	st := &passState{pass: pass, byObj: make(map[*types.Func]*efn)}
	marked := directive.PackageMarked(pass.Files, directive.ClassifyErrors)

	// First pass: register declarations so classifier marks on
	// same-package callees are visible while scanning bodies.
	type declWork struct {
		fd  *ast.FuncDecl
		fi  *efn
		idx *directive.Index
	}
	var work []declWork
	for _, f := range pass.Files {
		idx := directive.NewIndex(pass.Fset, f, directive.ErrOK)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &efn{obj: obj, classifier: directive.FuncMarked(fd, directive.Classifier)}
			st.fns = append(st.fns, fi)
			st.byObj[obj] = fi
			work = append(work, declWork{fd, fi, idx})
		}
	}
	for _, d := range work {
		st.scan(d.fd, d.fi, d.idx)
	}

	// Seed facts from direct environment returns, then propagate through
	// retCall sites to a fixpoint (source order, deterministic trails).
	for _, fi := range st.fns {
		fi.fact = &ErrFact{Classifier: fi.classifier}
		if fi.classifier {
			continue
		}
		for _, r := range fi.rets {
			if r.hatched || r.kind != retEnv && r.kind != retWrap {
				continue
			}
			fi.fact.Env = true
			fi.fact.Why = r.desc
			fi.fact.Trail = []string{fi.obj.Name()}
			break
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range st.fns {
			if fi.fact.Env || fi.fact.Classifier {
				continue
			}
			for _, r := range fi.rets {
				if r.kind != retCall || r.hatched {
					continue
				}
				cf := st.calleeFact(r.callee)
				if cf == nil || cf.Classifier || !cf.Env {
					continue
				}
				fi.fact.Env = true
				fi.fact.Why = cf.Why
				fi.fact.Trail = append([]string{fi.obj.Name()}, cf.Trail...)
				changed = true
				break
			}
		}
	}

	if pass.ExportObjectFact != nil {
		for _, fi := range st.fns {
			if (fi.fact.Env || fi.fact.Classifier) && ast.IsExported(fi.obj.Name()) {
				pass.ExportObjectFact(fi.obj, fi.fact)
			}
		}
	}

	if !marked {
		return nil, nil
	}
	for _, fi := range st.fns {
		for _, r := range fi.rets {
			if r.hatched {
				continue
			}
			switch r.kind {
			case retEnv:
				pass.Report(analysis.Diagnostic{
					Pos:      r.pos,
					Category: "err-raw",
					Message: fmt.Sprintf("unclassified environment error (%s) escapes; wrap it with errclass.Transient/Corrupt or a %%w Err* sentinel, or add //ce:err-ok <reason>",
						r.desc),
				})
			case retWrap:
				pass.Report(analysis.Diagnostic{
					Pos:      r.pos,
					Category: "err-wrap",
					Message: fmt.Sprintf("fmt.Errorf wraps an environment error (%s) without a classified sentinel; use %%w with ErrTransient/ErrCorrupt or a classifier, or add //ce:err-ok <reason>",
						r.desc),
				})
			case retCall:
				cf := st.calleeFact(r.callee)
				if cf == nil || cf.Classifier || !cf.Env {
					continue
				}
				pass.Report(analysis.Diagnostic{
					Pos:      r.pos,
					Category: "err-call",
					Message: fmt.Sprintf("call to %s may return an unclassified environment error (%s); classify it at this boundary or add //ce:err-ok <reason>",
						calleeLabel(pass.Pkg, r.callee), cf.chain()),
				})
			}
		}
	}
	return nil, nil
}

// calleeFact resolves a callee's ErrFact: same-package functions from
// this pass, imported ones from the driver's fact store.
func (st *passState) calleeFact(callee *types.Func) *ErrFact {
	if fi, ok := st.byObj[callee]; ok {
		return fi.fact
	}
	if st.pass.ImportObjectFact == nil {
		return nil
	}
	var f ErrFact
	if st.pass.ImportObjectFact(callee, &f) {
		return &f
	}
	return nil
}

// scan walks one function body collecting variable taint and return
// sites. Function literals are skipped: their returns are not the
// enclosing function's.
func (st *passState) scan(fd *ast.FuncDecl, fi *efn, idx *directive.Index) {
	// taintEnv / taintCall record how an error variable was last sourced
	// (flow-insensitively); classified marks variables that were ever
	// assigned a classified value and are then trusted everywhere.
	taintEnv := make(map[types.Object]string)
	taintCall := make(map[types.Object]*types.Func)
	classified := make(map[types.Object]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			r := st.classifyExpr(n.Rhs[0], taintEnv, taintCall, classified)
			for _, l := range n.Lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := st.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = st.pass.TypesInfo.Uses[id]
				}
				if obj == nil || !isErrorType(obj.Type()) {
					continue
				}
				switch r.kind {
				case retEnv, retWrap:
					taintEnv[obj] = r.desc
				case retCall:
					taintCall[obj] = r.callee
				case retClean:
					if isClassifiedExpr(n.Rhs[0], st) {
						classified[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				t := st.pass.TypesInfo.TypeOf(res)
				if t == nil {
					continue
				}
				if !isErrorType(t) && !tupleWithError(t) {
					continue
				}
				r := st.classifyExpr(res, taintEnv, taintCall, classified)
				if r.kind == retClean {
					continue
				}
				r.pos = res.Pos()
				_, r.hatched = idx.Covering(res.Pos())
				fi.rets = append(fi.rets, r)
			}
		}
		return true
	})
}

// classifyExpr decides how one error-valued expression is sourced.
func (st *passState) classifyExpr(e ast.Expr, taintEnv map[types.Object]string, taintCall map[types.Object]*types.Func, classified map[types.Object]bool) retSite {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := st.pass.TypesInfo.Uses[e]
		if obj == nil {
			return retSite{kind: retClean}
		}
		if classified[obj] {
			return retSite{kind: retClean}
		}
		if desc, ok := taintEnv[obj]; ok {
			return retSite{kind: retEnv, desc: desc}
		}
		if callee, ok := taintCall[obj]; ok {
			return retSite{kind: retCall, callee: callee}
		}
		return retSite{kind: retClean}
	case *ast.CallExpr:
		if desc, ok := st.envCall(e); ok {
			return retSite{kind: retEnv, desc: desc}
		}
		if st.isClassifierCall(e) {
			return retSite{kind: retClean}
		}
		if st.isErrorf(e) {
			return st.classifyErrorf(e, taintEnv, taintCall, classified)
		}
		if callee := staticCallee(st.pass, e); callee != nil {
			return retSite{kind: retCall, callee: callee}
		}
		return retSite{kind: retClean}
	}
	return retSite{kind: retClean}
}

// classifyErrorf inspects a fmt.Errorf call: with a %w verb and a
// sentinel or classifier argument it is classified; wrapping a tainted
// value without one is a retWrap finding.
func (st *passState) classifyErrorf(call *ast.CallExpr, taintEnv map[types.Object]string, taintCall map[types.Object]*types.Func, classified map[types.Object]bool) retSite {
	wraps := false
	if len(call.Args) > 0 {
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
			wraps = strings.Contains(lit.Value, "%w")
		}
	}
	for _, a := range call.Args[min(1, len(call.Args)):] {
		if wraps && (st.isSentinel(a) || st.isClassifierCall(asCall(a))) {
			return retSite{kind: retClean}
		}
	}
	// Not classified: does it carry an environment error?
	for _, a := range call.Args[min(1, len(call.Args)):] {
		inner := st.classifyExpr(a, taintEnv, taintCall, classified)
		switch inner.kind {
		case retEnv, retWrap:
			return retSite{kind: retWrap, desc: inner.desc}
		case retCall:
			return retSite{kind: retCall, callee: inner.callee}
		}
	}
	return retSite{kind: retClean}
}

// isClassifiedExpr reports whether an assignment RHS is a classified
// value: a classifier call, or a sentinel-bearing fmt.Errorf.
func isClassifiedExpr(e ast.Expr, st *passState) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if st.isClassifierCall(call) {
		return true
	}
	if !st.isErrorf(call) || len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || !strings.Contains(lit.Value, "%w") {
		return false
	}
	for _, a := range call.Args[1:] {
		if st.isSentinel(a) || st.isClassifierCall(asCall(a)) {
			return true
		}
	}
	return false
}

func asCall(e ast.Expr) *ast.CallExpr {
	call, _ := ast.Unparen(e).(*ast.CallExpr)
	return call
}

// isSentinel reports whether the expression denotes a package-level
// error variable whose name starts with Err.
func (st *passState) isSentinel(e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := st.pass.TypesInfo.Uses[id].(*types.Var)
	return ok && strings.HasPrefix(v.Name(), "Err") && isErrorType(v.Type()) &&
		v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isClassifierCall reports whether the call targets a //ce:classifier
// function (same-package mark or imported fact).
func (st *passState) isClassifierCall(call *ast.CallExpr) bool {
	if call == nil {
		return false
	}
	callee := staticCallee(st.pass, call)
	if callee == nil {
		return false
	}
	if fi, ok := st.byObj[callee]; ok {
		return fi.classifier
	}
	if st.pass.ImportObjectFact != nil {
		var f ErrFact
		if st.pass.ImportObjectFact(callee, &f) {
			return f.Classifier
		}
	}
	return false
}

// isErrorf reports whether the call is fmt.Errorf.
func (st *passState) isErrorf(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	pn := pkgNameOf(st.pass.TypesInfo, sel.X)
	return pn != nil && pn.Imported().Path() == "fmt"
}

// envCall classifies a call as an environment source and names it.
func (st *passState) envCall(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pn := pkgNameOf(st.pass.TypesInfo, sel.X); pn != nil {
		path := pn.Imported().Path()
		if envPkgs[path] {
			return pn.Imported().Name() + "." + sel.Sel.Name, true
		}
		return "", false
	}
	fn, ok := st.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if envPkgs[fn.Pkg().Path()] {
		return fn.FullName(), true
	}
	return "", false
}

// envPkgs are the stdlib packages whose errors are environmental by
// construction.
var envPkgs = map[string]bool{
	"os": true, "io": true, "io/fs": true, "io/ioutil": true,
	"bufio": true, "net": true, "syscall": true,
}

// staticCallee resolves a call to its target function when known
// statically.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleeLabel names a callee for a finding message, package-qualified
// when it lives elsewhere.
func calleeLabel(from *types.Package, callee *types.Func) string {
	if callee.Pkg() == nil || callee.Pkg() == from {
		return callee.Name()
	}
	return callee.Pkg().Name() + "." + callee.Name()
}

// pkgNameOf resolves an expression to the package it names, if any.
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// isErrorType reports whether t is exactly the universe error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// tupleWithError reports whether a multi-value call result includes an
// error (return f() forwarding a (T, error) pair).
func tupleWithError(t types.Type) bool {
	tup, ok := t.(*types.Tuple)
	if !ok {
		return false
	}
	for i := 0; i < tup.Len(); i++ {
		if isErrorType(tup.At(i).Type()) {
			return true
		}
	}
	return false
}
