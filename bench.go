package ce

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/canonjson"
	"repro/internal/verify"
)

// PipelineBenchResult is one configuration's simulator-performance
// measurement: how fast the timing simulator itself runs (host metrics),
// not how well the simulated machine performs. Serialized into
// BENCH_pipeline.json by `cesweep -bench-json` so the performance
// trajectory is tracked across changes.
type PipelineBenchResult struct {
	Config         string  `json:"config"`
	Workload       string  `json:"workload"`
	Cycles         int64   `json:"cycles"`
	Committed      uint64  `json:"committed"`
	WallSeconds    float64 `json:"wall_seconds"`
	MCyclesPerSec  float64 `json:"mcycles_per_sec"`
	HostAllocs     uint64  `json:"host_allocs"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// SweepBenchResult is the whole-sweep simulator-performance record
// written to BENCH_sweep.json by `cesweep -bench-json` when a sweep ran
// in the same invocation: how long regenerating the results took, how
// many fresh simulations that was, and how much functional execution the
// engine's trace pool replaced with replay.
type SweepBenchResult struct {
	// WallSeconds is the host time from the first sweep selection to the
	// last, and Sims the number of fresh simulations performed in it
	// (cache hits and coalesced duplicates excluded).
	WallSeconds float64 `json:"wall_seconds"`
	Sims        int     `json:"sims"`
	SimsPerSec  float64 `json:"sims_per_sec"`
	// Replay reports whether trace replay was enabled for the sweep.
	Replay bool `json:"replay"`
	// Trace is the trace pool's activity: workloads captured versus
	// loaded from disk, runs by drive mode, one-time capture cost, and
	// dynamic instructions functionally executed versus replayed.
	Trace TraceStats `json:"trace"`
	// Segment, when present, benchmarks segment-parallel sampled
	// simulation against the monolithic baseline on a long workload.
	Segment *SegmentBenchResult `json:"segment,omitempty"`
	// Stream, when present, benchmarks streamed capture and sampled
	// simulation of a huge workload (cesweep -stream-bench): wall time,
	// peak RSS and IPC error per sampling mode against the
	// streamed-exact truth.
	Stream *StreamBenchResult `json:"stream,omitempty"`
	// Gang, when present, benchmarks gang replay (shared decoded slabs)
	// against per-configuration streaming replay of the same panel.
	Gang *GangBenchResult `json:"gang,omitempty"`
}

// SweepBench summarizes a finished sweep on eng, timed by the caller.
func SweepBench(eng *Engine, wallSeconds float64) SweepBenchResult {
	sims := 0
	for _, m := range eng.Metrics() {
		if !m.Cached {
			sims++
		}
	}
	r := SweepBenchResult{
		WallSeconds: wallSeconds,
		Sims:        sims,
		Replay:      eng.TraceReplay(),
		Trace:       eng.TraceStats(),
	}
	if wallSeconds > 0 {
		r.SimsPerSec = float64(sims) / wallSeconds
	}
	return r
}

// WriteSweepBenchJSON writes res to path as canonical indented JSON (the
// BENCH_sweep.json emitter behind `cesweep -bench-json`).
func WriteSweepBenchJSON(path string, res SweepBenchResult) error {
	data, err := canonjson.Marshal(res)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// GangBenchResult quantifies what gang replay buys on one workload: the
// replay-capable benchmark panel is run once with private streaming
// readers (every configuration re-decodes the whole packed trace) and
// once over shared decoded slabs (every chunk decoded exactly once,
// all configurations reading the same immutable records), on two fresh
// engines so neither leg recalls the other's results. Capture happens
// before either timer starts; the statistics are byte-identical between
// legs, so only the host cost differs.
type GangBenchResult struct {
	Workload string `json:"workload"`
	Configs  int    `json:"configs"`
	Steps    uint64 `json:"steps"`

	// PerConfigWallSeconds and GangWallSeconds time the whole matrix
	// (all configurations in parallel across CPUs) under each drive
	// mode; Speedup is their ratio.
	PerConfigWallSeconds float64 `json:"per_config_wall_seconds"`
	GangWallSeconds      float64 `json:"gang_wall_seconds"`
	Speedup              float64 `json:"speedup"`

	// PerConfigRecordsDecoded is ~Configs × Steps (each streaming run
	// decodes the full trace privately); GangRecordsDecoded is ~Steps
	// (once per chunk). DecodeReduction is their ratio — the headline
	// decoded-records-per-sweep saving.
	PerConfigRecordsDecoded uint64  `json:"per_config_records_decoded"`
	GangRecordsDecoded      uint64  `json:"gang_records_decoded"`
	DecodeReduction         float64 `json:"decode_reduction"`

	// Slab-cache behaviour during the ganged leg.
	SlabDecodes   int   `json:"slab_decodes"`
	SlabHits      int   `json:"slab_hits"`
	SlabPeakBytes int64 `json:"slab_peak_bytes"`
}

// GangBench benchmarks gang replay against per-configuration streaming
// replay on one workload across the replay-capable benchmark panel.
func GangBench(workload string) (*GangBenchResult, error) {
	cfgs := make([]Config, 0, 8)
	for _, cfg := range PipelineBenchConfigs() {
		if cfg.WrongPathExecution {
			// Wrong-path configurations cannot replay, so they never gang;
			// including them would dilute both legs with identical lockstep
			// runs.
			continue
		}
		cfgs = append(cfgs, cfg)
	}
	leg := func(gang bool) (float64, TraceStats, uint64, error) {
		eng := NewEngine()
		eng.SetGangReplay(gang)
		// Capture outside the timed region: the one-time functional
		// execution is a shared cost both drive modes pay identically.
		tr, err := eng.traceFor(workload)
		if err != nil {
			return 0, TraceStats{}, 0, fmt.Errorf("gangbench %s: %w", workload, err)
		}
		start := time.Now()
		if _, err := eng.RunMatrix(cfgs, []string{workload}); err != nil {
			return 0, TraceStats{}, 0, fmt.Errorf("gangbench %s: %w", workload, err)
		}
		return time.Since(start).Seconds(), eng.TraceStats(), tr.Steps(), nil
	}
	streamWall, streamStats, steps, err := leg(false)
	if err != nil {
		return nil, err
	}
	gangWall, gangStats, _, err := leg(true)
	if err != nil {
		return nil, err
	}
	res := &GangBenchResult{
		Workload:                workload,
		Configs:                 len(cfgs),
		Steps:                   steps,
		PerConfigWallSeconds:    streamWall,
		GangWallSeconds:         gangWall,
		PerConfigRecordsDecoded: streamStats.RecordsDecoded,
		GangRecordsDecoded:      gangStats.RecordsDecoded,
		SlabDecodes:             gangStats.SlabDecodes,
		SlabHits:                gangStats.SlabHits,
		SlabPeakBytes:           gangStats.SlabPeakBytes,
	}
	if gangWall > 0 {
		res.Speedup = streamWall / gangWall
	}
	if gangStats.RecordsDecoded > 0 {
		res.DecodeReduction = float64(streamStats.RecordsDecoded) / float64(gangStats.RecordsDecoded)
	}
	return res, nil
}

// ReadSweepBenchJSON loads a BENCH_sweep.json previously written by
// WriteSweepBenchJSON — the baseline side of `cesweep -bench-compare`.
func ReadSweepBenchJSON(path string) (SweepBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepBenchResult{}, err
	}
	var res SweepBenchResult
	if err := json.Unmarshal(data, &res); err != nil {
		return SweepBenchResult{}, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// BenchDelta is one compared entry of a baseline-versus-current
// BENCH_sweep.json pair.
type BenchDelta struct {
	// Name is the entry's dotted JSON path, Old/New its two values.
	Name string
	Old  float64
	New  float64
	// Gated marks the dimensionless ratios the comparison may fail on.
	// Absolute host timings (wall seconds, sims/sec) shift with machine
	// load and hardware, so they are report-only; speedups and decode
	// reductions divide out the machine and gate regressions.
	Gated bool
	// Regressed is set on a gated entry whose new value fell more than
	// the tolerance below the baseline (higher is better for every
	// gated entry).
	Regressed bool
}

// Pct is the relative change in percent (positive = increased).
func (d BenchDelta) Pct() float64 {
	if d.Old == 0 {
		return 0
	}
	return (d.New - d.Old) / d.Old * 100
}

// CompareSweepBench diffs cur against a baseline sweep-benchmark record,
// returning one delta per entry present on both sides. Gated entries
// regress when new < old × (1 − tolerancePct/100).
func CompareSweepBench(old, cur SweepBenchResult, tolerancePct float64) []BenchDelta {
	var out []BenchDelta
	add := func(name string, o, n float64, gated bool) {
		d := BenchDelta{Name: name, Old: o, New: n, Gated: gated}
		if gated && o > 0 && n < o*(1-tolerancePct/100) {
			d.Regressed = true
		}
		out = append(out, d)
	}
	add("wall_seconds", old.WallSeconds, cur.WallSeconds, false)
	add("sims_per_sec", old.SimsPerSec, cur.SimsPerSec, false)
	if old.Segment != nil && cur.Segment != nil {
		add("segment.speedup", old.Segment.Speedup, cur.Segment.Speedup, true)
	}
	if old.Gang != nil && cur.Gang != nil {
		add("gang.speedup", old.Gang.Speedup, cur.Gang.Speedup, true)
		add("gang.decode_reduction", old.Gang.DecodeReduction, cur.Gang.DecodeReduction, true)
		add("gang.per_config_wall_seconds", old.Gang.PerConfigWallSeconds, cur.Gang.PerConfigWallSeconds, false)
		add("gang.gang_wall_seconds", old.Gang.GangWallSeconds, cur.Gang.GangWallSeconds, false)
	}
	if old.Stream != nil && cur.Stream != nil {
		add("stream.exact_wall_seconds", old.Stream.ExactWallSeconds, cur.Stream.ExactWallSeconds, false)
		for _, om := range old.Stream.Modes {
			for _, nm := range cur.Stream.Modes {
				if nm.Mode == om.Mode {
					add("stream."+om.Mode+".speedup", om.Speedup, nm.Speedup, false)
				}
			}
		}
	}
	return out
}

// PipelineBenchConfigs returns the differential-verification panel with
// its instruments (invariant checker, timeline recording) stripped, so
// the production fast path — event-driven wakeup plus idle-cycle
// skipping — is what gets measured. One configuration per mechanism the
// simulator implements.
func PipelineBenchConfigs() []Config {
	cfgs := verify.Panel()
	for i := range cfgs {
		cfgs[i].CheckInvariants = false
		cfgs[i].RecordTimeline = false
	}
	return cfgs
}

// PipelineBench times every panel configuration on one workload with a
// fresh simulator per run (no run cache), returning per-configuration
// host-performance results.
func PipelineBench(workload string) ([]PipelineBenchResult, error) {
	out := make([]PipelineBenchResult, 0, 7)
	for _, cfg := range PipelineBenchConfigs() {
		st, err := Run(cfg, workload)
		if err != nil {
			return nil, fmt.Errorf("bench %s/%s: %w", cfg.Name, workload, err)
		}
		r := PipelineBenchResult{
			Config:      cfg.Name,
			Workload:    workload,
			Cycles:      st.Cycles,
			Committed:   st.Committed,
			WallSeconds: st.HostWallSeconds,
			HostAllocs:  st.HostAllocs,
		}
		if st.HostWallSeconds > 0 {
			r.MCyclesPerSec = float64(st.Cycles) / st.HostWallSeconds / 1e6
		}
		if st.Cycles > 0 {
			r.AllocsPerCycle = float64(st.HostAllocs) / float64(st.Cycles)
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteBenchJSON runs PipelineBench and writes the results to path as
// canonical indented JSON (the BENCH_pipeline.json emitter behind
// `cesweep -bench-json`).
func WriteBenchJSON(path, workload string) ([]PipelineBenchResult, error) {
	res, err := PipelineBench(workload)
	if err != nil {
		return nil, err
	}
	data, err := canonjson.Marshal(res)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return res, nil
}
