package delaymodel

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/vlsi"
)

// This file models the parts of the rename-logic design space that
// Section 4.1 discusses beyond the RAM map table: the CAM mapping scheme
// (used by the HAL SPARC and the DEC 21264) and the intra-group dependence
// check logic.

// CamRenameDelay is the critical path of the CAM rename scheme: the
// logical register designator is broadcast to one CAM entry per physical
// register, matched, and the matching entry's output read out.
type CamRenameDelay struct {
	TagDrive float64
	TagMatch float64
	Readout  float64
}

// Total returns the CAM-scheme rename delay.
func (d CamRenameDelay) Total() float64 { return d.TagDrive + d.TagMatch + d.Readout }

// RenameCAM models the CAM rename scheme of Section 4.1.1. The CAM array
// reuses the wakeup CAM's calibrated drive/match characteristics (it is
// the same circuit structure); the readout constant is calibrated so that
// the CAM scheme matches the RAM scheme at the 4-way/80-register design
// point — the paper found the two schemes comparable over its design
// space. Because the number of CAM entries equals the physical register
// count, which itself grows with issue width, the CAM scheme scales worse:
// at 8-way/128 registers it is markedly slower than the RAM scheme, which
// is why the paper (and this package) focus on the RAM scheme.
func RenameCAM(t vlsi.Technology, issueWidth, physRegs int) (CamRenameDelay, error) {
	c, err := calibFor(t)
	if err != nil {
		return CamRenameDelay{}, err
	}
	if issueWidth < 1 || physRegs < 1 {
		return CamRenameDelay{}, fmt.Errorf("delaymodel: invalid issue width %d / physical registers %d", issueWidth, physRegs)
	}
	drive := func(iw, entries float64) float64 {
		line := circuit.Wire{Tech: t, LenLamda: entries * c.wakeup.tagCellPitch * iw}
		return c.wakeup.td0 + c.wakeup.tdLin*iw*entries + line.DistributedDelay()
	}
	match := func(iw float64) float64 { return c.wakeup.tm0 + c.wakeup.tm1*iw }

	// Calibration point: CAM(4-way, 80 regs) == RAM(4-way).
	ram4, err := Rename(t, 4)
	if err != nil {
		return CamRenameDelay{}, err
	}
	readout := ram4.Total() - drive(4, 80) - match(4)
	if readout < 0 {
		readout = 0
	}
	iw := float64(issueWidth)
	e := float64(physRegs)
	return CamRenameDelay{
		TagDrive: drive(iw, e),
		TagMatch: match(iw),
		Readout:  readout,
	}, nil
}

// Per-technology dependence-check coefficients (picoseconds at the 0.18 µm
// logic speed, scaled by the technology's logic ratio): a source designator
// is compared against every earlier destination in the rename group
// (IW−1 comparators in the worst case) and a priority MUX picks the latest
// match.
const (
	depCheckBase      = 40.0
	depCheckPerWidth  = 8.0
	depCheckQuadratic = 0.3
)

// DependenceCheck models the intra-group dependence check logic of
// Section 4.1: its delay grows with issue width (more comparators, deeper
// priority logic) but stays below the map-table access for the studied
// widths, so it is hidden behind the table read — the property
// TestDependenceCheckHidden verifies.
func DependenceCheck(t vlsi.Technology, issueWidth int) (float64, error) {
	if _, err := calibFor(t); err != nil {
		return 0, err
	}
	if issueWidth < 1 {
		return 0, fmt.Errorf("delaymodel: issue width %d < 1", issueWidth)
	}
	iw := float64(issueWidth)
	return (depCheckBase + depCheckPerWidth*iw + depCheckQuadratic*iw*iw) * t.LogicScale, nil
}
