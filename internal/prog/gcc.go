package prog

// gcc mirrors SPEC95 126.gcc: table-driven token processing with highly
// data-dependent control flow. A 32-state finite automaton consumes a
// skewed token stream; per-token action code is an unpredictable branch
// ladder, the behaviour that made gcc a branch-limited benchmark.

const (
	gccNTokens = 12000
	gccStates  = 32
	gccSymbols = 16
)

func gccRef() []int32 {
	tokens := make([]byte, gccNTokens)
	s := int32(777)
	for i := range tokens {
		s = lcg(s)
		t := (s >> 16) & 0xFF
		switch {
		case t < 120:
			tokens[i] = byte(t & 3) // common punctuation/identifiers
		case t < 200:
			tokens[i] = byte(4 + (t & 7)) // keywords
		default:
			tokens[i] = byte(12 + (t & 3)) // rare tokens
		}
	}
	// Transition table, filled by formula (same loop in assembly).
	var trans [gccStates * gccSymbols]int32
	for st := int32(0); st < gccStates; st++ {
		for tk := int32(0); tk < gccSymbols; tk++ {
			trans[st*gccSymbols+tk] = (st*5 + tk*3 + 7) & (gccStates - 1)
		}
	}
	var st, cnt0, cnt1, cnt2, cnt3, csum int32
	for i := 0; i < gccNTokens; i++ {
		tok := int32(tokens[i])
		st = trans[st*gccSymbols+tok]
		switch {
		case tok < 4:
			cnt0 += st
		case tok < 8:
			cnt1 ^= st << 1
		case tok < 12:
			cnt2 += tok * st
		default:
			if st&1 != 0 {
				cnt3++
			} else {
				cnt3 += tok
			}
		}
		csum = csum*33 + st
	}
	return []int32{st, cnt0, cnt1, cnt2, cnt3, csum}
}

const gccSrc = `
# gcc: table-driven finite automaton over a skewed token stream
# (mirrors SPEC95 126.gcc's branchy, table-driven core).
		.data
tokens:	.space 12000
trans:	.space 2048            # 32 states x 16 symbols, words
		.text
main:
		# Token generation with a skewed distribution.
		la   $s0, tokens
		li   $t0, 777          # seed
		li   $t1, 0
		li   $s2, 12000
		li   $t5, 1103515245
gen:	mul  $t0, $t0, $t5
		addi $t0, $t0, 12345
		srl  $t2, $t0, 16
		andi $t2, $t2, 0xFF
		li   $t3, 120
		blt  $t2, $t3, common
		li   $t3, 200
		blt  $t2, $t3, keyword
		andi $t2, $t2, 3
		addi $t2, $t2, 12      # rare token
		j    store
common:	andi $t2, $t2, 3
		j    store
keyword: andi $t2, $t2, 7
		addi $t2, $t2, 4
store:	add  $t3, $s0, $t1
		sb   $t2, 0($t3)
		addi $t1, $t1, 1
		blt  $t1, $s2, gen

		# Build the transition table: trans[st][tk] = (st*5 + tk*3 + 7) & 31.
		la   $s1, trans
		li   $t1, 0            # st
tloop:	li   $t2, 0            # tk
tinner:	li   $t4, 5
		mul  $t3, $t1, $t4
		li   $t4, 3
		mul  $t4, $t2, $t4
		add  $t3, $t3, $t4
		addi $t3, $t3, 7
		andi $t3, $t3, 31
		sll  $t4, $t1, 4
		add  $t4, $t4, $t2
		sll  $t4, $t4, 2
		add  $t4, $s1, $t4
		sw   $t3, 0($t4)
		addi $t2, $t2, 1
		li   $t4, 16
		blt  $t2, $t4, tinner
		addi $t1, $t1, 1
		li   $t4, 32
		blt  $t1, $t4, tloop

		# Drive the automaton.
		li   $s3, 0            # st
		li   $s4, 0            # cnt0
		li   $s5, 0            # cnt1
		li   $s6, 0            # cnt2
		li   $s7, 0            # cnt3
		li   $fp, 0            # csum
		li   $t1, 0            # i
		li   $t9, 33
run:	add  $t2, $s0, $t1
		lbu  $t3, 0($t2)       # tok
		sll  $t4, $s3, 4
		add  $t4, $t4, $t3
		sll  $t4, $t4, 2
		add  $t4, $s1, $t4
		lw   $s3, 0($t4)       # st = trans[st][tok]
		li   $t5, 4
		blt  $t3, $t5, act0
		li   $t5, 8
		blt  $t3, $t5, act1
		li   $t5, 12
		blt  $t3, $t5, act2
		andi $t5, $s3, 1
		beq  $t5, $zero, act3e
		addi $s7, $s7, 1
		j    actdone
act3e:	add  $s7, $s7, $t3
		j    actdone
act0:	add  $s4, $s4, $s3
		j    actdone
act1:	sll  $t5, $s3, 1
		xor  $s5, $s5, $t5
		j    actdone
act2:	mul  $t5, $t3, $s3
		add  $s6, $s6, $t5
actdone:
		mul  $fp, $fp, $t9
		add  $fp, $fp, $s3
		addi $t1, $t1, 1
		blt  $t1, $s2, run

		out  $s3
		out  $s4
		out  $s5
		out  $s6
		out  $s7
		out  $fp
		halt
`

func init() {
	register(&Workload{
		Name:        "gcc",
		Description: "table-driven 32-state automaton over 12000 skewed tokens with branchy per-token actions (mirrors SPEC95 126.gcc)",
		Source:      gccSrc,
		Reference:   gccRef,
	})
}
