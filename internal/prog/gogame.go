package prog

// gogame mirrors SPEC95 099.go: evaluation of a Go board position. The
// kernel seeds a 19×19 board with stones and iterates an influence
// function over the grid — array scans with spatially local loads and
// data-dependent branches on stone colour, the mix that characterized go.

const (
	goSize  = 21 // 19×19 playing area inside a border
	goIters = 30
)

func goRef() []int32 {
	const n = goSize * goSize
	board := make([]byte, n)
	// Border ring.
	for i := 0; i < goSize; i++ {
		board[i] = 3
		board[n-goSize+i] = 3
		board[i*goSize] = 3
		board[i*goSize+goSize-1] = 3
	}
	// Stones from the LCG: ~3/16 black, ~3/16 white.
	s := int32(4242)
	for y := 1; y < goSize-1; y++ {
		for x := 1; x < goSize-1; x++ {
			s = lcg(s)
			v := (s >> 16) & 15
			switch {
			case v < 3:
				board[y*goSize+x] = 1
			case v < 6:
				board[y*goSize+x] = 2
			default:
				board[y*goSize+x] = 0
			}
		}
	}
	inf := make([]int32, n)
	for it := 0; it < goIters; it++ {
		for y := 1; y < goSize-1; y++ {
			for x := 1; x < goSize-1; x++ {
				p := y*goSize + x
				switch board[p] {
				case 1:
					inf[p] = 64
				case 2:
					inf[p] = -64
				default:
					inf[p] = (inf[p]*2 + inf[p-1] + inf[p+1] + inf[p-goSize] + inf[p+goSize]) >> 3
				}
			}
		}
	}
	var black, white, csum int32
	for y := 1; y < goSize-1; y++ {
		for x := 1; x < goSize-1; x++ {
			v := inf[y*goSize+x]
			if v > 8 {
				black++
			} else if v < -8 {
				white++
			}
			csum = csum*17 + v
		}
	}
	return []int32{black, white, csum}
}

const goSrc = `
# go: board-influence evaluation on a 19x19 Go board
# (mirrors SPEC95 099.go's array-scan, branch-on-colour style).
		.data
board:	.space 441             # 21x21 bytes
inf:	.space 1764            # 21x21 words
		.text
main:
		# Border ring: board value 3.
		la   $s0, board
		li   $t1, 0
		li   $t2, 21
		li   $t3, 3
bord:	add  $t4, $s0, $t1     # top row
		sb   $t3, 0($t4)
		add  $t4, $s0, $t1     # bottom row
		sb   $t3, 420($t4)
		li   $t5, 21
		mul  $t5, $t1, $t5
		add  $t4, $s0, $t5     # left column
		sb   $t3, 0($t4)
		add  $t4, $t4, $zero
		sb   $t3, 20($t4)      # right column
		addi $t1, $t1, 1
		blt  $t1, $t2, bord

		# Stones from the LCG.
		li   $t0, 4242         # seed
		li   $t8, 1103515245
		li   $s1, 1            # y
yloop:	li   $s2, 1            # x
xloop:	mul  $t0, $t0, $t8
		addi $t0, $t0, 12345
		srl  $t2, $t0, 16
		andi $t2, $t2, 15
		li   $t3, 21
		mul  $t4, $s1, $t3
		add  $t4, $t4, $s2
		add  $t4, $s0, $t4     # &board[p]
		li   $t3, 3
		blt  $t2, $t3, black
		li   $t3, 6
		blt  $t2, $t3, white
		sb   $zero, 0($t4)
		j    next
black:	li   $t3, 1
		sb   $t3, 0($t4)
		j    next
white:	li   $t3, 2
		sb   $t3, 0($t4)
next:	addi $s2, $s2, 1
		li   $t3, 20
		blt  $s2, $t3, xloop
		addi $s1, $s1, 1
		blt  $s1, $t3, yloop

		# Influence iterations.
		la   $s7, inf
		li   $s6, 0            # it
iter:	li   $s1, 1            # y
iy:		li   $s2, 1            # x
ix:		li   $t3, 21
		mul  $t4, $s1, $t3
		add  $t4, $t4, $s2     # p
		add  $t5, $s0, $t4
		lbu  $t6, 0($t5)       # board[p]
		sll  $t7, $t4, 2
		add  $t7, $s7, $t7     # &inf[p]
		li   $t3, 1
		beq  $t6, $t3, sb1
		li   $t3, 2
		beq  $t6, $t3, sb2
		lw   $t1, 0($t7)       # inf[p]
		sll  $t1, $t1, 1
		lw   $t2, -4($t7)
		add  $t1, $t1, $t2
		lw   $t2, 4($t7)
		add  $t1, $t1, $t2
		lw   $t2, -84($t7)
		add  $t1, $t1, $t2
		lw   $t2, 84($t7)
		add  $t1, $t1, $t2
		sra  $t1, $t1, 3
		sw   $t1, 0($t7)
		j    inext
sb1:	li   $t1, 64
		sw   $t1, 0($t7)
		j    inext
sb2:	li   $t1, -64
		sw   $t1, 0($t7)
inext:	addi $s2, $s2, 1
		li   $t3, 20
		blt  $s2, $t3, ix
		addi $s1, $s1, 1
		blt  $s1, $t3, iy
		addi $s6, $s6, 1
		li   $t3, 30
		blt  $s6, $t3, iter

		# Territory count and checksum.
		li   $s3, 0            # black territory
		li   $s4, 0            # white territory
		li   $s5, 0            # csum
		li   $t9, 17
		li   $s1, 1
cy:		li   $s2, 1
cx:		li   $t3, 21
		mul  $t4, $s1, $t3
		add  $t4, $t4, $s2
		sll  $t4, $t4, 2
		add  $t4, $s7, $t4
		lw   $t1, 0($t4)
		li   $t3, 8
		blt  $t3, $t1, isb     # v > 8
		li   $t3, -8
		blt  $t1, $t3, isw     # v < -8
		j    cnext
isb:	addi $s3, $s3, 1
		j    cnext
isw:	addi $s4, $s4, 1
cnext:	mul  $s5, $s5, $t9
		add  $s5, $s5, $t1
		addi $s2, $s2, 1
		li   $t3, 20
		blt  $s2, $t3, cx
		addi $s1, $s1, 1
		blt  $s1, $t3, cy

		out  $s3
		out  $s4
		out  $s5
		halt
`

func init() {
	register(&Workload{
		Name:        "go",
		Description: "iterative influence evaluation over a bordered 19x19 Go board (mirrors SPEC95 099.go)",
		Source:      goSrc,
		Reference:   goRef,
	})
}
