package analysis

import (
	"bytes"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

type testFact struct {
	Hits  int
	Trail []string
}

func (*testFact) AFact() {}

// checkPkg type-checks one source string as package p and returns the
// package.
func checkPkg(t *testing.T, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("example.com/p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestFactSetRoundTrip(t *testing.T) {
	pkg := checkPkg(t, `package p
type R struct{}
func (r *R) Step() {}
func Helper() {}
`)
	RegisterFactTypes([]*Analyzer{{
		Name:      "testlint",
		Run:       func(*Pass) (any, error) { return nil, nil },
		FactTypes: []Fact{new(testFact)},
	}})

	step, _, _ := types.LookupFieldOrMethod(pkg.Scope().Lookup("R").Type(), true, pkg, "Step")
	helper := pkg.Scope().Lookup("Helper")
	if got := ObjectKey(step); got != "(*example.com/p.R).Step" {
		t.Fatalf("ObjectKey(Step) = %q", got)
	}

	s := NewFactSet()
	layer := s.NewLayer()
	layer.ExportObjectFact("testlint", step, &testFact{Hits: 3, Trail: []string{"Step", "fill"}})
	layer.ExportObjectFact("testlint", helper, &testFact{Hits: 1})

	// The layer sees its own facts; the parent does not until merged.
	var got testFact
	if !layer.ImportObjectFact("testlint", step, &got) || got.Hits != 3 {
		t.Fatalf("layer import = %+v", got)
	}
	if s.ImportObjectFact("testlint", step, &got) {
		t.Fatal("parent saw unmerged layer fact")
	}

	blob, err := layer.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Decode(blob); err != nil {
		t.Fatal(err)
	}
	got = testFact{}
	if !s.ImportObjectFact("testlint", step, &got) || got.Hits != 3 || len(got.Trail) != 2 {
		t.Fatalf("after decode: %+v", got)
	}
	// A fresh layer over the merged parent imports through the chain.
	got = testFact{}
	if !s.NewLayer().ImportObjectFact("testlint", helper, &got) || got.Hits != 1 {
		t.Fatalf("layered import after merge: %+v", got)
	}

	// Encoding is deterministic regardless of map iteration order.
	blob2, err := layer.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("fact encoding not deterministic")
	}

	// Wrong namespace and wrong object both miss.
	if s.ImportObjectFact("otherlint", step, &testFact{}) {
		t.Fatal("fact leaked across analyzer namespace")
	}
}

func TestValidateRejectsBadFactTypes(t *testing.T) {
	bad := &Analyzer{
		Name:      "bad",
		Run:       func(*Pass) (any, error) { return nil, nil },
		FactTypes: []Fact{nil},
	}
	if err := Validate([]*Analyzer{bad}); err == nil {
		t.Fatal("Validate accepted nil fact type")
	}
}
