package delaymodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vlsi"
)

// table2 holds the paper's published overall delay results (Table 2).
var table2 = []struct {
	tech                 vlsi.Technology
	issueWidth, window   int
	rename, wakeupSelect float64
	bypass               float64
}{
	{vlsi.Tech080, 4, 32, 1577.9, 2903.7, 184.9},
	{vlsi.Tech080, 8, 64, 1710.5, 3369.4, 1056.4},
	{vlsi.Tech035, 4, 32, 627.2, 1248.4, 184.9},
	{vlsi.Tech035, 8, 64, 726.6, 1484.8, 1056.4},
	{vlsi.Tech018, 4, 32, 351.0, 578.0, 184.9},
	{vlsi.Tech018, 8, 64, 427.9, 724.0, 1056.4},
}

func within(t *testing.T, name string, got, want, tolPct float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if math.Abs(got-want)/math.Abs(want) > tolPct/100 {
		t.Errorf("%s = %.1f, want %.1f (±%g%%)", name, got, want, tolPct)
	}
}

func TestTable2Anchors(t *testing.T) {
	for _, row := range table2 {
		o, err := Analyze(row.tech, row.issueWidth, row.window)
		if err != nil {
			t.Fatalf("Analyze(%s, %d, %d): %v", row.tech.Name, row.issueWidth, row.window, err)
		}
		within(t, row.tech.Name+" rename", o.Rename.Total(), row.rename, 0.5)
		within(t, row.tech.Name+" wakeup+select", o.WakeupSelect(), row.wakeupSelect, 0.5)
		within(t, row.tech.Name+" bypass", o.Bypass.Delay, row.bypass, 1.0)
	}
}

func TestTable1BypassAnchors(t *testing.T) {
	// Table 1: 4-way 20500 λ / 184.9 ps; 8-way 49000 λ / 1056.4 ps.
	for _, tech := range vlsi.Technologies() {
		b4, err := Bypass(tech, 4)
		if err != nil {
			t.Fatal(err)
		}
		b8, err := Bypass(tech, 8)
		if err != nil {
			t.Fatal(err)
		}
		within(t, tech.Name+" 4-way wire length", b4.WireLengthLambda, 20500, 0.1)
		within(t, tech.Name+" 8-way wire length", b8.WireLengthLambda, 49000, 0.1)
		within(t, tech.Name+" 4-way bypass", b4.Delay, 184.9, 1.0)
		within(t, tech.Name+" 8-way bypass", b8.Delay, 1056.4, 1.0)
	}
}

func TestTable4ReservationTableAnchors(t *testing.T) {
	// Table 4 (0.18 µm): 4-way/80 regs → 192.1 ps; 8-way/128 regs → 251.7 ps.
	got4, err := ReservationTable(vlsi.Tech018, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	got8, err := ReservationTable(vlsi.Tech018, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "4-way reservation table", got4, 192.1, 0.5)
	within(t, "8-way reservation table", got8, 251.7, 0.5)
}

func TestReservationTableFasterThanWindow(t *testing.T) {
	// Section 5.3: "For both cases, the wakeup delay is much smaller than
	// the wakeup delay for a 4-way, 32-entry issue window".
	rt, err := ReservationTable(vlsi.Tech018, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Wakeup(vlsi.Tech018, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rt >= w.Total() {
		t.Errorf("reservation table (%.1f ps) not faster than 4-way 32-entry wakeup (%.1f ps)", rt, w.Total())
	}
	// And smaller than the corresponding rename delay.
	r, err := Rename(vlsi.Tech018, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rt >= r.Total() {
		t.Errorf("reservation table (%.1f ps) not faster than 8-way rename (%.1f ps)", rt, r.Total())
	}
}

func TestRenameTrends(t *testing.T) {
	for _, tech := range vlsi.Technologies() {
		prev := 0.0
		for _, iw := range []int{2, 4, 8} {
			d, err := Rename(tech, iw)
			if err != nil {
				t.Fatal(err)
			}
			if d.Total() <= prev {
				t.Errorf("%s: rename delay not increasing with issue width at %d-way", tech.Name, iw)
			}
			prev = d.Total()
			// Bitlines are longer than wordlines in the paper's design,
			// so bitline delay dominates wordline delay.
			if d.Bitline <= d.Wordline {
				t.Errorf("%s %d-way: bitline (%.1f) ≤ wordline (%.1f)", tech.Name, iw, d.Bitline, d.Wordline)
			}
		}
	}
}

func TestRenameBitlineGrowthWorsensWithSmallerFeature(t *testing.T) {
	// Section 4.1.3: the % increase in bitline delay from 2-way to 8-way
	// grows from ≈37% at 0.8 µm to ≈53% at 0.18 µm.
	growth := func(tech vlsi.Technology) float64 {
		d2, err := Rename(tech, 2)
		if err != nil {
			t.Fatal(err)
		}
		d8, err := Rename(tech, 8)
		if err != nil {
			t.Fatal(err)
		}
		return d8.Bitline/d2.Bitline - 1
	}
	g080, g018 := growth(vlsi.Tech080), growth(vlsi.Tech018)
	if math.Abs(g080-0.37) > 0.05 {
		t.Errorf("0.8µm bitline growth 2→8-way = %.0f%%, want ≈37%%", g080*100)
	}
	if math.Abs(g018-0.53) > 0.05 {
		t.Errorf("0.18µm bitline growth 2→8-way = %.0f%%, want ≈53%%", g018*100)
	}
	if g018 <= g080 {
		t.Errorf("bitline growth should worsen with smaller feature: 0.8µm %.2f vs 0.18µm %.2f", g080, g018)
	}
}

func TestWakeupTrends(t *testing.T) {
	// Delay increases with both window size and issue width.
	for _, tech := range vlsi.Technologies() {
		for _, iw := range []int{2, 4, 8} {
			prev := 0.0
			for ws := 8; ws <= 64; ws += 8 {
				d, err := Wakeup(tech, iw, ws)
				if err != nil {
					t.Fatal(err)
				}
				if d.Total() <= prev {
					t.Errorf("%s %d-way: wakeup delay not increasing at window %d", tech.Name, iw, ws)
				}
				prev = d.Total()
			}
		}
	}
}

func TestWakeupIssueWidthGrowthAt64(t *testing.T) {
	// Section 4.2.3 (0.18 µm, window 64): ≈34% going 2→4-way and ≈46%
	// going 4→8-way. Our calibration hits these within a few points.
	// Our calibration also has to satisfy the Table 2 sums and the Table 4
	// reservation-table comparison, which pulls these growth rates a few
	// points below the quoted figures; assert the band rather than the
	// exact values (see EXPERIMENTS.md).
	w2, _ := Wakeup(vlsi.Tech018, 2, 64)
	w4, _ := Wakeup(vlsi.Tech018, 4, 64)
	w8, _ := Wakeup(vlsi.Tech018, 8, 64)
	g24 := w4.Total()/w2.Total() - 1
	g48 := w8.Total()/w4.Total() - 1
	if g24 < 0.15 || g24 > 0.45 {
		t.Errorf("2→4-way wakeup growth = %.0f%%, want in [15%%, 45%%] (paper ≈34%%)", g24*100)
	}
	if g48 < 0.35 || g48 > 0.55 {
		t.Errorf("4→8-way wakeup growth = %.0f%%, want in [35%%, 55%%] (paper ≈46%%)", g48*100)
	}
}

func TestWakeupBroadcastFractionGrowsAsFeatureShrinks(t *testing.T) {
	// Figure 6: tag drive + tag match fraction of total wakeup delay grows
	// from ≈52% (0.8 µm) to ≈65% (0.18 µm) for an 8-way, 64-entry window.
	frac := func(tech vlsi.Technology) float64 {
		d, err := Wakeup(tech, 8, 64)
		if err != nil {
			t.Fatal(err)
		}
		return (d.TagDrive + d.TagMatch) / d.Total()
	}
	f080, f018 := frac(vlsi.Tech080), frac(vlsi.Tech018)
	if math.Abs(f080-0.52) > 0.04 {
		t.Errorf("0.8µm broadcast fraction = %.0f%%, want ≈52%%", f080*100)
	}
	if math.Abs(f018-0.65) > 0.04 {
		t.Errorf("0.18µm broadcast fraction = %.0f%%, want ≈65%%", f018*100)
	}
}

func TestSelectLogarithmic(t *testing.T) {
	for _, tech := range vlsi.Technologies() {
		s16, _ := Select(tech, 16)
		s32, _ := Select(tech, 32)
		s64, _ := Select(tech, 64)
		s128, _ := Select(tech, 128)
		if !(s16.Total() < s32.Total() && s32.Total() < s64.Total() && s64.Total() < s128.Total()) {
			t.Errorf("%s: select delay not increasing with window size", tech.Name)
		}
		// Section 4.3.3: doubling the window increases delay by less than
		// 100% because the root delay is window-independent.
		if s32.Total() >= 2*s16.Total() {
			t.Errorf("%s: select(32)=%.1f ≥ 2·select(16)=%.1f", tech.Name, s32.Total(), 2*s16.Total())
		}
		if s16.Root != s128.Root {
			t.Errorf("%s: root delay varies with window size", tech.Name)
		}
	}
}

func TestBypassQuadraticInIssueWidth(t *testing.T) {
	b2, _ := Bypass(vlsi.Tech018, 2)
	b4, _ := Bypass(vlsi.Tech018, 4)
	b8, _ := Bypass(vlsi.Tech018, 8)
	// Superlinear: delay(8)/delay(4) must exceed 2 by a wide margin.
	if b8.Delay/b4.Delay < 4 {
		t.Errorf("bypass 8-way/4-way ratio = %.2f, want ≥4 (quadratic wire growth)", b8.Delay/b4.Delay)
	}
	if b4.Delay <= b2.Delay {
		t.Error("bypass delay not increasing with issue width")
	}
}

func TestBypassOvertakesWindowAt8Way(t *testing.T) {
	// Table 2, 0.18 µm: for 4-way the window logic dominates; for 8-way
	// the bypass delay exceeds wakeup+select.
	o4, err := Analyze(vlsi.Tech018, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	o8, err := Analyze(vlsi.Tech018, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if o4.Bypass.Delay >= o4.WakeupSelect() {
		t.Error("4-way: bypass should be smaller than window logic")
	}
	if o8.Bypass.Delay <= o8.WakeupSelect() {
		t.Error("8-way: bypass should exceed window logic")
	}
	if o4.CriticalPath() != o4.WakeupSelect() {
		t.Error("4-way critical path should be the window logic")
	}
	if o8.CriticalPath() != o8.Bypass.Delay {
		t.Error("8-way critical path should be the bypass")
	}
}

func TestClockEstimateSpeedup(t *testing.T) {
	// Section 5.5 (0.18 µm): conservative dependence-based clock =
	// wakeup+select of a 4-way 32-entry machine = 578 ps vs the 8-way
	// window machine's 724 ps → ≈25% faster clock.
	est, err := ClockEstimate(vlsi.Tech018)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "conservative dependence-based clock", est.Conservative, 578.0, 0.5)
	o8, err := Analyze(vlsi.Tech018, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	speedup := o8.WakeupSelect() / est.Conservative
	if math.Abs(speedup-1.25) > 0.02 {
		t.Errorf("clock speedup = %.3f, want ≈1.25", speedup)
	}
	// Optimistic (rename-limited) estimate: the paper quotes "as much as
	// 39%" faster for 4-way; rename must be below the window delay.
	if est.Optimistic >= o8.WakeupSelect() {
		t.Error("optimistic clock estimate should beat the window machine")
	}
}

func TestRenameFasterThanWindow(t *testing.T) {
	// Section 4.5: for the 4-way 0.18 µm machine, rename is about 39%
	// faster than the window (wakeup+select) logic.
	o, err := Analyze(vlsi.Tech018, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	ratio := o.WakeupSelect()/o.Rename.Total() - 1
	if math.Abs(ratio-0.65) > 0.10 {
		// 578/351 = 1.647 — the paper's "39% faster" is measured the
		// other way round (351 is 39% less than 578).
		t.Errorf("window/rename ratio - 1 = %.2f, want ≈0.65", ratio)
	}
	inverse := 1 - o.Rename.Total()/o.WakeupSelect()
	if math.Abs(inverse-0.39) > 0.03 {
		t.Errorf("rename is %.0f%% faster than window logic, want ≈39%%", inverse*100)
	}
}

func TestErrorsOnInvalidArguments(t *testing.T) {
	bad := vlsi.Technology{Name: "1.0um"}
	if _, err := Rename(bad, 4); err == nil {
		t.Error("Rename with unknown technology succeeded")
	}
	if _, err := Rename(vlsi.Tech018, 0); err == nil {
		t.Error("Rename with zero issue width succeeded")
	}
	if _, err := Wakeup(vlsi.Tech018, 0, 32); err == nil {
		t.Error("Wakeup with zero issue width succeeded")
	}
	if _, err := Wakeup(vlsi.Tech018, 4, 0); err == nil {
		t.Error("Wakeup with zero window succeeded")
	}
	if _, err := Select(vlsi.Tech018, 0); err == nil {
		t.Error("Select with zero window succeeded")
	}
	if _, err := Bypass(vlsi.Tech018, 0); err == nil {
		t.Error("Bypass with zero issue width succeeded")
	}
	if _, err := ReservationTable(vlsi.Tech018, 0, 80); err == nil {
		t.Error("ReservationTable with zero issue width succeeded")
	}
	if _, err := Analyze(bad, 4, 32); err == nil {
		t.Error("Analyze with unknown technology succeeded")
	}
	if _, err := ClockEstimate(bad); err == nil {
		t.Error("ClockEstimate with unknown technology succeeded")
	}
}

func TestPropertyWakeupMonotone(t *testing.T) {
	f := func(iwRaw, wsRaw uint8) bool {
		iw := int(iwRaw%8) + 1
		ws := int(wsRaw%128) + 1
		a, err1 := Wakeup(vlsi.Tech018, iw, ws)
		b, err2 := Wakeup(vlsi.Tech018, iw, ws+1)
		c, err3 := Wakeup(vlsi.Tech018, iw+1, ws)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return a.Total() <= b.Total() && a.Total() <= c.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAnalyzeComponentsPositive(t *testing.T) {
	f := func(iwRaw, wsRaw uint8) bool {
		iw := int(iwRaw%8) + 1
		ws := int(wsRaw%128) + 1
		o, err := Analyze(vlsi.Tech035, iw, ws)
		if err != nil {
			return false
		}
		return o.Rename.Total() > 0 && o.Wakeup.Total() > 0 &&
			o.Select.Total() > 0 && o.Bypass.Delay > 0 &&
			o.CriticalPath() >= o.Rename.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
