// Cesweep regenerates the paper's simulation results: Figure 13 (IPC of
// the dependence-based machine versus the baseline window machine),
// Figure 15 (the clustered 2×4-way machine), Figure 17 (the clustered
// design space, IPC and inter-cluster bypass frequency), the Section 5.5
// speedup estimate, and the window-size trade-off extension.
//
// Usage:
//
//	cesweep -fig 13        # one figure
//	cesweep -speedup       # Section 5.5 estimate
//	cesweep -tradeoff      # window-size trade-off (extension)
//	cesweep -all           # everything
//	cesweep -all -csv      # CSV output
//
// Sweeps share one content-addressed run cache, so a (config, workload)
// pair revisited by several figures is simulated once per process.
// Observability flags:
//
//	-v                  per-run progress and cache statistics on stderr
//	-metrics-json FILE  dump per-run metrics and cache counters as JSON
//	-cache-dir DIR      persist run results on disk across invocations
//
// Host-performance flags for working on the simulator itself:
//
//	-bench-json FILE    benchmark the simulator on every verification-panel
//	                    configuration and write BENCH_pipeline.json
//	-cpuprofile FILE    write a CPU profile of the sweep
//	-memprofile FILE    write a heap profile taken after the sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro"
	"repro/internal/canonjson"
	"repro/internal/report"
)

var (
	figure    = flag.Int("fig", 0, "figure to regenerate: 13, 15 or 17")
	speedup   = flag.Bool("speedup", false, "print the Section 5.5 speedup estimate")
	tradeoff  = flag.Bool("tradeoff", false, "print the window-size trade-off (extension)")
	ablations = flag.Bool("ablations", false, "run the steering/geometry/latency/predictor/atomicity ablations (extensions)")
	micro     = flag.Bool("micro", false, "run the microbenchmark characterization (extension)")
	frontier  = flag.Bool("frontier", false, "rank design points by IPC x estimated clock (extension)")
	profiles  = flag.Bool("profiles", false, "print dynamic workload profiles (extension)")
	all       = flag.Bool("all", false, "regenerate every simulation result")
	csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	verbose   = flag.Bool("v", false, "print per-run progress and cache statistics to stderr")
	metrics   = flag.String("metrics-json", "", "write per-run metrics and cache statistics to this file as JSON")
	cacheDir  = flag.String("cache-dir", "", "persist simulation results as JSON under this directory")
	benchJSON = flag.String("bench-json", "", "benchmark the simulator per panel config and write results to this file")
	benchWork = flag.String("bench-workload", "compress", "workload for -bench-json")
	cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprof   = flag.String("memprofile", "", "write a heap profile taken after the sweep to this file")
)

func main() {
	flag.Parse()
	stop, err := startProfiling(*cpuprof, *memprof)
	if err == nil {
		err = run()
		if perr := stop(); err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cesweep:", err)
		os.Exit(1)
	}
}

// startProfiling arms the -cpuprofile/-memprofile flags; the returned
// function flushes the profiles after the sweep (heap profile after a
// final GC, so it shows live retention rather than garbage).
func startProfiling(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// setupObservability wires the -v, -cache-dir and -metrics-json flags to
// the default sweep engine; the returned function finishes the report
// after the sweep.
func setupObservability() (func() error, error) {
	eng := ce.DefaultEngine
	if *cacheDir != "" {
		if err := eng.SetCacheDir(*cacheDir); err != nil {
			return nil, err
		}
	}
	if *metrics != "" {
		// Fail on an unwritable path now, not after minutes of simulation.
		f, err := os.OpenFile(*metrics, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		f.Close()
	}
	if *verbose {
		eng.SetObserver(func(m ce.RunMetrics) {
			if m.Cached {
				fmt.Fprintf(os.Stderr, "cesweep: %-28s %-12s cached (ipc %.2f)\n",
					m.Config, m.Workload, m.IPC)
				return
			}
			fmt.Fprintf(os.Stderr, "cesweep: %-28s %-12s %9d cycles  ipc %.2f  %6.0f ms  %5.1f Mcyc/s\n",
				m.Config, m.Workload, m.Cycles, m.IPC, m.WallSeconds*1000, m.MCyclesPerSec)
		})
	}
	finish := func() error {
		cs := eng.CacheStats()
		if *verbose {
			fmt.Fprintf(os.Stderr,
				"cesweep: cache: %d lookups — %d hits, %d coalesced, %d disk hits, %d misses (%d uncacheable); %d simulator runs saved\n",
				cs.Lookups(), cs.Hits, cs.Coalesced, cs.DiskHits, cs.Misses, cs.Uncacheable, cs.Saved())
		}
		if *metrics == "" {
			return nil
		}
		dump := struct {
			Runs  []ce.RunMetrics `json:"runs"`
			Cache ce.CacheStats   `json:"cache"`
		}{Runs: eng.Metrics(), Cache: cs}
		data, err := canonjson.Marshal(dump)
		if err != nil {
			return err
		}
		return os.WriteFile(*metrics, data, 0o644)
	}
	return finish, nil
}

func emit(t *report.Table) {
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}

func run() (err error) {
	finish, err := setupObservability()
	if err != nil {
		return err
	}
	// Flush observability output even when a sweep fails partway: the
	// metrics file and -v cache statistics then cover every run that did
	// complete, which is exactly what a failure post-mortem needs.
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	ran := false
	if *figure == 13 || *all {
		ran = true
		cmp, err := ce.Figure13()
		if err != nil {
			return err
		}
		emit(cmp.IPCTable("Figure 13: IPC of the dependence-based microarchitecture"))
	}
	if *figure == 15 || *all {
		ran = true
		cmp, err := ce.Figure15()
		if err != nil {
			return err
		}
		emit(cmp.IPCTable("Figure 15: IPC of the clustered dependence-based microarchitecture"))
	}
	if *figure == 17 || *all {
		ran = true
		cmp, err := ce.Figure17()
		if err != nil {
			return err
		}
		emit(cmp.IPCTable("Figure 17 (top): IPC of clustered microarchitectures"))
		emit(cmp.BypassTable("Figure 17 (bottom): inter-cluster bypass frequency"))
	}
	if *speedup || *all {
		ran = true
		sws, sum, err := ce.SpeedupEstimate()
		if err != nil {
			return err
		}
		emit(ce.SpeedupTable(sws, sum))
	}
	if *tradeoff || *all {
		ran = true
		tbl, err := ce.WindowTradeoff([]int{16, 32, 64, 128})
		if err != nil {
			return err
		}
		emit(tbl)
	}
	if *ablations || *all {
		ran = true
		for _, fn := range []func() (*report.Table, error){
			ce.SteeringAblation, ce.FIFOGeometry, ce.LatencySweep, ce.PredictorAblation,
			ce.AtomicityAblation, ce.FetchRealismAblation, ce.SelectionPolicyAblation,
			ce.StoreForwardingAblation, ce.SteeringDepthAblation, ce.WrongPathAblation,
		} {
			tbl, err := fn()
			if err != nil {
				return err
			}
			emit(tbl)
		}
	}
	if *frontier || *all {
		ran = true
		pts, err := ce.Frontier()
		if err != nil {
			return err
		}
		emit(ce.FrontierTable(pts))
	}
	if *profiles || *all {
		ran = true
		tbl, err := ce.WorkloadProfiles()
		if err != nil {
			return err
		}
		emit(tbl)
	}
	if *micro || *all {
		ran = true
		tbl, err := ce.MicrobenchCharacterization()
		if err != nil {
			return err
		}
		emit(tbl)
	}
	if *benchJSON != "" {
		ran = true
		res, err := ce.WriteBenchJSON(*benchJSON, *benchWork)
		if err != nil {
			return err
		}
		fmt.Printf("Simulator performance on %s (written to %s):\n", *benchWork, *benchJSON)
		for _, r := range res {
			fmt.Printf("  %-28s %9d cycles  %6.0f ms  %6.2f Mcycles/s  %.3f allocs/cycle\n",
				r.Config, r.Cycles, r.WallSeconds*1000, r.MCyclesPerSec, r.AllocsPerCycle)
		}
	}
	// An unrecognized figure number used to fall through to the
	// misleading "nothing selected" error below; reject it by name. The
	// check sits after the sweeps so that other selections on the same
	// command line still run (and their metrics still flush).
	switch *figure {
	case 0, 13, 15, 17:
	default:
		return fmt.Errorf("unknown figure %d (want 13, 15 or 17)", *figure)
	}
	if !ran {
		flag.Usage()
		return fmt.Errorf("nothing selected: pass -fig N, -speedup, -tradeoff, -ablations, -micro, -bench-json or -all")
	}
	return nil
}
