// Package report renders the experiment results as aligned text tables and
// CSV, the formats emitted by the cmd/ tools and recorded in
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v for strings/ints and %.2f for floats.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		// Match String(): cells beyond the header count are dropped, as
		// AddRow documents (String's width loop never reaches them).
		if len(row) > len(t.Headers) {
			row = row[:len(t.Headers)]
		}
		writeRow(row)
	}
	return b.String()
}
