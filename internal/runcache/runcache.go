// Package runcache memoizes simulation results. The timing simulator is
// deterministic — a (configuration fingerprint, workload) pair always
// produces the same Stats — so the paper's evaluation matrix, which
// revisits the same machines across figures, ablations and the frontier,
// only ever needs to simulate each distinct pair once per process.
//
// The cache is concurrency-safe and single-flight: when two goroutines
// request the same key, one computes and the other waits for (and
// shares) the result. With a directory configured, results also persist
// as JSON, so repeated sweep invocations skip simulation entirely.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/canonjson"
	"repro/internal/pipeline"
)

// Stats counts cache outcomes. Hits + Coalesced + DiskHits is the number
// of simulator runs the cache avoided; Misses is the number it actually
// performed.
type Stats struct {
	// Hits are lookups served from a completed in-memory entry.
	Hits uint64 `json:"hits"`
	// Coalesced are lookups that joined an in-flight computation of the
	// same key (single-flight duplicates).
	Coalesced uint64 `json:"coalesced"`
	// DiskHits are lookups served from the persistence directory.
	DiskHits uint64 `json:"disk_hits"`
	// Misses are lookups that ran the simulator.
	Misses uint64 `json:"misses"`
	// Uncacheable are runs bypassing the cache because their
	// configuration has no fingerprint (opaque factory closures).
	Uncacheable uint64 `json:"uncacheable"`
}

// Lookups returns the total number of cache consultations.
func (s Stats) Lookups() uint64 {
	return s.Hits + s.Coalesced + s.DiskHits + s.Misses
}

// Saved returns the number of simulator runs the cache avoided.
func (s Stats) Saved() uint64 {
	return s.Hits + s.Coalesced + s.DiskHits
}

type entry struct {
	done chan struct{}
	st   pipeline.Stats
	err  error
}

// Cache is a content-addressed memo of simulation results.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	dir     string
	stats   Stats
}

// New returns an empty in-memory cache.
func New() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// SetDir enables on-disk persistence under dir (created if missing).
// An empty dir disables persistence.
func (c *Cache) SetDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("runcache: %v", err)
		}
	}
	c.mu.Lock()
	c.dir = dir
	c.mu.Unlock()
	return nil
}

// Do returns the memoized result for key, computing it at most once per
// process. hit reports whether the result was served without invoking
// compute (including joining another goroutine's in-flight computation).
// Errors are memoized too: a deterministic simulator fails the same way
// every time, and callers must see the failure rather than a zero Stats.
func (c *Cache) Do(key string, compute func() (pipeline.Stats, error)) (st pipeline.Stats, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			c.stats.Hits++
		default:
			c.stats.Coalesced++
		}
		c.mu.Unlock()
		<-e.done
		return e.st, true, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	dir := c.dir
	c.mu.Unlock()

	if dir != "" {
		if st, ok := c.loadDisk(dir, key); ok {
			c.mu.Lock()
			c.stats.DiskHits++
			c.mu.Unlock()
			e.st = st
			close(e.done)
			return st, true, nil
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	e.st, e.err = compute()
	close(e.done)
	if e.err == nil && dir != "" {
		// Persistence is best-effort: a read-only directory degrades to
		// in-memory memoization rather than failing the sweep.
		c.saveDisk(dir, key, e.st)
	}
	return e.st, false, e.err
}

// RecordUncacheable notes one run that bypassed the cache.
func (c *Cache) RecordUncacheable() {
	c.mu.Lock()
	c.stats.Uncacheable++
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of memoized keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops all in-memory entries and counters (the persistence
// directory is untouched).
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = make(map[string]*entry)
	c.stats = Stats{}
	c.mu.Unlock()
}

// diskEntry is the persisted form: the full key is stored alongside the
// result so hash collisions are detected and files are debuggable.
type diskEntry struct {
	Key   string         `json:"key"`
	Stats pipeline.Stats `json:"stats"`
}

func diskPath(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, hex.EncodeToString(sum[:])[:32]+".json")
}

func (c *Cache) loadDisk(dir, key string) (pipeline.Stats, bool) {
	path := diskPath(dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		return pipeline.Stats{}, false
	}
	var de diskEntry
	if err := json.Unmarshal(data, &de); err != nil || de.Key != key {
		// The file is unusable — corrupt JSON from a crashed writer or a
		// hash collision with a different key. Delete it so the slot can
		// be rewritten; otherwise it would shadow this key forever.
		_ = os.Remove(path)
		return pipeline.Stats{}, false
	}
	return de.Stats, true
}

func (c *Cache) saveDisk(dir, key string, st pipeline.Stats) {
	// Canonical bytes: two processes caching the same result write
	// byte-identical files, so racing renames are harmless.
	data, err := canonjson.Marshal(diskEntry{Key: key, Stats: st})
	if err != nil {
		return
	}
	// Write to a uniquely named temp file and rename into place: a fixed
	// temp name would let two processes sharing the directory interleave
	// writes and rename a torn file over the entry.
	tmp, err := os.CreateTemp(dir, "entry-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), diskPath(dir, key)); err != nil {
		_ = os.Remove(tmp.Name())
	}
}
