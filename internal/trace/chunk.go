package trace

// Chunked storage: the packed stream is cut into fixed-record-count
// chunks, each independently checksummed, so a trace can live on disk
// and be consumed one chunk at a time. A segment worker holds exactly
// one chunk buffer however long the trace is — the whole stream never
// needs to be resident. Chunks are sealed in capture order, which makes
// the writer a pure append device (see Recorder) and the on-disk layout
// streamable: header, chunk bytes, footer.

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/errclass"
)

// chunkRecords is the number of dynamic records per chunk. It must be a
// multiple of boundaryInterval so every warm-start boundary falls on a
// known offset inside a known chunk. 2^18 records ≈ 256 KiB at the
// format's ~1 byte/record density (1 MiB worst case), small enough that
// K segment workers hold O(K) chunk buffers, large enough that refills
// are rare (one per quarter-million replayed instructions).
const chunkRecords = 1 << 18

// maxChunkBytes bounds a chunk's packed size: no record packs more than
// 4 bytes.
const maxChunkBytes = 4 * chunkRecords

// chunkMeta locates and authenticates one chunk. Chunk i covers records
// [i·chunkRecords, (i+1)·chunkRecords) ∩ [0, Steps()).
type chunkMeta struct {
	startPos  uint64 // byte offset of the chunk in the packed stream
	packedLen uint32
	sum       [32]byte // sha256 of the chunk's packed bytes
}

// ErrCorruptChunk marks a chunk whose bytes fail their checksum at read
// time (bit rot or a torn write). The engine treats it as "this trace is
// gone": drop, delete, recapture — a segment worker must never decode a
// torn chunk. It wraps errclass.ErrCorrupt, so the generic classifiers
// (runcache's memoization guard among them) recognize it without
// importing this package.
var ErrCorruptChunk = fmt.Errorf("trace: chunk checksum mismatch (corrupt or torn trace file): %w", errclass.ErrCorrupt)

// chunkStore supplies chunk bytes on demand. Implementations are safe
// for concurrent load calls: segment workers stream different chunks of
// one shared trace.
type chunkStore interface {
	// load returns chunk i's packed bytes. dst, when non-nil, is a
	// caller-owned buffer (cap ≥ packedLen) the store may decode into;
	// memory-backed stores ignore it and return an interior slice.
	load(i int, m chunkMeta, dst []byte) ([]byte, error)
	// footprint reports the store's disk and resident byte counts.
	footprint() (disk, resident int64)
	close() error
}

// memStore keeps every chunk in memory — the store behind small
// in-memory captures and Unmarshal. Checksums were verified when the
// bytes entered the process, and in-process memory does not rot.
type memStore struct {
	chunks [][]byte
}

func (s *memStore) load(i int, m chunkMeta, dst []byte) ([]byte, error) {
	if i < 0 || i >= len(s.chunks) {
		return nil, errCorrupt
	}
	return s.chunks[i], nil
}

func (s *memStore) footprint() (int64, int64) {
	var n int64
	for _, c := range s.chunks {
		n += int64(len(c))
	}
	return 0, n
}

func (s *memStore) close() error { return nil }

// fileStore reads chunks from an open trace file via ReadAt (safe for
// concurrent readers; no shared cursor) and verifies each chunk's
// checksum on every load — disk bytes, unlike process memory, can rot
// or be torn, and a reader must fail loudly before decoding them.
type fileStore struct {
	f    *os.File
	path string // for error messages; may outlive renames
	size int64  // total file size (footprint)

	closeOnce sync.Once
	closeErr  error
}

// fileHeaderLen is the fixed prefix before chunk data: magic + progHash.
const fileHeaderLen = 8 + 32

func (s *fileStore) load(i int, m chunkMeta, dst []byte) ([]byte, error) {
	if uint64(len(dst)) < uint64(m.packedLen) {
		// Callers size dst from the trace's own chunk table; a short
		// buffer means the table and this call disagree.
		return nil, errCorrupt
	}
	dst = dst[:m.packedLen]
	if _, err := s.f.ReadAt(dst, fileHeaderLen+int64(m.startPos)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("trace: %s: chunk %d truncated: %w", s.path, i, ErrCorruptChunk)
		}
		return nil, classify(fmt.Errorf("trace: %s: reading chunk %d: %w", s.path, i, err))
	}
	if sha256.Sum256(dst) != m.sum {
		return nil, fmt.Errorf("trace: %s: chunk %d: %w", s.path, i, ErrCorruptChunk)
	}
	return dst, nil
}

func (s *fileStore) footprint() (int64, int64) { return s.size, 0 }

func (s *fileStore) close() error {
	s.closeOnce.Do(func() { s.closeErr = classify(s.f.Close()) })
	return s.closeErr
}

// chunkBufPool recycles reader chunk buffers across segment runs, so a
// sweep's K parallel workers settle on K buffers total instead of
// allocating one per (config, segment) pair.
var chunkBufPool sync.Pool

// grabChunkBuf returns a buffer with capacity ≥ n.
func grabChunkBuf(n int) *[]byte {
	if v := chunkBufPool.Get(); v != nil {
		b := v.(*[]byte)
		if cap(*b) >= n {
			return b
		}
	}
	b := make([]byte, n) //ce:alloc-ok pool refill, amortized across all chunks of a segment
	return &b
}

func releaseChunkBuf(b *[]byte) {
	if b != nil {
		chunkBufPool.Put(b)
	}
}
