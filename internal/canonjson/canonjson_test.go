package canonjson

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestSortedKeysAndStableBytes(t *testing.T) {
	// Two structs with the same JSON content but different field order
	// must render identically.
	type a struct {
		Zebra int    `json:"zebra"`
		Alpha string `json:"alpha"`
	}
	type b struct {
		Alpha string `json:"alpha"`
		Zebra int    `json:"zebra"`
	}
	ba, err := Marshal(a{Zebra: 3, Alpha: "x"})
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Marshal(b{Alpha: "x", Zebra: 3})
	if err != nil {
		t.Fatal(err)
	}
	if string(ba) != string(bb) {
		t.Errorf("field order leaked into output:\n%s\nvs\n%s", ba, bb)
	}
	want := "{\n\t\"alpha\": \"x\",\n\t\"zebra\": 3\n}\n"
	if string(ba) != want {
		t.Errorf("canonical form = %q, want %q", ba, want)
	}
}

func TestMapKeysSorted(t *testing.T) {
	got, err := Marshal(map[string][]int{"b": {2}, "a": nil, "c": {}})
	if err != nil {
		t.Fatal(err)
	}
	ia, ib, ic := strings.Index(string(got), `"a"`), strings.Index(string(got), `"b"`), strings.Index(string(got), `"c"`)
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Errorf("keys not sorted:\n%s", got)
	}
}

func TestLargeIntegersSurvive(t *testing.T) {
	// A float64 round-trip would corrupt counters above 2^53.
	v := map[string]uint64{"cycles": math.MaxUint64}
	got, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "18446744073709551615") {
		t.Errorf("uint64 corrupted:\n%s", got)
	}
}

func TestRoundTrip(t *testing.T) {
	type inner struct {
		S []string `json:"s"`
		N int64    `json:"n"`
	}
	in := map[string]inner{"x": {S: []string{"a", "b"}, N: -7}, "y": {}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]inner
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("canonical output not parseable: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch: %+v vs %+v", in, out)
	}
	if data[len(data)-1] != '\n' || data[len(data)-2] == '\n' {
		t.Errorf("output must end in exactly one newline: %q", data)
	}
}
