package runcache

import (
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/stats"
)

func fakeStats(cycles int64) pipeline.Stats {
	h := stats.NewHistogram(8)
	h.Add(3)
	h.Add(5)
	return pipeline.Stats{
		Config:         "cfg",
		Workload:       "wl",
		Cycles:         cycles,
		Committed:      uint64(2 * cycles),
		IssuedPerCycle: h,
	}
}

func TestDoMemoizes(t *testing.T) {
	c := New()
	var calls int32
	compute := func() (pipeline.Stats, error) {
		atomic.AddInt32(&calls, 1)
		return fakeStats(100), nil
	}
	st, hit, err := c.Do("k", compute)
	if err != nil || hit || st.Cycles != 100 {
		t.Fatalf("first Do = %+v, hit=%v, err=%v", st, hit, err)
	}
	st, hit, err = c.Do("k", compute)
	if err != nil || !hit || st.Cycles != 100 {
		t.Fatalf("second Do = %+v, hit=%v, err=%v", st, hit, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	cs := c.Stats()
	if cs.Misses != 1 || cs.Hits != 1 || cs.Saved() != 1 || cs.Lookups() != 2 {
		t.Errorf("stats = %+v", cs)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestDoSingleFlight(t *testing.T) {
	c := New()
	var calls int32
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, _, err := c.Do("k", func() (pipeline.Stats, error) {
				atomic.AddInt32(&calls, 1)
				<-release
				return fakeStats(7), nil
			})
			if err != nil || st.Cycles != 7 {
				t.Errorf("Do = %+v, %v", st, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Errorf("compute ran %d times under concurrency, want 1", calls)
	}
	cs := c.Stats()
	if cs.Misses != 1 || cs.Hits+cs.Coalesced != n-1 {
		t.Errorf("stats = %+v", cs)
	}
}

func TestDoMemoizesErrors(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	var calls int32
	for i := 0; i < 2; i++ {
		_, _, err := c.Do("bad", func() (pipeline.Stats, error) {
			atomic.AddInt32(&calls, 1)
			return pipeline.Stats{}, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Errorf("failing compute ran %d times, want 1 (errors memoized)", calls)
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c := New()
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	want := fakeStats(42)
	if _, _, err := c.Do("k", func() (pipeline.Stats, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory serves the result without
	// computing, and the histogram survives the JSON round trip.
	c2 := New()
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	st, hit, err := c2.Do("k", func() (pipeline.Stats, error) {
		t.Fatal("compute called despite disk entry")
		return pipeline.Stats{}, nil
	})
	if err != nil || !hit {
		t.Fatalf("disk Do: hit=%v err=%v", hit, err)
	}
	if st.Cycles != want.Cycles || st.Committed != want.Committed {
		t.Errorf("disk stats = %+v, want %+v", st, want)
	}
	if st.IssuedPerCycle == nil || st.IssuedPerCycle.Total() != 2 || st.IssuedPerCycle.Count(3) != 1 {
		t.Errorf("histogram lost in round trip: %+v", st.IssuedPerCycle)
	}
	if cs := c2.Stats(); cs.DiskHits != 1 || cs.Misses != 0 {
		t.Errorf("stats = %+v", cs)
	}

	// A different key does not collide with the stored entry.
	var computed bool
	if _, hit, _ := c2.Do("other", func() (pipeline.Stats, error) {
		computed = true
		return fakeStats(1), nil
	}); hit || !computed {
		t.Errorf("unrelated key served from disk: hit=%v computed=%v", hit, computed)
	}
}

// TestDiskConcurrentWriters runs two caches over one directory writing
// the same keys concurrently — the regression for the shared fixed-name
// temp file, which let one process rename another's half-written JSON
// into place. Every surviving file must be complete and loadable.
func TestDiskConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	caches := [2]*Cache{New(), New()}
	for _, c := range caches {
		if err := c.SetDir(dir); err != nil {
			t.Fatal(err)
		}
	}
	const keys = 16
	var wg sync.WaitGroup
	for _, c := range caches {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := "key" + string(rune('a'+k))
				if _, _, err := c.Do(key, func() (pipeline.Stats, error) {
					return fakeStats(int64(k + 1)), nil
				}); err != nil {
					t.Errorf("Do(%s): %v", key, err)
				}
			}
		}()
	}
	wg.Wait()

	// No temp files left behind, and every entry round-trips.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("stale temp file %s left in cache dir", e.Name())
		}
	}
	fresh := New()
	if err := fresh.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		key := "key" + string(rune('a'+k))
		st, hit, err := fresh.Do(key, func() (pipeline.Stats, error) {
			t.Errorf("key %s not persisted", key)
			return pipeline.Stats{}, nil
		})
		if err != nil || !hit || st.Cycles != int64(k+1) {
			t.Errorf("reload %s: hit=%v cycles=%d err=%v", key, hit, st.Cycles, err)
		}
	}
}

// TestDiskDropsUnusableFiles: a file whose stored key mismatches (hash
// collision) or whose JSON is torn must be deleted on load, not silently
// ignored, so the slot can be rewritten.
func TestDiskDropsUnusableFiles(t *testing.T) {
	for name, contents := range map[string]string{
		"mismatched key": `{"key":"some other key","stats":{}}`,
		"torn JSON":      `{"key":"k","st`,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			path := diskPath(dir, "k")
			if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
				t.Fatal(err)
			}
			c := New()
			if err := c.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			st, hit, err := c.Do("k", func() (pipeline.Stats, error) {
				return fakeStats(9), nil
			})
			if err != nil || hit || st.Cycles != 9 {
				t.Fatalf("Do over bad file: st=%+v hit=%v err=%v", st, hit, err)
			}
			// The bad file was replaced by the fresh result.
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("entry not rewritten: %v", err)
			}
			var de diskEntry
			if err := json.Unmarshal(data, &de); err != nil || de.Key != "k" {
				t.Errorf("rewritten entry unusable: key=%q err=%v", de.Key, err)
			}
		})
	}
}

func TestReset(t *testing.T) {
	c := New()
	if _, _, err := c.Do("k", func() (pipeline.Stats, error) { return fakeStats(1), nil }); err != nil {
		t.Fatal(err)
	}
	c.RecordUncacheable()
	c.Reset()
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Errorf("reset left len=%d stats=%+v", c.Len(), c.Stats())
	}
}
