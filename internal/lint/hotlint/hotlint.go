// Package hotlint statically enforces the hot-path contract from PR 3:
// a function marked //ce:hot must not allocate. The allocation-free cycle
// loop is what keeps the simulator "as fast as the hardware allows"; one
// stray make or boxed closure in tryIssue silently reintroduces GC
// pressure that no test fails on.
//
// The analysis is intraprocedural and conservative about what escapes:
//
//   - make / new always flag.
//   - Composite literals flag when their address is taken (&T{...} — the
//     pointer can outlive the frame) or when their immediate use boxes
//     them into an interface (call argument, assignment, or return with
//     an interface-typed destination). A value composite that is copied —
//     v := T{...}, *p = T{...}, append(s, T{...}) — is not an allocation.
//   - append flags when it grows a fresh slice (the assignment target is
//     not the same expression as append's first argument); self-appends
//     amortize against pre-grown capacity and are allowed.
//   - fmt.* calls always flag (interface boxing of arguments).
//   - Function literals flag when they escape — only a literal that is
//     called directly or bound to a local variable that is itself only
//     ever called (like skipAhead's consider) stays on the stack.
//   - go / defer statements flag (goroutine stacks, deferred frames).
//
// //ce:alloc-ok <reason> on the offending line (or alone on the line
// above) exempts a finding; the reason is mandatory.
package hotlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// Analyzer is the hotlint pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotlint",
	Doc:  "flags heap allocations inside functions marked //ce:hot",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		idx := directive.NewIndex(pass.Fset, f, directive.AllocOK)
		for _, d := range idx.Malformed() {
			pass.Report(analysis.Diagnostic{
				Pos:      d.Pos,
				Category: "bad-hatch",
				Message:  "//ce:alloc-ok requires a reason: //ce:alloc-ok <why this allocation is acceptable>",
			})
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !directive.FuncMarked(fd, directive.Hot) {
				continue
			}
			c := &checker{
				pass:    pass,
				idx:     idx,
				fn:      fd,
				parents: parentMap(fd.Body),
			}
			c.check()
		}
	}
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	idx     *directive.Index
	fn      *ast.FuncDecl
	parents map[ast.Node]ast.Node
}

// parentMap records the parent of every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	m := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}

func (c *checker) report(pos token.Pos, category, format string, args ...any) {
	if _, ok := c.idx.Covering(pos); ok {
		return
	}
	c.pass.Report(analysis.Diagnostic{
		Pos:      pos,
		Category: category,
		Message:  fmt.Sprintf(format, args...) + " in //ce:hot function " + c.fn.Name.Name,
	})
}

// check walks the function body flagging allocation sites.
func (c *checker) check() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.call(n)
		case *ast.CompositeLit:
			if c.compositeEscapes(n) {
				c.report(n.Pos(), "hot-composite", "escaping composite literal allocates")
			}
		case *ast.FuncLit:
			if c.funcLitEscapes(n) {
				c.report(n.Pos(), "hot-closure", "escaping func literal allocates its closure")
			}
			return true // still scan the body: nested allocations count
		case *ast.GoStmt:
			c.report(n.Pos(), "hot-go", "go statement allocates a goroutine stack")
		case *ast.DeferStmt:
			c.report(n.Pos(), "hot-defer", "defer allocates a deferred frame")
		}
		return true
	})
}

// call flags make/new, fmt calls, and fresh-slice appends.
func (c *checker) call(call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch c.builtinName(fun) {
		case "make":
			c.report(call.Pos(), "hot-make", "make allocates")
		case "new":
			c.report(call.Pos(), "hot-new", "new allocates")
		case "append":
			c.appendCall(call)
		}
	case *ast.SelectorExpr:
		if pkg := pkgNameOf(c.pass.TypesInfo, fun.X); pkg != nil && pkg.Imported().Path() == "fmt" {
			c.report(call.Pos(), "hot-fmt", "fmt."+fun.Sel.Name+" boxes its arguments")
		}
	}
}

// builtinName returns the name of the builtin the identifier denotes, or
// "" when it is shadowed or not a builtin.
func (c *checker) builtinName(id *ast.Ident) string {
	if obj, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return obj.Name()
	}
	return ""
}

// pkgNameOf resolves an expression to the package it names, if any.
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// appendCall flags x = append(y, ...) when x and y are different
// expressions: the result lands in a fresh slice that append must
// allocate. Self-append (x = append(x, ...)) amortizes against capacity
// reserved by a non-hot setup path and is the idiom the PR 3 loop uses.
func (c *checker) appendCall(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	as, ok := c.parents[call].(*ast.AssignStmt)
	if !ok {
		// append whose result is not stored back: passed to a call,
		// returned, discarded — always a fresh allocation on growth.
		c.report(call.Pos(), "hot-append", "append into a fresh slice allocates")
		return
	}
	// Find which RHS position this call occupies to pair it with its LHS.
	lhsIdx := 0
	if len(as.Lhs) == len(as.Rhs) {
		for i, r := range as.Rhs {
			if ast.Unparen(r) == ast.Expr(call) {
				lhsIdx = i
				break
			}
		}
	}
	if lhsIdx >= len(as.Lhs) {
		return
	}
	lhs := types.ExprString(ast.Unparen(as.Lhs[lhsIdx]))
	arg := types.ExprString(ast.Unparen(call.Args[0]))
	if lhs != arg {
		c.report(call.Pos(), "hot-append", "append into a fresh slice allocates")
	}
}

// compositeEscapes reports whether a composite literal is heap
// allocated: its address is taken, or its immediate use converts it to
// an interface type (boxing). Plain value uses are copies.
func (c *checker) compositeEscapes(lit *ast.CompositeLit) bool {
	var child ast.Node = lit
	for {
		parent := c.parents[child]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			child = p
		case *ast.UnaryExpr:
			// &T{...}: the pointer can outlive the frame; the PR 3 fast
			// path has no legitimate &T{}, so flag conservatively.
			return p.Op == token.AND
		case *ast.CallExpr:
			return c.boxedByCall(p, child)
		case *ast.AssignStmt:
			return c.boxedByAssign(p, child)
		case *ast.ReturnStmt:
			return c.boxedByReturn(p, child)
		default:
			// Nested literals, value specs, indexes, sends, ranges: the
			// value is copied (or the outermost literal decides).
			return false
		}
	}
}

// boxedByCall reports whether the argument lands in an interface-typed
// parameter.
func (c *checker) boxedByCall(call *ast.CallExpr, arg ast.Node) bool {
	sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false // conversion or builtin
	}
	idx := -1
	for i, a := range call.Args {
		if ast.Node(a) == arg {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	params := sig.Params()
	var pt types.Type
	switch {
	case sig.Variadic() && idx >= params.Len()-1 && !call.Ellipsis.IsValid():
		if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			pt = sl.Elem()
		}
	case idx < params.Len():
		pt = params.At(idx).Type()
	}
	return pt != nil && types.IsInterface(pt)
}

// boxedByAssign reports whether the assignment's destination for this
// RHS is interface-typed.
func (c *checker) boxedByAssign(as *ast.AssignStmt, rhs ast.Node) bool {
	if len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, r := range as.Rhs {
		if ast.Node(r) != rhs {
			continue
		}
		if t := c.pass.TypesInfo.TypeOf(as.Lhs[i]); t != nil && types.IsInterface(t) {
			return true
		}
	}
	return false
}

// boxedByReturn reports whether the returned composite lands in an
// interface-typed result of the enclosing function (literal or declared).
func (c *checker) boxedByReturn(ret *ast.ReturnStmt, res ast.Node) bool {
	idx := -1
	for i, r := range ret.Results {
		if ast.Node(r) == res {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	ftype := c.fn.Type
	for n := c.parents[ast.Node(ret)]; n != nil; n = c.parents[n] {
		if fl, ok := n.(*ast.FuncLit); ok {
			ftype = fl.Type
			break
		}
	}
	if ftype.Results == nil {
		return false
	}
	i := 0
	for _, f := range ftype.Results.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for k := 0; k < n; k++ {
			if i == idx {
				t := c.pass.TypesInfo.TypeOf(f.Type)
				return t != nil && types.IsInterface(t)
			}
			i++
		}
	}
	return false
}

// funcLitEscapes decides whether a func literal's closure is heap
// allocated. Allowed: called directly (func(){...}()), or bound via :=
// to a local variable whose every use is a direct call.
func (c *checker) funcLitEscapes(fl *ast.FuncLit) bool {
	parent := c.parents[ast.Node(fl)]
	if p, ok := parent.(*ast.ParenExpr); ok {
		parent = c.parents[ast.Node(p)]
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		// Direct invocation keeps the frame on the stack; as an argument
		// it escapes into the callee.
		return ast.Unparen(p.Fun) != ast.Expr(fl)
	case *ast.AssignStmt:
		if p.Tok != token.DEFINE || len(p.Lhs) != len(p.Rhs) {
			return true
		}
		for i, r := range p.Rhs {
			if ast.Unparen(r) != ast.Expr(fl) {
				continue
			}
			id, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				return true
			}
			return !c.onlyCalled(obj)
		}
		return true
	default:
		return true
	}
}

// onlyCalled reports whether every use of obj in the function body is as
// the function operand of a direct call.
func (c *checker) onlyCalled(obj types.Object) bool {
	ok := true
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || c.pass.TypesInfo.Uses[id] != obj {
			return true
		}
		call, isCall := c.parents[ast.Node(id)].(*ast.CallExpr)
		if !isCall || ast.Unparen(call.Fun) != ast.Expr(id) {
			ok = false
		}
		return true
	})
	return ok
}
