// Package keylint statically enforces the memo-key contract: every
// exported field of a struct marked //ce:keyed must either be referenced
// inside the struct's Key() method (transitively through other methods of
// the same type) or carry a //ce:timing-neutral annotation. A Config
// field that is neither would silently let two behaviorally different
// machines share a fingerprint, and the run cache would then serve the
// wrong Stats — the exact failure mode pipeline.Config.Key's hand-written
// mutation tests can only spot-check.
//
// Coverage is per-path: referencing c.DCache covers the whole DCache
// struct, while referencing only s.FIFO.Depth covers FIFO.Depth and
// leaves the sibling fields of FIFO to be individually referenced or
// annotated (so a label field buried one level down, like
// FIFOBankConfig.Name, still needs an explicit exemption).
package keylint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// Analyzer is the keylint pass.
var Analyzer = &analysis.Analyzer{
	Name: "keylint",
	Doc:  "verifies Key() of //ce:keyed structs covers every exported field",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	k := &checker{pass: pass, fieldDocs: make(map[types.Object]*ast.Field)}
	k.indexFields()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if directive.InGroup(ts.Doc, directive.Keyed) ||
					(len(gd.Specs) == 1 && directive.InGroup(gd.Doc, directive.Keyed)) {
					k.checkKeyed(ts)
				}
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	// fieldDocs maps a field object to its declaration, so annotations on
	// fields of any struct in this package can be found.
	fieldDocs map[types.Object]*ast.Field
}

// indexFields records every struct field declaration in the package.
func (k *checker) indexFields() {
	for _, f := range k.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if obj := k.pass.TypesInfo.Defs[name]; obj != nil {
						k.fieldDocs[obj] = field
					}
				}
				if len(field.Names) == 0 {
					// Embedded field: key by the type's object if resolvable.
					if id := embeddedIdent(field.Type); id != nil {
						if obj := k.pass.TypesInfo.Defs[id]; obj != nil {
							k.fieldDocs[obj] = field
						}
					}
				}
			}
			return true
		})
	}
}

func embeddedIdent(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.StarExpr:
		return embeddedIdent(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// neutral reports whether the field declaration carries
// //ce:timing-neutral (doc comment or trailing line comment).
func (k *checker) neutral(field *ast.Field) bool {
	return field != nil &&
		(directive.InGroup(field.Doc, directive.TimingNeutral) ||
			directive.InGroup(field.Comment, directive.TimingNeutral))
}

// checkKeyed verifies one //ce:keyed struct.
func (k *checker) checkKeyed(ts *ast.TypeSpec) {
	obj := k.pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		k.pass.Reportf(ts.Pos(), "//ce:keyed on non-named type %s", ts.Name.Name)
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		k.pass.Reportf(ts.Pos(), "//ce:keyed type %s is not a struct", ts.Name.Name)
		return
	}
	keyFn := k.methodDecl(named, "Key")
	if keyFn == nil {
		k.pass.Report(analysis.Diagnostic{
			Pos:      ts.Pos(),
			Category: "no-key",
			Message:  fmt.Sprintf("//ce:keyed type %s has no Key() method in this package", ts.Name.Name),
		})
		return
	}
	cov := newCoverage()
	k.collect(named, keyFn, nil, cov, make(map[*ast.FuncDecl]bool))
	k.checkStruct(ts.Name.Name, named, st, nil, cov, nil)
}

// coverage is the set of receiver-rooted selector paths referenced inside
// Key (and the same-type methods it calls). A path is joined with '.'.
// whole marks paths referenced in full (the entire value observed).
type coverage struct {
	whole map[string]bool // "DCache" — whole value referenced
	paths map[string]bool // every recorded path, including prefixes
}

func newCoverage() *coverage {
	return &coverage{whole: make(map[string]bool), paths: make(map[string]bool)}
}

func (c *coverage) add(path []string, whole bool) {
	joined := strings.Join(path, ".")
	c.paths[joined] = true
	if whole {
		c.whole[joined] = true
	}
	for i := 1; i < len(path); i++ {
		c.paths[strings.Join(path[:i], ".")] = true
	}
}

// hasPrefix reports whether any recorded path extends the given prefix.
func (c *coverage) hasPrefix(path []string) bool {
	return c.paths[strings.Join(path, ".")]
}

// methodDecl finds the FuncDecl of the named method on the given type in
// this package (value or pointer receiver).
func (k *checker) methodDecl(named *types.Named, name string) *ast.FuncDecl {
	for _, f := range k.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if k.recvNamed(fd) == named.Obj() {
				return fd
			}
		}
	}
	return nil
}

// recvNamed resolves a method declaration's receiver to its type object.
func (k *checker) recvNamed(fd *ast.FuncDecl) types.Object {
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			obj := k.pass.TypesInfo.Uses[tt]
			return obj
		default:
			return nil
		}
	}
}

// collect walks one method body recording receiver-rooted field paths.
// It recurses into calls of other methods of the same type.
func (k *checker) collect(named *types.Named, fd *ast.FuncDecl, _ []string, cov *coverage, visited map[*ast.FuncDecl]bool) {
	if visited[fd] {
		return
	}
	visited[fd] = true
	if len(fd.Recv.List[0].Names) == 0 {
		return // receiver unnamed: body cannot reference fields
	}
	recvObj := k.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil {
		return
	}
	info := k.pass.TypesInfo

	// pathOf resolves an expression to a receiver-rooted field path.
	var pathOf func(e ast.Expr) ([]string, bool)
	pathOf = func(e ast.Expr) ([]string, bool) {
		switch e := e.(type) {
		case *ast.Ident:
			if info.Uses[e] == recvObj {
				return []string{}, true
			}
		case *ast.SelectorExpr:
			if base, ok := pathOf(e.X); ok {
				// Field or method selection on the receiver chain.
				return append(base, e.Sel.Name), true
			}
		case *ast.ParenExpr:
			return pathOf(e.X)
		case *ast.StarExpr:
			return pathOf(e.X)
		}
		return nil, false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// c.helper() — recurse into same-type methods; their bodies
			// contribute coverage too (predictorKey reads c.Predictor).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if base, ok := pathOf(sel.X); ok && len(base) == 0 {
					if callee := k.methodDecl(named, sel.Sel.Name); callee != nil {
						k.collect(named, callee, nil, cov, visited)
						return true // arguments still scanned below via children
					}
				}
			}
		case *ast.SelectorExpr:
			if path, ok := pathOf(n); ok && len(path) > 0 {
				// Selection could be a method value (c.Key in tests) — only
				// record field selections.
				if sel, isField := info.Selections[n]; !isField || sel.Kind() == types.FieldVal {
					cov.add(path, true)
				}
				return false // the inner chain is already recorded
			}
		case *ast.Ident:
			if info.Uses[n] == recvObj {
				// Bare receiver use (passed whole somewhere): everything is
				// observable.
				cov.add([]string{}, true)
				cov.whole[""] = true
			}
		}
		return true
	})
}

// checkStruct verifies each exported field at path prefix is covered.
// anchor is the nearest enclosing field declaration in the analyzed
// package, used to position findings about foreign-package subfields
// (the fix — referencing or restructuring — belongs at that field).
func (k *checker) checkStruct(typeName string, named *types.Named, st *types.Struct, prefix []string, cov *coverage, anchor *ast.Field) {
	if cov.whole[""] {
		return // receiver escaped whole; every field observable
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		path := append(append([]string{}, prefix...), f.Name())
		joined := strings.Join(path, ".")
		field := k.fieldDocs[f]
		switch {
		case cov.whole[joined]:
			// Referenced in full.
		case k.neutral(field):
			// Annotated //ce:timing-neutral.
		case cov.hasPrefix(path):
			// Partially referenced: recurse into struct fields so
			// unreferenced siblings are still caught.
			if sub, ok := structUnder(f.Type()); ok {
				next := anchor
				if field != nil {
					next = field
				}
				k.checkStruct(typeName, named, sub, path, cov, next)
			}
		default:
			k.reportField(typeName, f, field, anchor, joined)
		}
	}
}

// structUnder unwraps pointers and names to a struct type.
func structUnder(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

func (k *checker) reportField(typeName string, f *types.Var, field, anchor *ast.Field, path string) {
	pos := f.Pos()
	if field == nil && anchor != nil {
		// Foreign-package subfield: anchor the finding at the in-package
		// field that carries the foreign type.
		pos = anchor.Pos()
	}
	d := analysis.Diagnostic{
		Pos:      pos,
		Category: "unkeyed-field",
		Message: fmt.Sprintf(
			"%s.%s is exported but neither referenced in %s.Key() nor marked //ce:timing-neutral — a run-cache key collision waiting to happen",
			typeName, path, typeName),
	}
	// Cheap suggested fix: annotate the field (the alternative — wiring it
	// into Key — needs a human to decide the encoding).
	if field != nil && f.Pkg() == k.pass.Pkg {
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message: "mark the field timing-neutral",
			TextEdits: []analysis.TextEdit{{
				Pos:     field.End(),
				End:     field.End(),
				NewText: []byte(" //ce:timing-neutral"),
			}},
		}}
	}
	k.pass.Report(d)
}
