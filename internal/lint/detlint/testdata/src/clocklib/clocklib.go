// Package clocklib is an unmarked library whose internals read the host
// clock; detlint computes nondeterminism facts for its exported functions
// so //ce:deterministic callers see through the calls.
package clocklib

import "time"

// Stamp reads the host clock directly.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Elapsed reaches the clock one hop down, through Stamp.
func Elapsed() int64 {
	return Stamp() + 1
}

// Silenced reads the clock under a hatch: the author asserted the read
// does not affect observable behavior, so no fact is exported.
func Silenced() int64 {
	return time.Now().UnixNano() //ce:nondet-ok telemetry counter, never compared
}

// Seam is a //ce:det-boundary abstraction seam: its internals are
// nondeterministic but asserted not to leak; callers are never flagged.
//
//ce:det-boundary wall-time logging that cannot reach simulated state
func Seam() int64 {
	return time.Now().UnixNano()
}

// Pure is deterministic.
func Pure(x int64) int64 { return x * 2 }
