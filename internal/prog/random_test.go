package prog

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/emu"
)

func TestRandomDeterministic(t *testing.T) {
	a := RandomSource(RandomConfig{Seed: 7})
	b := RandomSource(RandomConfig{Seed: 7})
	if a != b {
		t.Error("same seed generated different programs")
	}
	if c := RandomSource(RandomConfig{Seed: 8}); c == a {
		t.Error("different seeds generated identical programs")
	}
}

func TestRandomProgramsTerminate(t *testing.T) {
	// Termination is by construction (counted loops, forward branches);
	// a generous instruction cap turns a construction bug into a failure
	// rather than a hang.
	for seed := int64(0); seed < 25; seed++ {
		p, err := Random(RandomConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out, err := emu.Run(p, 5_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, RandomSource(RandomConfig{Seed: seed}))
		}
		if len(out) < len(pool) {
			t.Errorf("seed %d: %d output values, want at least %d (final register dump)", seed, len(out), len(pool))
		}
	}
}

func TestRandomMixTunable(t *testing.T) {
	// Memory operations disabled: the generated source must contain none.
	src := RandomSource(RandomConfig{Seed: 3, ALU: 1, Branch: 1})
	body := src[strings.Index(src, ".text"):]
	// The final state dump legitimately reloads the scratch array, so
	// only the body before the first "out" matters.
	body = body[:strings.Index(body, "out")]
	for _, op := range []string{"lw ", "lb", "sw ", "sb "} {
		if strings.Contains(body, op) {
			t.Errorf("mix with Load=Store=0 emitted %q", op)
		}
	}

	d := (RandomConfig{}).withDefaults()
	if d.ALU == 0 || d.Load == 0 || d.Store == 0 || d.Branch == 0 {
		t.Errorf("zero config did not default the full mix: %+v", d)
	}
}

func TestRandomFootprintTunable(t *testing.T) {
	small := RandomConfig{Seed: 5, MemWords: 8}.withDefaults()
	src := RandomSource(RandomConfig{Seed: 5, MemWords: 8})
	if small.MemWords != 8 {
		t.Fatalf("MemWords defaulted to %d", small.MemWords)
	}
	// Every load/store offset must stay inside the 32-byte footprint.
	for _, line := range strings.Split(src, "\n") {
		f := strings.Fields(line)
		if len(f) != 3 {
			continue
		}
		switch f[0] {
		case "lw", "lb", "lbu", "sw", "sb":
			var off int
			if _, err := fmt.Sscanf(f[2], "%d(", &off); err != nil {
				continue
			}
			if off < 0 || off >= 32 {
				t.Errorf("offset %d outside 8-word footprint: %s", off, line)
			}
		}
	}
}
