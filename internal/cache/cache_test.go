package cache

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBaselineGeometry(t *testing.T) {
	cfg := Baseline()
	if cfg.SizeBytes != 32<<10 || cfg.Ways != 2 || cfg.LineBytes != 32 {
		t.Errorf("baseline geometry = %+v, want 32KB/2-way/32B", cfg)
	}
	if cfg.HitCycles != 1 || cfg.MissCycles != 6 {
		t.Errorf("baseline latencies = %+v, want 1/6", cfg)
	}
	mustNew(t, cfg)
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, Baseline())
	lat, hit := c.Access(0x1000, false)
	if hit || lat != 6 {
		t.Errorf("cold access: hit=%v lat=%d, want miss/6", hit, lat)
	}
	lat, hit = c.Access(0x1000, false)
	if !hit || lat != 1 {
		t.Errorf("second access: hit=%v lat=%d, want hit/1", hit, lat)
	}
	// Same line, different word: still a hit.
	if _, hit = c.Access(0x101C, false); !hit {
		t.Error("same-line access missed")
	}
	// Next line: miss.
	if _, hit = c.Access(0x1020, false); hit {
		t.Error("next-line access hit unexpectedly")
	}
}

func TestLRUReplacement(t *testing.T) {
	// Direct construct a tiny cache: 2 sets × 2 ways × 16B lines = 64B.
	c := mustNew(t, Config{SizeBytes: 64, Ways: 2, LineBytes: 16, HitCycles: 1, MissCycles: 6})
	// Three lines mapping to set 0 (stride 32 = 2 lines × 16B).
	a, b2, d := uint32(0), uint32(32), uint32(64)
	c.Access(a, false)  // miss, insert a
	c.Access(b2, false) // miss, insert b
	c.Access(a, false)  // hit, a now MRU
	c.Access(d, false)  // miss, evicts b (LRU)
	if _, hit := c.Access(a, false); !hit {
		t.Error("a was evicted but should be MRU-protected")
	}
	if _, hit := c.Access(b2, false); hit {
		t.Error("b survived but was LRU")
	}
}

func TestWritebackAccounting(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 32, Ways: 1, LineBytes: 16, HitCycles: 1, MissCycles: 6})
	c.Access(0, true)   // miss, dirty
	c.Access(32, false) // conflict: evicts dirty line 0 → writeback
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
	c.Access(64, false) // evicts clean line 32: no writeback
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d after clean eviction, want 1", wb)
	}
}

func TestStats(t *testing.T) {
	c := mustNew(t, Baseline())
	for i := 0; i < 10; i++ {
		c.Access(uint32(i), false) // same line after the first
	}
	s := c.Stats()
	if s.Accesses != 10 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 10 accesses / 1 miss", s)
	}
	if r := s.MissRate(); r != 0.1 {
		t.Errorf("miss rate = %g, want 0.1", r)
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty miss rate should be 0")
	}
}

func TestBadGeometry(t *testing.T) {
	bad := []Config{
		{},
		{SizeBytes: 16, Ways: 2, LineBytes: 16, HitCycles: 1, MissCycles: 6}, // zero sets
		{SizeBytes: 1024, Ways: 1, LineBytes: 24, HitCycles: 1, MissCycles: 6},
		{SizeBytes: -1, Ways: 1, LineBytes: 32},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
}

func TestPropertyRepeatAccessAlwaysHits(t *testing.T) {
	c := mustNew(t, Baseline())
	f := func(addr uint32) bool {
		c.Access(addr, false)
		_, hit := c.Access(addr, false)
		return hit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMissesNeverExceedAccesses(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 256, Ways: 2, LineBytes: 16, HitCycles: 1, MissCycles: 6})
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(a, a%3 == 0)
		}
		s := c.Stats()
		return s.Misses <= s.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
