package prog

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
)

// maxInsts bounds workload execution in tests; every workload must finish
// well inside it.
const maxInsts = 20_000_000

func TestWorkloadsMatchReferences(t *testing.T) {
	for _, w := range AllExtended() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program()
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			m := emu.New(p)
			for !m.Halted() {
				if m.Executed >= maxInsts {
					t.Fatalf("exceeded %d instructions", int64(maxInsts))
				}
				if _, err := m.Step(); err != nil {
					t.Fatalf("step (after %d insts): %v", m.Executed, err)
				}
			}
			want := w.Reference()
			if len(m.Output) != len(want) {
				t.Fatalf("output %v, want %v", m.Output, want)
			}
			for i := range want {
				if m.Output[i] != want[i] {
					t.Errorf("output[%d] = %d, want %d (full: %v vs %v)", i, m.Output[i], want[i], m.Output, want)
				}
			}
			t.Logf("%s: %d dynamic instructions, output %v", w.Name, m.Executed, m.Output)
		})
	}
}

func TestWorkloadDynamicLengths(t *testing.T) {
	// Workloads must be long enough for the IPC measurements to be stable
	// yet short enough for the full sweep to run quickly.
	for _, w := range AllExtended() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program()
			if err != nil {
				t.Fatal(err)
			}
			m := emu.New(p)
			for !m.Halted() && m.Executed < maxInsts {
				if _, err := m.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if m.Executed < 100_000 {
				t.Errorf("only %d dynamic instructions; want ≥100k", m.Executed)
			}
			// compress.big exists precisely to be long: it is the
			// segment-parallel benchmark workload, excluded from sweeps.
			if w.Name == "compress.big" {
				if m.Executed < 3_000_000 {
					t.Errorf("%d dynamic instructions; want ≥3M for segment benchmarking", m.Executed)
				}
			} else if m.Executed > 3_000_000 {
				t.Errorf("%d dynamic instructions; want ≤3M for sweep speed", m.Executed)
			}
		})
	}
}

// TestCompressHugeScaled differentials the compress.huge kernel against
// its Go reference at a reduced symbol count. compress.huge itself is
// Huge (~10^8 instructions) and never runs in the unit suite, so this
// scaled instance — long enough to cross at least one regime boundary
// (block lengths top out at 191071 symbols) — is what validates the
// assembly against the reference.
func TestCompressHugeScaled(t *testing.T) {
	const n = 200_000
	p, err := asm.Assemble("compress.huge.s", fmt.Sprintf(compressHugeSrc, n))
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := emu.New(p)
	for !m.Halted() {
		if m.Executed >= maxInsts {
			t.Fatalf("exceeded %d instructions", int64(maxInsts))
		}
		if _, err := m.Step(); err != nil {
			t.Fatalf("step (after %d insts): %v", m.Executed, err)
		}
	}
	want := compressHugeRefN(n)
	if len(m.Output) != len(want) {
		t.Fatalf("output %v, want %v", m.Output, want)
	}
	for i := range want {
		if m.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d (full: %v vs %v)", i, m.Output[i], want[i], m.Output, want)
		}
	}
	t.Logf("compress.huge/%d: %d dynamic instructions, output %v", n, m.Executed, m.Output)
}

// TestCompressHugeFull runs the real compress.huge workload end to end
// and checks both the reference match and the target dynamic length
// (>=100M so streaming matters, <200M so capture budgets hold). It
// takes minutes of emulation, so it only runs when CE_HUGE_TEST=1.
func TestCompressHugeFull(t *testing.T) {
	if os.Getenv("CE_HUGE_TEST") != "1" {
		t.Skip("set CE_HUGE_TEST=1 to run the ~10^8-instruction differential")
	}
	w, err := ByName("compress.huge")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	for !m.Halted() {
		if m.Executed >= 200_000_000 {
			t.Fatalf("exceeded 200M instructions")
		}
		if _, err := m.Step(); err != nil {
			t.Fatalf("step (after %d insts): %v", m.Executed, err)
		}
	}
	want := w.Reference()
	if len(m.Output) != len(want) {
		t.Fatalf("output %v, want %v", m.Output, want)
	}
	for i := range want {
		if m.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, m.Output[i], want[i])
		}
	}
	if m.Executed < 100_000_000 {
		t.Errorf("only %d dynamic instructions; want >=100M for streaming scale", m.Executed)
	}
	t.Logf("compress.huge: %d dynamic instructions, output %v", m.Executed, m.Output)
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("paper workload set = %v, want the seven benchmarks", names)
	}
	for _, n := range names {
		if n == "ijpeg" {
			t.Error("extension workload leaked into the paper set")
		}
	}
	ext := ExtendedNames()
	if len(ext) != len(names)+7 {
		t.Errorf("extended set = %v, want paper set plus ijpeg, compress.big and five microbenchmarks", ext)
	}
	found := false
	for _, n := range ext {
		if n == "ijpeg" {
			found = true
		}
	}
	if !found {
		t.Error("ijpeg missing from extended set")
	}
	for _, n := range names {
		w, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name != n {
			t.Errorf("ByName(%q).Name = %q", n, w.Name)
		}
		if w.Description == "" {
			t.Errorf("%s: empty description", n)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName(nonesuch) succeeded")
	}
	// Program() caching returns the same pointer.
	w := All()[0]
	p1, _ := w.Program()
	p2, _ := w.Program()
	if p1 != p2 {
		t.Error("Program() not cached")
	}
}
