package trace

import (
	"errors"
	"fmt"

	"repro/internal/emu"
	"repro/internal/errclass"
	"repro/internal/isa"
)

// errCorrupt is preallocated so the hot Step path never constructs an
// error value. A corrupt trace is a programming or storage fault, not a
// per-record condition, so one shared sentinel is enough. It wraps
// errclass.ErrCorrupt so replay-time truncation is classified like
// every other failed-validation artifact: delete, recapture, never
// memoize.
var errCorrupt = fmt.Errorf("trace: packed stream truncated (trace does not match its step count): %w", errclass.ErrCorrupt)

// errReleased guards use-after-release: a Reader whose chunk buffer was
// returned to the pool must not decode from it again.
var errReleased = errors.New("trace: reader used after Release")

// Reader replays a captured trace as a stream of emu.Records, mirroring
// exactly what emu.Machine.Step would have returned for the same
// program. It performs no architectural work — no register file, no
// memory image — which is the entire point: the timing simulator only
// consumes the Record stream, so replay provides it at a fraction of the
// cost of re-execution.
//
// A Reader is a cheap cursor over the shared immutable Trace; create one
// per simulation and share the Trace across any number of goroutines.
// The reader holds exactly one chunk at a time: for file-backed traces
// that is one pooled buffer per reader (refilled from disk as the
// cursor crosses chunk ends), so K parallel segment workers keep O(K)
// chunks resident however large the trace is. Call Release when done
// with a reader that may not have replayed to its trace's end, so its
// buffer returns to the pool (a reader that halts releases itself).
type Reader struct {
	t     *Trace
	text  []isa.Inst
	chunk []byte // current chunk's packed bytes
	pos   int    // cursor within chunk
	ci    int    // current chunk index
	limit uint64 // step at which the current chunk's records end

	pc     uint32
	step   uint64
	halted bool
	err    error

	buf *[]byte // pooled backing for file-backed loads (nil otherwise)
}

// NewReader returns a fresh cursor positioned at the start of t.
func NewReader(t *Trace) *Reader {
	r, err := NewReaderAt(t, t.startBoundary())
	if err != nil {
		// The start boundary is always valid; only a chunk-load failure
		// (corrupt file) can land here. Surface it on the first Step.
		r = &Reader{t: t, text: t.prog.Text, pc: t.entryPC, err: err}
	}
	return r
}

// Program returns the traced program.
func (r *Reader) Program() *isa.Program { return r.t.Program() }

// PC returns the index of the next instruction to replay.
func (r *Reader) PC() uint32 { return r.pc }

// Halted reports whether the trace has been fully replayed.
func (r *Reader) Halted() bool { return r.halted }

// Output returns the Out values of the captured execution. Unlike
// emu.Machine's incrementally grown Output, the full slice is available
// immediately; consumers read it only after the simulated program
// retires its Halt, at which point the two views coincide.
func (r *Reader) Output() []int32 { return r.t.Output() }

// StateHash returns the final architectural digest of the captured
// execution (valid at any time; meaningful once replay has halted).
func (r *Reader) StateHash() [32]byte { return r.t.StateHash() }

// Release returns the reader's chunk buffer to the pool. It is safe to
// call at any time, including on memory-backed readers (no-op) and more
// than once; after Release the reader refuses further Steps unless it
// had already halted.
func (r *Reader) Release() {
	if r.buf != nil {
		releaseChunkBuf(r.buf)
		r.buf = nil
		r.chunk = nil
		if r.err == nil && !r.halted {
			r.err = errReleased
		}
	}
}

// load positions the reader inside chunk ci at global stream offset
// globalPos, fetching the chunk's bytes through the trace's store.
func (r *Reader) load(ci int, globalPos uint64) error {
	t := r.t
	m := t.chunks[ci]
	if globalPos < m.startPos || globalPos-m.startPos > uint64(m.packedLen) {
		return errCorrupt
	}
	var dst []byte
	if _, fileBacked := t.store.(*fileStore); fileBacked {
		if r.buf == nil {
			r.buf = grabChunkBuf(t.maxChunk)
		}
		dst = (*r.buf)[:cap(*r.buf)]
	}
	data, err := t.store.load(ci, m, dst)
	if err != nil {
		return err
	}
	r.chunk = data
	r.pos = int(globalPos - m.startPos)
	r.ci = ci
	r.limit = uint64(ci+1) * t.chunkRecs
	if r.limit > t.n {
		r.limit = t.n
	}
	return nil
}

// advance moves to the next chunk when the cursor crosses the current
// chunk's last record. Kept out of the //ce:hot Step body; it performs
// no allocation in steady state (the pooled buffer is reused), which
// TestReaderStepAllocFree pins across a chunk crossing.
func (r *Reader) advance() error {
	ci := r.ci + 1
	if ci >= len(r.t.chunks) {
		r.err = errCorrupt
		return errCorrupt
	}
	if err := r.load(ci, r.t.chunks[ci].startPos); err != nil {
		r.err = err
		return err
	}
	return nil
}

// finishHalt marks the trace fully replayed and retires the reader's
// pooled buffer — after the halt record nothing will be decoded again.
func (r *Reader) finishHalt() {
	r.halted = true
	if r.buf != nil {
		releaseChunkBuf(r.buf)
		r.buf = nil
		r.chunk = nil
	}
}

// Step reconstructs the next dynamic record. The per-class decoding must
// mirror Recorder.append, and the Record fields must match what
// emu.Machine.Step produces for the same instruction — both are pinned
// by differential tests. Returns emu.ErrHalted after the final record,
// exactly like the machine it stands in for.
//
//ce:hot
func (r *Reader) Step() (emu.Record, error) {
	if r.halted {
		return emu.Record{}, emu.ErrHalted
	}
	if r.err != nil {
		return emu.Record{}, r.err
	}
	if r.step >= r.t.n || r.pc >= uint32(len(r.text)) {
		// A sealed trace ends in Halt, so running out of records (or
		// walking outside the text) means the stream is corrupt.
		return emu.Record{}, errCorrupt
	}
	if r.step == r.limit {
		if err := r.advance(); err != nil {
			return emu.Record{}, err
		}
	}
	in := r.text[r.pc]
	rec := emu.Record{PC: r.pc, Inst: in, NextPC: r.pc + 1}
	switch isa.ClassOf(in.Op) {
	case isa.ClassLoad, isa.ClassStore:
		if r.pos+4 > len(r.chunk) {
			return emu.Record{}, errCorrupt
		}
		p := r.chunk[r.pos:]
		rec.Addr = uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
		r.pos += 4
	case isa.ClassBranch:
		if r.pos >= len(r.chunk) {
			return emu.Record{}, errCorrupt
		}
		if r.chunk[r.pos] != 0 {
			rec.Taken = true
			rec.NextPC = uint32(in.Imm)
		}
		r.pos++
	case isa.ClassJump:
		rec.Taken = true
		if in.Op == isa.Jr || in.Op == isa.Jalr {
			if r.pos+4 > len(r.chunk) {
				return emu.Record{}, errCorrupt
			}
			p := r.chunk[r.pos:]
			rec.NextPC = uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
			r.pos += 4
		} else {
			rec.NextPC = uint32(in.Imm)
		}
	case isa.ClassSystem:
		if in.Op == isa.Halt {
			rec.NextPC = r.pc
			r.finishHalt()
		}
	}
	r.pc = rec.NextPC
	r.step++
	return rec, nil
}

// StepBatch decodes up to len(dst) records into dst, returning how many
// it produced. It stops early at the trace's end (n < len(dst), nil
// error; the next call returns (0, emu.ErrHalted)) or on a decode error
// (records before the failure are valid and counted). Batch decoding is
// the slab layer's fill path: one call per chunk instead of one virtual
// Step per record.
func (r *Reader) StepBatch(dst []emu.Record) (int, error) {
	if r.halted {
		return 0, emu.ErrHalted
	}
	for i := range dst {
		rec, err := r.Step()
		if err != nil {
			if err == emu.ErrHalted {
				return i, nil
			}
			return i, err
		}
		dst[i] = rec
		if r.halted {
			return i + 1, nil
		}
	}
	return len(dst), nil
}
