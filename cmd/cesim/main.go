// Cesim runs one workload on one machine configuration and prints the run
// statistics — the single-run companion to cesweep.
//
// Usage:
//
//	cesim -config baseline -workload compress
//	cesim -config dependence -workload li -predictor bimodal
//	cesim -list
//
// Host-profiling flags for working on the simulator itself:
//
//	cesim -cpuprofile cpu.pprof -workload compress
//	cesim -memprofile mem.pprof -workload compress
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro"
)

var (
	configName = flag.String("config", "baseline", "machine configuration")
	workload   = flag.String("workload", "compress", "benchmark program")
	predictor  = flag.String("predictor", "", "branch predictor override: gshare, bimodal, taken or perfect")
	timeline   = flag.Int("timeline", 0, "print a pipeline timeline for the first N committed instructions")
	list       = flag.Bool("list", false, "list configurations and workloads")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
)

func main() {
	flag.Parse()
	stop, err := startProfiling(*cpuprofile, *memprofile)
	if err == nil {
		err = run()
		if perr := stop(); err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cesim:", err)
		os.Exit(1)
	}
}

// startProfiling arms the -cpuprofile/-memprofile flags; the returned
// function flushes the profiles after the run (heap profile after a final
// GC, so it shows live retention rather than garbage).
func startProfiling(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func run() error {
	if *list {
		fmt.Println("configurations:")
		for _, n := range ce.ConfigNames() {
			cfg, _ := ce.NamedConfig(n)
			fmt.Printf("  %-18s %s\n", n, cfg.Name)
		}
		fmt.Println("workloads:")
		for _, w := range ce.Workloads() {
			desc, err := ce.WorkloadDescription(w)
			if err != nil {
				return err
			}
			fmt.Printf("  %-10s %s\n", w, desc)
		}
		return nil
	}
	cfg, ok := ce.NamedConfig(*configName)
	if !ok {
		return fmt.Errorf("unknown config %q (try -list)", *configName)
	}
	if *predictor != "" {
		var err error
		cfg, err = ce.WithPredictor(cfg, *predictor)
		if err != nil {
			return err
		}
	}
	var st ce.Stats
	var err error
	if *timeline > 0 {
		var tl []ce.TimelineEntry
		st, tl, err = ce.RunWithTimeline(cfg, *workload)
		if err != nil {
			return err
		}
		printTimeline(tl, *timeline)
	} else {
		st, err = ce.Run(cfg, *workload)
		if err != nil {
			return err
		}
	}
	fmt.Printf("config:                 %s\n", st.Config)
	fmt.Printf("workload:               %s\n", st.Workload)
	fmt.Printf("committed instructions: %d\n", st.Committed)
	fmt.Printf("cycles:                 %d\n", st.Cycles)
	fmt.Printf("IPC:                    %.3f\n", st.IPC())
	fmt.Printf("conditional branches:   %d\n", st.CondBranches)
	fmt.Printf("mispredictions:         %d (%.1f%%)\n", st.Mispredicts, st.MispredictRate()*100)
	fmt.Printf("d-cache accesses:       %d\n", st.Cache.Accesses)
	fmt.Printf("d-cache miss rate:      %.2f%%\n", st.Cache.MissRate()*100)
	fmt.Printf("inter-cluster bypasses: %.1f%% of committed instructions\n", st.InterClusterFrequency()*100)
	fmt.Printf("stalls:                 scheduler %d, physregs %d, rob %d\n",
		st.SchedulerStalls, st.PhysRegStalls, st.ROBStalls)
	if h := st.IssuedPerCycle; h != nil && h.Total() > 0 {
		fmt.Printf("issue distribution:     mean %.2f/cycle, P50 %d, P90 %d, full-width %.1f%%\n",
			h.Mean(), h.Percentile(50), h.Percentile(90),
			float64(h.Count(cfg.IssueWidth))/float64(h.Total())*100)
	}
	return nil
}

// printTimeline renders the first n committed instructions' trips through
// the pipeline: stage cycle numbers plus a bar chart (F fetch, D dispatch,
// I issue, E complete, C commit).
func printTimeline(tl []ce.TimelineEntry, n int) {
	if n > len(tl) {
		n = len(tl)
	}
	if n == 0 {
		return
	}
	base := tl[0].Fetch
	fmt.Printf("%4s %5s  %-26s %5s %5s %5s %5s %5s  %s\n",
		"seq", "pc", "instruction", "F", "D", "I", "E", "C", "pipeline (cycles from start)")
	for _, e := range tl[:n] {
		bar := make([]byte, 0, 64)
		mark := func(cycle int64, ch byte) {
			pos := int(cycle - base)
			if pos < 0 || pos > 58 {
				return
			}
			for len(bar) <= pos {
				bar = append(bar, '.')
			}
			bar[pos] = ch
		}
		mark(e.Fetch, 'F')
		mark(e.Dispatch, 'D')
		mark(e.Issue, 'I')
		mark(e.Complete, 'E')
		mark(e.Commit, 'C')
		fmt.Printf("%4d %5d  %-26s %5d %5d %5d %5d %5d  %s\n",
			e.Seq, e.PC, e.Inst, e.Fetch, e.Dispatch, e.Issue, e.Complete, e.Commit, bar)
	}
}
