package pipeline

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
)

// ExecSource supplies the dynamic instruction stream that drives fetch.
// The simulator is trace-driven either way; what varies is where the
// trace comes from:
//
//   - lockstep execution (New): a functional emu.Machine resolves each
//     instruction as fetch consumes it — required for wrong-path
//     execution, which steps the machine down mispredicted paths and
//     rolls it back;
//   - replay (NewReplay): a pre-captured trace.Reader streams the same
//     records without re-executing, so a sweep runs each program once
//     and times it under every configuration.
//
// The contract is exact equivalence: for the same program, Step must
// yield the identical emu.Record sequence, errors included, and
// Output/StateHash the identical final architectural results. The
// differential harness in internal/verify pins this.
type ExecSource interface {
	// Step produces the next dynamic instruction record, or emu.ErrHalted
	// after the final one.
	Step() (emu.Record, error)
	// PC is the index of the next instruction Step would produce
	// (instruction-cache probes fetch by PC before consuming).
	PC() uint32
	// Halted reports whether the stream is exhausted.
	Halted() bool
	// Program returns the program being streamed.
	Program() *isa.Program
	// Output returns the program's Out values (complete once Halted).
	Output() []int32
	// StateHash returns the final architectural digest (valid once Halted).
	StateHash() [32]byte
}

// machineSource adapts the lockstep functional emulator to ExecSource.
type machineSource struct{ m *emu.Machine }

func (ms machineSource) Step() (emu.Record, error) { return ms.m.Step() }
func (ms machineSource) PC() uint32                { return ms.m.PC() }
func (ms machineSource) Halted() bool              { return ms.m.Halted() }
func (ms machineSource) Program() *isa.Program     { return ms.m.Program() }
func (ms machineSource) Output() []int32           { return ms.m.Output }
func (ms machineSource) StateHash() [32]byte       { return ms.m.StateHash() }

// NewReplay builds a simulator driven by a replay source instead of
// lockstep execution. Wrong-path execution is refused: it must execute
// down mispredicted paths, which only a concrete machine can do — a
// trace has exactly the architectural path.
func NewReplay(cfg Config, src ExecSource) (*Simulator, error) {
	if cfg.WrongPathExecution {
		return nil, fmt.Errorf("pipeline: %s: wrong-path execution cannot run from a replay source (it executes mispredicted paths; use New)", cfg.Name)
	}
	return newSimulator(cfg, src, nil)
}
