package ce

// Segment-parallel simulation: shard one workload's trace into K
// segments at the boundaries captured during its single functional
// execution, time each segment independently (fanning out across CPUs),
// and stitch the per-segment Stats back into one whole-run result.
//
// Two regimes, chosen by the engine's segment plan:
//
//   - Exact (warmup < 0, sample 1): each segment replays its full
//     prefix as warmup, so the stitched result is bit-identical to the
//     monolithic run (the telescoping argument in internal/pipeline's
//     segment.go) and shares the monolithic run-cache key. Total work
//     is O(K·N), so this mode trades CPU for latency: wall clock drops
//     only when idle cores absorb the redundant prefixes.
//
//   - Sampled (finite warmup and/or sample > 1): each measured segment
//     warms caches and predictors over a bounded prefix, and only every
//     sample-th segment is simulated. Total work drops to roughly
//     (warmup + N/K) · K/sample records, which is where the real
//     speedup lives; the result is an estimate and carries a
//     per-segment-IPC confidence interval. Approximate results are
//     cached under a key suffixed with the plan so they can never
//     shadow (or be shadowed by) an exact run.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SegmentMetrics describes how a segmented run was conducted and, for
// sampled runs, how tight the estimate is.
type SegmentMetrics struct {
	// Segments is how many segments the trace was cut into; Simulated is
	// how many were actually timed (== Segments unless sampling).
	Segments  int `json:"segments"`
	Simulated int `json:"simulated"`
	// Warmup is the per-segment warmup prefix in committed instructions
	// (-1 = full prefix, the exact mode).
	Warmup int64 `json:"warmup"`
	// Sample is the sampling stride: every Sample-th segment is timed.
	Sample int `json:"sample"`
	// Exact reports whether the stitched result is bit-identical to the
	// monolithic run (full warmup, no sampling).
	Exact bool `json:"exact"`
	// IPCMean and IPCHalfCI95 summarize the per-segment IPC population:
	// the mean and the half-width of its 95% confidence interval.
	IPCMean     float64 `json:"ipc_mean"`
	IPCHalfCI95 float64 `json:"ipc_half_ci95"`
	// EstimatedCycles extrapolates the whole-run cycle count from the
	// sampled segments (equals the stitched cycles when Sample is 1).
	EstimatedCycles int64 `json:"estimated_cycles"`
}

// SetSegments selects segment-parallel simulation for this engine's
// replay-driven runs: each workload's trace is cut into (up to) k
// segments timed independently. k <= 1 restores monolithic simulation.
func (e *Engine) SetSegments(k int) {
	e.traceMu.Lock()
	e.segments = k
	e.traceMu.Unlock()
}

// SetSegmentWarmup sets the per-segment warmup prefix, in committed
// instructions, whose cycles are discarded before a segment's
// measurement window opens. Negative means the full prefix (exact
// stitching, the default); 0 means cold-start at the boundary.
func (e *Engine) SetSegmentWarmup(warmup int64) {
	e.traceMu.Lock()
	e.segWarmup = warmup
	e.traceMu.Unlock()
}

// SetSegmentSample sets the sampling stride: every sample-th segment is
// simulated and the rest extrapolated. sample <= 1 simulates every
// segment.
func (e *Engine) SetSegmentSample(sample int) {
	e.traceMu.Lock()
	e.segSample = sample
	e.traceMu.Unlock()
}

// segmentPlan snapshots the engine's segment configuration.
func (e *Engine) segmentPlan() (k int, warmup int64, sample int) {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	k, warmup, sample = e.segments, e.segWarmup, e.segSample
	if sample < 1 {
		sample = 1
	}
	return k, warmup, sample
}

// segKeySuffix returns the run-cache key suffix for the engine's
// current segment plan under cfg. Exact segmentation ("" as well as no
// segmentation at all) shares the monolithic key — the results are
// bit-identical, so a cache hit either way is correct. Approximate
// plans get a distinct suffix so an estimate can never masquerade as an
// exact result. Wrong-path configurations cannot replay and therefore
// always run monolithic, whatever the plan says.
func (e *Engine) segKeySuffix(cfg Config) string {
	e.traceMu.Lock()
	k, warmup, sample, noReplay := e.segments, e.segWarmup, e.segSample, e.noReplay
	e.traceMu.Unlock()
	if sample < 1 {
		sample = 1
	}
	if k <= 1 || noReplay || cfg.WrongPathExecution {
		return ""
	}
	if warmup < 0 && sample == 1 {
		return "" // exact: same bits as the monolithic run
	}
	return fmt.Sprintf("\x00segments=%d warmup=%d sample=%d", k, warmup, sample)
}

// runSegments fans the given segment indices out across CPUs, running
// pipeline.RunSegment for each, and returns the per-segment Stats in
// index order. The fan-out lives here — not in internal/pipeline, which
// is //ce:deterministic and goroutine-free — so each worker runs a
// fully independent Simulator over the shared read-only trace.
func runSegments(cfg Config, tr *trace.Trace, segs []trace.Segment, pick []int, warmup int64) ([]Stats, error) {
	parts := make([]Stats, len(pick))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		firstIdx int
	)
	idx := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pick) {
		workers = len(pick)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				st, err := pipeline.RunSegment(cfg, tr, segs[pick[i]], warmup, maxCycles)
				if err != nil {
					errMu.Lock()
					if firstErr == nil || i < firstIdx {
						firstErr, firstIdx = err, i
					}
					errMu.Unlock()
					continue
				}
				parts[i] = st
			}
		}()
	}
	for i := range pick {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return parts, nil
}

// runSegmented performs one segment-parallel simulation of (cfg, tr)
// under the given plan and returns the stitched Stats plus the segment
// metrics recorded into the run's attribution.
func (e *Engine) runSegmented(cfg Config, tr *trace.Trace, k int, warmup int64, sample int, attr *simAttribution) (Stats, error) {
	segs := tr.Segments(k)
	pick := make([]int, 0, (len(segs)+sample-1)/sample)
	for i := 0; i < len(segs); i += sample {
		pick = append(pick, i)
	}
	parts, err := runSegments(cfg, tr, segs, pick, warmup)
	if err != nil {
		return Stats{}, err
	}
	st, err := pipeline.StitchStats(parts)
	if err != nil {
		return Stats{}, err
	}
	ipcs := make([]float64, len(parts))
	for i, p := range parts {
		ipcs[i] = p.IPC()
	}
	mean, half := stats.MeanCI95(ipcs)
	exact := warmup < 0 && sample == 1
	sm := &SegmentMetrics{
		Segments:        len(segs),
		Simulated:       len(parts),
		Warmup:          warmup,
		Sample:          sample,
		Exact:           exact,
		IPCMean:         mean,
		IPCHalfCI95:     half,
		EstimatedCycles: st.Cycles,
	}
	if sample > 1 && mean > 0 {
		// Extrapolate: the whole trace at the sampled segments' mean IPC.
		sm.EstimatedCycles = int64(float64(tr.Steps()) / mean)
	}
	attr.segments = sm
	e.traceMu.Lock()
	e.tstats.ReplayRuns++
	e.tstats.SegmentRuns++
	e.tstats.SegmentsSimulated += len(parts)
	e.tstats.StepsReplayed += st.EmuSteps
	e.traceMu.Unlock()
	return st, nil
}

// SegmentBenchResult quantifies what segment-parallel simulation buys
// on one (config, workload) pair: the monolithic baseline against the
// sampled segmented run, with the estimate's error and the wall-clock
// speedup.
type SegmentBenchResult struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Segments int    `json:"segments"`
	Sample   int    `json:"sample"`
	Warmup   int64  `json:"warmup"`
	Steps    uint64 `json:"steps"`

	MonoWallSeconds float64 `json:"mono_wall_seconds"`
	MonoCycles      int64   `json:"mono_cycles"`
	MonoIPC         float64 `json:"mono_ipc"`

	SampledWallSeconds float64 `json:"sampled_wall_seconds"`
	SampledIPC         float64 `json:"sampled_ipc"`
	IPCHalfCI95        float64 `json:"ipc_half_ci95"`
	// IPCErrorPct is the sampled IPC's signed error against the
	// monolithic truth, in percent.
	IPCErrorPct float64 `json:"ipc_error_pct"`
	// Speedup is MonoWallSeconds / SampledWallSeconds.
	Speedup float64 `json:"speedup"`
}

// SegmentBench measures segment-parallel sampled simulation against the
// monolithic baseline on one workload under the baseline configuration.
// The trace is captured (or loaded) up front so neither side is charged
// for it.
func SegmentBench(workload string, segments, sample int, warmup int64) (*SegmentBenchResult, error) {
	eng := NewEngine()
	tr, err := eng.traceFor(workload)
	if err != nil {
		return nil, err
	}
	cfg := BaselineConfig()

	start := time.Now()
	sim, err := pipeline.NewReplay(cfg, trace.NewReader(tr))
	if err != nil {
		return nil, err
	}
	mono, err := sim.Run(maxCycles)
	if err != nil {
		return nil, err
	}
	monoWall := time.Since(start).Seconds()

	segs := tr.Segments(segments)
	pick := make([]int, 0, len(segs))
	for i := 0; i < len(segs); i += max(sample, 1) {
		pick = append(pick, i)
	}
	start = time.Now()
	parts, err := runSegments(cfg, tr, segs, pick, warmup)
	if err != nil {
		return nil, err
	}
	sampledWall := time.Since(start).Seconds()
	ipcs := make([]float64, len(parts))
	for i, p := range parts {
		ipcs[i] = p.IPC()
	}
	mean, half := stats.MeanCI95(ipcs)

	res := &SegmentBenchResult{
		Workload: workload,
		Config:   cfg.Name,
		Segments: len(segs),
		Sample:   sample,
		Warmup:   warmup,
		Steps:    tr.Steps(),

		MonoWallSeconds: monoWall,
		MonoCycles:      mono.Cycles,
		MonoIPC:         mono.IPC(),

		SampledWallSeconds: sampledWall,
		SampledIPC:         mean,
		IPCHalfCI95:        half,
	}
	if res.MonoIPC > 0 {
		res.IPCErrorPct = (mean - res.MonoIPC) / res.MonoIPC * 100
	}
	if sampledWall > 0 {
		res.Speedup = monoWall / sampledWall
	}
	return res, nil
}
