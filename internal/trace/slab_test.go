package trace

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/emu"
)

// captureBig captures compress.big (the multi-chunk fixture) and fails
// the test if it no longer spans several chunks — the slab tests are
// about chunk-granular sharing and eviction, so a single-chunk trace
// would silently stop exercising them.
func captureBig(t *testing.T) *Trace {
	t.Helper()
	p := mustProgram(t, "compress.big")
	tr, err := Capture(p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Chunks() < 2 {
		t.Fatalf("compress.big packs into %d chunk(s); slab tests need a multi-chunk trace", tr.Chunks())
	}
	return tr
}

// readAll replays tr from boundary b to the end through the streaming
// Reader — the reference stream every slab path must reproduce exactly.
func readAll(t *testing.T, tr *Trace, b Boundary) []emu.Record {
	t.Helper()
	r, err := NewReaderAt(tr, b)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	var recs []emu.Record
	for {
		rec, err := r.Step()
		if err == emu.ErrHalted {
			return recs
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
}

// TestDecodeChunkMatchesReader pins the tentpole's correctness floor:
// chunk-batched decode produces byte-identical records to the streaming
// Reader, for every chunk including the short final one.
func TestDecodeChunkMatchesReader(t *testing.T) {
	tr := captureBig(t)
	want := readAll(t, tr, tr.startBoundary())
	var got []emu.Record
	for ci := 0; ci < tr.Chunks(); ci++ {
		recs, err := tr.DecodeChunk(ci, nil)
		if err != nil {
			t.Fatalf("DecodeChunk(%d): %v", ci, err)
		}
		got = append(got, recs...)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records across chunks, reader produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: slab %+v, reader %+v", i, got[i], want[i])
		}
	}
	if uint64(len(got)) != tr.Steps() {
		t.Fatalf("decoded %d records, trace has %d steps", len(got), tr.Steps())
	}
}

// TestStepBatch pins the batch API's contract: early stop at the halt
// record with a nil error, (0, emu.ErrHalted) afterwards, and exact
// agreement with per-record stepping across arbitrary batch sizes.
func TestStepBatch(t *testing.T) {
	tr := captureBig(t)
	want := readAll(t, tr, tr.startBoundary())

	r := NewReader(tr)
	defer r.Release()
	var got []emu.Record
	buf := make([]emu.Record, 100_003) // deliberately chunk-misaligned
	for {
		n, err := r.StepBatch(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
		if n < len(buf) {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("StepBatch produced %d records, Step produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: batch %+v, step %+v", i, got[i], want[i])
		}
	}
	if n, err := r.StepBatch(buf); n != 0 || err != emu.ErrHalted {
		t.Fatalf("StepBatch after halt = (%d, %v), want (0, ErrHalted)", n, err)
	}
}

// cursorAll drains a SlabCursor into a flat record slice.
func cursorAll(t *testing.T, sc *SlabCursor) []emu.Record {
	t.Helper()
	defer sc.Release()
	var recs []emu.Record
	for {
		win, last, err := sc.NextWindow()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, win...)
		if last {
			return recs
		}
	}
}

// TestSlabCursorMatchesReader checks the cursor's full-stream and
// boundary-start (segment warm start) views against the Reader.
func TestSlabCursorMatchesReader(t *testing.T) {
	tr := captureBig(t)
	cache := NewSlabCache(tr.DecodedBytes()) // ample: no eviction pressure

	sc, err := NewSlabCursor(cache, tr)
	if err != nil {
		t.Fatal(err)
	}
	got := cursorAll(t, sc)
	want := readAll(t, tr, tr.startBoundary())
	if len(got) != len(want) {
		t.Fatalf("cursor produced %d records, reader %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: cursor %+v, reader %+v", i, got[i], want[i])
		}
	}

	// Warm-start at every segment cut of a 4-way split, including cuts
	// that land mid-chunk (boundaryInterval < chunkRecords guarantees
	// most do): the cursor must skip into the first window precisely.
	for _, seg := range tr.Segments(4) {
		sc, err := NewSlabCursorAt(cache, tr, seg.Start)
		if err != nil {
			t.Fatal(err)
		}
		got := cursorAll(t, sc)
		want := readAll(t, tr, seg.Start)
		if len(got) != len(want) {
			t.Fatalf("segment %d: cursor produced %d records, reader %d", seg.Index, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("segment %d record %d differs: cursor %+v, reader %+v", seg.Index, i, got[i], want[i])
			}
		}
	}

	// A cursor opened at the trace's end yields one empty final window.
	end, err := NewSlabCursorAt(cache, tr, tr.endBoundary())
	if err != nil {
		t.Fatal(err)
	}
	if win, last, err := end.NextWindow(); err != nil || !last || len(win) != 0 {
		t.Fatalf("cursor at end = (%d records, last=%v, %v), want (0, true, nil)", len(win), last, err)
	}

	st := cache.Stats()
	if st.Decodes != tr.Chunks() {
		t.Fatalf("cache decoded %d chunks for %d-chunk trace under ample budget, want exactly one decode per chunk", st.Decodes, tr.Chunks())
	}
	if st.Hits == 0 {
		t.Fatal("repeated cursors produced no slab hits")
	}
	if st.Evictions != 0 {
		t.Fatalf("ample-budget cache evicted %d slabs, want 0", st.Evictions)
	}
	if st.PeakBytes > tr.DecodedBytes() {
		t.Fatalf("peak slab bytes %d exceed the trace's decoded footprint %d", st.PeakBytes, tr.DecodedBytes())
	}
}

// TestSlabCacheEvictionUnderConcurrentGangs is the satellite's pinning
// test: several goroutines (a gang) replay the same trace through one
// budget-constrained cache, racing acquire/release/evict. Refcount
// pinning means no worker ever observes a reclaimed slab — every worker
// must still see the byte-exact record stream — and the budget holds:
// peak resident slab bytes never exceed it (each worker pins at most one
// slab, and the budget covers one slab per worker). Run with -race.
func TestSlabCacheEvictionUnderConcurrentGangs(t *testing.T) {
	tr := captureBig(t)
	want := readAll(t, tr, tr.startBoundary())

	const workers = 4
	slabBytes := int64(chunkRecords) * slabRecordBytes
	budget := workers * slabBytes
	cache := NewSlabCache(budget)

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { //ce:nondet-ok test-only concurrency: races the cache on purpose; every interleaving must yield the same byte-exact stream
			defer wg.Done()
			sc, err := NewSlabCursor(cache, tr)
			if err != nil {
				errs[w] = err
				return
			}
			defer sc.Release()
			pos := 0
			for {
				win, last, err := sc.NextWindow()
				if err != nil {
					errs[w] = err
					return
				}
				for i := range win {
					if win[i] != want[pos] {
						errs[w] = errors.New("record stream diverged from reference replay")
						return
					}
					pos++
				}
				if last {
					break
				}
			}
			if pos != len(want) {
				errs[w] = errors.New("short replay")
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("gang worker %d: %v", w, err)
		}
	}

	st := cache.Stats()
	if st.PeakBytes > budget {
		t.Fatalf("peak slab bytes %d exceed the budget %d", st.PeakBytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions with budget %d over a %d-byte decoded trace; the test is not exercising eviction", budget, tr.DecodedBytes())
	}
	if st.Decodes+st.Hits != workers*tr.Chunks() {
		t.Fatalf("decodes %d + hits %d ≠ %d acquisitions", st.Decodes, st.Hits, workers*tr.Chunks())
	}
	if st.Decodes < tr.Chunks() {
		t.Fatalf("decoded %d chunks, trace has %d", st.Decodes, tr.Chunks())
	}
	if st.DecodedRecords < tr.Steps() {
		t.Fatalf("decoded %d records, trace has %d", st.DecodedRecords, tr.Steps())
	}
	t.Logf("gang of %d over %d chunks: %d decodes, %d hits, %d evictions, peak %d/%d bytes",
		workers, tr.Chunks(), st.Decodes, st.Hits, st.Evictions, st.PeakBytes, budget)
}

// TestSlabCacheTinyBudget drives the degenerate budget: every release
// immediately evicts, yet replay stays correct and peak stays at one
// slab (a pinned slab is never reclaimed, whatever the budget says).
func TestSlabCacheTinyBudget(t *testing.T) {
	tr := captureBig(t)
	cache := NewSlabCache(1)
	sc, err := NewSlabCursor(cache, tr)
	if err != nil {
		t.Fatal(err)
	}
	got := cursorAll(t, sc)
	if uint64(len(got)) != tr.Steps() {
		t.Fatalf("replayed %d records, want %d", len(got), tr.Steps())
	}
	st := cache.Stats()
	if st.Evictions != tr.Chunks() {
		t.Fatalf("tiny budget evicted %d slabs, want one per chunk (%d)", st.Evictions, tr.Chunks())
	}
	if st.PeakBytes > int64(chunkRecords)*slabRecordBytes {
		t.Fatalf("peak %d bytes exceeds one slab; eviction is not keeping up", st.PeakBytes)
	}
	if st.Bytes != 0 {
		t.Fatalf("%d resident bytes after the cursor released everything, want 0", st.Bytes)
	}
}

// TestSlabCacheFileBacked repeats the sharing check against a file-backed
// trace: the checksum-verify-on-every-load cost the slab layer exists to
// remove must not change the records it produces.
func TestSlabCacheFileBacked(t *testing.T) {
	p := mustProgram(t, "compress.big")
	tr, err := CaptureToDir(p, maxInsts, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	want := readAll(t, tr, tr.startBoundary())
	cache := NewSlabCache(tr.DecodedBytes())
	sc, err := NewSlabCursor(cache, tr)
	if err != nil {
		t.Fatal(err)
	}
	got := cursorAll(t, sc)
	if len(got) != len(want) {
		t.Fatalf("cursor produced %d records, reader %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: cursor %+v, reader %+v", i, got[i], want[i])
		}
	}
	if st := cache.Stats(); st.Decodes != tr.Chunks() {
		t.Fatalf("file-backed cache decoded %d chunks, want %d", st.Decodes, tr.Chunks())
	}
}
