// Package hot exercises every hotlint rule.
package hot

import "fmt"

type entry struct{ a, b int }

//ce:hot
func badMake() {
	s := make([]entry, 4) // want "make allocates"
	_ = s
}

//ce:hot
func badNew() *entry {
	return new(entry) // want "new allocates"
}

//ce:hot
func badPtrLit() *entry {
	return &entry{a: 1} // want "escaping composite literal allocates"
}

// okLocal: a plain local composite is stack allocatable.
//
//ce:hot
func okLocal() int {
	v := entry{a: 1}
	return v.a
}

//ce:hot
func badArgLit(sink func(any)) {
	sink(entry{a: 1}) // want "escaping composite literal allocates"
}

// okArgByValue: a concrete-typed parameter receives a copy, not a box.
//
//ce:hot
func okArgByValue(sink func(entry)) {
	sink(entry{a: 1})
}

//ce:hot
func badIfaceAssign() {
	var i any
	i = entry{a: 1} // want "escaping composite literal allocates"
	_ = i
}

//ce:hot
func badIfaceReturn() any {
	return entry{a: 1} // want "escaping composite literal allocates"
}

// okValueReturn: returning a struct by value copies it into the caller's
// frame.
//
//ce:hot
func okValueReturn() entry {
	return entry{a: 1}
}

// okDerefStore: writing a composite through a pointer overwrites in
// place (the uop pool reset idiom).
//
//ce:hot
func okDerefStore(p *entry) {
	*p = entry{a: 1}
}

//ce:hot
func badFreshAppend(dst, src []entry) []entry {
	dst = append(src, src[0]) // want "append into a fresh slice allocates"
	return dst
}

// okSelfAppend amortizes against capacity reserved by setup code.
//
//ce:hot
func okSelfAppend(dst []entry, e entry) []entry {
	dst = append(dst, e)
	return dst
}

//ce:hot
func badLooseAppend(src []entry, sink func([]entry)) {
	sink(append(src, src[0])) // want "append into a fresh slice allocates"
}

//ce:hot
func badFmt(e entry) string {
	return fmt.Sprintf("%d", e.a) // want "boxes its arguments"
}

// okClosure: a local closure that is only ever called directly stays on
// the stack (the skipAhead `consider` pattern).
//
//ce:hot
func okClosure(xs []entry) int {
	total := 0
	consider := func(e entry) {
		total += e.a
	}
	for _, e := range xs {
		consider(e)
	}
	return total
}

//ce:hot
func badClosure(register func(func())) {
	register(func() {}) // want "escaping func literal allocates its closure"
}

//ce:hot
func badGo(f func()) {
	go f() // want "go statement allocates a goroutine stack"
}

//ce:hot
func badDefer(f func()) {
	defer f() // want "defer allocates a deferred frame"
}

// okHatched: an annotated allocation with a reason passes.
//
//ce:hot
func okHatched() *entry {
	return &entry{} //ce:alloc-ok pool-miss path, amortized across the run
}

// badHatch: a reason-less hatch suppresses nothing (dirlint reports the
// malformed directive itself).
//
//ce:hot
func badHatch() *entry {
	//ce:alloc-ok
	return &entry{} // want "escaping composite literal allocates"
}

// cold is unmarked: allocations are fine outside //ce:hot.
func cold() []entry {
	return make([]entry, 4)
}
