// Package lease provides a cross-process mutual-exclusion protocol over
// a shared directory, built from nothing but lock files. It is what lets
// N cesweepd daemons (or concurrent cesweep invocations) share one
// -cache-dir/-trace-dir store and deduplicate work instead of
// duplicating it: before computing an expensive artifact, a process
// tries to acquire the artifact's lease; losers poll for the artifact to
// appear on disk while the winner computes it.
//
// The protocol must survive crashed holders — a daemon killed mid-
// simulation cannot be allowed to brick a key for every other process —
// so leases go stale: a holder refreshes its lock file's mtime while it
// works, and any process finding a lock whose mtime is older than the
// TTL breaks it and takes over. Lock files are created with
// O_CREATE|O_EXCL, which is atomic on the local filesystems the store
// targets, and carry the holder's PID and start time for debuggability.
//
//ce:classify-errors
package lease

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTTL is the staleness horizon: a lock untouched for this long is
// considered abandoned by a crashed holder and may be broken. Holders
// refresh well inside it (every TTL/4), so only a process that stopped
// refreshing — crashed, SIGKILLed, or wedged — ever loses its lease.
const DefaultTTL = 30 * time.Second

// Lease is a held lock. Release is idempotent: extra calls are no-ops.
type Lease struct {
	path string
	// token is the exact contents this holder wrote at acquisition.
	// Release removes the lock file only while it still carries the
	// token, so a holder whose lease was broken by staleness takeover
	// cannot remove the new holder's lock out from under it.
	token   []byte
	stop    chan struct{}
	done    chan struct{}
	release sync.Once
}

// leaseSeq disambiguates tokens when one process reacquires the same
// lock: pid and timestamp alone could collide within clock resolution.
var leaseSeq atomic.Uint64

// TryAcquire attempts to take the lock file at path (conventionally the
// guarded artifact's path plus a ".lock" suffix). It returns (lease,
// true) on success. On failure — some other live process holds the lock
// — it returns (nil, false) without blocking. A lock whose mtime is
// older than ttl is treated as abandoned: it is removed and acquisition
// is retried once. ttl <= 0 uses DefaultTTL.
func TryAcquire(path string, ttl time.Duration) (*Lease, bool) {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			token := fmt.Appendf(nil, "pid %d seq %d acquired %s\n",
				os.Getpid(), leaseSeq.Add(1), time.Now().UTC().Format(time.RFC3339Nano))
			f.Write(token)
			f.Close()
			l := &Lease{path: path, token: token, stop: make(chan struct{}), done: make(chan struct{})}
			go l.refresh(ttl / 4)
			return l, true
		}
		if !os.IsExist(err) {
			// The directory is unwritable or gone; the caller degrades to
			// computing without a lease (it may duplicate work, never lose it).
			return nil, false
		}
		info, serr := os.Stat(path)
		if serr != nil {
			// The holder released between our open and stat; retry the open.
			continue
		}
		if time.Since(info.ModTime()) < ttl {
			return nil, false
		}
		// Stale: the holder stopped refreshing. Break the lock and retry.
		// Two processes may race to remove the same stale lock; both
		// removes succeed (or one sees ENOENT) and the O_EXCL create on the
		// next iteration elects a single new holder.
		_ = os.Remove(path)
	}
	return nil, false
}

// refresh keeps the lock visibly alive by bumping its mtime until
// Release. A refresh failure is deliberately ignored: if the file was
// broken by another process (clock skew, an aggressive TTL), the worst
// case is duplicated computation, which the store's canonical-bytes
// atomic-rename writes make harmless.
func (l *Lease) refresh(every time.Duration) {
	defer close(l.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			now := time.Now()
			_ = os.Chtimes(l.path, now, now)
		}
	}
}

// Release stops the refresher and removes the lock file, provided the
// file still carries this lease's token. It is safe to call more than
// once (a daemon's deferred release racing its shutdown path), and safe
// to call on a lease that was broken by a peer's staleness takeover: the
// peer's lock file carries the peer's token and is left alone. The
// read-then-remove window is inherent to lock-file protocols; the worst
// case — a peer takes over between the two — duplicates one computation,
// which the store's canonical-bytes atomic-rename writes make harmless.
func (l *Lease) Release() {
	l.release.Do(func() {
		close(l.stop)
		<-l.done
		data, err := os.ReadFile(l.path)
		if err == nil && !bytes.Equal(data, l.token) {
			return // broken and re-acquired: the lock belongs to a peer now
		}
		_ = os.Remove(l.path)
	})
}
