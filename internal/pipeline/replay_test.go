package pipeline

// Tests for the replay execution source: a simulator driven by a
// pre-captured trace must be statistically indistinguishable from one
// driving the functional emulator in lockstep, and the replay path must
// preserve the steady-state zero-allocation guarantee.

import (
	"testing"

	"repro/internal/prog"
	"repro/internal/trace"
)

// replayConfigs covers both scheduler families plus the fetch features
// that interact with the source: icache probing (source PC) and
// fetch-break-on-taken.
func replayConfigs() []Config {
	window := cfg("window", 1, 0, window64)
	window.PerfectBPred = false
	fifos := cfg("fifos", 1, 0, fifos8x8)
	fifos.PerfectBPred = false
	fifos.FetchBreakOnTaken = true
	fifos.StoreForwarding = true
	return []Config{window, fifos}
}

func TestReplayMatchesLockstep(t *testing.T) {
	for _, name := range []string{"compress", "micro.branchy"} {
		w, err := prog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Capture(p, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range replayConfigs() {
			exec := runProgram(t, c, p)
			sim, err := NewReplay(c, trace.NewReader(tr))
			if err != nil {
				t.Fatal(err)
			}
			replay, err := sim.Run(0)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name, name, err)
			}
			exec.HostAllocs, replay.HostAllocs = 0, 0
			exec.HostWallSeconds, replay.HostWallSeconds = 0, 0
			if replay.Cycles != exec.Cycles || replay.Committed != exec.Committed ||
				replay.EmuSteps != exec.EmuSteps || replay.Mispredicts != exec.Mispredicts ||
				replay.Cache != exec.Cache || replay.ICache != exec.ICache ||
				replay.ForwardedLoads != exec.ForwardedLoads {
				t.Errorf("%s/%s: replay %+v != lockstep %+v", c.Name, name, replay, exec)
			}
			if sim.StateHash() != tr.StateHash() {
				t.Errorf("%s/%s: replay simulator state hash diverges", c.Name, name)
			}
			if sim.Machine() != nil {
				t.Errorf("%s/%s: replay simulator exposes a machine", c.Name, name)
			}
		}
	}
}

// TestNewReplayRejectsWrongPath pins the refusal: wrong-path execution
// needs a concrete machine to run down mispredicted paths.
func TestNewReplayRejectsWrongPath(t *testing.T) {
	w, err := prog.ByName("micro.chain")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Capture(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg("wrong-path", 1, 0, window64)
	c.WrongPathExecution = true
	if _, err := NewReplay(c, trace.NewReader(tr)); err == nil {
		t.Fatal("NewReplay accepted a wrong-path configuration")
	}
}

// TestReplayRunAllocationFree extends the steady-state allocation guard
// to the replay path: a full replay-driven simulation must stay within
// the same construction-bounded allocation budget as lockstep.
func TestReplayRunAllocationFree(t *testing.T) {
	w, err := prog.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Capture(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg("replay-alloc-guard", 1, 0, window64)
	c.PerfectBPred = false
	var cycles int64
	run := func() {
		sim, err := NewReplay(c, trace.NewReader(tr))
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		cycles = st.Cycles
	}
	const maxPerRun = 2000
	allocs := testing.AllocsPerRun(5, run)
	if allocs > maxPerRun {
		t.Errorf("replay run allocates %.0f objects (limit %d): %.3f allocs/cycle over %d cycles",
			allocs, maxPerRun, allocs/float64(cycles), cycles)
	}
}
