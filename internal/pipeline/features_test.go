package pipeline

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

func TestPipelinedWakeupSelectBreaksBackToBack(t *testing.T) {
	// Figure 10: with wakeup and select split across two stages,
	// dependent instructions cannot issue in consecutive cycles, so a
	// serial chain takes ≈2 cycles per link.
	p := mustProgram(t, chainSrc(64))
	fast := runProgram(t, cfg("atomic", 1, 0, window64), p)
	c := cfg("pipelined", 1, 0, window64)
	c.PipelinedWakeupSelect = true
	slow := runProgram(t, c, mustProgram(t, chainSrc(64)))
	if slow.Cycles < fast.Cycles+56 {
		t.Errorf("pipelined wakeup+select: %d cycles vs %d atomic; want ≈one extra cycle per chain link",
			slow.Cycles, fast.Cycles)
	}
	// Independent instructions are unaffected in throughput terms.
	ci := cfg("pipelined-ind", 1, 0, window64)
	ci.PipelinedWakeupSelect = true
	ind := runProgram(t, ci, mustProgram(t, independentSrc(64)))
	if ind.Cycles > 25 {
		t.Errorf("independent instructions slowed too much by pipelined wakeup: %d cycles", ind.Cycles)
	}
}

func TestLocalBypassExtraModelsIncompleteBypassing(t *testing.T) {
	// With no bypass network (operands only via the register file, ≈2
	// extra cycles), a serial chain takes ≈3 cycles per link.
	c := cfg("nobypass", 1, 0, window64)
	c.LocalBypassExtra = 2
	slow := runProgram(t, c, mustProgram(t, chainSrc(50)))
	fast := runProgram(t, cfg("full", 1, 0, window64), mustProgram(t, chainSrc(50)))
	if slow.Cycles < fast.Cycles+90 {
		t.Errorf("incomplete bypassing: %d cycles vs %d full; want ≈2 extra cycles per link",
			slow.Cycles, fast.Cycles)
	}
}

func TestRingTopologyCostsMoreThanFlat(t *testing.T) {
	// Four clusters, random steering: a scattered chain pays per-hop
	// latency on a unidirectional ring (mean ≈2 hops) versus a flat
	// crossbar (1 hop).
	sched := func() core.Scheduler {
		return core.NewFIFOBank(core.FIFOBankConfig{
			Name: "rand4", Clusters: 4, FIFOsPerCluster: 1, Depth: 16,
			AnySlot: true, Policy: core.SteerRandom,
		})
	}
	flat := cfg("flat", 4, 1, sched)
	flat.FUsPerCluster = 2
	ring := cfg("ring", 4, 1, sched)
	ring.FUsPerCluster = 2
	ring.RingTopology = true
	p := chainSrc(200)
	fstats := runProgram(t, flat, mustProgram(t, p))
	rstats := runProgram(t, ring, mustProgram(t, p))
	if rstats.Cycles <= fstats.Cycles {
		t.Errorf("ring (%d cycles) not slower than flat interconnect (%d cycles)",
			rstats.Cycles, fstats.Cycles)
	}
}

func TestStoreForwarding(t *testing.T) {
	// A load that reads a word an in-flight store just wrote: with
	// forwarding it completes at hit latency; without, it pays the cold
	// miss and the run is longer.
	// The cold-miss load at the top keeps the ROB head busy, so the store
	// is still in flight (uncommitted, cache not yet written) when the
	// dependent load issues.
	src := `
		.text
		lw   $t9, 0x50000($zero)
		li   $t0, 0x40000
		li   $t1, 1234
		sw   $t1, 0($t0)
		lw   $t2, 0($t0)
` + strings.Repeat("\t\taddi $t2, $t2, 1\n", 20) + `
		out  $t2
		halt
	`
	plain := runProgram(t, cfg("plain", 1, 0, window64), mustProgram(t, src))
	c := cfg("fwd", 1, 0, window64)
	c.StoreForwarding = true
	fwd := runProgram(t, c, mustProgram(t, src))
	if fwd.ForwardedLoads != 1 {
		t.Errorf("forwarded loads = %d, want 1", fwd.ForwardedLoads)
	}
	if plain.ForwardedLoads != 0 {
		t.Errorf("forwarding happened with the feature off (%d)", plain.ForwardedLoads)
	}
	if fwd.Cycles >= plain.Cycles {
		t.Errorf("forwarding did not help: %d cycles vs %d", fwd.Cycles, plain.Cycles)
	}
}

func TestICacheModel(t *testing.T) {
	// A 512-byte I-cache cannot hold a long straight-line program: every
	// new line misses and fetch stalls.
	icache := cache.Config{SizeBytes: 512, Ways: 1, LineBytes: 32, HitCycles: 1, MissCycles: 6}
	c := cfg("icache", 1, 0, window64)
	c.ICache = &icache
	p := independentSrc(512)
	with := runProgram(t, c, mustProgram(t, p))
	without := runProgram(t, cfg("perfect-ic", 1, 0, window64), mustProgram(t, p))
	if with.ICache.Misses == 0 {
		t.Fatal("no I-cache misses on a straight-line 512-instruction program")
	}
	if with.Cycles <= without.Cycles {
		t.Errorf("I-cache misses cost nothing: %d vs %d cycles", with.Cycles, without.Cycles)
	}
	if without.ICache.Accesses != 0 {
		t.Error("perfect-I-cache run recorded I-cache accesses")
	}
}

func TestICacheLoopHits(t *testing.T) {
	// A tight loop fits in one line: one cold miss, then hits.
	src := `
		.text
		li   $s0, 100
loop:	addi $s0, $s0, -1
		bgtz $s0, loop
		halt
	`
	icache := cache.Config{SizeBytes: 1024, Ways: 2, LineBytes: 32, HitCycles: 1, MissCycles: 6}
	c := cfg("ic-loop", 1, 0, window64)
	c.ICache = &icache
	st := runProgram(t, c, mustProgram(t, src))
	if st.ICache.Misses > 2 {
		t.Errorf("loop caused %d I-cache misses, want ≤2", st.ICache.Misses)
	}
}

func TestFetchBreakOnTaken(t *testing.T) {
	// ILP-rich straight-line blocks separated by unconditional jumps: the
	// ideal fetch unit streams 8 instructions per cycle across the taken
	// jumps; breaking at each taken control caps fetch at ≈3 per cycle.
	regs := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5"}
	var b strings.Builder
	b.WriteString("\t.text\n")
	for blk := 0; blk < 60; blk++ {
		b.WriteString(strings.Repeat("\taddi "+regs[blk%len(regs)]+", $zero, 1\n", 1))
		b.WriteString("\taddi " + regs[(blk+1)%len(regs)] + ", $zero, 2\n")
		if blk < 59 {
			b.WriteString("\tj b" + strconv.Itoa(blk+1) + "\n")
			b.WriteString("b" + strconv.Itoa(blk+1) + ":\n")
		}
	}
	b.WriteString("\thalt\n")
	src := b.String()
	ideal := runProgram(t, cfg("anyfetch", 1, 0, window64), mustProgram(t, src))
	c := cfg("break", 1, 0, window64)
	c.FetchBreakOnTaken = true
	broken := runProgram(t, c, mustProgram(t, src))
	if broken.Cycles <= ideal.Cycles+20 {
		t.Errorf("fetch break had too little cost: %d vs %d cycles", broken.Cycles, ideal.Cycles)
	}
}

func TestTimelineRecording(t *testing.T) {
	src := `
		.text
		addi $t0, $zero, 1
		addi $t1, $t0, 1
		lw   $t2, 0x40000($zero)
		add  $t3, $t1, $t2
		halt
	`
	c := cfg("timeline", 1, 0, fifos8x8)
	c.RecordTimeline = true
	p := mustProgram(t, src)
	sim, err := New(c, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	tl := sim.Timeline()
	if uint64(len(tl)) != st.Committed {
		t.Fatalf("timeline has %d entries for %d committed", len(tl), st.Committed)
	}
	for i, e := range tl {
		if uint64(i) != e.Seq {
			t.Errorf("timeline out of order at %d: seq %d", i, e.Seq)
		}
		if !(e.Fetch <= e.Dispatch && e.Dispatch < e.Issue && e.Issue < e.Complete && e.Complete <= e.Commit) {
			t.Errorf("entry %d stages not monotone: %+v", i, e)
		}
		if e.FIFO < 0 {
			t.Errorf("entry %d: FIFO id not recorded (%d)", i, e.FIFO)
		}
	}
	// The dependent add (seq 3) must issue after the load completes.
	if tl[3].Issue < tl[2].Complete {
		t.Errorf("dependent add issued at %d before load completed at %d", tl[3].Issue, tl[2].Complete)
	}
	// Without the flag, no timeline accumulates.
	sim2, err := New(cfg("no-tl", 1, 0, window64), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim2.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if len(sim2.Timeline()) != 0 {
		t.Error("timeline recorded without RecordTimeline")
	}
}

func TestIssuedPerCycleHistogram(t *testing.T) {
	st := runProgram(t, cfg("hist", 1, 0, window64), mustProgram(t, independentSrc(64)))
	h := st.IssuedPerCycle
	if h == nil || h.Total() == 0 {
		t.Fatal("issue histogram not recorded")
	}
	if uint64(h.Total()) != uint64(st.Cycles) {
		t.Errorf("histogram samples %d != cycles %d", h.Total(), st.Cycles)
	}
	// 64 independent instructions at 8-wide: several full-width cycles.
	if h.Count(8) < 5 {
		t.Errorf("full-width issue cycles = %d, want ≥5", h.Count(8))
	}
	// Mean issued per cycle times cycles = committed (plus the halt).
	approx := h.Mean() * float64(st.Cycles)
	if approx < float64(st.Committed)*0.95 || approx > float64(st.Committed)*1.05 {
		t.Errorf("histogram mass %.1f inconsistent with %d committed", approx, st.Committed)
	}
}
