package ce

import "sort"

// namedConfigs is the registry of stock machine configurations by short
// name, shared by cesim's -config flag and cesweepd's POST /run API.
var namedConfigs = map[string]func() Config{
	"baseline":         BaselineConfig,
	"dependence":       DependenceConfig,
	"clustered":        ClusteredDependenceConfig,
	"windows-dispatch": WindowsDispatchConfig,
	"exec-steer":       ExecSteeredConfig,
	"random-steer":     RandomSteerConfig,
	"4way":             FourWayConfig,
}

// NamedConfig returns the stock configuration registered under the given
// short name ("baseline", "dependence", "clustered", "windows-dispatch",
// "exec-steer", "random-steer", "4way").
func NamedConfig(name string) (Config, bool) {
	mk, ok := namedConfigs[name]
	if !ok {
		return Config{}, false
	}
	return mk(), true
}

// ConfigNames returns the registered short names in sorted order.
func ConfigNames() []string {
	names := make([]string, 0, len(namedConfigs))
	for n := range namedConfigs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
