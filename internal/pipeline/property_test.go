package pipeline

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
)

// genProgram builds a random straight-line program (no control flow, so it
// always terminates) from a byte seed stream: a mix of ALU ops, loads,
// stores, multiplies and outs over rotating registers.
func genProgram(seed []byte) *isa.Program {
	regs := []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.S0, isa.S1, isa.S2, isa.V0}
	var text []isa.Inst
	// Seed registers with immediates so loads/stores have sane addresses.
	for i, r := range regs {
		text = append(text, isa.Inst{Op: isa.Addi, Rd: r, Rs: isa.Zero, Imm: int32(0x40000 + i*64)})
	}
	for i, b := range seed {
		rd := regs[int(b)%len(regs)]
		rs := regs[int(b>>3)%len(regs)]
		rt := regs[int(b>>5)%len(regs)]
		switch b % 7 {
		case 0:
			text = append(text, isa.Inst{Op: isa.Add, Rd: rd, Rs: rs, Rt: rt})
		case 1:
			text = append(text, isa.Inst{Op: isa.Xor, Rd: rd, Rs: rs, Rt: rt})
		case 2:
			text = append(text, isa.Inst{Op: isa.Addi, Rd: rd, Rs: rs, Imm: int32(b)})
		case 3:
			text = append(text, isa.Inst{Op: isa.Mul, Rd: rd, Rs: rs, Rt: rt})
		case 4:
			// Keep addresses within a small region: mask via ANDI then add base.
			text = append(text,
				isa.Inst{Op: isa.Andi, Rd: isa.T9, Rs: rs, Imm: 0xFC},
				isa.Inst{Op: isa.Lw, Rd: rd, Rs: isa.T9, Imm: 0x40000})
		case 5:
			text = append(text,
				isa.Inst{Op: isa.Andi, Rd: isa.T9, Rs: rs, Imm: 0xFC},
				isa.Inst{Op: isa.Sw, Rt: rt, Rs: isa.T9, Imm: 0x40000})
		case 6:
			if i%16 == 0 {
				text = append(text, isa.Inst{Op: isa.Out, Rs: rs})
			} else {
				text = append(text, isa.Inst{Op: isa.Sub, Rd: rd, Rs: rs, Rt: rt})
			}
		}
	}
	text = append(text, isa.Inst{Op: isa.Out, Rs: isa.T0}, isa.Inst{Op: isa.Halt})
	return &isa.Program{Name: "random", Text: text, Symbols: map[string]uint32{}}
}

// propConfigs are the machine shapes every random program must agree on.
func propConfigs() []Config {
	return []Config{
		cfg("window", 1, 0, window64),
		cfg("fifo", 1, 0, fifos8x8),
		cfg("clustered", 2, 1, func() core.Scheduler {
			return core.NewFIFOBank(core.FIFOBankConfig{
				Name: "c", Clusters: 2, FIFOsPerCluster: 4, Depth: 8,
			})
		}),
		cfg("exec", 2, 1, func() core.Scheduler {
			return core.NewExecSteeredWindow(64, 2)
		}),
	}
}

// TestPropertyAllConfigsCompleteAndAgree: for random programs, every
// configuration (a) terminates within a generous cycle bound (no deadlock
// or livelock), (b) commits exactly the functionally executed instruction
// count, and (c) produces the functional emulator's outputs.
func TestPropertyAllConfigsCompleteAndAgree(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) > 512 {
			seed = seed[:512]
		}
		p := genProgram(seed)
		ref := emu.New(p)
		for !ref.Halted() {
			if _, err := ref.Step(); err != nil {
				t.Logf("reference emulation failed: %v", err)
				return false
			}
		}
		for _, c := range propConfigs() {
			sim, err := New(c, p)
			if err != nil {
				t.Logf("%s: %v", c.Name, err)
				return false
			}
			st, err := sim.Run(int64(len(p.Text))*20 + 10_000)
			if err != nil {
				t.Logf("%s: %v", c.Name, err)
				return false
			}
			if st.Committed != ref.Executed {
				t.Logf("%s: committed %d, want %d", c.Name, st.Committed, ref.Executed)
				return false
			}
			got := sim.Machine().Output
			if len(got) != len(ref.Output) {
				t.Logf("%s: output length %d, want %d", c.Name, len(got), len(ref.Output))
				return false
			}
			for i := range got {
				if got[i] != ref.Output[i] {
					t.Logf("%s: output[%d] = %d, want %d", c.Name, i, got[i], ref.Output[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFIFOWithinFactorOfWindow: the heads-only FIFO machine must
// stay within a bounded factor of the flexible window on arbitrary
// programs (it cannot deadlock or starve). It may occasionally *win*:
// both machines schedule greedily, and greedy selection is not optimal —
// restricting the window's choices can issue a mispredicted branch
// sooner and recover fetch earlier — so only the upper bound is a
// property.
func TestPropertyFIFOWithinFactorOfWindow(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) < 16 {
			return true
		}
		if len(seed) > 256 {
			seed = seed[:256]
		}
		p := genProgram(seed)
		win, err := New(cfg("w", 1, 0, window64), p)
		if err != nil {
			return false
		}
		ws, err := win.Run(1_000_000)
		if err != nil {
			return false
		}
		fifo, err := New(cfg("f", 1, 0, fifos8x8), p)
		if err != nil {
			return false
		}
		fs, err := fifo.Run(1_000_000)
		if err != nil {
			return false
		}
		return fs.Cycles <= ws.Cycles*3+50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRetireOrderIsProgramOrder: with timeline recording on, the
// commit stream is exactly program order and stage timestamps are sane for
// arbitrary programs.
func TestPropertyTimelineWellFormed(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) > 128 {
			seed = seed[:128]
		}
		p := genProgram(seed)
		c := cfg("tl", 1, 0, fifos8x8)
		c.RecordTimeline = true
		sim, err := New(c, p)
		if err != nil {
			return false
		}
		st, err := sim.Run(1_000_000)
		if err != nil {
			return false
		}
		tl := sim.Timeline()
		if uint64(len(tl)) != st.Committed {
			return false
		}
		for i, e := range tl {
			if uint64(i) != e.Seq {
				return false
			}
			if !(e.Fetch <= e.Dispatch && e.Dispatch < e.Issue && e.Issue < e.Complete && e.Complete <= e.Commit) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
