// Package trace captures the dynamic execution of a program once and
// replays it arbitrarily many times. The functional emulator's Record
// stream — resolved branch outcomes, jump targets and memory addresses —
// is a pure function of (program, input); only *timing* differs between
// machine configurations. A sweep that times one workload on dozens of
// configurations therefore only needs to execute it once: capture the
// stream into a packed trace, then drive every timing simulation from a
// zero-allocation sequential Reader instead of lockstep emulation.
//
// The encoding exploits that almost everything in a Record is static.
// The instruction is the program text at the PC; the PC chain is implied
// by the previous record's NextPC; conditional-branch and direct-jump
// targets are immediates. Per dynamic instruction the trace stores only
// what the emulator actually resolved at run time:
//
//	conditional branch      1 byte  (taken flag)
//	indirect jump (jr/jalr) 4 bytes (target)
//	load/store              4 bytes (effective address)
//	everything else         0 bytes
//
// which averages about one byte per instruction on the paper's
// workloads. A trace is tied to its program by a content hash over the
// text and data segments, so a stale trace can never replay against a
// recompiled program.
//
//ce:deterministic
package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Trace is one captured execution: the packed dynamic stream plus the
// final architectural results needed to verify a replayed run without
// re-executing (output values and state digest).
type Trace struct {
	prog    *isa.Program
	entryPC uint32
	packed  []byte
	n       uint64 // dynamic records in packed

	// bounds are periodic warm-start points (every boundaryInterval
	// records) captured during the one functional execution; see
	// segment.go.
	bounds []Boundary

	output    []int32
	stateHash [32]byte
}

// Program returns the program this trace was captured from.
func (t *Trace) Program() *isa.Program { return t.prog }

// Steps returns the number of dynamic instructions in the trace.
func (t *Trace) Steps() uint64 { return t.n }

// PackedBytes returns the size of the packed stream in bytes
// (observability: bytes per instruction is the format's figure of merit).
func (t *Trace) PackedBytes() int { return len(t.packed) }

// Output returns the Out values emitted by the captured execution.
func (t *Trace) Output() []int32 { return t.output }

// StateHash returns the final architectural state digest of the captured
// execution (emu.Machine.StateHash at halt).
func (t *Trace) StateHash() [32]byte { return t.stateHash }

// ProgHash digests the parts of a program that determine its execution:
// name, text segment and initial data image. A trace records this hash
// and refuses to attach to a program with a different one.
func ProgHash(p *isa.Program) [32]byte {
	h := sha256.New()
	var w [8]byte
	binary.LittleEndian.PutUint32(w[:4], uint32(len(p.Name)))
	h.Write(w[:4])
	h.Write([]byte(p.Name))
	binary.LittleEndian.PutUint32(w[:4], uint32(len(p.Text)))
	h.Write(w[:4])
	for _, in := range p.Text {
		w[0] = byte(in.Op)
		w[1] = byte(in.Rd)
		w[2] = byte(in.Rs)
		w[3] = byte(in.Rt)
		binary.LittleEndian.PutUint32(w[4:8], uint32(in.Imm))
		h.Write(w[:8])
	}
	binary.LittleEndian.PutUint32(w[:4], uint32(len(p.Data)))
	h.Write(w[:4])
	h.Write(p.Data)
	return [32]byte(h.Sum(nil))
}

// entryPC mirrors emu.New: execution starts at "main" if present, else 0.
func entryPC(p *isa.Program) uint32 {
	if start, ok := p.Symbols["main"]; ok {
		return start
	}
	return 0
}

// Recorder incrementally captures the execution of a machine it does not
// own. It refuses — loudly, not by silent corruption — to record while
// the machine is speculating (a live emu.Checkpoint means subsequent
// steps may be rolled back, which would leave rolled-back records in the
// trace), and refuses permanently if the machine was stepped or restored
// behind its back (the recorded stream no longer matches the machine).
// Capture may resume after a checkpoint is restored or committed back to
// the exact instruction count the recorder last saw.
type Recorder struct {
	m      *emu.Machine
	prog   *isa.Program
	packed []byte
	n      uint64
	bounds []Boundary
	expect uint64 // machine.Executed after the last recorded step
	nextPC uint32
	err    error
}

// ErrSpeculating is returned by Recorder.Step while the machine has a
// live checkpoint: speculative execution must not enter the trace.
var ErrSpeculating = errors.New("trace: cannot capture while the machine is speculating (live checkpoint)")

// NewRecorder starts capturing m, which must be freshly created from p
// (nothing executed yet) and not speculating.
func NewRecorder(m *emu.Machine, p *isa.Program) (*Recorder, error) {
	if m.Executed != 0 {
		return nil, fmt.Errorf("trace: machine has already executed %d instructions; capture must start fresh", m.Executed)
	}
	if m.Speculating() {
		return nil, ErrSpeculating
	}
	return &Recorder{m: m, prog: p, nextPC: entryPC(p)}, nil
}

// Step executes one instruction on the underlying machine and appends it
// to the trace. See the Recorder type comment for the refusal contract.
func (r *Recorder) Step() (emu.Record, error) {
	if r.err != nil {
		return emu.Record{}, r.err
	}
	if r.m.Speculating() {
		return emu.Record{}, ErrSpeculating
	}
	if r.m.Executed != r.expect {
		r.err = fmt.Errorf("trace: machine executed %d instructions but the recorder captured %d; the machine was stepped or rolled back outside the recorder", r.m.Executed, r.expect)
		return emu.Record{}, r.err
	}
	rec, err := r.m.Step()
	if err != nil {
		if !errors.Is(err, emu.ErrHalted) {
			r.err = err
		}
		return rec, err
	}
	if rec.PC != r.nextPC {
		r.err = fmt.Errorf("trace: non-sequential record: executed pc %d, expected %d", rec.PC, r.nextPC)
		return rec, r.err
	}
	r.append(rec)
	r.expect = r.m.Executed
	r.nextPC = rec.NextPC
	return rec, nil
}

// append packs one record. The per-class layout here must mirror
// Reader.Step exactly; the differential tests in this package and in
// internal/verify pin the round trip against the emulator.
func (r *Recorder) append(rec emu.Record) {
	switch isa.ClassOf(rec.Inst.Op) {
	case isa.ClassLoad, isa.ClassStore:
		r.packed = binary.LittleEndian.AppendUint32(r.packed, rec.Addr)
	case isa.ClassBranch:
		var b byte
		if rec.Taken {
			b = 1
		}
		r.packed = append(r.packed, b)
	case isa.ClassJump:
		if rec.Inst.Op == isa.Jr || rec.Inst.Op == isa.Jalr {
			r.packed = binary.LittleEndian.AppendUint32(r.packed, rec.NextPC)
		}
	}
	r.n++
	if r.n%boundaryInterval == 0 {
		// A boundary is the replay cursor after r.n records: rec.NextPC is
		// the next instruction a Reader positioned here would decode.
		r.bounds = append(r.bounds, Boundary{Step: r.n, Pos: uint64(len(r.packed)), PC: rec.NextPC})
	}
}

// Finish seals the capture into an immutable Trace. The machine must
// have halted: a partial trace would replay as a program that ends
// mid-flight, which no consumer wants.
func (r *Recorder) Finish() (*Trace, error) {
	if r.err != nil {
		return nil, r.err
	}
	if !r.m.Halted() {
		return nil, fmt.Errorf("trace: capture finished before the program halted (%d instructions executed)", r.m.Executed)
	}
	out := make([]int32, len(r.m.Output))
	copy(out, r.m.Output)
	return &Trace{
		prog:      r.prog,
		entryPC:   entryPC(r.prog),
		packed:    r.packed,
		n:         r.n,
		bounds:    r.bounds,
		output:    out,
		stateHash: r.m.StateHash(),
	}, nil
}

// Capture executes p to completion on a fresh machine and returns its
// trace. maxInsts is a runaway guard (0 means no limit).
func Capture(p *isa.Program, maxInsts uint64) (*Trace, error) {
	m := emu.New(p)
	r, err := NewRecorder(m, p)
	if err != nil {
		return nil, err
	}
	for !m.Halted() {
		if maxInsts > 0 && m.Executed >= maxInsts {
			return nil, fmt.Errorf("trace: %s exceeded %d instructions during capture", p.Name, maxInsts)
		}
		if _, err := r.Step(); err != nil {
			return nil, fmt.Errorf("trace: capturing %s: %w", p.Name, err)
		}
	}
	return r.Finish()
}
