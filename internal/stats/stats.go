// Package stats provides the small statistical helpers used when
// aggregating experiment results.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean; every input must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geometric mean of no values")
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean requires positive values, got %g", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// MinMax returns the extrema (zeros for an empty slice).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Histogram is a fixed-bucket counter for small integer samples (e.g.
// instructions issued per cycle). Counts saturate at math.MaxUint64
// instead of wrapping: merging many large per-segment histograms (the
// time-parallel stitching path) must never silently overflow a total.
type Histogram struct {
	buckets []uint64
	total   uint64
}

// NewHistogram creates a histogram with buckets 0..max (values above max
// clamp into the last bucket).
func NewHistogram(max int) *Histogram {
	return &Histogram{buckets: make([]uint64, max+1)}
}

// satAdd returns a+b, clamped to math.MaxUint64 on overflow.
func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return math.MaxUint64
}

// Add records a sample.
func (h *Histogram) Add(v int) {
	h.AddN(v, 1)
}

// AddN records n identical samples (e.g. a run of idle cycles skipped in
// one step). Counts saturate rather than wrap.
func (h *Histogram) AddN(v int, n uint64) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v] = satAdd(h.buckets[v], n)
	h.total = satAdd(h.total, n)
}

// Clone returns an independent deep copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{buckets: make([]uint64, len(h.buckets)), total: h.total}
	copy(c.buckets, h.buckets)
	return c
}

// Merge adds every count of o into h (saturating). The receiver grows to
// cover o's buckets if o is wider; o's clamping bucket then keeps its
// identity rather than re-clamping into h's last bucket.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if len(o.buckets) > len(h.buckets) {
		grown := make([]uint64, len(o.buckets))
		copy(grown, h.buckets)
		h.buckets = grown
	}
	for v, n := range o.buckets {
		h.buckets[v] = satAdd(h.buckets[v], n)
	}
	h.total = satAdd(h.total, o.total)
}

// SubCounts removes o's counts from h (h must be a later snapshot of the
// same accumulation: every bucket of h must hold at least o's count).
// This is how a measurement window's histogram is cut out of a run that
// includes a discarded warmup prefix.
func (h *Histogram) SubCounts(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(o.buckets) != len(h.buckets) {
		return fmt.Errorf("stats: subtracting a %d-bucket histogram from a %d-bucket one", len(o.buckets), len(h.buckets))
	}
	for v, n := range o.buckets {
		if h.buckets[v] < n {
			return fmt.Errorf("stats: bucket %d underflow (%d - %d)", v, h.buckets[v], n)
		}
		h.buckets[v] -= n
	}
	if h.total < o.total {
		return fmt.Errorf("stats: total underflow (%d - %d)", h.total, o.total)
	}
	h.total -= o.total
	return nil
}

// Count returns the samples recorded in bucket v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Total returns the number of samples.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the mean sample value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s uint64
	for v, n := range h.buckets {
		s += uint64(v) * n
	}
	return float64(s) / float64(h.total)
}

// Percentile returns the p-th percentile bucket. p is clamped into
// [0, 100]: p=0 is defined as the minimum occupied bucket (and p=100,
// like any p above 100, the maximum), so the result is always a bucket
// that actually holds samples.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		// Without the clamp, target overshoots the sample count and the
		// scan falls off the end, returning the last bucket even when it
		// is empty.
		p = 100
	}
	target := uint64(math.Ceil(p / 100 * float64(h.total)))
	if target < 1 {
		// Without the clamp, p=0 makes every bucket satisfy cum >= 0 and
		// bucket 0 is returned even when it is empty.
		target = 1
	}
	var cum uint64
	for v, n := range h.buckets {
		cum += n
		if cum >= target {
			return v
		}
	}
	return len(h.buckets) - 1
}

// MarshalJSON encodes the histogram as its bucket counts, so run results
// holding histograms can be persisted (see internal/runcache).
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(h.buckets)
}

// UnmarshalJSON restores a histogram from its bucket counts.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var buckets []uint64
	if err := json.Unmarshal(data, &buckets); err != nil {
		return err
	}
	h.buckets = buckets
	h.total = 0
	for _, n := range buckets {
		h.total += n
	}
	return nil
}

// MeanCI95 returns the sample mean and the half-width of its 95%
// confidence interval (normal approximation, 1.96·s/√n with the unbiased
// sample standard deviation). The half-width is 0 for fewer than two
// samples — with one observation no spread is estimable, and the caller
// should treat the interval as unknown rather than tight. Used by the
// sampled (SMARTS-style) simulation mode to put error bars on IPC
// estimated from a subset of trace segments.
func MeanCI95(xs []float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	return mean, 1.96 * sd / math.Sqrt(float64(len(xs)))
}

// WeightedMeanCI95 returns the weighted mean of xs under the given
// non-negative weights and the half-width of its 95% confidence
// interval. The interval uses the effective sample size
// n_eff = (Σw)²/Σw² — unequal weights carry less independent
// information than their count suggests (n_eff equals len(xs) when all
// weights match, and approaches 1 when one weight dominates) — with the
// weighted unbiased variance and the normal 1.96 critical value, the
// same approximation MeanCI95 makes. The half-width is 0 when fewer
// than two samples carry weight. Used by the phase-clustered sampling
// mode, where each representative segment's IPC stands in for a
// different-sized share of the execution.
func WeightedMeanCI95(xs, ws []float64) (mean, half float64) {
	if len(xs) != len(ws) || len(xs) == 0 {
		return 0, 0
	}
	var sw, sw2 float64
	for _, w := range ws {
		if w < 0 {
			return 0, 0
		}
		sw += w
		sw2 += w * w
	}
	if sw == 0 {
		return 0, 0
	}
	for i, x := range xs {
		mean += ws[i] * x
	}
	mean /= sw
	neff := sw * sw / sw2
	if neff < 2 {
		return mean, 0
	}
	var ss float64
	for i, x := range xs {
		d := x - mean
		ss += ws[i] * d * d
	}
	variance := ss / sw * neff / (neff - 1)
	return mean, 1.96 * math.Sqrt(variance/neff)
}

// Median of a float slice (0 for empty).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
