package ce

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCheck compares a table's CSV rendering against its golden file,
// rewriting it under -update. Golden files freeze the delay-model
// calibration and the (deterministic) simulation results, so any
// behavioural drift in the simulator or models shows up as a diff.
func goldenCheck(t *testing.T, name string, tbl *report.Table) {
	t.Helper()
	got := tbl.CSV()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGolden -update .`): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden output.\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestGoldenDelayTables(t *testing.T) {
	cases := []struct {
		name string
		fn   func() (*report.Table, error)
	}{
		{"figure3", Figure3},
		{"figure5", Figure5},
		{"figure6", Figure6},
		{"figure8", Figure8},
		{"table1", Table1},
		{"table2", Table2},
		{"table4", Table4},
		{"memory", MemoryDelays},
		{"rename_schemes", RenameSchemes},
		{"area", AreaComparison},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tbl, err := c.fn()
			if err != nil {
				t.Fatal(err)
			}
			goldenCheck(t, c.name, tbl)
		})
	}
}

func TestGoldenFigure13(t *testing.T) {
	cmp, err := Figure13()
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "figure13", cmp.IPCTable("Figure 13"))
}

func TestGoldenMicrobench(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	tbl, err := MicrobenchCharacterization()
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "microbench", tbl)
}
