package ce

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestEngineMemoizesAcrossMatrices is the tentpole's core guarantee:
// a (config, workload) pair revisited by later sweeps — even under a
// different display name — is simulated exactly once per engine.
func TestEngineMemoizesAcrossMatrices(t *testing.T) {
	eng := NewEngine()
	ws := []string{"micro.chain", "micro.parallel"}
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, ws); err != nil {
		t.Fatal(err)
	}
	cs := eng.CacheStats()
	if cs.Misses != 2 || cs.Saved() != 0 {
		t.Fatalf("first matrix: %+v", cs)
	}
	// Rename the identical machine (Figure 17's "1cluster-1window" trick).
	renamed := BaselineConfig()
	renamed.Name = "1cluster-1window"
	res, err := eng.RunMatrix([]Config{renamed}, ws)
	if err != nil {
		t.Fatal(err)
	}
	cs = eng.CacheStats()
	if cs.Misses != 2 {
		t.Errorf("renamed twin re-simulated: %+v", cs)
	}
	if cs.Saved() != 2 {
		t.Errorf("expected 2 saved runs, got %+v", cs)
	}
	// The recalled result is relabeled for its new configuration.
	if res[0][0].Config != "1cluster-1window" {
		t.Errorf("cached stats kept stale label %q", res[0][0].Config)
	}

	// A different machine is not served from the cache.
	if _, err := eng.RunMatrix([]Config{DependenceConfig()}, ws[:1]); err != nil {
		t.Fatal(err)
	}
	if cs = eng.CacheStats(); cs.Misses != 3 {
		t.Errorf("distinct config did not miss: %+v", cs)
	}
}

// TestEngineDuplicatesWithinOneMatrix exercises single-flight coalescing:
// identical pairs inside one parallel matrix must still simulate once.
func TestEngineDuplicatesWithinOneMatrix(t *testing.T) {
	eng := NewEngine()
	a := BaselineConfig()
	b := BaselineConfig()
	b.Name = "baseline-twin"
	res, err := eng.RunMatrix([]Config{a, b}, []string{"micro.chain"})
	if err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Misses != 1 || cs.Saved() != 1 {
		t.Errorf("duplicate pair not coalesced: %+v", cs)
	}
	if res[0][0].Cycles != res[1][0].Cycles {
		t.Errorf("twins diverged: %d vs %d cycles", res[0][0].Cycles, res[1][0].Cycles)
	}
}

// TestEngineObserverAndMetrics checks the observability seam: every run
// (fresh or cached) is recorded and reported.
func TestEngineObserverAndMetrics(t *testing.T) {
	eng := NewEngine()
	var mu sync.Mutex
	var seen []RunMetrics
	eng.SetObserver(func(m RunMetrics) {
		mu.Lock()
		seen = append(seen, m)
		mu.Unlock()
	})
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.chain"}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.chain"}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("observer saw %d runs, want 2", len(seen))
	}
	if seen[0].Cached || !seen[1].Cached {
		t.Errorf("cached flags = %v, %v; want false, true", seen[0].Cached, seen[1].Cached)
	}
	first := seen[0]
	if first.Cycles <= 0 || first.IPC <= 0 || first.WallSeconds <= 0 || first.MCyclesPerSec <= 0 {
		t.Errorf("degenerate metrics for fresh run: %+v", first)
	}
	if got := eng.Metrics(); len(got) != 2 || got[0] != first {
		t.Errorf("Metrics() = %+v", got)
	}
	eng.ResetMetrics()
	if len(eng.Metrics()) != 0 {
		t.Error("ResetMetrics left entries")
	}
}

// TestEngineDiskCache checks -cache-dir semantics: a fresh engine over
// the same directory recalls results without simulating.
func TestEngineDiskCache(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "runs")
	eng := NewEngine()
	if err := eng.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	res1, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.chain"})
	if err != nil {
		t.Fatal(err)
	}

	eng2 := NewEngine()
	if err := eng2.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.RunMatrix([]Config{BaselineConfig()}, []string{"micro.chain"})
	if err != nil {
		t.Fatal(err)
	}
	cs := eng2.CacheStats()
	if cs.DiskHits != 1 || cs.Misses != 0 {
		t.Errorf("second engine stats = %+v, want 1 disk hit", cs)
	}
	a, b := res1[0][0], res2[0][0]
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.IPC() != b.IPC() {
		t.Errorf("disk-recalled stats diverged: %+v vs %+v", a, b)
	}
	if a.IssuedPerCycle.Mean() != b.IssuedPerCycle.Mean() {
		t.Errorf("issue histogram lost: %v vs %v", a.IssuedPerCycle.Mean(), b.IssuedPerCycle.Mean())
	}
}

// TestRunMatrixErrorPropagation: a failing pair must fail the matrix —
// never a silent zero Stats row.
func TestRunMatrixErrorPropagation(t *testing.T) {
	eng := NewEngine()
	bad := BaselineConfig()
	bad.Name = "malformed"
	bad.MaxInFlight = 0 // rejected by Config.Validate at pipeline.New
	if _, err := eng.RunMatrix([]Config{BaselineConfig(), bad}, []string{"micro.chain"}); err == nil {
		t.Error("matrix with malformed config succeeded")
	}
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.chain", "nonesuch"}); err == nil {
		t.Error("matrix with unknown workload succeeded")
	}
	// Errors must also surface when the failing pair is already memoized.
	if _, err := eng.RunMatrix([]Config{bad}, []string{"micro.chain"}); err == nil {
		t.Error("memoized failure returned success")
	}
}

// TestRunMatrixFirstErrorDeterministic: with several failing pairs the
// matrix must always report the first one in matrix order, not whichever
// worker lost the race — sweep callers surface the error to users, and a
// nondeterministic message turns one bug into an apparent flaky suite.
func TestRunMatrixFirstErrorDeterministic(t *testing.T) {
	// Two structurally distinct malformed configs (distinct cache keys),
	// so each carries its own error message.
	first := BaselineConfig()
	first.Name = "bad-first"
	first.MaxInFlight = 0 // rejected by Config.Validate at pipeline.New
	second := BaselineConfig()
	second.Name = "bad-second"
	second.FetchQueueSize = 0 // also rejected, with a different message
	for i := 0; i < 20; i++ {
		eng := NewEngine()
		_, err := eng.RunMatrix([]Config{first, second}, []string{"micro.chain"})
		if err == nil {
			t.Fatal("matrix with two malformed configs succeeded")
		}
		if !strings.Contains(err.Error(), "bad-first") {
			t.Fatalf("iteration %d: got error for a later pair: %v", i, err)
		}
	}
}

// TestRunMatrixConcurrentEngines hammers one engine from several
// goroutines; run under -race this is the satellite's race-cleanliness
// check for the worker pool and cache.
func TestRunMatrixConcurrentEngines(t *testing.T) {
	eng := NewEngine()
	eng.SetObserver(func(RunMetrics) {})
	cfgs := []Config{BaselineConfig(), DependenceConfig()}
	ws := []string{"micro.chain", "micro.parallel"}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := eng.RunMatrix(cfgs, ws)
			if err != nil {
				errs <- err
				return
			}
			if res[0][0].Committed == 0 || res[1][1].Committed == 0 {
				errs <- errEmptyRow
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Misses != 4 {
		t.Errorf("4 unique pairs, %d misses: %+v", cs.Misses, cs)
	}
}

type emptyRowError struct{}

func (emptyRowError) Error() string { return "zero Stats row in successful matrix" }

var errEmptyRow = emptyRowError{}

// TestSpeedupEstimateReusesFigure15 verifies the satellite claim: after
// Figure 15 has run, SpeedupEstimate performs zero additional
// simulations — its whole matrix is served from the shared pool.
func TestSpeedupEstimateReusesFigure15(t *testing.T) {
	if _, err := Figure15(); err != nil {
		t.Fatal(err)
	}
	before := DefaultEngine.CacheStats()
	if _, _, err := SpeedupEstimate(); err != nil {
		t.Fatal(err)
	}
	after := DefaultEngine.CacheStats()
	if after.Misses != before.Misses || after.Uncacheable != before.Uncacheable {
		t.Errorf("SpeedupEstimate simulated %d extra runs (uncacheable +%d)",
			after.Misses-before.Misses, after.Uncacheable-before.Uncacheable)
	}
	if served := after.Saved() - before.Saved(); served != uint64(2*len(Workloads())) {
		t.Errorf("SpeedupEstimate served %d runs from cache, want %d", served, 2*len(Workloads()))
	}
}
