// Package delaymodel implements the critical-path delay models of Section 4
// of "Complexity-Effective Superscalar Processors" (Palacharla, Jouppi &
// Smith, ISCA 1997): register rename logic, issue-window wakeup logic,
// selection logic, operand-bypass logic, and the dependence-based
// microarchitecture's reservation table (Section 5.3).
//
// Each model follows the functional form derived in the paper:
//
//   - rename:   each component c0 + c1·IW + c2·IW² (quadratic term small);
//   - wakeup:   tag drive  c0 + (c1+c2·IW)·WS + (c3+c4·IW+c5·IW²)·WS²,
//     with the quadratic term computed as the distributed RC of
//     the tag line from its geometry (package circuit);
//     tag match and match-OR linear in issue width;
//   - select:   c0 + c1·log₄(WS) over a tree of 4-input arbiters;
//   - bypass:   ½·Rmetal·Cmetal·L², L from the functional-unit/register-file
//     stack layout of Figure 9;
//   - reservation table: a small RAM indexed by physical register number.
//
// The gate-level constants are calibrated per technology to the paper's
// published Hspice results (Tables 1, 2 and 4; Figures 3, 5, 6 and 8), so
// the model reproduces the paper's anchor values by construction and
// interpolates/extrapolates with the paper's own functional forms.
package delaymodel

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/vlsi"
)

// coeff3 is a delay component of the form c0 + c1·w + c2·w².
type coeff3 struct{ c0, c1, c2 float64 }

func (c coeff3) at(w float64) float64 { return c.c0 + c.c1*w + c.c2*w*w }

// renameCoeffs holds the per-component rename coefficients (issue-width
// polynomial, picoseconds).
type renameCoeffs struct {
	decoder, wordline, bitline, senseAmp coeff3
}

// wakeupCoeffs holds the wakeup-logic coefficients.
type wakeupCoeffs struct {
	// Match OR: or0 + or1·IW (pure logic).
	or0, or1 float64
	// Tag match: tm0 + tm1·IW (matchline length grows with issue width).
	tm0, tm1 float64
	// Tag drive: td0 (buffer intrinsic) + tdLin·IW·WS (comparator load on
	// the tag line) + distributed RC of the tag line itself. The tag line
	// length is WS·cellHeight, with cellHeight = tagCellPitch·IW λ (each
	// additional result tag adds matchlines, growing every CAM cell).
	td0, tdLin   float64
	tagCellPitch float64 // λ of CAM cell height per unit issue width
}

// selectCoeffs holds the selection-logic coefficients. The total is
// req0 + root + grant0 + (reqSlope+grantSlope)·log₄(WS).
type selectCoeffs struct {
	req0, reqSlope     float64
	root               float64
	grant0, grantSlope float64
}

// calib is the full calibration for one technology.
type calib struct {
	rename renameCoeffs
	wakeup wakeupCoeffs
	sel    selectCoeffs
}

// Calibrated constants, fitted to the paper's Hspice data (see package
// comment). Keyed by vlsi.Technology.Name.
var calibrations = map[string]calib{
	vlsi.Tech080.Name: {
		rename: renameCoeffs{
			decoder:  coeff3{450, 3.0, 0},
			wordline: coeff3{330, 4.8, 0.13},
			bitline:  coeff3{319.2, 18.0, 0.40},
			senseAmp: coeff3{363, 1.0, 0},
		},
		wakeup: wakeupCoeffs{
			or0: 215, or1: 60,
			tm0: 60, tm1: 20,
			td0: 380, tdLin: 0.204,
			tagCellPitch: 20.89,
		},
		sel: selectCoeffs{req0: 600, reqSlope: 20, root: 700, grant0: 499.4, grantSlope: 20},
	},
	vlsi.Tech035.Name: {
		rename: renameCoeffs{
			decoder:  coeff3{150, 3.0, 0},
			wordline: coeff3{105, 4.8, 0.12},
			bitline:  coeff3{163.5, 11.0, 0.30},
			senseAmp: coeff3{122.8, 1.0, 0},
		},
		wakeup: wakeupCoeffs{
			or0: 79.5, or1: 22.2,
			tm0: 25, tm1: 11,
			td0: 135, tdLin: 0.147,
			tagCellPitch: 18.54,
		},
		sel: selectCoeffs{req0: 270, reqSlope: 10, root: 310, grant0: 224.8, grantSlope: 10},
	},
	vlsi.Tech018.Name: {
		rename: renameCoeffs{
			decoder:  coeff3{70, 2.0, 0},
			wordline: coeff3{50, 3.5, 0.08},
			bitline:  coeff3{109, 8.72, 0.254},
			senseAmp: coeff3{55.77, 1.0, 0},
		},
		wakeup: wakeupCoeffs{
			or0: 43, or1: 12,
			tm0: 12, tm1: 6,
			td0: 110, tdLin: 0.13,
			tagCellPitch: 13.61,
		},
		sel: selectCoeffs{req0: 100, reqSlope: 4, root: 120, grant0: 83, grantSlope: 4},
	},
}

func calibFor(t vlsi.Technology) (calib, error) {
	c, ok := calibrations[t.Name]
	if !ok {
		return calib{}, fmt.Errorf("delaymodel: no calibration for technology %q", t.Name)
	}
	return c, nil
}

// RenameDelay is the rename-logic critical path, broken into the components
// of Figure 3. All values in picoseconds.
type RenameDelay struct {
	Decoder  float64
	Wordline float64
	Bitline  float64
	SenseAmp float64
}

// Total returns the rename critical-path delay.
func (d RenameDelay) Total() float64 { return d.Decoder + d.Wordline + d.Bitline + d.SenseAmp }

// Rename models the RAM-scheme map table of Section 4.1 (the scheme used in
// the MIPS R10000). Issue width affects the delay through the number of map
// table ports, which lengthens predecode, wordline and bitline wires.
func Rename(t vlsi.Technology, issueWidth int) (RenameDelay, error) {
	c, err := calibFor(t)
	if err != nil {
		return RenameDelay{}, err
	}
	if issueWidth < 1 {
		return RenameDelay{}, fmt.Errorf("delaymodel: issue width %d < 1", issueWidth)
	}
	w := float64(issueWidth)
	return RenameDelay{
		Decoder:  c.rename.decoder.at(w),
		Wordline: c.rename.wordline.at(w),
		Bitline:  c.rename.bitline.at(w),
		SenseAmp: c.rename.senseAmp.at(w),
	}, nil
}

// WakeupDelay is the wakeup-logic critical path, broken into the components
// of Figure 6. All values in picoseconds.
type WakeupDelay struct {
	TagDrive float64
	TagMatch float64
	MatchOR  float64
}

// Total returns the wakeup critical-path delay.
func (d WakeupDelay) Total() float64 { return d.TagDrive + d.TagMatch + d.MatchOR }

// Wakeup models the CAM-style issue window of Section 4.2: result tags are
// broadcast on tag lines spanning the window; each entry compares them
// against its operand tags and ORs the match lines.
func Wakeup(t vlsi.Technology, issueWidth, windowSize int) (WakeupDelay, error) {
	c, err := calibFor(t)
	if err != nil {
		return WakeupDelay{}, err
	}
	if issueWidth < 1 || windowSize < 1 {
		return WakeupDelay{}, fmt.Errorf("delaymodel: invalid issue width %d / window size %d", issueWidth, windowSize)
	}
	iw := float64(issueWidth)
	ws := float64(windowSize)
	// The tag line runs the full height of the CAM array. Every entry is
	// tagCellPitch·IW λ tall (one matchline pair per result tag).
	tagLine := circuit.Wire{Tech: t, LenLamda: ws * c.wakeup.tagCellPitch * iw}
	drive := c.wakeup.td0 + c.wakeup.tdLin*iw*ws + tagLine.DistributedDelay()
	return WakeupDelay{
		TagDrive: drive,
		TagMatch: c.wakeup.tm0 + c.wakeup.tm1*iw,
		MatchOR:  c.wakeup.or0 + c.wakeup.or1*iw,
	}, nil
}

// SelectDelay is the selection-logic critical path, broken into the
// components of Figure 8. All values in picoseconds.
type SelectDelay struct {
	RequestPropagation float64
	Root               float64
	GrantPropagation   float64
}

// Total returns the selection critical-path delay.
func (d SelectDelay) Total() float64 {
	return d.RequestPropagation + d.Root + d.GrantPropagation
}

// Select models the tree of 4-input arbiter cells of Section 4.3. Request
// signals propagate up the tree, the root grants, and the grant propagates
// back down, so delay grows with log₄ of the window size.
func Select(t vlsi.Technology, windowSize int) (SelectDelay, error) {
	c, err := calibFor(t)
	if err != nil {
		return SelectDelay{}, err
	}
	if windowSize < 1 {
		return SelectDelay{}, fmt.Errorf("delaymodel: window size %d < 1", windowSize)
	}
	depth := math.Log(float64(windowSize)) / math.Log(4)
	return SelectDelay{
		RequestPropagation: c.sel.req0 + c.sel.reqSlope*depth,
		Root:               c.sel.root,
		GrantPropagation:   c.sel.grant0 + c.sel.grantSlope*depth,
	}, nil
}

// Layout constants for the bypass network of Figure 9, in λ. The result
// wires span a stack of issueWidth functional units plus the register file.
// A functional unit's height is its base height plus per-result-bus tracks
// (the operand MUX fan-in grows with issue width); the register file's
// height is numRegs cells, each 3·IW ports tall (two read ports and one
// write port per issue slot).
const (
	fuBaseHeightLambda     = 2505.0
	fuPerIssueLambda       = 250.0
	regfileCellPitchLambda = 4.5
	regfileRegs            = 120
	regfilePortsPerIssue   = 3
)

// BypassWireLengthLambda returns the modelled result-wire length in λ for
// the given issue width.
func BypassWireLengthLambda(issueWidth int) float64 {
	iw := float64(issueWidth)
	fu := iw * (fuBaseHeightLambda + fuPerIssueLambda*iw)
	rf := regfileRegs * regfilePortsPerIssue * iw * regfileCellPitchLambda
	return fu + rf
}

// BypassDelay is the bypass critical path (Table 1).
type BypassDelay struct {
	WireLengthLambda float64
	Delay            float64 // ps
}

// Bypass models the result-wire broadcast of Section 4.4. The delay is the
// distributed RC of the result wire and, under the paper's scaling model,
// is the same for all three technologies at a fixed issue width.
func Bypass(t vlsi.Technology, issueWidth int) (BypassDelay, error) {
	if issueWidth < 1 {
		return BypassDelay{}, fmt.Errorf("delaymodel: issue width %d < 1", issueWidth)
	}
	l := BypassWireLengthLambda(issueWidth)
	w := circuit.Wire{Tech: t, LenLamda: l}
	return BypassDelay{WireLengthLambda: l, Delay: w.DistributedDelay()}, nil
}

// ReservationTable models the dependence-based microarchitecture's
// reservation table (Section 5.3, Table 4): one bit per physical register,
// laid out as ceil(physRegs/8) entries of 8 bits with a column MUX.
// The paper reports 0.18 µm values; other technologies scale the (purely
// logic) delay by the technology's fitted logic-speed ratio.
func ReservationTable(t vlsi.Technology, issueWidth, physRegs int) (float64, error) {
	if _, err := calibFor(t); err != nil {
		return 0, err
	}
	if issueWidth < 1 || physRegs < 1 {
		return 0, fmt.Errorf("delaymodel: invalid issue width %d / physical registers %d", issueWidth, physRegs)
	}
	entries := (physRegs + 7) / 8
	base := 114.1 + 4.6*float64(entries) + 8.0*float64(issueWidth)
	return base * t.LogicScale, nil
}

// Overall aggregates the Table 2 view for a design point: rename delay,
// window (wakeup + select) delay, and bypass delay.
type Overall struct {
	Tech       vlsi.Technology
	IssueWidth int
	WindowSize int
	Rename     RenameDelay
	Wakeup     WakeupDelay
	Select     SelectDelay
	Bypass     BypassDelay
}

// WakeupSelect returns the combined window-logic delay, the paper's
// "wakeup + select" column.
func (o Overall) WakeupSelect() float64 { return o.Wakeup.Total() + o.Select.Total() }

// CriticalPath returns the slowest of the three structures — the paper's
// measure of the cycle-time limit imposed by the structures studied.
func (o Overall) CriticalPath() float64 {
	return math.Max(o.Rename.Total(), math.Max(o.WakeupSelect(), o.Bypass.Delay))
}

// Analyze computes the Table 2 row for a design point.
func Analyze(t vlsi.Technology, issueWidth, windowSize int) (Overall, error) {
	ren, err := Rename(t, issueWidth)
	if err != nil {
		return Overall{}, err
	}
	wak, err := Wakeup(t, issueWidth, windowSize)
	if err != nil {
		return Overall{}, err
	}
	sel, err := Select(t, windowSize)
	if err != nil {
		return Overall{}, err
	}
	byp, err := Bypass(t, issueWidth)
	if err != nil {
		return Overall{}, err
	}
	return Overall{
		Tech:       t,
		IssueWidth: issueWidth,
		WindowSize: windowSize,
		Rename:     ren,
		Wakeup:     wak,
		Select:     sel,
		Bypass:     byp,
	}, nil
}

// DependenceBasedClock estimates the cycle time of the dependence-based
// microarchitecture at a design point, per Section 5.3: the window logic is
// replaced by the reservation-table access plus FIFO-head selection, so the
// critical stage becomes the slower of the rename logic and the (much
// smaller) wakeup+select of a machine whose window is only the FIFO heads.
// Section 5.5 bounds it by the wakeup+select delay of a conventional 4-way,
// 32-entry window machine; we return both the optimistic (rename-limited)
// and conservative (4-way window) estimates.
type DependenceBasedClock struct {
	Optimistic   float64 // rename-limited, Section 5.3
	Conservative float64 // 4-way 32-entry window bound, Section 5.5
}

// ClockEstimate computes the dependence-based clock estimates for an 8-way
// machine in the given technology.
func ClockEstimate(t vlsi.Technology) (DependenceBasedClock, error) {
	ren, err := Rename(t, 8)
	if err != nil {
		return DependenceBasedClock{}, err
	}
	wak, err := Wakeup(t, 4, 32)
	if err != nil {
		return DependenceBasedClock{}, err
	}
	sel, err := Select(t, 32)
	if err != nil {
		return DependenceBasedClock{}, err
	}
	return DependenceBasedClock{
		Optimistic:   ren.Total(),
		Conservative: wak.Total() + sel.Total(),
	}, nil
}
