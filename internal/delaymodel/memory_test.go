package delaymodel

import (
	"testing"
	"testing/quick"

	"repro/internal/vlsi"
)

func TestRegFilePortScaling(t *testing.T) {
	// Farkas et al.'s headline: access time grows with port count, and
	// superlinearly (wires grow in both dimensions).
	for _, tech := range vlsi.Technologies() {
		d4, err := RegFile(tech, 120, 12) // 4-way: 3 ports per slot
		if err != nil {
			t.Fatal(err)
		}
		d8, err := RegFile(tech, 120, 24) // 8-way
		if err != nil {
			t.Fatal(err)
		}
		if d8.Total() <= d4.Total() {
			t.Errorf("%s: 24-port file (%.1f ps) not slower than 12-port (%.1f ps)",
				tech.Name, d8.Total(), d4.Total())
		}
		// Superlinear in ports: the increment from 12→24 ports exceeds
		// the increment from 1→12.
		d1, err := RegFile(tech, 120, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d8.Total()-d4.Total() <= (d4.Total()-d1.Total())/11*12/2 {
			t.Logf("%s: port scaling: 1→12: %.1f, 12→24: %.1f", tech.Name,
				d4.Total()-d1.Total(), d8.Total()-d4.Total())
		}
	}
}

func TestRegFileCapacityScaling(t *testing.T) {
	small, err := RegFile(vlsi.Tech018, 64, 12)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RegFile(vlsi.Tech018, 256, 12)
	if err != nil {
		t.Fatal(err)
	}
	if large.Total() <= small.Total() {
		t.Errorf("256-entry file (%.1f) not slower than 64-entry (%.1f)", large.Total(), small.Total())
	}
	if large.Bitline <= small.Bitline {
		t.Error("bitline delay did not grow with register count")
	}
}

func TestClusteredRegFileFaster(t *testing.T) {
	// Section 5.4: per-cluster register file copies have fewer ports and
	// are therefore faster than the central file.
	cmp, err := CompareClusteredRegFile(vlsi.Tech018, 120, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CentralPorts != 24 || cmp.ClusterPorts != 13 {
		t.Errorf("ports = %d central / %d cluster, want 24/13", cmp.CentralPorts, cmp.ClusterPorts)
	}
	if cmp.ClusterDelay.Total() >= cmp.CentralDelay.Total() {
		t.Errorf("cluster copy (%.1f ps) not faster than central file (%.1f ps)",
			cmp.ClusterDelay.Total(), cmp.CentralDelay.Total())
	}
}

func TestCacheAccessScaling(t *testing.T) {
	small, err := CacheAccess(vlsi.Tech018, 8<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := CacheAccess(vlsi.Tech018, 128<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if large.Total() <= small.Total() {
		t.Errorf("128KB cache (%.1f) not slower than 8KB (%.1f)", large.Total(), small.Total())
	}
	direct, err := CacheAccess(vlsi.Tech018, 32<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	assoc, err := CacheAccess(vlsi.Tech018, 32<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if assoc.Total() <= direct.Total() {
		t.Errorf("4-way cache (%.1f) not slower than direct-mapped (%.1f)", assoc.Total(), direct.Total())
	}
	if assoc.TagCompare <= direct.TagCompare || assoc.MuxDrive <= direct.MuxDrive {
		t.Error("associativity did not grow tag/mux components")
	}
}

func TestCachePipelinable(t *testing.T) {
	// Section 6: the baseline 32KB cache takes more than one 0.18µm
	// window-logic cycle but can be pipelined into a small number of
	// stages.
	d, err := CacheAccess(vlsi.Tech018, 32<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	win, err := Analyze(vlsi.Tech018, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := PipelineStages(d.Total(), win.WakeupSelect())
	if err != nil {
		t.Fatal(err)
	}
	if stages < 1 || stages > 4 {
		t.Errorf("32KB cache needs %d stages at the window-logic clock, want 1–4", stages)
	}
}

func TestPipelineStages(t *testing.T) {
	cases := []struct {
		delay, cycle float64
		want         int
	}{
		{100, 100, 1}, {101, 100, 2}, {350, 100, 4}, {0, 100, 0},
	}
	for _, c := range cases {
		got, err := PipelineStages(c.delay, c.cycle)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("PipelineStages(%g, %g) = %d, want %d", c.delay, c.cycle, got, c.want)
		}
	}
	if _, err := PipelineStages(100, 0); err == nil {
		t.Error("zero cycle time accepted")
	}
	if _, err := PipelineStages(-1, 100); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestMemoryModelErrors(t *testing.T) {
	bad := vlsi.Technology{Name: "1.0um"}
	if _, err := RegFile(bad, 120, 12); err == nil {
		t.Error("RegFile with unknown technology succeeded")
	}
	if _, err := RegFile(vlsi.Tech018, 0, 12); err == nil {
		t.Error("RegFile with zero registers succeeded")
	}
	if _, err := CacheAccess(vlsi.Tech018, 512, 2); err == nil {
		t.Error("sub-1KB cache accepted")
	}
	if _, err := CacheAccess(bad, 32<<10, 2); err == nil {
		t.Error("CacheAccess with unknown technology succeeded")
	}
	if _, err := CompareClusteredRegFile(vlsi.Tech018, 120, 2, 4); err == nil {
		t.Error("more clusters than issue slots accepted")
	}
}

func TestPropertyRegFileMonotone(t *testing.T) {
	f := func(regsRaw, portsRaw uint8) bool {
		regs := int(regsRaw)%200 + 32
		ports := int(portsRaw)%30 + 1
		a, err1 := RegFile(vlsi.Tech018, regs, ports)
		b, err2 := RegFile(vlsi.Tech018, regs+8, ports)
		c, err3 := RegFile(vlsi.Tech018, regs, ports+1)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return a.Total() <= b.Total() && a.Total() <= c.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIssueAreaComparison(t *testing.T) {
	a, err := IssueAreaEstimate(vlsi.Tech018, 8, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	// The FIFO bank's storage is plain RAM: far smaller than the CAM
	// window at 8-way.
	if a.FIFOs >= a.Window {
		t.Errorf("FIFO storage (%.0f λ²) not smaller than CAM window (%.0f λ²)", a.FIFOs, a.Window)
	}
	if a.DependenceTotal() >= a.WindowTotal() {
		t.Errorf("dependence-based issue logic (%.0f λ²) not smaller than window machine (%.0f λ²)",
			a.DependenceTotal(), a.WindowTotal())
	}
	// CAM area grows with issue width; FIFO storage does not.
	a4, err := IssueAreaEstimate(vlsi.Tech018, 4, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if a.Window <= a4.Window {
		t.Error("CAM window area did not grow with issue width")
	}
	if a.FIFOs != a4.FIFOs {
		t.Error("FIFO storage area should be issue-width independent")
	}
	if _, err := IssueAreaEstimate(vlsi.Tech018, 0, 64, 128); err == nil {
		t.Error("zero issue width accepted")
	}
	if _, err := IssueAreaEstimate(vlsi.Technology{Name: "x"}, 8, 64, 128); err == nil {
		t.Error("unknown technology accepted")
	}
}
