package celint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// vetConfig mirrors the fields of cmd/go's per-package vet config file
// (the JSON handed to -vettool binaries; see x/tools unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion implements -V=full. cmd/go hashes this line into the
// build cache key, so it must be stable for a given binary: embed the
// content hash of the executable itself.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	fmt.Fprintf(stdout, "%s version devel buildID=%x\n", exe, h.Sum(nil)[:16])
	return 0
}

// vetMode analyzes the single compilation unit described by cfgPath,
// following the unitchecker protocol: diagnostics to stderr, exit 1 when
// any are found, and always produce the VetxOutput file — the encoded
// facts this unit's pass exported — so cmd/go's action cache has its
// output and dependent units can import the facts.
//
// cmd/go drives the tool over every dependency of the vetted packages
// with VetxOnly set, which is what makes the analysis interprocedural:
// the dependency pass computes and serializes facts (diagnostics are
// suppressed — the user asked to vet their packages, not the whole
// dependency closure), and the dependent's pass reads them back through
// PackageVetx.
func vetMode(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(stderr, "celint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	writeVetx := func(encoded []byte) bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, encoded, 0o666); err != nil {
			fmt.Fprintln(stderr, "celint:", err)
			return false
		}
		return true
	}
	if stdlibUnit(cfg) {
		// Standard-library unit: the analyzers special-case the stdlib
		// surface they care about (os/io blocking sets, env error sources)
		// instead of deriving facts from its source, so skip the
		// typecheck and hand back an empty fact set.
		if !writeVetx(nil) {
			return 2
		}
		return 0
	}
	facts := analysisFactsFromVetx(cfg, stderr)
	if facts == nil {
		return 2
	}
	layer := facts.NewLayer()
	pkg, err := typecheckVetUnit(cfg)
	if err != nil {
		writeVetx(nil)
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	findings, err := runAnalyzers(pkg, layer)
	if err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	encoded, err := layer.Encode()
	if err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	if !writeVetx(encoded) {
		return 2
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, diagnostics suppressed
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// stdlibUnit reports whether the unit lives in GOROOT.
func stdlibUnit(cfg *vetConfig) bool {
	if cfg.Standard[cfg.ImportPath] {
		return true
	}
	goroot := runtime.GOROOT()
	if goroot == "" {
		return false
	}
	rel, err := filepath.Rel(filepath.Join(goroot, "src"), cfg.Dir)
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

// analysisFactsFromVetx decodes every dependency's exported facts. The
// files are read in sorted order for determinism (last write wins in the
// store, and distinct units never export facts for the same object, but
// determinism is cheap insurance). Returns nil after printing on error.
func analysisFactsFromVetx(cfg *vetConfig, stderr io.Writer) *analysis.FactSet {
	facts := analysis.NewFactSet()
	paths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			fmt.Fprintf(stderr, "celint: reading facts of %s: %v\n", p, err)
			return nil
		}
		if err := facts.Decode(data); err != nil {
			fmt.Fprintf(stderr, "celint: decoding facts of %s: %v\n", p, err)
			return nil
		}
	}
	return facts
}

// typecheckVetUnit parses and type-checks the unit from cfg, resolving
// imports via the export files cmd/go listed in PackageFile.
func typecheckVetUnit(cfg *vetConfig) (*loadedPackage, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}
	return &loadedPackage{
		importPath: cfg.ImportPath,
		fset:       fset,
		files:      files,
		types:      tpkg,
		info:       info,
	}, nil
}
