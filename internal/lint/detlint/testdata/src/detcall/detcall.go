// Package detcall is bit-deterministic by contract and calls into an
// unmarked library: transitive clock reads must be findings at the call
// site.
//
//ce:deterministic
package detcall

import "clocklib"

func use() int64 {
	a := clocklib.Stamp()   // want "call to clocklib.Stamp is transitively nondeterministic \\(Stamp: time.Now reads the host clock\\)"
	b := clocklib.Elapsed() // want "call to clocklib.Elapsed is transitively nondeterministic \\(Elapsed → Stamp: time.Now reads the host clock\\)"
	c := clocklib.Silenced()
	d := clocklib.Seam()
	e := clocklib.Pure(4)
	f := clocklib.Stamp() //ce:nondet-ok boot banner timestamp, not simulated time
	return a + b + c + d + e + f
}
