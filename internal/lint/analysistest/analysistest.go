// Package analysistest runs a celint analyzer over fixture packages and
// checks its diagnostics against // want "regexp" comment expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <dir>/src/<importpath>/ as ordinary Go files. A
// line producing diagnostics carries a trailing comment of the form
//
//	// want "first message regexp" "second message regexp"
//
// with one quoted regexp per expected diagnostic on that line. Every
// diagnostic must be expected and every expectation must be matched.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// TestData returns the calling test's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package and applies the analyzer, reporting
// mismatches between produced diagnostics and // want expectations as
// test failures. It returns the diagnostics per package for tests that
// make extra assertions (e.g. on suggested fixes).
//
// When the analyzer declares FactTypes, Run mirrors the celint drivers'
// bottom-up module analysis: before a listed package is analyzed, the
// analyzer first runs fact-only over the package's fixture dependencies
// (recursively, in dependency order), and every pass's exported facts are
// round-tripped through the gob encoder — so a fixture exercising
// cross-package findings also proves the facts survive vetx
// serialization. Want-comments in a dependency are only checked when the
// dependency itself is listed in pkgPaths (list "base" before "top" to
// check both sides of a propagation).
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) map[string][]analysis.Diagnostic {
	t.Helper()
	if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	ld := newLoader(dir)
	facts := analysis.NewFactSet()
	analysis.RegisterFactTypes([]*analysis.Analyzer{a})
	analyzed := make(map[string]bool)

	// runPass applies the analyzer to one fixture package with the shared
	// fact store, serializing the pass's fresh facts back into it.
	runPass := func(pkg *fixturePkg, report func(analysis.Diagnostic)) error {
		layer := facts.NewLayer()
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     pkg.files,
			Pkg:       pkg.types,
			TypesInfo: pkg.info,
			Report:    report,
		}
		if len(a.FactTypes) > 0 {
			pass.ImportObjectFact = func(obj types.Object, f analysis.Fact) bool {
				return layer.ImportObjectFact(a.Name, obj, f)
			}
			pass.ExportObjectFact = func(obj types.Object, f analysis.Fact) {
				layer.ExportObjectFact(a.Name, obj, f)
			}
		}
		if _, err := a.Run(pass); err != nil {
			return err
		}
		blob, err := layer.Encode()
		if err != nil {
			return err
		}
		return facts.Decode(blob)
	}

	// ensureFacts runs the analyzer fact-only over a fixture package and
	// its fixture dependencies, bottom-up.
	var ensureFacts func(path string) error
	ensureFacts = func(path string) error {
		if analyzed[path] {
			return nil
		}
		analyzed[path] = true
		pkg, err := ld.load(path)
		if err != nil {
			return err
		}
		for _, imp := range pkg.types.Imports() {
			if ld.isFixture(imp.Path()) {
				if err := ensureFacts(imp.Path()); err != nil {
					return err
				}
			}
		}
		return runPass(pkg, func(analysis.Diagnostic) {})
	}

	out := make(map[string][]analysis.Diagnostic)
	for _, path := range pkgPaths {
		path := path
		t.Run(path, func(t *testing.T) {
			pkg, err := ld.load(path)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", path, err)
			}
			if len(a.FactTypes) > 0 {
				for _, imp := range pkg.types.Imports() {
					if ld.isFixture(imp.Path()) {
						if err := ensureFacts(imp.Path()); err != nil {
							t.Fatalf("analyzing dependencies of %s: %v", path, err)
						}
					}
				}
			}
			analyzed[path] = true
			var diags []analysis.Diagnostic
			if err := runPass(pkg, func(d analysis.Diagnostic) { diags = append(diags, d) }); err != nil {
				t.Fatalf("%s: %v", a.Name, err)
			}
			check(t, ld.fset, pkg.files, diags)
			out[path] = diags
		})
	}
	return out
}

// fixturePkg is one loaded-and-type-checked fixture package.
type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader loads fixture packages from dir/src, resolving imports of other
// fixture packages recursively and everything else through the compiler
// importer (stdlib export data).
type loader struct {
	dir    string
	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*fixturePkg
}

func newLoader(dir string) *loader {
	return &loader{
		dir:    dir,
		fset:   token.NewFileSet(),
		std:    importer.Default(),
		loaded: make(map[string]*fixturePkg),
	}
}

// isFixture reports whether the import path resolves to a fixture
// package under dir/src.
func (ld *loader) isFixture(path string) bool {
	_, err := os.Stat(filepath.Join(ld.dir, "src", path))
	return err == nil
}

// Import implements types.Importer so fixture packages can import each
// other (keylint's multi-package test needs this).
func (ld *loader) Import(path string) (*types.Package, error) {
	if ld.isFixture(path) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := ld.loaded[path]; ok {
		return pkg, nil
	}
	pkgDir := filepath.Join(ld.dir, "src", path)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := &types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &fixturePkg{files: files, types: tpkg, info: info}
	ld.loaded[path] = pkg
	return pkg, nil
}

// expectation is one // want entry.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	text string // source text of the regexp, for failure messages
	hit  bool
}

// wantRe matches both comment forms; the block form lets fixtures attach
// an expectation to a line that ends in a //-comment (e.g. a //ce:
// directive that is itself expected to be flagged).
var wantRe = regexp.MustCompile(`^(?://|/\*)\s*want\s+(.*?)(?:\s*\*/)?$`)

// check compares diagnostics against the // want comments in files.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				for _, lit := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
						continue
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, rx: rx, text: lit,
					})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.text)
		}
	}
}

// splitQuoted extracts the double-quoted Go string literals from a want
// payload: `"a" "b c"` → [`"a"`, `"b c"`].
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start+1:]
		end := 0
		for {
			i := strings.IndexByte(rest[end:], '"')
			if i < 0 {
				return out // unterminated; caller reports via Unquote failure
			}
			end += i
			// Count the backslashes immediately before the quote; an odd
			// run means it is escaped.
			bs := 0
			for j := end - 1; j >= 0 && rest[j] == '\\'; j-- {
				bs++
			}
			if bs%2 == 0 {
				break
			}
			end++
		}
		out = append(out, s[start:start+1+end+1])
		s = rest[end+1:]
	}
}
