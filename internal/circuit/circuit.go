// Package circuit provides the low-level delay estimation primitives used by
// the structure models in package delaymodel: distributed-RC wire delay
// (Elmore), lumped RC trees, and logical-effort gate chains.
//
// The paper's methodology simulated hand-optimized CMOS circuits in Hspice.
// We cannot run Hspice, so this package supplies the standard first-order
// analytical equivalents; the structure models calibrate their gate-level
// constants against the paper's published Hspice numbers and use this
// package for everything geometry-dependent (wire RC).
package circuit

import (
	"fmt"
	"math"

	"repro/internal/vlsi"
)

// Wire is a metal wire segment of a given length (in λ) in a technology.
type Wire struct {
	Tech     vlsi.Technology
	LenLamda float64
}

// DistributedDelay returns the intrinsic delay of the wire treated as a
// distributed RC line: ½·R·C·L². This is the dominant term for long result
// and tag wires, and under the paper's scaling model it is independent of
// technology for a fixed λ-length.
func (w Wire) DistributedDelay() float64 {
	return 0.5 * w.Tech.WireRC() * w.LenLamda * w.LenLamda
}

// Resistance returns the total wire resistance in ohms.
func (w Wire) Resistance() float64 {
	return w.Tech.RPerUm * w.Tech.LambdaToUm(w.LenLamda)
}

// Capacitance returns the total wire capacitance in femtofarads.
func (w Wire) Capacitance() float64 {
	return w.Tech.CPerUm * w.Tech.LambdaToUm(w.LenLamda)
}

// LoadedDelay returns the Elmore delay of the wire driving an additional
// lumped load capacitance (fF) at its far end, given a driver resistance
// (Ω) at its near end:
//
//	t = Rdrv·(Cwire + Cload) + R·C/2 + Rwire·Cload     (result in ps)
func (w Wire) LoadedDelay(driverOhms, loadFF float64) float64 {
	cw := w.Capacitance()
	rw := w.Resistance()
	// Ω·fF = 10⁻³ ps.
	return 1e-3 * (driverOhms*(cw+loadFF) + 0.5*rw*cw + rw*loadFF)
}

// RCNode is one node of a lumped RC tree. Resistance is the resistance of
// the branch from this node's parent; Capacitance is the lumped capacitance
// at the node.
type RCNode struct {
	Resistance  float64 // Ω
	Capacitance float64 // fF
	Children    []*RCNode
}

// ElmoreDelay computes the Elmore delay (ps) from the tree root to the given
// target node. The target must be reachable from root; otherwise an error is
// returned.
func ElmoreDelay(root, target *RCNode) (float64, error) {
	path, ok := findPath(root, target)
	if !ok {
		return 0, fmt.Errorf("circuit: target node not reachable from root")
	}
	onPath := make(map[*RCNode]bool, len(path))
	for _, n := range path {
		onPath[n] = true
	}
	// Elmore: sum over every node k of C(k) times the resistance of the
	// portion of the root→target path shared with the root→k path.
	var delay float64
	var walk func(n *RCNode, sharedR float64)
	walk = func(n *RCNode, sharedR float64) {
		r := sharedR
		if onPath[n] {
			r += n.Resistance
		}
		delay += n.Capacitance * r
		for _, c := range n.Children {
			walk(c, r)
		}
	}
	walk(root, 0)
	return delay * 1e-3, nil // Ω·fF → ps
}

func findPath(root, target *RCNode) ([]*RCNode, bool) {
	if root == target {
		return []*RCNode{root}, true
	}
	for _, c := range root.Children {
		if p, ok := findPath(c, target); ok {
			return append([]*RCNode{root}, p...), true
		}
	}
	return nil, false
}

// Gate describes a logic gate for logical-effort delay estimation.
type Gate struct {
	// LogicalEffort g: ratio of the gate's input capacitance to that of
	// an inverter delivering the same output current (INV=1, NAND2≈4/3,
	// NOR2≈5/3, ...).
	LogicalEffort float64
	// ParasiticDelay p in units of τ (INV≈1, NANDn≈n, NORn≈n).
	ParasiticDelay float64
}

// Standard gates.
var (
	Inverter = Gate{LogicalEffort: 1, ParasiticDelay: 1}
	NAND2    = Gate{LogicalEffort: 4.0 / 3.0, ParasiticDelay: 2}
	NAND3    = Gate{LogicalEffort: 5.0 / 3.0, ParasiticDelay: 3}
	NAND4    = Gate{LogicalEffort: 6.0 / 3.0, ParasiticDelay: 4}
	NOR2     = Gate{LogicalEffort: 5.0 / 3.0, ParasiticDelay: 2}
	NOR3     = Gate{LogicalEffort: 7.0 / 3.0, ParasiticDelay: 3}
	NOR4     = Gate{LogicalEffort: 9.0 / 3.0, ParasiticDelay: 4}
)

// Chain is a path of gates driving a final load, evaluated with the method
// of logical effort. Tau is the technology time unit in ps (the delay of a
// fanout-of-1 inverter driving its own parasitics is 2·Tau under p=1).
type Chain struct {
	Tau   float64
	Gates []Gate
	// ElectricalEffort H is Cload/Cin for the whole path.
	ElectricalEffort float64
	// BranchingEffort B accounts for fanout to side loads along the path.
	BranchingEffort float64
}

// MinDelay returns the minimum achievable path delay in ps, assuming each
// stage is sized optimally (equal stage effort f = F^(1/N)).
func (c Chain) MinDelay() float64 {
	n := float64(len(c.Gates))
	if n == 0 {
		return 0
	}
	g := 1.0
	p := 0.0
	for _, gt := range c.Gates {
		g *= gt.LogicalEffort
		p += gt.ParasiticDelay
	}
	h := c.ElectricalEffort
	if h <= 0 {
		h = 1
	}
	b := c.BranchingEffort
	if b <= 0 {
		b = 1
	}
	f := g * h * b
	return c.Tau * (n*math.Pow(f, 1/n) + p)
}

// OptimalStages returns the number of inverter stages that minimizes the
// delay of a buffer chain driving a path effort F (≈ log₄ F, at least 1).
func OptimalStages(pathEffort float64) int {
	if pathEffort <= 1 {
		return 1
	}
	n := int(math.Round(math.Log(pathEffort) / math.Log(4)))
	if n < 1 {
		n = 1
	}
	return n
}

// BufferChainDelay returns the delay (ps) of an optimally sized inverter
// chain driving electrical effort h with the given τ.
func BufferChainDelay(tau, h float64) float64 {
	n := OptimalStages(h)
	c := Chain{Tau: tau, Gates: make([]Gate, n), ElectricalEffort: h}
	for i := range c.Gates {
		c.Gates[i] = Inverter
	}
	return c.MinDelay()
}

// RepeatedWireDelay returns the delay (ps) of a wire of the given λ-length
// broken into nSegments by repeaters, each repeater adding repeaterPs of
// gate delay. For nSegments ≤ 1 this is the plain distributed delay. Long
// broadcast wires (tag lines, bypass busses) cannot always be repeated —
// the paper's structures broadcast to taps along the wire — but this is
// provided for what-if studies.
func RepeatedWireDelay(w Wire, nSegments int, repeaterPs float64) float64 {
	if nSegments <= 1 {
		return w.DistributedDelay()
	}
	seg := Wire{Tech: w.Tech, LenLamda: w.LenLamda / float64(nSegments)}
	return float64(nSegments)*seg.DistributedDelay() + float64(nSegments-1)*repeaterPs
}
