// Command celint runs the simulator's custom static analyzers (detlint,
// keylint, hotlint) over Go packages.
//
// Standalone:
//
//	go run ./cmd/celint ./...
//
// As a vet tool (integrates with the build cache and go test's vet
// phase):
//
//	go build -o /tmp/celint ./cmd/celint
//	go vet -vettool=/tmp/celint ./...
package main

import (
	"os"

	"repro/internal/lint/celint"
)

func main() {
	os.Exit(celint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
