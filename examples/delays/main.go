// Delays explores the Section 4 delay models: for each technology it finds
// the largest window a designer could afford at a given cycle-time budget,
// and shows where the critical path moves as issue width grows — the
// paper's "complexity trends" viewed through the library API.
//
// Run with: go run ./examples/delays
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("Exploring the complexity models (Section 4)")

	// 1. Critical structure versus issue width at 0.18um, 64-entry window.
	tech, err := ce.TechnologyByName("0.18um")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCritical structure by issue width (0.18um, 64-entry window):")
	fmt.Printf("%8s %10s %14s %10s %14s\n", "width", "rename", "wakeup+select", "bypass", "critical path")
	for _, iw := range []int{2, 4, 6, 8, 12, 16} {
		o, err := ce.AnalyzeDelays(tech, iw, 64)
		if err != nil {
			log.Fatal(err)
		}
		crit := "window"
		switch o.CriticalPath() {
		case o.Rename.Total():
			crit = "rename"
		case o.Bypass.Delay:
			crit = "bypass"
		}
		fmt.Printf("%8d %9.0fps %13.0fps %9.0fps %9.0fps (%s)\n",
			iw, o.Rename.Total(), o.WakeupSelect(), o.Bypass.Delay, o.CriticalPath(), crit)
	}
	fmt.Println("The bypass network overtakes the window logic between 4- and 8-wide —")
	fmt.Println("the observation that motivates clustering (Section 4.5).")

	// 2. Largest window under a clock budget, per technology.
	fmt.Println("\nLargest 8-way window whose wakeup+select fits a cycle-time budget:")
	fmt.Printf("%8s", "budget")
	for _, t := range ce.Technologies() {
		fmt.Printf(" %10s", t.Name)
	}
	fmt.Println()
	for _, budgetPs := range []float64{400, 800, 1600, 2400, 3200} {
		fmt.Printf("%6.0fps", budgetPs)
		for _, t := range ce.Technologies() {
			best := -1
			for ws := 8; ws <= 256; ws *= 2 {
				o, err := ce.AnalyzeDelays(t, 8, ws)
				if err != nil {
					log.Fatal(err)
				}
				if o.WakeupSelect() <= budgetPs {
					best = ws
				}
			}
			if best < 0 {
				fmt.Printf(" %10s", "-")
			} else {
				fmt.Printf(" %10d", best)
			}
		}
		fmt.Println()
	}

	// 3. The dependence-based machine's clock advantage per technology.
	fmt.Println("\nDependence-based clock advantage (Section 5.5):")
	for _, t := range ce.Technologies() {
		ratio, err := ce.ClockRatio(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %.0f%% faster clock than the 8-way window machine\n", t.Name, (ratio-1)*100)
	}
}
