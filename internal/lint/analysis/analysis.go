// Package analysis is a self-contained re-implementation of the core of
// golang.org/x/tools/go/analysis, providing just the surface the celint
// analyzers need: an Analyzer descriptor, a per-package Pass, and
// Diagnostics with optional suggested fixes.
//
// The module is intentionally dependency-free (the build environment has
// no module proxy), so it cannot import x/tools. The types here mirror
// the x/tools API shape field-for-field; if the dependency ever becomes
// available, the analyzers port by switching one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("detlint").
	Name string
	// Doc is the one-paragraph help text; its first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
	// FactTypes lists the fact types this analyzer exports and imports.
	// Each entry must be a pointer to a gob-serializable struct. Declaring
	// fact types is what opts the analyzer into bottom-up analysis of
	// dependency packages.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. It must be non-nil.
	Report func(Diagnostic)
	// ImportObjectFact copies the fact of type *fact previously exported
	// for obj (by this analyzer, in this or a dependency package) into
	// *fact and reports whether one existed. Wired by the driver when the
	// analyzer declares FactTypes; nil otherwise.
	ImportObjectFact func(obj types.Object, fact Fact) bool
	// ExportObjectFact records a fact for obj, visible to later passes of
	// the same analyzer over packages that import this one. obj must
	// belong to the package under analysis. Wired by the driver when the
	// analyzer declares FactTypes; nil otherwise.
	ExportObjectFact func(obj types.Object, fact Fact)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos token.Pos
	// End optionally marks the end of the offending range.
	End token.Pos
	// Category is an optional short rule identifier within the analyzer
	// ("map-order", "hot-make"), used by tests and tooling.
	Category string
	Message  string
	// SuggestedFixes optionally carry machine-applicable edits.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one candidate resolution of a Diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Validate checks analyzer metadata (mirrors x/tools analysis.Validate in
// spirit: names must be unique and non-empty, Run non-nil, fact types
// pointers to structs).
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		switch {
		case a == nil:
			return fmt.Errorf("analysis: nil analyzer")
		case a.Name == "":
			return fmt.Errorf("analysis: analyzer with empty name")
		case a.Run == nil:
			return fmt.Errorf("analysis: analyzer %s has nil Run", a.Name)
		case seen[a.Name]:
			return fmt.Errorf("analysis: duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
		for _, f := range a.FactTypes {
			if err := validateFactType(f); err != nil {
				return fmt.Errorf("analysis: analyzer %s: %v", a.Name, err)
			}
		}
	}
	return nil
}
