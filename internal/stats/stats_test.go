package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean = %g, want 4", got)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean(nil) succeeded")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("GeoMean with negative input succeeded")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g, %g", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Errorf("MinMax(nil) = %g, %g", lo, hi)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd median = %g", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %g", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %g", got)
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Error("Median sorted its input in place")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int{0, 1, 1, 2, 8, 100, -5} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Count(1) != 2 {
		t.Errorf("count(1) = %d", h.Count(1))
	}
	if h.Count(8) != 2 { // 8 and the clamped 100
		t.Errorf("count(8) = %d", h.Count(8))
	}
	if h.Count(0) != 2 { // 0 and the clamped -5
		t.Errorf("count(0) = %d", h.Count(0))
	}
	if h.Count(-1) != 0 || h.Count(99) != 0 {
		t.Error("out-of-range Count not zero")
	}
	if got := h.Percentile(50); got != 1 {
		t.Errorf("P50 = %d, want 1", got)
	}
	if got := h.Percentile(100); got != 8 {
		t.Errorf("P100 = %d, want 8", got)
	}
	if NewHistogram(4).Mean() != 0 {
		t.Error("empty histogram mean not 0")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.Add(2)
	h.Add(4)
	if got := h.Mean(); got != 3 {
		t.Errorf("mean = %g", got)
	}
}

func TestPropertyMeanWithinRange(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		lo, hi := MinMax(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyGeoMeanLEArithMean(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g, err := GeoMean(xs)
		return err == nil && g <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPercentileBounds is the regression test for the p=0 bug: with an
// empty bucket 0, Percentile(0) used to return 0 (target computed to 0,
// so the very first bucket satisfied cum >= target). p=0 is defined as
// the minimum occupied bucket and p=100 as the maximum.
func TestPercentileBounds(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{3, 5, 5, 9} {
		h.Add(v)
	}
	if got := h.Percentile(0); got != 3 {
		t.Errorf("P0 = %d, want 3 (minimum occupied bucket)", got)
	}
	if got := h.Percentile(100); got != 9 {
		t.Errorf("P100 = %d, want 9 (maximum occupied bucket)", got)
	}
	// When bucket 0 is occupied, P0 is genuinely 0.
	h.Add(0)
	if got := h.Percentile(0); got != 0 {
		t.Errorf("P0 with occupied bucket 0 = %d, want 0", got)
	}
	// Empty histogram: every percentile reports bucket 0.
	e := NewHistogram(4)
	if e.Percentile(0) != 0 || e.Percentile(100) != 0 {
		t.Error("empty histogram percentile not 0")
	}
}

// TestPercentileClamp is the regression test for out-of-range p: p>100
// used to overshoot the sample count, walk off the occupied buckets and
// return len(buckets)-1 even when that bucket was empty — violating the
// documented "always an occupied bucket" contract. p is now clamped into
// [0, 100].
func TestPercentileClamp(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{2, 3, 3} {
		h.Add(v)
	}
	// Bucket 10 is empty; every p above 100 must report the maximum
	// occupied bucket, exactly like p=100.
	for _, p := range []float64{100.0001, 150, 1e9, math.Inf(1)} {
		if got := h.Percentile(p); got != 3 {
			t.Errorf("Percentile(%g) = %d, want 3 (maximum occupied bucket)", p, got)
		}
	}
	// Negative p clamps to the p=0 definition: the minimum occupied bucket.
	for _, p := range []float64{-0.0001, -50, math.Inf(-1)} {
		if got := h.Percentile(p); got != 2 {
			t.Errorf("Percentile(%g) = %d, want 2 (minimum occupied bucket)", p, got)
		}
	}
}

// TestHistogramMerge covers the segment-stitching path: per-segment
// histograms merged into one must agree with a single accumulation.
func TestHistogramMerge(t *testing.T) {
	whole := NewHistogram(8)
	a, b := NewHistogram(8), NewHistogram(8)
	for i, v := range []int{0, 1, 1, 3, 5, 8, 8, 2} {
		whole.Add(v)
		if i < 4 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	m := NewHistogram(8)
	m.Merge(a)
	m.Merge(b)
	if m.Total() != whole.Total() || m.Mean() != whole.Mean() {
		t.Errorf("merged total/mean %d/%g, want %d/%g", m.Total(), m.Mean(), whole.Total(), whole.Mean())
	}
	for v := 0; v <= 8; v++ {
		if m.Count(v) != whole.Count(v) {
			t.Errorf("merged count(%d) = %d, want %d", v, m.Count(v), whole.Count(v))
		}
	}
	// Merging a wider histogram grows the receiver instead of re-clamping
	// the wide one's buckets.
	narrow, wide := NewHistogram(2), NewHistogram(6)
	wide.Add(5)
	narrow.Merge(wide)
	if narrow.Count(5) != 1 || narrow.Count(2) != 0 {
		t.Errorf("wide merge re-clamped: count(5)=%d count(2)=%d", narrow.Count(5), narrow.Count(2))
	}
	// Merging nil is a no-op.
	narrow.Merge(nil)
	if narrow.Total() != 1 {
		t.Errorf("nil merge changed total to %d", narrow.Total())
	}
}

// TestHistogramSaturation pins that AddN and Merge clamp at MaxUint64
// instead of wrapping: stitching many large per-segment counts must
// never silently overflow a total.
func TestHistogramSaturation(t *testing.T) {
	h := NewHistogram(4)
	h.AddN(1, math.MaxUint64-5)
	h.AddN(1, 100) // would wrap
	if h.Total() != math.MaxUint64 || h.Count(1) != math.MaxUint64 {
		t.Errorf("AddN wrapped: total %d, count %d", h.Total(), h.Count(1))
	}
	a, b := NewHistogram(4), NewHistogram(4)
	a.AddN(2, math.MaxUint64-1)
	b.AddN(2, math.MaxUint64-1)
	a.Merge(b)
	if a.Total() != math.MaxUint64 || a.Count(2) != math.MaxUint64 {
		t.Errorf("Merge wrapped: total %d, count %d", a.Total(), a.Count(2))
	}
	// A saturated total still yields a sane (if approximate) mean.
	if m := a.Mean(); math.IsNaN(m) || m < 0 {
		t.Errorf("saturated mean = %g", m)
	}
}

// TestHistogramCloneSub covers the warmup-discard path: a later snapshot
// minus an earlier one leaves exactly the in-window counts, and Clone is
// a deep copy.
func TestHistogramCloneSub(t *testing.T) {
	h := NewHistogram(4)
	h.Add(1)
	h.Add(2)
	warm := h.Clone()
	h.Add(2)
	h.Add(4)
	if warm.Count(2) != 1 {
		t.Error("Clone is not a deep copy")
	}
	if err := h.SubCounts(warm); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 2 || h.Count(2) != 1 || h.Count(4) != 1 || h.Count(1) != 0 {
		t.Errorf("after SubCounts: total %d, counts %d/%d/%d", h.Total(), h.Count(1), h.Count(2), h.Count(4))
	}
	// Underflow (subtracting a later snapshot from an earlier one) is an
	// error, not a wrap.
	early, late := NewHistogram(2), NewHistogram(2)
	late.Add(1)
	if err := early.SubCounts(late); err == nil {
		t.Error("SubCounts underflow not detected")
	}
	mismatched := NewHistogram(9)
	if err := late.SubCounts(mismatched); err == nil {
		t.Error("SubCounts width mismatch not detected")
	}
	if err := late.SubCounts(nil); err != nil {
		t.Errorf("SubCounts(nil): %v", err)
	}
}

func TestMeanCI95(t *testing.T) {
	mean, half := MeanCI95([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %g, want 5", mean)
	}
	// Sample sd of this classic set is ≈2.138; 1.96·sd/√8 ≈ 1.4815.
	if math.Abs(half-1.4815) > 0.01 {
		t.Errorf("half-width = %g, want ≈1.4815", half)
	}
	if _, h := MeanCI95([]float64{3}); h != 0 {
		t.Errorf("single-sample half-width = %g, want 0", h)
	}
	if m, h := MeanCI95(nil); m != 0 || h != 0 {
		t.Errorf("empty MeanCI95 = %g ± %g", m, h)
	}
}

// TestHistogramJSONRoundTrip guards the encoding used by the on-disk
// run cache.
func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 2, 2, 4} {
		h.Add(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Total() != h.Total() || got.Count(2) != 2 || got.Percentile(100) != 4 {
		t.Errorf("round trip lost data: %+v", got)
	}
}
