package clitest

// End-to-end tests of cesweepd: boot the real binary, talk to it over
// HTTP, and exercise exactly the lifecycle properties a long-lived
// server depends on — request coalescing, corrupt-store recovery,
// graceful shutdown draining, and the cross-process lease protocol that
// lets two daemons share one store without duplicating work.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// daemon is one running cesweepd under test.
type daemon struct {
	t   *testing.T
	cmd *exec.Cmd
	url string
	// done receives the process's exit error once; exited closes when the
	// process is gone (safe to select on any number of times).
	done   chan error
	exited chan struct{}

	mu     sync.Mutex
	stderr bytes.Buffer
}

// startDaemon boots cesweepd on a free port and waits for its listening
// announcement. Extra args are appended after -addr/-quiet.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	d := &daemon{t: t, done: make(chan error, 1), exited: make(chan struct{})}
	d.cmd = exec.Command(filepath.Join(binDir, "cesweepd"),
		append([]string{"-addr", "localhost:0", "-quiet"}, args...)...)
	stderr, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The first stderr line announces the resolved address; keep draining
	// afterwards so the daemon never blocks on a full pipe.
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		d.mu.Lock()
		fmt.Fprintln(&d.stderr, line) //ce:lock-ok d.stderr is an in-memory buffer
		d.mu.Unlock()
		if i := strings.Index(line, "listening on "); i >= 0 {
			d.url = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if d.url == "" {
		d.cmd.Process.Kill()
		d.cmd.Wait()
		t.Fatalf("cesweepd never announced its address; stderr:\n%s", d.stderrText())
	}
	go func() {
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			fmt.Fprintln(&d.stderr, line) //ce:lock-ok d.stderr is an in-memory buffer
			d.mu.Unlock()
		}
		err := d.cmd.Wait()
		d.done <- err
		close(d.exited)
	}()
	t.Cleanup(func() {
		select {
		case <-d.exited:
		default:
			d.cmd.Process.Kill()
			<-d.exited
		}
	})
	return d
}

func (d *daemon) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// shutdown sends SIGTERM and waits for a clean exit.
func (d *daemon) shutdown() error {
	d.t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-d.done:
		return err
	case <-time.After(2 * time.Minute):
		d.cmd.Process.Kill()
		return fmt.Errorf("cesweepd did not exit within 2m of SIGTERM; stderr:\n%s", d.stderrText())
	}
}

func (d *daemon) get(path string) (int, []byte, error) {
	resp, err := http.Get(d.url + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func (d *daemon) postRun(body string) (int, []byte, error) {
	resp, err := http.Post(d.url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// metrics fetches and decodes GET /metrics.
func (d *daemon) metrics() (map[string]map[string]json.Number, error) {
	code, body, err := d.get("/metrics")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics = %d: %s", code, body)
	}
	var m map[string]map[string]json.Number
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("metrics not JSON: %w\n%s", err, body)
	}
	return m, nil
}

func counter(t *testing.T, m map[string]map[string]json.Number, section, field string) int64 {
	t.Helper()
	v, ok := m[section][field]
	if !ok {
		return 0
	}
	n, err := v.Int64()
	if err != nil {
		t.Fatalf("metrics %s.%s = %q not an integer", section, field, v)
	}
	return n
}

func TestDaemonServesRuns(t *testing.T) {
	d := startDaemon(t)
	code, body, err := d.get("/healthz")
	if err != nil || code != http.StatusOK {
		t.Fatalf("healthz = %d, %v", code, err)
	}
	code, body, err = d.postRun(`{"config":"baseline","workload":"micro.chain"}`)
	if err != nil || code != http.StatusOK {
		t.Fatalf("POST /run = %d, %v: %s", code, err, body)
	}
	var m struct {
		IPC    float64 `json:"ipc"`
		Cached bool    `json:"cached"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("run response not JSON: %v\n%s", err, body)
	}
	if m.IPC <= 0 || m.Cached {
		t.Fatalf("implausible first run: %s", body)
	}
	if code, body, _ := d.postRun(`{"config":"bogus","workload":"micro.chain"}`); code != http.StatusBadRequest {
		t.Fatalf("bad config = %d: %s", code, body)
	}
}

// TestDaemonCoalescesConcurrentRuns: two identical POSTs racing into a
// cold daemon must produce exactly one simulation.
func TestDaemonCoalescesConcurrentRuns(t *testing.T) {
	d := startDaemon(t)
	const n = 4
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, err := d.postRun(`{"config":"baseline","workload":"micro.parallel"}`)
			if err != nil || code != http.StatusOK {
				errs <- fmt.Errorf("POST /run = %d, %v: %s", code, err, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m, err := d.metrics()
	if err != nil {
		t.Fatal(err)
	}
	if misses := counter(t, m, "cache", "misses"); misses != 1 {
		t.Fatalf("cache.misses = %d after %d identical concurrent requests, want 1\nmetrics: %v", misses, n, m)
	}
	if runs := counter(t, m, "server", "run_requests"); runs != n {
		t.Fatalf("server.run_requests = %d, want %d", runs, n)
	}
}

// TestDaemonCorruptCacheRecovery: a corrupted run-cache entry must not
// poison a daemon booted over the store — the entry is dropped and
// recomputed, not trusted and not fatal.
func TestDaemonCorruptCacheRecovery(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "runs")
	req := `{"config":"dependence","workload":"micro.chase"}`

	d := startDaemon(t, "-cache-dir", cacheDir)
	code, body, err := d.postRun(req)
	if err != nil || code != http.StatusOK {
		t.Fatalf("seed POST /run = %d, %v: %s", code, err, body)
	}
	var want struct {
		Cycles int64 `json:"cycles"`
	}
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}
	if err := d.shutdown(); err != nil {
		t.Fatalf("first daemon shutdown: %v", err)
	}

	files, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache entries persisted (err %v)", err)
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte(`{"truncated`), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d2 := startDaemon(t, "-cache-dir", cacheDir)
	code, body, err = d2.postRun(req)
	if err != nil || code != http.StatusOK {
		t.Fatalf("POST /run over corrupt cache = %d, %v: %s", code, err, body)
	}
	var got struct {
		Cycles int64 `json:"cycles"`
		Cached bool  `json:"cached"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Cached {
		t.Fatalf("corrupt entry served as a cache hit: %s", body)
	}
	if got.Cycles != want.Cycles {
		t.Fatalf("recomputed run diverged: %d cycles, want %d", got.Cycles, want.Cycles)
	}
	m, err := d2.metrics()
	if err != nil {
		t.Fatal(err)
	}
	if misses := counter(t, m, "cache", "misses"); misses != 1 {
		t.Fatalf("cache.misses = %d, want 1 (recompute)", misses)
	}
}

// TestDaemonGracefulShutdown: SIGTERM while a simulation is in flight
// must drain — the response completes and the daemon exits 0.
func TestDaemonGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("real workload simulation in -short mode")
	}
	d := startDaemon(t)
	type result struct {
		code int
		body []byte
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		code, body, err := d.postRun(`{"config":"baseline","workload":"compress"}`)
		resc <- result{code, body, err}
	}()
	// Give the request time to reach the simulator, then pull the plug.
	time.Sleep(150 * time.Millisecond)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	r := <-resc
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight request not drained: %d, %v: %s", r.code, r.err, r.body)
	}
	var m struct {
		IPC float64 `json:"ipc"`
	}
	if err := json.Unmarshal(r.body, &m); err != nil || m.IPC <= 0 {
		t.Fatalf("drained response implausible (%v): %s", err, r.body)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after drain: %v\nstderr:\n%s", err, d.stderrText())
		}
	case <-time.After(2 * time.Minute):
		t.Fatalf("daemon did not exit after draining; stderr:\n%s", d.stderrText())
	}
	if !strings.Contains(d.stderrText(), "final metrics") {
		t.Errorf("no final metrics summary on stderr:\n%s", d.stderrText())
	}
}

// TestTwoDaemonsShareStore: two daemons over one -cache-dir/-trace-dir,
// hit with the same design point simultaneously, must simulate it once
// between them — the cross-process lease protocol end to end.
func TestTwoDaemonsShareStore(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "runs")
	traceDir := filepath.Join(dir, "traces")
	d1 := startDaemon(t, "-cache-dir", cacheDir, "-trace-dir", traceDir)
	d2 := startDaemon(t, "-cache-dir", cacheDir, "-trace-dir", traceDir)

	req := `{"config":"baseline","workload":"micro.stream"}`
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, d := range []*daemon{d1, d2} {
		wg.Add(1)
		go func(d *daemon) {
			defer wg.Done()
			code, body, err := d.postRun(req)
			if err != nil || code != http.StatusOK {
				errs <- fmt.Errorf("POST to %s = %d, %v: %s", d.url, code, err, body)
			}
		}(d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var misses, diskHits int64
	for _, d := range []*daemon{d1, d2} {
		m, err := d.metrics()
		if err != nil {
			t.Fatal(err)
		}
		misses += counter(t, m, "cache", "misses")
		diskHits += counter(t, m, "cache", "disk_hits")
	}
	if misses != 1 {
		t.Fatalf("two daemons simulated the same point %d times, want 1 (disk hits %d)", misses, diskHits)
	}
	if diskHits != 1 {
		t.Fatalf("losing daemon did not read the winner's result from disk (disk hits %d)", diskHits)
	}
	// No lease files may survive the race.
	locks, err := filepath.Glob(filepath.Join(cacheDir, "*.lock"))
	if err != nil {
		t.Fatal(err)
	}
	if len(locks) != 0 {
		t.Fatalf("stale lease files left behind: %v", locks)
	}
}
