package ce

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/runcache"
	"repro/internal/trace"
)

// RunMetrics records the observability data for one simulation run (or
// cache hit) performed by an Engine.
type RunMetrics struct {
	// Config is the configuration's display name, Workload the benchmark.
	Config   string `json:"config"`
	Workload string `json:"workload"`
	// Cached reports whether the result came from the run cache (memory,
	// disk, or a coalesced in-flight computation) instead of a fresh
	// simulation.
	Cached bool `json:"cached"`
	// Cycles and Committed are the simulated totals; IPC is their ratio.
	Cycles    int64   `json:"cycles"`
	Committed uint64  `json:"committed"`
	IPC       float64 `json:"ipc"`
	// EmuSteps mirrors Stats.EmuSteps: dynamic instructions the execution
	// source produced — identical between lockstep and replay drive.
	EmuSteps uint64 `json:"emu_steps"`
	// WallSeconds is the host time this run took; for cached results it
	// is the (negligible) lookup time.
	WallSeconds float64 `json:"wall_seconds"`
	// MCyclesPerSec is the simulator's throughput in millions of
	// simulated cycles per host second (0 for cached results).
	MCyclesPerSec float64 `json:"mcycles_per_sec"`
	// HostAllocs and HostWallSeconds mirror Stats.HostAllocs and
	// Stats.HostWallSeconds: heap allocations and wall time inside the
	// simulator's Run itself (excluding cache lookup and engine
	// overhead). For cached results they describe the original
	// computation, not this recall.
	HostAllocs      uint64  `json:"host_allocs"`
	HostWallSeconds float64 `json:"host_wall_seconds"`
	// Replayed reports whether the simulation was driven by a shared
	// pre-captured trace from the engine's trace pool instead of lockstep
	// functional execution (false for cached results).
	Replayed bool `json:"replayed,omitempty"`
	// Ganged reports that the replay read shared decoded slabs (gang
	// replay) instead of streaming a private reader. The statistics are
	// byte-identical either way; only the host cost differs.
	Ganged bool `json:"ganged,omitempty"`
	// CaptureSeconds is the time this run spent performing its workload's
	// one-time trace capture — reported only by the run that owned the
	// capture, so summing it across a sweep counts each capture once.
	// WallSeconds excludes it: capture is a shared, per-workload cost
	// (reported in TraceStats), not part of any one configuration's
	// simulation cost.
	CaptureSeconds float64 `json:"capture_seconds,omitempty"`
	// CaptureWaitSeconds is time spent blocked on a capture owned (and
	// reported) by another run — the other gang members' view of the same
	// capture. Also excluded from WallSeconds.
	CaptureWaitSeconds float64 `json:"capture_wait_seconds,omitempty"`
	// Segments describes the segment-parallel plan this run used, when
	// one was active (nil for monolithic and cached results).
	Segments *SegmentMetrics `json:"segments,omitempty"`
}

// CacheStats re-exports the run cache counters.
type CacheStats = runcache.Stats

// Engine is the sweep orchestration layer: it runs (config, workload)
// matrices through a shared content-addressed run cache and records
// per-run metrics. Every figure, ablation and frontier evaluation routed
// through one Engine shares one result pool, so duplicated design points
// (the baseline appears in Figures 13, 15, 17, the speedup estimate and
// the frontier) are simulated exactly once per process.
type Engine struct {
	cache *runcache.Cache

	mu       sync.Mutex
	observer func(RunMetrics)
	runs     []RunMetrics

	// Trace pool (tracepool.go): one shared execution trace per workload,
	// captured single-flight, driving replay-capable simulations.
	traceMu  sync.Mutex
	traces   map[string]*traceEntry
	traceDir string
	noReplay bool
	// traceShared enables the cross-process capture lease on traceDir
	// (SetSharedStore).
	traceShared bool
	tstats      TraceStats
	// traceWarned dedups per-workload diagnostics (warnOnce).
	traceWarned map[string]bool

	// Segment plan (segmented.go): shard replay-driven runs into
	// segments timed in parallel. Guarded by traceMu with the rest of
	// the replay configuration.
	segments    int
	segWarmup   int64
	segSample   int
	segAdaptive bool
	segPhases   int

	// Gang replay (tracepool.go): concurrent replay runs of one workload
	// share decoded chunk slabs through one engine-global cache, created
	// lazily at the first gang run. Guarded by traceMu.
	noGang     bool
	slabBudget int64
	slabs      *trace.SlabCache
}

// NewEngine returns an Engine with an empty in-memory run cache.
// Segment warmup defaults to the full prefix (-1): if segmentation is
// enabled without choosing a warmup, stitching stays exact.
func NewEngine() *Engine {
	return &Engine{cache: runcache.New(), segWarmup: -1}
}

// DefaultEngine is the process-wide engine behind the package-level
// RunMatrix and therefore behind every figure, ablation and frontier
// runner in this package.
var DefaultEngine = NewEngine()

// SetObserver installs fn as the per-run progress callback (nil
// disables). It is invoked after every run, including cache hits.
func (e *Engine) SetObserver(fn func(RunMetrics)) {
	e.mu.Lock()
	e.observer = fn
	e.mu.Unlock()
}

// SetCacheDir enables on-disk persistence of run results under dir.
// Results memoized before the call are backfilled to the new directory
// (see runcache.Cache.SetDir).
func (e *Engine) SetCacheDir(dir string) error { return e.cache.SetDir(dir) }

// SetCacheLimit bounds the in-memory run-result tier to at most n
// completed entries, managed LRU (n <= 0 means unbounded, the default).
// With a cache directory configured, memory becomes a warm tier over
// disk: evicted results reload as disk hits. A long-lived daemon sets
// this so its resident set stays bounded however many design points it
// has served.
func (e *Engine) SetCacheLimit(n int) { e.cache.SetLimit(n) }

// SetSharedStore toggles the cross-process lease protocol on the
// engine's cache and trace directories (default off). With sharing on,
// N processes over one store elect a single computer per missing result
// or trace via lock-file leases (internal/lease) and the rest wait for
// the winner's file — cross-process single-flight, with staleness
// takeover if a holder crashes.
func (e *Engine) SetSharedStore(on bool) {
	e.cache.SetShared(on)
	e.traceMu.Lock()
	e.traceShared = on
	e.traceMu.Unlock()
}

// CacheStats returns a snapshot of the engine's run-cache counters.
func (e *Engine) CacheStats() CacheStats { return e.cache.Stats() }

// Metrics returns a copy of every run metric recorded so far, in
// completion order.
func (e *Engine) Metrics() []RunMetrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RunMetrics, len(e.runs))
	copy(out, e.runs)
	return out
}

// ResetMetrics clears the recorded run metrics (the cache is untouched).
func (e *Engine) ResetMetrics() {
	e.mu.Lock()
	e.runs = nil
	e.mu.Unlock()
}

// RunOne simulates (or recalls) a single (config, workload) pair through
// the engine's cache and returns its stats alongside the recorded run
// metrics — the single-request entry point cesweepd's POST /run uses.
func (e *Engine) RunOne(cfg Config, workload string) (Stats, RunMetrics, error) {
	return e.runOne(cfg, workload)
}

// runOne simulates (or recalls) a single pair and records its metrics.
func (e *Engine) runOne(cfg Config, workload string) (Stats, RunMetrics, error) {
	start := time.Now()
	var (
		st     Stats
		err    error
		cached bool
		attr   simAttribution
	)
	if key, ok := cfg.Key(); ok {
		// Approximate segment plans suffix the key so an estimate can
		// never be recalled as (or instead of) an exact result.
		key += e.segKeySuffix(cfg)
		st, cached, err = e.cache.Do(key+"\x00"+workload, func() (Stats, error) {
			return e.runSim(cfg, workload, &attr)
		})
	} else {
		e.cache.RecordUncacheable()
		st, err = e.runSim(cfg, workload, &attr)
	}
	if err != nil {
		return Stats{}, RunMetrics{}, err
	}
	// A cached result may have been computed under a renamed twin of this
	// configuration; relabel the copy we hand back.
	st.Config = cfg.Name
	wall := time.Since(start).Seconds() - attr.captureSeconds - attr.captureWait
	if wall < 0 {
		wall = 0
	}
	m := RunMetrics{
		Config:      cfg.Name,
		Workload:    workload,
		Cached:      cached,
		Cycles:      st.Cycles,
		Committed:   st.Committed,
		IPC:         st.IPC(),
		EmuSteps:    st.EmuSteps,
		WallSeconds: wall,

		HostAllocs:      st.HostAllocs,
		HostWallSeconds: st.HostWallSeconds,

		Replayed:           attr.replayed,
		Ganged:             attr.ganged,
		CaptureSeconds:     attr.captureSeconds,
		CaptureWaitSeconds: attr.captureWait,
		Segments:           attr.segments,
	}
	if !cached && wall > 0 {
		m.MCyclesPerSec = float64(st.Cycles) / wall / 1e6
	}
	e.mu.Lock()
	e.runs = append(e.runs, m)
	obs := e.observer
	e.mu.Unlock()
	if obs != nil {
		obs(m)
	}
	return st, m, nil
}

// RunMatrix runs every (config, workload) pair through the engine's run
// cache, in parallel across CPUs, returning results indexed
// [config][workload] in the given orders. Any pair's failure fails the
// whole matrix with the error of the first failing pair in matrix order
// (row-major: configs outer, workloads inner) — never whichever worker
// happened to lose the race — and no further pairs are dispatched once a
// failure is known. Duplicate pairs — within one matrix or across calls
// — are simulated once.
func (e *Engine) RunMatrix(cfgs []Config, workloads []string) ([][]Stats, error) {
	out := make([][]Stats, len(cfgs))
	for i := range out {
		out[i] = make([]Stats, len(workloads))
	}
	type job struct{ ci, wi int }
	jobs := make(chan job)
	var (
		errMu    sync.Mutex
		firstErr error
		firstIdx int
	)
	record := func(idx int, err error) {
		errMu.Lock()
		if firstErr == nil || idx < firstIdx {
			firstErr, firstIdx = err, idx
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				st, _, err := e.runOne(cfgs[j.ci], workloads[j.wi])
				if err != nil {
					record(j.ci*len(workloads)+j.wi, err)
					continue
				}
				out[j.ci][j.wi] = st
			}
		}()
	}
	// Dispatch workload-major: one workload's configurations fly together
	// as a gang, sharing the workload's decoded slabs (and its capture)
	// while they are resident, instead of touching each workload once per
	// configuration. Error precedence stays row-major (configs outer) via
	// the recorded index, so the reported failure is independent of
	// dispatch order.
dispatch:
	for wi := range workloads {
		for ci := range cfgs {
			if failed() {
				break dispatch
			}
			jobs <- job{ci, wi}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
