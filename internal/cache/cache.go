// Package cache implements the set-associative data cache model of the
// timing simulator. The paper's baseline (Table 3) is a 32 KB, 2-way
// set-associative, write-back write-allocate cache with 32-byte lines,
// 1-cycle hits and 6-cycle misses.
//
//ce:deterministic
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	SizeBytes  int // total capacity
	Ways       int
	LineBytes  int
	HitCycles  int
	MissCycles int
}

// Baseline returns the paper's D-cache configuration.
func Baseline() Config {
	return Config{
		SizeBytes:  32 << 10,
		Ways:       2,
		LineBytes:  32,
		HitCycles:  1,
		MissCycles: 6,
	}
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a set-associative write-back write-allocate cache with LRU
// replacement.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint32
	clock    uint64
	stats    Stats
}

// New builds a cache; it panics only on a malformed config (zero or
// non-power-of-two geometry), which is a programming error.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %+v", cfg)
	}
	nLines := cfg.SizeBytes / cfg.LineBytes
	nSets := nLines / cfg.Ways
	if nSets <= 0 || nSets&(nSets-1) != 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: geometry must give a power-of-two set count (got %d sets)", nSets)
	}
	c := &Cache{cfg: cfg, sets: make([][]line, nSets), setMask: uint32(nSets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for shift := uint(0); ; shift++ {
		if 1<<shift == cfg.LineBytes {
			c.setShift = shift
			break
		}
	}
	return c, nil
}

// Access performs a load (write=false) or store (write=true) to addr and
// returns the access latency in cycles and whether it hit.
func (c *Cache) Access(addr uint32, write bool) (latency int, hit bool) {
	c.clock++
	c.stats.Accesses++
	setIdx := (addr >> c.setShift) & c.setMask
	tag := addr >> c.setShift >> log2(uint(len(c.sets)))
	set := c.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			if write {
				set[i].dirty = true
			}
			return c.cfg.HitCycles, true
		}
	}
	// Miss: allocate over the LRU way (write-allocate for stores too).
	c.stats.Misses++
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return c.cfg.MissCycles, false
}

// Stats returns the accumulated event counts.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func log2(n uint) uint {
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}
