package ce

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/delaymodel"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/vlsi"
)

// FrontierPoint is one design point in the complexity-effectiveness
// frontier: simulated IPC combined with the delay model's clock estimate.
type FrontierPoint struct {
	Name string
	// MeanIPC is the mean committed IPC over the paper's workloads.
	MeanIPC float64
	// ClockPs is the estimated cycle time: the critical path through the
	// structures studied (rename, window, bypass) at 0.18 µm.
	ClockPs float64
	// BIPS is the headline metric: simulated instructions per second
	// (IPC × frequency), in billions.
	BIPS float64
}

// Frontier evaluates the complexity-effectiveness frontier the paper
// argues for: conventional window machines across issue widths and window
// sizes, plus the dependence-based organizations, each scored as
// IPC × estimated clock (0.18 µm). The paper's thesis appears directly in
// the ranking: wide window machines lose their IPC advantage to their
// clock, and the clustered dependence-based machine tops the list.
func Frontier() ([]FrontierPoint, error) { return DefaultEngine.Frontier() }

// Frontier evaluates the frontier through this engine's cache and store.
func (e *Engine) Frontier() ([]FrontierPoint, error) {
	tech := vlsi.Tech018
	type cand struct {
		cfg     Config
		clockPs func() (float64, error)
	}
	var cands []cand

	// Conventional window machines.
	for _, iw := range []int{2, 4, 8} {
		for _, ws := range []int{16, 32, 64} {
			iw, ws := iw, ws
			cfg := table3(fmt.Sprintf("window-%dway-%dentries", iw, ws), 1, 0, core.WindowSpec(ws))
			cfg.FetchWidth = iw
			cfg.DecodeWidth = iw
			cfg.IssueWidth = iw
			cfg.FUsPerCluster = iw
			cfg.RetireWidth = 2 * iw
			if iw < 4 {
				cfg.LSPorts = iw
			}
			cands = append(cands, cand{cfg, func() (float64, error) {
				o, err := delaymodel.Analyze(tech, iw, ws)
				if err != nil {
					return 0, err
				}
				return o.CriticalPath(), nil
			}})
		}
	}

	// Dependence-based, unclustered: window logic is cheap but the 8-way
	// bypass network still bounds the clock.
	cands = append(cands, cand{DependenceConfig(), func() (float64, error) {
		ren, err := delaymodel.Rename(tech, 8)
		if err != nil {
			return 0, err
		}
		byp, err := delaymodel.Bypass(tech, 8)
		if err != nil {
			return 0, err
		}
		est, err := delaymodel.ClockEstimate(tech)
		if err != nil {
			return 0, err
		}
		return math.Max(ren.Total(), math.Max(est.Conservative, byp.Delay)), nil
	}})

	// Clustered dependence-based: local bypasses are 4-way; the window
	// logic bound is either conservative (a 4-way 32-entry window's
	// wakeup+select, Section 5.5) or optimistic (rename-limited,
	// Section 5.3). Both of the paper's bounds appear as rows.
	clusteredClock := func(optimistic bool) func() (float64, error) {
		return func() (float64, error) {
			ren, err := delaymodel.Rename(tech, 8)
			if err != nil {
				return 0, err
			}
			byp, err := delaymodel.Bypass(tech, 4)
			if err != nil {
				return 0, err
			}
			bound := ren.Total()
			if !optimistic {
				est, err := delaymodel.ClockEstimate(tech)
				if err != nil {
					return 0, err
				}
				bound = est.Conservative
			}
			return math.Max(ren.Total(), math.Max(bound, byp.Delay)), nil
		}
	}
	conservative := ClusteredDependenceConfig()
	conservative.Name += " (conservative clk)"
	cands = append(cands, cand{conservative, clusteredClock(false)})
	optimistic := ClusteredDependenceConfig()
	optimistic.Name += " (optimistic clk)"
	cands = append(cands, cand{optimistic, clusteredClock(true)})

	ws := Workloads()
	cfgs := make([]Config, len(cands))
	for i := range cands {
		cfgs[i] = cands[i].cfg
	}
	res, err := e.RunMatrix(cfgs, ws)
	if err != nil {
		return nil, err
	}
	var out []FrontierPoint
	for i, c := range cands {
		var ipcs []float64
		for wi := range ws {
			ipcs = append(ipcs, res[i][wi].IPC())
		}
		clock, err := c.clockPs()
		if err != nil {
			return nil, err
		}
		mean := stats.Mean(ipcs)
		out = append(out, FrontierPoint{
			Name:    c.cfg.Name,
			MeanIPC: mean,
			ClockPs: clock,
			BIPS:    mean / clock * 1000, // ps → GHz·IPC = BIPS
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BIPS > out[j].BIPS })
	return out, nil
}

// FrontierTable renders the frontier, best first.
func FrontierTable(points []FrontierPoint) *report.Table {
	tbl := &report.Table{
		Title:   "Complexity-effectiveness frontier (0.18um): IPC x estimated clock",
		Headers: []string{"rank", "organization", "mean IPC", "clock (ps)", "est. BIPS"},
	}
	for i, p := range points {
		tbl.AddRowf(i+1, p.Name, p.MeanIPC, fmt.Sprintf("%.0f", p.ClockPs), p.BIPS)
	}
	return tbl
}
