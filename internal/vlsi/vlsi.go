// Package vlsi defines the process-technology models used by the delay
// analysis in this repository.
//
// The paper (Palacharla, Jouppi & Smith, ISCA 1997) studies three CMOS
// generations — 0.8 µm, 0.35 µm and 0.18 µm — under a scaling model in which
// logic delay shrinks with feature size while the intrinsic RC delay of a
// wire of fixed length in λ (λ = half the feature size) stays constant.
// This package captures those technologies as data: feature size, λ, metal
// wire parasitics, and a fitted logic-speed scale used by the structure
// models in package delaymodel.
package vlsi

import "fmt"

// Technology describes one CMOS process generation.
type Technology struct {
	// Name is the conventional label, e.g. "0.18um".
	Name string
	// FeatureUm is the drawn feature size in micrometres.
	FeatureUm float64
	// LambdaUm is λ in micrometres (half the feature size).
	LambdaUm float64
	// RPerUm is metal wire resistance in ohms per micrometre.
	RPerUm float64
	// CPerUm is metal wire capacitance in femtofarads per micrometre.
	CPerUm float64
	// LogicScale is the fitted ratio of this technology's logic delay to
	// the 0.18 µm technology's. It is calibrated from the paper's Hspice
	// results rather than assumed to be exactly FeatureUm/0.18, because
	// the published delays shrink slightly faster than linearly with
	// feature size (supply/threshold scaling effects absorbed here).
	LogicScale float64
}

// The three technologies studied in the paper. Wire parasitics are chosen so
// that the delay of a wire of fixed λ-length is identical in all three
// processes, matching the constant-wire-delay scaling model the paper
// assumes (Section 4.4.3: "The delays are the same for the three
// technologies since wire delays are constant according to the scaling
// model assumed").
var (
	Tech080 = Technology{
		Name:       "0.8um",
		FeatureUm:  0.80,
		LambdaUm:   0.40,
		RPerUm:     0.0275,
		CPerUm:     0.200,
		LogicScale: 4.50,
	}
	Tech035 = Technology{
		Name:       "0.35um",
		FeatureUm:  0.35,
		LambdaUm:   0.175,
		RPerUm:     0.1435,
		CPerUm:     0.200,
		LogicScale: 1.95,
	}
	Tech018 = Technology{
		Name:       "0.18um",
		FeatureUm:  0.18,
		LambdaUm:   0.09,
		RPerUm:     0.540,
		CPerUm:     0.201,
		LogicScale: 1.00,
	}
)

// Technologies lists the studied processes from oldest to newest, the order
// used by every figure in the paper.
func Technologies() []Technology {
	return []Technology{Tech080, Tech035, Tech018}
}

// ByName returns the technology with the given name.
func ByName(name string) (Technology, error) {
	for _, t := range Technologies() {
		if t.Name == name {
			return t, nil
		}
	}
	return Technology{}, fmt.Errorf("vlsi: unknown technology %q (want one of 0.8um, 0.35um, 0.18um)", name)
}

// WireRC returns the product R·C per λ² of wire, in picoseconds per λ².
// Under the scaling model this is the same for every technology; a wire of
// length L λ has intrinsic (distributed) RC delay ½·WireRC·L² ps.
func (t Technology) WireRC() float64 {
	// R [Ω/µm] · C [fF/µm] = 10⁻³ ps/µm²; convert µm² to λ².
	return t.RPerUm * t.CPerUm * 1e-3 * t.LambdaUm * t.LambdaUm
}

// LambdaToUm converts a length in λ to micrometres.
func (t Technology) LambdaToUm(lambda float64) float64 { return lambda * t.LambdaUm }
