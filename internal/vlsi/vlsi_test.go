package vlsi

import (
	"math"
	"testing"
)

func TestTechnologiesOrdered(t *testing.T) {
	techs := Technologies()
	if len(techs) != 3 {
		t.Fatalf("Technologies() returned %d entries, want 3", len(techs))
	}
	for i := 1; i < len(techs); i++ {
		if techs[i].FeatureUm >= techs[i-1].FeatureUm {
			t.Errorf("technologies not ordered oldest→newest: %s then %s",
				techs[i-1].Name, techs[i].Name)
		}
	}
}

func TestLambdaIsHalfFeature(t *testing.T) {
	for _, tech := range Technologies() {
		if math.Abs(tech.LambdaUm-tech.FeatureUm/2) > 1e-9 {
			t.Errorf("%s: λ=%g, want feature/2=%g", tech.Name, tech.LambdaUm, tech.FeatureUm/2)
		}
	}
}

func TestWireRCConstantAcrossTechnologies(t *testing.T) {
	// The paper's scaling model: a wire of fixed λ-length has the same
	// intrinsic RC delay in every technology.
	base := Tech018.WireRC()
	for _, tech := range Technologies() {
		got := tech.WireRC()
		if math.Abs(got-base)/base > 0.01 {
			t.Errorf("%s: WireRC=%g, want within 1%% of %g", tech.Name, got, base)
		}
	}
}

func TestWireRCValue(t *testing.T) {
	// Calibrated so a 20500 λ wire (Table 1, 4-way) has ½·RC·L² ≈ 184.9 ps.
	l := 20500.0
	got := 0.5 * Tech018.WireRC() * l * l
	if math.Abs(got-184.9) > 2.0 {
		t.Errorf("4-way bypass wire delay = %.1f ps, want ≈184.9", got)
	}
}

func TestByName(t *testing.T) {
	for _, tech := range Technologies() {
		got, err := ByName(tech.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", tech.Name, err)
		}
		if got.Name != tech.Name {
			t.Errorf("ByName(%q).Name = %q", tech.Name, got.Name)
		}
	}
	if _, err := ByName("0.13um"); err == nil {
		t.Error("ByName(unknown) succeeded, want error")
	}
}

func TestLogicScaleOrdering(t *testing.T) {
	if !(Tech080.LogicScale > Tech035.LogicScale && Tech035.LogicScale > Tech018.LogicScale) {
		t.Errorf("LogicScale must decrease with feature size: %g, %g, %g",
			Tech080.LogicScale, Tech035.LogicScale, Tech018.LogicScale)
	}
	if Tech018.LogicScale != 1.0 {
		t.Errorf("Tech018.LogicScale = %g, want 1 (reference technology)", Tech018.LogicScale)
	}
}

func TestLambdaToUm(t *testing.T) {
	if got := Tech080.LambdaToUm(10); math.Abs(got-4.0) > 1e-9 {
		t.Errorf("Tech080.LambdaToUm(10) = %g, want 4", got)
	}
}
