// Package locklint statically enforces the lock-discipline contract on
// the concurrent subsystems (internal/server, internal/runcache,
// internal/lease): critical sections must stay short and must not leak.
//
// Three rules:
//
//  1. A sync.Mutex/RWMutex must not be held across a blocking operation:
//     file or network I/O, channel sends/receives, selects with no
//     default, time.Sleep, WaitGroup/Cond waits, or a call to a function
//     that (transitively) does any of those. Blocking under a lock turns
//     an O(ns) critical section into one bounded by the disk or the
//     peer, and every other goroutine convoys behind it.
//
//  2. Every path out of a function — return, panic, or falling off the
//     end — must release what it locked, either inline on that path or
//     via a deferred unlock. A branch that returns early with the lock
//     held deadlocks the next caller.
//
//  3. Lock values must not be copied: value receivers and by-value
//     parameters of mutex-bearing structs, and dereference assignments
//     (x := *p), silently fork the lock so the copies no longer exclude
//     each other.
//
// The held-across analysis is branch-sensitive and conservative in the
// "must hold" direction: lock state is tracked per critical-section key
// (the receiver expression of the Lock call, e.g. "s.mu"), branches are
// merged by intersection, and paths that return or panic drop out of the
// merge. A select with a default case is a poll, not a block, and its
// communication clauses do not individually count as blocking.
//
// Like hotlint, the analysis is interprocedural: every function gets a
// BlockFact recording whether it (transitively) blocks, propagated
// bottom-up over the package DAG via the driver's fact store, so a lock
// held across a call into another package is still a finding — with the
// callee chain down to the root blocking operation in the message.
//
// //ce:lock-ok <reason> on the offending line (or alone on the line
// above) exempts a finding. Lock-ordering (lock while holding another
// lock) and contended Lock() calls themselves are out of scope: Lock is
// treated as the uncontended fast path, not a blocking op, or every
// mutex-using helper would poison its callers.
package locklint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// Analyzer is the locklint pass.
var Analyzer = &analysis.Analyzer{
	Name:      "locklint",
	Doc:       "flags mutexes held across blocking operations, lock leaks on early exits, and lock-value copies",
	Run:       run,
	FactTypes: []analysis.Fact{new(BlockFact)},
}

// BlockFact is locklint's verdict on one function, exported for
// functions with exported names so that passes over importing packages
// can see through calls made under a lock.
type BlockFact struct {
	// Blocks marks a function that (transitively) performs a blocking
	// operation.
	Blocks bool
	// Why describes the root blocking operation ("call to os.WriteFile").
	Why string
	// Trail is the call chain from this function down to the blocking
	// operation, starting with this function's own name.
	Trail []string
}

// AFact marks BlockFact as a fact type.
func (*BlockFact) AFact() {}

// chain renders the fact for a finding message:
// "Save → flush: call to os.WriteFile".
func (f *BlockFact) chain() string {
	return strings.Join(f.Trail, " → ") + ": " + f.Why
}

// callSite is one statically-resolved call inside a function.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// lockFn is the per-function fact-collection state.
type lockFn struct {
	obj   *types.Func
	why   string // first direct blocking operation, "" if none
	calls []callSite
	fact  *BlockFact
}

type passState struct {
	pass  *analysis.Pass
	byObj map[*types.Func]*lockFn
	fns   []*lockFn
}

func run(pass *analysis.Pass) (any, error) {
	st := &passState{pass: pass, byObj: make(map[*types.Func]*lockFn)}

	type declWork struct {
		fd  *ast.FuncDecl
		idx *directive.Index
	}
	var work []declWork
	for _, f := range pass.Files {
		idx := directive.NewIndex(pass.Fset, f, directive.LockOK)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := st.collect(fd, obj)
			st.fns = append(st.fns, fi)
			st.byObj[obj] = fi
			work = append(work, declWork{fd, idx})
		}
	}

	// Seed each function's fact from its first direct blocking op, then
	// propagate through calls to a fixpoint. Call order is source order,
	// so the recorded trail is deterministic.
	for _, fi := range st.fns {
		fi.fact = &BlockFact{}
		if fi.why != "" {
			fi.fact.Blocks = true
			fi.fact.Why = fi.why
			fi.fact.Trail = []string{fi.obj.Name()}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range st.fns {
			if fi.fact.Blocks {
				continue
			}
			for _, cs := range fi.calls {
				cf := st.calleeFact(cs.callee)
				if cf == nil || !cf.Blocks {
					continue
				}
				fi.fact.Blocks = true
				fi.fact.Why = cf.Why
				fi.fact.Trail = append([]string{fi.obj.Name()}, cf.Trail...)
				changed = true
				break
			}
		}
	}

	if pass.ExportObjectFact != nil {
		for _, fi := range st.fns {
			if fi.fact.Blocks && ast.IsExported(fi.obj.Name()) {
				pass.ExportObjectFact(fi.obj, fi.fact)
			}
		}
	}

	for _, d := range work {
		w := newWalker(st, d.idx)
		w.block(d.fd.Body.List)
		if !w.terminated {
			w.exitLocked(d.fd.Body.Rbrace, "function exit")
		}
		st.copyChecks(d.fd, d.idx)
		// Function literals run with their own lock state: locks they
		// acquire are theirs, and locks of the enclosing function are not
		// provably held when the literal eventually runs.
		ast.Inspect(d.fd.Body, func(n ast.Node) bool {
			fl, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			lw := newWalker(st, d.idx)
			lw.block(fl.Body.List)
			if !lw.terminated {
				lw.exitLocked(fl.Body.Rbrace, "function exit")
			}
			return true
		})
	}
	return nil, nil
}

// calleeFact resolves a callee's BlockFact: same-package functions from
// this pass, imported ones from the driver's fact store.
func (st *passState) calleeFact(callee *types.Func) *BlockFact {
	if fi, ok := st.byObj[callee]; ok {
		return fi.fact
	}
	if st.pass.ImportObjectFact == nil {
		return nil
	}
	var f BlockFact
	if st.pass.ImportObjectFact(callee, &f) {
		return &f
	}
	return nil
}

// collect records a function's first direct blocking operation and its
// statically-resolved calls, for fact propagation. Function literals are
// skipped (a returned closure does not block its maker), as are `go`
// statements (the goroutine blocks, not the caller) and communication
// clauses of selects that have a default (the select polls).
func (st *passState) collect(fd *ast.FuncDecl, obj *types.Func) *lockFn {
	fi := &lockFn{obj: obj}
	nonblocking := pollOps(fd.Body)
	record := func(why string) {
		if fi.why == "" {
			fi.why = why
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if !nonblocking[n] {
				record("channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonblocking[n] {
				record("channel receive")
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				record("select with no default")
			}
		case *ast.CallExpr:
			if why, ok := st.blockingCall(n); ok {
				record("call to " + why)
			} else if callee := staticCallee(st.pass, n); callee != nil {
				fi.calls = append(fi.calls, callSite{pos: n.Pos(), callee: callee})
			}
		}
		return true
	})
	return fi
}

// pollOps returns the communication operations that belong to a
// select-with-default: they poll rather than block.
func pollOps(body ast.Node) map[ast.Node]bool {
	ops := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || !hasDefault(sel) {
			return true
		}
		for _, cs := range sel.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				ops[comm] = true
			case *ast.ExprStmt:
				ops[ast.Unparen(comm.X)] = true
			case *ast.AssignStmt:
				for _, r := range comm.Rhs {
					ops[ast.Unparen(r)] = true
				}
			}
		}
		return true
	})
	return ops
}

// hasDefault reports whether a select has a default clause.
func hasDefault(sel *ast.SelectStmt) bool {
	for _, cs := range sel.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// staticCallee resolves a call to its target function when the target
// is known statically; dynamic calls resolve to nil.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleeLabel names a callee for a finding message, package-qualified
// when it lives elsewhere.
func calleeLabel(from *types.Package, callee *types.Func) string {
	if callee.Pkg() == nil || callee.Pkg() == from {
		return callee.Name()
	}
	return callee.Pkg().Name() + "." + callee.Name()
}

// blockingCall classifies a call as a known-blocking standard-library
// operation and returns its label. Package functions are matched against
// curated lists; methods are classified by the package that declares
// them (any method on an os, net, net/http, os/exec, bufio, or io type
// touches a descriptor or a peer — an io interface method may be a
// bytes.Buffer underneath, but the static type promises I/O, so a
// deliberate in-memory use hatches with a reason).
func (st *passState) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pn := pkgNameOf(st.pass.TypesInfo, sel.X); pn != nil {
		path, name := pn.Imported().Path(), sel.Sel.Name
		if blockingPkgFunc(path, name) {
			return pn.Imported().Name() + "." + name, true
		}
		return "", false
	}
	fn, ok := st.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "os", "net", "net/http", "os/exec", "bufio", "io":
		return fn.FullName(), true
	case "sync":
		if fn.Name() == "Wait" {
			return fn.FullName(), true
		}
	}
	return "", false
}

// blockingPkgFunc reports whether a package-level stdlib function blocks.
func blockingPkgFunc(path, name string) bool {
	switch path {
	case "time":
		return name == "Sleep"
	case "os":
		return osBlocking[name]
	case "io":
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "ReadAtLeast", "WriteString":
			return true
		}
	case "io/ioutil", "log":
		return true
	case "net/http":
		switch name {
		case "Get", "Post", "Head", "PostForm", "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS":
			return true
		}
	case "net":
		for _, p := range []string{"Dial", "Listen", "Lookup", "Resolve"} {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
	case "os/exec":
		return name == "LookPath"
	case "fmt":
		for _, p := range []string{"Print", "Fprint", "Scan", "Fscan"} {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
	}
	return false
}

// osBlocking lists the os package functions that reach the filesystem or
// kernel; pure helpers (IsNotExist, Getenv, Getpid, ...) are absent.
var osBlocking = map[string]bool{
	"Chdir": true, "Chmod": true, "Chown": true, "Chtimes": true,
	"Create": true, "CreateTemp": true, "Getwd": true, "Hostname": true,
	"Link": true, "Lstat": true, "Mkdir": true, "MkdirAll": true,
	"MkdirTemp": true, "Open": true, "OpenFile": true, "Pipe": true,
	"ReadDir": true, "ReadFile": true, "Readlink": true, "Remove": true,
	"RemoveAll": true, "Rename": true, "Stat": true, "StartProcess": true,
	"Symlink": true, "Truncate": true, "WriteFile": true,
}

// pkgNameOf resolves an expression to the package it names, if any.
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// walker tracks must-held lock state through one function body.
type walker struct {
	st  *passState
	idx *directive.Index
	// held maps a critical-section key (the rendered receiver expression
	// of the Lock call) to the acquire position.
	held map[string]token.Pos
	// deferred records keys with a registered deferred unlock. Shared
	// across branch clones: defers are function-scoped, and treating a
	// conditionally-registered defer as unconditional errs toward
	// silence, not noise.
	deferred map[string]bool
	// terminated is set after a return or panic: the path contributes
	// nothing to merges and the rest of the block is unreachable.
	terminated bool
}

func newWalker(st *passState, idx *directive.Index) *walker {
	return &walker{st: st, idx: idx, held: make(map[string]token.Pos), deferred: make(map[string]bool)}
}

func (w *walker) clone() *walker {
	held := make(map[string]token.Pos, len(w.held))
	for k, v := range w.held {
		held[k] = v
	}
	return &walker{st: w.st, idx: w.idx, held: held, deferred: w.deferred}
}

func (w *walker) block(list []ast.Stmt) {
	for _, s := range list {
		if w.terminated {
			return
		}
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, locks, ok := lockOp(w.st.pass.TypesInfo, s.X); ok {
			if locks {
				w.held[key] = s.Pos()
			} else {
				delete(w.held, key)
			}
			return
		}
		w.ops(s.X)
		if isPanic(w.st.pass.TypesInfo, s.X) {
			w.exitLocked(s.Pos(), "panic")
			w.terminated = true
		}
	case *ast.DeferStmt:
		for _, key := range deferredUnlocks(w.st.pass.TypesInfo, s.Call) {
			w.deferred[key] = true
		}
		for _, a := range s.Call.Args {
			w.ops(a)
		}
	case *ast.GoStmt:
		// The goroutine blocks on its own time; only argument evaluation
		// happens under the current lock state.
		for _, a := range s.Call.Args {
			w.ops(a)
		}
	case *ast.ReturnStmt:
		w.ops(s)
		w.exitLocked(s.Pos(), "return")
		w.terminated = true
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.ops(s.Cond)
		then := w.clone()
		then.block(s.Body.List)
		els := w.clone()
		if s.Else != nil {
			els.stmt(s.Else)
		}
		w.merge(then, els)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.ops(s.Cond)
		}
		body := w.clone()
		body.block(s.Body.List)
		if s.Post != nil && !body.terminated {
			body.stmt(s.Post)
		}
		if !body.terminated {
			w.held = intersectAll([]map[string]token.Pos{w.held, body.held})
		}
	case *ast.RangeStmt:
		w.ops(s.X)
		body := w.clone()
		body.block(s.Body.List)
		if !body.terminated {
			w.held = intersectAll([]map[string]token.Pos{w.held, body.held})
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.ops(s.Tag)
		}
		w.cases(s.Body.List, switchHasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.cases(s.Body.List, switchHasDefault(s.Body))
	case *ast.SelectStmt:
		if !hasDefault(s) {
			w.op(s.Pos(), "select with no default")
		}
		var outs []map[string]token.Pos
		for _, cs := range s.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			cw := w.clone()
			cw.block(cc.Body)
			if !cw.terminated {
				outs = append(outs, cw.held)
			}
		}
		if len(outs) > 0 {
			w.held = intersectAll(outs)
		} else if len(s.Body.List) > 0 {
			w.terminated = true
		}
	case *ast.SendStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt:
		w.ops(s)
	}
}

// merge joins two branch walkers: paths that returned drop out; if both
// returned, what follows is unreachable.
func (w *walker) merge(a, b *walker) {
	var outs []map[string]token.Pos
	if !a.terminated {
		outs = append(outs, a.held)
	}
	if !b.terminated {
		outs = append(outs, b.held)
	}
	if len(outs) == 0 {
		w.terminated = true
		return
	}
	w.held = intersectAll(outs)
}

// cases walks each case clause on a clone and intersects the survivors;
// with no default clause the fall-past path keeps the entry state.
func (w *walker) cases(list []ast.Stmt, hasDef bool) {
	var outs []map[string]token.Pos
	for _, cs := range list {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.ops(e)
		}
		cw := w.clone()
		cw.block(cc.Body)
		if !cw.terminated {
			outs = append(outs, cw.held)
		}
	}
	if !hasDef {
		outs = append(outs, w.held)
	}
	if len(outs) == 0 {
		w.terminated = true
		return
	}
	w.held = intersectAll(outs)
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// ops scans a statement or expression for blocking operations and
// reports each one performed while a lock is held. Nested function
// literals are skipped — they run later, under their own state.
func (w *walker) ops(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			w.op(m.Arrow, "channel send")
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				w.op(m.OpPos, "channel receive")
			}
		case *ast.CallExpr:
			if why, ok := w.st.blockingCall(m); ok {
				w.op(m.Pos(), "call to "+why)
			} else if callee := staticCallee(w.st.pass, m); callee != nil {
				if cf := w.st.calleeFact(callee); cf != nil && cf.Blocks {
					w.op(m.Pos(), fmt.Sprintf("call to %s (blocks: %s)",
						calleeLabel(w.st.pass.Pkg, callee), cf.chain()))
				}
			}
		}
		return true
	})
}

// op reports one blocking operation for every lock currently held,
// unless an //ce:lock-ok hatch covers the site.
func (w *walker) op(pos token.Pos, desc string) {
	if len(w.held) == 0 {
		return
	}
	if _, ok := w.idx.Covering(pos); ok {
		return
	}
	for _, key := range sortedKeys(w.held) {
		w.st.pass.Report(analysis.Diagnostic{
			Pos:      pos,
			Category: "lock-blocking",
			Message: fmt.Sprintf("mutex %s held across %s; shrink the critical section or add //ce:lock-ok <reason>",
				key, desc),
		})
	}
}

// exitLocked reports locks still held (and not deferred-unlocked) at a
// path out of the function.
func (w *walker) exitLocked(pos token.Pos, kind string) {
	for _, key := range sortedKeys(w.held) {
		if w.deferred[key] {
			continue
		}
		if _, ok := w.idx.Covering(pos); ok {
			continue
		}
		w.st.pass.Report(analysis.Diagnostic{
			Pos:      pos,
			Category: "lock-leak",
			Message: fmt.Sprintf("%s leaves mutex %s locked; defer the unlock or release it on this path",
				kind, key),
		})
	}
}

func sortedKeys(m map[string]token.Pos) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func intersectAll(ms []map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos)
	for k, v := range ms[0] {
		in := true
		for _, m := range ms[1:] {
			if _, ok := m[k]; !ok {
				in = false
				break
			}
		}
		if in {
			out[k] = v
		}
	}
	return out
}

// lockOp classifies an expression statement as mu.Lock/RLock (locks
// true) or mu.Unlock/RUnlock (locks false) on a sync mutex, returning
// the critical-section key — the rendered receiver expression.
func lockOp(info *types.Info, e ast.Expr) (key string, locks, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(ast.Unparen(sel.X)), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(ast.Unparen(sel.X)), false, true
	}
	return "", false, false
}

// deferredUnlocks returns the keys a deferred call releases: a direct
// `defer mu.Unlock()` or any unlock inside a deferred func literal.
func deferredUnlocks(info *types.Info, call *ast.CallExpr) []string {
	if key, locks, ok := lockOp(info, call); ok && !locks {
		return []string{key}
	}
	fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	var keys []string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok {
			if key, locks, ok := lockOp(info, inner); ok && !locks {
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}

// isPanic reports whether the expression is a call to the panic builtin.
func isPanic(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// copyChecks reports lock-value copies: value receivers and by-value
// parameters of mutex-bearing types, and dereference assignments.
func (st *passState) copyChecks(fd *ast.FuncDecl, idx *directive.Index) {
	report := func(pos token.Pos, format string, args ...any) {
		if _, ok := idx.Covering(pos); ok {
			return
		}
		st.pass.Report(analysis.Diagnostic{
			Pos:      pos,
			Category: "lock-copy",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	qual := types.RelativeTo(st.pass.Pkg)
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			t := st.pass.TypesInfo.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if inner := containsMutex(t); inner != "" {
				report(f.Pos(), "value receiver of method %s copies a lock (%s contains %s); use a pointer receiver",
					fd.Name.Name, types.TypeString(t, qual), inner)
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			t := st.pass.TypesInfo.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if inner := containsMutex(t); inner != "" {
				name := "_"
				if len(f.Names) > 0 {
					name = f.Names[0].Name
				}
				report(f.Pos(), "parameter %s passes a lock by value (%s contains %s); pass a pointer",
					name, types.TypeString(t, qual), inner)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, r := range as.Rhs {
			star, ok := ast.Unparen(r).(*ast.StarExpr)
			if !ok {
				continue
			}
			t := st.pass.TypesInfo.TypeOf(star)
			if t == nil {
				continue
			}
			if inner := containsMutex(t); inner != "" {
				report(star.Pos(), "dereference copies a lock (%s contains %s)",
					types.TypeString(t, qual), inner)
			}
		}
		return true
	})
}

// containsMutex reports the first sync synchronization type found by
// value inside t ("sync.Mutex", ...), or "" when there is none.
func containsMutex(t types.Type) string {
	return containsMutexRec(t, make(map[types.Type]bool))
}

func containsMutexRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if inner := containsMutexRec(u.Field(i).Type(), seen); inner != "" {
				return inner
			}
		}
	case *types.Array:
		return containsMutexRec(u.Elem(), seen)
	}
	return ""
}
