package pipeline

// Cycle-level invariant checking (Config.CheckInvariants). The checker
// re-derives, from independent state, the properties every machine
// organization must uphold regardless of scheduler, clustering or
// speculation model:
//
//   - commit is in program order, contiguous, never speculative, and at
//     most RetireWidth instructions per cycle;
//   - issue respects IssueWidth and LSPorts, never precedes operand
//     readiness in the issuing cluster, and never lets a load pass an
//     older store whose address is still unknown;
//   - every committed instruction's timeline is monotonic:
//     fetch (+FrontEndDepth) ≤ dispatch < issue < complete ≤ commit;
//   - the ROB never exceeds MaxInFlight and the scheduler never exceeds
//     its capacity or disagrees with the ROB about unissued instructions;
//   - physical-register allocation balances: in-flight rename allocations
//     always equal the ROB's destination-carrying instructions, and the
//     free list is whole once the pipeline drains (no leak);
//   - a squash leaves no speculative state behind: no wrong-path uop in
//     any buffer, no live emulator checkpoint.
//
// The checker is a verification instrument for the differential harness
// in internal/verify and the test suite; it adds per-cycle scans of the
// ROB, so it stays off the default configuration.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
)

// checker holds invariant-checking state for one simulation.
type checker struct {
	s   *Simulator
	err error

	nextCommitSeq uint64
	committed     int // this cycle
	issued        int // this cycle
	memIssued     int // this cycle
}

// failf records the first violation; later ones are suppressed (they are
// usually cascades of the first).
func (k *checker) failf(format string, args ...any) {
	if k.err != nil {
		return
	}
	//ce:alloc-ok invariant violation ends the run
	prefix := fmt.Sprintf("pipeline: %s/%s: invariant violated at cycle %d: ",
		k.s.cfg.Name, k.s.stats.Workload, k.s.cycle)
	k.err = fmt.Errorf(prefix+format, args...) //ce:alloc-ok invariant violation ends the run
}

// onCommit checks one retiring instruction.
func (k *checker) onCommit(u *core.Uop) {
	k.committed++
	if k.committed > k.s.cfg.RetireWidth {
		k.failf("committed %d instructions, retire width %d", k.committed, k.s.cfg.RetireWidth)
	}
	if u.Speculative {
		k.failf("speculative uop %d committed", u.Seq)
	}
	if u.Seq != k.nextCommitSeq {
		k.failf("out-of-order commit: uop %d, expected %d", u.Seq, k.nextCommitSeq)
	}
	k.nextCommitSeq = u.Seq + 1
	switch {
	case u.FetchCycle+int64(k.s.cfg.FrontEndDepth) > u.DispatchCycle:
		k.failf("uop %d dispatched at %d, fetched at %d (front end depth %d)",
			u.Seq, u.DispatchCycle, u.FetchCycle, k.s.cfg.FrontEndDepth)
	case u.IssueCycle <= u.DispatchCycle:
		k.failf("uop %d issued at %d, dispatched at %d", u.Seq, u.IssueCycle, u.DispatchCycle)
	case u.CompleteCycle <= u.IssueCycle:
		k.failf("uop %d completed at %d, issued at %d", u.Seq, u.CompleteCycle, u.IssueCycle)
	case u.CompleteCycle > k.s.cycle:
		k.failf("uop %d committed at %d before completing at %d", u.Seq, k.s.cycle, u.CompleteCycle)
	}
}

// onIssue checks one instruction accepted by wakeup+select, after the
// pipeline has stamped its issue and completion cycles.
func (k *checker) onIssue(u *core.Uop, cluster int, isMem bool) {
	k.issued++
	if k.issued > k.s.cfg.IssueWidth {
		k.failf("issued %d instructions, issue width %d", k.issued, k.s.cfg.IssueWidth)
	}
	if isMem {
		k.memIssued++
		if k.memIssued > k.s.cfg.LSPorts {
			k.failf("issued %d memory operations, %d load/store ports", k.memIssued, k.s.cfg.LSPorts)
		}
	}
	if u.DispatchCycle >= k.s.cycle {
		k.failf("uop %d issued in its dispatch cycle %d", u.Seq, u.DispatchCycle)
	}
	for _, p := range u.PhysSrcs {
		if p >= 0 && k.s.regReady[cluster*k.s.nPhys+int(p)] > k.s.cycle {
			k.failf("uop %d issued in cluster %d before operand p%d is ready (at %d)",
				u.Seq, cluster, p, k.s.regReady[cluster*k.s.nPhys+int(p)])
		}
	}
	if u.Class == isa.ClassLoad {
		for i := 0; i < k.s.unissuedStores.Len(); i++ {
			st := k.s.unissuedStores.At(i)
			if st.Seq < u.Seq && !st.Issued {
				k.failf("load %d issued past unissued older store %d", u.Seq, st.Seq)
			}
		}
	}
}

// onSquash checks that a completed squash left no speculative residue.
func (k *checker) onSquash(brSeq uint64) {
	if k.s.machine.Speculating() {
		k.failf("emulator checkpoint still live after squash of branch %d", brSeq)
	}
	if k.s.resolving != nil {
		k.failf("resolving branch still set after squash")
	}
	for i := 0; i < k.s.rob.Len(); i++ {
		u := k.s.rob.At(i)
		if u.Speculative || u.Seq > brSeq {
			k.failf("wrong-path uop %d survived squash of branch %d in ROB", u.Seq, brSeq)
		}
	}
	for i := 0; i < k.s.fetchQ.Len(); i++ {
		k.failf("uop %d survived squash of branch %d in fetch queue", k.s.fetchQ.At(i).Seq, brSeq)
	}
	for i := 0; i < k.s.unissuedStores.Len(); i++ {
		if st := k.s.unissuedStores.At(i); st.Seq > brSeq {
			k.failf("wrong-path store %d survived squash of branch %d", st.Seq, brSeq)
		}
	}
}

// onCycleEnd checks whole-machine structural invariants and resets the
// per-cycle counters.
func (k *checker) onCycleEnd() {
	k.committed, k.issued, k.memIssued = 0, 0, 0
	s := k.s
	if s.rob.Len() > s.cfg.MaxInFlight {
		k.failf("ROB holds %d instructions, capacity %d", s.rob.Len(), s.cfg.MaxInFlight)
	}
	if s.sched.Len() > s.sched.Capacity() {
		k.failf("scheduler holds %d instructions, capacity %d", s.sched.Len(), s.sched.Capacity())
	}
	unissued, dests := 0, 0
	for i := 0; i < s.rob.Len(); i++ {
		u := s.rob.At(i)
		if !u.Issued {
			unissued++
		}
		if u.PhysDest >= 0 {
			dests++
		}
	}
	if s.sched.Len() != unissued {
		k.failf("scheduler occupancy %d disagrees with %d unissued ROB entries", s.sched.Len(), unissued)
	}
	if got := s.rt.InFlight(); got != dests {
		k.failf("%d physical registers allocated, %d in-flight destinations (leak)", got, dests)
	}
}

// onDone checks the drained end-of-run state.
func (k *checker) onDone() {
	s := k.s
	if s.rob.Len() != 0 || s.fetchQ.Len() != 0 {
		k.failf("run finished with %d ROB / %d fetch-queue entries", s.rob.Len(), s.fetchQ.Len())
	}
	if s.sched.Len() != 0 {
		k.failf("run finished with %d instructions in the scheduler", s.sched.Len())
	}
	for i := 0; i < s.unissuedStores.Len(); i++ {
		if st := s.unissuedStores.At(i); !st.Issued {
			k.failf("run finished with unissued store %d", st.Seq)
		}
	}
	if got := s.rt.InFlight(); got != 0 {
		k.failf("run finished with %d physical registers leaked", got)
	}
	if s.machine != nil && s.machine.Speculating() {
		k.failf("run finished with a live emulator checkpoint")
	}
	if !s.src.Halted() {
		k.failf("run finished with the execution source not exhausted")
	}
}
