package asm

import (
	"testing"

	"repro/internal/emu"
)

// FuzzAssemble checks that the assembler never panics and that anything it
// accepts can be loaded by the emulator (executing up to a small budget —
// fuzz inputs may loop forever, which is fine).
func FuzzAssemble(f *testing.F) {
	f.Add("\t.text\n\tadd $t0, $t1, $t2\n\thalt\n")
	f.Add("\t.data\nx:\t.word 1, 2\n\t.text\n\tlw $t0, x($zero)\n\thalt\n")
	f.Add("label: .data .word")
	f.Add(".text\nb: j b\n")
	f.Add("\t.text\n\tli $t0, 0xFFFFFFFF\n\tsll $t1, $t0, 31\n\thalt")
	f.Add("\t.data\ns:\t.asciiz \"hi\"\n\t.align 3\n")
	f.Add("\t.text\nmain:\tjal f\n\thalt\nf:\tjr $ra\n")
	f.Add("\t.text\n\tlw $t0, x+4($t1)\n\thalt\n\t.data\nx:\t.word 9, 8\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz.s", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		m := emu.New(p)
		for i := 0; i < 10_000 && !m.Halted(); i++ {
			if _, err := m.Step(); err != nil {
				return // runtime errors on fuzz programs are fine
			}
		}
	})
}
