package locklint_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/locklint"
)

func TestLocklint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), locklint.Analyzer, "lockbad", "lockdep", "lockuse")
}
