package dirlint_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/dirlint"
)

func TestDirlint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), dirlint.Analyzer, "dir")
}
