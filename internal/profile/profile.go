// Package profile computes dynamic workload characterizations from the
// functional emulator: instruction mix, branch behaviour, register
// dependence distances, dataflow-limit ILP, basic-block lengths and memory
// footprint. These are the properties the paper's issue logic and steering
// heuristic are sensitive to; the profiles ground the claim that the
// SPEC95-like kernels behave like their namesakes.
package profile

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/stats"
)

// Report is a workload's dynamic profile.
type Report struct {
	Name         string
	Instructions uint64

	// Mix is the fraction of dynamic instructions per class.
	Mix map[isa.Class]float64

	// CondBranches and TakenRate summarize conditional branch behaviour;
	// BranchEvery is the mean dynamic distance between branches.
	CondBranches uint64
	TakenRate    float64
	BranchEvery  float64

	// DepDistance is the distribution of register dependence distances:
	// for every operand read, the number of dynamic instructions since
	// its producer (clamped to 256). Short distances mean a small window
	// captures most dependences.
	DepDistance *stats.Histogram

	// DataflowILP is N / dataflow-critical-path-length: the IPC an
	// infinite machine with unit latencies and perfect prediction could
	// reach (register and memory dependences only).
	DataflowILP float64

	// BasicBlock is the distribution of dynamic basic-block lengths
	// (instructions between control transfers, clamped to 64).
	BasicBlock *stats.Histogram

	// FootprintBytes is the number of distinct memory words touched × 4.
	FootprintBytes uint64
}

// Profile runs the program functionally (up to maxInsts) and returns its
// dynamic profile.
func Profile(p *isa.Program, maxInsts uint64) (*Report, error) {
	m := emu.New(p)
	r := &Report{
		Name:        p.Name,
		Mix:         make(map[isa.Class]float64),
		DepDistance: stats.NewHistogram(256),
		BasicBlock:  stats.NewHistogram(64),
	}
	classCounts := make(map[isa.Class]uint64)

	// lastWrite[reg] is the dynamic index of the register's last writer;
	// depth tracks the dataflow critical path.
	var lastWrite [isa.NumRegs]uint64
	var regDepth [isa.NumRegs]uint64
	memDepth := make(map[uint32]uint64) // word address → producing depth
	touched := make(map[uint32]struct{})
	var maxDepth uint64

	var taken uint64
	blockLen := 0

	for !m.Halted() {
		if m.Executed >= maxInsts {
			return nil, fmt.Errorf("profile: %s exceeded %d instructions", p.Name, maxInsts)
		}
		idx := m.Executed
		rec, err := m.Step()
		if err != nil {
			return nil, err
		}
		in := rec.Inst
		class := isa.ClassOf(in.Op)
		classCounts[class]++

		// Dependence distances and dataflow depth.
		depth := uint64(0)
		for _, src := range in.Sources() {
			r.DepDistance.Add(int(idx - lastWrite[src]))
			if regDepth[src] > depth {
				depth = regDepth[src]
			}
		}
		if class == isa.ClassLoad {
			if d, ok := memDepth[rec.Addr>>2]; ok && d > depth {
				depth = d
			}
			touched[rec.Addr>>2] = struct{}{}
		}
		depth++
		if dest, ok := in.Dest(); ok {
			lastWrite[dest] = idx
			regDepth[dest] = depth
		}
		if class == isa.ClassStore {
			memDepth[rec.Addr>>2] = depth
			touched[rec.Addr>>2] = struct{}{}
		}
		if depth > maxDepth {
			maxDepth = depth
		}

		// Control behaviour.
		blockLen++
		if in.IsControl() {
			r.BasicBlock.Add(blockLen)
			blockLen = 0
		}
		if class == isa.ClassBranch {
			r.CondBranches++
			if rec.Taken {
				taken++
			}
		}
	}

	r.Instructions = m.Executed
	for c, n := range classCounts {
		r.Mix[c] = float64(n) / float64(m.Executed)
	}
	if r.CondBranches > 0 {
		r.TakenRate = float64(taken) / float64(r.CondBranches)
		r.BranchEvery = float64(m.Executed) / float64(r.CondBranches)
	}
	if maxDepth > 0 {
		r.DataflowILP = float64(m.Executed) / float64(maxDepth)
	}
	r.FootprintBytes = uint64(len(touched)) * 4
	return r, nil
}

// WindowCoverage returns the fraction of register dependences whose
// producer is within `window` dynamic instructions — the quantity a
// window (or FIFO bank) of that size can capture.
func (r *Report) WindowCoverage(window int) float64 {
	if r.DepDistance.Total() == 0 {
		return 0
	}
	var covered uint64
	for d := 0; d <= window && d <= 256; d++ {
		covered += r.DepDistance.Count(d)
	}
	return float64(covered) / float64(r.DepDistance.Total())
}

// String renders the profile as a short report.
func (r *Report) String() string {
	out := fmt.Sprintf("%s: %d instructions\n", r.Name, r.Instructions)
	out += fmt.Sprintf("  mix: alu %.0f%%, load %.0f%%, store %.0f%%, branch %.0f%%, jump %.0f%%, mul/div %.0f%%\n",
		r.Mix[isa.ClassALU]*100, r.Mix[isa.ClassLoad]*100, r.Mix[isa.ClassStore]*100,
		r.Mix[isa.ClassBranch]*100, r.Mix[isa.ClassJump]*100,
		(r.Mix[isa.ClassMul]+r.Mix[isa.ClassDiv])*100)
	out += fmt.Sprintf("  branches: every %.1f insts, %.0f%% taken\n", r.BranchEvery, r.TakenRate*100)
	out += fmt.Sprintf("  dependence distance: P50 %d, P90 %d; window-64 coverage %.0f%%\n",
		r.DepDistance.Percentile(50), r.DepDistance.Percentile(90), r.WindowCoverage(64)*100)
	out += fmt.Sprintf("  dataflow-limit ILP: %.1f\n", r.DataflowILP)
	out += fmt.Sprintf("  basic block: mean %.1f insts\n", r.BasicBlock.Mean())
	out += fmt.Sprintf("  memory footprint: %d bytes\n", r.FootprintBytes)
	return out
}
