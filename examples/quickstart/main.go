// Quickstart: assemble a small program, run it on the baseline
// window-based machine and on the dependence-based FIFO machine, and
// compare cycle counts.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/asm"
	"repro/internal/pipeline"
)

// source computes a dot product and a running maximum over two vectors the
// program first fills in — a small taste of the kernels in internal/prog.
const source = `
		.data
a:		.space 400             # 100 words
b:		.space 400
		.text
main:
		# Fill a[i] = 3i+1, b[i] = 2i+7.
		li   $t0, 0
fill:	sll  $t1, $t0, 2
		li   $t2, 3
		mul  $t2, $t0, $t2
		addi $t2, $t2, 1
		sw   $t2, a($t1)
		sll  $t3, $t0, 1
		addi $t3, $t3, 7
		sw   $t3, b($t1)
		addi $t0, $t0, 1
		li   $t4, 100
		blt  $t0, $t4, fill

		# dot = sum a[i]*b[i]; max = max(a[i]*b[i]).
		li   $t0, 0
		li   $s0, 0            # dot
		li   $s1, 0            # max
dot:	sll  $t1, $t0, 2
		lw   $t2, a($t1)
		lw   $t3, b($t1)
		mul  $t4, $t2, $t3
		add  $s0, $s0, $t4
		bge  $s1, $t4, nomax
		move $s1, $t4
nomax:	addi $t0, $t0, 1
		li   $t5, 100
		blt  $t0, $t5, dot

		out  $s0
		out  $s1
		halt
`

func main() {
	prog, err := asm.Assemble("quickstart.s", source)
	if err != nil {
		log.Fatal(err)
	}

	run := func(cfg pipeline.Config) pipeline.Stats {
		sim, err := pipeline.New(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Run(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %6d instructions  %6d cycles  IPC %.2f\n",
			cfg.Name, st.Committed, st.Cycles, st.IPC())
		if len(sim.Machine().Output) >= 2 {
			fmt.Printf("%-22s dot=%d max=%d\n", "", sim.Machine().Output[0], sim.Machine().Output[1])
		}
		return st
	}

	fmt.Println("Complexity-effective superscalar quickstart")
	fmt.Println()
	base := run(ce.BaselineConfig())
	dep := run(ce.DependenceConfig())

	fmt.Println()
	fmt.Printf("IPC ratio (dependence-based / window): %.3f\n", dep.IPC()/base.IPC())
	ratio, err := ce.ClockRatio(ce.Technologies()[2]) // 0.18um
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clock ratio from the delay models (0.18um): %.3f\n", ratio)
	fmt.Printf("net speedup estimate: %.3f\n", dep.IPC()/base.IPC()*ratio)
}
