package pipeline

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/prog"
)

// wpCfg returns a gshare baseline with wrong-path execution toggled.
func wpCfg(name string, wrongPath bool) Config {
	c := cfg(name, 1, 0, window64)
	c.PerfectBPred = false
	c.WrongPathExecution = wrongPath
	return c
}

func runWorkload(t *testing.T, c Config, workload string) (Stats, *Simulator) {
	t.Helper()
	w, err := prog.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(c, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st, sim
}

func TestWrongPathArchitecturallyInvisible(t *testing.T) {
	// The definitive correctness test: with wrong-path execution the
	// committed stream and program outputs must be identical to the
	// functional reference — every speculative effect rolled back.
	for _, workload := range []string{"micro.branchy", "li", "compress"} {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			w, err := prog.ByName(workload)
			if err != nil {
				t.Fatal(err)
			}
			st, sim := runWorkload(t, wpCfg("wp", true), workload)
			if st.SquashedUops == 0 {
				t.Fatal("no squashed uops on a mispredicting workload")
			}
			want := w.Reference()
			got := sim.Machine().Output
			if len(got) != len(want) {
				t.Fatalf("output %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("output[%d] = %d, want %d", i, got[i], want[i])
				}
			}
			// Committed = architectural instruction count: compare with a
			// stall-mode run of the same program.
			stall, _ := runWorkload(t, wpCfg("stall", false), workload)
			if st.Committed != stall.Committed {
				t.Errorf("committed %d (wrong-path) vs %d (stall)", st.Committed, stall.Committed)
			}
			if st.Mispredicts != stall.Mispredicts {
				t.Errorf("mispredicts %d (wrong-path) vs %d (stall): predictor training diverged",
					st.Mispredicts, stall.Mispredicts)
			}
		})
	}
}

func TestWrongPathPollutesCache(t *testing.T) {
	// Wrong-path loads access the data cache; with speculation on, the
	// cache sees at least as many accesses.
	wp, _ := runWorkload(t, wpCfg("wp", true), "micro.branchy")
	stall, _ := runWorkload(t, wpCfg("stall", false), "micro.branchy")
	if wp.Cache.Accesses < stall.Cache.Accesses {
		t.Errorf("wrong-path run made fewer cache accesses (%d) than stall run (%d)",
			wp.Cache.Accesses, stall.Cache.Accesses)
	}
	if wp.SquashedUops == 0 {
		t.Error("no squashes recorded")
	}
}

func TestWrongPathWorksWithFIFOScheduler(t *testing.T) {
	c := wpCfg("wp-fifo", true)
	c.NewScheduler = fifos8x8
	w, err := prog.ByName("micro.branchy")
	if err != nil {
		t.Fatal(err)
	}
	st, sim := runWorkload(t, c, "micro.branchy")
	if st.SquashedUops == 0 {
		t.Fatal("no squashed uops")
	}
	want := w.Reference()
	got := sim.Machine().Output
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestWrongPathClusteredDeterminism(t *testing.T) {
	mk := func() Config {
		cc := wpCfg("wp-clustered", true)
		cc.Clusters = 2
		cc.FUsPerCluster = 4
		cc.InterClusterDelay = 1
		cc.NewScheduler = clustered2x4
		return cc
	}
	a, _ := runWorkload(t, mk(), "gcc")
	b, _ := runWorkload(t, mk(), "gcc")
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.SquashedUops != b.SquashedUops {
		t.Errorf("non-deterministic wrong-path run: %+v vs %+v", a, b)
	}
	if a.SquashedUops == 0 {
		t.Error("no squashes on gcc")
	}
}

func TestWrongPathOffPathDeadEnd(t *testing.T) {
	// A misprediction whose wrong path immediately runs off the end of
	// the text segment: speculation must idle gracefully, then recover.
	src := `
		.text
		li   $s0, 200
		li   $t0, 98765
		li   $t8, 1103515245
loop:	mul  $t0, $t0, $t8
		addi $t0, $t0, 12345
		srl  $t1, $t0, 16
		andi $t1, $t1, 1
		beq  $t1, $zero, skip
		addi $s1, $s1, 1
skip:	addi $s0, $s0, -1
		bgtz $s0, loop
		out  $s1
		halt
	`
	c := wpCfg("deadend", true)
	p := mustProgram(t, src)
	sim, err := New(c, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed == 0 || st.Mispredicts == 0 {
		t.Fatalf("run did not exercise mispredictions: %+v", st)
	}
}

func TestKitchenSinkConfiguration(t *testing.T) {
	// Every optional feature at once: wrong-path execution, store
	// forwarding, I-cache, fetch break, ring topology on four clusters,
	// pipelined wakeup+select and late local bypass. The run must stay
	// architecturally exact and deterministic.
	mk := func() Config {
		c := cfg("kitchen-sink", 4, 1, func() core.Scheduler {
			return core.NewFIFOBank(core.FIFOBankConfig{
				Name: "sink", Clusters: 4, FIFOsPerCluster: 2, Depth: 8,
			})
		})
		c.FUsPerCluster = 2
		c.PerfectBPred = false
		c.WrongPathExecution = true
		c.StoreForwarding = true
		c.FetchBreakOnTaken = true
		c.RingTopology = true
		c.PipelinedWakeupSelect = true
		c.LocalBypassExtra = 1
		ic := cache.Config{SizeBytes: 8 << 10, Ways: 2, LineBytes: 32, HitCycles: 1, MissCycles: 6}
		c.ICache = &ic
		c.RecordTimeline = false
		return c
	}
	for _, workload := range []string{"micro.branchy", "vortex"} {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			w, err := prog.ByName(workload)
			if err != nil {
				t.Fatal(err)
			}
			st, sim := runWorkload(t, mk(), workload)
			want := w.Reference()
			got := sim.Machine().Output
			if len(got) != len(want) {
				t.Fatalf("output %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("output[%d] = %d, want %d", i, got[i], want[i])
				}
			}
			if st.Committed != sim.Machine().Executed {
				t.Errorf("committed %d != executed %d", st.Committed, sim.Machine().Executed)
			}
			st2, _ := runWorkload(t, mk(), workload)
			if st.Cycles != st2.Cycles || st.SquashedUops != st2.SquashedUops {
				t.Errorf("non-deterministic: %d/%d vs %d/%d cycles/squashes",
					st.Cycles, st.SquashedUops, st2.Cycles, st2.SquashedUops)
			}
		})
	}
}
