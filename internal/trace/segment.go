package trace

// Time-parallel segmentation (SMARTS/SimPoint-style): the one functional
// execution that captures a trace also records periodic boundaries —
// cheap architectural checkpoints of the *replay* cursor. Because the
// timing simulator consumes nothing but the Record stream, a boundary
// (step count, packed-stream offset, next PC) is a complete warm-start
// point: a Reader opened there replays the identical record suffix the
// monolithic run would have seen, with no register file or memory image
// to restore. The segment scheduler in the root package fans a
// workload's segments across workers and stitches the per-segment Stats
// deltas; internal/verify pins that full-warmup stitching is exact.

import (
	"fmt"
	"sort"
)

// boundaryInterval is the spacing, in dynamic instructions, of the
// boundaries captured during recording. 2^15 keeps the table to ~20
// bytes per 32k instructions (noise next to the ~1 byte/instruction
// stream) while letting warm-start points land within 32k instructions
// of any requested cut.
const boundaryInterval = 1 << 15

// Boundary is one warm-start point inside a trace: the state of a
// Reader that has replayed exactly Step records.
type Boundary struct {
	// Step is the number of dynamic records replayed before this point.
	Step uint64
	// Pos is the byte offset into the packed stream.
	Pos uint64
	// PC is the next instruction to replay.
	PC uint32
}

// Segment is a contiguous slice of a trace's dynamic instructions:
// records [Start.Step, End.Step). Start is always a true boundary (a
// Reader can be opened there); End is the next segment's Start, or the
// trace's end for the final segment.
type Segment struct {
	Index int
	Start Boundary
	End   Boundary
}

// Steps returns the number of dynamic instructions in the segment.
func (s Segment) Steps() uint64 { return s.End.Step - s.Start.Step }

// startBoundary is the implicit boundary before the first record.
func (t *Trace) startBoundary() Boundary { return Boundary{PC: t.entryPC} }

// endBoundary marks the end of the trace. Its PC is not a replay point
// (the trace ends in Halt); only Step and Pos are meaningful.
func (t *Trace) endBoundary() Boundary {
	return Boundary{Step: t.n, Pos: t.packedLen}
}

// Boundaries returns the number of stored warm-start boundaries.
func (t *Trace) Boundaries() int { return len(t.bounds) }

// boundaryNear returns the stored boundary whose Step is nearest to
// target (false if none are stored).
func (t *Trace) boundaryNear(target uint64) (Boundary, bool) {
	if len(t.bounds) == 0 {
		return Boundary{}, false
	}
	i := sort.Search(len(t.bounds), func(i int) bool { return t.bounds[i].Step >= target })
	if i == len(t.bounds) {
		return t.bounds[i-1], true
	}
	if i > 0 && target-t.bounds[i-1].Step < t.bounds[i].Step-target {
		return t.bounds[i-1], true
	}
	return t.bounds[i], true
}

// Segments cuts the trace into up to k contiguous segments at the
// stored boundaries nearest to the ideal k-way split points. Short
// traces (fewer boundaries than requested cuts) yield fewer segments —
// possibly one — never an error: segmentation degrades gracefully to
// the monolithic run. The segments partition [0, Steps()) exactly.
func (t *Trace) Segments(k int) []Segment {
	if k < 1 {
		k = 1
	}
	cuts := []Boundary{t.startBoundary()}
	for i := 1; i < k; i++ {
		b, ok := t.boundaryNear(t.n * uint64(i) / uint64(k))
		if !ok || b.Step <= cuts[len(cuts)-1].Step || b.Step >= t.n {
			continue
		}
		cuts = append(cuts, b)
	}
	segs := make([]Segment, len(cuts))
	for i, c := range cuts {
		end := t.endBoundary()
		if i+1 < len(cuts) {
			end = cuts[i+1]
		}
		segs[i] = Segment{Index: i, Start: c, End: end}
	}
	return segs
}

// WarmStart returns the boundary at which to begin replaying seg so
// that at least warmup dynamic instructions run (their cycles
// discarded) before measurement starts at seg.Start. warmup < 0
// selects the full prefix — replay from the very beginning, which makes
// the segment run an exact stopped-early copy of the monolithic
// simulation and the stitched statistics bit-identical to it.
func (t *Trace) WarmStart(seg Segment, warmup int64) Boundary {
	if warmup < 0 || uint64(warmup) >= seg.Start.Step {
		return t.startBoundary()
	}
	desired := seg.Start.Step - uint64(warmup)
	i := sort.Search(len(t.bounds), func(i int) bool { return t.bounds[i].Step > desired })
	if i == 0 {
		return t.startBoundary()
	}
	return t.bounds[i-1]
}

// NewReaderAt returns a cursor positioned at boundary b, exactly as if
// a fresh Reader had replayed b.Step records. b must be a boundary of
// this trace (its start, or one returned by WarmStart / Segments). Only
// the chunk containing b is loaded; later chunks stream in as the
// cursor crosses into them.
func NewReaderAt(t *Trace, b Boundary) (*Reader, error) {
	if b.Step > t.n || b.Pos > t.packedLen {
		return nil, fmt.Errorf("trace: boundary step %d / pos %d outside the trace (%d steps, %d bytes)",
			b.Step, b.Pos, t.n, t.packedLen)
	}
	if b.Step < t.n && b.PC >= uint32(len(t.prog.Text)) {
		return nil, fmt.Errorf("trace: boundary pc %d outside the text segment (%d instructions)", b.PC, len(t.prog.Text))
	}
	r := &Reader{
		t:      t,
		text:   t.prog.Text,
		pc:     b.PC,
		step:   b.Step,
		halted: b.Step == t.n,
	}
	if r.halted {
		return r, nil
	}
	ci := 0
	if t.chunkRecs > 0 {
		ci = int(b.Step / t.chunkRecs)
	}
	if ci >= len(t.chunks) {
		return nil, fmt.Errorf("trace: boundary step %d has no chunk (%d chunks of %d records)", b.Step, len(t.chunks), t.chunkRecs)
	}
	if err := r.load(ci, b.Pos); err != nil {
		r.Release()
		return nil, err
	}
	return r, nil
}
