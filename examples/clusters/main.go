// Clusters sweeps the clustered dependence-based design space on one
// workload: cluster count and inter-cluster bypass latency, reporting IPC
// and inter-cluster bypass frequency for each point (the Section 5.4–5.6
// design space beyond the paper's 2×4-way point).
//
// Run with: go run ./examples/clusters [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/core"
)

func main() {
	workload := "perl"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	fmt.Printf("Clustered dependence-based design space on %q\n", workload)
	fmt.Printf("(8 total FUs and 64 total FIFO entries in every organization)\n\n")
	fmt.Printf("%-10s %-18s %8s %8s %12s\n", "clusters", "bypass latency", "IPC", "vs base", "inter-cluster")

	base, err := ce.Run(ce.BaselineConfig(), workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-18s %8.2f %8s %12s\n", "1 (window)", "uniform 1 cycle", base.IPC(), "-", "-")

	for _, clusters := range []int{1, 2, 4} {
		for _, extra := range []int{1, 2, 3} {
			if clusters == 1 && extra > 1 {
				continue // no inter-cluster paths to slow down
			}
			clusters, extra := clusters, extra
			cfg := ce.BaselineConfig()
			cfg.Name = fmt.Sprintf("%dx%dway", clusters, 8/clusters)
			cfg.Clusters = clusters
			cfg.FUsPerCluster = 8 / clusters
			cfg.InterClusterDelay = extra - 1
			cfg.NewScheduler = func() core.Scheduler {
				return core.NewFIFOBank(core.FIFOBankConfig{
					Name:            cfg.Name,
					Clusters:        clusters,
					FIFOsPerCluster: 8 / clusters,
					Depth:           8, // 8 FIFOs of 8 entries in total
				})
			}
			st, err := ce.Run(cfg, workload)
			if err != nil {
				log.Fatal(err)
			}
			label := fmt.Sprintf("local 1, remote %d", extra)
			if clusters == 1 {
				label = "uniform 1 cycle"
			}
			fmt.Printf("%-10d %-18s %8.2f %7.1f%% %11.1f%%\n",
				clusters, label, st.IPC(), (st.IPC()/base.IPC()-1)*100,
				st.InterClusterFrequency()*100)
		}
	}

	fmt.Println("\nDependence steering keeps chains local, so IPC degrades gracefully as")
	fmt.Println("inter-cluster latency grows — the paper's argument for clustering the")
	fmt.Println("dependence-based microarchitecture (Section 5.4).")
}
