package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		.text
		add  $t0, $t1, $t2
		addi $t0, $t1, -5
		lw   $t3, 8($sp)
		sw   $t3, -4($sp)
		lui  $t4, 0x1234
	`)
	want := []isa.Inst{
		{Op: isa.Add, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
		{Op: isa.Addi, Rd: isa.T0, Rs: isa.T1, Imm: -5},
		{Op: isa.Lw, Rd: isa.T3, Rs: isa.SP, Imm: 8},
		{Op: isa.Sw, Rt: isa.T3, Rs: isa.SP, Imm: -4},
		{Op: isa.Lui, Rd: isa.T4, Imm: 0x1234},
	}
	if len(p.Text) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(p.Text), len(want))
	}
	for i, w := range want {
		if p.Text[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, p.Text[i], w)
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
		.text
main:	li   $t0, 3
loop:	addi $t0, $t0, -1
		bne  $t0, $zero, loop
		j    end
		nop
end:	halt
	`)
	if p.Symbols["main"] != 0 || p.Symbols["loop"] != 1 || p.Symbols["end"] != 5 {
		t.Fatalf("symbols = %v", p.Symbols)
	}
	if p.Text[2].Imm != 1 {
		t.Errorf("bne target = %d, want 1", p.Text[2].Imm)
	}
	if p.Text[3].Imm != 5 {
		t.Errorf("j target = %d, want 5", p.Text[3].Imm)
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.data
words:	.word 1, 2, 0x10
bytes:	.byte 1, 2, 3
		.align 2
more:	.word -1
buf:	.space 8
str:	.asciiz "ab"
		.text
		halt
	`)
	if got := p.Symbols["words"]; got != isa.DataBase {
		t.Errorf("words at %#x, want %#x", got, isa.DataBase)
	}
	if got := p.Symbols["bytes"]; got != isa.DataBase+12 {
		t.Errorf("bytes at %#x, want %#x", got, isa.DataBase+12)
	}
	if got := p.Symbols["more"]; got != isa.DataBase+16 {
		t.Errorf("more at %#x, want %#x (aligned)", got, isa.DataBase+16)
	}
	if got := p.Symbols["str"]; got != isa.DataBase+28 {
		t.Errorf("str at %#x, want %#x", got, isa.DataBase+28)
	}
	// Little-endian word layout.
	if p.Data[0] != 1 || p.Data[4] != 2 || p.Data[8] != 0x10 {
		t.Errorf("word data wrong: % x", p.Data[:12])
	}
	if string(p.Data[28:30]) != "ab" || p.Data[30] != 0 {
		t.Errorf("asciiz data wrong: % x", p.Data[28:31])
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
		.data
v:		.word 7
		.text
		la   $a0, v
		li   $t0, 42
		move $t1, $t0
		not  $t2, $t1
		neg  $t3, $t1
		sll  $t4, $t3, 2
		sll  $t5, $t3, $t0
		b    done
done:	halt
	`)
	if p.Text[0].Op != isa.Addi || uint32(p.Text[0].Imm) != isa.DataBase {
		t.Errorf("la = %+v", p.Text[0])
	}
	if p.Text[1].Op != isa.Addi || p.Text[1].Imm != 42 {
		t.Errorf("li = %+v", p.Text[1])
	}
	if p.Text[2].Op != isa.Add || p.Text[2].Rt != isa.Zero {
		t.Errorf("move = %+v", p.Text[2])
	}
	if p.Text[3].Op != isa.Nor {
		t.Errorf("not = %+v", p.Text[3])
	}
	if p.Text[4].Op != isa.Sub || p.Text[4].Rs != isa.Zero {
		t.Errorf("neg = %+v", p.Text[4])
	}
	if p.Text[5].Op != isa.Slli || p.Text[5].Imm != 2 {
		t.Errorf("sll imm = %+v", p.Text[5])
	}
	if p.Text[6].Op != isa.Sllv || p.Text[6].Rt != isa.T0 {
		t.Errorf("sll reg = %+v", p.Text[6])
	}
	if p.Text[7].Op != isa.J || p.Text[7].Imm != 8 {
		t.Errorf("b = %+v", p.Text[7])
	}
}

func TestLabelArithmeticInLoadStore(t *testing.T) {
	p := mustAssemble(t, `
		.data
arr:	.word 10, 20, 30
		.text
		lw $t0, arr+8($zero)
		lw $t1, arr($t2)
		halt
	`)
	if uint32(p.Text[0].Imm) != isa.DataBase+8 {
		t.Errorf("arr+8 offset = %#x, want %#x", uint32(p.Text[0].Imm), isa.DataBase+8)
	}
	if uint32(p.Text[1].Imm) != isa.DataBase {
		t.Errorf("arr offset = %#x, want %#x", uint32(p.Text[1].Imm), isa.DataBase)
	}
}

func TestForwardDataReference(t *testing.T) {
	p := mustAssemble(t, `
		.text
		la $a0, later
		halt
		.data
		.word 1
later:	.word 2
	`)
	if uint32(p.Text[0].Imm) != isa.DataBase+4 {
		t.Errorf("forward reference = %#x, want %#x", uint32(p.Text[0].Imm), isa.DataBase+4)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"\t.text\n\tfrob $t0, $t1", "unknown instruction"},
		{"\t.text\n\tadd $t0, $t1", "missing operand"},
		{"\t.text\n\tadd $t0, $t1, $nope", "unknown register"},
		{"\t.text\n\tbeq $t0, $t1, nowhere\n", "undefined symbol"},
		{"\t.text\nx:\tnop\nx:\tnop", "duplicate label"},
		{"\t.word 3", ".word outside .data"},
		{"\t.data\n\tnop", "instruction inside .data"},
		{"\t.frobnicate", "unknown directive"},
		{"\t.text\n\tlw $t0, $t1", "bad memory operand"},
		{"\t.text\n\tlw $t0", "want 'reg, offset(base)'"},
		{"\t.text\n\tlw $t0, 4[$t1]", "bad memory operand"},
	}
	for _, c := range cases {
		_, err := Assemble("err.s", c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Assemble(%q) error = %q, want containing %q", c.src, err, c.wantSub)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("file.s", "\t.text\n\tnop\n\tbogus $t0\n")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.HasPrefix(err.Error(), "file.s:3:") {
		t.Errorf("error = %q, want file.s:3: prefix", err)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := mustAssemble(t, `
# leading comment
		.text
		nop   # trailing comment

		halt
	`)
	if len(p.Text) != 2 {
		t.Errorf("got %d instructions, want 2", len(p.Text))
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	p := mustAssemble(t, `
		.text
a: b:	nop
		halt
	`)
	if p.Symbols["a"] != 0 || p.Symbols["b"] != 0 {
		t.Errorf("symbols = %v, want a=b=0", p.Symbols)
	}
}

func TestMoreErrorPaths(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"\t.data\n\t.align 99", "out of range"},
		{"\t.data\n\t.align 0", "out of range"},
		{"\t.data\n\t.asciiz noquotes", "bad string"},
		{"\t.data\n\t.space -4", "negative size"},
		{"\t.text\n\tb", "want one target operand"},
		{"\t.text\n\tb x, y", "want one target operand"},
		{"\t.text\n\tj", "want one target operand"},
		{"\t.text\n\tbeq $t0, $t1", "want 'rs, rt, target'"},
		{"\t.text\n\tbgtz $t0", "want 'rs, target'"},
		{"\t.text\n\tli $t0", "missing immediate operand"},
		{"\t.text\n\tout", "missing operand"},
		{"\t.text\n\tadd t0, $t1, $t2", "want register"},
		{"\t.text\n\tlw $t0, 4($nope)", "unknown base register"},
		{"\t.text\n\tlw $t0, 4(t1)", "bad base register"},
		{"\t.text\n\taddi $t0, $t1, 99999999999999", "undefined symbol"},
		{"\t.asciiz \"top\"", ".asciiz outside .data"},
		{"\t.byte 3", ".byte outside .data"},
	}
	for _, c := range cases {
		_, err := Assemble("err.s", c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Assemble(%q) error = %q, want containing %q", c.src, err, c.wantSub)
		}
	}
}

func TestLabelMinusOffset(t *testing.T) {
	p := mustAssemble(t, `
		.data
		.word 1, 2, 3
arr:	.word 4
		.text
		lw $t0, arr-4($zero)
		halt
	`)
	if uint32(p.Text[0].Imm) != isa.DataBase+8 {
		t.Errorf("arr-4 = %#x, want %#x", uint32(p.Text[0].Imm), isa.DataBase+8)
	}
}

func TestHexAndNegativeImmediates(t *testing.T) {
	p := mustAssemble(t, `
		.text
		li $t0, 0xFFFFFFFF
		li $t1, -2147483648
		halt
	`)
	if p.Text[0].Imm != -1 {
		t.Errorf("0xFFFFFFFF = %d, want -1 (wraps)", p.Text[0].Imm)
	}
	if p.Text[1].Imm != -2147483648 {
		t.Errorf("INT_MIN = %d", p.Text[1].Imm)
	}
}
