package core

// UopPool is a per-simulator free list of Uops. Fetch allocates one Uop
// per dynamic instruction; recycling them at commit and squash keeps the
// simulator's steady state allocation-free instead of churning the GC.
// Not safe for concurrent use — each Simulator owns its own pool.
type UopPool struct {
	free []*Uop
}

// Get returns a zeroed Uop, reusing a recycled one when available. The
// PhysSrcs backing array is retained across recycling so rename can
// append into it without allocating.
//
//ce:hot
func (p *UopPool) Get() *Uop {
	n := len(p.free)
	if n == 0 {
		return &Uop{} //ce:alloc-ok pool miss: one allocation per pool high-water mark, amortized across the run
	}
	u := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	srcs := u.PhysSrcs[:0]
	*u = Uop{PhysSrcs: srcs}
	return u
}

// Put recycles a Uop the pipeline no longer references. The caller must
// guarantee no queue, scheduler or waiter list still points at u.
//
//ce:hot
func (p *UopPool) Put(u *Uop) {
	if u == nil {
		return
	}
	p.free = append(p.free, u)
}
