package ce

import (
	"testing"
)

// eqStats compares the deterministic Stats fields (host telemetry
// legitimately differs between a monolithic run and a segmented one).
func eqStats(t *testing.T, label string, got, want Stats) {
	t.Helper()
	g, w := got, want
	g.HostAllocs, w.HostAllocs = 0, 0
	g.HostWallSeconds, w.HostWallSeconds = 0, 0
	gh, wh := g.IssuedPerCycle, w.IssuedPerCycle
	g.IssuedPerCycle, w.IssuedPerCycle = nil, nil
	if g != w {
		t.Errorf("%s: stats diverge:\n  got  %+v\n  want %+v", label, g, w)
	}
	if gh.Total() != wh.Total() {
		t.Errorf("%s: issue histogram records %d cycles, want %d", label, gh.Total(), wh.Total())
	}
	for v := 0; v <= 8; v++ {
		if gh.Count(v) != wh.Count(v) {
			t.Errorf("%s: issue histogram bucket %d = %d, want %d", label, v, gh.Count(v), wh.Count(v))
		}
	}
}

// TestEngineSegmentedExactMatchesMonolithic is the engine-level
// exactness differential: a matrix run under full-warmup segmentation
// must reproduce the monolithic engine's results bit for bit, and its
// runs must carry Exact segment metrics.
func TestEngineSegmentedExactMatchesMonolithic(t *testing.T) {
	cfgs := []Config{BaselineConfig(), DependenceConfig()}
	ws := []string{"micro.branchy"}

	mono := NewEngine()
	want, err := mono.RunMatrix(cfgs, ws)
	if err != nil {
		t.Fatal(err)
	}
	seg := NewEngine()
	seg.SetSegments(4)
	got, err := seg.RunMatrix(cfgs, ws)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range cfgs {
		eqStats(t, cfgs[ci].Name, got[ci][0], want[ci][0])
	}
	ts := seg.TraceStats()
	if ts.SegmentRuns != len(cfgs) {
		t.Errorf("segment runs = %d, want %d", ts.SegmentRuns, len(cfgs))
	}
	if ts.SegmentsSimulated < 2*len(cfgs) {
		t.Errorf("segments simulated = %d, want ≥ %d", ts.SegmentsSimulated, 2*len(cfgs))
	}
	for _, m := range seg.Metrics() {
		if m.Segments == nil {
			t.Fatalf("run %s/%s carries no segment metrics", m.Config, m.Workload)
		}
		if !m.Segments.Exact {
			t.Errorf("full-warmup run %s/%s not marked exact", m.Config, m.Workload)
		}
		if m.Segments.Simulated != m.Segments.Segments {
			t.Errorf("unsampled run simulated %d of %d segments", m.Segments.Simulated, m.Segments.Segments)
		}
		if !m.Replayed {
			t.Errorf("segmented run %s/%s not marked replayed", m.Config, m.Workload)
		}
	}
}

// TestEngineSegmentedSharesExactCacheKey pins the cache-key policy:
// exact segmentation shares the monolithic key (the bits are
// identical), while approximate plans are keyed separately in both
// directions.
func TestEngineSegmentedSharesExactCacheKey(t *testing.T) {
	eng := NewEngine()
	w := []string{"micro.branchy"}
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, w); err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Misses != 1 {
		t.Fatalf("monolithic run: %+v", cs)
	}
	// Exact segmentation: same result, so the cache may (must) serve it.
	eng.SetSegments(4)
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, w); err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Misses != 1 || cs.Saved() != 1 {
		t.Errorf("exact segmented run did not share the monolithic key: %+v", cs)
	}
	// Finite warmup is an estimate: it must not be served the exact
	// result, nor poison it for the monolithic run that follows.
	eng.SetSegmentWarmup(1 << 14)
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, w); err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Misses != 2 {
		t.Errorf("approximate plan shared the exact key: %+v", cs)
	}
	eng.SetSegments(0)
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, w); err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Misses != 2 || cs.Saved() != 2 {
		t.Errorf("monolithic rerun after approximate plan: %+v", cs)
	}
}

// TestEngineSampledSegments exercises the sampling stride: every
// second segment is simulated, the metrics say so, and the IPC estimate
// lands near the monolithic truth.
func TestEngineSampledSegments(t *testing.T) {
	mono := NewEngine()
	want, err := mono.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	eng.SetSegments(4)
	eng.SetSegmentWarmup(1 << 14)
	eng.SetSegmentSample(2)
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	ms := eng.Metrics()
	if len(ms) != 1 || ms[0].Segments == nil {
		t.Fatalf("expected one run with segment metrics, got %+v", ms)
	}
	sm := ms[0].Segments
	if sm.Exact {
		t.Error("sampled run marked exact")
	}
	if sm.Simulated >= sm.Segments {
		t.Errorf("sampling simulated %d of %d segments", sm.Simulated, sm.Segments)
	}
	if sm.IPCMean <= 0 {
		t.Errorf("sampled IPC mean %v", sm.IPCMean)
	}
	trueIPC := want[0][0].IPC()
	if sm.IPCMean < trueIPC*0.8 || sm.IPCMean > trueIPC*1.2 {
		t.Errorf("sampled IPC %.3f not within 20%% of monolithic %.3f", sm.IPCMean, trueIPC)
	}
	if sm.EstimatedCycles <= 0 {
		t.Errorf("estimated cycles %d", sm.EstimatedCycles)
	}
}

// TestEngineAdaptiveWarmup exercises IPC-convergence warmup: the run is
// approximate (own cache key), the metrics report the adaptive policy
// with a bounded mean discard, and the estimate lands near the truth.
func TestEngineAdaptiveWarmup(t *testing.T) {
	mono := NewEngine()
	want, err := mono.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	eng.SetSegments(4)
	eng.SetSegmentAdaptive(true)
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	ms := eng.Metrics()
	if len(ms) != 1 || ms[0].Segments == nil {
		t.Fatalf("expected one run with segment metrics, got %+v", ms)
	}
	sm := ms[0].Segments
	if !sm.AdaptiveWarmup || sm.Exact || sm.Warmup != 0 {
		t.Errorf("adaptive run misreported: %+v", sm)
	}
	if sm.WarmupConverged < 0 || sm.WarmupConverged > sm.Simulated {
		t.Errorf("WarmupConverged = %d of %d simulated", sm.WarmupConverged, sm.Simulated)
	}
	if sm.WarmupMeanSteps < 0 || sm.WarmupMeanSteps > 65536 {
		t.Errorf("WarmupMeanSteps = %f, want within the adaptive cap", sm.WarmupMeanSteps)
	}
	trueIPC := want[0][0].IPC()
	if sm.IPCMean < trueIPC*0.8 || sm.IPCMean > trueIPC*1.2 {
		t.Errorf("adaptive IPC %.3f not within 20%% of monolithic %.3f", sm.IPCMean, trueIPC)
	}
	// Adaptive is an estimate: it must not share the exact cache key.
	eng.SetSegments(0)
	eng.SetSegmentAdaptive(false)
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Misses != 2 {
		t.Errorf("adaptive plan shared the exact key: %+v", cs)
	}
}

// TestEnginePhaseSampling exercises phase-clustered sampling end to
// end: segments cluster by their basic-block vectors, one
// representative per phase is timed, and the cluster-weighted estimate
// lands near the monolithic truth.
func TestEnginePhaseSampling(t *testing.T) {
	mono := NewEngine()
	want, err := mono.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	eng.SetSegments(8)
	eng.SetSegmentWarmup(1 << 13)
	eng.SetSegmentPhases(3)
	if _, err := eng.RunMatrix([]Config{BaselineConfig()}, []string{"micro.branchy"}); err != nil {
		t.Fatal(err)
	}
	ms := eng.Metrics()
	if len(ms) != 1 || ms[0].Segments == nil {
		t.Fatalf("expected one run with segment metrics, got %+v", ms)
	}
	sm := ms[0].Segments
	if sm.Mode != "phase" {
		t.Fatalf("mode %q, want phase", sm.Mode)
	}
	if sm.Phases < 1 || sm.Phases > 3 || sm.Simulated != sm.Phases {
		t.Errorf("phase plan: %d phases, %d simulated of %d segments", sm.Phases, sm.Simulated, sm.Segments)
	}
	if sm.Exact {
		t.Error("phase-sampled run marked exact")
	}
	trueIPC := want[0][0].IPC()
	if sm.IPCMean < trueIPC*0.8 || sm.IPCMean > trueIPC*1.2 {
		t.Errorf("phase-weighted IPC %.3f not within 20%% of monolithic %.3f", sm.IPCMean, trueIPC)
	}
	if sm.EstimatedCycles <= 0 {
		t.Errorf("estimated cycles %d", sm.EstimatedCycles)
	}
}

// TestSegmentBench smoke-tests the benchmark harness on a small
// workload: both sides run, the speedup is computed, and the estimate
// is self-consistent.
func TestSegmentBench(t *testing.T) {
	res, err := SegmentBench("micro.branchy", 4, 2, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	if res.MonoCycles <= 0 || res.MonoIPC <= 0 {
		t.Fatalf("monolithic side empty: %+v", res)
	}
	if res.SampledIPC <= 0 || res.Speedup <= 0 {
		t.Fatalf("sampled side empty: %+v", res)
	}
	if res.Segments < 2 || res.Sample != 2 {
		t.Errorf("plan not honoured: %+v", res)
	}
	if res.IPCErrorPct < -50 || res.IPCErrorPct > 50 {
		t.Errorf("sampled IPC off by %.1f%%", res.IPCErrorPct)
	}
}
