package errclass_test

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"syscall"
	"testing"

	"repro/internal/errclass"
)

func TestTransientWrap(t *testing.T) {
	base := errors.New("disk full")
	err := errclass.Transient(base)
	if !errclass.IsTransient(err) {
		t.Fatalf("Transient(err) not IsTransient: %v", err)
	}
	if errclass.IsCorrupt(err) {
		t.Fatalf("Transient(err) reports IsCorrupt: %v", err)
	}
	if !errors.Is(err, base) {
		t.Fatalf("Transient(err) lost the cause: %v", err)
	}
	// Classification survives further %w wrapping at call boundaries.
	outer := fmt.Errorf("saving artifact: %w", err)
	if !errclass.IsTransient(outer) || !errors.Is(outer, base) {
		t.Fatalf("wrap of Transient lost classification or cause: %v", outer)
	}
}

func TestCorruptWrap(t *testing.T) {
	base := errors.New("checksum mismatch")
	err := errclass.Corrupt(base)
	if !errclass.IsCorrupt(err) {
		t.Fatalf("Corrupt(err) not IsCorrupt: %v", err)
	}
	if errclass.IsTransient(err) {
		t.Fatalf("Corrupt(err) reports IsTransient: %v", err)
	}
	outer := fmt.Errorf("loading artifact: %w", err)
	if !errclass.IsCorrupt(outer) || !errors.Is(outer, base) {
		t.Fatalf("wrap of Corrupt lost classification or cause: %v", outer)
	}
}

// TestRawOSErrorsAreTransient pins the fail-safe heuristic: unclassified
// operating-system errors count as transient so they are never memoized,
// even when a call path missed its explicit classification.
func TestRawOSErrorsAreTransient(t *testing.T) {
	cases := []error{
		&os.PathError{Op: "open", Path: "x", Err: syscall.ENOSPC},
		&os.LinkError{Op: "rename", Old: "a", New: "b", Err: syscall.EXDEV},
		os.NewSyscallError("write", syscall.EIO),
		syscall.EMFILE,
		fmt.Errorf("wrapped: %w", &fs.PathError{Op: "read", Path: "y", Err: syscall.EAGAIN}),
	}
	for _, err := range cases {
		if !errclass.IsTransient(err) {
			t.Errorf("IsTransient(%T %v) = false, want true", err, err)
		}
	}
}

// TestDeterministicErrorsAreUnclassified pins the other side: plain
// errors with no OS pedigree and no classifier wrap are neither
// transient nor corrupt, so callers like runcache memoize them.
func TestDeterministicErrorsAreUnclassified(t *testing.T) {
	err := fmt.Errorf("program exceeded %d instructions", 1000)
	if errclass.IsTransient(err) || errclass.IsCorrupt(err) {
		t.Fatalf("deterministic error classified: %v", err)
	}
}
