package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/errclass"
	"repro/internal/isa"
)

// classify assigns an errclass category to an error leaving the trace
// package's disk paths: already-classified errors (and nil) pass
// through untouched; anything else came from an environment call on
// these paths — an os or io failure — and is marked Transient. Corrupt
// classifications are never applied here blindly: structural validation
// failures wrap errclass.ErrCorrupt at the site that detects them,
// where the judgement "this artifact is bad, not the environment" is
// actually made.
//
//ce:classifier
func classify(err error) error {
	if err == nil || errclass.IsTransient(err) || errclass.IsCorrupt(err) {
		return err
	}
	return errclass.Transient(err)
}

// On-disk layout, version 3 (all integers little-endian):
//
//	magic     "CETRACE\x03"           8 bytes
//	progHash  ProgHash(prog)         32 bytes
//	chunks    the packed stream, chunk after chunk (no framing)
//	footer    see below
//	footerLen uint64                  8 bytes
//	footerSum sha256 of the footer   32 bytes
//
// footer:
//
//	entryPC   uint32
//	steps     uint64
//	chunkRecs uint64                  records per full chunk
//	nChunks   uint32
//	chunks    nChunks × {packedLen uint32, sum [32]byte}
//	nBounds   uint32
//	bounds    nBounds × {step uint64, pos uint64, pc uint32}
//	bbvDim    uint32
//	bbvIval   uint64
//	nBBV      uint32                  total uint32 counts (intervals × dim)
//	bbv       nBBV × uint32
//	nOutput   uint32
//	output    nOutput × int32
//	stateHash [32]byte
//
// The layout is append-only in capture order — header, then chunk bytes
// as they seal, then everything known only at halt — so a capture
// streams straight to disk with O(chunk) memory. Each chunk carries its
// own checksum, verified when the chunk is *loaded*, so a reader can
// consume a multi-gigabyte trace one chunk at a time without a
// whole-file pass; the footer carries its own trailing checksum,
// verified at open, covering all metadata. Truncation is caught
// structurally: header + chunk bytes + footer + trailer must tile the
// file exactly.
//
// Version 2 stored the packed stream as one unchunked blob with a
// whole-file checksum and no basic-block vectors; version 1 lacked the
// boundary table. Both old magics are recognized and rejected with
// ErrStaleFormat — the chunk table and BBV profile are properties of
// the capture, so an old file cannot be upgraded without re-executing
// the workload anyway. The caller deletes the file and recaptures.
//
// The progHash pins the trace to one exact program image. Readers treat
// any mismatch as "no trace": the caller deletes the file and
// recaptures, mirroring runcache.loadDisk's corrupt-entry hardening.

var diskMagic = [8]byte{'C', 'E', 'T', 'R', 'A', 'C', 'E', 3}

// ErrStaleFormat marks a structurally recognizable trace file of an
// older format version, which must be deleted and recaptured. It wraps
// errclass.ErrCorrupt: like any failed-validation artifact, a stale
// file is deletable and rebuildable, never memoizable.
var ErrStaleFormat = fmt.Errorf("trace: stale trace format: %w", errclass.ErrCorrupt)

const boundaryBytes = 8 + 8 + 4

const chunkMetaBytes = 4 + 32

// trailerLen is the fixed suffix: footerLen + footerSum.
const trailerLen = 8 + 32

// DiskPath returns the canonical file name for a program's trace under
// dir: content-addressed by program hash, so a recompiled program gets a
// fresh slot instead of a mismatch error.
func DiskPath(dir string, p *isa.Program) string { return diskPath(dir, ProgHash(p)) }

func diskPath(dir string, ph [32]byte) string {
	return filepath.Join(dir, hex.EncodeToString(ph[:])[:32]+".cetrace")
}

// appendFooter serializes the trace's metadata footer.
func appendFooter(buf []byte, t *Trace) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, t.entryPC)
	buf = binary.LittleEndian.AppendUint64(buf, t.n)
	buf = binary.LittleEndian.AppendUint64(buf, t.chunkRecs)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.chunks)))
	for _, c := range t.chunks {
		buf = binary.LittleEndian.AppendUint32(buf, c.packedLen)
		buf = append(buf, c.sum[:]...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.bounds)))
	for _, b := range t.bounds {
		buf = binary.LittleEndian.AppendUint64(buf, b.Step)
		buf = binary.LittleEndian.AppendUint64(buf, b.Pos)
		buf = binary.LittleEndian.AppendUint32(buf, b.PC)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.bbv.Dim))
	buf = binary.LittleEndian.AppendUint64(buf, t.bbv.Interval)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.bbv.Counts)))
	for _, c := range t.bbv.Counts {
		buf = binary.LittleEndian.AppendUint32(buf, c)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.output)))
	for _, v := range t.output {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = append(buf, t.stateHash[:]...)
	return buf
}

// cursor is a bounds-checked little-endian reader over the footer.
type cursor struct {
	b   []byte
	bad bool
}

func (c *cursor) take(n int) []byte {
	if c.bad || len(c.b) < n {
		c.bad = true
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// parseFooter rebuilds a trace's metadata (everything but the chunk
// store) from a verified footer, cross-checking the structural
// invariants the chunked reader depends on.
func parseFooter(footer []byte, p *isa.Program) (*Trace, error) {
	c := &cursor{b: footer}
	t := &Trace{prog: p}
	t.entryPC = c.u32()
	t.n = c.u64()
	t.chunkRecs = c.u64()
	nChunks := c.u32()
	corrupt := func(what string) (*Trace, error) {
		return nil, fmt.Errorf("trace: footer: %s: %w", what, errclass.ErrCorrupt)
	}
	if c.bad {
		return corrupt("truncated")
	}
	if t.chunkRecs == 0 || t.chunkRecs%boundaryInterval != 0 {
		return corrupt("invalid chunk record count")
	}
	if want := (t.n + t.chunkRecs - 1) / t.chunkRecs; uint64(nChunks) != want {
		return corrupt("chunk count does not match step count")
	}
	if uint64(len(c.b)) < uint64(nChunks)*chunkMetaBytes {
		return corrupt("chunk table overruns the footer")
	}
	t.chunks = make([]chunkMeta, nChunks)
	for i := range t.chunks {
		t.chunks[i].startPos = t.packedLen
		t.chunks[i].packedLen = c.u32()
		copy(t.chunks[i].sum[:], c.take(32))
		t.packedLen += uint64(t.chunks[i].packedLen)
		if int(t.chunks[i].packedLen) > t.maxChunk {
			t.maxChunk = int(t.chunks[i].packedLen)
		}
	}
	nBounds := c.u32()
	if c.bad || uint64(len(c.b)) < uint64(nBounds)*boundaryBytes {
		return corrupt("boundary table overruns the footer")
	}
	t.bounds = make([]Boundary, nBounds)
	for i := range t.bounds {
		t.bounds[i] = Boundary{Step: c.u64(), Pos: c.u64(), PC: c.u32()}
		if t.bounds[i].Step > t.n || t.bounds[i].Pos > t.packedLen {
			return corrupt("boundary outside the trace")
		}
	}
	t.bbv.Dim = int(c.u32())
	t.bbv.Interval = c.u64()
	nBBV := c.u32()
	if c.bad || uint64(len(c.b)) < uint64(nBBV)*4 {
		return corrupt("bbv table overruns the footer")
	}
	if t.bbv.Dim < 0 || (t.bbv.Dim > 0 && (t.bbv.Interval == 0 || int(nBBV)%t.bbv.Dim != 0)) {
		return corrupt("bbv table is not a whole number of vectors")
	}
	t.bbv.Counts = make([]uint32, nBBV)
	for i := range t.bbv.Counts {
		t.bbv.Counts[i] = c.u32()
	}
	nOut := c.u32()
	if c.bad || uint64(len(c.b)) < uint64(nOut)*4 {
		return corrupt("output section overruns the footer")
	}
	t.output = make([]int32, nOut)
	for i := range t.output {
		t.output[i] = int32(c.u32())
	}
	copy(t.stateHash[:], c.take(32))
	if c.bad {
		return corrupt("truncated")
	}
	if len(c.b) != 0 {
		return corrupt("trailing bytes")
	}
	if t.entryPC != entryPC(p) {
		return nil, fmt.Errorf("trace: entry pc %d does not match the program's %d: %w", t.entryPC, entryPC(p), errclass.ErrCorrupt)
	}
	return t, nil
}

// checkMagic validates the 8-byte magic, distinguishing stale format
// versions (recognizable, recapture needed) from garbage.
func checkMagic(magic []byte) error {
	if [8]byte(magic) == diskMagic {
		return nil
	}
	if bytes.Equal(magic[:7], diskMagic[:7]) && magic[7] < diskMagic[7] {
		return fmt.Errorf("%w: format v%d < v3; recapturing", ErrStaleFormat, magic[7])
	}
	return fmt.Errorf("trace: bad magic (not a trace file, or an incompatible format version): %w", errclass.ErrCorrupt)
}

// writeTo streams the trace's canonical serialized form: header, every
// chunk in order, footer, trailer. Chunks are loaded (and, for
// file-backed traces, re-verified) one at a time, so serializing never
// materializes the whole stream.
func (t *Trace) writeTo(w io.Writer) error {
	if _, err := w.Write(diskMagic[:]); err != nil {
		return classify(err)
	}
	ph := ProgHash(t.prog)
	if _, err := w.Write(ph[:]); err != nil {
		return classify(err)
	}
	var scratch []byte
	if t.maxChunk > 0 {
		scratch = make([]byte, t.maxChunk)
	}
	for i, m := range t.chunks {
		data, err := t.store.load(i, m, scratch)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return classify(err)
		}
	}
	footer := appendFooter(nil, t)
	if _, err := w.Write(footer); err != nil {
		return classify(err)
	}
	var trailer [trailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(len(footer)))
	sum := sha256.Sum256(footer)
	copy(trailer[8:], sum[:])
	_, err := w.Write(trailer[:])
	return classify(err)
}

// Marshal serializes the trace into its canonical byte form.
func (t *Trace) Marshal() []byte {
	var buf bytes.Buffer
	buf.Grow(fileHeaderLen + int(t.packedLen) + trailerLen + 64 + chunkMetaBytes*len(t.chunks) + boundaryBytes*len(t.bounds) + 4*(len(t.bbv.Counts)+len(t.output)))
	if err := t.writeTo(&buf); err != nil {
		// Serializing an in-memory trace cannot fail; a file-backed trace
		// with rotten chunks has no canonical bytes to return.
		return nil
	}
	return buf.Bytes()
}

// Unmarshal parses a serialized trace and binds it to p, rejecting
// corrupt bytes and traces of any other program image. All chunk
// checksums are verified eagerly — the bytes are already resident, so
// there is no streaming win to defer them for.
func Unmarshal(data []byte, p *isa.Program) (*Trace, error) {
	if len(data) < fileHeaderLen+trailerLen {
		return nil, fmt.Errorf("trace: file too short (%d bytes): %w", len(data), errclass.ErrCorrupt)
	}
	if err := checkMagic(data[:8]); err != nil {
		return nil, err
	}
	if [32]byte(data[8:40]) != ProgHash(p) {
		return nil, fmt.Errorf("trace: trace was captured from a different build of %s: %w", p.Name, errclass.ErrCorrupt)
	}
	trailer := data[len(data)-trailerLen:]
	footerLen := binary.LittleEndian.Uint64(trailer[:8])
	if footerLen > uint64(len(data)-fileHeaderLen-trailerLen) {
		return nil, fmt.Errorf("trace: footer overruns the file: %w", errclass.ErrCorrupt)
	}
	footer := data[uint64(len(data))-trailerLen-footerLen : len(data)-trailerLen]
	if sha256.Sum256(footer) != [32]byte(trailer[8:]) {
		return nil, fmt.Errorf("trace: footer checksum mismatch (truncated or corrupt file): %w", errclass.ErrCorrupt)
	}
	t, err := parseFooter(footer, p)
	if err != nil {
		return nil, err
	}
	chunkData := data[fileHeaderLen : uint64(len(data))-trailerLen-footerLen]
	if uint64(len(chunkData)) != t.packedLen {
		return nil, fmt.Errorf("trace: packed stream is %d bytes, footer says %d: %w", len(chunkData), t.packedLen, errclass.ErrCorrupt)
	}
	ms := &memStore{chunks: make([][]byte, len(t.chunks))}
	for i, m := range t.chunks {
		c := chunkData[m.startPos : m.startPos+uint64(m.packedLen)]
		if sha256.Sum256(c) != m.sum {
			return nil, fmt.Errorf("trace: chunk %d: %w", i, ErrCorruptChunk)
		}
		ms.chunks[i] = c
	}
	t.store = ms
	return t, nil
}

// EnsureDir creates dir (and any parents) for trace storage.
func EnsureDir(dir string) error { return classify(os.MkdirAll(dir, 0o755)) }

// WriteFile persists the trace under dir at its canonical path, via a
// uniquely named temp file and rename so concurrent writers of the same
// (byte-identical) trace cannot tear each other's files. Chunks stream
// through one scratch buffer; the whole trace is never materialized.
func (t *Trace) WriteFile(dir string) error {
	tmp, err := os.CreateTemp(dir, "trace-*.tmp")
	if err != nil {
		return classify(err)
	}
	werr := t.writeTo(tmp)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return classify(cerr)
	}
	path := diskPath(dir, ProgHash(t.prog))
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return classify(err)
	}
	return nil
}

// ReadFile opens p's trace from dir without reading the packed stream:
// only the header and footer are loaded and verified, and the returned
// trace streams chunks from the (kept-open) file on demand, each
// verified against its checksum as it loads. A missing file returns
// os.ErrNotExist (wrapped); a corrupt, truncated, stale-format or
// mismatched file is deleted so the slot can be recaptured, and
// reported as an error (errors.Is(err, ErrStaleFormat) distinguishes
// old-version files).
func ReadFile(dir string, p *isa.Program) (*Trace, error) {
	path := diskPath(dir, ProgHash(p))
	f, err := os.Open(path)
	if err != nil {
		// classify wraps with %w, so errors.Is(err, os.ErrNotExist) still
		// identifies the missing-file case callers dispatch on.
		return nil, classify(err)
	}
	// readFrom classifies every error it returns; keeping its result out
	// of err also keeps the raw os.Open error from aliasing into it.
	t, rerr := readFrom(f, path, p)
	if rerr != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return nil, rerr
	}
	return t, nil
}

// readFrom validates and indexes an open trace file, returning a
// file-backed trace that owns f.
func readFrom(f *os.File, path string, p *isa.Program) (*Trace, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, classify(err)
	}
	size := fi.Size()
	if size < fileHeaderLen+trailerLen {
		return nil, fmt.Errorf("trace: %s: file too short (%d bytes): %w", path, size, errclass.ErrCorrupt)
	}
	var header [fileHeaderLen]byte
	if _, err := f.ReadAt(header[:], 0); err != nil {
		return nil, classify(err)
	}
	if err := checkMagic(header[:8]); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	if [32]byte(header[8:]) != ProgHash(p) {
		return nil, fmt.Errorf("trace: %s: trace was captured from a different build of %s: %w", path, p.Name, errclass.ErrCorrupt)
	}
	var trailer [trailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-trailerLen); err != nil {
		return nil, classify(err)
	}
	footerLen := binary.LittleEndian.Uint64(trailer[:8])
	if footerLen > uint64(size-fileHeaderLen-trailerLen) {
		return nil, fmt.Errorf("trace: %s: footer overruns the file: %w", path, errclass.ErrCorrupt)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, size-trailerLen-int64(footerLen)); err != nil {
		return nil, classify(err)
	}
	if sha256.Sum256(footer) != [32]byte(trailer[8:]) {
		return nil, fmt.Errorf("trace: %s: footer checksum mismatch (truncated or corrupt file): %w", path, errclass.ErrCorrupt)
	}
	t, perr := parseFooter(footer, p)
	if perr != nil {
		return nil, fmt.Errorf("%s: %w", path, perr)
	}
	if got := uint64(size) - fileHeaderLen - trailerLen - footerLen; got != t.packedLen {
		return nil, fmt.Errorf("trace: %s: packed stream is %d bytes, footer says %d: %w", path, got, t.packedLen, errclass.ErrCorrupt)
	}
	t.store = &fileStore{f: f, path: path, size: size}
	t.path = path
	return t, nil
}
