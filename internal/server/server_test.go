package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

// newTestServer boots a fresh engine (no shared DefaultEngine state) and
// returns its API under an httptest server.
func newTestServer(t *testing.T, log *bytes.Buffer) (*Server, *httptest.Server) {
	t.Helper()
	var w *syncBuffer
	if log != nil {
		w = &syncBuffer{buf: log}
	}
	var opts Options
	if w != nil {
		opts.Log = w
	}
	s := New(ce.NewEngine(), opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// syncBuffer makes a bytes.Buffer safe for the logging middleware's
// concurrent writers.
type syncBuffer struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, buf.Bytes()
}

func postRun(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("POST /run: read body: %v", err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q, want 200 \"ok\\n\"", code, body)
	}
}

func TestRunNamedConfig(t *testing.T) {
	_, ts := newTestServer(t, nil)
	code, body := postRun(t, ts.URL, `{"config":"baseline","workload":"micro.chain"}`)
	if code != http.StatusOK {
		t.Fatalf("POST /run = %d: %s", code, body)
	}
	var m ce.RunMetrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal response: %v\n%s", err, body)
	}
	if m.Workload != "micro.chain" || m.Committed == 0 || m.IPC <= 0 {
		t.Fatalf("implausible metrics: %+v", m)
	}
	if m.Cached {
		t.Fatalf("first run reported cached: %+v", m)
	}
	// The same request again must be a cache hit.
	_, body = postRun(t, ts.URL, `{"config":"baseline","workload":"micro.chain"}`)
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal second response: %v", err)
	}
	if !m.Cached {
		t.Fatalf("second identical run not cached: %+v", m)
	}
}

func TestRunCustomScheduler(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"scheduler":{"kind":"fifos","clusters":2,"fifos_per_cluster":4,"depth":8},"workload":"micro.parallel"}`
	code, resp := postRun(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("POST /run custom = %d: %s", code, resp)
	}
	var m ce.RunMetrics
	if err := json.Unmarshal(resp, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !strings.HasPrefix(m.Config, "custom-") {
		t.Fatalf("custom config name = %q, want custom-* prefix", m.Config)
	}
}

func TestRunCustomSchedulerMatchesStock(t *testing.T) {
	// A custom spec identical to the stock clustered machine must produce
	// identical simulated numbers.
	_, ts := newTestServer(t, nil)
	_, custom := postRun(t, ts.URL,
		`{"scheduler":{"kind":"exec-steer","size":64,"clusters":2},"workload":"micro.chase"}`)
	_, stock := postRun(t, ts.URL, `{"config":"exec-steer","workload":"micro.chase"}`)
	var cm, sm ce.RunMetrics
	if err := json.Unmarshal(custom, &cm); err != nil {
		t.Fatalf("unmarshal custom: %v", err)
	}
	if err := json.Unmarshal(stock, &sm); err != nil {
		t.Fatalf("unmarshal stock: %v", err)
	}
	if cm.Cycles != sm.Cycles || cm.Committed != sm.Committed {
		t.Fatalf("custom exec-steer diverges from stock: custom %d cycles, stock %d", cm.Cycles, sm.Cycles)
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name, body string
		wantSub    string
	}{
		{"malformed JSON", `{`, "malformed"},
		{"unknown field", `{"config":"baseline","workload":"micro.chain","bogus":1}`, "malformed"},
		{"unknown workload", `{"config":"baseline","workload":"nope"}`, "unknown workload"},
		{"unknown config", `{"config":"nope","workload":"micro.chain"}`, "unknown config"},
		{"neither config nor scheduler", `{"workload":"micro.chain"}`, "exactly one"},
		{"both config and scheduler", `{"config":"baseline","scheduler":{"kind":"window","size":64},"workload":"micro.chain"}`, "exactly one"},
		{"unknown scheduler kind", `{"scheduler":{"kind":"wat"},"workload":"micro.chain"}`, "unknown scheduler kind"},
		{"window without size", `{"scheduler":{"kind":"window"},"workload":"micro.chain"}`, "size > 0"},
		{"fifos without depth", `{"scheduler":{"kind":"fifos","fifos_per_cluster":4},"workload":"micro.chain"}`, "depth > 0"},
		{"uneven clusters", `{"scheduler":{"kind":"fifos","clusters":3,"fifos_per_cluster":2,"depth":8},"workload":"micro.chain"}`, "clusters"},
		{"unknown predictor", `{"config":"baseline","workload":"micro.chain","predictor":"oracle"}`, "predictor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postRun(t, ts.URL, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body: %s", code, body)
			}
			if !strings.Contains(string(body), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", body, tc.wantSub)
			}
		})
	}
}

func TestConcurrentRunsCoalesce(t *testing.T) {
	s, ts := newTestServer(t, nil)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := postRun(t, ts.URL, `{"config":"baseline","workload":"micro.branchy"}`)
			if code != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", code, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cs := s.eng.CacheStats()
	if cs.Misses != 1 {
		t.Fatalf("cache misses = %d after %d identical concurrent requests, want 1 (stats: %+v)", cs.Misses, n, cs)
	}
	if got := cs.Hits + cs.Coalesced; got != n-1 {
		t.Fatalf("memory hits + coalesced = %d, want %d (stats: %+v)", got, n-1, cs)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	postRun(t, ts.URL, `{"config":"baseline","workload":"micro.stream"}`)
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal metrics: %v\n%s", err, body)
	}
	if m.Cache.Misses != 1 {
		t.Fatalf("metrics cache.misses = %d, want 1", m.Cache.Misses)
	}
	if m.Server.RunRequests != 1 || m.Server.Requests < 1 {
		t.Fatalf("server counters implausible: %+v", m.Server)
	}
	if m.Server.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v, want > 0", m.Server.UptimeSeconds)
	}
}

func TestFigureRejectsUnknown(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, n := range []string{"12", "abc", "0"} {
		code, _ := get(t, ts.URL+"/figure/"+n)
		if code != http.StatusNotFound {
			t.Fatalf("GET /figure/%s = %d, want 404", n, code)
		}
	}
}

func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	_, ts := newTestServer(t, &buf)
	get(t, ts.URL+"/healthz")
	postRun(t, ts.URL, `{"config":"nope","workload":"micro.chain"}`)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	var entry struct {
		Method string `json:"method"`
		Path   string `json:"path"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, lines[0])
	}
	if entry.Method != "GET" || entry.Path != "/healthz" || entry.Status != 200 {
		t.Fatalf("first log entry = %+v", entry)
	}
	if err := json.Unmarshal([]byte(lines[1]), &entry); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if entry.Method != "POST" || entry.Status != 400 {
		t.Fatalf("second log entry = %+v", entry)
	}
}

// TestFigureMatchesLibrary runs the full figure 13 sweep through the
// daemon and checks byte-identity with ce.FigureJSON — the property the
// CI serve job checks against cesweep -json. Heavy (a real sweep), so
// skipped in -short.
func TestFigureMatchesLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	_, ts := newTestServer(t, nil)
	code, body := get(t, ts.URL+"/figure/13")
	if code != http.StatusOK {
		t.Fatalf("GET /figure/13 = %d: %s", code, body)
	}
	want, err := ce.FigureJSON(13)
	if err != nil {
		t.Fatalf("FigureJSON(13): %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("daemon figure 13 differs from ce.FigureJSON (got %d bytes, want %d)", len(body), len(want))
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	var mu sync.Mutex
	calls := 0
	release := make(chan struct{})
	const n = 6
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := g.do("k", func() ([]byte, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				<-release
				return []byte("v"), nil
			})
			if err != nil {
				t.Errorf("flight error: %v", err)
			}
			results[i] = data
		}(i)
	}
	// Let the goroutines pile up on the flight, then release it. The
	// sleep-free way would need hooks inside do; a modest wait keeps the
	// test honest without flaking (latecomers simply start a new flight,
	// which the calls bound below tolerates).
	for {
		mu.Lock()
		started := calls > 0
		mu.Unlock()
		if started {
			break
		}
	}
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if calls < 1 || calls > n {
		t.Fatalf("calls = %d", calls)
	}
	for i, r := range results {
		if string(r) != "v" {
			t.Fatalf("result[%d] = %q", i, r)
		}
	}
}

func TestFlightGroupPanicPropagatesError(t *testing.T) {
	var g flightGroup
	func() {
		defer func() { recover() }()
		g.do("p", func() ([]byte, error) { panic("boom") })
	}()
	// The key must be forgotten so the next call retries.
	data, err := g.do("p", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(data) != "ok" {
		t.Fatalf("retry after panic = %q, %v", data, err)
	}
}
