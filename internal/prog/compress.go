package prog

import "fmt"

// compress mirrors SPEC95 129.compress: an LZW-style compressor. The kernel
// hashes (prefix, symbol) pairs into an open-addressed dictionary, emitting
// a code whenever the pair is new. It produces the long serial dependence
// chains through the hash table that made compress a low-ILP benchmark.

const (
	compressN       = 8000        // input bytes (the paper-scale workload)
	compressBigN    = 60_000      // input bytes for compress.big (~3.8M dynamic insts)
	compressHugeN   = 1_500_000   // symbols for compress.huge (~10^8 dynamic insts)
	compressTabBits = 12          // 4096-entry dictionary
	compressMaxCode = 3500        // stop growing the dictionary here
	compressHashMul = -1640531527 // 2654435761 as int32 (Knuth multiplicative hash)
)

// compressRefN is the reference implementation for an n-symbol input.
func compressRefN(n int) []int32 {
	input := make([]byte, n)
	s := int32(12345)
	for i := range input {
		s = lcg(s)
		input[i] = byte((s >> 16) & 7)
	}
	const size = 1 << compressTabBits
	const mask = size - 1
	hkey := make([]int32, size)
	hval := make([]int32, size)
	for i := range hkey {
		hkey[i] = -1
	}
	w := int32(input[0])
	var csum, codes int32
	next := int32(8)
	emit := func() {
		codes++
		csum = csum*31 + w
	}
	for i := 1; i < n; i++ {
		c := int32(input[i])
		key := w<<8 | c
		idx := int32(uint32(key*compressHashMul)>>20) & mask
		for {
			k := hkey[idx]
			if k == key {
				w = hval[idx]
				break
			}
			if k == -1 {
				emit()
				if next < compressMaxCode {
					hkey[idx] = key
					hval[idx] = next
					next++
				}
				w = c
				break
			}
			idx = (idx + 1) & mask
		}
	}
	emit()
	return []int32{codes, next, csum}
}

const compressSrcFmt = `
# compress: LZW-style dictionary compressor (mirrors SPEC95 129.compress).
		.data
input:	.space %[1]d
hkey:	.space 16384          # 4096 dictionary keys
hval:	.space 16384          # 4096 dictionary codes
		.text
main:
		# Generate the input: N symbols in 0..7 from the shared LCG.
		la   $s0, input
		li   $t0, 12345        # seed
		li   $t1, 0            # i
		li   $s2, %[1]d        # N
		li   $t5, 1103515245
gen:	mul  $t0, $t0, $t5
		addi $t0, $t0, 12345
		srl  $t2, $t0, 16
		andi $t2, $t2, 7
		add  $t3, $s0, $t1
		sb   $t2, 0($t3)
		addi $t1, $t1, 1
		blt  $t1, $s2, gen

		# Clear the dictionary: every key slot holds -1.
		la   $s7, hkey
		li   $t1, 0
		li   $t2, 4096
		li   $t3, -1
init:	sll  $t4, $t1, 2
		add  $t4, $s7, $t4
		sw   $t3, 0($t4)
		addi $t1, $t1, 1
		blt  $t1, $t2, init

		# LZW main loop.
		la   $fp, hval
		lbu  $s3, 0($s0)       # w = input[0]
		li   $s4, 0            # csum
		li   $s5, 0            # codes emitted
		li   $s6, 8            # next dictionary code
		li   $s1, 1            # i
		li   $t9, -1640531527  # hash multiplier
		li   $t8, 31           # checksum multiplier
loop:	bge  $s1, $s2, finish
		add  $t0, $s0, $s1
		lbu  $t1, 0($t0)       # c = input[i]
		sll  $t2, $s3, 8
		or   $t2, $t2, $t1     # key = w<<8 | c
		mul  $t3, $t2, $t9
		srl  $t3, $t3, 20
		andi $t3, $t3, 0xFFF   # idx = hash(key)
probe:	sll  $t4, $t3, 2
		add  $t5, $s7, $t4
		lw   $t6, 0($t5)       # k = hkey[idx]
		beq  $t6, $t2, found
		li   $t7, -1
		beq  $t6, $t7, empty
		addi $t3, $t3, 1
		andi $t3, $t3, 0xFFF
		j    probe
found:	add  $t5, $fp, $t4
		lw   $s3, 0($t5)       # w = hval[idx]
		addi $s1, $s1, 1
		j    loop
empty:	addi $s5, $s5, 1       # emit code for w
		mul  $s4, $s4, $t8
		add  $s4, $s4, $s3
		li   $t7, 3500
		bge  $s6, $t7, noadd
		sw   $t2, 0($t5)       # hkey[idx] = key
		add  $t5, $fp, $t4
		sw   $s6, 0($t5)       # hval[idx] = next
		addi $s6, $s6, 1
noadd:	move $s3, $t1          # w = c
		addi $s1, $s1, 1
		j    loop
finish:	addi $s5, $s5, 1       # emit the final prefix
		mul  $s4, $s4, $t8
		add  $s4, $s4, $s3
		out  $s5
		out  $s6
		out  $s4
		halt
`

// compressHugeRefN mirrors compress.huge: the same LZW kernel over a
// multi-regime symbol stream generated on the fly (no input buffer —
// the stream is regenerated from the LCG inside the main loop, so the
// workload's memory stays dictionary-sized however long it runs). A
// second LCG switches the stream between low-entropy blocks (3-bit
// symbols: the dictionary absorbs them, lookups hit, IPC runs high) and
// high-entropy blocks (8-bit symbols: the saturated dictionary misses,
// probe chains stretch, IPC drops) with irregular deterministic block
// lengths, giving the trace genuine program phases for the
// phase-clustered sampler to find — and for a blind stride sampler to
// alias on. All shifts mirror the machine's logical srl.
func compressHugeRefN(n int32) []int32 {
	const size = 1 << compressTabBits
	const mask = size - 1
	hkey := make([]int32, size)
	hval := make([]int32, size)
	for i := range hkey {
		hkey[i] = -1
	}
	sym := int32(12345)
	reg := int32(777)
	var blockRem, symMask int32
	var w, csum, codes int32
	next := int32(8)
	for i := int32(0); i < n; i++ {
		if blockRem == 0 {
			reg = lcg(reg)
			if (uint32(reg)>>8)&1 == 0 {
				symMask = 255
			} else {
				symMask = 7
			}
			blockRem = 60000 + int32((uint32(reg)>>16)&0x1FFFF)
		}
		blockRem--
		sym = lcg(sym)
		c := int32(uint32(sym)>>16) & symMask
		if i == 0 {
			w = c
			continue
		}
		key := w<<8 | c
		idx := int32(uint32(key*compressHashMul)>>20) & mask
		for {
			k := hkey[idx]
			if k == key {
				w = hval[idx]
				break
			}
			if k == -1 {
				codes++
				csum = csum*31 + w
				if next < compressMaxCode {
					hkey[idx] = key
					hval[idx] = next
					next++
				}
				w = c
				break
			}
			idx = (idx + 1) & mask
		}
	}
	codes++
	csum = csum*31 + w
	return []int32{codes, next, csum}
}

const compressHugeSrc = `
# compress.huge: LZW over a multi-regime on-the-fly symbol stream.
# A regime LCG alternates low-entropy (3-bit) and high-entropy (8-bit)
# symbol blocks of irregular length, so the execution has real phases.
		.data
hkey:	.space 16384          # 4096 dictionary keys
hval:	.space 16384          # 4096 dictionary codes
		.text
main:
		# Clear the dictionary: every key slot holds -1.
		la   $s7, hkey
		li   $t1, 0
		li   $t2, 4096
		li   $t3, -1
init:	sll  $t4, $t1, 2
		add  $t4, $s7, $t4
		sw   $t3, 0($t4)
		addi $t1, $t1, 1
		blt  $t1, $t2, init

		la   $fp, hval
		li   $t0, 12345        # symbol LCG state
		li   $s0, 777          # regime LCG state
		li   $t6, 0            # symbols left in the current block
		li   $t7, 255          # current symbol mask (set by regime)
		li   $s1, 0            # i
		li   $s2, %d           # N symbols
		li   $s4, 0            # csum
		li   $s5, 0            # codes emitted
		li   $s6, 8            # next dictionary code

loop:	bge  $s1, $s2, finish
		bgtz $t6, gen          # block not exhausted
		# Advance the regime: reseed mask and block length.
		li   $t9, 1103515245
		mul  $s0, $s0, $t9
		addi $s0, $s0, 12345
		srl  $t4, $s0, 8
		andi $t4, $t4, 1
		li   $t7, 255          # bit clear: high-entropy block
		beq  $t4, $0, setlen
		li   $t7, 7            # bit set: low-entropy block
setlen:	srl  $t6, $s0, 16
		andi $t6, $t6, 0x1FFFF
		li   $t9, 60000
		add  $t6, $t6, $t9     # blockRem in [60000, 191071]
gen:	addi $t6, $t6, -1
		li   $t9, 1103515245
		mul  $t0, $t0, $t9
		addi $t0, $t0, 12345
		srl  $t1, $t0, 16
		and  $t1, $t1, $t7     # c = (s >> 16) & mask
		bgtz $s1, lzw
		move $s3, $t1          # first symbol: w = c
		addi $s1, $s1, 1
		j    loop
lzw:	sll  $t2, $s3, 8
		or   $t2, $t2, $t1     # key = w<<8 | c
		li   $t9, -1640531527
		mul  $t3, $t2, $t9
		srl  $t3, $t3, 20
		andi $t3, $t3, 0xFFF   # idx = hash(key)
probe:	sll  $t4, $t3, 2
		add  $t5, $s7, $t4
		lw   $t8, 0($t5)       # k = hkey[idx]
		beq  $t8, $t2, found
		li   $t9, -1
		beq  $t8, $t9, empty
		addi $t3, $t3, 1
		andi $t3, $t3, 0xFFF
		j    probe
found:	add  $t5, $fp, $t4
		lw   $s3, 0($t5)       # w = hval[idx]
		addi $s1, $s1, 1
		j    loop
empty:	addi $s5, $s5, 1       # emit code for w
		li   $t9, 31
		mul  $s4, $s4, $t9
		add  $s4, $s4, $s3
		li   $t9, 3500
		bge  $s6, $t9, noadd
		sw   $t2, 0($t5)       # hkey[idx] = key
		add  $t5, $fp, $t4
		sw   $s6, 0($t5)       # hval[idx] = next
		addi $s6, $s6, 1
noadd:	move $s3, $t1          # w = c
		addi $s1, $s1, 1
		j    loop
finish:	addi $s5, $s5, 1       # emit the final prefix
		li   $t9, 31
		mul  $s4, $s4, $t9
		add  $s4, $s4, $s3
		out  $s5
		out  $s6
		out  $s4
		halt
`

func init() {
	register(&Workload{
		Name:        "compress",
		Description: "LZW-style dictionary compression over an 8000-symbol stream (mirrors SPEC95 129.compress)",
		Source:      fmt.Sprintf(compressSrcFmt, compressN),
		Reference:   func() []int32 { return compressRefN(compressN) },
	})
	// compress.big is the same kernel over a 60k-symbol stream (~3.8M
	// dynamic instructions): long enough for segment-parallel simulation
	// to pay off. Extension keeps it out of the default sweep matrix.
	register(&Workload{
		Name:        "compress.big",
		Description: "LZW-style dictionary compression over a 60000-symbol stream (segment-parallel benchmark scale)",
		Source:      fmt.Sprintf(compressSrcFmt, compressBigN),
		Reference:   func() []int32 { return compressRefN(compressBigN) },
		Extension:   true,
	})
	// compress.huge is the streaming-scale phase workload: ~10^8 dynamic
	// instructions of LZW over a multi-regime symbol stream generated on
	// the fly. Huge keeps it out of every test matrix; the streaming
	// benchmark (ce.StreamBench) and CI's bounded-memory job run it by
	// name.
	register(&Workload{
		Name:        "compress.huge",
		Description: "LZW over a multi-regime on-the-fly symbol stream, ~10^8 instructions (streaming/phase-sampling scale)",
		Source:      fmt.Sprintf(compressHugeSrc, compressHugeN),
		Reference:   func() []int32 { return compressHugeRefN(compressHugeN) },
		Extension:   true,
		Huge:        true,
	})
}
