// Package keyed exercises keylint: coverage through helper methods,
// nested same-package structs, cross-package field types, annotations,
// and the missing-Key case.
package keyed

import (
	"fmt"

	"keyedext"
)

// Config covers the happy and sad paths.
//
//ce:keyed
type Config struct {
	Width  int
	Name   string //ce:timing-neutral
	Trace  bool   // want "Config.Trace is exported but neither referenced"
	Mem    MemCfg
	FIFO   FIFOCfg
	Ext    keyedext.Ext // want "Config.Ext.B is exported but neither referenced"
	Whole  keyedext.Ext2
	hidden int
}

// MemCfg is wholly covered by the c.Mem reference in Key.
type MemCfg struct {
	Lines int
	Ways  int
}

// FIFOCfg is only partially referenced (Depth, via the fifoKey helper):
// the sibling Label must be annotated or referenced, and is neither.
type FIFOCfg struct {
	Depth int
	Label string // want "Config.FIFO.Label is exported but neither referenced"
}

// Key fingerprints the timing-relevant fields.
func (c *Config) Key() string {
	return fmt.Sprint(c.Width, c.Mem, c.fifoKey(), c.Ext.A, c.Whole)
}

func (c *Config) fifoKey() string {
	return fmt.Sprint(c.FIFO.Depth)
}

// Orphan has the marker but no Key method.
//
//ce:keyed
type Orphan struct { // want "Orphan has no Key"
	X int
}
