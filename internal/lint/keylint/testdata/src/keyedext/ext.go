// Package keyedext provides cross-package field types for keylint's
// multi-package resolution test. Findings about these fields are
// reported at the referencing field in the keyed package, since the fix
// belongs there.
package keyedext

// Ext is partially referenced from keyed.Config.Key (only A).
type Ext struct {
	A int
	B int
}

// Ext2 is referenced whole.
type Ext2 struct {
	A int
	B int
}
