// Package keyedvia exercises keylint's via mode: package-local plan
// structs whose cache key is built by a named function rather than a
// Key method, with every field — unexported included — held to the
// coverage contract.
package keyedvia

import "fmt"

// plan reproduces the dropped-plan-field collision: phases feeds timing
// but planKey forgets it, so two different phase-clustered plans would
// share a cache key.
//
//ce:keyed via=planKey
type plan struct {
	k        int
	warmup   int64
	sample   int
	adaptive bool
	phases   int    // want "plan.phases is not referenced in planKey"
	label    string //ce:timing-neutral
}

func planKey(p plan) string {
	if p.exact() {
		return ""
	}
	return fmt.Sprintf("segments=%d warmup=%d sample=%d", p.k, p.warmup, p.sample)
}

// exact contributes coverage through the call in planKey.
func (p plan) exact() bool {
	return p.warmup < 0 && !p.adaptive && p.sample == 1
}

// nested checks partial coverage one level down: mem.lines is read,
// mem.ways is not.
//
//ce:keyed via=nestedKey
type nested struct {
	mem   memCfg
	width int
}

type memCfg struct {
	lines int
	ways  int // want "nested.mem.ways is not referenced in nestedKey"
}

func nestedKey(n nested) string {
	return fmt.Sprint(n.mem.lines, n.width)
}

// escaped is passed whole to fmt.Sprintf by its key function: every
// field is observable, so nothing is reported.
//
//ce:keyed via=escapedKey
type escaped struct {
	a, b int
}

func escapedKey(e escaped) string {
	return fmt.Sprintf("%+v", e)
}

// orphan names a key function that does not exist.
//
//ce:keyed via=missingKey
type orphan struct { // want "via=missingKey on orphan names no function or method missingKey"
	x int
}
