package trace

// Basic-block vectors (SimPoint-style phase fingerprints): during the
// one functional execution that captures a trace, every dynamic
// instruction is attributed to the basic block it executes in, and the
// per-block execution counts are accumulated over fixed-length
// intervals. Two intervals with similar vectors execute similar code —
// the classic observation that lets a sampler time one representative
// per program phase instead of a blind stride (see phase.go). Blocks
// are identified by their leader PC hashed into a fixed number of
// buckets, so a vector is a small dense array however large the program.

import (
	"repro/internal/emu"
	"repro/internal/isa"
)

// bbvDim is the number of hash buckets per vector. 32 buckets × 4 bytes
// per interval (2^15 instructions) is ~0.4% of the packed stream —
// cheap enough to collect always, discriminating enough for the paper's
// loop-structured workloads.
const bbvDim = 32

// bbvInterval is the profiling interval in dynamic instructions. It
// equals boundaryInterval so intervals align exactly with warm-start
// boundaries and therefore with segment cuts.
const bbvInterval = boundaryInterval

// BBV is a trace's per-interval basic-block-vector profile.
type BBV struct {
	// Dim is the bucket count of each vector (bbvDim for captures made
	// by this build; kept explicit so the on-disk format is
	// self-describing).
	Dim int
	// Interval is the profiling interval in dynamic instructions.
	Interval uint64
	// Counts holds the vectors back to back: interval i occupies
	// Counts[i*Dim : (i+1)*Dim]. The final interval may cover fewer
	// than Interval instructions (the trace's tail).
	Counts []uint32
}

// Intervals returns the number of profiled intervals.
func (b BBV) Intervals() int {
	if b.Dim == 0 {
		return 0
	}
	return len(b.Counts) / b.Dim
}

// bbvBucket hashes a basic-block leader PC into a vector bucket
// (Fibonacci hashing; top bits of the product are the best-mixed).
func bbvBucket(leader uint32) int {
	return int((leader * 0x9E3779B1) >> 27 & (bbvDim - 1))
}

// bbvBuilder accumulates one interval's vector during capture.
type bbvBuilder struct {
	cur     [bbvDim]uint32
	vecs    []uint32
	leader  uint32
	inBlock bool
}

// note attributes one dynamic instruction to its basic block. A block's
// leader is the first instruction executed after a control transfer;
// every instruction until the next branch or jump (taken or not — the
// transfer instruction ends its block either way) counts toward that
// leader's bucket, so a block contributes count×length exactly as the
// SimPoint formulation weighs it.
func (b *bbvBuilder) note(rec emu.Record) {
	if !b.inBlock {
		b.leader = rec.PC
		b.inBlock = true
	}
	b.cur[bbvBucket(b.leader)]++
	switch isa.ClassOf(rec.Inst.Op) {
	case isa.ClassBranch, isa.ClassJump:
		b.inBlock = false
	}
}

// seal closes the current interval's vector.
func (b *bbvBuilder) seal() {
	b.vecs = append(b.vecs, b.cur[:]...)
	b.cur = [bbvDim]uint32{}
}

// finish returns the completed profile.
func (b *bbvBuilder) finish() BBV {
	return BBV{Dim: bbvDim, Interval: bbvInterval, Counts: b.vecs}
}

// HasBBV reports whether the trace carries a basic-block-vector profile
// (every v3 capture does; kept explicit for defensive callers).
func (t *Trace) HasBBV() bool { return t.bbv.Dim > 0 && len(t.bbv.Counts) > 0 }

// SegmentBBV returns seg's phase fingerprint: the L1-normalized sum of
// the basic-block vectors of the intervals the segment covers. Segment
// cuts fall on interval boundaries (both are boundaryInterval-aligned),
// so intervals nest cleanly; the trace's final partial interval belongs
// to the final segment. Returns nil if the trace has no profile.
func (t *Trace) SegmentBBV(seg Segment) []float64 {
	if !t.HasBBV() {
		return nil
	}
	n := t.bbv.Intervals()
	lo := int(seg.Start.Step / t.bbv.Interval)
	hi := int((seg.End.Step + t.bbv.Interval - 1) / t.bbv.Interval)
	if hi > n {
		hi = n
	}
	out := make([]float64, t.bbv.Dim)
	var total float64
	for i := lo; i < hi; i++ {
		v := t.bbv.Counts[i*t.bbv.Dim : (i+1)*t.bbv.Dim]
		for d, c := range v {
			out[d] += float64(c)
			total += float64(c)
		}
	}
	if total > 0 {
		for d := range out {
			out[d] /= total
		}
	}
	return out
}
