package prog

// li mirrors SPEC95 130.li (xlisp): cons-cell list manipulation dominated
// by pointer chasing. The kernel builds linked lists in a cell heap, then
// repeatedly reverses and reduces them in place — serial load-to-load
// dependence chains with almost no ILP, which is why li shows the largest
// degradation on the FIFO microarchitecture in the paper (Figure 13).

const (
	liNLists = 60
	liPasses = 8
)

func liRef() []int32 {
	type cell struct{ car, cdr int32 } // cdr is a cell index+1; 0 = nil
	var heap []cell
	heads := make([]int32, liNLists)
	s := int32(31415)
	var cells int32
	for i := 0; i < liNLists; i++ {
		s = lcg(s)
		length := 3 + (s>>16)&63
		var prev int32 // nil
		for k := int32(0); k < length; k++ {
			s = lcg(s)
			heap = append(heap, cell{car: (s >> 16) & 0xFF, cdr: prev})
			cells++
			prev = cells // index+1
		}
		heads[i] = prev
	}
	var csum int32
	for pass := 0; pass < liPasses; pass++ {
		for i := 0; i < liNLists; i++ {
			// Reverse in place.
			var prev int32
			cur := heads[i]
			for cur != 0 {
				next := heap[cur-1].cdr
				heap[cur-1].cdr = prev
				prev = cur
				cur = next
			}
			heads[i] = prev
			// Sum and destructively increment the elements.
			var sum int32
			for p := prev; p != 0; p = heap[p-1].cdr {
				sum += heap[p-1].car
				heap[p-1].car++
			}
			csum = csum*31 + sum
		}
	}
	return []int32{cells, csum}
}

const liSrc = `
# li: cons-cell list building, reversal and reduction
# (mirrors SPEC95 130.li's pointer-chasing interpreter heap).
#
# Cells are 8 bytes: car word then cdr word. Pointers are byte addresses;
# 0 is nil. The heap is bump-allocated.
		.data
heads:	.space 240             # 60 list heads
heap:	.space 40960           # up to 5120 cells
		.text
main:
		la   $s0, heap         # bump pointer
		la   $s1, heads
		li   $t0, 31415        # seed
		li   $t8, 1103515245
		li   $s2, 0            # list index
		li   $s3, 0            # total cells
build:	mul  $t0, $t0, $t8
		addi $t0, $t0, 12345
		srl  $t1, $t0, 16
		andi $t1, $t1, 63
		addi $t1, $t1, 3       # length
		li   $t2, 0            # prev = nil
bcell:	mul  $t0, $t0, $t8
		addi $t0, $t0, 12345
		srl  $t3, $t0, 16
		andi $t3, $t3, 0xFF    # value
		sw   $t3, 0($s0)       # car
		sw   $t2, 4($s0)       # cdr = prev
		move $t2, $s0          # prev = this cell
		addi $s0, $s0, 8
		addi $s3, $s3, 1
		addi $t1, $t1, -1
		bgtz $t1, bcell
		sll  $t4, $s2, 2
		add  $t4, $s1, $t4
		sw   $t2, 0($t4)       # heads[i]
		addi $s2, $s2, 1
		li   $t4, 60
		blt  $s2, $t4, build

		li   $s4, 0            # csum
		li   $s5, 0            # pass
		li   $t9, 31
pass:	li   $s2, 0            # list index
plist:	sll  $t4, $s2, 2
		add  $s6, $s1, $t4     # &heads[i]
		lw   $t1, 0($s6)       # cur
		li   $t2, 0            # prev
rev:	beq  $t1, $zero, revdone
		lw   $t3, 4($t1)       # next = cur->cdr
		sw   $t2, 4($t1)       # cur->cdr = prev
		move $t2, $t1
		move $t1, $t3
		j    rev
revdone:
		sw   $t2, 0($s6)       # heads[i] = prev
		li   $t5, 0            # sum
sum:	beq  $t2, $zero, sumdone
		lw   $t6, 0($t2)       # car
		add  $t5, $t5, $t6
		addi $t6, $t6, 1
		sw   $t6, 0($t2)       # car++
		lw   $t2, 4($t2)       # chase cdr
		j    sum
sumdone:
		mul  $s4, $s4, $t9
		add  $s4, $s4, $t5
		addi $s2, $s2, 1
		li   $t4, 60
		blt  $s2, $t4, plist
		addi $s5, $s5, 1
		li   $t4, 8
		blt  $s5, $t4, pass

		out  $s3
		out  $s4
		halt
`

func init() {
	register(&Workload{
		Name:        "li",
		Description: "cons-cell list reversal and reduction with destructive updates (mirrors SPEC95 130.li)",
		Source:      liSrc,
		Reference:   liRef,
	})
}
