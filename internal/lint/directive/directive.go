// Package directive parses the `//ce:` comment directives that carry the
// simulator's statically-enforced contracts:
//
//	//ce:deterministic          marks a package bit-deterministic (detlint)
//	//ce:keyed                  marks a struct whose Key() must cover every
//	                            exported field (keylint); `via=Func` names
//	                            a free function instead of the Key method
//	//ce:timing-neutral         exempts one struct field from Key coverage
//	//ce:hot                    marks a function allocation-free (hotlint)
//	//ce:classify-errors        marks a function whose environmental errors
//	                            must be wrapped into a classified sentinel
//	                            before being returned (errlint)
//	//ce:classifier             marks a function that performs that
//	                            classification (errlint)
//	//ce:nondet-ok <reason>     per-line detlint escape hatch
//	//ce:alloc-ok <reason>      per-line hotlint escape hatch
//	//ce:lock-ok <reason>       per-line locklint escape hatch
//	//ce:err-ok <reason>        per-line errlint escape hatch
//	//ce:det-boundary <reason>  function-level detlint hatch: the function
//	                            is an abstraction seam whose callers may
//	                            treat it as deterministic
//
// Like //go: directives, a //ce: directive has no space after the
// slashes. The per-line escape hatches require a reason and apply to
// findings on their own line or, when the directive stands alone, on the
// line immediately below.
//
// Malformed directives — unknown verbs, required reasons left empty, the
// same verb twice on one line — are loud errors reported by the dirlint
// analyzer (see Problems); a silent typo in a hatch must never silently
// disable a contract.
package directive

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive names.
const (
	Deterministic  = "deterministic"
	Keyed          = "keyed"
	TimingNeutral  = "timing-neutral"
	Hot            = "hot"
	ClassifyErrors = "classify-errors"
	Classifier     = "classifier"
	NondetOK       = "nondet-ok"
	AllocOK        = "alloc-ok"
	LockOK         = "lock-ok"
	ErrOK          = "err-ok"
	DetBoundary    = "det-boundary"
)

// verbs is the registry of every known directive and whether its
// trailing text (the reason) is mandatory.
var verbs = map[string]bool{
	Deterministic:  false,
	Keyed:          false,
	TimingNeutral:  false,
	Hot:            false,
	ClassifyErrors: false,
	Classifier:     false,
	NondetOK:       true,
	AllocOK:        true,
	LockOK:         true,
	ErrOK:          true,
	DetBoundary:    true,
}

// Known reports whether name is a registered //ce: verb.
func Known(name string) bool { _, ok := verbs[name]; return ok }

// ReasonRequired reports whether the named verb must carry a reason.
func ReasonRequired(name string) bool { return verbs[name] }

// A Directive is one parsed //ce: comment.
type Directive struct {
	Pos    token.Pos
	Name   string // "deterministic", "nondet-ok", ...
	Reason string // text after the name, trimmed
}

// Param extracts a `key=value` parameter from the directive's trailing
// text ("" when absent), e.g. Param("via") on `//ce:keyed via=segKeySuffix`.
func (d Directive) Param(key string) string {
	for _, f := range strings.Fields(d.Reason) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return v
		}
	}
	return ""
}

// parse extracts the directive from one comment, if any.
func parse(c *ast.Comment) (Directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//ce:")
	if !ok {
		return Directive{}, false
	}
	name, reason, _ := strings.Cut(text, " ")
	return Directive{Pos: c.Slash, Name: name, Reason: strings.TrimSpace(reason)}, true
}

// InGroup reports whether the comment group carries the named directive.
func InGroup(g *ast.CommentGroup, name string) bool {
	_, ok := Get(g, name)
	return ok
}

// Get returns the named directive from the comment group, if present.
func Get(g *ast.CommentGroup, name string) (Directive, bool) {
	if g == nil {
		return Directive{}, false
	}
	for _, c := range g.List {
		if d, ok := parse(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// PackageMarked reports whether any file of the package carries the named
// package-scope directive (conventionally placed in the package doc
// comment; any comment in any file of the package counts, so multi-file
// packages need the marker only once).
func PackageMarked(files []*ast.File, name string) bool {
	for _, f := range files {
		for _, g := range f.Comments {
			if InGroup(g, name) {
				return true
			}
		}
	}
	return false
}

// FuncMarked reports whether the function's doc comment carries the
// named directive.
func FuncMarked(fd *ast.FuncDecl, name string) bool {
	return InGroup(fd.Doc, name)
}

// FuncDirective returns the named directive from the function's doc
// comment, if present.
func FuncDirective(fd *ast.FuncDecl, name string) (Directive, bool) {
	return Get(fd.Doc, name)
}

// Index is a per-file line-indexed view of one directive name, used for
// the per-line escape hatches.
type Index struct {
	fset *token.FileSet
	name string
	// byLine maps a line number to the directive covering it. A directive
	// covers its own line; a directive on a line by itself (no code before
	// it) also covers the next line.
	byLine map[int]Directive
	// malformed holds directives of this name with an empty reason.
	malformed []Directive
}

// NewIndex builds the per-line index of the named escape-hatch directive
// for one file. lineHasCode reports, per line, whether any non-comment
// token starts there; standalone directives extend their cover one line
// down.
func NewIndex(fset *token.FileSet, f *ast.File, name string) *Index {
	idx := &Index{fset: fset, name: name, byLine: make(map[int]Directive)}
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		return true
	})
	for _, g := range f.Comments {
		for _, c := range g.List {
			d, ok := parse(c)
			if !ok || d.Name != name {
				continue
			}
			if d.Reason == "" && ReasonRequired(name) {
				idx.malformed = append(idx.malformed, d)
				continue
			}
			line := fset.Position(d.Pos).Line
			idx.byLine[line] = d
			if !codeLines[line] {
				idx.byLine[line+1] = d
			}
		}
	}
	return idx
}

// Covering returns the directive covering pos, if any.
func (idx *Index) Covering(pos token.Pos) (Directive, bool) {
	d, ok := idx.byLine[idx.fset.Position(pos).Line]
	return d, ok
}

// Malformed returns the directives of the indexed name that are missing
// their required reason.
func (idx *Index) Malformed() []Directive { return idx.malformed }

// A Problem is one malformed //ce: directive.
type Problem struct {
	Pos      token.Pos
	Category string // "unknown-verb", "missing-reason", "dup-directive"
	Message  string
}

// Problems scans every comment of the file for malformed directives:
// unknown verbs (a typo like //ce:nondetok would otherwise silently
// disable nothing and suppress nothing), known verbs missing their
// mandatory reason, and the same verb appearing twice on one line (the
// second is dead and almost certainly a copy-paste error).
func Problems(fset *token.FileSet, f *ast.File) []Problem {
	var out []Problem
	seen := make(map[string]token.Pos) // "line:verb" → first occurrence
	for _, g := range f.Comments {
		for _, c := range g.List {
			d, ok := parse(c)
			if !ok {
				continue
			}
			if !Known(d.Name) {
				out = append(out, Problem{
					Pos:      d.Pos,
					Category: "unknown-verb",
					Message: fmt.Sprintf("unknown //ce: directive %q (known: %s)",
						d.Name, knownList()),
				})
				continue
			}
			if d.Reason == "" && ReasonRequired(d.Name) {
				out = append(out, Problem{
					Pos:      d.Pos,
					Category: "missing-reason",
					Message: fmt.Sprintf("//ce:%s requires a reason: //ce:%s <why this is acceptable>",
						d.Name, d.Name),
				})
			}
			// `_ = x //ce:alloc-ok pooled //ce:nondet-ok seeded` parses as ONE
			// directive whose reason swallows the second marker — the second
			// hatch is silently dead, which is exactly the failure mode this
			// check exists to make loud.
			if strings.Contains(d.Reason, "//ce:") {
				out = append(out, Problem{
					Pos:      d.Pos,
					Category: "dup-directive",
					Message: fmt.Sprintf("second //ce: directive embedded in the reason of //ce:%s (it is dead text; a line takes one directive)",
						d.Name),
				})
			}
			key := fmt.Sprintf("%d:%s", fset.Position(d.Pos).Line, d.Name)
			if _, dup := seen[key]; dup {
				out = append(out, Problem{
					Pos:      d.Pos,
					Category: "dup-directive",
					Message:  fmt.Sprintf("duplicate //ce:%s on one line (the first occurrence already applies)", d.Name),
				})
			} else {
				seen[key] = d.Pos
			}
		}
	}
	return out
}

// knownList returns the sorted known verbs for error messages.
func knownList() string {
	names := make([]string, 0, len(verbs))
	for n := range verbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
