package ce_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleAnalyzeDelays reproduces a Table 2 row through the public API.
func ExampleAnalyzeDelays() {
	tech, err := ce.TechnologyByName("0.18um")
	if err != nil {
		log.Fatal(err)
	}
	o, err := ce.AnalyzeDelays(tech, 8, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rename %.0f ps, wakeup+select %.0f ps, bypass %.0f ps\n",
		o.Rename.Total(), o.WakeupSelect(), o.Bypass.Delay)
	// Output: rename 428 ps, wakeup+select 724 ps, bypass 1055 ps
}

// ExampleClockRatio shows the Section 5.5 clock advantage.
func ExampleClockRatio() {
	tech, err := ce.TechnologyByName("0.18um")
	if err != nil {
		log.Fatal(err)
	}
	ratio, err := ce.ClockRatio(tech)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the dependence-based machine clocks %.2fx faster\n", ratio)
	// Output: the dependence-based machine clocks 1.25x faster
}

// ExampleRun simulates one workload on the baseline machine.
func ExampleRun() {
	st, err := ce.Run(ce.BaselineConfig(), "compress")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: IPC %.2f\n", st.Workload, st.Config, st.IPC())
	// Output: compress on baseline-8way-64win: IPC 2.36
}
