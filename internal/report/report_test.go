package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "T", Headers: []string{"name", "value"}}
	t.AddRow("alpha", "1")
	t.AddRowf("beta", 2.5)
	t.AddRowf("gamma", 42)
	return t
}

func TestStringAlignment(t *testing.T) {
	out := sample().String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, 3 rows.
	if len(lines) != 7 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "T" || lines[1] != "=" {
		t.Errorf("title block = %q, %q", lines[0], lines[1])
	}
	if !strings.HasPrefix(lines[2], "name ") {
		t.Errorf("header = %q", lines[2])
	}
	if !strings.Contains(out, "beta") || !strings.Contains(out, "2.50") {
		t.Errorf("float row missing: %s", out)
	}
	// All data lines are equally wide (aligned columns).
	w := len(lines[2])
	for _, l := range lines[3:] {
		if len(l) > w+2 {
			t.Errorf("row wider than header block: %q", l)
		}
	}
}

func TestNoTitle(t *testing.T) {
	tb := &Table{Headers: []string{"a"}}
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") || strings.Contains(tb.String(), "=") {
		t.Errorf("title block rendered for empty title: %q", tb.String())
	}
}

func TestShortRow(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Errorf("short row lost: %s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := &Table{Headers: []string{"name", "note"}}
	tb.AddRow("x", "plain")
	tb.AddRow("y", `has "quotes", and commas`)
	got := tb.CSV()
	want := "name,note\nx,plain\ny,\"has \"\"quotes\"\", and commas\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

// TestRaggedRowConsistency is the regression test for the AddRow
// contract: cells beyond the header count are dropped by *both*
// renderers, so CSV and String always agree on the column count.
func TestRaggedRowConsistency(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("x", "y", "EXTRA")
	if s := tb.String(); strings.Contains(s, "EXTRA") {
		t.Errorf("String rendered a dropped cell: %q", s)
	}
	got := tb.CSV()
	want := "a,b\nx,y\n"
	if got != want {
		t.Errorf("CSV = %q, want %q (extra cell must be dropped)", got, want)
	}
	for i, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		if n := strings.Count(line, ",") + 1; n != len(tb.Headers) {
			t.Errorf("CSV line %d has %d columns, want %d", i, n, len(tb.Headers))
		}
	}
}
