// Package hotlint statically enforces the hot-path contract from PR 3:
// a function marked //ce:hot must not allocate. The allocation-free cycle
// loop is what keeps the simulator "as fast as the hardware allows"; one
// stray make or boxed closure in tryIssue silently reintroduces GC
// pressure that no test fails on.
//
// The per-site analysis is conservative about what escapes:
//
//   - make / new always flag.
//   - Composite literals flag when their address is taken (&T{...} — the
//     pointer can outlive the frame) or when their immediate use boxes
//     them into an interface (call argument, assignment, or return with
//     an interface-typed destination). A value composite that is copied —
//     v := T{...}, *p = T{...}, append(s, T{...}) — is not an allocation.
//   - append flags when it grows a fresh slice (the assignment target is
//     not the same expression as append's first argument); self-appends
//     amortize against pre-grown capacity and are allowed.
//   - fmt.* calls always flag (interface boxing of arguments).
//   - Function literals flag when they escape — only a literal that is
//     called directly or bound to a local variable that is itself only
//     ever called (like skipAhead's consider) stays on the stack.
//   - go / defer statements flag (goroutine stacks, deferred frames).
//
// On top of the per-site rules the analysis is interprocedural: every
// function in the module gets an AllocFact recording whether it
// (transitively) allocates, propagated bottom-up over the package DAG via
// the driver's fact store. A //ce:hot function calling an allocating
// helper — same package or another one — is a finding at the call site,
// with the callee chain down to the root allocation in the message.
// Callees that are themselves //ce:hot are trusted clean: their own
// violations are reported at their definition, not at every caller.
//
// //ce:alloc-ok <reason> on the offending line (or alone on the line
// above) exempts a finding; a hatched allocation is also excluded from
// the function's exported fact (the author has asserted it is
// acceptable, so callers should not re-litigate it).
package hotlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// Analyzer is the hotlint pass.
var Analyzer = &analysis.Analyzer{
	Name:      "hotlint",
	Doc:       "flags heap allocations inside (and transitively below) functions marked //ce:hot",
	Run:       run,
	FactTypes: []analysis.Fact{new(AllocFact)},
}

// AllocFact is hotlint's verdict on one function, exported for functions
// with exported names so that passes over importing packages can see
// through calls.
type AllocFact struct {
	// Hot marks a //ce:hot function: trusted allocation-free at call
	// sites, checked at its own definition.
	Hot bool
	// Allocates marks a function that (transitively) allocates.
	Allocates bool
	// Why describes the root allocation site ("make allocates").
	Why string
	// Trail is the call chain from this function down to the allocation,
	// starting with this function's own name.
	Trail []string
}

// AFact marks AllocFact as a fact type.
func (*AllocFact) AFact() {}

// chain renders the fact for a finding message: "refill → grow: make allocates".
func (f *AllocFact) chain() string {
	return strings.Join(f.Trail, " → ") + ": " + f.Why
}

// site is one direct allocation inside a function.
type site struct {
	pos      token.Pos
	category string
	msg      string
}

// callSite is one statically-resolved call inside a function.
type callSite struct {
	pos     token.Pos
	callee  *types.Func
	hatched bool
}

// fnInfo is the per-function analysis state.
type fnInfo struct {
	decl  *ast.FuncDecl
	obj   *types.Func
	hot   bool
	sites []site
	calls []callSite
	fact  *AllocFact
}

func run(pass *analysis.Pass) (any, error) {
	var fns []*fnInfo
	byObj := make(map[*types.Func]*fnInfo)
	for _, f := range pass.Files {
		idx := directive.NewIndex(pass.Fset, f, directive.AllocOK)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c := &checker{
				pass:    pass,
				idx:     idx,
				fn:      fd,
				parents: parentMap(fd.Body),
			}
			info := &fnInfo{decl: fd, obj: obj, hot: directive.FuncMarked(fd, directive.Hot)}
			c.info = info
			c.check()
			fns = append(fns, info)
			byObj[obj] = info
		}
	}

	// Seed each function's fact from its own unhatched allocation sites,
	// then propagate through calls to a fixpoint. Call order is source
	// order, so the recorded trail is deterministic.
	for _, fi := range fns {
		fi.fact = &AllocFact{Hot: fi.hot}
		if len(fi.sites) > 0 {
			fi.fact.Allocates = true
			fi.fact.Why = fi.sites[0].msg
			fi.fact.Trail = []string{fi.obj.Name()}
		}
	}
	calleeFact := func(callee *types.Func) *AllocFact {
		if fi, ok := byObj[callee]; ok {
			return fi.fact
		}
		if pass.ImportObjectFact == nil {
			return nil
		}
		var f AllocFact
		if pass.ImportObjectFact(callee, &f) {
			return &f
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if fi.fact.Allocates {
				continue
			}
			for _, cs := range fi.calls {
				if cs.hatched {
					continue
				}
				cf := calleeFact(cs.callee)
				if cf == nil || cf.Hot || !cf.Allocates {
					continue
				}
				fi.fact.Allocates = true
				fi.fact.Why = cf.Why
				fi.fact.Trail = append([]string{fi.obj.Name()}, cf.Trail...)
				changed = true
				break
			}
		}
	}

	if pass.ExportObjectFact != nil {
		for _, fi := range fns {
			if (fi.fact.Allocates || fi.fact.Hot) && ast.IsExported(fi.obj.Name()) {
				pass.ExportObjectFact(fi.obj, fi.fact)
			}
		}
	}

	for _, fi := range fns {
		if !fi.hot {
			continue
		}
		for _, s := range fi.sites {
			pass.Report(analysis.Diagnostic{
				Pos:      s.pos,
				Category: s.category,
				Message:  s.msg + " in //ce:hot function " + fi.obj.Name(),
			})
		}
		for _, cs := range fi.calls {
			if cs.hatched {
				continue
			}
			cf := calleeFact(cs.callee)
			if cf == nil || cf.Hot || !cf.Allocates {
				continue
			}
			pass.Report(analysis.Diagnostic{
				Pos:      cs.pos,
				Category: "hot-call",
				Message: fmt.Sprintf("call to %s allocates (%s) in //ce:hot function %s",
					calleeLabel(pass.Pkg, cs.callee), cf.chain(), fi.obj.Name()),
			})
		}
	}
	return nil, nil
}

// calleeLabel names a callee for a finding message, package-qualified
// when it lives elsewhere.
func calleeLabel(from *types.Package, callee *types.Func) string {
	if callee.Pkg() == nil || callee.Pkg() == from {
		return callee.Name()
	}
	return callee.Pkg().Name() + "." + callee.Name()
}

type checker struct {
	pass    *analysis.Pass
	idx     *directive.Index
	fn      *ast.FuncDecl
	info    *fnInfo
	parents map[ast.Node]ast.Node
}

// parentMap records the parent of every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	m := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}

// report records one direct allocation site unless an //ce:alloc-ok
// hatch covers it. Hatched sites are invisible both to reporting and to
// the function's exported fact.
func (c *checker) report(pos token.Pos, category, format string, args ...any) {
	if _, ok := c.idx.Covering(pos); ok {
		return
	}
	c.info.sites = append(c.info.sites, site{
		pos:      pos,
		category: category,
		msg:      fmt.Sprintf(format, args...),
	})
}

// check walks the function body recording allocation sites and
// statically-resolved calls.
func (c *checker) check() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.call(n)
			if callee := c.staticCallee(n); callee != nil {
				_, hatched := c.idx.Covering(n.Pos())
				c.info.calls = append(c.info.calls, callSite{pos: n.Pos(), callee: callee, hatched: hatched})
			}
		case *ast.CompositeLit:
			if c.compositeEscapes(n) {
				c.report(n.Pos(), "hot-composite", "escaping composite literal allocates")
			}
		case *ast.FuncLit:
			if c.funcLitEscapes(n) {
				c.report(n.Pos(), "hot-closure", "escaping func literal allocates its closure")
			}
			return true // still scan the body: nested allocations count
		case *ast.GoStmt:
			c.report(n.Pos(), "hot-go", "go statement allocates a goroutine stack")
		case *ast.DeferStmt:
			c.report(n.Pos(), "hot-defer", "defer allocates a deferred frame")
		}
		return true
	})
}

// staticCallee resolves a call to its target function when the target is
// known statically (package function, method, or imported function).
// Dynamic calls through function values resolve to nil.
func (c *checker) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := c.pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// call flags make/new, fmt calls, and fresh-slice appends.
func (c *checker) call(call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch c.builtinName(fun) {
		case "make":
			c.report(call.Pos(), "hot-make", "make allocates")
		case "new":
			c.report(call.Pos(), "hot-new", "new allocates")
		case "append":
			c.appendCall(call)
		}
	case *ast.SelectorExpr:
		if pkg := pkgNameOf(c.pass.TypesInfo, fun.X); pkg != nil && pkg.Imported().Path() == "fmt" {
			c.report(call.Pos(), "hot-fmt", "fmt."+fun.Sel.Name+" boxes its arguments")
		}
	}
}

// builtinName returns the name of the builtin the identifier denotes, or
// "" when it is shadowed or not a builtin.
func (c *checker) builtinName(id *ast.Ident) string {
	if obj, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return obj.Name()
	}
	return ""
}

// pkgNameOf resolves an expression to the package it names, if any.
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// appendCall flags x = append(y, ...) when x and y are different
// expressions: the result lands in a fresh slice that append must
// allocate. Self-append (x = append(x, ...)) amortizes against capacity
// reserved by a non-hot setup path and is the idiom the PR 3 loop uses.
func (c *checker) appendCall(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	as, ok := c.parents[call].(*ast.AssignStmt)
	if !ok {
		// append whose result is not stored back: passed to a call,
		// returned, discarded — always a fresh allocation on growth.
		c.report(call.Pos(), "hot-append", "append into a fresh slice allocates")
		return
	}
	// Find which RHS position this call occupies to pair it with its LHS.
	lhsIdx := 0
	if len(as.Lhs) == len(as.Rhs) {
		for i, r := range as.Rhs {
			if ast.Unparen(r) == ast.Expr(call) {
				lhsIdx = i
				break
			}
		}
	}
	if lhsIdx >= len(as.Lhs) {
		return
	}
	lhs := types.ExprString(ast.Unparen(as.Lhs[lhsIdx]))
	arg := types.ExprString(ast.Unparen(call.Args[0]))
	if lhs != arg {
		c.report(call.Pos(), "hot-append", "append into a fresh slice allocates")
	}
}

// compositeEscapes reports whether a composite literal is heap
// allocated: its address is taken, or its immediate use converts it to
// an interface type (boxing). Plain value uses are copies.
func (c *checker) compositeEscapes(lit *ast.CompositeLit) bool {
	var child ast.Node = lit
	for {
		parent := c.parents[child]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			child = p
		case *ast.UnaryExpr:
			// &T{...}: the pointer can outlive the frame; the PR 3 fast
			// path has no legitimate &T{}, so flag conservatively.
			return p.Op == token.AND
		case *ast.CallExpr:
			return c.boxedByCall(p, child)
		case *ast.AssignStmt:
			return c.boxedByAssign(p, child)
		case *ast.ReturnStmt:
			return c.boxedByReturn(p, child)
		default:
			// Nested literals, value specs, indexes, sends, ranges: the
			// value is copied (or the outermost literal decides).
			return false
		}
	}
}

// boxedByCall reports whether the argument lands in an interface-typed
// parameter.
func (c *checker) boxedByCall(call *ast.CallExpr, arg ast.Node) bool {
	sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false // conversion or builtin
	}
	idx := -1
	for i, a := range call.Args {
		if ast.Node(a) == arg {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	params := sig.Params()
	var pt types.Type
	switch {
	case sig.Variadic() && idx >= params.Len()-1 && !call.Ellipsis.IsValid():
		if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			pt = sl.Elem()
		}
	case idx < params.Len():
		pt = params.At(idx).Type()
	}
	return pt != nil && types.IsInterface(pt)
}

// boxedByAssign reports whether the assignment's destination for this
// RHS is interface-typed.
func (c *checker) boxedByAssign(as *ast.AssignStmt, rhs ast.Node) bool {
	if len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, r := range as.Rhs {
		if ast.Node(r) != rhs {
			continue
		}
		if t := c.pass.TypesInfo.TypeOf(as.Lhs[i]); t != nil && types.IsInterface(t) {
			return true
		}
	}
	return false
}

// boxedByReturn reports whether the returned composite lands in an
// interface-typed result of the enclosing function (literal or declared).
func (c *checker) boxedByReturn(ret *ast.ReturnStmt, res ast.Node) bool {
	idx := -1
	for i, r := range ret.Results {
		if ast.Node(r) == res {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	ftype := c.fn.Type
	for n := c.parents[ast.Node(ret)]; n != nil; n = c.parents[n] {
		if fl, ok := n.(*ast.FuncLit); ok {
			ftype = fl.Type
			break
		}
	}
	if ftype.Results == nil {
		return false
	}
	i := 0
	for _, f := range ftype.Results.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for k := 0; k < n; k++ {
			if i == idx {
				t := c.pass.TypesInfo.TypeOf(f.Type)
				return t != nil && types.IsInterface(t)
			}
			i++
		}
	}
	return false
}

// funcLitEscapes decides whether a func literal's closure is heap
// allocated. Allowed: called directly (func(){...}()), or bound via :=
// to a local variable whose every use is a direct call.
func (c *checker) funcLitEscapes(fl *ast.FuncLit) bool {
	parent := c.parents[ast.Node(fl)]
	if p, ok := parent.(*ast.ParenExpr); ok {
		parent = c.parents[ast.Node(p)]
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		// Direct invocation keeps the frame on the stack; as an argument
		// it escapes into the callee.
		return ast.Unparen(p.Fun) != ast.Expr(fl)
	case *ast.AssignStmt:
		if p.Tok != token.DEFINE || len(p.Lhs) != len(p.Rhs) {
			return true
		}
		for i, r := range p.Rhs {
			if ast.Unparen(r) != ast.Expr(fl) {
				continue
			}
			id, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				return true
			}
			return !c.onlyCalled(obj)
		}
		return true
	default:
		return true
	}
}

// onlyCalled reports whether every use of obj in the function body is as
// the function operand of a direct call.
func (c *checker) onlyCalled(obj types.Object) bool {
	ok := true
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || c.pass.TypesInfo.Uses[id] != obj {
			return true
		}
		call, isCall := c.parents[ast.Node(id)].(*ast.CallExpr)
		if !isCall || ast.Unparen(call.Fun) != ast.Expr(id) {
			ok = false
		}
		return true
	})
	return ok
}
