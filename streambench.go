package ce

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

// streamBenchMaxCycles bounds each StreamBench simulation leg. Huge
// workloads run ~1.5×10^8 instructions, so the sweep-wide maxCycles
// (sized for the paper workloads) is too tight for the monolithic
// truth run.
const streamBenchMaxCycles = 1 << 30

// StreamModeResult is one sampling mode's row in the streaming
// benchmark: how much of the trace it simulated, what that cost, and
// how far its IPC estimate landed from the streamed-exact truth.
type StreamModeResult struct {
	// Mode is "fixed" (stride sampling, fixed warmup), "adaptive"
	// (stride sampling, IPC-convergence warmup) or "phase" (one
	// representative per behavior cluster, adaptive warmup).
	Mode string `json:"mode"`
	// Simulated is the number of segments the mode timed, and
	// SimulatedSteps the measured (post-warmup) instructions across
	// them. Modes are run at an equal segment budget so their errors
	// are directly comparable.
	Simulated      int    `json:"segments_simulated"`
	SimulatedSteps uint64 `json:"simulated_steps"`
	// Phases is the number of behavior clusters found (phase mode only).
	Phases int `json:"phases,omitempty"`

	WallSeconds  float64 `json:"wall_seconds"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`

	IPC         float64 `json:"ipc"`
	IPCHalfCI95 float64 `json:"ipc_half_ci95"`
	// IPCErrorPct is the signed error against the streamed-exact
	// monolithic IPC, in percent.
	IPCErrorPct float64 `json:"ipc_error_pct"`
	// Speedup is exact wall seconds over this mode's wall seconds.
	Speedup float64 `json:"speedup"`
	// WarmupMeanSteps is the mean adaptive warmup spent per segment
	// (adaptive and phase modes).
	WarmupMeanSteps float64 `json:"warmup_mean_steps,omitempty"`
}

// StreamBenchResult is the streaming-simulation benchmark record: one
// huge workload captured straight to disk, timed exactly once by a
// monolithic streamed replay, then estimated by each sampling mode at
// an equal simulated-segment budget.
type StreamBenchResult struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Steps    uint64 `json:"steps"`
	Segments int    `json:"segments"`

	// TraceDiskBytes/TraceResidentBytes decompose the captured trace's
	// footprint; streamed captures keep everything on disk.
	TraceDiskBytes     int64   `json:"trace_disk_bytes"`
	TraceResidentBytes int64   `json:"trace_resident_bytes"`
	CaptureSeconds     float64 `json:"capture_seconds"`
	CapturePeakRSS     int64   `json:"capture_peak_rss_bytes"`

	// The streamed-exact truth: one monolithic replay of the full trace
	// through the disk-backed reader.
	ExactWallSeconds float64 `json:"exact_wall_seconds"`
	ExactPeakRSS     int64   `json:"exact_peak_rss_bytes"`
	ExactCycles      int64   `json:"exact_cycles"`
	ExactIPC         float64 `json:"exact_ipc"`

	Modes []StreamModeResult `json:"modes"`
}

// peakRSSBytes reads the process's peak resident set (VmHWM) from
// /proc/self/status. Returns 0 where the proc interface is missing.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// resetPeakRSS resets VmHWM (writing "5" to /proc/self/clear_refs) so
// consecutive benchmark legs get independent peak measurements. Best
// effort: without the reset the values are monotone over the run.
func resetPeakRSS() {
	_ = os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}

// StreamBench benchmarks streamed simulation of one workload under the
// baseline configuration. The trace is captured (or loaded) through dir
// — with a directory the capture streams to disk in bounded memory,
// which is the point on huge workloads — then the full trace is timed
// once monolithically (the exact truth) and estimated by the three
// sampling modes, each budgeted to simulate at most `budget` of the
// trace's `segments` segments. dir == "" benchmarks the in-memory path.
func StreamBench(workload, dir string, segments, budget int) (*StreamBenchResult, error) {
	if segments < 2 {
		return nil, fmt.Errorf("streambench: need at least 2 segments, got %d", segments)
	}
	if budget < 1 || budget > segments {
		return nil, fmt.Errorf("streambench: budget %d out of range [1, %d]", budget, segments)
	}
	eng := NewEngine()
	if dir != "" {
		if err := eng.SetTraceDir(dir); err != nil {
			return nil, err
		}
	}

	resetPeakRSS()
	start := time.Now()
	tr, err := eng.traceFor(workload)
	if err != nil {
		return nil, err
	}
	res := &StreamBenchResult{
		Workload:       workload,
		Config:         BaselineConfig().Name,
		Steps:          tr.Steps(),
		CaptureSeconds: time.Since(start).Seconds(),
		CapturePeakRSS: peakRSSBytes(),
	}
	res.TraceDiskBytes, res.TraceResidentBytes = tr.Footprint()

	cfg := BaselineConfig()
	resetPeakRSS()
	start = time.Now()
	sim, err := pipeline.NewReplay(cfg, trace.NewReader(tr))
	if err != nil {
		return nil, err
	}
	mono, err := sim.Run(streamBenchMaxCycles)
	if err != nil {
		return nil, err
	}
	res.ExactWallSeconds = time.Since(start).Seconds()
	res.ExactPeakRSS = peakRSSBytes()
	res.ExactCycles = mono.Cycles
	res.ExactIPC = mono.IPC()

	segs := tr.Segments(segments)
	res.Segments = len(segs)
	// The stride that spends the same segment budget as phase mode.
	stride := (len(segs) + budget - 1) / budget
	strided := make([]int, 0, budget)
	for i := 0; i < len(segs); i += stride {
		strided = append(strided, i)
	}

	mode := func(name string, pick []int, weights []float64, opts pipeline.SegmentOpts) error {
		resetPeakRSS()
		start := time.Now()
		parts, reports, err := runSegments(cfg, tr, segs, pick, opts)
		if err != nil {
			return fmt.Errorf("streambench %s: %w", name, err)
		}
		m := StreamModeResult{
			Mode:         name,
			Simulated:    len(parts),
			WallSeconds:  time.Since(start).Seconds(),
			PeakRSSBytes: peakRSSBytes(),
		}
		ipcs := make([]float64, len(parts))
		for i, p := range parts {
			ipcs[i] = p.IPC()
			m.SimulatedSteps += p.Committed
		}
		if weights != nil {
			m.IPC, m.IPCHalfCI95 = stats.WeightedMeanCI95(ipcs, weights)
		} else {
			m.IPC, m.IPCHalfCI95 = stats.MeanCI95(ipcs)
		}
		if opts.Adaptive {
			var warm uint64
			for _, r := range reports {
				warm += r.WarmupSteps
			}
			if len(reports) > 0 {
				m.WarmupMeanSteps = float64(warm) / float64(len(reports))
			}
		}
		if res.ExactIPC > 0 {
			m.IPCErrorPct = (m.IPC - res.ExactIPC) / res.ExactIPC * 100
		}
		if m.WallSeconds > 0 {
			m.Speedup = res.ExactWallSeconds / m.WallSeconds
		}
		if name == "phase" {
			m.Phases = len(pick)
		}
		res.Modes = append(res.Modes, m)
		return nil
	}

	if err := mode("fixed", strided, nil, pipeline.SegmentOpts{Warmup: 1 << 15}); err != nil {
		return nil, err
	}
	if err := mode("adaptive", strided, nil, pipeline.SegmentOpts{Adaptive: true}); err != nil {
		return nil, err
	}
	if phases := tr.SegmentPhases(segs, budget); phases != nil {
		pick := make([]int, len(phases))
		weights := make([]float64, len(phases))
		for i, ph := range phases {
			pick[i] = ph.Rep
			weights[i] = ph.Weight
		}
		if err := mode("phase", pick, weights, pipeline.SegmentOpts{Adaptive: true}); err != nil {
			return nil, err
		}
	}
	return res, nil
}
