// Cedelay regenerates the paper's complexity-analysis results: Figure 3
// (rename delay vs issue width), Figure 5 (wakeup delay vs window size),
// Figure 6 (wakeup components vs feature size), Figure 8 (selection delay
// vs window size), Table 1 (bypass delays), Table 2 (overall delays) and
// Table 4 (reservation-table delay), plus the Section 5.5 clock ratio.
//
// Usage:
//
//	cedelay -fig 3            # one figure
//	cedelay -table 2          # one table
//	cedelay -all              # everything
//	cedelay -point 0.18um,8,64  # a custom design point
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/report"
	"repro/internal/vlsi"
)

var (
	figure  = flag.Int("fig", 0, "figure to regenerate: 3, 5, 6 or 8")
	table   = flag.Int("table", 0, "table to regenerate: 1, 2 or 4")
	all     = flag.Bool("all", false, "regenerate every delay result")
	point   = flag.String("point", "", "analyze a custom design point: tech,issueWidth,windowSize (e.g. 0.18um,8,64)")
	memory  = flag.Bool("memory", false, "register file and cache access times (extension)")
	schemes = flag.Bool("schemes", false, "RAM vs CAM rename scheme comparison (extension)")
	area    = flag.Bool("area", false, "issue-logic area comparison (extension)")
	csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cedelay:", err)
		os.Exit(1)
	}
}

func emit(t *report.Table) {
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}

func run() error {
	type gen struct {
		sel bool
		fn  func() (*report.Table, error)
	}
	gens := []gen{
		{*figure == 3 || *all, ce.Figure3},
		{*figure == 5 || *all, ce.Figure5},
		{*figure == 6 || *all, ce.Figure6},
		{*figure == 8 || *all, ce.Figure8},
		{*table == 1 || *all, ce.Table1},
		{*table == 2 || *all, ce.Table2},
		{*table == 4 || *all, ce.Table4},
		{*memory || *all, ce.MemoryDelays},
		{*schemes || *all, ce.RenameSchemes},
		{*area || *all, ce.AreaComparison},
	}
	ran := false
	for _, g := range gens {
		if !g.sel {
			continue
		}
		ran = true
		t, err := g.fn()
		if err != nil {
			return err
		}
		emit(t)
	}
	if *all {
		ratio, err := ce.ClockRatio(vlsi.Tech018)
		if err != nil {
			return err
		}
		fmt.Printf("Section 5.5 clock ratio (0.18um): the dependence-based machine supports a %.0f%% faster clock\n\n", (ratio-1)*100)
	}
	if *point != "" {
		ran = true
		if err := analyzePoint(*point); err != nil {
			return err
		}
	}
	if !ran {
		flag.Usage()
		return fmt.Errorf("nothing selected: pass -fig N, -table N, -point spec, -memory or -all")
	}
	return nil
}

func analyzePoint(spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf("bad -point %q: want tech,issueWidth,windowSize", spec)
	}
	tech, err := ce.TechnologyByName(parts[0])
	if err != nil {
		return err
	}
	iw, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("bad issue width %q: %v", parts[1], err)
	}
	ws, err := strconv.Atoi(parts[2])
	if err != nil {
		return fmt.Errorf("bad window size %q: %v", parts[2], err)
	}
	o, err := ce.AnalyzeDelays(tech, iw, ws)
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   fmt.Sprintf("Design point: %s, %d-way, %d-entry window", tech.Name, iw, ws),
		Headers: []string{"structure", "delay (ps)"},
	}
	tbl.AddRowf("rename", o.Rename.Total())
	tbl.AddRowf("wakeup", o.Wakeup.Total())
	tbl.AddRowf("select", o.Select.Total())
	tbl.AddRowf("wakeup+select", o.WakeupSelect())
	tbl.AddRowf("bypass", o.Bypass.Delay)
	tbl.AddRowf("critical path", o.CriticalPath())
	emit(tbl)
	return nil
}
