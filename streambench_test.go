package ce

import "testing"

// TestStreamBench smoke-tests the streaming benchmark harness at unit
// scale: a disk-streamed capture, the monolithic exact truth, and all
// three sampling modes at an equal segment budget, each within a sane
// error band of the truth.
func TestStreamBench(t *testing.T) {
	res, err := StreamBench("compress.big", t.TempDir(), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 || res.ExactCycles <= 0 || res.ExactIPC <= 0 {
		t.Fatalf("exact side empty: %+v", res)
	}
	if res.TraceDiskBytes == 0 || res.TraceResidentBytes != 0 {
		t.Errorf("capture not streamed to disk: disk=%d resident=%d",
			res.TraceDiskBytes, res.TraceResidentBytes)
	}
	if len(res.Modes) != 3 {
		t.Fatalf("modes = %d, want fixed+adaptive+phase (%+v)", len(res.Modes), res.Modes)
	}
	for _, m := range res.Modes {
		if m.IPC <= 0 || m.Simulated < 1 || m.Simulated > 4 || m.SimulatedSteps == 0 {
			t.Errorf("%s: degenerate mode result: %+v", m.Mode, m)
		}
		if m.IPCErrorPct < -50 || m.IPCErrorPct > 50 {
			t.Errorf("%s: IPC off by %.1f%%", m.Mode, m.IPCErrorPct)
		}
		if m.SimulatedSteps >= res.Steps {
			t.Errorf("%s: simulated %d of %d steps — sampling did not sample",
				m.Mode, m.SimulatedSteps, res.Steps)
		}
	}
	ph := res.Modes[2]
	if ph.Mode != "phase" || ph.Phases < 1 || ph.Phases > 4 {
		t.Errorf("phase mode malformed: %+v", ph)
	}
	for _, m := range res.Modes[1:] {
		if m.WarmupMeanSteps <= 0 {
			t.Errorf("%s: adaptive warmup reported no steps: %+v", m.Mode, m)
		}
	}
}
