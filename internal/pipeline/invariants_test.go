package pipeline

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/prog"
)

// invCfg returns a gshare configuration with invariant checking on.
func invCfg(name string, clusters, interDelay int, sched func() core.Scheduler) Config {
	c := cfg(name, clusters, interDelay, sched)
	c.PerfectBPred = false
	c.CheckInvariants = true
	return c
}

// TestInvariantsHoldAcrossOrganizations runs real workloads through every
// scheduler organization and speculation model with the checker armed: a
// clean pass means the machine upheld ordering, width, readiness and
// balance invariants on every cycle.
func TestInvariantsHoldAcrossOrganizations(t *testing.T) {
	clustered := func() core.Scheduler {
		return core.NewFIFOBank(core.FIFOBankConfig{
			Name: "fifos-2x4", Clusters: 2, FIFOsPerCluster: 4, Depth: 8,
		})
	}
	cases := []struct {
		name string
		mk   func() Config
	}{
		{"window", func() Config { return invCfg("window", 1, 0, window64) }},
		{"fifos", func() Config { return invCfg("fifos", 1, 0, fifos8x8) }},
		{"clustered", func() Config {
			c := invCfg("clustered", 2, 1, clustered)
			return c
		}},
		{"pipelined-wakeup", func() Config {
			c := invCfg("pws", 1, 0, window64)
			c.PipelinedWakeupSelect = true
			c.LocalBypassExtra = 1
			return c
		}},
		{"wrong-path", func() Config {
			c := invCfg("wp", 1, 0, window64)
			c.WrongPathExecution = true
			return c
		}},
		{"wrong-path-icache-forwarding", func() Config {
			c := invCfg("wp-ic", 1, 0, fifos8x8)
			c.WrongPathExecution = true
			c.StoreForwarding = true
			c.FetchBreakOnTaken = true
			ic := cache.Config{SizeBytes: 4 << 10, Ways: 2, LineBytes: 32, HitCycles: 1, MissCycles: 8}
			c.ICache = &ic
			return c
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, workload := range []string{"micro.branchy", "compress"} {
				st, _ := runWorkload(t, tc.mk(), workload)
				if st.Committed == 0 {
					t.Fatalf("%s: nothing committed", workload)
				}
			}
		})
	}
}

// squashlessBank ignores Squash, leaving wrong-path uops buffered — the
// kind of scheduler bug the checker exists to catch.
type squashlessBank struct{ core.Scheduler }

func (s squashlessBank) Squash(afterSeq uint64) {}

// lyingWindow under-reports its occupancy.
type lyingWindow struct{ core.Scheduler }

func (w lyingWindow) Len() int {
	if n := w.Scheduler.Len(); n > 0 {
		return n - 1
	}
	return 0
}

// TestCheckerDetectsSchedulerBugs proves the checker is not vacuous: a
// scheduler that drops its Squash obligation, and one whose occupancy
// disagrees with the ROB, must both fail the run with a diagnosis.
func TestCheckerDetectsSchedulerBugs(t *testing.T) {
	run := func(c Config) error {
		w, err := prog.ByName("micro.branchy")
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.Program()
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(c, p)
		if err != nil {
			t.Fatal(err)
		}
		_, err = sim.Run(10_000_000)
		return err
	}

	c := invCfg("squashless", 1, 0, nil)
	c.NewScheduler = func() core.Scheduler { return squashlessBank{core.NewCentralWindow(64)} }
	c.WrongPathExecution = true
	err := run(c)
	if err == nil || !strings.Contains(err.Error(), "invariant violated") {
		t.Errorf("squash-dropping scheduler passed the checker: %v", err)
	}

	c = invCfg("lying", 1, 0, nil)
	c.NewScheduler = func() core.Scheduler { return lyingWindow{core.NewCentralWindow(64)} }
	err = run(c)
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Errorf("occupancy-lying scheduler passed the checker: %v", err)
	}
}

// TestSquashCancelsWrongPathFetchStall pins the post-squash fetch
// behaviour with an instruction cache: a wrong-path fetch that misses
// starts a long stall, but the branch redirect must cancel it — the
// architectural path pays for its own refetch (cache pollution is real)
// and nothing more.
//
// The loop branch is trained taken to a far target on another cache
// line; its final not-taken execution mispredicts, so wrong-path fetch
// probes the far line, misses (one-line cache) and blocks fetch for
// MissCycles. Without the cancellation, the instruction after the
// branch inherits that stall on top of its own refetch miss, roughly
// doubling its fetch delay.
func TestSquashCancelsWrongPathFetchStall(t *testing.T) {
	const miss = 64
	src := `
		.text
main:	li   $s0, 12
loop:	addi $s0, $s0, -1
		bne  $s0, $zero, far
		out  $s0
		halt
		nop
		nop
		nop
		nop
		nop
		nop
		nop
		nop
far:	addi $t0, $t0, 1
		j    loop
`
	c := invCfg("squash-icache", 1, 0, window64)
	c.WrongPathExecution = true
	c.RecordTimeline = true
	// One 32-byte line: every cross-line fetch misses, so the final
	// misprediction's wrong-path probe of the far line always stalls.
	ic := cache.Config{SizeBytes: 32, Ways: 1, LineBytes: 32, HitCycles: 1, MissCycles: miss}
	c.ICache = &ic

	p := mustProgram(t, src)
	sim, err := New(c, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Note SquashedUops may be zero: the wrong-path stall itself keeps any
	// wrong-path instruction from being fetched before the branch resolves.
	if st.Mispredicts == 0 {
		t.Fatalf("no misprediction recorded")
	}

	// Locate the final (not-taken, mispredicted) branch and the out that
	// commits right after it.
	tl := sim.Timeline()
	last := -1
	for i, e := range tl {
		if e.Inst.IsConditional() {
			last = i
		}
	}
	if last < 0 || last+1 >= len(tl) {
		t.Fatalf("no conditional branch followed by a committed instruction in timeline")
	}
	br, next := tl[last], tl[last+1]
	// The architectural refetch pays one miss of its own (the wrong-path
	// probe evicted the line). Inheriting the wrong-path stall too would
	// push the delay toward 2×miss.
	if delay := next.Fetch - br.Complete; delay > miss+16 {
		t.Errorf("post-squash fetch delayed %d cycles after branch resolution; "+
			"want ≤ %d (one refetch miss) — wrong-path stall inherited?", delay, miss+16)
	}
}
