package emu

import "fmt"

// Checkpoint/restore support: the timing simulator uses this to execute
// down a mispredicted path (fetching and executing wrong-path
// instructions) and roll the architectural state back when the branch
// resolves.
//
// Register state, PC and counters are snapshotted; memory is rolled back
// through a write journal that records each overwritten byte while at
// least one checkpoint is live.

// memWrite is one journaled byte overwrite.
type memWrite struct {
	addr uint32
	old  byte
}

// Checkpoint is a restorable machine state. It is only valid for the
// machine that created it, and only until an older checkpoint is restored
// or committed.
type Checkpoint struct {
	regs       [32]int32
	pc         uint32
	halted     bool
	executed   uint64
	outputLen  int
	journalLen int
	// depth is the number of live checkpoints including this one at the
	// moment it was taken. Restore and Commit pop every checkpoint taken
	// after it in one step, so the machine's journalDepth bookkeeping
	// stays consistent however deeply speculation nested.
	depth int
}

// Checkpoint snapshots the architectural state and begins journaling
// memory writes. Checkpoints nest: restoring (or committing) an older
// checkpoint discards every newer one.
func (m *Machine) Checkpoint() Checkpoint {
	m.journalDepth++
	return Checkpoint{
		regs:       m.regs,
		pc:         m.pc,
		halted:     m.halted,
		executed:   m.Executed,
		outputLen:  len(m.Output),
		journalLen: len(m.journal),
		depth:      m.journalDepth,
	}
}

// Restore rolls the machine back to the checkpointed state, undoing every
// journaled memory write made since — youngest first, so writes journaled
// under checkpoints nested above cp are unwound in exact reverse order.
// Checkpoints taken after cp are discarded along with it: restoring an
// older checkpoint while a newer one is live pops both, leaving the
// machine speculating only if checkpoints older than cp remain.
func (m *Machine) Restore(cp Checkpoint) error {
	if m.journalDepth == 0 {
		return fmt.Errorf("emu: Restore without a live checkpoint") //ce:alloc-ok fatal path, run is over
	}
	if cp.depth > m.journalDepth {
		// cp was already popped by restoring/committing an older
		// checkpoint; its snapshot describes a rolled-back future.
		return fmt.Errorf("emu: stale checkpoint (depth %d, only %d live)", cp.depth, m.journalDepth) //ce:alloc-ok fatal path, run is over
	}
	if cp.journalLen > len(m.journal) {
		return fmt.Errorf("emu: stale checkpoint (journal %d < checkpoint %d)", len(m.journal), cp.journalLen) //ce:alloc-ok fatal path, run is over
	}
	for i := len(m.journal) - 1; i >= cp.journalLen; i-- {
		w := m.journal[i]
		m.page(w.addr)[w.addr&(1<<pageBits-1)] = w.old
	}
	m.journal = m.journal[:cp.journalLen]
	m.regs = cp.regs
	m.pc = cp.pc
	m.halted = cp.halted
	m.Executed = cp.executed
	m.Output = m.Output[:cp.outputLen]
	m.journalDepth = cp.depth - 1
	return nil
}

// Commit discards a checkpoint without restoring it (the speculation
// turned out architecturally irrelevant), along with any checkpoints
// taken after it. The journal is truncated only when the last live
// checkpoint is discarded.
func (m *Machine) Commit(cp Checkpoint) error {
	if m.journalDepth == 0 {
		return fmt.Errorf("emu: Commit without a live checkpoint")
	}
	if cp.depth > m.journalDepth {
		return fmt.Errorf("emu: stale checkpoint (depth %d, only %d live)", cp.depth, m.journalDepth)
	}
	m.journalDepth = cp.depth - 1
	if m.journalDepth == 0 {
		m.journal = m.journal[:0]
	}
	return nil
}

// SetPC redirects execution — used to force the machine down a predicted
// (possibly wrong) path during speculative fetch.
func (m *Machine) SetPC(pc uint32) { m.pc = pc }

// Speculating reports whether at least one checkpoint is live.
func (m *Machine) Speculating() bool { return m.journalDepth > 0 }
