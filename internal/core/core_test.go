package core

import (
	"sort"
	"testing"
	"testing/quick"
)

// mkUop builds a uop with the given sequence, physical sources and dest.
func mkUop(seq uint64, dest int16, srcs ...int16) *Uop {
	return &Uop{Seq: seq, PhysSrcs: srcs, PhysDest: dest, Cluster: -1, FIFO: -1}
}

func issueAll(s Scheduler) []*Uop {
	var out []*Uop
	s.Select(0, func(u *Uop) bool {
		out = append(out, u)
		return true
	})
	return out
}

func TestCentralWindowCapacity(t *testing.T) {
	w := NewCentralWindow(2)
	if w.Capacity() != 2 || w.Clusters() != 1 {
		t.Fatalf("capacity=%d clusters=%d", w.Capacity(), w.Clusters())
	}
	if !w.Dispatch(mkUop(0, 1)) || !w.Dispatch(mkUop(1, 2)) {
		t.Fatal("dispatch into empty window failed")
	}
	if w.Dispatch(mkUop(2, 3)) {
		t.Fatal("dispatch into full window succeeded")
	}
	if w.Len() != 2 {
		t.Fatalf("len=%d", w.Len())
	}
}

func TestCentralWindowSelectsInAgeOrder(t *testing.T) {
	w := NewCentralWindow(8)
	for i := 0; i < 5; i++ {
		w.Dispatch(mkUop(uint64(i), int16(i+40)))
	}
	var seen []uint64
	w.Select(0, func(u *Uop) bool {
		seen = append(seen, u.Seq)
		return u.Seq%2 == 0 // issue evens only
	})
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("candidates out of age order: %v", seen)
		}
	}
	if w.Len() != 2 {
		t.Fatalf("len=%d after issuing 3 of 5", w.Len())
	}
	// Remaining entries are the odd ones, still in order.
	rest := issueAll(w)
	if len(rest) != 2 || rest[0].Seq != 1 || rest[1].Seq != 3 {
		t.Fatalf("remaining = %v", rest)
	}
}

func TestCentralWindowClusterAssignment(t *testing.T) {
	w := NewCentralWindow(4)
	u := mkUop(0, 1)
	w.Dispatch(u)
	if u.Cluster != 0 {
		t.Errorf("plain window assigned cluster %d, want 0", u.Cluster)
	}
	e := NewExecSteeredWindow(4, 2)
	if e.Clusters() != 2 {
		t.Errorf("exec-steered clusters = %d", e.Clusters())
	}
	v := mkUop(0, 1)
	e.Dispatch(v)
	if v.Cluster != -1 {
		t.Errorf("exec-steered window assigned cluster %d at dispatch, want -1", v.Cluster)
	}
}

func depBank(fifos, depth int) *FIFOBank {
	return NewFIFOBank(FIFOBankConfig{
		Name: "test", Clusters: 1, FIFOsPerCluster: fifos, Depth: depth,
	})
}

func TestSteeringChainsShareFIFO(t *testing.T) {
	b := depBank(4, 8)
	// u0 writes p40; u1 reads p40 → same FIFO, behind u0.
	u0 := mkUop(0, 40)
	u1 := mkUop(1, 41, 40)
	if !b.Dispatch(u0) || !b.Dispatch(u1) {
		t.Fatal("dispatch failed")
	}
	if u0.FIFO != u1.FIFO {
		t.Errorf("dependent pair split across FIFOs %d and %d", u0.FIFO, u1.FIFO)
	}
	// u2 independent → different FIFO.
	u2 := mkUop(2, 42)
	b.Dispatch(u2)
	if u2.FIFO == u0.FIFO {
		t.Error("independent instruction steered into the busy FIFO")
	}
}

func TestSteeringAvoidsNonTailProducer(t *testing.T) {
	b := depBank(4, 8)
	u0 := mkUop(0, 40)     // chain head
	u1 := mkUop(1, 41, 40) // behind u0
	u2 := mkUop(2, 42, 40) // also needs u0, but u0 is no longer the tail
	b.Dispatch(u0)
	b.Dispatch(u1)
	b.Dispatch(u2)
	if u2.FIFO == u0.FIFO {
		t.Error("instruction steered behind a non-tail producer (would stall the FIFO)")
	}
}

func TestSteeringFullFIFOFallsBack(t *testing.T) {
	b := depBank(2, 2)
	u0 := mkUop(0, 40)
	u1 := mkUop(1, 41, 40)
	b.Dispatch(u0)
	b.Dispatch(u1) // FIFO now full (depth 2)
	u2 := mkUop(2, 42, 41)
	if !b.Dispatch(u2) {
		t.Fatal("dispatch failed despite a free FIFO")
	}
	if u2.FIFO == u0.FIFO {
		t.Error("steered into a full FIFO")
	}
}

func TestSteeringStallsWhenNoFIFOAvailable(t *testing.T) {
	b := depBank(2, 1)
	b.Dispatch(mkUop(0, 40))
	b.Dispatch(mkUop(1, 41))
	u := mkUop(2, 42)
	if b.Dispatch(u) {
		t.Fatal("dispatch succeeded with every FIFO occupied")
	}
	if b.StallNoFIFO != 1 {
		t.Errorf("StallNoFIFO = %d, want 1", b.StallNoFIFO)
	}
}

func TestHeadsOnlySelection(t *testing.T) {
	b := depBank(2, 8)
	u0 := mkUop(0, 40)
	u1 := mkUop(1, 41, 40)
	b.Dispatch(u0)
	b.Dispatch(u1)
	var offered []uint64
	b.Select(0, func(u *Uop) bool {
		offered = append(offered, u.Seq)
		return false
	})
	if len(offered) != 1 || offered[0] != 0 {
		t.Errorf("heads-only offered %v, want only seq 0", offered)
	}
}

func TestAnySlotSelection(t *testing.T) {
	b := NewFIFOBank(FIFOBankConfig{
		Name: "win", Clusters: 1, FIFOsPerCluster: 2, Depth: 8, AnySlot: true,
	})
	b.Dispatch(mkUop(0, 40))
	b.Dispatch(mkUop(1, 41, 40))
	var offered []uint64
	b.Select(0, func(u *Uop) bool {
		offered = append(offered, u.Seq)
		return false
	})
	if len(offered) != 2 {
		t.Errorf("any-slot offered %v, want both entries", offered)
	}
}

func TestFIFORecycling(t *testing.T) {
	b := depBank(1, 4)
	u0 := mkUop(0, 40)
	b.Dispatch(u0)
	if b.Dispatch(mkUop(1, 41)) {
		t.Fatal("second independent chain fit into a single-FIFO bank")
	}
	if got := issueAll(b); len(got) != 1 {
		t.Fatalf("issued %d, want 1", len(got))
	}
	// FIFO drained → back in the free pool.
	if !b.Dispatch(mkUop(2, 42)) {
		t.Error("dispatch failed after FIFO was recycled")
	}
}

func TestProducerTableClearedOnIssue(t *testing.T) {
	b := depBank(4, 8)
	u0 := mkUop(0, 40)
	b.Dispatch(u0)
	issueAll(b)
	// Producer gone: the consumer's operands count as available, so it
	// gets a fresh FIFO rather than chasing the issued producer.
	u1 := mkUop(1, 41, 40)
	b.Dispatch(u1)
	if u1.FIFO == -1 {
		t.Fatal("dispatch failed")
	}
	live := 0
	for _, p := range b.producer {
		if p != nil {
			live++
		}
	}
	if live != 1 || b.producer[41] != u1 { // only u1's own dest
		t.Errorf("producer table has %d live entries, want only u1's dest", live)
	}
}

func TestClusterFreeListPolicy(t *testing.T) {
	// Section 5.5: allocate from the current cluster's pool until it is
	// empty, then switch — consecutive chains land in the same cluster.
	b := NewFIFOBank(FIFOBankConfig{
		Name: "clustered", Clusters: 2, FIFOsPerCluster: 2, Depth: 4,
	})
	var clusters []int
	for i := 0; i < 4; i++ {
		u := mkUop(uint64(i), int16(40+i)) // all independent
		if !b.Dispatch(u) {
			t.Fatal("dispatch failed")
		}
		clusters = append(clusters, u.Cluster)
	}
	want := []int{0, 0, 1, 1}
	for i := range want {
		if clusters[i] != want[i] {
			t.Fatalf("cluster sequence = %v, want %v", clusters, want)
		}
	}
}

func TestRandomSteeringFallsBackWhenFull(t *testing.T) {
	b := NewFIFOBank(FIFOBankConfig{
		Name: "rand", Clusters: 2, FIFOsPerCluster: 1, Depth: 2,
		AnySlot: true, Policy: SteerRandom,
	})
	for i := 0; i < 4; i++ {
		if !b.Dispatch(mkUop(uint64(i), int16(40+i))) {
			t.Fatalf("dispatch %d failed with space available", i)
		}
	}
	if b.Dispatch(mkUop(4, 50)) {
		t.Error("dispatch succeeded with both windows full")
	}
	if b.Len() != 4 {
		t.Errorf("len = %d, want 4", b.Len())
	}
}

// TestFigure12Steering replays the paper's Figure 12 example: the SPEC
// code segment is steered into four FIFOs, four instructions per cycle,
// with up to four ready instructions issuing per cycle (as the figure's
// caption describes). The exact per-cycle FIFO snapshots depend on issue
// timing details the figure does not fully specify, so the test asserts
// the heuristic's defining properties on this segment: everything
// dispatches without stalling, serial chains stay in one FIFO, and issue
// order respects the dependences.
func TestFigure12Steering(t *testing.T) {
	// Physical register ids stand in for the figure's logical registers;
	// registers not produced within the segment are "available" (no
	// producer in any FIFO), so they are omitted from PhysSrcs.
	const (
		r18 = 50 + iota
		r2a // $2 written by instruction 1
		r4a // $4 written by instruction 3
		r2b // $2 written by instruction 4
		r16 // $16 written by 5
		r3a // $3 written by 6
		r2c // $2 written by 7
		r2d // $2 written by 8
		r2e // $2 written by 9
		r4b // $4 written by 10
		r17 // $17 written by 11
		r3b // $3 written by 12
	)
	insts := []*Uop{
		mkUop(0, r18),            // 0: addu $18,$0,$2   ($2 from before: available)
		mkUop(1, r2a),            // 1: addiu $2,$0,-1
		mkUop(2, -1, r18, r2a),   // 2: beq $18,$2,L2
		mkUop(3, r4a),            // 3: lw $4,-32768($28)
		mkUop(4, r2b, r18),       // 4: sllv $2,$18,$20
		mkUop(5, r16, r2b),       // 5: xor $16,$2,$19
		mkUop(6, r3a),            // 6: lw $3,-32676($28)
		mkUop(7, r2c, r16),       // 7: sll $2,$16,0x2
		mkUop(8, r2d, r2c),       // 8: addu $2,$2,$23
		mkUop(9, r2e, r2d),       // 9: lw $2,0($2)
		mkUop(10, r4b, r18, r4a), // 10: sllv $4,$18,$4
		mkUop(11, r17, r4b),      // 11: addu $17,$4,$19
		mkUop(12, r3b, r3a),      // 12: addiu $3,$3,1
		mkUop(13, -1, r3b),       // 13: sw $3,-32676($28)
		mkUop(14, -1, r2e, r17),  // 14: beq $2,$17,L3
	}
	b := depBank(4, 8)
	issued := map[int16]bool{} // physical registers whose producer issued
	fifoAtDispatch := make([]int, len(insts))
	var issueOrder []uint64
	next := 0
	for cycle := 0; cycle < 40 && (next < len(insts) || b.Len() > 0); cycle++ {
		// Steer up to four instructions.
		for n := 0; n < 4 && next < len(insts); n++ {
			if !b.Dispatch(insts[next]) {
				t.Fatalf("instruction %d stalled at dispatch (cycle %d)", next, cycle)
			}
			fifoAtDispatch[next] = insts[next].FIFO
			next++
		}
		// Issue up to four ready instructions (operands' producers issued
		// in an earlier cycle).
		n := 0
		var doneRegs []int16
		b.Select(0, func(u *Uop) bool {
			if n >= 4 {
				return false
			}
			for _, p := range u.PhysSrcs {
				if p >= 0 && !issued[p] {
					return false
				}
			}
			n++
			issueOrder = append(issueOrder, u.Seq)
			if u.PhysDest >= 0 {
				doneRegs = append(doneRegs, u.PhysDest)
			}
			return true
		})
		for _, p := range doneRegs {
			issued[p] = true
		}
	}
	if len(issueOrder) != len(insts) {
		t.Fatalf("issued %d of %d instructions", len(issueOrder), len(insts))
	}
	// Issue order respects dependences.
	pos := map[uint64]int{}
	for i, s := range issueOrder {
		pos[s] = i
	}
	deps := map[uint64][]uint64{2: {0, 1}, 4: {0}, 5: {4}, 7: {5}, 8: {7}, 9: {8}, 10: {0, 3}, 11: {10}, 12: {6}, 13: {12}, 14: {9, 11}}
	consumers := make([]uint64, 0, len(deps))
	for c := range deps {
		consumers = append(consumers, c)
	}
	sort.Slice(consumers, func(i, j int) bool { return consumers[i] < consumers[j] })
	for _, c := range consumers {
		for _, p := range deps[c] {
			if pos[c] <= pos[p] {
				t.Errorf("instruction %d issued at %d, before its producer %d at %d", c, pos[c], p, pos[p])
			}
		}
	}
	// Serial chains are steered into their producer's FIFO.
	for _, pair := range [][2]int{{4, 5}, {7, 8}, {8, 9}, {10, 11}, {12, 13}} {
		p, c := pair[0], pair[1]
		if fifoAtDispatch[c] != fifoAtDispatch[p] {
			t.Errorf("chain %d→%d split across FIFOs %d and %d",
				p, c, fifoAtDispatch[p], fifoAtDispatch[c])
		}
	}
}

func TestPropertyFIFOOrderRespectsProgramOrder(t *testing.T) {
	// However instructions are steered, within any FIFO the sequence
	// numbers must increase from head to tail (in-order issue per FIFO).
	f := func(ops []uint16) bool {
		b := depBank(8, 8)
		seq := uint64(0)
		for _, op := range ops {
			dest := int16(40 + int(op%60))
			var srcs []int16
			if op%3 != 0 {
				srcs = append(srcs, int16(40+int(op>>8)%60))
			}
			u := mkUop(seq, dest, srcs...)
			seq++
			if !b.Dispatch(u) {
				issueAll(b) // drain and continue
				continue
			}
			if seq%5 == 0 {
				// Issue the current heads now and then.
				b.Select(0, func(u *Uop) bool { return true })
			}
		}
		for _, q := range b.FIFOContents() {
			for i := 1; i < len(q); i++ {
				if q[i] <= q[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOccupancyConsistent(t *testing.T) {
	f := func(ops []uint8) bool {
		b := depBank(4, 4)
		for _, op := range ops {
			u := mkUop(uint64(op), int16(40+int(op)%40), int16(40+int(op/2)%40))
			b.Dispatch(u)
			if op%4 == 0 {
				issueAll(b)
			}
		}
		sum := 0
		for _, n := range b.FIFOOccupancy() {
			sum += n
		}
		return sum == b.Len() && b.Len() <= b.Capacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomSelectWindow(t *testing.T) {
	w := NewRandomSelectWindow(16)
	if w.Name() != "central-window-random-select" {
		t.Errorf("name = %q", w.Name())
	}
	for i := 0; i < 16; i++ {
		if !w.Dispatch(mkUop(uint64(i), int16(40+i))) {
			t.Fatal("dispatch failed")
		}
	}
	// Issue half the entries; occupancy must drop accordingly and every
	// entry must be offered exactly once.
	offered := map[uint64]int{}
	n := 0
	w.Select(0, func(u *Uop) bool {
		offered[u.Seq]++
		n++
		return n%2 == 0
	})
	if len(offered) != 16 {
		t.Errorf("offered %d distinct entries, want 16", len(offered))
	}
	seqs := make([]uint64, 0, len(offered))
	for seq := range offered {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		if offered[seq] != 1 {
			t.Errorf("entry %d offered %d times", seq, offered[seq])
		}
	}
	if w.Len() != 8 {
		t.Errorf("len = %d after issuing 8, want 8", w.Len())
	}
	// Remaining entries keep age order for the next cycle's bookkeeping.
	var prev uint64
	first := true
	w.Select(0, func(u *Uop) bool { return false })
	for _, u := range w.entries {
		if !first && u.Seq < prev {
			t.Error("survivors lost age order")
		}
		prev, first = u.Seq, false
	}
}
