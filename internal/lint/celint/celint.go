// Package celint is the driver for the simulator's custom static
// analyzers (dirlint, detlint, keylint, hotlint, locklint, errlint). It
// runs in two modes:
//
//   - standalone: `celint ./...` loads packages through `go list -export`
//     and analyzes each module package, test files included, walking the
//     package DAG bottom-up so analyzer facts flow from dependencies to
//     dependents;
//   - vet tool: `go vet -vettool=$(which celint) ./...` speaks the cmd/go
//     unitchecker protocol (-V=full, -flags, and per-package .cfg files),
//     so findings integrate with the build cache and go test's vet phase.
//     Facts ride in the vetx files cmd/go threads between vet actions.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package celint

import (
	"fmt"
	"go/token"
	"go/types"
	"io"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/detlint"
	"repro/internal/lint/dirlint"
	"repro/internal/lint/errlint"
	"repro/internal/lint/hotlint"
	"repro/internal/lint/keylint"
	"repro/internal/lint/locklint"
)

// Analyzers returns the celint suite in reporting order. dirlint runs
// first so a malformed hatch is reported before the contract finding it
// failed to suppress.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		dirlint.Analyzer,
		detlint.Analyzer,
		keylint.Analyzer,
		hotlint.Analyzer,
		locklint.Analyzer,
		errlint.Analyzer,
	}
}

// Main implements the celint command. args excludes the program name.
func Main(args []string, stdout, stderr io.Writer) int {
	if err := analysis.Validate(Analyzers()); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	analysis.RegisterFactTypes(Analyzers())
	// cmd/go protocol probes.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			return printVersion(stdout, stderr)
		case "-flags", "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if len(args) == 1 && len(args[0]) > 4 && args[0][len(args[0])-4:] == ".cfg" {
		return vetMode(args[0], stderr)
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return standalone(patterns, stdout, stderr)
}

// diagText formats one diagnostic the way go vet does.
func diagText(fset *token.FileSet, a *analysis.Analyzer, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), a.Name, d.Message)
}

// runAnalyzers applies the suite to one loaded package, exporting facts
// into (and importing them from) the given store, and returns the
// formatted findings, sorted by position.
func runAnalyzers(pkg *loadedPackage, facts *analysis.FactSet) ([]string, error) {
	var out []string
	for _, a := range Analyzers() {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.fset,
			Files:     pkg.files,
			Pkg:       pkg.types,
			TypesInfo: pkg.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if len(a.FactTypes) > 0 && facts != nil {
			name := a.Name
			pass.ImportObjectFact = func(obj types.Object, fact analysis.Fact) bool {
				return facts.ImportObjectFact(name, obj, fact)
			}
			pass.ExportObjectFact = func(obj types.Object, fact analysis.Fact) {
				facts.ExportObjectFact(name, obj, fact)
			}
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.importPath, a.Name, err)
		}
		for _, d := range diags {
			out = append(out, diagText(pkg.fset, a, d))
		}
	}
	sort.Strings(out)
	return out, nil
}

func standalone(patterns []string, stdout, stderr io.Writer) int {
	pkgs, err := loadPackages(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "celint:", err)
		return 2
	}
	// One fact store for the whole run, grown bottom-up: loadPackages
	// returns the DAG in topological order, so by the time a package is
	// analyzed every dependency's facts are present. Each package's own
	// exports make a serialization round trip before joining the store —
	// the standalone driver then exercises the exact gob path the vettool
	// driver depends on, so an unserializable fact cannot lurk until the
	// first `go vet` run.
	moduleFacts := analysis.NewFactSet()
	exit := 0
	for _, pkg := range pkgs {
		layer := moduleFacts.NewLayer()
		findings, err := runAnalyzers(pkg, layer)
		if err != nil {
			fmt.Fprintln(stderr, "celint:", err)
			return 2
		}
		encoded, err := layer.Encode()
		if err != nil {
			fmt.Fprintln(stderr, "celint:", err)
			return 2
		}
		if err := moduleFacts.Decode(encoded); err != nil {
			fmt.Fprintln(stderr, "celint:", err)
			return 2
		}
		if pkg.factOnly {
			continue // dependency outside the requested patterns
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
			exit = 1
		}
	}
	return exit
}
