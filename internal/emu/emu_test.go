package emu

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(p)
	for i := 0; i < 1_000_000 && !m.Halted(); i++ {
		if _, err := m.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if !m.Halted() {
		t.Fatal("program did not halt within 1M instructions")
	}
	return m
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
		.text
		li   $t0, 21
		li   $t1, 2
		mul  $t2, $t0, $t1
		out  $t2          # 42
		sub  $t3, $t2, $t0
		out  $t3          # 21
		div  $t4, $t2, $t1
		out  $t4          # 21
		rem  $t5, $t2, $t0
		out  $t5          # 0
		halt
	`)
	want := []int32{42, 21, 21, 0}
	if len(m.Output) != len(want) {
		t.Fatalf("output = %v, want %v", m.Output, want)
	}
	for i := range want {
		if m.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, m.Output[i], want[i])
		}
	}
}

func TestLogicAndShifts(t *testing.T) {
	m := run(t, `
		.text
		li   $t0, 0xF0
		li   $t1, 0x0F
		or   $t2, $t0, $t1
		out  $t2              # 0xFF
		and  $t3, $t0, $t1
		out  $t3              # 0
		xor  $t4, $t0, $t2
		out  $t4              # 0x0F
		sll  $t5, $t1, 4
		out  $t5              # 0xF0
		li   $t6, -16
		sra  $t7, $t6, 2
		out  $t7              # -4
		srl  $t8, $t6, 28
		out  $t8              # 15
		halt
	`)
	want := []int32{0xFF, 0, 0x0F, 0xF0, -4, 15}
	for i := range want {
		if m.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, m.Output[i], want[i])
		}
	}
}

func TestComparisons(t *testing.T) {
	m := run(t, `
		.text
		li   $t0, -1
		li   $t1, 1
		slt  $t2, $t0, $t1
		out  $t2              # 1 (signed)
		sltu $t3, $t0, $t1
		out  $t3              # 0 (unsigned: 0xFFFFFFFF > 1)
		slti $t4, $t0, 0
		out  $t4              # 1
		halt
	`)
	want := []int32{1, 0, 1}
	for i := range want {
		if m.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, m.Output[i], want[i])
		}
	}
}

func TestMemory(t *testing.T) {
	m := run(t, `
		.data
w:		.word 0x11223344
b:		.byte 0xFF
		.text
		lw   $t0, w($zero)
		out  $t0              # 0x11223344
		lb   $t1, b($zero)
		out  $t1              # -1 (sign extended)
		lbu  $t2, b($zero)
		out  $t2              # 255
		li   $t3, 0x5A
		sb   $t3, w+1($zero)
		lw   $t4, w($zero)
		out  $t4              # 0x11225A44
		li   $t5, -7
		sw   $t5, 0x20000($zero)
		lw   $t6, 0x20000($zero)
		out  $t6              # -7
		halt
	`)
	want := []int32{0x11223344, -1, 255, 0x11225A44, -7}
	for i := range want {
		if m.Output[i] != want[i] {
			t.Errorf("output[%d] = %#x, want %#x", i, m.Output[i], want[i])
		}
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 = 55.
	m := run(t, `
		.text
		li   $t0, 10
		li   $t1, 0
loop:	add  $t1, $t1, $t0
		addi $t0, $t0, -1
		bgtz $t0, loop
		out  $t1
		halt
	`)
	if m.Output[0] != 55 {
		t.Errorf("sum = %d, want 55", m.Output[0])
	}
}

func TestCallAndReturn(t *testing.T) {
	m := run(t, `
		.text
main:	li   $a0, 5
		jal  double
		out  $v0              # 10
		jal  double2
		out  $v0              # 20
		halt
double:	add  $v0, $a0, $a0
		jr   $ra
double2: la  $t0, double
		move $s0, $ra         # jalr clobbers $ra; save it
		move $a0, $v0
		jalr $t0
		jr   $s0
	`)
	want := []int32{10, 20}
	for i := range want {
		if m.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, m.Output[i], want[i])
		}
	}
}

func TestBranchRecordFields(t *testing.T) {
	p, err := asm.Assemble("test.s", `
		.text
		li   $t0, 1
		beq  $t0, $zero, skip
		bne  $t0, $zero, skip
		nop
skip:	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if _, err := m.Step(); err != nil { // li
		t.Fatal(err)
	}
	rec, err := m.Step() // beq, not taken
	if err != nil {
		t.Fatal(err)
	}
	if rec.Taken || rec.NextPC != 2 {
		t.Errorf("not-taken branch: taken=%v nextPC=%d", rec.Taken, rec.NextPC)
	}
	rec, err = m.Step() // bne, taken
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Taken || rec.NextPC != 4 {
		t.Errorf("taken branch: taken=%v nextPC=%d, want taken→4", rec.Taken, rec.NextPC)
	}
}

func TestLoadStoreRecordAddress(t *testing.T) {
	p, err := asm.Assemble("test.s", `
		.text
		li  $t0, 0x100
		lw  $t1, 8($t0)
		sw  $t1, 12($t0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.Step()
	rec, _ := m.Step()
	if rec.Addr != 0x108 {
		t.Errorf("load addr = %#x, want 0x108", rec.Addr)
	}
	rec, _ = m.Step()
	if rec.Addr != 0x10C {
		t.Errorf("store addr = %#x, want 0x10C", rec.Addr)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := run(t, `
		.text
		li   $zero, 99
		addi $t0, $zero, 1
		out  $t0
		halt
	`)
	if m.Output[0] != 1 {
		t.Errorf("$zero was written: out = %d, want 1", m.Output[0])
	}
}

func TestHaltBehaviour(t *testing.T) {
	p, err := asm.Assemble("test.s", ".text\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Error("machine not halted after Halt")
	}
	if _, err := m.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("Step after halt = %v, want ErrHalted", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	p, err := asm.Assemble("test.s", ".text\ndiv $t0, $t1, $zero\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if _, err := m.Step(); err == nil {
		t.Error("division by zero succeeded")
	}
}

func TestPCOutOfRange(t *testing.T) {
	p, err := asm.Assemble("test.s", ".text\nnop\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.Step()
	if _, err := m.Step(); err == nil {
		t.Error("fall off end of text succeeded")
	}
}

func TestRunMaxInsts(t *testing.T) {
	p, err := asm.Assemble("test.s", ".text\nloop: j loop\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, 100); err == nil {
		t.Error("infinite loop not caught by maxInsts")
	}
}

func TestMainSymbolStart(t *testing.T) {
	m := run(t, `
		.text
helper:	out  $zero        # must not run first
		halt
main:	li   $t0, 7
		out  $t0
		halt
	`)
	if len(m.Output) != 1 || m.Output[0] != 7 {
		t.Errorf("output = %v, want [7] (execution must start at main)", m.Output)
	}
}

func TestPropertyMemoryRoundTrip(t *testing.T) {
	f := func(addr uint32, v int32) bool {
		// Steer clear of the very top of the address space so addr+3
		// does not wrap.
		addr &= 0x7FFFFFF
		m := New(&isa.Program{Text: []isa.Inst{{Op: isa.Halt}}})
		m.StoreWord(addr, v)
		return m.LoadWord(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAluMatchesGo(t *testing.T) {
	// Random add/sub/xor programs must match Go's arithmetic.
	f := func(a, b int32) bool {
		p := &isa.Program{Text: []isa.Inst{
			{Op: isa.Addi, Rd: isa.T0, Rs: isa.Zero, Imm: a},
			{Op: isa.Addi, Rd: isa.T1, Rs: isa.Zero, Imm: b},
			{Op: isa.Add, Rd: isa.T2, Rs: isa.T0, Rt: isa.T1},
			{Op: isa.Sub, Rd: isa.T3, Rs: isa.T0, Rt: isa.T1},
			{Op: isa.Xor, Rd: isa.T4, Rs: isa.T0, Rt: isa.T1},
			{Op: isa.Out, Rs: isa.T2},
			{Op: isa.Out, Rs: isa.T3},
			{Op: isa.Out, Rs: isa.T4},
			{Op: isa.Halt},
		}}
		out, err := Run(p, 100)
		return err == nil && len(out) == 3 &&
			out[0] == a+b && out[1] == a-b && out[2] == a^b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckpointRestore(t *testing.T) {
	m := run(t, `
		.data
v:		.word 100
		.text
		lw   $t0, v($zero)
		out  $t0
		halt
	`)
	_ = m

	p, err := asm.Assemble("cp.s", `
		.data
v:		.word 100
		.text
		li   $t0, 1
		sw   $t0, v($zero)
		li   $t1, 2
		out  $t1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	mach := New(p)
	mach.Step() // li $t0, 1
	cp := mach.Checkpoint()
	mach.Step() // sw (journaled)
	mach.Step() // li $t1
	mach.Step() // out
	if mach.LoadWord(isa.DataBase) != 1 || len(mach.Output) != 1 {
		t.Fatal("speculative execution did not take effect")
	}
	if err := mach.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if got := mach.LoadWord(isa.DataBase); got != 100 {
		t.Errorf("memory after restore = %d, want 100", got)
	}
	if len(mach.Output) != 0 {
		t.Errorf("output not rolled back: %v", mach.Output)
	}
	if mach.Reg(isa.T1) != 0 || mach.Reg(isa.T0) != 1 {
		t.Errorf("registers after restore: t0=%d t1=%d", mach.Reg(isa.T0), mach.Reg(isa.T1))
	}
	if mach.PC() != 1 || mach.Executed != 1 {
		t.Errorf("pc=%d executed=%d after restore, want 1/1", mach.PC(), mach.Executed)
	}
	// Re-execution after restore reaches the same architectural result.
	for !mach.Halted() {
		if _, err := mach.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if mach.LoadWord(isa.DataBase) != 1 || len(mach.Output) != 1 || mach.Output[0] != 2 {
		t.Error("re-execution after restore diverged")
	}
}

func TestCheckpointCommitTruncatesJournal(t *testing.T) {
	p, err := asm.Assemble("cp.s", ".text\nli $t0, 5\nsw $t0, 0x40000($zero)\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	cp := m.Checkpoint()
	m.Step()
	m.Step()
	if err := m.Commit(cp); err != nil {
		t.Fatal(err)
	}
	if m.Speculating() {
		t.Error("still speculating after commit")
	}
	if len(m.journal) != 0 {
		t.Errorf("journal not truncated: %d entries", len(m.journal))
	}
	if m.LoadWord(0x40000) != 5 {
		t.Error("committed write lost")
	}
	if err := m.Restore(cp); err == nil {
		t.Error("Restore after final Commit succeeded")
	}
}

// TestNestedCheckpointRestoreOldest is the regression test for restoring
// an older checkpoint while a newer one is still live: Restore used to
// decrement journalDepth by exactly one, so after restoring the oldest of
// two nested checkpoints the machine still claimed to be Speculating()
// and the journal accounting was off by one. Restore (and Commit) now
// discard every checkpoint taken after the one being popped.
func TestNestedCheckpointRestoreOldest(t *testing.T) {
	p, err := asm.Assemble("cp.s", `
		.data
v:		.word 100
		.text
		li   $t0, 1
		sw   $t0, v($zero)
		li   $t1, 2
		sw   $t1, v($zero)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.Step() // li $t0
	cp1 := m.Checkpoint()
	m.Step() // sw 1 (journaled under cp1)
	cp2 := m.Checkpoint()
	m.Step() // li $t1
	m.Step() // sw 2 (journaled under cp2)
	if got := m.LoadWord(isa.DataBase); got != 2 {
		t.Fatalf("memory before restore = %d, want 2", got)
	}

	// Restore the *older* checkpoint directly, skipping cp2. Both writes
	// must unwind (youngest first) and speculation must fully end.
	if err := m.Restore(cp1); err != nil {
		t.Fatal(err)
	}
	if got := m.LoadWord(isa.DataBase); got != 100 {
		t.Errorf("memory after restoring cp1 = %d, want 100", got)
	}
	if m.Speculating() {
		t.Error("still speculating after restoring the oldest checkpoint")
	}
	if m.PC() != 1 || m.Executed != 1 {
		t.Errorf("pc=%d executed=%d after restore, want 1/1", m.PC(), m.Executed)
	}

	// cp2 describes a rolled-back future; using it must fail, not corrupt.
	if err := m.Restore(cp2); err == nil {
		t.Error("Restore of a discarded newer checkpoint succeeded")
	}
	if err := m.Commit(cp2); err == nil {
		t.Error("Commit of a discarded newer checkpoint succeeded")
	}

	// The machine is architecturally sound: re-execution converges.
	for !m.Halted() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.LoadWord(isa.DataBase); got != 2 {
		t.Errorf("re-execution after nested restore diverged: %d", got)
	}
}

// TestNestedCheckpointCommitOldest pins the committing counterpart:
// committing the oldest checkpoint discards the nested one too and
// truncates the journal.
func TestNestedCheckpointCommitOldest(t *testing.T) {
	p, err := asm.Assemble("cp.s", ".text\nli $t0, 5\nsw $t0, 0x40000($zero)\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	cp1 := m.Checkpoint()
	m.Step()
	cp2 := m.Checkpoint()
	m.Step()
	if err := m.Commit(cp1); err != nil {
		t.Fatal(err)
	}
	if m.Speculating() {
		t.Error("still speculating after committing the oldest checkpoint")
	}
	if len(m.journal) != 0 {
		t.Errorf("journal not truncated: %d entries", len(m.journal))
	}
	if err := m.Restore(cp2); err == nil {
		t.Error("Restore of a checkpoint discarded by Commit succeeded")
	}
	if m.LoadWord(0x40000) != 5 {
		t.Error("committed write lost")
	}
}

func TestSpeculativeDivisionByZeroSurvives(t *testing.T) {
	p, err := asm.Assemble("cp.s", ".text\ndiv $t0, $t1, $zero\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	cp := m.Checkpoint()
	if _, err := m.Step(); err != nil {
		t.Fatalf("speculative division by zero errored: %v", err)
	}
	if err := m.Restore(cp); err != nil {
		t.Fatal(err)
	}
	// Non-speculative division by zero still errors.
	if _, err := m.Step(); err == nil {
		t.Error("architectural division by zero succeeded")
	}
}

func TestSetPC(t *testing.T) {
	p, err := asm.Assemble("cp.s", ".text\nli $t0, 1\nout $t0\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.SetPC(2)
	m.Step()
	if !m.Halted() {
		t.Error("SetPC(2) did not skip to halt")
	}
}
