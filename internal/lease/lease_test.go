package lease

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAcquireExcludes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.lock")
	l, ok := TryAcquire(path, time.Minute)
	if !ok {
		t.Fatal("first acquire failed")
	}
	if _, ok := TryAcquire(path, time.Minute); ok {
		t.Fatal("second acquire succeeded while held")
	}
	l.Release()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("lock file survives release: %v", err)
	}
	l2, ok := TryAcquire(path, time.Minute)
	if !ok {
		t.Fatal("acquire after release failed")
	}
	l2.Release()
}

func TestStaleTakeover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.lock")
	if err := os.WriteFile(path, []byte("pid 0 crashed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	l, ok := TryAcquire(path, time.Minute)
	if !ok {
		t.Fatal("stale lock not taken over")
	}
	l.Release()
}

func TestFreshLockNotBroken(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.lock")
	if err := os.WriteFile(path, []byte("pid 0 alive\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := TryAcquire(path, time.Minute); ok {
		t.Fatal("fresh lock was broken")
	}
}

// TestRefreshKeepsLockAlive pins the holder side of the staleness
// protocol: with a tiny TTL the refresher must keep bumping mtime so a
// peer never sees the lock as abandoned while the holder is live.
func TestRefreshKeepsLockAlive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.lock")
	l, ok := TryAcquire(path, 40*time.Millisecond)
	if !ok {
		t.Fatal("acquire failed")
	}
	defer l.Release()
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, ok := TryAcquire(path, 40*time.Millisecond); ok {
			t.Fatal("live lock stolen despite refresh")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentAcquire elects exactly one holder among racing
// goroutines (the in-process analogue of N daemons racing on one store).
func TestConcurrentAcquire(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.lock")
	var held int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if l, ok := TryAcquire(path, time.Minute); ok {
				atomic.AddInt32(&held, 1)
				time.Sleep(5 * time.Millisecond)
				l.Release()
			}
		}()
	}
	wg.Wait()
	if held == 0 {
		t.Fatal("no goroutine acquired the lease")
	}
	// Sequential re-acquisition after releases is fine; simultaneous
	// holding is not. With a 5ms hold, 16 instant attempts overlap, so a
	// correct implementation admits only a few holders (frequently 1).
	if held > 4 {
		t.Errorf("%d holders acquired a contended lease", held)
	}
}

// TestReleaseIdempotent pins the double-release path: a daemon's
// deferred Release racing its explicit shutdown release must be a no-op,
// not a close-of-closed-channel panic.
func TestReleaseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.lock")
	l, ok := TryAcquire(path, time.Minute)
	if !ok {
		t.Fatal("acquire failed")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Release()
		}()
	}
	wg.Wait()
	l.Release()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("lock file survives release: %v", err)
	}
}

// TestReleaseDoesNotStealTakenOverLock pins the broken-lease path: a
// holder that lost its lock to staleness takeover must not remove the
// new holder's lock file when it finally calls Release. Before the
// token check, the old holder's Release deleted the new holder's lock,
// re-opening the key to a third process mid-computation.
func TestReleaseDoesNotStealTakenOverLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.lock")
	l1, ok := TryAcquire(path, time.Minute)
	if !ok {
		t.Fatal("first acquire failed")
	}
	// Simulate the staleness takeover a wedged holder would suffer: the
	// peer breaks the lock and re-creates it with its own token.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	l2, ok := TryAcquire(path, time.Minute)
	if !ok {
		t.Fatal("takeover acquire failed")
	}
	l1.Release()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("old holder's release removed the new holder's lock: %v", err)
	}
	l2.Release()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("lock file survives owner release: %v", err)
	}
}
