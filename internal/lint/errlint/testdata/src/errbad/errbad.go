// Package errbad persists artifacts and must classify environment
// errors before they escape.
//
//ce:classify-errors
package errbad

import (
	"errors"
	"fmt"
	"os"
)

// ErrStore is this package's classified sentinel for disk failures.
var ErrStore = errors.New("store failure")

// intoStore classifies a disk error.
//
//ce:classifier
func intoStore(err error) error {
	return fmt.Errorf("%w: %w", ErrStore, err)
}

func badDirect(path string) error {
	return os.Remove(path) // want "unclassified environment error \\(os.Remove\\) escapes"
}

func badVar(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err // want "unclassified environment error \\(os.ReadFile\\) escapes"
	}
	_ = data
	return nil
}

func badWrap(path string) error {
	if _, err := os.Stat(path); err != nil {
		return fmt.Errorf("stat store: %v", err) // want "fmt.Errorf wraps an environment error \\(os.Stat\\) without a classified sentinel"
	}
	return nil
}

// readRaw leaks the raw error and feeds the intra-package chain below.
func readRaw(path string) error {
	_, err := os.ReadFile(path)
	return err // want "unclassified environment error \\(os.ReadFile\\) escapes"
}

func badIndirect(path string) error {
	return readRaw(path) // want "call to readRaw may return an unclassified environment error \\(readRaw: os.ReadFile\\)"
}

// --- classified and clean paths: no findings ---

func okSentinel(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("%w: %w", ErrStore, err)
	}
	return nil
}

func okClassifier(path string) error {
	if err := os.Remove(path); err != nil {
		return intoStore(err)
	}
	return nil
}

func okReassigned(path string) error {
	err := os.Remove(path)
	if err != nil {
		err = intoStore(err)
	}
	return err
}

func okHatched(path string) error {
	return os.Remove(path) //ce:err-ok best-effort cleanup, callers ignore the result
}

func okPlain(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}
