package core

import "fmt"

// SchedKind enumerates the scheduler organizations a SchedulerSpec can
// describe.
type SchedKind int

const (
	// SchedCentralWindow is the conventional flexible issue window
	// (NewCentralWindow).
	SchedCentralWindow SchedKind = iota
	// SchedExecSteered is the Section 5.6.1 central window with cluster
	// assignment at issue time (NewExecSteeredWindow).
	SchedExecSteered
	// SchedRandomSelect is the central window with a random selection
	// policy (NewRandomSelectWindow).
	SchedRandomSelect
	// SchedFIFOBank is the dependence-based FIFO bank and its windowed
	// variants (NewFIFOBank).
	SchedFIFOBank
)

// SchedulerSpec is a serializable description of a scheduler. Unlike an
// opaque factory closure, a spec can be fingerprinted, so configurations
// built from specs are eligible for run memoization (see
// pipeline.Config.Key and internal/runcache). keylint (cmd/celint)
// statically verifies every exported field is folded into Key or marked
// //ce:timing-neutral.
//
//ce:keyed
type SchedulerSpec struct {
	Kind SchedKind
	// Size is the window entry count (the central-window kinds).
	Size int
	// Clusters is the cluster count fed by an exec-steered window.
	Clusters int
	// FIFO is the bank geometry (SchedFIFOBank only).
	FIFO FIFOBankConfig
}

// WindowSpec describes a single-cluster central window of the given size.
func WindowSpec(size int) SchedulerSpec {
	return SchedulerSpec{Kind: SchedCentralWindow, Size: size}
}

// ExecSteeredSpec describes a central window feeding `clusters` clusters
// with execution-driven steering.
func ExecSteeredSpec(size, clusters int) SchedulerSpec {
	return SchedulerSpec{Kind: SchedExecSteered, Size: size, Clusters: clusters}
}

// RandomSelectSpec describes a single-cluster window with random
// selection.
func RandomSelectSpec(size int) SchedulerSpec {
	return SchedulerSpec{Kind: SchedRandomSelect, Size: size}
}

// FIFOBankSpec describes a FIFO-bank scheduler.
func FIFOBankSpec(cfg FIFOBankConfig) SchedulerSpec {
	return SchedulerSpec{Kind: SchedFIFOBank, FIFO: cfg}
}

// Build constructs the described scheduler. Every call returns a fresh
// instance with identical (deterministic) behavior, which is what makes
// spec-built configurations memoizable.
func (s SchedulerSpec) Build() Scheduler {
	switch s.Kind {
	case SchedCentralWindow:
		return NewCentralWindow(s.Size)
	case SchedExecSteered:
		return NewExecSteeredWindow(s.Size, s.Clusters)
	case SchedRandomSelect:
		return NewRandomSelectWindow(s.Size)
	case SchedFIFOBank:
		return NewFIFOBank(s.FIFO)
	default:
		panic(fmt.Sprintf("core: unknown scheduler kind %d", s.Kind))
	}
}

// Key returns a canonical fingerprint of every behavior-relevant field.
// The FIFO bank's display name is deliberately excluded: it labels
// reports but never changes timing, so renamed copies of one geometry
// share a fingerprint.
func (s SchedulerSpec) Key() string {
	switch s.Kind {
	case SchedCentralWindow:
		return fmt.Sprintf("window/%d", s.Size)
	case SchedExecSteered:
		return fmt.Sprintf("exec-steer/%d/%d", s.Size, s.Clusters)
	case SchedRandomSelect:
		return fmt.Sprintf("random-select/%d", s.Size)
	case SchedFIFOBank:
		return fmt.Sprintf("fifos/%dx%dx%d/any=%v/pol=%d",
			s.FIFO.Clusters, s.FIFO.FIFOsPerCluster, s.FIFO.Depth,
			s.FIFO.AnySlot, s.FIFO.Policy)
	default:
		panic(fmt.Sprintf("core: unknown scheduler kind %d", s.Kind))
	}
}
