package det

import _ "math/rand" // want "import of math/rand"
