package ce

import (
	"fmt"
	"os"

	"repro/internal/canonjson"
	"repro/internal/verify"
)

// PipelineBenchResult is one configuration's simulator-performance
// measurement: how fast the timing simulator itself runs (host metrics),
// not how well the simulated machine performs. Serialized into
// BENCH_pipeline.json by `cesweep -bench-json` so the performance
// trajectory is tracked across changes.
type PipelineBenchResult struct {
	Config         string  `json:"config"`
	Workload       string  `json:"workload"`
	Cycles         int64   `json:"cycles"`
	Committed      uint64  `json:"committed"`
	WallSeconds    float64 `json:"wall_seconds"`
	MCyclesPerSec  float64 `json:"mcycles_per_sec"`
	HostAllocs     uint64  `json:"host_allocs"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// SweepBenchResult is the whole-sweep simulator-performance record
// written to BENCH_sweep.json by `cesweep -bench-json` when a sweep ran
// in the same invocation: how long regenerating the results took, how
// many fresh simulations that was, and how much functional execution the
// engine's trace pool replaced with replay.
type SweepBenchResult struct {
	// WallSeconds is the host time from the first sweep selection to the
	// last, and Sims the number of fresh simulations performed in it
	// (cache hits and coalesced duplicates excluded).
	WallSeconds float64 `json:"wall_seconds"`
	Sims        int     `json:"sims"`
	SimsPerSec  float64 `json:"sims_per_sec"`
	// Replay reports whether trace replay was enabled for the sweep.
	Replay bool `json:"replay"`
	// Trace is the trace pool's activity: workloads captured versus
	// loaded from disk, runs by drive mode, one-time capture cost, and
	// dynamic instructions functionally executed versus replayed.
	Trace TraceStats `json:"trace"`
	// Segment, when present, benchmarks segment-parallel sampled
	// simulation against the monolithic baseline on a long workload.
	Segment *SegmentBenchResult `json:"segment,omitempty"`
	// Stream, when present, benchmarks streamed capture and sampled
	// simulation of a huge workload (cesweep -stream-bench): wall time,
	// peak RSS and IPC error per sampling mode against the
	// streamed-exact truth.
	Stream *StreamBenchResult `json:"stream,omitempty"`
}

// SweepBench summarizes a finished sweep on eng, timed by the caller.
func SweepBench(eng *Engine, wallSeconds float64) SweepBenchResult {
	sims := 0
	for _, m := range eng.Metrics() {
		if !m.Cached {
			sims++
		}
	}
	r := SweepBenchResult{
		WallSeconds: wallSeconds,
		Sims:        sims,
		Replay:      eng.TraceReplay(),
		Trace:       eng.TraceStats(),
	}
	if wallSeconds > 0 {
		r.SimsPerSec = float64(sims) / wallSeconds
	}
	return r
}

// WriteSweepBenchJSON writes res to path as canonical indented JSON (the
// BENCH_sweep.json emitter behind `cesweep -bench-json`).
func WriteSweepBenchJSON(path string, res SweepBenchResult) error {
	data, err := canonjson.Marshal(res)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// PipelineBenchConfigs returns the differential-verification panel with
// its instruments (invariant checker, timeline recording) stripped, so
// the production fast path — event-driven wakeup plus idle-cycle
// skipping — is what gets measured. One configuration per mechanism the
// simulator implements.
func PipelineBenchConfigs() []Config {
	cfgs := verify.Panel()
	for i := range cfgs {
		cfgs[i].CheckInvariants = false
		cfgs[i].RecordTimeline = false
	}
	return cfgs
}

// PipelineBench times every panel configuration on one workload with a
// fresh simulator per run (no run cache), returning per-configuration
// host-performance results.
func PipelineBench(workload string) ([]PipelineBenchResult, error) {
	out := make([]PipelineBenchResult, 0, 7)
	for _, cfg := range PipelineBenchConfigs() {
		st, err := Run(cfg, workload)
		if err != nil {
			return nil, fmt.Errorf("bench %s/%s: %w", cfg.Name, workload, err)
		}
		r := PipelineBenchResult{
			Config:      cfg.Name,
			Workload:    workload,
			Cycles:      st.Cycles,
			Committed:   st.Committed,
			WallSeconds: st.HostWallSeconds,
			HostAllocs:  st.HostAllocs,
		}
		if st.HostWallSeconds > 0 {
			r.MCyclesPerSec = float64(st.Cycles) / st.HostWallSeconds / 1e6
		}
		if st.Cycles > 0 {
			r.AllocsPerCycle = float64(st.HostAllocs) / float64(st.Cycles)
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteBenchJSON runs PipelineBench and writes the results to path as
// canonical indented JSON (the BENCH_pipeline.json emitter behind
// `cesweep -bench-json`).
func WriteBenchJSON(path, workload string) ([]PipelineBenchResult, error) {
	res, err := PipelineBench(workload)
	if err != nil {
		return nil, err
	}
	data, err := canonjson.Marshal(res)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return res, nil
}
