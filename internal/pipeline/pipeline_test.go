package pipeline

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
)

// cfg returns a Table 3 baseline configuration with the given scheduler.
func cfg(name string, clusters, interDelay int, sched func() core.Scheduler) Config {
	return Config{
		Name:              name,
		FetchWidth:        8,
		DecodeWidth:       8,
		IssueWidth:        8,
		RetireWidth:       16,
		MaxInFlight:       128,
		PhysRegs:          120,
		Clusters:          clusters,
		FUsPerCluster:     8 / clusters,
		LSPorts:           4,
		InterClusterDelay: interDelay,
		FrontEndDepth:     2,
		FetchQueueSize:    32,
		PerfectBPred:      true,
		NewScheduler:      sched,
	}
}

func window64() core.Scheduler { return core.NewCentralWindow(64) }

func fifos8x8() core.Scheduler {
	return core.NewFIFOBank(core.FIFOBankConfig{
		Name: "fifos", Clusters: 1, FIFOsPerCluster: 8, Depth: 8,
	})
}

func mustProgram(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runProgram(t *testing.T, c Config, p *isa.Program) Stats {
	t.Helper()
	sim, err := New(c, p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// chainSrc builds a single serial dependence chain of n addi instructions.
func chainSrc(n int) string {
	var b strings.Builder
	b.WriteString("\t.text\n")
	for i := 0; i < n; i++ {
		b.WriteString("\taddi $t0, $t0, 1\n")
	}
	b.WriteString("\thalt\n")
	return b.String()
}

// independentSrc builds n mutually independent addi instructions.
func independentSrc(n int) string {
	regs := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7"}
	var b strings.Builder
	b.WriteString("\t.text\n")
	for i := 0; i < n; i++ {
		b.WriteString("\taddi " + regs[i%len(regs)] + ", $zero, 1\n")
	}
	b.WriteString("\thalt\n")
	return b.String()
}

func TestDependentChainIssuesOnePerCycle(t *testing.T) {
	p := mustProgram(t, chainSrc(64))
	st := runProgram(t, cfg("base", 1, 0, window64), p)
	if st.Committed != 65 {
		t.Fatalf("committed %d, want 65", st.Committed)
	}
	// One chain link per cycle plus pipeline fill: ≈ 64 + small constant.
	if st.Cycles < 64 || st.Cycles > 80 {
		t.Errorf("cycles = %d, want ≈64–80 for a 64-deep dependence chain", st.Cycles)
	}
}

func TestIndependentInstructionsIssueWide(t *testing.T) {
	p := mustProgram(t, independentSrc(64))
	st := runProgram(t, cfg("base", 1, 0, window64), p)
	if st.Cycles > 20 {
		t.Errorf("cycles = %d, want ≤20 for 64 independent instructions at 8-wide", st.Cycles)
	}
	if ipc := st.IPC(); ipc < 3.5 {
		t.Errorf("IPC = %.2f, want ≥3.5", ipc)
	}
}

func TestIssueWidthBoundsIPC(t *testing.T) {
	p := mustProgram(t, independentSrc(256))
	c := cfg("narrow", 1, 0, window64)
	c.IssueWidth = 2
	c.FUsPerCluster = 2
	st := runProgram(t, c, p)
	if ipc := st.IPC(); ipc > 2.0 {
		t.Errorf("IPC = %.2f with issue width 2, want ≤2", ipc)
	}
}

func TestFIFOSchedulerMatchesWindowOnSeparableChains(t *testing.T) {
	// Two interleaved independent chains: dependence steering should put
	// each chain into its own FIFO and sustain the same throughput as a
	// flexible window.
	var b strings.Builder
	b.WriteString("\t.text\n")
	for i := 0; i < 32; i++ {
		b.WriteString("\taddi $t0, $t0, 1\n")
		b.WriteString("\taddi $t1, $t1, 1\n")
	}
	b.WriteString("\thalt\n")
	src := b.String()

	stWin := runProgram(t, cfg("win", 1, 0, window64), mustProgram(t, src))
	stFifo := runProgram(t, cfg("fifo", 1, 0, fifos8x8), mustProgram(t, src))
	if stFifo.Cycles > stWin.Cycles+4 {
		t.Errorf("FIFO cycles = %d vs window %d; separable chains should not slow down",
			stFifo.Cycles, stWin.Cycles)
	}
}

func TestFIFOHeadsOnlyLimitsReordering(t *testing.T) {
	// A long dependent chain followed by many independent instructions:
	// steering puts the chain in one FIFO; the independents use other
	// FIFOs and issue around it. Both schedulers should finish in similar
	// time, but the FIFO bank must never beat the window.
	src := chainSrc(40) // ends with halt
	stWin := runProgram(t, cfg("win", 1, 0, window64), mustProgram(t, src))
	stFifo := runProgram(t, cfg("fifo", 1, 0, fifos8x8), mustProgram(t, src))
	if stFifo.Cycles < stWin.Cycles {
		t.Errorf("FIFO bank (%d cycles) beat the flexible window (%d cycles)", stFifo.Cycles, stWin.Cycles)
	}
}

func TestLoadMissLatency(t *testing.T) {
	// A dependence chain through cold loads: every load misses (new line
	// each time), so each link costs the 6-cycle miss latency.
	src := `
		.text
		li   $t0, 0x40000
		lw   $t1, 0($t0)
		lw   $t2, 64($t1)
		lw   $t3, 128($t2)
		lw   $t4, 192($t3)
		halt
	`
	st := runProgram(t, cfg("base", 1, 0, window64), mustProgram(t, src))
	if st.Cache.Misses < 4 {
		t.Errorf("cache misses = %d, want ≥4 (cold chain)", st.Cache.Misses)
	}
	// 4 serial misses ≈ 24 cycles plus fill.
	if st.Cycles < 24 {
		t.Errorf("cycles = %d, want ≥24 for four serial misses", st.Cycles)
	}
}

func TestCacheHitsAreFast(t *testing.T) {
	// Serial loads that all hit the same line after the first.
	var b strings.Builder
	b.WriteString("\t.text\n\tli $t0, 0x40000\n")
	for i := 0; i < 16; i++ {
		b.WriteString("\tlw $t0, 0x40000($zero)\n")
	}
	b.WriteString("\thalt\n")
	st := runProgram(t, cfg("base", 1, 0, window64), mustProgram(t, b.String()))
	if st.Cache.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Cache.Misses)
	}
}

func TestLoadWaitsForPriorStoreAddress(t *testing.T) {
	// The store's address depends on a long chain; the (independent) load
	// must wait for the store to issue (Table 3: loads execute when all
	// prior store addresses are known).
	chain := func(withStore bool) string {
		var b strings.Builder
		b.WriteString("\t.text\n\tli $t0, 0x40000\n")
		for i := 0; i < 20; i++ {
			b.WriteString("\taddi $t0, $t0, 4\n")
		}
		if withStore {
			b.WriteString("\tsw $t1, 0($t0)\n")
		}
		b.WriteString("\tlw $t2, 0x50000($zero)\n")
		// A dependent chain hangs off the load, so delaying the load
		// delays the whole run.
		for i := 0; i < 20; i++ {
			b.WriteString("\taddi $t2, $t2, 1\n")
		}
		b.WriteString("\tout $t2\n\thalt\n")
		return b.String()
	}
	with := runProgram(t, cfg("w", 1, 0, window64), mustProgram(t, chain(true)))
	without := runProgram(t, cfg("wo", 1, 0, window64), mustProgram(t, chain(false)))
	if with.Cycles < without.Cycles+10 {
		t.Errorf("store-address dependence not enforced: %d cycles with store vs %d without",
			with.Cycles, without.Cycles)
	}
}

func TestMispredictionStallsFetch(t *testing.T) {
	// Data-dependent branches driven by LCG bits: hard to predict.
	src := `
		.text
		li   $s0, 500          # iterations
		li   $t0, 98765        # seed
		li   $t8, 1103515245
loop:	mul  $t0, $t0, $t8
		addi $t0, $t0, 12345
		srl  $t1, $t0, 16
		andi $t1, $t1, 1
		beq  $t1, $zero, skip
		addi $s1, $s1, 1
skip:	addi $s0, $s0, -1
		bgtz $s0, loop
		out  $s1
		halt
	`
	cPerfect := cfg("perfect", 1, 0, window64)
	cReal := cfg("gshare", 1, 0, window64)
	cReal.PerfectBPred = false
	perfect := runProgram(t, cPerfect, mustProgram(t, src))
	real := runProgram(t, cReal, mustProgram(t, src))
	if real.Mispredicts == 0 {
		t.Fatal("no mispredictions on LCG-driven branches")
	}
	if rate := real.MispredictRate(); rate < 0.10 {
		t.Errorf("mispredict rate = %.2f, want ≥0.10 on random branches", rate)
	}
	if real.Cycles <= perfect.Cycles {
		t.Errorf("mispredictions did not cost cycles: %d (gshare) vs %d (perfect)",
			real.Cycles, perfect.Cycles)
	}
}

func TestPredictableBranchesAreCheap(t *testing.T) {
	// A simple counted loop: gshare should predict nearly every iteration.
	src := `
		.text
		li   $s0, 400
loop:	addi $s1, $s1, 1
		addi $s0, $s0, -1
		bgtz $s0, loop
		out  $s1
		halt
	`
	c := cfg("gshare", 1, 0, window64)
	c.PerfectBPred = false
	st := runProgram(t, c, mustProgram(t, src))
	if rate := st.MispredictRate(); rate > 0.10 {
		t.Errorf("mispredict rate = %.2f on a counted loop, want ≤0.10", rate)
	}
}

func TestClusteredInterClusterBypassAccounting(t *testing.T) {
	// Random steering scatters a dependence chain across clusters; the
	// inter-cluster bypass frequency must be substantial and the run
	// slower than with dependence steering.
	randomSched := func() core.Scheduler {
		return core.NewFIFOBank(core.FIFOBankConfig{
			Name: "random", Clusters: 2, FIFOsPerCluster: 1, Depth: 32,
			AnySlot: true, Policy: core.SteerRandom,
		})
	}
	depSched := func() core.Scheduler {
		return core.NewFIFOBank(core.FIFOBankConfig{
			Name: "dep", Clusters: 2, FIFOsPerCluster: 4, Depth: 8,
		})
	}
	p := mustProgram(t, chainSrc(200))
	stRand := runProgram(t, cfg("rand", 2, 1, randomSched), p)
	stDep := runProgram(t, cfg("dep", 2, 1, depSched), mustProgram(t, chainSrc(200)))
	if f := stRand.InterClusterFrequency(); f < 0.20 {
		t.Errorf("random steering inter-cluster frequency = %.2f, want ≥0.20", f)
	}
	if f := stDep.InterClusterFrequency(); f > 0.05 {
		t.Errorf("dependence steering inter-cluster frequency = %.2f on a single chain, want ≈0", f)
	}
	if stRand.Cycles <= stDep.Cycles {
		t.Errorf("random steering (%d cycles) not slower than dependence steering (%d)",
			stRand.Cycles, stDep.Cycles)
	}
}

func TestInterClusterDelaySlowsScatteredChains(t *testing.T) {
	randomSched := func() core.Scheduler {
		return core.NewFIFOBank(core.FIFOBankConfig{
			Name: "random", Clusters: 2, FIFOsPerCluster: 1, Depth: 32,
			AnySlot: true, Policy: core.SteerRandom,
		})
	}
	fast := runProgram(t, cfg("d0", 2, 0, randomSched), mustProgram(t, chainSrc(200)))
	slow := runProgram(t, cfg("d1", 2, 1, randomSched), mustProgram(t, chainSrc(200)))
	if slow.Cycles <= fast.Cycles {
		t.Errorf("inter-cluster delay had no cost: %d vs %d cycles", slow.Cycles, fast.Cycles)
	}
}

func TestCommittedMatchesFunctionalExecution(t *testing.T) {
	w, err := prog.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg("base", 1, 0, window64), p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != sim.Machine().Executed {
		t.Errorf("committed %d != functionally executed %d", st.Committed, sim.Machine().Executed)
	}
	want := w.Reference()
	got := sim.Machine().Output
	if len(got) != len(want) {
		t.Fatalf("program output %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	p, err := prog.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := p.Program()
	if err != nil {
		t.Fatal(err)
	}
	run := func() Stats {
		sim, err := New(cfg("base", 1, 0, fifos8x8), pr)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run(100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.Mispredicts != b.Mispredicts {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestConfigValidate(t *testing.T) {
	good := cfg("ok", 1, 0, window64)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.NewScheduler = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil scheduler accepted")
	}
	bad = good
	bad.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero issue width accepted")
	}
	bad = good
	bad.PhysRegs = 10
	if err := bad.Validate(); err == nil {
		t.Error("too few physical registers accepted")
	}
	// Cluster mismatch between scheduler and config.
	mismatch := cfg("mismatch", 2, 1, window64)
	if _, err := New(mismatch, mustProgram(t, chainSrc(4))); err == nil {
		t.Error("scheduler/config cluster mismatch accepted")
	}
}

func TestRetireWidthBoundsCommit(t *testing.T) {
	p := mustProgram(t, independentSrc(64))
	c := cfg("retire1", 1, 0, window64)
	c.RetireWidth = 1
	st := runProgram(t, c, p)
	// 65 instructions at 1 commit/cycle needs ≥65 cycles.
	if st.Cycles < 65 {
		t.Errorf("cycles = %d with retire width 1, want ≥65", st.Cycles)
	}
}

func TestPhysRegPressureStalls(t *testing.T) {
	p := mustProgram(t, independentSrc(256))
	c := cfg("fewregs", 1, 0, window64)
	c.PhysRegs = 40 // only 8 rename registers beyond the architectural 32
	st := runProgram(t, c, p)
	if st.PhysRegStalls == 0 {
		t.Error("no physical-register stalls with an 8-register margin")
	}
	wide := runProgram(t, cfg("wide", 1, 0, window64), mustProgram(t, independentSrc(256)))
	if st.Cycles <= wide.Cycles {
		t.Errorf("register pressure had no cost: %d vs %d cycles", st.Cycles, wide.Cycles)
	}
}

func TestCustomCacheConfig(t *testing.T) {
	c := cfg("tinycache", 1, 0, window64)
	c.DCache = cache.Config{SizeBytes: 1 << 10, Ways: 1, LineBytes: 32, HitCycles: 1, MissCycles: 6}
	// Strided loads across 8 KB thrash a 1 KB cache.
	var b strings.Builder
	b.WriteString("\t.text\n\tli $s0, 0\n")
	b.WriteString("loop:\tsll $t1, $s0, 6\n")
	b.WriteString("\tlw $t2, 0x40000($t1)\n")
	b.WriteString("\taddi $s0, $s0, 1\n")
	b.WriteString("\tli $t3, 128\n")
	b.WriteString("\tblt $s0, $t3, loop\n")
	b.WriteString("\thalt\n")
	st := runProgram(t, c, mustProgram(t, b.String()))
	if st.Cache.Misses < 100 {
		t.Errorf("misses = %d on a thrashing stride, want ≥100", st.Cache.Misses)
	}
}

func clustered2x4() core.Scheduler {
	return core.NewFIFOBank(core.FIFOBankConfig{
		Name: "fifos-2x4", Clusters: 2, FIFOsPerCluster: 4, Depth: 8,
	})
}
