package ce

import (
	"fmt"

	"repro/internal/canonjson"
)

// The canonical JSON renderings of the simulated figures and the
// frontier. These are the deterministic dumps served by cesweepd's
// GET /figure/{N} and GET /frontier endpoints and emitted by
// cesweep -json; both go through the same encoder over the same
// deterministic simulation results, so a daemon response and a CLI dump
// of the same selection are byte-identical — which is what CI compares.

// figureDump is the canonical JSON form of one simulated figure.
// Matrices are indexed [config][workload].
type figureDump struct {
	Figure    int         `json:"figure"`
	Workloads []string    `json:"workloads"`
	Configs   []string    `json:"configs"`
	IPC       [][]float64 `json:"ipc"`
	// BypassPct is the inter-cluster bypass frequency in percent
	// (Figure 17 bottom panel only).
	BypassPct [][]float64 `json:"bypass_pct,omitempty"`
}

// FigureJSON runs (or recalls) figure n's matrix through DefaultEngine
// and returns its canonical JSON rendering. Valid figures are 13, 15
// and 17.
func FigureJSON(n int) ([]byte, error) { return DefaultEngine.FigureJSON(n) }

// FigureJSON renders figure n through this engine's cache and store.
func (e *Engine) FigureJSON(n int) ([]byte, error) {
	var (
		cmp *IPCComparison
		err error
	)
	switch n {
	case 13:
		cmp, err = e.Figure13()
	case 15:
		cmp, err = e.Figure15()
	case 17:
		cmp, err = e.Figure17()
	default:
		return nil, fmt.Errorf("ce: unknown figure %d (want 13, 15 or 17)", n)
	}
	if err != nil {
		return nil, err
	}
	dump := figureDump{Figure: n, Workloads: cmp.Workloads}
	for ci, cfg := range cmp.Configs {
		dump.Configs = append(dump.Configs, cfg.Name)
		ipcRow := make([]float64, len(cmp.Workloads))
		for wi := range cmp.Workloads {
			ipcRow[wi] = cmp.Results[ci][wi].IPC()
		}
		dump.IPC = append(dump.IPC, ipcRow)
	}
	if n == 17 {
		for ci := range cmp.Configs {
			row := make([]float64, len(cmp.Workloads))
			for wi := range cmp.Workloads {
				row[wi] = cmp.Results[ci][wi].InterClusterFrequency() * 100
			}
			dump.BypassPct = append(dump.BypassPct, row)
		}
	}
	return canonjson.Marshal(dump)
}

// frontierDump is the canonical JSON form of the frontier ranking.
type frontierDump struct {
	Points []frontierPointDump `json:"points"`
}

type frontierPointDump struct {
	Rank         int     `json:"rank"`
	Organization string  `json:"organization"`
	MeanIPC      float64 `json:"mean_ipc"`
	ClockPs      float64 `json:"clock_ps"`
	BIPS         float64 `json:"bips"`
}

// FrontierJSON evaluates the complexity-effectiveness frontier through
// DefaultEngine and returns its canonical JSON rendering, best first.
func FrontierJSON() ([]byte, error) { return DefaultEngine.FrontierJSON() }

// FrontierJSON renders the frontier through this engine's cache and store.
func (e *Engine) FrontierJSON() ([]byte, error) {
	pts, err := e.Frontier()
	if err != nil {
		return nil, err
	}
	var dump frontierDump
	for i, p := range pts {
		dump.Points = append(dump.Points, frontierPointDump{
			Rank:         i + 1,
			Organization: p.Name,
			MeanIPC:      p.MeanIPC,
			ClockPs:      p.ClockPs,
			BIPS:         p.BIPS,
		})
	}
	return canonjson.Marshal(dump)
}
